#include "dsp/constellation.h"

#include <gtest/gtest.h>

#include <set>

#include "dsp/require.h"
#include "dsp/stats.h"

namespace ctc::dsp {
namespace {

TEST(PskTest, FourPskIsAxisAligned) {
  const cvec qpsk = make_psk(4);
  ASSERT_EQ(qpsk.size(), 4u);
  EXPECT_NEAR(std::abs(qpsk[0] - cplx(1.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(qpsk[1] - cplx(0.0, 1.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(qpsk[2] - cplx(-1.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(qpsk[3] - cplx(0.0, -1.0)), 0.0, 1e-12);
}

class ConstellationOrderTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConstellationOrderTest, PskHasUnitModulusAndDistinctPoints) {
  const cvec points = make_psk(GetParam());
  std::set<std::pair<long, long>> seen;
  for (const cplx& p : points) {
    EXPECT_NEAR(std::abs(p), 1.0, 1e-12);
    seen.insert({std::lround(p.real() * 1e9), std::lround(p.imag() * 1e9)});
  }
  EXPECT_EQ(seen.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Orders, ConstellationOrderTest,
                         ::testing::Values(2, 4, 8, 16, 64));

class QamOrderTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QamOrderTest, UnitAveragePowerAndFullGrid) {
  const cvec points = make_qam(GetParam());
  ASSERT_EQ(points.size(), GetParam());
  EXPECT_NEAR(average_power(points), 1.0, 1e-12);
  std::set<std::pair<long, long>> seen;
  for (const cplx& p : points) {
    seen.insert({std::lround(p.real() * 1e9), std::lround(p.imag() * 1e9)});
  }
  EXPECT_EQ(seen.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Orders, QamOrderTest, ::testing::Values(4, 16, 64, 256));

TEST(QamTest, RejectsNonSquareOrders) {
  EXPECT_THROW(make_qam(8), ContractError);
  EXPECT_THROW(make_qam(32), ContractError);
}

class PamOrderTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PamOrderTest, RealAxisUnitPower) {
  const cvec points = make_pam(GetParam());
  ASSERT_EQ(points.size(), GetParam());
  EXPECT_NEAR(average_power(points), 1.0, 1e-12);
  for (const cplx& p : points) EXPECT_DOUBLE_EQ(p.imag(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Orders, PamOrderTest, ::testing::Values(2, 4, 8, 16));

TEST(Qam64RawTest, ExactPaperLevels) {
  const cvec points = make_qam64_raw();
  ASSERT_EQ(points.size(), 64u);
  // Every combination of odd levels -7..7 appears exactly once.
  std::set<std::pair<int, int>> seen;
  for (const cplx& p : points) {
    const int i = static_cast<int>(std::lround(p.real()));
    const int q = static_cast<int>(std::lround(p.imag()));
    EXPECT_EQ(std::abs(i) % 2, 1);
    EXPECT_EQ(std::abs(q) % 2, 1);
    EXPECT_LE(std::abs(i), 7);
    EXPECT_LE(std::abs(q), 7);
    seen.insert({i, q});
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(NearestPointTest, PicksEuclideanNearest) {
  const cvec points = make_qam64_raw();
  EXPECT_EQ(points[nearest_point(points, cplx{6.7, -6.9})], (cplx{7.0, -7.0}));
  EXPECT_EQ(points[nearest_point(points, cplx{0.2, 0.3})], (cplx{1.0, 1.0}));
  EXPECT_EQ(points[nearest_point(points, cplx{-100.0, 100.0})], (cplx{-7.0, 7.0}));
}

TEST(NearestPointTest, RequiresNonEmptyConstellation) {
  EXPECT_THROW(nearest_point(cvec{}, cplx{0.0, 0.0}), ContractError);
}

TEST(QuantizeTest, IdempotentOnConstellationPoints) {
  const cvec points = make_qam(16);
  const cvec quantized = quantize(points, points);
  for (std::size_t i = 0; i < points.size(); ++i) EXPECT_EQ(quantized[i], points[i]);
}

TEST(QuantizeTest, MapsNoisyPointsBack) {
  const cvec points = make_psk(4);
  const cvec noisy = {{0.9, 0.1}, {-0.05, 1.2}, {-0.8, -0.2}, {0.3, -0.7}};
  const cvec quantized = quantize(points, noisy);
  EXPECT_EQ(quantized[0], points[0]);
  EXPECT_EQ(quantized[1], points[1]);
  EXPECT_EQ(quantized[2], points[2]);
  EXPECT_EQ(quantized[3], points[3]);
}

}  // namespace
}  // namespace ctc::dsp
