#include "dsp/pulse.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/types.h"

namespace ctc::dsp {
namespace {

TEST(PulseTest, LengthIsTwoChipPeriods) {
  EXPECT_EQ(half_sine_pulse(2).size(), 4u);
  EXPECT_EQ(half_sine_pulse(8).size(), 16u);
}

TEST(PulseTest, StartsAtZeroPeaksAtCenter) {
  const rvec p = half_sine_pulse(4);
  EXPECT_NEAR(p[0], 0.0, 1e-12);
  EXPECT_NEAR(p[4], 1.0, 1e-12);  // center of 8 samples
  for (double v : p) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(PulseTest, SymmetricAboutCenter) {
  const rvec p = half_sine_pulse(8);
  // sin(pi i / n) symmetry: p[i] == p[n - i] for i >= 1.
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_NEAR(p[i], std::sin(kPi * static_cast<double>(p.size() - i) /
                               static_cast<double>(p.size())),
                1e-12);
  }
}

TEST(PulseTest, OffsetSquaredPairSumsToOne) {
  // The MSK constant-envelope property: p(t)^2 + p(t + Tc)^2 == 1, which is
  // why overlapping I/Q half-sines give |s(t)| == 1.
  const std::size_t spc = 6;
  const rvec p = half_sine_pulse(spc);
  for (std::size_t i = 0; i < spc; ++i) {
    EXPECT_NEAR(p[i] * p[i] + p[i + spc] * p[i + spc], 1.0, 1e-12);
  }
}

TEST(PulseTest, RejectsZeroSamplesPerChip) {
  EXPECT_THROW(half_sine_pulse(0), ContractError);
}

}  // namespace
}  // namespace ctc::dsp
