#include "dsp/psd.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"
#include "dsp/stats.h"
#include "zigbee/app.h"
#include "zigbee/transmitter.h"

namespace ctc::dsp {
namespace {

TEST(PsdTest, SingleToneConcentratesInOneBin) {
  const std::size_t n = 4096;
  cvec tone(n);
  const double frequency = 0.125;  // cycles/sample
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = kTwoPi * frequency * static_cast<double>(i);
    tone[i] = {std::cos(angle), std::sin(angle)};
  }
  PsdConfig config;
  config.sample_rate_hz = 8.0;  // tone at +1 Hz
  const PsdResult psd = welch_psd(tone, config);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < psd.power.size(); ++i) {
    if (psd.power[i] > psd.power[peak]) peak = i;
  }
  EXPECT_NEAR(psd.frequency_hz[peak], 1.0, 8.0 / 256.0);
  EXPECT_GT(band_power_fraction(psd, 0.8, 1.2), 0.95);
}

TEST(PsdTest, TotalPowerMatchesSignalPower) {
  Rng rng(310);
  cvec noise(8192);
  for (auto& x : noise) x = rng.complex_gaussian(2.5);
  const PsdResult psd = welch_psd(noise);
  double total = 0.0;
  for (double p : psd.power) total += p;
  EXPECT_NEAR(total, 2.5, 0.15);
}

TEST(PsdTest, WhiteNoiseIsFlat) {
  Rng rng(311);
  cvec noise(1 << 15);
  for (auto& x : noise) x = rng.complex_gaussian(1.0);
  const PsdResult psd = welch_psd(noise);
  const double mean_power = 1.0 / static_cast<double>(psd.power.size());
  for (double p : psd.power) {
    EXPECT_GT(p, 0.2 * mean_power);
    EXPECT_LT(p, 3.0 * mean_power);
  }
}

TEST(PsdTest, ZigBeeWaveformOccupiesTwoMegahertz) {
  // The premise of the whole attack: the ZigBee signal fits in ~2 MHz, i.e.
  // ~7 of 64 WiFi subcarriers.
  zigbee::Transmitter tx;
  const cvec wave = tx.transmit_frame(zigbee::make_text_frame(0, 0));
  PsdConfig config;
  config.sample_rate_hz = 4.0e6;
  const PsdResult psd = welch_psd(wave, config);
  EXPECT_GT(band_power_fraction(psd, -1.0e6, 1.0e6), 0.85);
  EXPECT_GT(band_power_fraction(psd, -1.5e6, 1.5e6), 0.97);
}

TEST(PsdTest, FrequencyAxisIsCenteredAndAscending) {
  Rng rng(312);
  cvec x(512);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  PsdConfig config;
  config.segment_size = 128;
  config.sample_rate_hz = 128.0;
  const PsdResult psd = welch_psd(x, config);
  ASSERT_EQ(psd.frequency_hz.size(), 128u);
  EXPECT_DOUBLE_EQ(psd.frequency_hz.front(), -64.0);
  EXPECT_DOUBLE_EQ(psd.frequency_hz[64], 0.0);
  for (std::size_t i = 1; i < psd.frequency_hz.size(); ++i) {
    EXPECT_GT(psd.frequency_hz[i], psd.frequency_hz[i - 1]);
  }
}

TEST(PsdTest, OverlapIncreasesSegmentCount) {
  Rng rng(313);
  cvec x(2048);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  PsdConfig no_overlap;
  no_overlap.overlap = 0.0;
  PsdConfig half_overlap;
  half_overlap.overlap = 0.5;
  EXPECT_GT(welch_psd(x, half_overlap).segments_used,
            welch_psd(x, no_overlap).segments_used);
}

TEST(PsdTest, RejectsBadConfig) {
  cvec x(100);
  PsdConfig config;
  config.segment_size = 200;  // not a power of two
  EXPECT_THROW(welch_psd(x, config), ContractError);
  config.segment_size = 256;  // longer than the signal
  EXPECT_THROW(welch_psd(x, config), ContractError);
  PsdConfig bad_overlap;
  bad_overlap.segment_size = 64;
  bad_overlap.overlap = 1.0;
  EXPECT_THROW(welch_psd(x, bad_overlap), ContractError);
}

}  // namespace
}  // namespace ctc::dsp
