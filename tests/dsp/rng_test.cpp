#include "dsp/rng.h"

#include <gtest/gtest.h>

#include "dsp/require.h"

namespace ctc::dsp {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), ContractError);
}

TEST(RngTest, UniformFirstTwoMomentsMatchTheory) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_NEAR(sum_sq / n, 1.0 / 3.0, 0.005);
}

TEST(RngTest, GaussianMomentsMatchTheory) {
  Rng rng(12);
  double sum = 0.0;
  double sum_sq = 0.0;
  double sum_4 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
    sum_4 += g * g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
  EXPECT_NEAR(sum_4 / n, 3.0, 0.1);  // normal kurtosis
}

TEST(RngTest, ComplexGaussianVarianceSplitsAcrossAxes) {
  Rng rng(13);
  double power = 0.0;
  double real_part = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const cplx z = rng.complex_gaussian(4.0);
    power += std::norm(z);
    real_part += z.real() * z.real();
  }
  EXPECT_NEAR(power / n, 4.0, 0.1);
  EXPECT_NEAR(real_part / n, 2.0, 0.1);
}

TEST(RngTest, ComplexGaussianZeroVarianceIsZero) {
  Rng rng(14);
  const cplx z = rng.complex_gaussian(0.0);
  EXPECT_EQ(z, (cplx{0.0, 0.0}));
  EXPECT_THROW(rng.complex_gaussian(-1.0), ContractError);
}

TEST(RngTest, UniformIndexBoundsAndRejection) {
  Rng rng(15);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(7), 7u);
  EXPECT_EQ(rng.uniform_index(1), 0u);
  EXPECT_THROW(rng.uniform_index(0), ContractError);
}

TEST(RngTest, BitIsRoughlyFair) {
  Rng rng(16);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += rng.bit();
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.fork();
  // The forked stream must differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(18);
  Rng b(18);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

}  // namespace
}  // namespace ctc::dsp
