#include "dsp/rng.h"

#include <gtest/gtest.h>

#include "dsp/require.h"

namespace ctc::dsp {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), ContractError);
}

TEST(RngTest, UniformFirstTwoMomentsMatchTheory) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_NEAR(sum_sq / n, 1.0 / 3.0, 0.005);
}

TEST(RngTest, GaussianMomentsMatchTheory) {
  Rng rng(12);
  double sum = 0.0;
  double sum_sq = 0.0;
  double sum_4 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
    sum_4 += g * g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
  EXPECT_NEAR(sum_4 / n, 3.0, 0.1);  // normal kurtosis
}

TEST(RngTest, ComplexGaussianVarianceSplitsAcrossAxes) {
  Rng rng(13);
  double power = 0.0;
  double real_part = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const cplx z = rng.complex_gaussian(4.0);
    power += std::norm(z);
    real_part += z.real() * z.real();
  }
  EXPECT_NEAR(power / n, 4.0, 0.1);
  EXPECT_NEAR(real_part / n, 2.0, 0.1);
}

TEST(RngTest, ComplexGaussianZeroVarianceIsZero) {
  Rng rng(14);
  const cplx z = rng.complex_gaussian(0.0);
  EXPECT_EQ(z, (cplx{0.0, 0.0}));
  EXPECT_THROW(rng.complex_gaussian(-1.0), ContractError);
}

TEST(RngTest, UniformIndexBoundsAndRejection) {
  Rng rng(15);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(7), 7u);
  EXPECT_EQ(rng.uniform_index(1), 0u);
  EXPECT_THROW(rng.uniform_index(0), ContractError);
}

TEST(RngTest, BitIsRoughlyFair) {
  Rng rng(16);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += rng.bit();
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.fork();
  // The forked stream must differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(18);
  Rng b(18);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(RngTest, ForStreamIsDeterministic) {
  Rng a = Rng::for_stream(42, 7);
  Rng b = Rng::for_stream(42, 7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, ForStreamsAreUncorrelated) {
  // Adjacent stream ids (the per-trial pattern) and adjacent seeds must
  // produce fully distinct output sequences.
  Rng a = Rng::for_stream(42, 0);
  Rng b = Rng::for_stream(42, 1);
  Rng c = Rng::for_stream(43, 0);
  int ab_same = 0;
  int ac_same = 0;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t xa = a.next_u64();
    if (xa == b.next_u64()) ++ab_same;
    if (xa == c.next_u64()) ++ac_same;
  }
  EXPECT_EQ(ab_same, 0);
  EXPECT_EQ(ac_same, 0);
}

TEST(RngTest, ForStreamZeroDiffersFromPlainSeed) {
  // Stream 0 is still whitened: it must not collapse onto Rng(seed).
  Rng plain(42);
  Rng stream0 = Rng::for_stream(42, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (plain.next_u64() == stream0.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForStreamGoldenFirstOutputs) {
  // Pins the stream-derivation function: engine results replay across
  // builds only if these exact values hold.
  Rng rng = Rng::for_stream(20190707, (std::uint64_t{1} << 32) | 5);
  const std::uint64_t first = rng.next_u64();
  const std::uint64_t second = rng.next_u64();
  Rng again = Rng::for_stream(20190707, (std::uint64_t{1} << 32) | 5);
  EXPECT_EQ(again.next_u64(), first);
  EXPECT_EQ(again.next_u64(), second);
  EXPECT_NE(first, second);
}

TEST(RngTest, JumpAdvancesToDisjointSubsequence) {
  Rng jumped(77);
  jumped.jump();
  Rng walker(77);
  // The jump is 2^128 steps ahead; no early prefix of the base stream may
  // reproduce the jumped stream's first output.
  const std::uint64_t jumped_first = jumped.next_u64();
  bool collided = false;
  for (int i = 0; i < 4096; ++i) {
    if (walker.next_u64() == jumped_first) collided = true;
  }
  EXPECT_FALSE(collided);
}

TEST(RngTest, JumpIsDeterministic) {
  Rng a(78);
  Rng b(78);
  a.jump();
  b.jump();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace ctc::dsp
