// Pins the kernel-layer equivalence contracts (see dsp/kernels/kernels.h):
// bitwise-class kernels must agree bit for bit between the scalar table and
// the best level this CPU supports; tolerance-class kernels must agree to a
// small relative error. Every kernel runs across odd lengths, unaligned
// buffer offsets and tail remainders so the SIMD head/body/tail splits are
// all exercised. On a CPU without AVX2 the comparison degenerates to
// scalar vs scalar and still passes.
#include "dsp/kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace ctc::dsp::kernels {
namespace {

// Lengths spanning every AVX2 head/interior/tail combination: below one
// vector, exact multiples, one-off remainders, and large mixed cases.
const std::vector<std::size_t> kLengths = {1,  2,  3,  5,   7,   8,   15,  16,
                                           17, 31, 33, 64,  65,  100, 127, 128,
                                           129};

// Offsets into an oversized backing buffer: 0 keeps the vector-friendly
// base alignment, odd offsets shift every load/store off it.
const std::vector<std::size_t> kOffsets = {0, 1, 3};

cvec random_cvec(Rng& rng, std::size_t n) {
  cvec v(n);
  for (auto& x : v) x = rng.complex_gaussian(1.0);
  return v;
}

rvec random_rvec(Rng& rng, std::size_t n) {
  rvec v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

void expect_bitwise(const cvec& a, const cvec& b, const char* what,
                    std::size_t n, std::size_t offset) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(cplx)), 0)
        << what << " diverges at i=" << i << " (n=" << n
        << ", offset=" << offset << "): (" << a[i].real() << "," << a[i].imag()
        << ") vs (" << b[i].real() << "," << b[i].imag() << ")";
  }
}

void expect_close(const cvec& a, const cvec& b, double tol, const char* what,
                  std::size_t n, std::size_t offset) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol)
        << what << " i=" << i << " n=" << n << " offset=" << offset;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol)
        << what << " i=" << i << " n=" << n << " offset=" << offset;
  }
}

/// Runs `body(scalar_out, best_out, n, offset)` over the length x offset
/// grid. The body fills both outputs from identical inputs at the two
/// dispatch levels.
template <class Body>
void for_each_case(const Body& body) {
  for (std::size_t n : kLengths) {
    for (std::size_t offset : kOffsets) {
      body(n, offset);
    }
  }
}

const KernelTable& scalar_table() { return table(SimdLevel::scalar); }
const KernelTable& best_table() { return table(best_supported_level()); }

TEST(KernelsDispatch, LevelNamesAndActiveTableResolve) {
  EXPECT_STREQ(level_name(SimdLevel::scalar), "scalar");
  EXPECT_STREQ(level_name(SimdLevel::avx2), "avx2");
  // active() must resolve to a table and stay stable across calls.
  const KernelTable& first = active();
  EXPECT_EQ(&first, &active());
  EXPECT_EQ(&table(active_level()), &first);
}

TEST(KernelsEquivalence, CaddBitwise) {
  Rng rng = Rng::for_stream(1, 1);
  for_each_case([&](std::size_t n, std::size_t offset) {
    const cvec x = random_cvec(rng, n + offset);
    const cvec y = random_cvec(rng, n + offset);
    cvec a = x, b = x;
    scalar_table().cadd(a.data() + offset, y.data() + offset, n);
    best_table().cadd(b.data() + offset, y.data() + offset, n);
    expect_bitwise(a, b, "cadd", n, offset);
  });
}

TEST(KernelsEquivalence, CscaleBitwise) {
  Rng rng = Rng::for_stream(1, 2);
  for_each_case([&](std::size_t n, std::size_t offset) {
    const cvec x = random_cvec(rng, n + offset);
    const cplx s = rng.complex_gaussian(1.0);
    cvec a = x, b = x;
    scalar_table().cscale(a.data() + offset, n, s);
    best_table().cscale(b.data() + offset, n, s);
    expect_bitwise(a, b, "cscale", n, offset);
  });
}

TEST(KernelsEquivalence, RscaleBitwise) {
  Rng rng = Rng::for_stream(1, 3);
  for_each_case([&](std::size_t n, std::size_t offset) {
    const cvec x = random_cvec(rng, n + offset);
    const double s = rng.uniform(0.5, 2.0);
    cvec a = x, b = x;
    scalar_table().rscale(a.data() + offset, n, s);
    best_table().rscale(b.data() + offset, n, s);
    expect_bitwise(a, b, "rscale", n, offset);
  });
}

TEST(KernelsEquivalence, CmulBitwise) {
  Rng rng = Rng::for_stream(1, 4);
  for_each_case([&](std::size_t n, std::size_t offset) {
    const cvec x = random_cvec(rng, n + offset);
    const cvec y = random_cvec(rng, n + offset);
    cvec a = x, b = x;
    scalar_table().cmul(a.data() + offset, y.data() + offset, n);
    best_table().cmul(b.data() + offset, y.data() + offset, n);
    expect_bitwise(a, b, "cmul", n, offset);
  });
}

TEST(KernelsEquivalence, CdivBitwise) {
  Rng rng = Rng::for_stream(1, 5);
  for_each_case([&](std::size_t n, std::size_t offset) {
    const cvec x = random_cvec(rng, n + offset);
    // Near-unit-magnitude divisor, like the channel estimates this serves.
    const cplx h = rng.complex_gaussian(1.0) + cplx{2.0, 0.0};
    cvec a = x, b = x;
    scalar_table().cdiv(a.data() + offset, n, h);
    best_table().cdiv(b.data() + offset, n, h);
    expect_bitwise(a, b, "cdiv", n, offset);
    // And the scalar expression must match std::complex operator/= exactly
    // (that is what the legacy call sites compiled to).
    for (std::size_t i = 0; i < n; ++i) {
      cplx expected = x[offset + i];
      expected /= h;
      EXPECT_EQ(std::memcmp(&expected, &a[offset + i], sizeof(cplx)), 0)
          << "cdiv differs from operator/= at i=" << i;
    }
  });
}

TEST(KernelsEquivalence, ApplyWindowBitwise) {
  Rng rng = Rng::for_stream(1, 6);
  for_each_case([&](std::size_t n, std::size_t offset) {
    const cvec x = random_cvec(rng, n + offset);
    const rvec w = random_rvec(rng, n + offset);
    cvec a(n), b(n);
    scalar_table().apply_window(x.data() + offset, w.data() + offset, n,
                                a.data());
    best_table().apply_window(x.data() + offset, w.data() + offset, n,
                              b.data());
    expect_bitwise(a, b, "apply_window", n, offset);
  });
}

TEST(KernelsEquivalence, AccumulateMag2Bitwise) {
  Rng rng = Rng::for_stream(1, 7);
  for_each_case([&](std::size_t n, std::size_t offset) {
    const cvec x = random_cvec(rng, n + offset);
    const rvec init = random_rvec(rng, n);
    rvec a = init, b = init;
    scalar_table().accumulate_mag2(a.data(), x.data() + offset, n);
    best_table().accumulate_mag2(b.data(), x.data() + offset, n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
          << "accumulate_mag2 i=" << i << " n=" << n << " offset=" << offset;
    }
  });
}

TEST(KernelsEquivalence, TwoTapBitwise) {
  Rng rng = Rng::for_stream(1, 8);
  for_each_case([&](std::size_t n, std::size_t offset) {
    const cvec x = random_cvec(rng, n + offset);
    const double frac = rng.uniform(0.0, 1.0);
    cvec a = x, b = x;
    scalar_table().two_tap(a.data() + offset, n, 1.0 - frac, frac);
    best_table().two_tap(b.data() + offset, n, 1.0 - frac, frac);
    expect_bitwise(a, b, "two_tap", n, offset);
  });
}

TEST(KernelsEquivalence, EnergyBitwise) {
  Rng rng = Rng::for_stream(1, 9);
  for_each_case([&](std::size_t n, std::size_t offset) {
    const cvec x = random_cvec(rng, n + offset);
    const double a = scalar_table().energy(x.data() + offset, n);
    const double b = best_table().energy(x.data() + offset, n);
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
        << "energy n=" << n << " offset=" << offset << ": " << a << " vs "
        << b;
  });
}

TEST(KernelsEquivalence, DotConjBitwise) {
  Rng rng = Rng::for_stream(1, 10);
  for_each_case([&](std::size_t n, std::size_t offset) {
    const cvec x = random_cvec(rng, n + offset);
    const cvec y = random_cvec(rng, n + offset);
    const cplx a = scalar_table().dot_conj(x.data() + offset,
                                           y.data() + offset, n);
    const cplx b = best_table().dot_conj(x.data() + offset, y.data() + offset,
                                         n);
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(cplx)), 0)
        << "dot_conj n=" << n << " offset=" << offset;
  });
}

TEST(KernelsEquivalence, CorrManyBitwise) {
  Rng rng = Rng::for_stream(1, 21);
  // Strip widths spanning the 4-offset AVX2 blocking: sub-block, exact
  // blocks, and block+tail combinations.
  const std::vector<std::size_t> kStrips = {1, 2, 3, 4, 5, 7, 8, 9, 16, 31};
  for_each_case([&](std::size_t n, std::size_t offset) {
    for (std::size_t m : kStrips) {
      const cvec x = random_cvec(rng, n + m + offset);
      const cvec y = random_cvec(rng, n + offset);
      cvec a(m), b(m);
      scalar_table().corr_many(x.data() + offset, y.data() + offset, n, m,
                               a.data());
      best_table().corr_many(x.data() + offset, y.data() + offset, n, m,
                             b.data());
      expect_bitwise(a, b, "corr_many", n, offset);
      // The strip contract: out[s] == dot_conj(a + s, b, n) bit for bit, at
      // both levels (the scanner mixes strip sweeps with per-offset dots and
      // relies on them agreeing exactly).
      for (std::size_t s = 0; s < m; ++s) {
        const cplx ds = scalar_table().dot_conj(x.data() + offset + s,
                                                y.data() + offset, n);
        const cplx db = best_table().dot_conj(x.data() + offset + s,
                                              y.data() + offset, n);
        EXPECT_EQ(std::memcmp(&a[s], &ds, sizeof(cplx)), 0)
            << "corr_many[scalar] vs dot_conj n=" << n << " m=" << m
            << " s=" << s << " offset=" << offset;
        EXPECT_EQ(std::memcmp(&b[s], &db, sizeof(cplx)), 0)
            << "corr_many[best] vs dot_conj n=" << n << " m=" << m
            << " s=" << s << " offset=" << offset;
      }
    }
  });
}

TEST(KernelsEquivalence, CumulantAccBitwise) {
  Rng rng = Rng::for_stream(1, 11);
  for_each_case([&](std::size_t n, std::size_t offset) {
    const cvec x = random_cvec(rng, n + offset);
    // Nonzero start_index exercises the lane-alignment head path.
    for (std::size_t start : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      CumulantLanes a{}, b{};
      scalar_table().cumulant_acc(x.data() + offset, n, start, &a);
      best_table().cumulant_acc(x.data() + offset, n, start, &b);
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(CumulantLanes)), 0)
          << "cumulant lanes n=" << n << " offset=" << offset
          << " start=" << start;
      const CumulantSums fa = a.fold();
      const CumulantSums fb = b.fold();
      EXPECT_EQ(std::memcmp(&fa, &fb, sizeof(CumulantSums)), 0)
          << "cumulant fold n=" << n << " offset=" << offset
          << " start=" << start;
    }
  });
}

TEST(KernelsEquivalence, CumulantAccPartitionInvariant) {
  // Splitting a stream into arbitrary blocks must reproduce the one-shot
  // sums bit for bit — this is what StreamingCumulants relies on.
  Rng rng = Rng::for_stream(1, 12);
  const cvec x = random_cvec(rng, 129);
  CumulantLanes whole{};
  best_table().cumulant_acc(x.data(), x.size(), 0, &whole);
  for (std::size_t split : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    CumulantLanes parts{};
    std::size_t done = 0;
    while (done < x.size()) {
      const std::size_t chunk = std::min(split, x.size() - done);
      best_table().cumulant_acc(x.data() + done, chunk, done, &parts);
      done += chunk;
    }
    EXPECT_EQ(std::memcmp(&whole, &parts, sizeof(CumulantLanes)), 0)
        << "partition split=" << split;
  }
}

TEST(KernelsEquivalence, FirMacTolerance) {
  Rng rng = Rng::for_stream(1, 13);
  for (std::size_t n : kLengths) {
    for (std::size_t t : {std::size_t{1}, std::size_t{4}, std::size_t{9}}) {
      const cvec x = random_cvec(rng, n);
      const rvec taps = random_rvec(rng, t);
      cvec a(n + t - 1, cplx{0.0, 0.0});
      cvec b(n + t - 1, cplx{0.0, 0.0});
      scalar_table().fir_mac(x.data(), n, taps.data(), t, a.data());
      best_table().fir_mac(x.data(), n, taps.data(), t, b.data());
      expect_close(a, b, 1e-12, "fir_mac", n, t);
    }
  }
}

TEST(KernelsEquivalence, RotateToleranceWithBitwisePhase) {
  Rng rng = Rng::for_stream(1, 14);
  for (std::size_t n : kLengths) {
    const cvec x = random_cvec(rng, n);
    const double phase = rng.uniform(-3.0, 3.0);
    const double step = rng.uniform(-0.3, 0.3);
    cvec a(n), b(n);
    const double pa = scalar_table().rotate(x.data(), n, a.data(), phase, step);
    const double pb = best_table().rotate(x.data(), n, b.data(), phase, step);
    // Samples: tolerance. Final phase: bitwise (mixer state must not fork
    // between dispatch levels).
    expect_close(a, b, 1e-11, "rotate", n, 0);
    EXPECT_EQ(std::memcmp(&pa, &pb, sizeof(double)), 0)
        << "rotate final phase n=" << n;
  }
}

TEST(KernelsEquivalence, RotateInPlaceMatchesOutOfPlace) {
  Rng rng = Rng::for_stream(1, 15);
  const cvec x = random_cvec(rng, 127);
  cvec out(127);
  cvec inplace = x;
  const double p1 = best_table().rotate(x.data(), x.size(), out.data(), 0.5,
                                        0.01);
  const double p2 = best_table().rotate(inplace.data(), inplace.size(),
                                        inplace.data(), 0.5, 0.01);
  EXPECT_EQ(p1, p2);
  expect_bitwise(out, inplace, "rotate in-place", x.size(), 0);
}

TEST(KernelsEquivalence, OqpskMfTolerance) {
  Rng rng = Rng::for_stream(1, 16);
  for (std::size_t num_chips : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                                std::size_t{33}}) {
    for (std::size_t spc : {std::size_t{2}, std::size_t{4}}) {
      const std::size_t plen = 2 * spc;
      const cvec wave = random_cvec(rng, (num_chips + 1) * spc);
      const rvec pulse = random_rvec(rng, plen);
      double pulse_energy = 0.0;
      for (double p : pulse) pulse_energy += p * p;
      pulse_energy += 1.0;  // keep the divisor well away from zero
      rvec a(num_chips), b(num_chips);
      scalar_table().oqpsk_mf(wave.data(), num_chips, spc, pulse.data(), plen,
                              pulse_energy, a.data());
      best_table().oqpsk_mf(wave.data(), num_chips, spc, pulse.data(), plen,
                            pulse_energy, b.data());
      for (std::size_t i = 0; i < num_chips; ++i) {
        EXPECT_NEAR(a[i], b[i], 1e-12)
            << "oqpsk_mf chip " << i << " num_chips=" << num_chips
            << " spc=" << spc;
      }
    }
  }
}

TEST(KernelsEquivalence, PackHardChipsBitwise) {
  Rng rng = Rng::for_stream(1, 17);
  for (std::size_t m : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                        std::size_t{8}, std::size_t{9}, std::size_t{20}}) {
    std::vector<std::uint8_t> chips(32 * m);
    for (auto& c : chips) c = static_cast<std::uint8_t>(rng.uniform_index(2));
    std::vector<std::uint32_t> a(m, 0xdeadbeefu), b(m, 0xfeedfaceu);
    scalar_table().pack_hard_chips(chips.data(), m, a.data());
    best_table().pack_hard_chips(chips.data(), m, b.data());
    EXPECT_EQ(a, b) << "pack_hard_chips m=" << m;
  }
}

TEST(KernelsEquivalence, PackSignChipsBitwise) {
  Rng rng = Rng::for_stream(1, 18);
  for (std::size_t m : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                        std::size_t{8}, std::size_t{9}, std::size_t{20}}) {
    rvec freq = random_rvec(rng, 32 * m);
    freq[0] = 0.0;  // the > 0 boundary itself
    std::vector<std::uint32_t> a(m), b(m);
    scalar_table().pack_sign_chips(freq.data(), m, a.data());
    best_table().pack_sign_chips(freq.data(), m, b.data());
    EXPECT_EQ(a, b) << "pack_sign_chips m=" << m;
  }
}

TEST(KernelsEquivalence, DespreadWordsBitwise) {
  Rng rng = Rng::for_stream(1, 19);
  std::vector<std::uint32_t> rows(16);
  for (auto& r : rows) {
    r = static_cast<std::uint32_t>(rng.uniform_index(0x100000000ull));
  }
  // Duplicate a row so the lowest-index tie-break is actually exercised.
  rows[9] = rows[2];
  for (std::size_t m : {std::size_t{1}, std::size_t{5}, std::size_t{8},
                        std::size_t{13}, std::size_t{16}, std::size_t{40}}) {
    std::vector<std::uint32_t> received(m);
    for (auto& r : received) {
      r = static_cast<std::uint32_t>(rng.uniform_index(0x100000000ull));
    }
    received[0] = rows[2];  // exact match -> must pick symbol 2, never 9
    for (std::uint32_t mask : {~std::uint32_t{0}, ~std::uint32_t{1}}) {
      std::vector<std::uint8_t> sym_a(m), sym_b(m), dist_a(m), dist_b(m);
      scalar_table().despread_words(received.data(), m, rows.data(), mask,
                                    sym_a.data(), dist_a.data());
      best_table().despread_words(received.data(), m, rows.data(), mask,
                                  sym_b.data(), dist_b.data());
      EXPECT_EQ(sym_a, sym_b) << "despread symbols m=" << m;
      EXPECT_EQ(dist_a, dist_b) << "despread distances m=" << m;
      EXPECT_EQ(sym_a[0], 2u) << "tie-break must pick the lowest row";
    }
  }
}

TEST(KernelsEquivalence, Match16MatchesDespreadWords) {
  Rng rng = Rng::for_stream(1, 20);
  std::vector<std::uint32_t> rows(16);
  for (auto& r : rows) {
    r = static_cast<std::uint32_t>(rng.uniform_index(0x100000000ull));
  }
  for (int trial = 0; trial < 64; ++trial) {
    const auto word =
        static_cast<std::uint32_t>(rng.uniform_index(0x100000000ull));
    const std::uint32_t mask = trial % 2 == 0 ? ~std::uint32_t{0}
                                              : ~std::uint32_t{1};
    std::uint8_t sym_s = 0, dist_s = 0, sym_b = 0, dist_b = 0;
    scalar_table().match16(word, rows.data(), mask, &sym_s, &dist_s);
    best_table().match16(word, rows.data(), mask, &sym_b, &dist_b);
    EXPECT_EQ(sym_s, sym_b);
    EXPECT_EQ(dist_s, dist_b);
    std::uint8_t sym_w = 0, dist_w = 0;
    best_table().despread_words(&word, 1, rows.data(), mask, &sym_w, &dist_w);
    EXPECT_EQ(sym_s, sym_w);
    EXPECT_EQ(dist_s, dist_w);
  }
}

}  // namespace
}  // namespace ctc::dsp::kernels
