#include "dsp/resample.h"

#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "dsp/require.h"
#include "dsp/rng.h"
#include "dsp/stats.h"

namespace ctc::dsp {
namespace {

cvec bandlimited_signal(std::size_t n, double max_freq, std::uint64_t seed) {
  // Sum of random tones below max_freq (cycles/sample).
  Rng rng(seed);
  cvec x(n, cplx{0.0, 0.0});
  for (int tone = 0; tone < 8; ++tone) {
    const double f = rng.uniform(-max_freq, max_freq);
    const double phase = rng.uniform(0.0, kTwoPi);
    const double amp = rng.uniform(0.5, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double angle = kTwoPi * f * static_cast<double>(i) + phase;
      x[i] += amp * cplx{std::cos(angle), std::sin(angle)};
    }
  }
  return x;
}

TEST(UpsampleTest, FactorOneIsIdentity) {
  const cvec x = bandlimited_signal(32, 0.2, 1);
  const cvec y = upsample(x, 1);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(UpsampleTest, OutputLengthScales) {
  const cvec x = bandlimited_signal(40, 0.2, 2);
  EXPECT_EQ(upsample(x, 5).size(), 200u);
  EXPECT_TRUE(upsample(cvec{}, 5).empty());
  EXPECT_THROW(upsample(x, 0), ContractError);
}

TEST(UpsampleTest, OriginalSamplesPreserved) {
  // Delay compensation: y[i*factor] ~= x[i] away from the edges.
  const cvec x = bandlimited_signal(120, 0.15, 3);
  const cvec y = upsample(x, 5);
  for (std::size_t i = 15; i + 15 < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i * 5] - x[i]), 0.0, 0.03) << "i=" << i;
  }
}

TEST(UpsampleTest, NoSpectralImages) {
  // A low tone upsampled x4 must not leave images at f/4 multiples.
  const std::size_t n = 128;
  cvec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = kTwoPi * 0.05 * static_cast<double>(i);
    x[i] = {std::cos(angle), std::sin(angle)};
  }
  const cvec y = upsample(x, 4);
  FftPlan plan(512);
  const cvec spectrum = plan.forward(std::span<const cplx>(y).subspan(0, 512));
  // Tone now at bin 512*0.05/4 = 6.4ish; image would be near bins 128+6, 256+6...
  double image_power = 0.0;
  double tone_power = 0.0;
  for (std::size_t k = 0; k < 512; ++k) {
    const double p = std::norm(spectrum[k]);
    if (k > 100 && k < 480) image_power += p;
    else tone_power += p;
  }
  EXPECT_LT(image_power, 0.02 * tone_power);
}

TEST(DecimateTest, RoundTripWithUpsampleIsNearIdentity) {
  for (std::size_t factor : {2u, 4u, 5u}) {
    const cvec x = bandlimited_signal(256, 0.2, 40 + factor);
    cvec y = decimate(upsample(x, factor), factor);
    y.resize(x.size());
    // Edge transients excluded by NMSE being tiny overall.
    EXPECT_LT(nmse(x, y), 0.01) << "factor=" << factor;
  }
}

TEST(DecimateTest, FactorOneIsIdentity) {
  const cvec x = bandlimited_signal(16, 0.1, 5);
  const cvec y = decimate(x, 1);
  ASSERT_EQ(y.size(), x.size());
}

TEST(DecimateTest, RemovesOutOfBandTone) {
  // A tone at 0.3 cycles/sample aliases when decimating by 4 unless filtered.
  const std::size_t n = 400;
  cvec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = kTwoPi * 0.3 * static_cast<double>(i);
    x[i] = {std::cos(angle), std::sin(angle)};
  }
  const cvec y = decimate(x, 4);
  EXPECT_LT(average_power(std::span<const cplx>(y).subspan(10, y.size() - 20)), 0.01);
}

TEST(MixerTest, ShiftsToneToNewFrequency) {
  const std::size_t n = 256;
  cvec x(n, cplx{1.0, 0.0});  // DC tone
  const cvec y = frequency_shift(x, 1.0e6, 4.0e6);  // -> bin n/4
  FftPlan plan(n);
  const cvec spectrum = plan.forward(y);
  std::size_t best = 0;
  for (std::size_t k = 1; k < n; ++k) {
    if (std::abs(spectrum[k]) > std::abs(spectrum[best])) best = k;
  }
  EXPECT_EQ(best, n / 4);
}

TEST(MixerTest, PhaseContinuousAcrossBlocks) {
  Mixer mixer(0.7e6, 20.0e6);
  cvec ones(30, cplx{1.0, 0.0});
  const cvec first = mixer.process(std::span<const cplx>(ones).subspan(0, 10));
  const cvec second = mixer.process(std::span<const cplx>(ones).subspan(10, 20));
  Mixer reference(0.7e6, 20.0e6);
  const cvec whole = reference.process(ones);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(std::abs(first[i] - whole[i]), 0.0, 1e-12);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(std::abs(second[i] - whole[10 + i]), 0.0, 1e-9);
}

TEST(MixerTest, OppositeShiftsCancel) {
  const cvec x = bandlimited_signal(100, 0.1, 6);
  const cvec shifted = frequency_shift(x, 5.0e6, 20.0e6);
  const cvec back = frequency_shift(shifted, -5.0e6, 20.0e6);
  EXPECT_LT(nmse(x, back), 1e-20);
}

TEST(MixerTest, PreservesPower) {
  const cvec x = bandlimited_signal(100, 0.1, 7);
  const cvec shifted = frequency_shift(x, 3.3e6, 20.0e6);
  EXPECT_NEAR(average_power(shifted), average_power(x), 1e-9);
}

TEST(MixerTest, RejectsNonPositiveSampleRate) {
  EXPECT_THROW(Mixer(1.0, 0.0), ContractError);
}

}  // namespace
}  // namespace ctc::dsp
