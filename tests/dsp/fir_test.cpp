#include "dsp/fir.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"
#include "dsp/stats.h"

namespace ctc::dsp {
namespace {

TEST(FirDesignTest, RejectsBadParameters) {
  EXPECT_THROW(design_lowpass(0.0, 11), ContractError);
  EXPECT_THROW(design_lowpass(0.5, 11), ContractError);
  EXPECT_THROW(design_lowpass(0.25, 10), ContractError);  // even taps
  EXPECT_THROW(design_lowpass(0.25, 1), ContractError);
}

TEST(FirDesignTest, UnityDcGain) {
  const rvec taps = design_lowpass(0.2, 31);
  double sum = 0.0;
  for (double t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FirDesignTest, SymmetricLinearPhase) {
  const rvec taps = design_lowpass(0.15, 41);
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-12);
  }
}

double tone_gain(const rvec& taps, double frequency) {
  // Magnitude response at `frequency` (cycles/sample) via direct evaluation.
  cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < taps.size(); ++i) {
    const double angle = -kTwoPi * frequency * static_cast<double>(i);
    acc += taps[i] * cplx{std::cos(angle), std::sin(angle)};
  }
  return std::abs(acc);
}

TEST(FirDesignTest, PassbandAndStopbandBehave) {
  const rvec taps = design_lowpass(0.1, 101);
  EXPECT_NEAR(tone_gain(taps, 0.0), 1.0, 1e-6);
  EXPECT_NEAR(tone_gain(taps, 0.05), 1.0, 0.01);
  EXPECT_LT(tone_gain(taps, 0.2), 0.01);
  EXPECT_LT(tone_gain(taps, 0.4), 0.01);
  // -6 dB point at the cutoff (windowed-sinc property).
  EXPECT_NEAR(tone_gain(taps, 0.1), 0.5, 0.02);
}

TEST(ConvolveTest, IdentityKernel) {
  Rng rng(21);
  cvec x(50);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  const rvec delta = {1.0};
  const cvec y = convolve(x, delta);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12);
}

TEST(ConvolveTest, LengthAndKnownValues) {
  const cvec x = {{1, 0}, {2, 0}, {3, 0}};
  const rvec h = {1.0, 1.0};
  const cvec y = convolve(x, h);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0].real(), 1.0);
  EXPECT_DOUBLE_EQ(y[1].real(), 3.0);
  EXPECT_DOUBLE_EQ(y[2].real(), 5.0);
  EXPECT_DOUBLE_EQ(y[3].real(), 3.0);
}

TEST(ConvolveTest, EmptySignalGivesEmptyOutput) {
  const rvec h = {1.0, 2.0};
  EXPECT_TRUE(convolve(cvec{}, h).empty());
  EXPECT_THROW(convolve(cvec{{1, 0}}, rvec{}), ContractError);
}

TEST(FilterSameTest, AlignsWithInput) {
  // A delayed-impulse kernel with delay compensation must return the input.
  Rng rng(22);
  cvec x(64);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  rvec h(11, 0.0);
  h[5] = 1.0;  // pure delay of (taps-1)/2
  const cvec y = filter_same(x, h);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12);
}

TEST(FilterSameTest, RequiresOddTaps) {
  cvec x(8, cplx{1.0, 0.0});
  EXPECT_THROW(filter_same(x, rvec{0.5, 0.5}), ContractError);
}

TEST(FirFilterTest, StreamingMatchesBatchConvolution) {
  Rng rng(23);
  cvec x(97);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  const rvec taps = design_lowpass(0.2, 15);

  const cvec batch = convolve(x, taps);  // causal part = batch[0..x.size())
  FirFilter filter(taps);
  cvec streamed;
  std::size_t cursor = 0;
  for (std::size_t block : {7u, 13u, 1u, 30u, 46u}) {
    const std::size_t take = std::min(block, x.size() - cursor);
    const cvec out = filter.process(std::span<const cplx>(x).subspan(cursor, take));
    streamed.insert(streamed.end(), out.begin(), out.end());
    cursor += take;
  }
  ASSERT_EQ(cursor, x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(streamed[i] - batch[i]), 0.0, 1e-12) << "i=" << i;
  }
}

TEST(FirFilterTest, ResetClearsHistory) {
  const rvec taps = {0.5, 0.5};
  FirFilter filter(taps);
  const cvec first = filter.process(cvec{{2.0, 0.0}});
  filter.reset();
  const cvec second = filter.process(cvec{{2.0, 0.0}});
  EXPECT_EQ(first[0], second[0]);
}

TEST(FirFilterTest, SingleTapIsPureGain) {
  FirFilter filter(rvec{2.0});
  const cvec out = filter.process(cvec{{1.0, 1.0}, {0.5, 0.0}});
  EXPECT_NEAR(std::abs(out[0] - cplx(2.0, 2.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(out[1] - cplx(1.0, 0.0)), 0.0, 1e-12);
}

}  // namespace
}  // namespace ctc::dsp
