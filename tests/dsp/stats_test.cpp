#include "dsp/stats.h"

#include <gtest/gtest.h>

#include "dsp/require.h"

namespace ctc::dsp {
namespace {

TEST(StatsTest, MeanAndVariance) {
  const rvec v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_THROW(mean(rvec{}), ContractError);
}

TEST(StatsTest, EnergyAndPower) {
  const cvec x = {{3.0, 4.0}, {0.0, 0.0}};
  EXPECT_DOUBLE_EQ(energy(x), 25.0);
  EXPECT_DOUBLE_EQ(average_power(x), 12.5);
  EXPECT_THROW(average_power(cvec{}), ContractError);
}

TEST(StatsTest, NormalizePowerGivesUnitPower) {
  cvec x = {{2.0, 0.0}, {0.0, 2.0}, {1.0, 1.0}};
  const cvec y = normalize_power(x);
  EXPECT_NEAR(average_power(y), 1.0, 1e-12);
  EXPECT_THROW(normalize_power(cvec{{0.0, 0.0}}), ContractError);
}

TEST(StatsTest, NmseZeroForIdenticalSignals) {
  const cvec x = {{1.0, 2.0}, {3.0, -1.0}};
  EXPECT_DOUBLE_EQ(nmse(x, x), 0.0);
}

TEST(StatsTest, NmseOneForZeroTest) {
  const cvec x = {{1.0, 0.0}, {0.0, 1.0}};
  const cvec zero(2, cplx{0.0, 0.0});
  EXPECT_DOUBLE_EQ(nmse(x, zero), 1.0);
}

TEST(StatsTest, NmseChecksPreconditions) {
  const cvec x = {{1.0, 0.0}};
  const cvec y = {{1.0, 0.0}, {2.0, 0.0}};
  EXPECT_THROW(nmse(x, y), ContractError);
  const cvec zero(1, cplx{0.0, 0.0});
  EXPECT_THROW(nmse(zero, x), ContractError);
}

TEST(StatsTest, EvmMatchesHandComputation) {
  const cvec ideal = {{1.0, 0.0}, {-1.0, 0.0}};
  const cvec received = {{1.1, 0.0}, {-0.9, 0.0}};
  // err = 0.01 + 0.01, ref = 2 -> sqrt(0.01) = 0.1
  EXPECT_NEAR(evm_rms(ideal, received), 0.1, 1e-12);
}

TEST(StatsTest, DbConversionsRoundTrip) {
  EXPECT_NEAR(to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(from_db(20.0), 100.0, 1e-9);
  EXPECT_NEAR(from_db(to_db(0.37)), 0.37, 1e-12);
  EXPECT_THROW(to_db(0.0), ContractError);
}

}  // namespace
}  // namespace ctc::dsp
