#include "dsp/iq_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dsp/require.h"
#include "dsp/rng.h"

namespace ctc::dsp {
namespace {

class IqIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "ctc_iq_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(IqIoTest, Cf32RoundTripPreservesSamples) {
  Rng rng(320);
  cvec samples(1000);
  for (auto& s : samples) s = rng.complex_gaussian(3.0);
  const auto path = dir_ / "capture.cf32";
  write_cf32(path, samples);
  const cvec loaded = read_cf32(path);
  ASSERT_EQ(loaded.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // float32 quantization only.
    EXPECT_NEAR(std::abs(loaded[i] - samples[i]), 0.0, 1e-6 * std::abs(samples[i]) + 1e-9);
  }
}

TEST_F(IqIoTest, EmptyCaptureRoundTrips) {
  const auto path = dir_ / "empty.cf32";
  write_cf32(path, cvec{});
  EXPECT_TRUE(read_cf32(path).empty());
}

TEST_F(IqIoTest, FileSizeMatchesGnuRadioLayout) {
  const cvec samples(17, cplx{1.0, -1.0});
  const auto path = dir_ / "layout.cf32";
  write_cf32(path, samples);
  EXPECT_EQ(std::filesystem::file_size(path), 17u * 2 * 4);
}

TEST_F(IqIoTest, ReadRejectsTruncatedFile) {
  const auto path = dir_ / "truncated.cf32";
  std::ofstream out(path, std::ios::binary);
  const char junk[6] = {0};
  out.write(junk, sizeof junk);  // not a multiple of 8 bytes
  out.close();
  EXPECT_THROW(read_cf32(path), ContractError);
}

TEST_F(IqIoTest, ReadRejectsMissingFile) {
  EXPECT_THROW(read_cf32(dir_ / "does_not_exist.cf32"), ContractError);
}

TEST_F(IqIoTest, CsvHasHeaderAndOneRowPerSample) {
  const cvec samples = {{1.5, -2.5}, {0.0, 3.0}};
  const auto path = dir_ / "capture.csv";
  write_csv(path, samples);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "index,i,q");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1.5,-2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "1,0,3");
  EXPECT_FALSE(std::getline(in, line));
}

TEST_F(IqIoTest, WriteRejectsUnwritablePath) {
  EXPECT_THROW(write_cf32(dir_ / "no_such_dir" / "x.cf32", cvec(4)), ContractError);
}

}  // namespace
}  // namespace ctc::dsp
