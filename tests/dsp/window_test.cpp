#include "dsp/window.h"

#include <gtest/gtest.h>

#include "dsp/require.h"

namespace ctc::dsp {
namespace {

class WindowKindTest : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowKindTest, SymmetricAndBounded) {
  const rvec w = make_window(GetParam(), 33);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
    EXPECT_GE(w[i], -1e-12);
    EXPECT_LE(w[i], 1.0 + 1e-12);
  }
}

TEST_P(WindowKindTest, PeaksAtCenter) {
  const rvec w = make_window(GetParam(), 33);
  const double center = w[16];
  for (double v : w) EXPECT_LE(v, center + 1e-12);
}

TEST_P(WindowKindTest, SingleSampleIsOne) {
  const rvec w = make_window(GetParam(), 1);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WindowKindTest,
                         ::testing::Values(WindowKind::rectangular,
                                           WindowKind::hann, WindowKind::hamming,
                                           WindowKind::blackman));

TEST(WindowTest, RectangularIsAllOnes) {
  const rvec w = make_window(WindowKind::rectangular, 8);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(WindowTest, HannEndpointsAreZero) {
  const rvec w = make_window(WindowKind::hann, 17);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[8], 1.0, 1e-12);
}

TEST(WindowTest, HammingEndpointsKnownValue) {
  const rvec w = make_window(WindowKind::hamming, 21);
  EXPECT_NEAR(w.front(), 0.08, 1e-12);
  EXPECT_NEAR(w[10], 1.0, 1e-12);
}

TEST(WindowTest, BlackmanEndpointsNearZero) {
  const rvec w = make_window(WindowKind::blackman, 21);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w[10], 1.0, 1e-12);
}

TEST(WindowTest, RejectsZeroLength) {
  EXPECT_THROW(make_window(WindowKind::hann, 0), ContractError);
}

}  // namespace
}  // namespace ctc::dsp
