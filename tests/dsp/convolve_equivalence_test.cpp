// Equivalence suite for the FFT convolution fast path (PERFORMANCE.md).
//
// FFT and direct convolution compute the same polynomial product in a
// different floating-point summation order, so the two paths agree to a few
// ULPs — never bitwise. These tests pin the tolerance contract (relative to
// the signal scale) across odd/even/edge lengths, the dispatcher policy,
// and the FirFilter streaming path that mixes FFT blocks with direct ones.
#include "dsp/fir.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/require.h"
#include "dsp/rng.h"

namespace ctc::dsp {
namespace {

cvec random_signal(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  cvec out(size);
  for (auto& x : out) x = rng.complex_gaussian(1.0);
  return out;
}

rvec random_taps(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  rvec out(size);
  for (auto& t : out) t = rng.uniform(-1.0, 1.0);
  return out;
}

/// Max |a - b| over both outputs, normalized by the direct result's peak so
/// the bound is scale-free.
double max_relative_error(const cvec& direct, const cvec& fft) {
  EXPECT_EQ(direct.size(), fft.size());
  double peak = 0.0;
  for (const cplx& x : direct) peak = std::max(peak, std::abs(x));
  double worst = 0.0;
  for (std::size_t i = 0; i < direct.size(); ++i) {
    worst = std::max(worst, std::abs(direct[i] - fft[i]));
  }
  return peak > 0.0 ? worst / peak : worst;
}

TEST(ConvolveEquivalenceTest, FftMatchesDirectAcrossLengths) {
  // Odd/even/prime/power-of-two signal lengths against odd/even tap counts,
  // including lengths right at the FFT padding boundary.
  const std::size_t signal_sizes[] = {1, 2, 3, 17, 64, 127, 128, 129, 1000};
  const std::size_t tap_sizes[] = {1, 2, 5, 16, 31, 64, 101};
  std::uint64_t seed = 1;
  for (std::size_t n : signal_sizes) {
    for (std::size_t t : tap_sizes) {
      const cvec signal = random_signal(n, seed);
      const rvec taps = random_taps(t, seed + 1000);
      ++seed;
      const cvec direct = convolve_direct(signal, taps);
      const cvec fft = convolve_fft(signal, taps);
      ASSERT_EQ(direct.size(), n + t - 1);
      EXPECT_LT(max_relative_error(direct, fft), 1e-12)
          << "n=" << n << " t=" << t;
    }
  }
}

TEST(ConvolveEquivalenceTest, FftMatchesDirectAtCrossoverScale) {
  // A workload the dispatcher actually routes to the FFT path.
  const std::size_t n = 4096;
  const std::size_t t = 1025;
  ASSERT_TRUE(use_fft_convolution(n, t));
  const cvec signal = random_signal(n, 77);
  const rvec taps = random_taps(t, 78);
  EXPECT_LT(max_relative_error(convolve_direct(signal, taps),
                               convolve_fft(signal, taps)),
            1e-11);
}

TEST(ConvolveEquivalenceTest, DispatcherFollowsPolicy) {
  // convolve() must route exactly per use_fft_convolution: below the
  // crossover it returns the direct result bit-for-bit.
  const cvec signal = random_signal(300, 5);
  const rvec taps = random_taps(21, 6);
  ASSERT_FALSE(use_fft_convolution(signal.size(), taps.size()));
  const cvec dispatched = convolve(signal, taps);
  const cvec direct = convolve_direct(signal, taps);
  ASSERT_EQ(dispatched.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(dispatched[i], direct[i]) << "i=" << i;
  }
}

TEST(ConvolveEquivalenceTest, PolicyKeepsShortFiltersDirect) {
  // The per-trial receive path runs short matched filters; they must never
  // pay the FFT constant factor (or lose bitwise time-invariance).
  EXPECT_FALSE(use_fft_convolution(1 << 20, 15));
  EXPECT_FALSE(use_fft_convolution(1 << 20, 101));
  EXPECT_TRUE(use_fft_convolution(8192, 4097));
  // Tiny signals never go FFT regardless of tap count.
  EXPECT_FALSE(use_fft_convolution(16, 1024));
}

TEST(ConvolveEquivalenceTest, FilterSamePolicyPinsThePath) {
  const cvec signal = random_signal(257, 9);
  const rvec taps = random_taps(33, 10);
  const cvec direct = filter_same(signal, taps, ConvolvePolicy::direct);
  const cvec fft = filter_same(signal, taps, ConvolvePolicy::fft);
  const cvec automatic = filter_same(signal, taps);
  ASSERT_EQ(direct.size(), signal.size());
  // automatic == direct bitwise here (below crossover), fft only close.
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(automatic[i], direct[i]) << "i=" << i;
  }
  EXPECT_LT(max_relative_error(direct, fft), 1e-12);
}

TEST(ConvolveEquivalenceTest, StreamingFftBlocksMatchDirectStreaming) {
  // Push one block big enough for the FFT branch through FirFilter, with
  // nonzero history, and compare against an identical filter kept on the
  // direct path by splitting the block below the crossover.
  const std::size_t t = 1025;
  const rvec taps = random_taps(t, 20);
  const cvec warmup = random_signal(t - 1, 21);
  const cvec block = random_signal(4096, 22);
  ASSERT_TRUE(use_fft_convolution(block.size() + t - 1, t));

  FirFilter fast(taps);
  FirFilter reference(taps);
  // Identical warmup so both filters carry the same history.
  (void)fast.process(warmup);
  (void)reference.process(warmup);

  const cvec fast_out = fast.process(block);
  cvec reference_out;
  for (std::size_t offset = 0; offset < block.size(); offset += 256) {
    const std::size_t take = std::min<std::size_t>(256, block.size() - offset);
    const cvec piece = reference.process(
        std::span<const cplx>(block).subspan(offset, take));
    reference_out.insert(reference_out.end(), piece.begin(), piece.end());
  }
  EXPECT_LT(max_relative_error(reference_out, fast_out), 1e-11);

  // The history both filters carry forward must agree too: feed one more
  // sub-crossover block (both take the direct branch) and compare.
  const cvec tail = random_signal(64, 23);
  const cvec fast_tail = fast.process(tail);
  const cvec reference_tail = reference.process(tail);
  EXPECT_LT(max_relative_error(reference_tail, fast_tail), 1e-11);
}

TEST(ConvolveEquivalenceTest, FftPathHandlesEdgeCases) {
  EXPECT_TRUE(convolve_fft(cvec{}, rvec{1.0}).empty());
  EXPECT_THROW(convolve_fft(random_signal(4, 30), rvec{}), ContractError);
  // Single-sample signal and kernel.
  const cvec one = convolve_fft(cvec{{2.0, -1.0}}, rvec{3.0});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_NEAR(std::abs(one[0] - cplx(6.0, -3.0)), 0.0, 1e-12);
}

}  // namespace
}  // namespace ctc::dsp
