#include "dsp/fft.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"
#include "dsp/stats.h"

namespace ctc::dsp {
namespace {

cvec random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  cvec x(n);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  return x;
}

double max_abs_diff(const cvec& a, const cvec& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

TEST(FftTest, PowerOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(65));
}

TEST(FftTest, RejectsNonPowerOfTwoSizes) {
  EXPECT_THROW(FftPlan(3), ContractError);
  EXPECT_THROW(FftPlan(0), ContractError);
  EXPECT_THROW(FftPlan(1), ContractError);
}

TEST(FftTest, RejectsWrongInputLength) {
  FftPlan plan(8);
  cvec x(7);
  EXPECT_THROW(plan.forward(x), ContractError);
  EXPECT_THROW(plan.inverse(x), ContractError);
}

TEST(FftTest, ImpulseTransformsToFlatSpectrum) {
  FftPlan plan(16);
  cvec x(16, cplx{0.0, 0.0});
  x[0] = {1.0, 0.0};
  const cvec spectrum = plan.forward(x);
  for (const cplx& value : spectrum) {
    EXPECT_NEAR(value.real(), 1.0, 1e-12);
    EXPECT_NEAR(value.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  FftPlan plan(n);
  cvec x(n);
  const std::size_t tone = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = kTwoPi * static_cast<double>(tone) * static_cast<double>(i) /
                         static_cast<double>(n);
    x[i] = {std::cos(angle), std::sin(angle)};
  }
  const cvec spectrum = plan.forward(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == tone) {
      EXPECT_NEAR(std::abs(spectrum[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9);
    }
  }
}

class FftSizesTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizesTest, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, 100 + n);
  FftPlan plan(n);
  EXPECT_LT(max_abs_diff(plan.forward(x), dft(x)), 1e-9);
}

TEST_P(FftSizesTest, InverseMatchesReferenceIdft) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, 200 + n);
  FftPlan plan(n);
  EXPECT_LT(max_abs_diff(plan.inverse(x), idft(x)), 1e-9);
}

TEST_P(FftSizesTest, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, 300 + n);
  FftPlan plan(n);
  EXPECT_LT(max_abs_diff(plan.inverse(plan.forward(x)), x), 1e-9);
}

TEST_P(FftSizesTest, ParsevalHolds) {
  // The identity the attack's Eq. (2) rests on:
  // sum |x|^2 == (1/N) sum |X|^2.
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, 400 + n);
  FftPlan plan(n);
  const cvec spectrum = plan.forward(x);
  EXPECT_NEAR(energy(x), energy(spectrum) / static_cast<double>(n), 1e-8 * energy(x));
}

TEST_P(FftSizesTest, LinearityHolds) {
  const std::size_t n = GetParam();
  const cvec a = random_signal(n, 500 + n);
  const cvec b = random_signal(n, 600 + n);
  cvec sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + cplx{0.0, 3.0} * b[i];
  FftPlan plan(n);
  const cvec fa = plan.forward(a);
  const cvec fb = plan.forward(b);
  const cvec fsum = plan.forward(sum);
  cvec expected(n);
  for (std::size_t i = 0; i < n; ++i) expected[i] = 2.0 * fa[i] + cplx{0.0, 3.0} * fb[i];
  EXPECT_LT(max_abs_diff(fsum, expected), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizesTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256));

TEST(FftShiftTest, EvenLengthSwapsHalves) {
  const cvec x = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const cvec shifted = fftshift(x);
  EXPECT_DOUBLE_EQ(shifted[0].real(), 2.0);
  EXPECT_DOUBLE_EQ(shifted[1].real(), 3.0);
  EXPECT_DOUBLE_EQ(shifted[2].real(), 0.0);
  EXPECT_DOUBLE_EQ(shifted[3].real(), 1.0);
}

TEST(FftShiftTest, InverseUndoesShiftForOddAndEvenLengths) {
  for (std::size_t n : {4u, 5u, 7u, 64u}) {
    const cvec x = random_signal(n, 700 + n);
    EXPECT_LT(max_abs_diff(ifftshift(fftshift(x)), x), 1e-15) << "n=" << n;
  }
}

}  // namespace
}  // namespace ctc::dsp
