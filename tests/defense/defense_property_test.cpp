// Property-style sweeps over the defense features.
#include <gtest/gtest.h>

#include "defense/detector.h"
#include "dsp/rng.h"

namespace ctc::defense {
namespace {

rvec qpsk_chips(std::size_t n, double noise, dsp::Rng& rng) {
  rvec chips(n);
  for (auto& c : chips) c = (rng.bit() ? 1.0 : -1.0) + noise * rng.gaussian();
  return chips;
}

class RotationAngleTest : public ::testing::TestWithParam<double> {};

TEST_P(RotationAngleTest, C40RotatesByFourTheta_C42AndMagnitudeInvariant) {
  dsp::Rng rng(1000);
  const rvec chips = qpsk_chips(8192, 0.1, rng);
  const double theta = GetParam();
  rvec rotated(chips.size());
  for (std::size_t i = 0; i + 1 < chips.size(); i += 2) {
    const cplx p = cplx{chips[i], chips[i + 1]} * std::polar(1.0, theta);
    rotated[i] = p.real();
    rotated[i + 1] = p.imag();
  }
  const cvec base_points = build_constellation(chips);
  const cvec rotated_points = build_constellation(rotated);
  const auto base = estimate_cumulants(base_points);
  const auto rot = estimate_cumulants(rotated_points);
  const cplx expected = base.normalized_c40() * std::polar(1.0, 4.0 * theta);
  EXPECT_NEAR(std::abs(rot.normalized_c40() - expected), 0.0, 1e-9);
  EXPECT_NEAR(rot.normalized_c42(), base.normalized_c42(), 1e-9);
  EXPECT_NEAR(std::abs(rot.normalized_c40()), std::abs(base.normalized_c40()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Angles, RotationAngleTest,
                         ::testing::Values(0.1, 0.5, kPi / 4.0, 1.3, 2.9,
                                           -0.7, -2.0));

class ScaleInvarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(ScaleInvarianceTest, DetectorFeatureIsScaleFree) {
  dsp::Rng rng(1001);
  const rvec chips = qpsk_chips(4096, 0.25, rng);
  rvec scaled(chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) scaled[i] = GetParam() * chips[i];
  Detector detector;
  const Feature a = detector.feature_from_chips(chips);
  const Feature b = detector.feature_from_chips(scaled);
  EXPECT_NEAR(a.c40, b.c40, 1e-9);
  EXPECT_NEAR(a.c42, b.c42, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleInvarianceTest,
                         ::testing::Values(0.01, 0.5, 2.0, 37.0, 1e3));

class NoiseMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(NoiseMonotonicityTest, DistanceGrowsWithNoiseOnAverage) {
  dsp::Rng rng(1100 + GetParam());
  Detector detector;
  auto mean_distance = [&](double noise) {
    double acc = 0.0;
    for (int trial = 0; trial < 6; ++trial) {
      acc += detector.classify(qpsk_chips(4096, noise, rng)).distance_sq;
    }
    return acc / 6.0;
  };
  const double clean = mean_distance(0.05);
  const double noisy = mean_distance(0.6);
  EXPECT_LT(clean, noisy);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoiseMonotonicityTest, ::testing::Range(0, 4));

TEST(DefensePropertyTest, PermutationOfPairsDoesNotChangeFeatures) {
  // Cumulants are symmetric functions of the point set: shuffling whole
  // (I, Q) pairs leaves every feature identical.
  dsp::Rng rng(1200);
  rvec chips = qpsk_chips(1024, 0.3, rng);
  Detector detector;
  const Feature before = detector.feature_from_chips(chips);
  // Fisher-Yates over pairs.
  for (std::size_t i = chips.size() / 2; i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(chips[2 * (i - 1)], chips[2 * j]);
    std::swap(chips[2 * (i - 1) + 1], chips[2 * j + 1]);
  }
  const Feature after = detector.feature_from_chips(chips);
  EXPECT_NEAR(before.c40, after.c40, 1e-9);
  EXPECT_NEAR(before.c42, after.c42, 1e-9);
}

TEST(DefensePropertyTest, ConjugationFlipsNothingThatMatters) {
  // Mirroring the constellation (Q -> -Q) is another fixed symmetry of
  // QPSK: the detector must be indifferent.
  dsp::Rng rng(1201);
  rvec chips = qpsk_chips(4096, 0.2, rng);
  rvec mirrored(chips);
  for (std::size_t i = 1; i < mirrored.size(); i += 2) mirrored[i] = -mirrored[i];
  Detector detector;
  const Feature a = detector.feature_from_chips(chips);
  const Feature b = detector.feature_from_chips(mirrored);
  EXPECT_NEAR(a.c40, b.c40, 0.05);
  EXPECT_NEAR(a.c42, b.c42, 0.05);
}

}  // namespace
}  // namespace ctc::defense
