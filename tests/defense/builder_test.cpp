#include "defense/constellation_builder.h"

#include <gtest/gtest.h>

#include "defense/cumulants.h"
#include "dsp/require.h"
#include "dsp/rng.h"

namespace ctc::defense {
namespace {

TEST(BuilderTest, PairsChipsInOrder) {
  const rvec chips = {1.0, -1.0, -1.0, 1.0};
  BuilderConfig config;
  config.rotate_to_axes = false;
  const cvec points = build_constellation(chips, config);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0], (cplx{1.0, -1.0}));
  EXPECT_EQ(points[1], (cplx{-1.0, 1.0}));
}

TEST(BuilderTest, RequiresWholePairs) {
  EXPECT_THROW(build_constellation(rvec{1.0, 1.0, 1.0}), ContractError);
  EXPECT_TRUE(build_constellation(rvec{}).empty());
}

TEST(BuilderTest, DerotationPutsDiagonalsOnAxes) {
  const rvec chips = {1.0, 1.0};
  const cvec points = build_constellation(chips);  // default: rotate
  ASSERT_EQ(points.size(), 1u);
  // (1 + j) * exp(-j pi/4) = sqrt(2) on the real axis.
  EXPECT_NEAR(points[0].real(), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(points[0].imag(), 0.0, 1e-12);
}

TEST(BuilderTest, RotationPreservesMagnitude) {
  dsp::Rng rng(160);
  rvec chips(64);
  for (auto& c : chips) c = rng.gaussian();
  BuilderConfig rotated;
  BuilderConfig raw;
  raw.rotate_to_axes = false;
  const cvec a = build_constellation(chips, rotated);
  const cvec b = build_constellation(chips, raw);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i]), std::abs(b[i]), 1e-12);
  }
}

TEST(BuilderTest, AuthenticChipsYieldQpskCumulants) {
  // Random +-1 chip pairs (authentic traffic) -> axis QPSK after derotation
  // -> C40 = +1, C42 = -1 (the paper's Fig. 10/11 high-SNR limits).
  dsp::Rng rng(161);
  rvec chips(4096);
  for (auto& c : chips) c = rng.bit() ? 1.0 : -1.0;
  const cvec points = build_constellation(chips);
  const auto estimates = estimate_cumulants(points);
  EXPECT_NEAR(estimates.normalized_c40().real(), 1.0, 0.02);
  EXPECT_NEAR(estimates.normalized_c40().imag(), 0.0, 0.02);
  EXPECT_NEAR(estimates.normalized_c42(), -1.0, 0.02);
}

TEST(BuilderTest, WithoutDerotationC40FlipsSign) {
  // The same chips without the pi/4 derotation sit on the diagonals, whose
  // C40 is -1 (e^{j 4 * pi/4} = -1): exactly why the builder derotates.
  dsp::Rng rng(162);
  rvec chips(4096);
  for (auto& c : chips) c = rng.bit() ? 1.0 : -1.0;
  BuilderConfig raw;
  raw.rotate_to_axes = false;
  const auto estimates = estimate_cumulants(build_constellation(chips, raw));
  EXPECT_NEAR(estimates.normalized_c40().real(), -1.0, 0.02);
  EXPECT_NEAR(estimates.normalized_c42(), -1.0, 0.02);
}

}  // namespace
}  // namespace ctc::defense
