#include "defense/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dsp/require.h"

namespace ctc::defense {
namespace {

cvec four_clusters(std::size_t per_cluster, double spread, dsp::Rng& rng) {
  const cvec centers = {{1.0, 1.0}, {-1.0, 1.0}, {-1.0, -1.0}, {1.0, -1.0}};
  cvec points;
  for (const cplx& center : centers) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      points.push_back(center + rng.complex_gaussian(spread * spread));
    }
  }
  return points;
}

TEST(KmeansTest, FindsFourCleanClusters) {
  dsp::Rng rng(170);
  const cvec points = four_clusters(100, 0.08, rng);
  const KmeansResult result = kmeans(points, rng);
  ASSERT_EQ(result.centroids.size(), 4u);
  // Every true center has a centroid within 0.1.
  for (const cplx& center : {cplx{1, 1}, cplx{-1, 1}, cplx{-1, -1}, cplx{1, -1}}) {
    double best = 1e9;
    for (const cplx& c : result.centroids) best = std::min(best, std::abs(c - center));
    EXPECT_LT(best, 0.1);
  }
}

TEST(KmeansTest, AssignmentsMatchNearestCentroid) {
  dsp::Rng rng(171);
  const cvec points = four_clusters(50, 0.1, rng);
  const KmeansResult result = kmeans(points, rng);
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::size_t nearest = 0;
    double best = 1e300;
    for (std::size_t c = 0; c < result.centroids.size(); ++c) {
      const double d = std::norm(points[i] - result.centroids[c]);
      if (d < best) {
        best = d;
        nearest = c;
      }
    }
    EXPECT_EQ(result.assignment[i], nearest);
  }
}

TEST(KmeansTest, ObjectiveIsSumOfSquaredDistances) {
  dsp::Rng rng(172);
  const cvec points = four_clusters(25, 0.2, rng);
  const KmeansResult result = kmeans(points, rng);
  double expected = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    expected += std::norm(points[i] - result.centroids[result.assignment[i]]);
  }
  EXPECT_NEAR(result.within_cluster_ss, expected, 1e-9);
}

TEST(KmeansTest, TightClustersBeatLooseClusters) {
  dsp::Rng rng(173);
  const cvec tight = four_clusters(50, 0.05, rng);
  const cvec loose = four_clusters(50, 0.5, rng);
  const double tight_ss = kmeans(tight, rng).within_cluster_ss;
  const double loose_ss = kmeans(loose, rng).within_cluster_ss;
  EXPECT_LT(tight_ss, loose_ss);
}

TEST(KmeansTest, KEqualsNumberOfPointsGivesZeroObjective) {
  dsp::Rng rng(174);
  const cvec points = {{0, 0}, {1, 0}, {0, 1}, {5, 5}};
  KmeansConfig config;
  config.k = 4;
  const KmeansResult result = kmeans(points, rng, config);
  EXPECT_NEAR(result.within_cluster_ss, 0.0, 1e-12);
}

TEST(KmeansTest, SingleClusterReturnsCentroidOfAll) {
  dsp::Rng rng(175);
  const cvec points = {{1, 0}, {3, 0}, {5, 0}};
  KmeansConfig config;
  config.k = 1;
  const KmeansResult result = kmeans(points, rng, config);
  EXPECT_NEAR(result.centroids[0].real(), 3.0, 1e-9);
}

TEST(KmeansTest, HandlesDuplicatePoints) {
  dsp::Rng rng(176);
  cvec points(20, cplx{2.0, -1.0});
  KmeansConfig config;
  config.k = 4;
  const KmeansResult result = kmeans(points, rng, config);
  EXPECT_NEAR(result.within_cluster_ss, 0.0, 1e-12);
}

TEST(KmeansTest, RejectsMorelustersThanPoints) {
  dsp::Rng rng(177);
  const cvec points = {{0, 0}, {1, 1}};
  KmeansConfig config;
  config.k = 3;
  EXPECT_THROW(kmeans(points, rng, config), ContractError);
  config.k = 0;
  EXPECT_THROW(kmeans(points, rng, config), ContractError);
}

TEST(KmeansTest, DeterministicGivenSeed) {
  dsp::Rng rng_a(178);
  dsp::Rng rng_b(178);
  const cvec points = four_clusters(30, 0.2, rng_a);
  dsp::Rng rng_c(178);
  const cvec points_b = four_clusters(30, 0.2, rng_c);
  const KmeansResult a = kmeans(points, rng_a);
  // Regenerate identical inputs and rng state.
  dsp::Rng rng_d(178);
  const cvec points_c = four_clusters(30, 0.2, rng_d);
  const KmeansResult b = kmeans(points_c, rng_d);
  ASSERT_EQ(a.centroids.size(), b.centroids.size());
  for (std::size_t i = 0; i < a.centroids.size(); ++i) {
    EXPECT_EQ(a.centroids[i], b.centroids[i]);
  }
}

}  // namespace
}  // namespace ctc::defense
