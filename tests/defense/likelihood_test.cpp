#include "defense/likelihood.h"

#include <gtest/gtest.h>

#include "dsp/constellation.h"
#include "dsp/require.h"
#include "dsp/rng.h"
#include "dsp/stats.h"

namespace ctc::defense {
namespace {

cvec draw(const cvec& constellation, std::size_t n, double noise, dsp::Rng& rng) {
  cvec samples(n);
  for (auto& s : samples) {
    s = constellation[rng.uniform_index(constellation.size())] +
        rng.complex_gaussian(noise);
  }
  return samples;
}

TEST(LogLikelihoodTest, TrueConstellationBeatsWrongOne) {
  dsp::Rng rng(1700);
  const double noise = 0.05;
  const cvec samples = draw(dsp::make_psk(4), 2000, noise, rng);
  const double qpsk = log_likelihood(samples, dsp::make_psk(4), noise, 0.0);
  const double bpsk = log_likelihood(samples, dsp::make_psk(2), noise, 0.0);
  const double qam = log_likelihood(samples, dsp::make_qam(16), noise, 0.0);
  EXPECT_GT(qpsk, bpsk);
  EXPECT_GT(qpsk, qam);
}

TEST(LogLikelihoodTest, CorrectPhaseBeatsWrongPhase) {
  dsp::Rng rng(1701);
  const double noise = 0.05;
  cvec samples = draw(dsp::make_psk(4), 2000, noise, rng);
  const cplx rotation = std::polar(1.0, 0.35);
  for (auto& s : samples) s *= rotation;
  const cvec qpsk = dsp::make_psk(4);
  EXPECT_GT(log_likelihood(samples, qpsk, noise, 0.35),
            log_likelihood(samples, qpsk, noise, 0.0));
}

TEST(LogLikelihoodTest, ValidatesInputs) {
  const cvec samples = {{1.0, 0.0}};
  EXPECT_THROW(log_likelihood(samples, dsp::make_psk(4), 0.0, 0.0), ContractError);
  EXPECT_THROW(log_likelihood(cvec{}, dsp::make_psk(4), 0.1, 0.0), ContractError);
  EXPECT_THROW(log_likelihood(samples, cvec{}, 0.1, 0.0), ContractError);
}

class HlrtClassTest : public ::testing::TestWithParam<ModulationClass> {};

TEST_P(HlrtClassTest, ClassifiesNoisySamplesWithRandomPhase) {
  dsp::Rng rng(1710 + static_cast<int>(GetParam()));
  cvec constellation;
  switch (GetParam()) {
    case ModulationClass::bpsk: constellation = dsp::make_psk(2); break;
    case ModulationClass::qpsk: constellation = dsp::make_psk(4); break;
    case ModulationClass::qam16: constellation = dsp::make_qam(16); break;
    case ModulationClass::qam64: constellation = dsp::make_qam(64); break;
    default: constellation = dsp::make_psk(4);
  }
  const double noise = dsp::from_db(-15.0);
  cvec samples = draw(constellation, 3000, noise, rng);
  // HLRT's whole point: unknown carrier phase.
  const cplx rotation = std::polar(1.0, rng.uniform(0.0, kTwoPi));
  for (auto& s : samples) s *= rotation;
  LikelihoodConfig config;
  config.noise_variance = noise;
  config.phase_hypotheses = 32;
  const LikelihoodResult result = classify_likelihood(samples, config);
  EXPECT_EQ(result.best, GetParam()) << to_string(result.best);
}

INSTANTIATE_TEST_SUITE_P(Classes, HlrtClassTest,
                         ::testing::Values(ModulationClass::bpsk,
                                           ModulationClass::qpsk,
                                           ModulationClass::qam16,
                                           ModulationClass::qam64),
                         [](const auto& name_info) {
                           std::string name = to_string(name_info.param);
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(static_cast<unsigned char>(c));
                           });
                           return name;
                         });

TEST(HlrtTest, RankingIsSortedDescending) {
  dsp::Rng rng(1720);
  const cvec samples = draw(dsp::make_psk(4), 1000, 0.05, rng);
  const LikelihoodResult result = classify_likelihood(samples);
  ASSERT_EQ(result.ranking.size(), 9u);
  for (std::size_t i = 1; i < result.ranking.size(); ++i) {
    EXPECT_GE(result.ranking[i - 1].log_likelihood,
              result.ranking[i].log_likelihood);
  }
  EXPECT_EQ(result.ranking.front().modulation, result.best);
}

TEST(HlrtTest, BinaryLlrSeparatesQpskFromQam) {
  dsp::Rng rng(1721);
  const double noise = 0.05;
  LikelihoodConfig config;
  config.noise_variance = noise;
  const cvec qpsk_samples = draw(dsp::make_psk(4), 1500, noise, rng);
  const cvec qam_samples = draw(dsp::make_qam(64), 1500, noise, rng);
  EXPECT_GT(qpsk_vs_qam64_llr(qpsk_samples, config), 0.0);
  EXPECT_LT(qpsk_vs_qam64_llr(qam_samples, config), 0.0);
}

TEST(HlrtTest, UnknownSignalLevelIsHandledByNormalization) {
  dsp::Rng rng(1722);
  cvec samples = draw(dsp::make_psk(4), 1500, 0.05, rng);
  for (auto& s : samples) s *= 11.0;  // arbitrary gain
  LikelihoodConfig config;
  config.noise_variance = 0.05 / (dsp::average_power(samples) / 121.0 / 1.0);
  // Normalization makes the gain irrelevant; use a sane noise figure.
  config.noise_variance = 0.06;
  const LikelihoodResult result = classify_likelihood(samples, config);
  EXPECT_EQ(result.best, ModulationClass::qpsk);
}

}  // namespace
}  // namespace ctc::defense
