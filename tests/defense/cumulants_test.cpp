#include "defense/cumulants.h"

#include <gtest/gtest.h>

#include "dsp/constellation.h"
#include "dsp/require.h"
#include "dsp/rng.h"

namespace ctc::defense {
namespace {

cvec draw_constellation_samples(const cvec& constellation, std::size_t n,
                                dsp::Rng& rng) {
  cvec samples(n);
  for (auto& s : samples) s = constellation[rng.uniform_index(constellation.size())];
  return samples;
}

TEST(CumulantEstimatorTest, RequiresEnoughSamples) {
  EXPECT_THROW(estimate_cumulants(cvec(3)), ContractError);
}

TEST(CumulantEstimatorTest, ExactOnFullQpskConstellation) {
  // The four axis-QPSK points enumerated exactly: C20 = 0, C40 = 1, C42 = -1.
  const cvec points = dsp::make_psk(4);
  const CumulantEstimates estimates = estimate_cumulants(points);
  EXPECT_NEAR(std::abs(estimates.c20), 0.0, 1e-12);
  EXPECT_NEAR(estimates.c21, 1.0, 1e-12);
  EXPECT_NEAR(estimates.normalized_c40().real(), 1.0, 1e-12);
  EXPECT_NEAR(estimates.normalized_c42(), -1.0, 1e-12);
}

TEST(CumulantEstimatorTest, ScaleInvarianceOfNormalizedCumulants) {
  dsp::Rng rng(140);
  const cvec base = draw_constellation_samples(dsp::make_qam(16), 2000, rng);
  cvec scaled(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) scaled[i] = 7.3 * base[i];
  const auto a = estimate_cumulants(base);
  const auto b = estimate_cumulants(scaled);
  EXPECT_NEAR(a.normalized_c42(), b.normalized_c42(), 1e-9);
  EXPECT_NEAR(std::abs(a.normalized_c40() - b.normalized_c40()), 0.0, 1e-9);
}

TEST(CumulantEstimatorTest, RotationScalesC40ByFourTimesAngle) {
  // Sec. VI-C: a phase offset theta multiplies C40 by exp(j 4 theta) and
  // leaves C42 (and |C40|) unchanged.
  dsp::Rng rng(141);
  const cvec base = draw_constellation_samples(dsp::make_psk(4), 4000, rng);
  const double theta = 0.31;
  cvec rotated(base.size());
  const cplx rotation{std::cos(theta), std::sin(theta)};
  for (std::size_t i = 0; i < base.size(); ++i) rotated[i] = base[i] * rotation;
  const auto a = estimate_cumulants(base);
  const auto b = estimate_cumulants(rotated);
  const cplx expected = a.normalized_c40() * std::polar(1.0, 4.0 * theta);
  EXPECT_NEAR(std::abs(b.normalized_c40() - expected), 0.0, 1e-9);
  EXPECT_NEAR(b.normalized_c42(), a.normalized_c42(), 1e-9);
  EXPECT_NEAR(std::abs(b.normalized_c40()), std::abs(a.normalized_c40()), 1e-9);
}

TEST(CumulantEstimatorTest, GaussianNoiseHasVanishingFourthCumulants) {
  // Fourth-order cumulants of a complex Gaussian are zero — the property
  // that makes cumulant features noise-robust.
  dsp::Rng rng(142);
  cvec noise(60000);
  for (auto& x : noise) x = rng.complex_gaussian(1.0);
  const auto estimates = estimate_cumulants(noise);
  EXPECT_NEAR(std::abs(estimates.normalized_c40()), 0.0, 0.05);
  EXPECT_NEAR(estimates.normalized_c42(), 0.0, 0.05);
}

TEST(CumulantEstimatorTest, NoiseCorrectionRestoresSignalCumulants) {
  // QPSK + AWGN: normalizing by (C21 - sigma^2)^2 recovers the clean values.
  dsp::Rng rng(143);
  const double noise_variance = 0.2;  // SNR = 7 dB
  cvec samples = draw_constellation_samples(dsp::make_psk(4), 50000, rng);
  for (auto& s : samples) s += rng.complex_gaussian(noise_variance);
  const auto estimates = estimate_cumulants(samples);
  // Without correction the estimates are biased toward 0.
  EXPECT_LT(estimates.normalized_c42(), -0.5);
  EXPECT_GT(estimates.normalized_c42(), -0.9);
  // With correction they come back near the theory.
  EXPECT_NEAR(estimates.normalized_c42(noise_variance), -1.0, 0.05);
  EXPECT_NEAR(estimates.normalized_c40(noise_variance).real(), 1.0, 0.05);
}

TEST(CumulantEstimatorTest, CorrectionRejectsOverlargeNoiseVariance) {
  const cvec points = dsp::make_psk(4);
  const auto estimates = estimate_cumulants(points);
  EXPECT_THROW(estimates.normalized_c42(2.0), ContractError);
  EXPECT_THROW(estimates.normalized_c40(-0.1), ContractError);
}

struct TableThreeCase {
  ModulationClass klass;
  const char* name;
};

class TableThreeTest : public ::testing::TestWithParam<TableThreeCase> {};

TEST_P(TableThreeTest, MonteCarloMatchesTheoreticalCumulants) {
  // Table III: sample cumulants of each unit-power constellation converge to
  // the published theoretical values.
  const auto [klass, name] = GetParam();
  cvec constellation;
  switch (klass) {
    case ModulationClass::bpsk: constellation = dsp::make_psk(2); break;
    case ModulationClass::qpsk: constellation = dsp::make_psk(4); break;
    case ModulationClass::psk_higher: constellation = dsp::make_psk(8); break;
    case ModulationClass::pam4: constellation = dsp::make_pam(4); break;
    case ModulationClass::pam8: constellation = dsp::make_pam(8); break;
    case ModulationClass::pam16: constellation = dsp::make_pam(16); break;
    case ModulationClass::qam16: constellation = dsp::make_qam(16); break;
    case ModulationClass::qam64: constellation = dsp::make_qam(64); break;
    case ModulationClass::qam256: constellation = dsp::make_qam(256); break;
  }
  dsp::Rng rng(150 + static_cast<int>(klass));
  const cvec samples = draw_constellation_samples(constellation, 200000, rng);
  const auto estimates = estimate_cumulants(samples);
  const TheoreticalCumulants theory = theoretical_cumulants(klass);
  EXPECT_NEAR(std::abs(estimates.c20 / estimates.c21), theory.c20, 0.02) << name;
  EXPECT_NEAR(estimates.normalized_c40().real(), theory.c40, 0.03) << name;
  EXPECT_NEAR(estimates.normalized_c42(), theory.c42, 0.03) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, TableThreeTest,
    ::testing::Values(TableThreeCase{ModulationClass::bpsk, "BPSK"},
                      TableThreeCase{ModulationClass::qpsk, "QPSK"},
                      TableThreeCase{ModulationClass::psk_higher, "8PSK"},
                      TableThreeCase{ModulationClass::pam4, "4PAM"},
                      TableThreeCase{ModulationClass::pam8, "8PAM"},
                      TableThreeCase{ModulationClass::pam16, "16PAM"},
                      TableThreeCase{ModulationClass::qam16, "16QAM"},
                      TableThreeCase{ModulationClass::qam64, "64QAM"},
                      TableThreeCase{ModulationClass::qam256, "256QAM"}),
    [](const auto& name_info) { return name_info.param.name; });

TEST(TableThreeTest, ExactTheoreticalValuesFromThePaper) {
  EXPECT_DOUBLE_EQ(theoretical_cumulants(ModulationClass::qpsk).c40, 1.0);
  EXPECT_DOUBLE_EQ(theoretical_cumulants(ModulationClass::qpsk).c42, -1.0);
  EXPECT_DOUBLE_EQ(theoretical_cumulants(ModulationClass::bpsk).c40, -2.0);
  EXPECT_DOUBLE_EQ(theoretical_cumulants(ModulationClass::qam64).c40, -0.619);
  EXPECT_DOUBLE_EQ(theoretical_cumulants(ModulationClass::qam256).c42, -0.6047);
  EXPECT_EQ(to_string(ModulationClass::psk_higher), "PSK(>4)");
}

}  // namespace
}  // namespace ctc::defense
