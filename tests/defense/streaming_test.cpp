#include "defense/streaming.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"

namespace ctc::defense {
namespace {

cvec random_points(std::size_t n, dsp::Rng& rng) {
  cvec points(n);
  for (auto& p : points) p = rng.complex_gaussian(1.0);
  return points;
}

TEST(StreamingCumulantsTest, MatchesBatchEstimatorExactly) {
  dsp::Rng rng(330);
  const cvec points = random_points(777, rng);
  StreamingCumulants streaming;
  for (const cplx& p : points) streaming.push(p);
  const CumulantEstimates batch = estimate_cumulants(points);
  const CumulantEstimates online = streaming.estimates();
  EXPECT_NEAR(std::abs(online.c20 - batch.c20), 0.0, 1e-12);
  EXPECT_NEAR(online.c21, batch.c21, 1e-12);
  EXPECT_NEAR(std::abs(online.c40 - batch.c40), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(online.c41 - batch.c41), 0.0, 1e-12);
  EXPECT_NEAR(online.c42, batch.c42, 1e-12);
}

TEST(StreamingCumulantsTest, RequiresFourSamplesAndResets) {
  StreamingCumulants streaming;
  streaming.push({1.0, 0.0});
  EXPECT_THROW(streaming.estimates(), ContractError);
  streaming.push({0.0, 1.0});
  streaming.push({-1.0, 0.0});
  streaming.push({0.0, -1.0});
  EXPECT_NO_THROW(streaming.estimates());
  EXPECT_EQ(streaming.count(), 4u);
  streaming.reset();
  EXPECT_EQ(streaming.count(), 0u);
}

TEST(StreamingDetectorTest, MatchesBatchDetectorOnAnyBlocking) {
  dsp::Rng rng(331);
  rvec chips(2048);
  for (auto& c : chips) c = (rng.bit() ? 1.0 : -1.0) + 0.3 * rng.gaussian();

  Detector batch;
  const Verdict expected = batch.classify(chips);

  StreamingDetector streaming;
  std::size_t cursor = 0;
  for (std::size_t block : {1u, 7u, 64u, 3u, 501u, 2048u}) {
    const std::size_t take = std::min(block, chips.size() - cursor);
    streaming.push_chips(std::span<const double>(chips).subspan(cursor, take));
    cursor += take;
    if (cursor == chips.size()) break;
  }
  ASSERT_EQ(cursor, chips.size());
  const auto verdict = streaming.verdict();
  ASSERT_TRUE(verdict.has_value());
  EXPECT_DOUBLE_EQ(verdict->feature.c40, expected.feature.c40);
  EXPECT_DOUBLE_EQ(verdict->feature.c42, expected.feature.c42);
  EXPECT_DOUBLE_EQ(verdict->distance_sq, expected.distance_sq);
  EXPECT_EQ(verdict->is_attack, expected.is_attack);
}

TEST(StreamingDetectorTest, OddChipIsHeldUntilPaired) {
  StreamingDetector streaming;
  streaming.push_chips(rvec{1.0});
  EXPECT_EQ(streaming.points(), 0u);
  streaming.push_chips(rvec{-1.0});
  EXPECT_EQ(streaming.points(), 1u);
  streaming.push_chips(rvec{1.0, 1.0, -1.0});
  EXPECT_EQ(streaming.points(), 2u);  // one pair + one held chip
}

TEST(StreamingDetectorTest, NoVerdictBeforeMinPoints) {
  dsp::Rng rng(332);
  StreamingDetector streaming;
  EXPECT_FALSE(streaming.verdict().has_value());
  rvec chips(64);
  for (auto& c : chips) c = rng.bit() ? 1.0 : -1.0;
  streaming.push_chips(chips);
  EXPECT_FALSE(streaming.verdict(64).has_value());  // 32 points < 64
  EXPECT_TRUE(streaming.verdict(32).has_value());
}

TEST(StreamingDetectorTest, VerdictSharpensAsEvidenceAccumulates) {
  dsp::Rng rng(333);
  StreamingDetector streaming;
  rvec chips(4096);
  for (auto& c : chips) c = (rng.bit() ? 1.0 : -1.0) + 0.2 * rng.gaussian();
  streaming.push_chips(std::span<const double>(chips).subspan(0, 64));
  const double early = streaming.verdict()->distance_sq;
  streaming.push_chips(std::span<const double>(chips).subspan(64));
  const double late = streaming.verdict()->distance_sq;
  // More samples -> lower estimator variance -> closer to the QPSK anchor
  // (statistically; with these seeds it holds deterministically).
  EXPECT_LT(late, early + 0.05);
  EXPECT_FALSE(streaming.verdict()->is_attack);
}

TEST(StreamingDetectorTest, ResetStartsANewFrame) {
  StreamingDetector streaming;
  streaming.push_chips(rvec{1.0, -1.0, 1.0, 1.0, -1.0});
  streaming.reset();
  EXPECT_EQ(streaming.points(), 0u);
  EXPECT_FALSE(streaming.verdict().has_value());
}

// Regression for the cross-frame reuse hazard: without a frame boundary the
// second frame's verdict mixes the first frame's cumulants, and a held odd
// chip pairs across the boundary. begin_frame() must make a reused detector
// bit-identical to a freshly constructed one.
TEST(StreamingDetectorTest, BeginFrameIsolatesFramesExactly) {
  dsp::Rng rng(334);
  rvec frame_a(257);  // odd on purpose: leaves a pending chip held
  rvec frame_b(512);
  for (auto& c : frame_a) c = (rng.bit() ? 1.0 : -1.0) + 0.3 * rng.gaussian();
  for (auto& c : frame_b) c = (rng.bit() ? 1.0 : -1.0) + 0.3 * rng.gaussian();

  StreamingDetector fresh;
  fresh.push_chips(frame_b);
  const Verdict expected = *fresh.verdict();

  // Reused WITHOUT a boundary: frame A's 128 points and its held odd chip
  // contaminate frame B's verdict.
  StreamingDetector contaminated;
  contaminated.push_chips(frame_a);
  contaminated.push_chips(frame_b);
  EXPECT_EQ(contaminated.points(), (257 + 512) / 2u);
  EXPECT_NE(contaminated.verdict()->distance_sq, expected.distance_sq);

  // Reused WITH begin_frame(): bit-identical to the fresh detector.
  StreamingDetector reused;
  reused.push_chips(frame_a);
  reused.begin_frame();
  EXPECT_EQ(reused.points(), 0u);
  reused.push_chips(frame_b);
  EXPECT_EQ(reused.points(), frame_b.size() / 2);
  const Verdict isolated = *reused.verdict();
  EXPECT_DOUBLE_EQ(isolated.feature.c40, expected.feature.c40);
  EXPECT_DOUBLE_EQ(isolated.feature.c42, expected.feature.c42);
  EXPECT_DOUBLE_EQ(isolated.distance_sq, expected.distance_sq);
}

}  // namespace
}  // namespace ctc::defense
