#include "defense/detector.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"

namespace ctc::defense {
namespace {

rvec authentic_chips(std::size_t n, double noise, dsp::Rng& rng) {
  rvec chips(n);
  for (auto& c : chips) c = (rng.bit() ? 1.0 : -1.0) + noise * rng.gaussian();
  return chips;
}

rvec distorted_chips(std::size_t n, dsp::Rng& rng) {
  // Heavy-tailed amplitudes, like discriminator output over an emulated
  // waveform: mixture of nominal chips and large spikes.
  rvec chips(n);
  for (auto& c : chips) {
    const double base = rng.bit() ? 1.0 : -1.0;
    const double spike = (rng.uniform() < 0.2) ? 2.5 * rng.gaussian() : 0.0;
    c = base + 0.3 * rng.gaussian() + spike;
  }
  return chips;
}

TEST(FeatureTest, DistanceSquaredAgainstQpskAnchor) {
  Feature feature;
  feature.c40 = 1.0;
  feature.c42 = -1.0;
  EXPECT_DOUBLE_EQ(feature.distance_sq(), 0.0);
  feature.c40 = 0.0;
  feature.c42 = 0.0;
  EXPECT_DOUBLE_EQ(feature.distance_sq(), 2.0);
}

TEST(DetectorTest, AuthenticChipsPassHypothesisTest) {
  dsp::Rng rng(180);
  Detector detector;
  const Verdict verdict = detector.classify(authentic_chips(2048, 0.15, rng));
  EXPECT_FALSE(verdict.is_attack);
  EXPECT_LT(verdict.distance_sq, 0.1);
  EXPECT_NEAR(verdict.feature.c40, 1.0, 0.2);
  EXPECT_NEAR(verdict.feature.c42, -1.0, 0.2);
}

TEST(DetectorTest, DistortedChipsAreFlagged) {
  dsp::Rng rng(181);
  Detector detector;
  const Verdict verdict = detector.classify(distorted_chips(2048, rng));
  EXPECT_TRUE(verdict.is_attack);
  EXPECT_GT(verdict.distance_sq, 0.5);
}

TEST(DetectorTest, ThresholdIsRespected) {
  dsp::Rng rng(182);
  const rvec chips = authentic_chips(2048, 0.4, rng);
  DetectorConfig strict;
  strict.threshold = 1e-6;  // everything is an attack
  EXPECT_TRUE(Detector(strict).classify(chips).is_attack);
  DetectorConfig lax;
  lax.threshold = 100.0;  // nothing is
  EXPECT_FALSE(Detector(lax).classify(chips).is_attack);
  DetectorConfig bad;
  bad.threshold = 0.0;
  EXPECT_THROW(Detector{bad}, ContractError);
}

TEST(DetectorTest, RealPartModeDegradesUnderRotationMagnitudeModeDoesNot) {
  // Sec. VI-C: a phase offset rotates C40 by e^{j4 theta}; Re C40 collapses
  // while |C40| is invariant.
  dsp::Rng rng(183);
  const rvec base = authentic_chips(4096, 0.1, rng);
  // Apply a 30-degree rotation in the constellation domain by rotating the
  // chip pairs: equivalent to rotating built points.
  const double theta = kPi / 6.0;
  rvec rotated(base.size());
  for (std::size_t i = 0; i + 1 < base.size(); i += 2) {
    const cplx p = cplx{base[i], base[i + 1]} * std::polar(1.0, theta);
    rotated[i] = p.real();
    rotated[i + 1] = p.imag();
  }
  DetectorConfig real_mode;
  real_mode.c40_mode = C40Mode::real_part;
  DetectorConfig magnitude_mode;
  magnitude_mode.c40_mode = C40Mode::magnitude;
  const Verdict real_verdict = Detector(real_mode).classify(rotated);
  const Verdict magnitude_verdict = Detector(magnitude_mode).classify(rotated);
  // 4 * 30 = 120 degrees: Re C40 ~ -0.5 -> large distance, false alarm.
  EXPECT_GT(real_verdict.distance_sq, 1.0);
  // |C40| ~ 1: still authentic.
  EXPECT_LT(magnitude_verdict.distance_sq, 0.1);
  EXPECT_FALSE(magnitude_verdict.is_attack);
}

TEST(DetectorTest, NoiseVarianceCorrectionTightensLowSnrFeatures) {
  dsp::Rng rng(184);
  const double noise = 0.45;  // ~7 dB per chip
  const rvec chips = authentic_chips(8192, noise, rng);
  DetectorConfig plain;
  DetectorConfig corrected;
  corrected.noise_variance = 2.0 * noise * noise;  // per complex point
  const double d_plain = Detector(plain).classify(chips).distance_sq;
  const double d_corrected = Detector(corrected).classify(chips).distance_sq;
  EXPECT_LT(d_corrected, d_plain);
}

TEST(DetectorTest, FeatureFromPointsMatchesFeatureFromChips) {
  dsp::Rng rng(185);
  const rvec chips = authentic_chips(512, 0.2, rng);
  Detector detector;
  const Feature from_chips = detector.feature_from_chips(chips);
  const cvec points = build_constellation(chips);
  const Feature from_points = detector.feature_from_points(points);
  EXPECT_DOUBLE_EQ(from_chips.c40, from_points.c40);
  EXPECT_DOUBLE_EQ(from_chips.c42, from_points.c42);
}

TEST(CalibrationTest, MidpointOfSeparableClasses) {
  const rvec authentic = {0.01, 0.05, 0.12};
  const rvec emulated = {0.9, 1.4, 2.0};
  EXPECT_DOUBLE_EQ(Detector::calibrate_threshold(authentic, emulated),
                   0.5 * (0.12 + 0.9));
}

TEST(CalibrationTest, OverlappingClassesThrow) {
  const rvec authentic = {0.1, 0.9};
  const rvec emulated = {0.5, 1.5};
  EXPECT_THROW(Detector::calibrate_threshold(authentic, emulated), ContractError);
  EXPECT_THROW(Detector::calibrate_threshold(rvec{}, emulated), ContractError);
}

}  // namespace
}  // namespace ctc::defense
