#include "defense/amc.h"

#include <gtest/gtest.h>

#include "dsp/constellation.h"
#include "dsp/require.h"
#include "dsp/rng.h"
#include "dsp/stats.h"

namespace ctc::defense {
namespace {

cvec constellation_of(ModulationClass klass) {
  switch (klass) {
    case ModulationClass::bpsk: return dsp::make_psk(2);
    case ModulationClass::qpsk: return dsp::make_psk(4);
    case ModulationClass::psk_higher: return dsp::make_psk(8);
    case ModulationClass::pam4: return dsp::make_pam(4);
    case ModulationClass::pam8: return dsp::make_pam(8);
    case ModulationClass::pam16: return dsp::make_pam(16);
    case ModulationClass::qam16: return dsp::make_qam(16);
    case ModulationClass::qam64: return dsp::make_qam(64);
    case ModulationClass::qam256: return dsp::make_qam(256);
  }
  CTC_REQUIRE_MSG(false, "unknown class");
}

cvec noisy_samples(ModulationClass klass, std::size_t n, double noise_variance,
                   dsp::Rng& rng) {
  const cvec constellation = constellation_of(klass);
  cvec samples(n);
  for (auto& s : samples) {
    s = constellation[rng.uniform_index(constellation.size())] +
        rng.complex_gaussian(noise_variance);
  }
  return samples;
}

// Classes that are separable by (|C20|, C40, C42) features alone. The PAM
// family beyond order 8 and the dense QAM family have nearly identical
// fourth-order cumulants (Table III rows differ by < 0.03), so estimation
// noise conflates them; we test the representative set exactly and the
// ambiguous ones as family-level.
class AmcSeparableTest : public ::testing::TestWithParam<ModulationClass> {};

TEST_P(AmcSeparableTest, NoiselessSamplesClassifyExactly) {
  dsp::Rng rng(270 + static_cast<int>(GetParam()));
  const cvec samples = noisy_samples(GetParam(), 20000, 0.0, rng);
  const AmcResult result = classify_modulation(samples);
  EXPECT_EQ(result.best, GetParam()) << to_string(result.best);
}

TEST_P(AmcSeparableTest, ClassifiesAt15DbWithNoiseCorrection) {
  dsp::Rng rng(280 + static_cast<int>(GetParam()));
  const double noise_variance = dsp::from_db(-15.0);
  const cvec samples = noisy_samples(GetParam(), 50000, noise_variance, rng);
  AmcConfig config;
  config.noise_variance = noise_variance;
  const AmcResult result = classify_modulation(samples, config);
  EXPECT_EQ(result.best, GetParam()) << to_string(result.best);
}

INSTANTIATE_TEST_SUITE_P(
    Classes, AmcSeparableTest,
    ::testing::Values(ModulationClass::bpsk, ModulationClass::qpsk,
                      ModulationClass::psk_higher, ModulationClass::pam4,
                      ModulationClass::qam16),
    [](const auto& name_info) {
      std::string name = to_string(name_info.param);
      std::erase_if(name, [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); });
      return name;
    });

TEST(AmcTest, DenseQamClassifiesWithinItsFamily) {
  dsp::Rng rng(290);
  for (ModulationClass klass :
       {ModulationClass::qam16, ModulationClass::qam64, ModulationClass::qam256}) {
    const cvec samples = noisy_samples(klass, 50000, 0.0, rng);
    const AmcResult result = classify_modulation(samples);
    const bool in_family = result.best == ModulationClass::qam16 ||
                           result.best == ModulationClass::qam64 ||
                           result.best == ModulationClass::qam256;
    EXPECT_TRUE(in_family) << to_string(result.best);
  }
}

TEST(AmcTest, RankingIsSortedAndComplete) {
  dsp::Rng rng(291);
  const cvec samples = noisy_samples(ModulationClass::qpsk, 5000, 0.01, rng);
  const AmcResult result = classify_modulation(samples);
  ASSERT_EQ(result.ranking.size(), 9u);
  for (std::size_t i = 1; i < result.ranking.size(); ++i) {
    EXPECT_LE(result.ranking[i - 1].distance_sq, result.ranking[i].distance_sq);
  }
  EXPECT_EQ(result.ranking.front().modulation, result.best);
  EXPECT_DOUBLE_EQ(result.ranking.front().distance_sq, result.distance_sq);
}

TEST(AmcTest, MagnitudeModeIsRotationInvariant) {
  dsp::Rng rng(292);
  cvec samples = noisy_samples(ModulationClass::qpsk, 20000, 0.01, rng);
  const cplx rotation = std::polar(1.0, 0.4);
  for (auto& s : samples) s *= rotation;
  AmcConfig plain;
  AmcConfig magnitude;
  magnitude.use_c40_magnitude = true;
  // Plain mode: rotated QPSK's C40 = e^{j1.6} is far from +1.
  EXPECT_NE(classify_modulation(samples, plain).best, ModulationClass::qpsk);
  EXPECT_EQ(classify_modulation(samples, magnitude).best, ModulationClass::qpsk);
}

TEST(AmcTest, DistanceToClassMatchesRanking) {
  dsp::Rng rng(293);
  const cvec samples = noisy_samples(ModulationClass::qam16, 10000, 0.0, rng);
  const AmcResult result = classify_modulation(samples);
  for (const AmcScore& score : result.ranking) {
    EXPECT_NEAR(distance_to_class(samples, score.modulation), score.distance_sq,
                1e-12);
  }
}

TEST(AmcTest, RequiresEnoughSamplesAndSaneNoise) {
  EXPECT_THROW(classify_modulation(cvec(3)), ContractError);
  dsp::Rng rng(294);
  const cvec samples = noisy_samples(ModulationClass::qpsk, 100, 0.0, rng);
  AmcConfig config;
  config.noise_variance = 10.0;
  EXPECT_THROW(classify_modulation(samples, config), ContractError);
}

}  // namespace
}  // namespace ctc::defense
