#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dsp/require.h"
#include "mesh/geometry.h"

namespace ctc::mesh {
namespace {

TEST(GeometryTest, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({-1.0, -1.0}, {-1.0, -1.0}), 0.0);
}

TEST(GeometryTest, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_geometry("grid"), GeometryKind::grid);
  EXPECT_EQ(parse_geometry("ring"), GeometryKind::ring);
  EXPECT_STREQ(geometry_name(GeometryKind::grid), "grid");
  EXPECT_STREQ(geometry_name(GeometryKind::ring), "ring");
  EXPECT_THROW(parse_geometry("hexagon"), std::invalid_argument);
}

TEST(GeometryTest, FourSensorGridIsTheSquareCorners) {
  const auto points = grid_layout(4, 8.0);
  ASSERT_EQ(points.size(), 4u);
  // Row-major, x fastest, spanning [-4, 4] on both axes.
  EXPECT_DOUBLE_EQ(points[0].x, -4.0);
  EXPECT_DOUBLE_EQ(points[0].y, -4.0);
  EXPECT_DOUBLE_EQ(points[1].x, 4.0);
  EXPECT_DOUBLE_EQ(points[1].y, -4.0);
  EXPECT_DOUBLE_EQ(points[2].x, -4.0);
  EXPECT_DOUBLE_EQ(points[2].y, 4.0);
  EXPECT_DOUBLE_EQ(points[3].x, 4.0);
  EXPECT_DOUBLE_EQ(points[3].y, 4.0);
}

TEST(GeometryTest, NonSquareCountKeepsTheFirstRowMajorPoints) {
  // 3 sensors on a 2x2 lattice: the fourth corner is dropped.
  const auto points = grid_layout(3, 8.0);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[2].x, -4.0);
  EXPECT_DOUBLE_EQ(points[2].y, 4.0);
}

TEST(GeometryTest, SingleSensorGridSitsAtTheOrigin) {
  const auto points = grid_layout(1, 8.0);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].x, 0.0);
  EXPECT_DOUBLE_EQ(points[0].y, 0.0);
}

TEST(GeometryTest, RingIsEvenlySpacedCounterClockwise) {
  const auto points = ring_layout(4, 2.0);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_NEAR(points[0].x, 2.0, 1e-12);
  EXPECT_NEAR(points[0].y, 0.0, 1e-12);
  EXPECT_NEAR(points[1].x, 0.0, 1e-12);
  EXPECT_NEAR(points[1].y, 2.0, 1e-12);
  EXPECT_NEAR(points[2].x, -2.0, 1e-12);
  EXPECT_NEAR(points[3].y, -2.0, 1e-12);
  for (const Vec2& p : points) {
    EXPECT_NEAR(std::hypot(p.x, p.y), 2.0, 1e-12);
  }
}

TEST(GeometryTest, MakeLayoutDispatchesOnKind) {
  EXPECT_EQ(make_layout(GeometryKind::grid, 9, 8.0).size(), 9u);
  EXPECT_EQ(make_layout(GeometryKind::ring, 9, 8.0).size(), 9u);
  EXPECT_THROW(make_layout(GeometryKind::grid, 0, 8.0), ContractError);
  EXPECT_THROW(make_layout(GeometryKind::ring, 4, 0.0), ContractError);
}

}  // namespace
}  // namespace ctc::mesh
