// Campaign-layer coverage of the mesh experiments: the optional "mesh"
// spec object, the fusion_detection / localization_error planners, and the
// executor determinism contract (threads and shard partitions reproduce
// the sequential report byte-for-byte).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "campaign/executor.h"
#include "campaign/plan.h"
#include "campaign/spec.h"

namespace ctc::campaign {
namespace {

std::string tiny_fusion_spec_text() {
  return R"({"schema":1,"name":"tinymesh","experiment":"fusion_detection",)"
         R"("workload_frames":4,"trials":2,"authentic_trials":2,)"
         R"("mesh":{"geometry":"grid","extent_m":8.0,"attacker_x":1.9,)"
         R"("attacker_y":1.1,"shadow_sigma_db":1.0,"snr_offset_db":0.0},)"
         R"("grid":[{"axis":"sensors","list":[4]}]})";
}

std::string tiny_localization_spec_text() {
  return R"({"schema":1,"name":"tinyloc","experiment":"localization_error",)"
         R"("workload_frames":4,"trials":2,)"
         R"("grid":[{"axis":"sensors","list":[4,9]}]})";
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / ("mesh_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(MeshSpecTest, ParsesMeshSettings) {
  const CampaignSpec spec = CampaignSpec::parse(
      R"({"schema":1,"name":"m","experiment":"fusion_detection",)"
      R"("mesh":{"geometry":"ring","extent_m":3.5,"attacker_x":-0.5,)"
      R"("attacker_y":2.0,"shadow_sigma_db":0.25,"snr_offset_db":-6.0}})");
  ASSERT_TRUE(spec.mesh.has_value());
  EXPECT_EQ(spec.mesh->geometry, "ring");
  EXPECT_DOUBLE_EQ(spec.mesh->extent_m, 3.5);
  EXPECT_DOUBLE_EQ(spec.mesh->attacker_x, -0.5);
  EXPECT_DOUBLE_EQ(spec.mesh->attacker_y, 2.0);
  EXPECT_DOUBLE_EQ(spec.mesh->shadow_sigma_db, 0.25);
  EXPECT_DOUBLE_EQ(spec.mesh->snr_offset_db, -6.0);
}

TEST(MeshSpecTest, MeshIsOptionalAndDefaultsApply) {
  const CampaignSpec spec = CampaignSpec::parse(
      R"({"schema":1,"name":"m","experiment":"fusion_detection"})");
  EXPECT_FALSE(spec.mesh.has_value());
  // Partial mesh object: unset keys keep their defaults.
  const CampaignSpec partial = CampaignSpec::parse(
      R"({"schema":1,"name":"m","experiment":"fusion_detection",)"
      R"("mesh":{"extent_m":4.0}})");
  ASSERT_TRUE(partial.mesh.has_value());
  EXPECT_EQ(partial.mesh->geometry, "grid");
  EXPECT_DOUBLE_EQ(partial.mesh->extent_m, 4.0);
  EXPECT_DOUBLE_EQ(partial.mesh->shadow_sigma_db, 1.0);
}

TEST(MeshSpecTest, RejectsMalformedMeshSettings) {
  EXPECT_THROW(CampaignSpec::parse(
                   R"({"schema":1,"name":"m","experiment":"fusion_detection",)"
                   R"("mesh":{"bogus_key":1}})"),
               SpecError);
  EXPECT_THROW(CampaignSpec::parse(
                   R"({"schema":1,"name":"m","experiment":"fusion_detection",)"
                   R"("mesh":{"geometry":"hexagon"}})"),
               SpecError);
  EXPECT_THROW(CampaignSpec::parse(
                   R"({"schema":1,"name":"m","experiment":"fusion_detection",)"
                   R"("mesh":{"extent_m":0}})"),
               SpecError);
  EXPECT_THROW(CampaignSpec::parse(
                   R"({"schema":1,"name":"m","experiment":"fusion_detection",)"
                   R"("mesh":{"shadow_sigma_db":-1}})"),
               SpecError);
  EXPECT_THROW(CampaignSpec::parse(
                   R"({"schema":1,"name":"m","experiment":"fusion_detection",)"
                   R"("mesh":7})"),
               SpecError);
}

TEST(MeshSpecTest, ToJsonIsAFixedPointUnderTheRoundTrip) {
  const CampaignSpec spec = CampaignSpec::parse(tiny_fusion_spec_text());
  const Json canonical = spec.to_json();
  const CampaignSpec reparsed = CampaignSpec::from_json(canonical);
  EXPECT_EQ(reparsed.to_json().dump(), canonical.dump());
  ASSERT_TRUE(reparsed.mesh.has_value());
  EXPECT_DOUBLE_EQ(reparsed.mesh->extent_m, 8.0);
}

TEST(MeshPlanTest, FusionDetectionPairsAttackAndBenignUnitsPerCell) {
  const CampaignSpec spec = CampaignSpec::parse(
      R"({"schema":1,"name":"m","experiment":"fusion_detection",)"
      R"("grid":[{"axis":"sensors","list":[4,9]},)"
      R"({"axis":"snr_offset_db","list":[-6,0]}]})");
  const CampaignPlan plan = plan_campaign(spec);
  ASSERT_EQ(plan.stages.size(), 1u);
  ASSERT_EQ(plan.units_total, 8u);  // 4 cells x {attack, benign}
  for (std::size_t u = 0; u < plan.stages[0].size(); ++u) {
    EXPECT_EQ(plan.stages[0][u].run_index, u);
    EXPECT_EQ(plan.stages[0][u].role, u % 2 == 0 ? "attack" : "benign");
  }
  EXPECT_EQ(plan.stages[0][0].id, "u0000.attack.sensors=4,snr_offset_db=-6");
}

TEST(MeshPlanTest, LocalizationErrorHasOneUnitPerCell) {
  const CampaignSpec spec =
      CampaignSpec::parse(tiny_localization_spec_text());
  const CampaignPlan plan = plan_campaign(spec);
  ASSERT_EQ(plan.units_total, 2u);
  EXPECT_EQ(plan.stages[0][0].role, "attack");
  EXPECT_EQ(plan.stages[0][1].run_index, 1u);
}

TEST(MeshPlanTest, ExperimentsRejectForeignAxes) {
  EXPECT_THROW(
      plan_campaign(CampaignSpec::parse(
          R"({"schema":1,"name":"m","experiment":"fusion_detection",)"
          R"("grid":[{"axis":"snr_db","list":[7]}]})")),
      SpecError);
  // localization_error has no benign leg, so no snr_offset_db axis either.
  EXPECT_THROW(
      plan_campaign(CampaignSpec::parse(
          R"({"schema":1,"name":"m","experiment":"localization_error",)"
          R"("grid":[{"axis":"snr_offset_db","list":[0]}]})")),
      SpecError);
}

TEST(MeshExecutorTest, FusionReportIsByteIdenticalAcrossThreadsAndShards) {
  const CampaignSpec spec = CampaignSpec::parse(tiny_fusion_spec_text());

  ExecutorOptions reference;
  reference.out_dir = fresh_dir("fd_ref");
  reference.threads = 1;
  reference.quiet = true;
  const CampaignOutcome ref = run_campaign(spec, reference);
  ASSERT_TRUE(ref.complete);
  EXPECT_NE(ref.report_json.find("\"majority_detection\":"),
            std::string::npos);
  EXPECT_NE(ref.report_json.find("\"bayesian_false_alarm\":"),
            std::string::npos);

  ExecutorOptions threaded;
  threaded.out_dir = fresh_dir("fd_t8");
  threaded.threads = 8;
  threaded.quiet = true;
  EXPECT_EQ(run_campaign(spec, threaded).report_json, ref.report_json);

  ExecutorOptions sharded;
  sharded.out_dir = fresh_dir("fd_shard");
  sharded.shards = 2;
  sharded.shard = 1;
  sharded.quiet = true;
  EXPECT_FALSE(run_campaign(spec, sharded).complete);
  sharded.shard = 0;
  const CampaignOutcome merged = run_campaign(spec, sharded);
  ASSERT_TRUE(merged.complete);
  EXPECT_EQ(merged.report_json, ref.report_json);
}

TEST(MeshExecutorTest, LocalizationReportCarriesErrorMetrics) {
  const CampaignSpec spec =
      CampaignSpec::parse(tiny_localization_spec_text());
  ExecutorOptions options;
  options.out_dir = fresh_dir("le");
  options.threads = 1;
  options.quiet = true;
  const CampaignOutcome outcome = run_campaign(spec, options);
  ASSERT_TRUE(outcome.complete);
  EXPECT_NE(outcome.report_json.find("\"rmse_m\":"), std::string::npos);
  EXPECT_NE(outcome.report_json.find("\"cep50_m\":"), std::string::npos);
  EXPECT_NE(outcome.report_json.find("\"converged_fraction\":"),
            std::string::npos);

  ExecutorOptions threaded;
  threaded.out_dir = fresh_dir("le_t8");
  threaded.threads = 8;
  threaded.quiet = true;
  EXPECT_EQ(run_campaign(spec, threaded).report_json, outcome.report_json);
}

}  // namespace
}  // namespace ctc::campaign
