#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dsp/require.h"
#include "dsp/types.h"
#include "mesh/fusion.h"

namespace ctc::mesh {
namespace {

SensorVote vote(bool usable, bool is_attack, double de2, double weight) {
  return SensorVote{usable, is_attack, de2, weight};
}

// Hand oracle for the clamped Gaussian log-pdf the Bayesian rule sums.
double log_pdf(double x, double mu, double var) {
  const double v = std::max(var, kBayesVarianceFloor);
  return -0.5 * std::log(kTwoPi * v) - (x - mu) * (x - mu) / (2.0 * v);
}

TEST(FuseMajorityTest, CountsOnlyUsableSensors) {
  const std::vector<SensorVote> votes = {
      vote(true, true, 0.6, 1.0), vote(true, false, 0.1, 1.0),
      vote(false, true, 9.9, 1.0),  // unusable: must be ignored
      vote(true, false, 0.2, 1.0),
  };
  const FusionResult result = fuse_majority(votes);
  EXPECT_EQ(result.used, 3u);
  EXPECT_DOUBLE_EQ(result.score, 1.0 / 3.0);
  EXPECT_FALSE(result.is_attack);  // 2*1 < 3
}

TEST(FuseMajorityTest, ExactTieAlarms) {
  const std::vector<SensorVote> votes = {
      vote(true, true, 0.6, 1.0), vote(true, false, 0.1, 1.0),
      vote(true, true, 0.7, 1.0), vote(true, false, 0.0, 1.0),
  };
  const FusionResult result = fuse_majority(votes);
  EXPECT_EQ(result.used, 4u);
  EXPECT_DOUBLE_EQ(result.score, 0.5);
  EXPECT_TRUE(result.is_attack);  // ties are detection-biased
}

TEST(FuseMajorityTest, NoUsableSensorsAbstains) {
  const std::vector<SensorVote> votes = {vote(false, true, 1.0, 1.0)};
  const FusionResult result = fuse_majority(votes);
  EXPECT_EQ(result.used, 0u);
  EXPECT_DOUBLE_EQ(result.score, 0.0);
  EXPECT_FALSE(result.is_attack);
}

TEST(FuseRssiWeightedTest, WeightedMeanAgainstThresholdByHand) {
  // (0.8*3 + 0.2*1) / 4 = 0.65.
  const std::vector<SensorVote> votes = {
      vote(true, true, 0.8, 3.0),
      vote(true, false, 0.2, 1.0),
      vote(false, false, 5.0, 100.0),  // unusable: ignored
  };
  const FusionResult above = fuse_rssi_weighted(votes, 0.5);
  EXPECT_EQ(above.used, 2u);
  EXPECT_DOUBLE_EQ(above.score, 0.65);
  EXPECT_TRUE(above.is_attack);
  const FusionResult below = fuse_rssi_weighted(votes, 0.66);
  EXPECT_DOUBLE_EQ(below.score, 0.65);
  EXPECT_FALSE(below.is_attack);
}

TEST(FuseRssiWeightedTest, AllZeroWeightsFallBackToUnweightedMean) {
  const std::vector<SensorVote> votes = {
      vote(true, true, 0.9, 0.0),
      vote(true, false, 0.1, 0.0),
  };
  const FusionResult result = fuse_rssi_weighted(votes, 0.5);
  EXPECT_EQ(result.used, 2u);
  EXPECT_DOUBLE_EQ(result.score, 0.5);  // (0.9 + 0.1) / 2
  EXPECT_TRUE(result.is_attack);        // >= threshold
}

TEST(FuseRssiWeightedTest, RejectsNegativeWeights) {
  const std::vector<SensorVote> votes = {vote(true, true, 0.5, -1.0)};
  EXPECT_THROW(fuse_rssi_weighted(votes, 0.5), ContractError);
}

TEST(FuseBayesianTest, SingleSharedModelSumsPerSensorLlrs) {
  const GaussianPair model;  // defaults: H0(0.05, 0.01), H1(0.5, 0.05)
  const std::vector<SensorVote> votes = {
      vote(true, true, 0.45, 1.0),
      vote(true, false, 0.07, 1.0),
      vote(false, false, 0.0, 1.0),  // unusable: ignored
  };
  const double expected =
      (log_pdf(0.45, model.mu_h1, model.var_h1) -
       log_pdf(0.45, model.mu_h0, model.var_h0)) +
      (log_pdf(0.07, model.mu_h1, model.var_h1) -
       log_pdf(0.07, model.mu_h0, model.var_h0));
  const FusionResult result =
      fuse_bayesian(votes, std::span<const GaussianPair>(&model, 1));
  EXPECT_EQ(result.used, 2u);
  EXPECT_DOUBLE_EQ(result.score, expected);
  EXPECT_EQ(result.is_attack, expected >= 0.0);
  EXPECT_DOUBLE_EQ(gaussian_llr(0.45, model),
                   log_pdf(0.45, model.mu_h1, model.var_h1) -
                       log_pdf(0.45, model.mu_h0, model.var_h0));
}

TEST(FuseBayesianTest, ZeroVarianceModelClampsToTheFloor) {
  // A degenerate training model (zero variance) must produce the clamped,
  // finite LLR — hand-computed against the documented floor.
  GaussianPair degenerate;
  degenerate.mu_h1 = 0.5;
  degenerate.var_h1 = 0.0;
  const double llr = gaussian_llr(0.5, degenerate);
  const double expected = log_pdf(0.5, 0.5, kBayesVarianceFloor) -
                          log_pdf(0.5, degenerate.mu_h0, degenerate.var_h0);
  EXPECT_TRUE(std::isfinite(llr));
  EXPECT_DOUBLE_EQ(llr, expected);

  const std::vector<SensorVote> votes = {vote(true, true, 0.5, 1.0)};
  const FusionResult result =
      fuse_bayesian(votes, std::span<const GaussianPair>(&degenerate, 1));
  EXPECT_DOUBLE_EQ(result.score, expected);
  EXPECT_TRUE(result.is_attack);  // de2 dead on mu_h1: certain attack
}

TEST(FuseBayesianTest, PerSensorModelsMustMatchVoteCount) {
  const std::vector<SensorVote> votes = {vote(true, true, 0.5, 1.0),
                                         vote(true, false, 0.1, 1.0)};
  const std::vector<GaussianPair> two_models(2);
  EXPECT_EQ(fuse_bayesian(votes, two_models).used, 2u);
  const std::vector<GaussianPair> three_models(3);
  EXPECT_THROW(fuse_bayesian(votes, three_models), ContractError);
}

}  // namespace
}  // namespace ctc::mesh
