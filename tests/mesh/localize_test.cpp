#include <gtest/gtest.h>

#include <vector>

#include "channel/pathloss.h"
#include "dsp/require.h"
#include "dsp/rng.h"
#include "mesh/geometry.h"
#include "mesh/localize.h"

namespace ctc::mesh {
namespace {

std::vector<RssiSample> exact_samples(const std::vector<Vec2>& sensors,
                                      const Vec2& emitter,
                                      const channel::PathLossModel& model) {
  std::vector<RssiSample> samples;
  for (const Vec2& sensor : sensors) {
    samples.push_back({sensor, model.rssi_dbm(distance(sensor, emitter))});
  }
  return samples;
}

TEST(LocalizeTest, NoiselessMeasurementsRecoverTheEmitterExactly) {
  const channel::PathLossModel model;
  const Vec2 emitter{1.9, 1.1};
  LocalizeConfig config;
  config.path_loss = model;
  for (std::size_t count : {4u, 9u, 16u}) {
    const auto samples =
        exact_samples(grid_layout(count, 8.0), emitter, model);
    const LocalizationResult result = localize_rssi(samples, config);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.position.x, emitter.x, 1e-6);
    EXPECT_NEAR(result.position.y, emitter.y, 1e-6);
    EXPECT_NEAR(result.residual_rms_m, 0.0, 1e-6);
  }
}

TEST(LocalizeTest, RingGeometryWorksToo) {
  const channel::PathLossModel model;
  const Vec2 emitter{0.7, -0.4};
  LocalizeConfig config;
  config.path_loss = model;
  const auto samples = exact_samples(ring_layout(6, 4.0), emitter, model);
  const LocalizationResult result = localize_rssi(samples, config);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.position.x, emitter.x, 1e-6);
  EXPECT_NEAR(result.position.y, emitter.y, 1e-6);
}

TEST(LocalizeTest, NoisyRangesStillLandNearTheEmitter) {
  const channel::PathLossModel model;
  const Vec2 emitter{1.9, 1.1};
  LocalizeConfig config;
  config.path_loss = model;
  dsp::Rng rng(404);
  auto samples = exact_samples(grid_layout(16, 8.0), emitter, model);
  for (RssiSample& sample : samples) sample.rssi_dbm += rng.gaussian();
  const LocalizationResult result = localize_rssi(samples, config);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(distance(result.position, emitter), 1.0);
  EXPECT_GT(result.residual_rms_m, 0.0);
}

TEST(LocalizeTest, DeterministicAcrossCalls) {
  const channel::PathLossModel model;
  LocalizeConfig config;
  config.path_loss = model;
  const auto samples =
      exact_samples(grid_layout(9, 8.0), Vec2{2.5, -1.0}, model);
  const LocalizationResult a = localize_rssi(samples, config);
  const LocalizationResult b = localize_rssi(samples, config);
  EXPECT_EQ(a.position.x, b.position.x);
  EXPECT_EQ(a.position.y, b.position.y);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.residual_rms_m, b.residual_rms_m);
}

TEST(LocalizeTest, RequiresAtLeastThreeSamples) {
  const channel::PathLossModel model;
  LocalizeConfig config;
  config.path_loss = model;
  const auto samples =
      exact_samples(grid_layout(4, 8.0), Vec2{1.0, 1.0}, model);
  const std::vector<RssiSample> two(samples.begin(), samples.begin() + 2);
  EXPECT_THROW(localize_rssi(two, config), ContractError);
}

}  // namespace
}  // namespace ctc::mesh
