#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dsp/require.h"
#include "mesh/sensor_field.h"
#include "sim/engine.h"
#include "zigbee/app.h"

namespace ctc::mesh {
namespace {

MeshConfig small_field(std::size_t sensors, bool batched = true) {
  MeshConfig config;
  config.sensors = sensors;
  config.batched_channel = batched;
  return config;
}

std::vector<zigbee::MacFrame> workload() {
  return zigbee::make_text_workload(4);
}

void expect_same_stats(const MeshStats& a, const MeshStats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.sensors_total, b.sensors_total);
  EXPECT_EQ(a.sensors_usable, b.sensors_usable);
  EXPECT_EQ(a.sensor_attacks, b.sensor_attacks);
  EXPECT_EQ(a.majority_attacks, b.majority_attacks);
  EXPECT_EQ(a.weighted_attacks, b.weighted_attacks);
  EXPECT_EQ(a.bayesian_attacks, b.bayesian_attacks);
  EXPECT_EQ(a.localization_converged, b.localization_converged);
  EXPECT_EQ(a.de2_sum, b.de2_sum);
  ASSERT_EQ(a.position_errors.size(), b.position_errors.size());
  for (std::size_t i = 0; i < a.position_errors.size(); ++i) {
    EXPECT_EQ(a.position_errors[i], b.position_errors[i]) << "trial " << i;
  }
}

TEST(SensorFieldTest, GeometryAndEnvironmentsFollowTheConfig) {
  const SensorField field(small_field(9));
  ASSERT_EQ(field.positions().size(), 9u);
  ASSERT_EQ(field.distances().size(), 9u);
  // Sensor SNR falls with distance from the attacker (monotone through the
  // shared log-distance model).
  for (std::size_t i = 0; i + 1 < field.distances().size(); ++i) {
    for (std::size_t j = i + 1; j < field.distances().size(); ++j) {
      if (field.distances()[i] < field.distances()[j]) {
        EXPECT_GT(field.config().path_loss.snr_db(field.distances()[i]),
                  field.config().path_loss.snr_db(field.distances()[j]));
      }
    }
  }
}

TEST(SensorFieldTest, RejectsDegenerateConfigs) {
  EXPECT_THROW(SensorField(small_field(2)), ContractError);
  MeshConfig on_top = small_field(4);
  on_top.attacker = Vec2{-4.0, -4.0};  // exactly on the first grid sensor
  EXPECT_THROW(SensorField{on_top}, ContractError);
}

TEST(SensorFieldTest, BatchedAndSerialChannelsAreBitIdentical) {
  const SensorField batched(small_field(9, true));
  const SensorField serial(small_field(9, false));
  const auto frames = workload();

  sim::TrialEngine engine({20190707, 1});
  const std::uint64_t run_index = engine.next_run_index();
  const MeshStats batched_stats =
      run_mesh_trials(batched, frames, 6, engine);
  engine.seek_run(run_index);
  const MeshStats serial_stats = run_mesh_trials(serial, frames, 6, engine);
  expect_same_stats(batched_stats, serial_stats);
}

TEST(SensorFieldTest, ThreadCountDoesNotChangeTheNumbers) {
  const SensorField field(small_field(9));
  const auto frames = workload();
  sim::TrialEngine one({20190707, 1});
  sim::TrialEngine eight({20190707, 8});
  const MeshStats a = run_mesh_trials(field, frames, 8, one);
  const MeshStats b = run_mesh_trials(field, frames, 8, eight);
  expect_same_stats(a, b);
}

TEST(SensorFieldTest, EmulatedAttackIsDetectedBenignIsNot) {
  const auto frames = workload();
  sim::TrialEngine engine({20190707, 1});

  const SensorField attack_field(small_field(9));
  const MeshStats attack = run_mesh_trials(attack_field, frames, 6, engine);
  EXPECT_EQ(attack.trials, 6u);
  EXPECT_GT(attack.usable_fraction(), 0.9);
  EXPECT_GT(attack.majority_rate(), 0.9);
  EXPECT_GT(attack.weighted_rate(), 0.9);
  EXPECT_GT(attack.bayesian_rate(), 0.9);

  MeshConfig benign_config = small_field(9);
  benign_config.kind = sim::LinkKind::authentic;
  const SensorField benign_field(benign_config);
  const MeshStats benign = run_mesh_trials(benign_field, frames, 6, engine);
  EXPECT_LT(benign.weighted_rate(), attack.weighted_rate());
}

TEST(SensorFieldTest, LocalizationErrorShrinksWithMoreSensors) {
  const auto frames = workload();
  auto rmse_for = [&](std::size_t sensors) {
    sim::TrialEngine engine({20190707, 1});
    const SensorField field(small_field(sensors));
    const MeshStats stats = run_mesh_trials(field, frames, 16, engine);
    EXPECT_EQ(stats.localization_converged, stats.trials);
    return stats.rmse_m();
  };
  const double rmse4 = rmse_for(4);
  const double rmse16 = rmse_for(16);
  EXPECT_GT(rmse4, 0.0);
  EXPECT_LT(rmse16, rmse4);
}

TEST(MeshStatsTest, ReductionsMatchHandComputedValues) {
  MeshStats stats;
  MeshObservation observation;
  observation.sensors.resize(2);
  observation.sensors[0].usable = true;
  observation.sensors[0].is_attack = true;
  observation.sensors[0].de2 = 0.4;
  observation.sensors[1].usable = false;
  observation.majority.is_attack = true;
  observation.localization.converged = true;
  observation.position_error_m = 3.0;
  stats.add(observation);
  observation.position_error_m = 4.0;
  observation.majority.is_attack = false;
  stats.add(observation);

  EXPECT_EQ(stats.trials, 2u);
  EXPECT_EQ(stats.sensors_total, 4u);
  EXPECT_EQ(stats.sensors_usable, 2u);
  EXPECT_DOUBLE_EQ(stats.usable_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(stats.single_sensor_rate(), 1.0);
  EXPECT_DOUBLE_EQ(stats.majority_rate(), 0.5);
  EXPECT_DOUBLE_EQ(stats.mean_de2(), 0.4);
  EXPECT_DOUBLE_EQ(stats.rmse_m(), std::sqrt((9.0 + 16.0) / 2.0));
  EXPECT_DOUBLE_EQ(stats.cep50_m(), 3.5);  // even count: middle-pair mean
}

}  // namespace
}  // namespace ctc::mesh
