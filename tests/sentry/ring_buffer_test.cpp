#include "sentry/ring_buffer.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dsp/require.h"

namespace ctc::sentry {
namespace {

TEST(SentryRingBufferTest, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(SpscRing<int>(0), ContractError);
  EXPECT_THROW(SpscRing<int>(1), ContractError);
  EXPECT_THROW(SpscRing<int>(3), ContractError);
  EXPECT_THROW(SpscRing<int>(100), ContractError);
  EXPECT_NO_THROW(SpscRing<int>(2));
  EXPECT_NO_THROW(SpscRing<int>(1024));
}

TEST(SentryRingBufferTest, PushPopRoundTrips) {
  SpscRing<int> ring(8);
  std::vector<int> in{1, 2, 3, 4, 5};
  EXPECT_EQ(ring.try_push(in), 5u);
  EXPECT_EQ(ring.size(), 5u);

  std::vector<int> out(5);
  EXPECT_EQ(ring.try_pop(out), 5u);
  EXPECT_EQ(out, in);
  EXPECT_TRUE(ring.empty());
}

TEST(SentryRingBufferTest, OverflowAcceptsExactlyFreeSpace) {
  SpscRing<int> ring(8);
  std::vector<int> block(6, 7);
  EXPECT_EQ(ring.try_push(block), 6u);
  // Only 2 slots left: a 6-item push accepts exactly 2 and reports it.
  std::vector<int> more{10, 11, 12, 13, 14, 15};
  EXPECT_EQ(ring.try_push(more), 2u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.try_push(more), 0u);

  // The accepted prefix is the one that comes out.
  std::vector<int> out(8);
  EXPECT_EQ(ring.try_pop(out), 8u);
  EXPECT_EQ(out[6], 10);
  EXPECT_EQ(out[7], 11);
}

TEST(SentryRingBufferTest, WrapsAroundPreservingOrder) {
  SpscRing<int> ring(4);
  std::vector<int> scratch(3);
  int next = 0;
  int expect = 0;
  // Push/pop in a ragged pattern far past several wraparounds.
  for (int round = 0; round < 100; ++round) {
    std::vector<int> in{next, next + 1, next + 2};
    const std::size_t accepted = ring.try_push(in);
    next += static_cast<int>(accepted);
    const std::size_t got = ring.try_pop(scratch);
    for (std::size_t i = 0; i < got; ++i) {
      EXPECT_EQ(scratch[i], expect++);
    }
  }
  EXPECT_EQ(ring.produced(), ring.consumed() + ring.size());
}

TEST(SentryRingBufferTest, MonotonicTotalsBalance) {
  SpscRing<int> ring(16);
  std::vector<int> in(10);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> out(4);

  std::size_t pushed = 0;
  std::size_t popped = 0;
  for (int i = 0; i < 50; ++i) {
    pushed += ring.try_push(in);
    popped += ring.try_pop(out);
  }
  EXPECT_EQ(ring.produced(), pushed);
  EXPECT_EQ(ring.consumed(), popped);
  EXPECT_EQ(ring.size(), pushed - popped);
}

TEST(SentryRingBufferTest, PeekExposesQueuedItemsWithoutRetiring) {
  SpscRing<int> ring(8);
  std::vector<int> in{1, 2, 3, 4, 5};
  ASSERT_EQ(ring.try_push(in), 5u);

  const auto view = ring.peek(3);
  ASSERT_EQ(view.total(), 3u);
  EXPECT_EQ(view.first.size(), 3u);
  EXPECT_TRUE(view.second.empty());
  EXPECT_EQ(view.first[0], 1);
  EXPECT_EQ(view.first[2], 3);
  // Nothing retired yet: size and consumed() are unchanged, and a second
  // peek sees the same items.
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.consumed(), 0u);
  EXPECT_EQ(ring.peek(3).first[0], 1);

  ring.consume(3);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.consumed(), 3u);
  EXPECT_EQ(ring.peek(8).first[0], 4);
}

TEST(SentryRingBufferTest, PeekSplitsAcrossTheWraparound) {
  SpscRing<int> ring(8);
  // Advance head to 6 so a subsequent 5-item region wraps: physical slots
  // [6,7] then [0,2].
  std::vector<int> prime{0, 1, 2, 3, 4, 5};
  ASSERT_EQ(ring.try_push(prime), 6u);
  std::vector<int> sink(6);
  ASSERT_EQ(ring.try_pop(sink), 6u);
  std::vector<int> wrapped{10, 11, 12, 13, 14};
  ASSERT_EQ(ring.try_push(wrapped), 5u);

  const auto view = ring.peek(5);
  ASSERT_EQ(view.total(), 5u);
  ASSERT_EQ(view.first.size(), 2u);
  ASSERT_EQ(view.second.size(), 3u);
  EXPECT_EQ(view.first[0], 10);
  EXPECT_EQ(view.first[1], 11);
  EXPECT_EQ(view.second[0], 12);
  EXPECT_EQ(view.second[2], 14);

  // Partial consume moves the split point: the remainder is contiguous.
  ring.consume(2);
  const auto rest = ring.peek(5);
  ASSERT_EQ(rest.total(), 3u);
  EXPECT_EQ(rest.first.size(), 3u);
  EXPECT_EQ(rest.first[0], 12);
  ring.consume(3);
  EXPECT_TRUE(ring.empty());
}

TEST(SentryRingBufferTest, PeekConsumeAccountingMatchesTryPop) {
  SpscRing<int> ring(16);
  std::vector<int> in(10);
  std::iota(in.begin(), in.end(), 0);
  std::size_t pushed = 0;
  std::size_t consumed = 0;
  for (int round = 0; round < 50; ++round) {
    pushed += ring.try_push(in);
    const auto view = ring.peek(7);
    consumed += view.total();
    ring.consume(view.total());
  }
  EXPECT_EQ(ring.produced(), pushed);
  EXPECT_EQ(ring.consumed(), consumed);
  EXPECT_EQ(ring.size(), pushed - consumed);
}

TEST(SentryRingBufferTest, PeekEmptyAndConsumePastTailAreHandled) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.peek(4).empty());
  EXPECT_EQ(ring.peek(4).total(), 0u);
  ring.consume(0);  // consuming nothing is a no-op
  std::vector<int> in{1, 2};
  ASSERT_EQ(ring.try_push(in), 2u);
  EXPECT_THROW(ring.consume(3), ContractError);
  EXPECT_NO_THROW(ring.consume(2));
  EXPECT_TRUE(ring.empty());
}

TEST(SentryRingBufferTest, PopFromEmptyAndPushEmptySpanAreNoOps) {
  SpscRing<int> ring(4);
  std::vector<int> out(4);
  EXPECT_EQ(ring.try_pop(out), 0u);
  EXPECT_EQ(ring.try_push(std::span<const int>{}), 0u);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace ctc::sentry
