#include "sentry/ring_buffer.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dsp/require.h"

namespace ctc::sentry {
namespace {

TEST(SentryRingBufferTest, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(SpscRing<int>(0), ContractError);
  EXPECT_THROW(SpscRing<int>(1), ContractError);
  EXPECT_THROW(SpscRing<int>(3), ContractError);
  EXPECT_THROW(SpscRing<int>(100), ContractError);
  EXPECT_NO_THROW(SpscRing<int>(2));
  EXPECT_NO_THROW(SpscRing<int>(1024));
}

TEST(SentryRingBufferTest, PushPopRoundTrips) {
  SpscRing<int> ring(8);
  std::vector<int> in{1, 2, 3, 4, 5};
  EXPECT_EQ(ring.try_push(in), 5u);
  EXPECT_EQ(ring.size(), 5u);

  std::vector<int> out(5);
  EXPECT_EQ(ring.try_pop(out), 5u);
  EXPECT_EQ(out, in);
  EXPECT_TRUE(ring.empty());
}

TEST(SentryRingBufferTest, OverflowAcceptsExactlyFreeSpace) {
  SpscRing<int> ring(8);
  std::vector<int> block(6, 7);
  EXPECT_EQ(ring.try_push(block), 6u);
  // Only 2 slots left: a 6-item push accepts exactly 2 and reports it.
  std::vector<int> more{10, 11, 12, 13, 14, 15};
  EXPECT_EQ(ring.try_push(more), 2u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.try_push(more), 0u);

  // The accepted prefix is the one that comes out.
  std::vector<int> out(8);
  EXPECT_EQ(ring.try_pop(out), 8u);
  EXPECT_EQ(out[6], 10);
  EXPECT_EQ(out[7], 11);
}

TEST(SentryRingBufferTest, WrapsAroundPreservingOrder) {
  SpscRing<int> ring(4);
  std::vector<int> scratch(3);
  int next = 0;
  int expect = 0;
  // Push/pop in a ragged pattern far past several wraparounds.
  for (int round = 0; round < 100; ++round) {
    std::vector<int> in{next, next + 1, next + 2};
    const std::size_t accepted = ring.try_push(in);
    next += static_cast<int>(accepted);
    const std::size_t got = ring.try_pop(scratch);
    for (std::size_t i = 0; i < got; ++i) {
      EXPECT_EQ(scratch[i], expect++);
    }
  }
  EXPECT_EQ(ring.produced(), ring.consumed() + ring.size());
}

TEST(SentryRingBufferTest, MonotonicTotalsBalance) {
  SpscRing<int> ring(16);
  std::vector<int> in(10);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> out(4);

  std::size_t pushed = 0;
  std::size_t popped = 0;
  for (int i = 0; i < 50; ++i) {
    pushed += ring.try_push(in);
    popped += ring.try_pop(out);
  }
  EXPECT_EQ(ring.produced(), pushed);
  EXPECT_EQ(ring.consumed(), popped);
  EXPECT_EQ(ring.size(), pushed - popped);
}

TEST(SentryRingBufferTest, PopFromEmptyAndPushEmptySpanAreNoOps) {
  SpscRing<int> ring(4);
  std::vector<int> out(4);
  EXPECT_EQ(ring.try_pop(out), 0u);
  EXPECT_EQ(ring.try_push(std::span<const int>{}), 0u);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace ctc::sentry
