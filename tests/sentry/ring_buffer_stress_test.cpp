// SPSC protocol hammering for the TSan pass: one free-running producer, one
// free-running consumer, no locks, no sleeps. TSan validates the
// acquire/release pairing; the sequence check validates that no sample is
// lost, duplicated, or reordered across millions of wraparounds.
#include "sentry/ring_buffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace ctc::sentry {
namespace {

TEST(SentryRingBufferStressTest, SpscSequenceSurvivesFreeRunningThreads) {
  // Small capacity maximizes wraparounds and full/empty boundary hits.
  SpscRing<std::uint64_t> ring(1u << 8);
  constexpr std::uint64_t kTotal = 4'000'000;

  std::thread producer([&] {
    std::vector<std::uint64_t> block(33);
    std::uint64_t next = 0;
    while (next < kTotal) {
      const std::uint64_t want = std::min<std::uint64_t>(block.size(),
                                                         kTotal - next);
      for (std::uint64_t i = 0; i < want; ++i) block[i] = next + i;
      const std::size_t accepted = ring.try_push(
          std::span<const std::uint64_t>(block.data(), want));
      next += accepted;  // unaccepted tail is retried, never skipped
    }
  });

  std::uint64_t expect = 0;
  bool ordered = true;
  std::vector<std::uint64_t> out(57);
  while (expect < kTotal) {
    const std::size_t got = ring.try_pop(std::span<std::uint64_t>(out));
    for (std::size_t i = 0; i < got; ++i) {
      ordered = ordered && out[i] == expect;
      ++expect;
    }
  }
  producer.join();

  EXPECT_TRUE(ordered);
  EXPECT_EQ(expect, kTotal);
  EXPECT_EQ(ring.produced(), kTotal);
  EXPECT_EQ(ring.consumed(), kTotal);
  EXPECT_TRUE(ring.empty());
}

TEST(SentryRingBufferStressTest, PeekConsumeSurvivesFreeRunningProducer) {
  // The zero-copy drain protocol under contention: the consumer reads ring
  // storage in place via peek() and only then retires with consume().
  // TSan validates that the acquire on tail_ orders the producer's slot
  // writes before the consumer's in-place reads, and that the release on
  // head_ orders those reads before the producer reuses the slots.
  SpscRing<std::uint64_t> ring(1u << 8);
  constexpr std::uint64_t kTotal = 4'000'000;

  std::thread producer([&] {
    std::vector<std::uint64_t> block(29);
    std::uint64_t next = 0;
    while (next < kTotal) {
      const std::uint64_t want = std::min<std::uint64_t>(block.size(),
                                                         kTotal - next);
      for (std::uint64_t i = 0; i < want; ++i) block[i] = next + i;
      next += ring.try_push(
          std::span<const std::uint64_t>(block.data(), want));
    }
  });

  std::uint64_t expect = 0;
  bool ordered = true;
  while (expect < kTotal) {
    const auto view = ring.peek(61);
    for (const std::uint64_t value : view.first) {
      ordered = ordered && value == expect;
      ++expect;
    }
    for (const std::uint64_t value : view.second) {
      ordered = ordered && value == expect;
      ++expect;
    }
    ring.consume(view.total());
  }
  producer.join();

  EXPECT_TRUE(ordered);
  EXPECT_EQ(expect, kTotal);
  EXPECT_EQ(ring.produced(), kTotal);
  EXPECT_EQ(ring.consumed(), kTotal);
  EXPECT_TRUE(ring.empty());
}

TEST(SentryRingBufferStressTest, ThirdThreadSizeReadsStayBounded) {
  SpscRing<std::uint64_t> ring(1u << 10);
  constexpr std::uint64_t kTotal = 1'000'000;
  std::atomic<bool> done{false};

  std::thread producer([&] {
    std::vector<std::uint64_t> block(64, 1);
    std::uint64_t pushed = 0;
    while (pushed < kTotal) {
      pushed += ring.try_push(std::span<const std::uint64_t>(
          block.data(), std::min<std::uint64_t>(block.size(),
                                                kTotal - pushed)));
    }
  });
  std::thread observer([&] {
    // The snapshot endpoint's access pattern: size() from a thread that is
    // neither producer nor consumer must stay within capacity.
    bool bounded = true;
    while (!done.load(std::memory_order_acquire)) {
      bounded = bounded && ring.size() <= ring.capacity();
    }
    EXPECT_TRUE(bounded);
  });

  std::uint64_t popped = 0;
  std::vector<std::uint64_t> out(48);
  while (popped < kTotal) {
    popped += ring.try_pop(std::span<std::uint64_t>(out));
  }
  producer.join();
  done.store(true, std::memory_order_release);
  observer.join();

  EXPECT_EQ(popped, kTotal);
}

}  // namespace
}  // namespace ctc::sentry
