#include "sentry/frame_sync.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sentry/source.h"
#include "zigbee/transmitter.h"

namespace ctc::sentry {
namespace {

/// Drains a LinkSource into one contiguous stream.
cvec collect_stream(const LinkSourceConfig& config, std::size_t channel = 0) {
  LinkSource source(config, channel);
  cvec stream;
  cvec block(4096);
  while (true) {
    const std::size_t got = source.next_block(block);
    if (got == 0) break;
    stream.insert(stream.end(), block.begin(),
                  block.begin() + static_cast<std::ptrdiff_t>(got));
  }
  return stream;
}

struct ScanOutput {
  std::string jsonl;
  std::vector<VerdictRecord> records;
  ScannerStats stats;
};

ScanOutput scan_stream(std::span<const cplx> stream, std::size_t block_size,
                       const ScannerConfig& config = {}) {
  ScanOutput output;
  StreamScanner scanner(config, 0, [&](const VerdictRecord& record) {
    output.jsonl += record.to_jsonl();
    output.jsonl += '\n';
    output.records.push_back(record);
  });
  for (std::size_t i = 0; i < stream.size(); i += block_size) {
    scanner.push(stream.subspan(i, std::min(block_size, stream.size() - i)));
  }
  scanner.flush();
  output.stats = scanner.stats();
  return output;
}

LinkSourceConfig quiet_config(std::size_t frames, std::size_t attack_every) {
  LinkSourceConfig config;
  config.environment = channel::Environment::awgn(15.0);
  config.frames = frames;
  config.attack_every = attack_every;
  config.gap_samples = 700;
  config.seed = 4057;
  return config;
}

TEST(StreamScannerTest, DecodesEveryFrameInAGappedStream) {
  const cvec stream = collect_stream(quiet_config(12, 0));
  const ScanOutput output = scan_stream(stream, 4096);

  EXPECT_EQ(output.stats.frames_decoded, 12u);
  EXPECT_EQ(output.stats.verdicts, 12u);
  EXPECT_EQ(output.stats.samples_in, stream.size());
  EXPECT_EQ(output.stats.samples_consumed, stream.size());
  for (const VerdictRecord& record : output.records) {
    EXPECT_TRUE(record.frame_ok);
    EXPECT_TRUE(record.valid);
    EXPECT_FALSE(record.is_attack);  // all-authentic stream at high SNR
  }
  // Frame starts are strictly increasing stream positions.
  for (std::size_t i = 1; i < output.records.size(); ++i) {
    EXPECT_GT(output.records[i].stream_position,
              output.records[i - 1].stream_position);
    EXPECT_EQ(output.records[i].frame_index, i);
  }
}

TEST(StreamScannerTest, FlagsEmulatedFramesAsAttacks) {
  const LinkSourceConfig config = quiet_config(12, 3);
  const cvec stream = collect_stream(config);
  const ScanOutput output = scan_stream(stream, 4096);

  ASSERT_EQ(output.records.size(), 12u);
  std::size_t attacks = 0;
  for (std::size_t i = 0; i < output.records.size(); ++i) {
    const bool expected = LinkSource::is_attack_frame(config, i + 1);
    EXPECT_EQ(output.records[i].is_attack, expected)
        << "frame " << i + 1 << " de2=" << output.records[i].de2;
    attacks += output.records[i].is_attack ? 1u : 0u;
  }
  EXPECT_EQ(attacks, 4u);
  EXPECT_EQ(output.stats.verdicts_attack, 4u);
}

TEST(StreamScannerTest, VerdictsAreInvariantToPushPartitioning) {
  const cvec stream = collect_stream(quiet_config(8, 3));
  const ScanOutput whole = scan_stream(stream, stream.size());
  EXPECT_EQ(whole.stats.verdicts, 8u);

  for (const std::size_t block : {1000003UL, 4096UL, 1537UL, 64UL, 1UL}) {
    if (block == 1 && stream.size() > 200000) {
      // One-sample pushes over the full stream are O(n) scanner calls; a
      // prefix exercises the same boundary logic.
      const std::span<const cplx> prefix(stream.data(), 200000);
      const ScanOutput chopped = scan_stream(prefix, block);
      const ScanOutput reference = scan_stream(prefix, prefix.size());
      EXPECT_EQ(chopped.jsonl, reference.jsonl) << "block=" << block;
      continue;
    }
    const ScanOutput chopped = scan_stream(stream, block);
    EXPECT_EQ(chopped.jsonl, whole.jsonl) << "block=" << block;
    EXPECT_EQ(chopped.stats.scan_rounds, whole.stats.scan_rounds);
    EXPECT_EQ(chopped.stats.sync_misses, whole.stats.sync_misses);
  }
}

TEST(StreamScannerTest, NoiseOnlyStreamEmitsNothing) {
  dsp::Rng rng(99);
  cvec noise(60000);
  for (cplx& sample : noise) sample = rng.complex_gaussian(0.1);
  const ScanOutput output = scan_stream(noise, 4096);
  EXPECT_EQ(output.stats.verdicts, 0u);
  EXPECT_EQ(output.stats.frames_detected, 0u);
  EXPECT_GT(output.stats.sync_misses, 0u);
  EXPECT_EQ(output.stats.samples_consumed, noise.size());
}

TEST(StreamScannerTest, TruncatedTailFrameIsDroppedNotHung) {
  const cvec stream = collect_stream(quiet_config(3, 0));
  // Chop the stream inside the last frame: its SHR syncs but the decode
  // sees a truncated capture.
  const std::size_t cut = stream.size() - 2500;
  const ScanOutput output =
      scan_stream(std::span<const cplx>(stream.data(), cut), 4096);
  EXPECT_EQ(output.stats.verdicts, 2u);
  EXPECT_EQ(output.stats.samples_consumed, cut);
}

TEST(StreamScannerTest, PpduSamplesMatchesTransmitterOutput) {
  for (const std::size_t payload : {0UL, 5UL, 40UL}) {
    zigbee::MacFrame frame;
    frame.payload.assign(payload, 0xAB);
    const zigbee::Transmitter tx({.samples_per_chip = 2,
                                  .normalize_power = true});
    const bytevec psdu = frame.serialize();
    EXPECT_EQ(StreamScanner::ppdu_samples(psdu.size(), 2),
              tx.transmit_psdu(psdu).size());
  }
}

}  // namespace
}  // namespace ctc::sentry
