#include "sentry/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ctc::sentry {
namespace {

LinkSourceConfig stream_config(std::size_t frames = 8) {
  LinkSourceConfig config;
  config.environment = channel::Environment::awgn(15.0);
  config.frames = frames;
  config.attack_every = 3;
  config.gap_samples = 700;
  config.seed = 7311;
  return config;
}

SentryService::SourceFactory live_factory(const LinkSourceConfig& config) {
  return [config](std::size_t channel) {
    return std::make_unique<LinkSource>(config, channel);
  };
}

/// Collects the exact stream a LinkSource channel emits.
cvec channel_stream(const LinkSourceConfig& config, std::size_t channel) {
  LinkSource source(config, channel);
  cvec stream;
  cvec block(4096);
  while (true) {
    const std::size_t got = source.next_block(block);
    if (got == 0) break;
    stream.insert(stream.end(), block.begin(),
                  block.begin() + static_cast<std::ptrdiff_t>(got));
  }
  return stream;
}

TEST(SentryServiceTest, VerdictStreamIsIdenticalAtAnyShardCount) {
  ServiceConfig config;
  config.channels = 6;
  const LinkSourceConfig stream = stream_config();

  config.shards = 1;
  const ServiceReport serial = SentryService(config, live_factory(stream)).run();
  ASSERT_GT(serial.total_verdicts(), 0u);

  for (const std::size_t shards : {3UL, 6UL, 8UL}) {
    config.shards = shards;
    const ServiceReport sharded =
        SentryService(config, live_factory(stream)).run();
    EXPECT_EQ(sharded.verdicts_jsonl, serial.verdicts_jsonl)
        << "shards=" << shards;
    EXPECT_EQ(sharded.total_dropped(), serial.total_dropped());
  }
}

TEST(SentryServiceTest, ReplayOfACaptureReproducesByteIdenticalVerdicts) {
  // "Capture" one live channel through the cf32 quantization (float32 I/Q),
  // then replay the capture twice: replay runs must agree byte for byte.
  const cvec live = channel_stream(stream_config(), 0);
  cvec capture(live.size());
  std::transform(live.begin(), live.end(), capture.begin(), [](cplx sample) {
    return cplx(static_cast<float>(sample.real()),
                static_cast<float>(sample.imag()));
  });

  ServiceConfig config;
  config.channels = 2;
  const auto replay_factory = [&capture](std::size_t) {
    return std::make_unique<ReplaySource>(capture);
  };

  const ServiceReport first = SentryService(config, replay_factory).run();
  const ServiceReport second = SentryService(config, replay_factory).run();
  ASSERT_GT(first.total_verdicts(), 0u);
  EXPECT_EQ(first.verdicts_jsonl, second.verdicts_jsonl);

  // Identical per-channel input => both channels report the same stream
  // content (modulo the channel id stamped into each line).
  EXPECT_EQ(first.channels[0].scanner.verdicts,
            first.channels[1].scanner.verdicts);
}

TEST(SentryServiceTest, ReplayParityWithLiveVerdicts) {
  // The float32 capture round-trip perturbs sample values in the last ulp,
  // so live-vs-replay parity is semantic (same frames, same decisions,
  // near-equal features), while replay-vs-replay is bit-exact.
  const LinkSourceConfig stream = stream_config();
  ServiceConfig config;
  config.channels = 1;
  const ServiceReport live = SentryService(config, live_factory(stream)).run();

  const cvec raw = channel_stream(stream, 0);
  cvec capture(raw.size());
  std::transform(raw.begin(), raw.end(), capture.begin(), [](cplx sample) {
    return cplx(static_cast<float>(sample.real()),
                static_cast<float>(sample.imag()));
  });
  const auto replay_factory = [&capture](std::size_t) {
    return std::make_unique<ReplaySource>(capture);
  };
  const ServiceReport replay = SentryService(config, replay_factory).run();

  ASSERT_EQ(replay.channels[0].scanner.verdicts,
            live.channels[0].scanner.verdicts);
  EXPECT_EQ(replay.channels[0].scanner.verdicts_attack,
            live.channels[0].scanner.verdicts_attack);
}

TEST(SentryServiceTest, OverloadDropAccountingIsExact) {
  const cvec capture = channel_stream(stream_config(4), 0);

  ServiceConfig config;
  config.channels = 1;
  config.channel.ring_capacity = 1u << 10;
  config.channel.ingest_block = 1024;
  config.channel.drain_block = 256;  // drains 1/4 of ingest: forced overload
  const auto replay_factory = [&capture](std::size_t) {
    return std::make_unique<ReplaySource>(capture);
  };
  const ServiceReport report = SentryService(config, replay_factory).run();
  const ChannelReport& channel = report.channels[0];

  EXPECT_GT(channel.dropped, 0u);
  EXPECT_EQ(channel.ingested, capture.size());
  EXPECT_EQ(channel.accepted + channel.dropped, channel.ingested);
  EXPECT_EQ(channel.scanner.samples_in, channel.accepted);
  EXPECT_EQ(channel.scanner.samples_consumed, channel.accepted);

  // Replaying the lockstep arithmetic must predict the drop count exactly.
  std::size_t depth = 0;
  std::uint64_t expected_dropped = 0;
  std::size_t remaining = capture.size();
  while (remaining > 0) {
    const std::size_t produced = std::min<std::size_t>(1024, remaining);
    remaining -= produced;
    const std::size_t accepted =
        std::min(produced, config.channel.ring_capacity - depth);
    expected_dropped += produced - accepted;
    depth += accepted;
    depth -= std::min<std::size_t>(256, depth);
  }
  EXPECT_EQ(channel.dropped, expected_dropped);

  // Overload is deterministic: a second run drops the same samples and
  // emits the same verdict bytes.
  const ServiceReport again = SentryService(config, replay_factory).run();
  EXPECT_EQ(again.channels[0].dropped, channel.dropped);
  EXPECT_EQ(again.verdicts_jsonl, report.verdicts_jsonl);
}

TEST(SentryServiceTest, SchedulersAgreeByteForByteWithoutOverload) {
  // When nothing drops, the DRR deficit floor covers every channel's whole
  // backlog each round, so the deficit-round-robin schedule degenerates to
  // lockstep — verdict bytes must agree across both schedulers and any
  // shard count.
  const LinkSourceConfig stream = stream_config();
  ServiceConfig config;
  config.channels = 5;
  config.scheduler = DrainScheduler::lockstep;
  const ServiceReport lockstep =
      SentryService(config, live_factory(stream)).run();
  ASSERT_GT(lockstep.total_verdicts(), 0u);
  ASSERT_EQ(lockstep.total_dropped(), 0u);

  config.scheduler = DrainScheduler::deficit_round_robin;
  for (const std::size_t shards : {1UL, 2UL, 5UL}) {
    config.shards = shards;
    const ServiceReport drr = SentryService(config, live_factory(stream)).run();
    EXPECT_EQ(drr.verdicts_jsonl, lockstep.verdicts_jsonl)
        << "shards=" << shards;
  }
}

TEST(SentryServiceTest, DrrMatchesLockstepOnSingleChannelOverload) {
  // A one-channel shard earns weight 1 every round, so DRR reduces exactly
  // to lockstep even when the ring overflows: same drops, same bytes.
  const cvec capture = channel_stream(stream_config(4), 0);
  ServiceConfig config;
  config.channels = 1;
  config.channel.ring_capacity = 1u << 10;
  config.channel.ingest_block = 1024;
  config.channel.drain_block = 256;
  const auto replay_factory = [&capture](std::size_t) {
    return std::make_unique<ReplaySource>(capture);
  };

  config.scheduler = DrainScheduler::lockstep;
  const ServiceReport lockstep = SentryService(config, replay_factory).run();
  config.scheduler = DrainScheduler::deficit_round_robin;
  const ServiceReport drr = SentryService(config, replay_factory).run();

  ASSERT_GT(lockstep.channels[0].dropped, 0u);
  EXPECT_EQ(drr.channels[0].dropped, lockstep.channels[0].dropped);
  EXPECT_EQ(drr.verdicts_jsonl, lockstep.verdicts_jsonl);
}

TEST(SentryServiceTest, DrrKeepsEveryChannelDrainingUnderOverload) {
  // Shared-shard overload: the weight floor of one block per round means
  // no backlogged channel starves — every channel keeps taking drain
  // turns, keeps exact books, and still lands verdicts.
  const cvec capture = channel_stream(stream_config(4), 0);
  ServiceConfig config;
  config.channels = 3;
  config.shards = 1;
  config.channel.ring_capacity = 1u << 10;
  config.channel.ingest_block = 1024;
  config.channel.drain_block = 256;
  const auto replay_factory = [&capture](std::size_t) {
    return std::make_unique<ReplaySource>(capture);
  };
  const ServiceReport report = SentryService(config, replay_factory).run();

  ASSERT_GT(report.total_dropped(), 0u);
  ASSERT_GT(report.total_verdicts(), 0u);
  for (const ChannelReport& channel : report.channels) {
    EXPECT_GT(channel.drain_turns, 0u);
    EXPECT_GT(channel.scanner.verdicts, 0u);
    EXPECT_EQ(channel.accepted + channel.dropped, channel.ingested);
    EXPECT_EQ(channel.scanner.samples_in, channel.accepted);
  }

  // The round structure is deterministic: a rerun reproduces the bytes.
  const ServiceReport again = SentryService(config, replay_factory).run();
  EXPECT_EQ(again.verdicts_jsonl, report.verdicts_jsonl);
}

TEST(SentryServiceTest, CountersMatchReportAfterJoin) {
  ServiceConfig config;
  config.channels = 3;
  config.shards = 2;
  SentryService service(config, live_factory(stream_config()));
  const ServiceReport report = service.run();

  const SentryCounters& counters = service.counters();
  EXPECT_EQ(counters.ingested.load(), report.total_ingested());
  EXPECT_EQ(counters.dropped.load(), report.total_dropped());
  EXPECT_EQ(counters.verdicts.load(), report.total_verdicts());
  EXPECT_EQ(counters.attacks.load(), report.total_attacks());
  const std::string snapshot = service.counters().snapshot_json();
  EXPECT_NE(snapshot.find("\"sentry_snapshot_schema\":1"), std::string::npos);
  EXPECT_NE(snapshot.find("\"verdicts\":"), std::string::npos);
}

}  // namespace
}  // namespace ctc::sentry
