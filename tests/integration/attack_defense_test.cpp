// End-to-end reproduction of the paper's core claims, at reduced trial
// counts so the suite stays fast; the bench binaries run the full sweeps.
#include <gtest/gtest.h>

#include "dsp/stats.h"
#include "sim/defense_run.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "zigbee/app.h"

namespace ctc::sim {
namespace {

std::vector<zigbee::MacFrame> workload() { return zigbee::make_text_workload(10); }

LinkConfig authentic_at(double snr_db) {
  LinkConfig config;
  config.environment = channel::Environment::awgn(snr_db);
  return config;
}

LinkConfig emulated_at(double snr_db) {
  LinkConfig config = authentic_at(snr_db);
  config.kind = LinkKind::emulated;
  return config;
}

TEST(AttackIntegrationTest, EmulatedFramesControlTheReceiverAtHighSnr) {
  // Table II end state: at 17 dB the attack succeeds (~100%).
  dsp::Rng rng(200);
  const auto frames = workload();
  const LinkStats stats = run_frames(Link(emulated_at(17.0)), frames, 30, rng);
  EXPECT_GE(stats.success_rate(), 0.95);
}

TEST(AttackIntegrationTest, SuccessRateRisesWithSnr) {
  // Table II shape: monotone-ish growth from 7 to 17 dB.
  dsp::Rng rng(201);
  const auto frames = workload();
  const double low = run_frames(Link(emulated_at(7.0)), frames, 40, rng).success_rate();
  const double mid = run_frames(Link(emulated_at(11.0)), frames, 40, rng).success_rate();
  const double high = run_frames(Link(emulated_at(17.0)), frames, 40, rng).success_rate();
  EXPECT_LT(low, mid + 0.1);
  EXPECT_LT(mid, high + 0.05);
  EXPECT_GT(low, 0.05);   // the attack already works sometimes at 7 dB
  EXPECT_LT(low, 0.95);   // ...but not always (the paper reports 42%)
  EXPECT_GE(high, 0.95);
}

TEST(AttackIntegrationTest, AuthenticLinkIsCleanWhereAttackDegrades) {
  dsp::Rng rng(202);
  const auto frames = workload();
  const LinkStats authentic = run_frames(Link(authentic_at(7.0)), frames, 30, rng);
  EXPECT_GE(authentic.success_rate(), 0.95);
  // Fig. 7: authentic chips match exactly at high SNR; emulated do not.
  const LinkStats clean = run_frames(Link(authentic_at(30.0)), frames, 5, rng);
  for (const auto& [distance, count] : clean.hamming_histogram) {
    EXPECT_EQ(distance, 0u);
  }
  const LinkStats attacked = run_frames(Link(emulated_at(30.0)), frames, 5, rng);
  std::size_t nonzero = 0;
  for (const auto& [distance, count] : attacked.hamming_histogram) {
    if (distance > 0) nonzero += count;
  }
  EXPECT_GT(nonzero, 0u);
}

TEST(DefenseIntegrationTest, DetectorSeparatesLinksAcrossSnr) {
  // Fig. 12 / Table IV: authentic DE^2 below threshold, emulated above,
  // for every SNR where the attack works.
  dsp::Rng rng(203);
  const auto frames = workload();
  defense::Detector detector;
  for (double snr : {7.0, 12.0, 17.0}) {
    const auto authentic =
        collect_defense_samples(Link(authentic_at(snr)), frames, 15, detector, rng);
    const auto emulated =
        collect_defense_samples(Link(emulated_at(snr)), frames, 15, detector, rng);
    ASSERT_GT(authentic.frames_used, 0u);
    ASSERT_GT(emulated.frames_used, 0u);
    EXPECT_LT(authentic.max_distance(), emulated.min_distance())
        << "snr=" << snr;
  }
}

TEST(DefenseIntegrationTest, CalibratedThresholdClassifiesHeldOutFrames) {
  // The paper's procedure: calibrate on the first 50 frames, test on the
  // rest (Sec. VII-B). Scaled down: 15 train + 15 test.
  dsp::Rng rng(204);
  const auto frames = workload();
  defense::Detector detector;
  const Link authentic(authentic_at(12.0));
  const Link emulated(emulated_at(12.0));
  const auto train_auth = collect_defense_samples(authentic, frames, 15, detector, rng);
  const auto train_att = collect_defense_samples(emulated, frames, 15, detector, rng);
  const double threshold = defense::Detector::calibrate_threshold(
      train_auth.distances, train_att.distances);

  defense::DetectorConfig tuned;
  tuned.threshold = threshold;
  defense::Detector tester(tuned);
  const auto test_auth = collect_defense_samples(authentic, frames, 15, tester, rng);
  const auto test_att = collect_defense_samples(emulated, frames, 15, tester, rng);
  for (double d : test_auth.distances) EXPECT_LT(d, threshold);
  for (double d : test_att.distances) EXPECT_GE(d, threshold);
}

TEST(DefenseIntegrationTest, MagnitudeModeSurvivesTheRealEnvironment) {
  // Table V setting: fading + CFO + random phase; |C40| keeps the classes
  // separated on average at attack-effective distances.
  dsp::Rng rng(205);
  const auto frames = workload();
  defense::DetectorConfig config;
  config.c40_mode = defense::C40Mode::magnitude;
  defense::Detector detector(config);
  for (double distance : {2.0, 4.0}) {
    LinkConfig authentic;
    authentic.environment = channel::Environment::real_world(distance);
    LinkConfig emulated = authentic;
    emulated.kind = LinkKind::emulated;
    const auto auth =
        collect_defense_samples(Link(authentic), frames, 12, detector, rng);
    const auto att =
        collect_defense_samples(Link(emulated), frames, 12, detector, rng);
    EXPECT_LT(auth.mean_distance() * 2.0, att.mean_distance())
        << "distance=" << distance;
  }
}

TEST(Fig14IntegrationTest, ReceiverOrderingMatchesThePaper) {
  // Fig. 14: at 6-7 m the USRP receiver loses the emulated frames while the
  // commodity receiver still decodes everything.
  dsp::Rng rng(206);
  const auto frames = workload();
  LinkConfig usrp_attack;
  usrp_attack.kind = LinkKind::emulated;
  usrp_attack.environment = channel::Environment::real_world(7.0);
  usrp_attack.profile = zigbee::ReceiverProfile::usrp();
  LinkConfig commodity_attack = usrp_attack;
  commodity_attack.profile = zigbee::ReceiverProfile::cc26x2r1();
  const double usrp_per =
      run_frames(Link(usrp_attack), frames, 25, rng).packet_error_rate();
  const double commodity_per =
      run_frames(Link(commodity_attack), frames, 25, rng).packet_error_rate();
  EXPECT_GT(usrp_per, 0.5);
  EXPECT_LT(commodity_per, 0.15);
}

TEST(LinkTest, CleanWaveformIsUnitPowerForBothKinds) {
  const auto frames = workload();
  for (LinkKind kind : {LinkKind::authentic, LinkKind::emulated}) {
    LinkConfig config;
    config.kind = kind;
    const cvec wave = Link(config).clean_waveform(frames[0]);
    EXPECT_NEAR(dsp::average_power(wave), 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace ctc::sim
