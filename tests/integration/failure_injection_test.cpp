// Failure injection: malformed inputs, degenerate channels and corrupted
// waveforms must produce flagged failures or contract errors — never crashes
// or silent wrong answers.
#include <gtest/gtest.h>

#include "attack/emulator.h"
#include "defense/detector.h"
#include "dsp/require.h"
#include "sim/defense_run.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "sim/table.h"
#include "zigbee/app.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace ctc {
namespace {

TEST(FailureInjectionTest, ReceiverSurvivesAllZeroInput) {
  const cvec zeros(5000, cplx{0.0, 0.0});
  const auto result = zigbee::Receiver().receive(zeros);
  EXPECT_FALSE(result.frame_ok());
}

TEST(FailureInjectionTest, ReceiverSurvivesDcOnlyInput) {
  const cvec dc(5000, cplx{1.0, 0.0});
  const auto result = zigbee::Receiver().receive(dc);
  EXPECT_FALSE(result.frame_ok());
}

TEST(FailureInjectionTest, ReceiverSurvivesSaturatedInput) {
  dsp::Rng rng(210);
  cvec loud(5000);
  for (auto& x : loud) x = 1e6 * rng.complex_gaussian(1.0);
  EXPECT_FALSE(zigbee::Receiver().receive(loud).frame_ok());
}

TEST(FailureInjectionTest, CorruptedPhrLengthFieldIsHandled) {
  // Destroy the PHR region: the receiver must fail at the PHR stage
  // rather than read a bogus length.
  zigbee::Transmitter tx;
  cvec wave = tx.transmit_frame(zigbee::make_text_frame(0, 0));
  dsp::Rng rng(211);
  const std::size_t phr_start = 10 * 32 * 2;  // after SHR
  for (std::size_t i = phr_start; i < phr_start + 128; ++i) {
    wave[i] = rng.complex_gaussian(1.0);
  }
  const auto result = zigbee::Receiver().receive(wave);
  EXPECT_TRUE(result.shr_ok);
  // Either the PHR fails outright, or a wrong length fails downstream.
  EXPECT_FALSE(result.frame_ok());
}

TEST(FailureInjectionTest, MidFrameDropoutFailsCrcNotCrash) {
  zigbee::Transmitter tx;
  cvec wave = tx.transmit_frame(zigbee::make_text_frame(0, 0));
  // Zero out a chunk of PSDU.
  for (std::size_t i = 2000; i < 2300 && i < wave.size(); ++i) wave[i] = {0.0, 0.0};
  const auto result = zigbee::Receiver().receive(wave);
  EXPECT_FALSE(result.frame_ok());
}

TEST(FailureInjectionTest, EmulatorHandlesShortOddLengthInput) {
  attack::WaveformEmulator emulator;
  dsp::Rng rng(212);
  cvec tiny(33);
  for (auto& x : tiny) x = rng.complex_gaussian(1.0);
  const auto result = emulator.emulate(tiny);
  EXPECT_EQ(result.emulated_4mhz.size(), tiny.size());
  EXPECT_FALSE(result.symbol_grids.empty());
}

TEST(FailureInjectionTest, EmulatorOnPureNoiseStillProducesLegalStructure) {
  attack::WaveformEmulator emulator;
  dsp::Rng rng(213);
  cvec noise(800);
  for (auto& x : noise) x = rng.complex_gaussian(1.0);
  const auto result = emulator.emulate(noise);
  // The output still consists of valid CP-prefixed WiFi symbols.
  const cvec& wifi = result.wifi_waveform_20mhz;
  for (std::size_t start = 0; start + 80 <= wifi.size(); start += 80) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_NEAR(std::abs(wifi[start + i] - wifi[start + 64 + i]), 0.0, 1e-12);
    }
  }
}

TEST(FailureInjectionTest, DetectorRejectsTinySamples) {
  defense::Detector detector;
  EXPECT_THROW(detector.classify(rvec{1.0, -1.0}), ContractError);
}

TEST(FailureInjectionTest, DetectorHandlesConstantChips) {
  // All-identical chips: C21 > 0 so cumulants are defined; must classify
  // (as attack: a constant is nothing like QPSK) without crashing.
  defense::Detector detector;
  const rvec constant(256, 1.0);
  const auto verdict = detector.classify(constant);
  EXPECT_TRUE(verdict.is_attack);
}

TEST(FailureInjectionTest, DetectorThrowsOnAllZeroChips) {
  defense::Detector detector;
  const rvec zeros(256, 0.0);
  EXPECT_THROW(detector.classify(zeros), ContractError);  // zero power
}

TEST(FailureInjectionTest, StatsRequireTraffic) {
  sim::LinkStats stats;
  EXPECT_THROW(stats.packet_error_rate(), ContractError);
  EXPECT_THROW(stats.symbol_error_rate(), ContractError);
}

TEST(FailureInjectionTest, DefenseSamplesRequireFrames) {
  sim::DefenseSamples samples;
  EXPECT_THROW(samples.mean_distance(), ContractError);
  EXPECT_THROW(samples.max_distance(), ContractError);
}

TEST(FailureInjectionTest, RunFramesRequiresWorkload) {
  dsp::Rng rng(214);
  sim::LinkConfig config;
  const sim::Link link(config);
  EXPECT_THROW(sim::run_frames(link, {}, 5, rng), ContractError);
}

TEST(FailureInjectionTest, TableRejectsMalformedRows) {
  sim::Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), ContractError);
  EXPECT_THROW(sim::Table({}), ContractError);
}

TEST(FailureInjectionTest, DeepFadeFramesAreCountedNotCrashed) {
  // Rayleigh fading with no LoS at long distance: many frames die; the
  // harness accounts for every one.
  dsp::Rng rng(215);
  sim::LinkConfig config;
  config.environment = channel::Environment::real_world(8.0);
  config.environment.rician_k_factor = 0.0;  // pure Rayleigh
  const auto frames = zigbee::make_text_workload(5);
  const auto stats = sim::run_frames(sim::Link(config), frames, 20, rng);
  EXPECT_EQ(stats.frames_sent, 20u);
  EXPECT_LE(stats.frames_ok, 20u);
}

}  // namespace
}  // namespace ctc
