// Unit tests for the sim layer itself: metrics arithmetic, table rendering,
// link determinism and defense-run bookkeeping.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/defense_run.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "sim/table.h"
#include "zigbee/app.h"

namespace ctc::sim {
namespace {

TEST(LinkStatsTest, RatesComputeFromCounters) {
  LinkStats stats;
  FrameObservation good;
  good.success = true;
  good.symbols_sent = 10;
  good.symbol_errors = 0;
  FrameObservation bad;
  bad.success = false;
  bad.symbols_sent = 10;
  bad.symbol_errors = 4;
  bad.rx.hamming_distances = {3, 3, 7};
  stats.add(good);
  stats.add(bad);
  EXPECT_EQ(stats.frames_sent, 2u);
  EXPECT_EQ(stats.frames_ok, 1u);
  EXPECT_DOUBLE_EQ(stats.packet_error_rate(), 0.5);
  EXPECT_DOUBLE_EQ(stats.success_rate(), 0.5);
  EXPECT_DOUBLE_EQ(stats.symbol_error_rate(), 0.2);
  EXPECT_EQ(stats.hamming_histogram.at(3), 2u);
  EXPECT_EQ(stats.hamming_histogram.at(7), 1u);
}

TEST(TableTest, RendersAlignedMarkdown) {
  Table table({"a", "long header"});
  table.add_row({"xx", "1"});
  std::ostringstream out;
  table.print(out);
  const std::string expected =
      "| a  | long header |\n"
      "|----|-------------|\n"
      "| xx | 1           |\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(TableTest, NumberFormattingHelpers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::percent(0.423), "42.3%");
  EXPECT_EQ(Table::percent(1.0, 0), "100%");
}

TEST(LinkTest, SendIsDeterministicGivenSeed) {
  LinkConfig config;
  config.environment = channel::Environment::awgn(8.0);
  const Link link(config);
  const auto frame = zigbee::make_text_frame(9, 9);
  dsp::Rng rng_a(77);
  dsp::Rng rng_b(77);
  const auto a = link.send(frame, rng_a);
  const auto b = link.send(frame, rng_b);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
  ASSERT_EQ(a.rx.freq_chips.size(), b.rx.freq_chips.size());
  for (std::size_t i = 0; i < a.rx.freq_chips.size(); ++i) {
    EXPECT_EQ(a.rx.freq_chips[i], b.rx.freq_chips[i]);
  }
}

TEST(LinkTest, SensitivityGainRaisesEffectiveSnr) {
  // Same noisy channel: the CC26x2R1's +6 dB bonus must help at an SNR
  // where the baseline profile fails.
  dsp::Rng rng_a(78);
  dsp::Rng rng_b(78);
  const auto frames = zigbee::make_text_workload(5);
  LinkConfig weak;
  weak.environment = channel::Environment::awgn(-1.0);
  weak.profile = zigbee::ReceiverProfile::usrp();
  LinkConfig boosted = weak;
  boosted.profile.sensitivity_gain_db = 10.0;
  const auto weak_stats = run_frames(Link(weak), frames, 15, rng_a);
  const auto boosted_stats = run_frames(Link(boosted), frames, 15, rng_b);
  EXPECT_GT(boosted_stats.success_rate(), weak_stats.success_rate());
}

TEST(DefenseRunTest, SkipsFramesWithoutChips) {
  dsp::Rng rng(79);
  LinkConfig config;
  config.environment = channel::Environment::awgn(-20.0);  // nothing decodes
  const auto frames = zigbee::make_text_workload(3);
  defense::Detector detector;
  const auto samples =
      collect_defense_samples(Link(config), frames, 5, detector, rng);
  EXPECT_EQ(samples.frames_used, 0u);
  EXPECT_EQ(samples.frames_skipped, 5u);
  EXPECT_TRUE(samples.distances.empty());
}

TEST(DefenseRunTest, AggregatesMatchCollectedValues) {
  dsp::Rng rng(80);
  LinkConfig config;
  config.environment = channel::Environment::awgn(15.0);
  const auto frames = zigbee::make_text_workload(4);
  defense::Detector detector;
  const auto samples =
      collect_defense_samples(Link(config), frames, 8, detector, rng);
  ASSERT_EQ(samples.frames_used, 8u);
  ASSERT_EQ(samples.distances.size(), 8u);
  ASSERT_EQ(samples.c40.size(), 8u);
  ASSERT_EQ(samples.c42.size(), 8u);
  double total = 0.0;
  double low = 1e300;
  double high = -1e300;
  for (double d : samples.distances) {
    total += d;
    low = std::min(low, d);
    high = std::max(high, d);
  }
  EXPECT_DOUBLE_EQ(samples.mean_distance(), total / 8.0);
  EXPECT_DOUBLE_EQ(samples.min_distance(), low);
  EXPECT_DOUBLE_EQ(samples.max_distance(), high);
}

TEST(DefenseRunTest, TapSelectionChangesTheFeatures) {
  dsp::Rng rng_a(81);
  dsp::Rng rng_b(81);
  LinkConfig config;
  config.kind = LinkKind::emulated;
  config.environment = channel::Environment::awgn(15.0);
  const auto frames = zigbee::make_text_workload(3);
  defense::Detector detector;
  const Link link(config);
  const auto disc = collect_defense_samples(link, frames, 3, detector, rng_a,
                                            DefenseTap::discriminator);
  const auto coh = collect_defense_samples(link, frames, 3, detector, rng_b,
                                           DefenseTap::coherent);
  ASSERT_FALSE(disc.distances.empty());
  ASSERT_FALSE(coh.distances.empty());
  // The discriminator tap sees far more distortion on the attack link.
  EXPECT_GT(disc.mean_distance(), 3.0 * coh.mean_distance());
}

}  // namespace
}  // namespace ctc::sim
