// Tests for the coexistence extension (background WiFi interference) and
// the full-RF attack path through carrier allocation.
#include <gtest/gtest.h>

#include "defense/detector.h"
#include "dsp/stats.h"
#include "sim/interference.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "zigbee/app.h"
#include "zigbee/receiver.h"

namespace ctc::sim {
namespace {

TEST(InterferenceTest, PowerMatchesRequestedSir) {
  dsp::Rng rng(300);
  zigbee::Transmitter tx;
  const cvec signal = tx.transmit_frame(zigbee::make_text_frame(0, 0));
  WifiInterferenceConfig config;
  config.sir_db = 10.0;
  config.duty_cycle = 1.0;  // always on, so the power measurement is exact
  const cvec polluted = add_wifi_interference(signal, config, rng);
  cvec interference(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    interference[i] = polluted[i] - signal[i];
  }
  const double sir = dsp::average_power(signal) / dsp::average_power(interference);
  EXPECT_NEAR(dsp::to_db(sir), 10.0, 1.5);
}

TEST(InterferenceTest, ZeroDutyCycleIsTransparent) {
  dsp::Rng rng(301);
  zigbee::Transmitter tx;
  const cvec signal = tx.transmit_frame(zigbee::make_text_frame(0, 0));
  WifiInterferenceConfig config;
  config.duty_cycle = 0.0;
  const cvec untouched = add_wifi_interference(signal, config, rng);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    EXPECT_EQ(untouched[i], signal[i]);
  }
}

TEST(InterferenceTest, MildInterferenceDoesNotBreakDecoding) {
  dsp::Rng rng(302);
  zigbee::Transmitter tx;
  const zigbee::MacFrame frame = zigbee::make_text_frame(3, 3);
  const cvec signal = tx.transmit_frame(frame);
  WifiInterferenceConfig config;
  config.sir_db = 15.0;
  int decoded = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const cvec polluted = add_wifi_interference(signal, config, rng);
    if (zigbee::Receiver().receive(polluted).frame_ok()) ++decoded;
  }
  EXPECT_EQ(decoded, 10);  // DSSS absorbs 15 dB SIR easily
}

TEST(InterferenceTest, SevereInterferenceBreaksDecoding) {
  dsp::Rng rng(303);
  zigbee::Transmitter tx;
  const cvec signal = tx.transmit_frame(zigbee::make_text_frame(3, 3));
  WifiInterferenceConfig config;
  config.sir_db = -10.0;
  config.duty_cycle = 1.0;
  int decoded = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const cvec polluted = add_wifi_interference(signal, config, rng);
    if (zigbee::Receiver().receive(polluted).frame_ok()) ++decoded;
  }
  EXPECT_LT(decoded, 3);
}

TEST(RfPathLinkTest, AttackThroughCarrierAllocationStillControls) {
  dsp::Rng rng(304);
  LinkConfig config;
  config.kind = LinkKind::emulated;
  config.attack_via_rf = true;
  config.environment = channel::Environment::awgn(17.0);
  const auto frames = zigbee::make_text_workload(5);
  const LinkStats stats = run_frames(Link(config), frames, 10, rng);
  EXPECT_GE(stats.success_rate(), 0.9);
}

TEST(RfPathLinkTest, RfAndBasebandPathsAgreeClosely) {
  // The carrier-allocation + mixing path is mathematically equivalent to
  // the common-baseband shortcut (the per-block phase ramps cancel); the
  // only difference is the front-end filter. NMSE between them is tiny.
  LinkConfig baseband;
  baseband.kind = LinkKind::emulated;
  LinkConfig rf = baseband;
  rf.attack_via_rf = true;
  const auto frame = zigbee::make_text_frame(7, 7);
  const cvec a = Link(baseband).clean_waveform(frame);
  const cvec b = Link(rf).clean_waveform(frame);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_LT(dsp::nmse(a, b), 0.01);
}

TEST(RfPathLinkTest, DefenseStillCatchesTheRfAttack) {
  dsp::Rng rng(305);
  LinkConfig config;
  config.kind = LinkKind::emulated;
  config.attack_via_rf = true;
  config.environment = channel::Environment::awgn(17.0);
  const Link link(config);
  const auto observation = link.send(zigbee::make_text_frame(1, 1), rng);
  ASSERT_GE(observation.rx.freq_chips.size(), 8u);
  defense::Detector detector;
  EXPECT_GT(detector.classify(observation.rx.freq_chips).distance_sq, 0.2);
}

}  // namespace
}  // namespace ctc::sim
