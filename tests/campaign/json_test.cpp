#include "campaign/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

namespace ctc::campaign {
namespace {

TEST(CampaignJsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-7").as_int(), -7);
  EXPECT_TRUE(Json::parse("42").is_integer());
  EXPECT_FALSE(Json::parse("42.0").is_integer());
  EXPECT_DOUBLE_EQ(Json::parse("42.5").as_number(), 42.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(CampaignJsonTest, IntegerAndDoubleAreDistinctButBothNumbers) {
  const Json i = Json::parse("3");
  const Json d = Json::parse("3.5");
  EXPECT_TRUE(i.is_number());
  EXPECT_TRUE(d.is_number());
  EXPECT_TRUE(i.is_integer());
  EXPECT_FALSE(d.is_integer());
  EXPECT_DOUBLE_EQ(i.as_number(), 3.0);
}

TEST(CampaignJsonTest, ObjectsPreserveInsertionOrder) {
  const Json json = Json::parse(R"({"z":1,"a":2,"m":3})");
  EXPECT_EQ(json.dump(), R"({"z":1,"a":2,"m":3})");
}

TEST(CampaignJsonTest, SetReplacesInPlaceAndAppendsAtEnd) {
  Json json = Json::object();
  json.set("a", Json(1));
  json.set("b", Json(2));
  json.set("a", Json(9));  // replace keeps position
  json.set("c", Json(3));
  EXPECT_EQ(json.dump(), R"({"a":9,"b":2,"c":3})");
}

TEST(CampaignJsonTest, RejectsDuplicateKeys) {
  EXPECT_THROW(Json::parse(R"({"a":1,"a":2})"), JsonError);
}

TEST(CampaignJsonTest, RejectsTrailingGarbageAndMalformedInput) {
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":}"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("'single'"), JsonError);
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
}

TEST(CampaignJsonTest, ParsesStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(Json::parse(R"("\n\t")").as_string(), "\n\t");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(Json::parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
  EXPECT_THROW(Json::parse(R"("\ud83d")"), JsonError);  // lone high surrogate
}

TEST(CampaignJsonTest, DoublesSurviveDumpParseDumpByteForByte) {
  // The checkpoint contract: a %.17g double round-trips exactly, so results
  // loaded from a manifest reduce bit-identically to fresh ones.
  for (double value : {1.0 / 3.0, 0.1, 1e-300, 3.141592653589793,
                       123456789.123456789, 5e-324}) {
    char expected[40];
    std::snprintf(expected, sizeof expected, "%.17g", value);
    const Json parsed = Json::parse(expected);
    EXPECT_DOUBLE_EQ(parsed.as_number(), value);
    const Json reparsed = Json::parse(parsed.dump());
    EXPECT_EQ(reparsed.dump(), parsed.dump());
  }
}

TEST(CampaignJsonTest, NestedDocumentRoundTrips) {
  const std::string text =
      R"({"name":"x","grid":[{"axis":"snr_db","list":[7,9.5,-1]}],"ok":true,"none":null})";
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(CampaignJsonTest, Uint64AboveInt64MaxWidensToDouble) {
  const Json big(std::uint64_t{1} << 63);
  EXPECT_FALSE(big.is_integer());
  EXPECT_DOUBLE_EQ(big.as_number(), 9223372036854775808.0);
  const Json small(std::uint64_t{20190707});
  EXPECT_TRUE(small.is_integer());
  EXPECT_EQ(small.as_uint(), 20190707u);
}

TEST(CampaignJsonTest, RejectsNonFiniteNumbers) {
  // Out-of-range literals would become +/-inf via strtod; parse must reject
  // them instead of producing a value dump() cannot round-trip.
  EXPECT_THROW(Json::parse("1e400"), JsonError);
  EXPECT_THROW(Json::parse("-1e400"), JsonError);
  EXPECT_THROW(Json::parse(R"({"x":[1,2,1e999]})"), JsonError);
  // Tiny literals underflow toward zero, which is fine.
  EXPECT_DOUBLE_EQ(Json::parse("1e-400").as_number(), 0.0);

  EXPECT_THROW(Json(std::numeric_limits<double>::infinity()).dump(), JsonError);
  EXPECT_THROW(Json(-std::numeric_limits<double>::infinity()).dump(), JsonError);
  EXPECT_THROW(Json(std::numeric_limits<double>::quiet_NaN()).dump(), JsonError);
  Json array = Json::array();
  array.push_back(Json(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_THROW(array.dump(), JsonError);
}

TEST(CampaignJsonTest, AccessorsThrowOnTypeMismatch) {
  const Json json = Json::parse("[1]");
  EXPECT_THROW(json.as_object(), JsonError);
  EXPECT_THROW(json.as_string(), JsonError);
  EXPECT_THROW(json.at("x"), JsonError);
  EXPECT_THROW(Json::parse("\"s\"").as_number(), JsonError);
  EXPECT_THROW(Json::parse("1.5").as_int(), JsonError);
}

TEST(CampaignJsonTest, FindAndAtOnObjects) {
  const Json json = Json::parse(R"({"a":1,"b":"x"})");
  ASSERT_NE(json.find("a"), nullptr);
  EXPECT_EQ(json.find("a")->as_int(), 1);
  EXPECT_EQ(json.find("missing"), nullptr);
  EXPECT_EQ(json.at("b").as_string(), "x");
  EXPECT_THROW(json.at("missing"), JsonError);
}

}  // namespace
}  // namespace ctc::campaign
