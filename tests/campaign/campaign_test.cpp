#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "campaign/executor.h"
#include "campaign/manifest.h"
#include "campaign/plan.h"
#include "campaign/spec.h"

namespace ctc::campaign {
namespace {

std::string tiny_attack_spec_text() {
  return R"({"schema":1,"name":"tiny","experiment":"attack_success",)"
         R"("workload_frames":4,"trials":2,"authentic_trials":2,)"
         R"("grid":[{"axis":"snr_db","list":[7,17]}]})";
}

std::string tiny_threshold_spec_text(bool fixed_threshold) {
  std::string text =
      R"({"schema":1,"name":"tinyq","experiment":"threshold_sweep",)"
      R"("workload_frames":4,"train_trials":2,"test_trials":2,)";
  if (fixed_threshold) text += R"("threshold":6.0,)";
  text += R"("grid":[{"axis":"snr_db","list":[17]}]})";
  return text;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / ("campaign_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CampaignPlanTest, AttackSuccessUnitsAreGloballySequential) {
  const CampaignSpec spec = CampaignSpec::parse(tiny_attack_spec_text());
  const CampaignPlan plan = plan_campaign(spec);
  ASSERT_EQ(plan.stages.size(), 1u);
  ASSERT_EQ(plan.units_total, 4u);
  std::size_t expected = 0;
  for (const WorkUnit& unit : plan.stages[0]) {
    EXPECT_EQ(unit.index, expected);
    EXPECT_EQ(unit.run_index, expected);  // index == run family by design
    EXPECT_EQ(unit.role, expected % 2 == 0 ? "attack" : "authentic");
    EXPECT_EQ(unit.trials, 2u);
    ++expected;
  }
  EXPECT_EQ(plan.stages[0][0].id, "u0000.attack.snr_db=7");
  EXPECT_EQ(plan.stages[0][3].id, "u0003.authentic.snr_db=17");
}

TEST(CampaignPlanTest, PlanningIsDeterministic) {
  const CampaignSpec spec = CampaignSpec::parse(tiny_attack_spec_text());
  const CampaignPlan a = plan_campaign(spec);
  const CampaignPlan b = plan_campaign(spec);
  ASSERT_EQ(a.units_total, b.units_total);
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    for (std::size_t u = 0; u < a.stages[s].size(); ++u) {
      EXPECT_EQ(a.stages[s][u].id, b.stages[s][u].id);
      EXPECT_EQ(a.stages[s][u].run_index, b.stages[s][u].run_index);
    }
  }
}

TEST(CampaignPlanTest, ThresholdSweepHasTrainingStageUnlessFixed) {
  const CampaignSpec calibrated =
      CampaignSpec::parse(tiny_threshold_spec_text(false));
  const CampaignPlan two_stage = plan_campaign(calibrated);
  ASSERT_EQ(two_stage.stages.size(), 2u);
  EXPECT_EQ(two_stage.units_total, 4u);
  // Run indices stay sequential across the stage boundary.
  EXPECT_EQ(two_stage.stages[1][0].run_index, two_stage.stages[0].size());

  const CampaignSpec fixed = CampaignSpec::parse(tiny_threshold_spec_text(true));
  const CampaignPlan one_stage = plan_campaign(fixed);
  ASSERT_EQ(one_stage.stages.size(), 1u);
  EXPECT_EQ(one_stage.units_total, 2u);
}

TEST(CampaignPlanTest, RejectsUnknownExperimentAndAxes) {
  CampaignSpec unknown = CampaignSpec::parse(tiny_attack_spec_text());
  unknown.experiment = "no_such_experiment";
  EXPECT_THROW(plan_campaign(unknown), SpecError);

  EXPECT_THROW(
      plan_campaign(CampaignSpec::parse(
          R"({"schema":1,"name":"t","experiment":"attack_success",)"
          R"("grid":[{"axis":"bogus_axis","list":[1]}]})")),
      SpecError);
  // threshold_sweep only understands snr_db.
  EXPECT_THROW(
      plan_campaign(CampaignSpec::parse(
          R"({"schema":1,"name":"t","experiment":"threshold_sweep",)"
          R"("grid":[{"axis":"trials","list":[2]}]})")),
      SpecError);
}

TEST(CampaignManifestTest, RoundTripsThroughJsonAndDisk) {
  Manifest manifest;
  manifest.campaign = "tiny";
  manifest.fingerprint = "deadbeefdeadbeef";
  manifest.units_total = 4;
  manifest.completed.push_back(
      CompletedUnit{"u0000.attack", 0, Json::parse(R"({"successes":1})")});
  const Manifest reparsed = Manifest::from_json(manifest.to_json());
  EXPECT_EQ(reparsed.campaign, "tiny");
  EXPECT_EQ(reparsed.fingerprint, "deadbeefdeadbeef");
  EXPECT_EQ(reparsed.units_total, 4u);
  ASSERT_EQ(reparsed.completed.size(), 1u);
  EXPECT_EQ(reparsed.completed[0].id, "u0000.attack");
  EXPECT_EQ(reparsed.completed[0].result.dump(), R"({"successes":1})");

  const std::string dir = fresh_dir("manifest");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/manifest.json";
  EXPECT_FALSE(load_manifest(path).has_value());
  save_manifest(manifest, path);
  const auto loaded = load_manifest(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->to_json().dump(), manifest.to_json().dump());

  write_file_atomic(path, "not json");
  EXPECT_THROW(load_manifest(path), ManifestError);
}

TEST(CampaignManifestTest, CheckpointMergesConcurrentWriters) {
  const std::string dir = fresh_dir("merge");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/manifest.json";

  // Two writers with disjoint completed sets, as two shard processes that
  // each loaded an empty manifest would hold them.
  Manifest a;
  a.campaign = "tiny";
  a.fingerprint = "feedfacefeedface";
  a.units_total = 4;
  a.completed.push_back(CompletedUnit{"u0", 0, Json::parse(R"({"s":1})")});
  Manifest b = a;
  b.completed.clear();
  b.completed.push_back(CompletedUnit{"u1", 1, Json::parse(R"({"s":2})")});

  const Manifest after_a = checkpoint_manifest(a, path);
  EXPECT_EQ(after_a.completed.size(), 1u);
  // b's checkpoint must not lose a's unit, and must hand b the merged view.
  const Manifest after_b = checkpoint_manifest(b, path);
  ASSERT_EQ(after_b.completed.size(), 2u);
  EXPECT_EQ(after_b.completed[0].index, 0u);
  EXPECT_EQ(after_b.completed[1].index, 1u);
  const auto on_disk = load_manifest(path);
  ASSERT_TRUE(on_disk.has_value());
  EXPECT_EQ(on_disk->completed.size(), 2u);

  // Re-checkpointing a stale view (a never saw b's unit) stays lossless.
  const Manifest after_a2 = checkpoint_manifest(a, path);
  EXPECT_EQ(after_a2.completed.size(), 2u);

  // A writer for a different spec is rejected instead of merged.
  Manifest other = a;
  other.fingerprint = "0000000000000000";
  EXPECT_THROW(checkpoint_manifest(other, path), ManifestError);
}

TEST(CampaignManifestTest, FingerprintTracksSpecContent) {
  const CampaignSpec spec = CampaignSpec::parse(tiny_attack_spec_text());
  CampaignSpec modified = spec;
  modified.trials = 3;
  EXPECT_EQ(spec_fingerprint(spec), spec_fingerprint(spec));
  EXPECT_NE(spec_fingerprint(spec), spec_fingerprint(modified));
}

TEST(CampaignExecutorTest, ThreadAndShardPartitionsAreBitIdentical) {
  const CampaignSpec spec = CampaignSpec::parse(tiny_attack_spec_text());

  ExecutorOptions reference;
  reference.out_dir = fresh_dir("ref");
  reference.threads = 1;
  reference.quiet = true;
  const CampaignOutcome ref = run_campaign(spec, reference);
  ASSERT_TRUE(ref.complete);
  EXPECT_EQ(ref.units_total, 4u);
  EXPECT_EQ(ref.units_run, 4u);
  EXPECT_FALSE(ref.report_json.empty());

  ExecutorOptions threaded;
  threaded.out_dir = fresh_dir("threaded");
  threaded.threads = 4;
  threaded.quiet = true;
  EXPECT_EQ(run_campaign(spec, threaded).report_json, ref.report_json);

  // Two shards into one directory: shard 1 first (out of order), then 0.
  ExecutorOptions sharded;
  sharded.out_dir = fresh_dir("sharded");
  sharded.shards = 2;
  sharded.quiet = true;
  sharded.shard = 1;
  const CampaignOutcome partial = run_campaign(spec, sharded);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.units_run, 2u);
  sharded.shard = 0;
  const CampaignOutcome merged = run_campaign(spec, sharded);
  ASSERT_TRUE(merged.complete);
  EXPECT_EQ(merged.report_json, ref.report_json);
}

TEST(CampaignExecutorTest, ConcurrentShardsShareOneOutputDirectory) {
  const CampaignSpec spec = CampaignSpec::parse(tiny_attack_spec_text());

  ExecutorOptions reference;
  reference.out_dir = fresh_dir("conc_ref");
  reference.threads = 1;
  reference.quiet = true;
  const CampaignOutcome ref = run_campaign(spec, reference);
  ASSERT_TRUE(ref.complete);

  // Both shards run simultaneously into one directory; the flock'd
  // load-merge-save checkpoint must not lose either side's units,
  // whichever interleaving the scheduler picks.
  const std::string out = fresh_dir("conc");
  auto run_shard = [&](std::size_t shard) {
    ExecutorOptions options;
    options.out_dir = out;
    options.shards = 2;
    options.shard = shard;
    options.threads = 1;
    options.quiet = true;
    return run_campaign(spec, options);
  };
  CampaignOutcome outcomes[2];
  std::thread worker([&] { outcomes[1] = run_shard(1); });
  outcomes[0] = run_shard(0);
  worker.join();

  // Depending on timing either shard (or neither) observes the full result
  // set and completes; a final merge pass always does, without re-running
  // any unit.
  ExecutorOptions merge_options;
  merge_options.out_dir = out;
  merge_options.quiet = true;
  const CampaignOutcome merged = run_campaign(spec, merge_options);
  ASSERT_TRUE(merged.complete);
  EXPECT_EQ(merged.units_run, 0u);
  EXPECT_EQ(outcomes[0].units_run + outcomes[1].units_run, 4u);
  EXPECT_EQ(merged.report_json, ref.report_json);
}

TEST(CampaignExecutorTest, KillAndResumeReproducesUninterruptedRun) {
  const CampaignSpec spec = CampaignSpec::parse(tiny_attack_spec_text());

  ExecutorOptions reference;
  reference.out_dir = fresh_dir("resume_ref");
  reference.quiet = true;
  const CampaignOutcome ref = run_campaign(spec, reference);
  ASSERT_TRUE(ref.complete);

  ExecutorOptions interrupted;
  interrupted.out_dir = fresh_dir("resume");
  interrupted.max_units = 1;  // checkpoint once, then "die"
  interrupted.quiet = true;
  const CampaignOutcome first = run_campaign(spec, interrupted);
  EXPECT_FALSE(first.complete);
  EXPECT_EQ(first.units_run, 1u);
  EXPECT_EQ(first.units_done, 1u);

  interrupted.max_units = 0;
  interrupted.threads = 4;  // resume may even use a different thread count
  const CampaignOutcome resumed = run_campaign(spec, interrupted);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.units_run, 3u);
  EXPECT_EQ(resumed.report_json, ref.report_json);

  // Artifacts landed and match the outcome.
  const std::string report = slurp(interrupted.out_dir + "/report.json");
  EXPECT_EQ(report, ref.report_json + "\n");
  const std::string csv = slurp(interrupted.out_dir + "/cells.csv");
  EXPECT_NE(csv.find("index,stage,id,run_index,role,trials,snr_db"),
            std::string::npos);
  EXPECT_NE(csv.find("u0000.attack.snr_db=7"), std::string::npos);
}

TEST(CampaignExecutorTest, RejectsManifestFromDifferentSpec) {
  const CampaignSpec spec = CampaignSpec::parse(tiny_attack_spec_text());
  ExecutorOptions options;
  options.out_dir = fresh_dir("mismatch");
  options.max_units = 1;
  options.quiet = true;
  run_campaign(spec, options);

  CampaignSpec modified = spec;
  modified.trials = 3;
  options.max_units = 0;
  EXPECT_THROW(run_campaign(modified, options), CampaignError);
}

TEST(CampaignExecutorTest, ValidatesOptions) {
  const CampaignSpec spec = CampaignSpec::parse(tiny_attack_spec_text());
  ExecutorOptions no_dir;
  EXPECT_THROW(run_campaign(spec, no_dir), CampaignError);
  ExecutorOptions bad_shards;
  bad_shards.out_dir = fresh_dir("badshards");
  bad_shards.shards = 0;
  EXPECT_THROW(run_campaign(spec, bad_shards), CampaignError);
  ExecutorOptions bad_shard;
  bad_shard.out_dir = fresh_dir("badshard");
  bad_shard.shards = 2;
  bad_shard.shard = 2;
  EXPECT_THROW(run_campaign(spec, bad_shard), CampaignError);
}

TEST(CampaignExecutorTest, ThresholdSweepCalibratesAcrossTheStageBarrier) {
  const CampaignSpec spec = CampaignSpec::parse(tiny_threshold_spec_text(false));
  ExecutorOptions reference;
  reference.out_dir = fresh_dir("q_ref");
  reference.quiet = true;
  const CampaignOutcome ref = run_campaign(spec, reference);
  ASSERT_TRUE(ref.complete);
  EXPECT_NE(ref.report_json.find("\"threshold\":"), std::string::npos);

  // Interrupt inside the training stage; the resumed run must re-derive the
  // identical calibrated threshold from the manifest.
  ExecutorOptions interrupted;
  interrupted.out_dir = fresh_dir("q_resume");
  interrupted.max_units = 1;
  interrupted.quiet = true;
  EXPECT_FALSE(run_campaign(spec, interrupted).complete);
  interrupted.max_units = 0;
  const CampaignOutcome resumed = run_campaign(spec, interrupted);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.report_json, ref.report_json);
}

TEST(CampaignExecutorTest, FixedThresholdSkipsTraining) {
  const CampaignSpec spec = CampaignSpec::parse(tiny_threshold_spec_text(true));
  ExecutorOptions options;
  options.out_dir = fresh_dir("q_fixed");
  options.quiet = true;
  const CampaignOutcome outcome = run_campaign(spec, options);
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.units_total, 2u);
  EXPECT_NE(outcome.report_json.find("\"threshold\":6"), std::string::npos);
}

}  // namespace
}  // namespace ctc::campaign
