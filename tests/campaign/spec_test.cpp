#include "campaign/spec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ctc::campaign {
namespace {

std::string minimal_spec(const std::string& extra = "") {
  return R"({"schema":1,"name":"t","experiment":"attack_success")" + extra + "}";
}

TEST(CampaignSpecTest, ParsesMinimalSpecWithDefaults) {
  const CampaignSpec spec = CampaignSpec::parse(minimal_spec());
  EXPECT_EQ(spec.name, "t");
  EXPECT_EQ(spec.experiment, "attack_success");
  EXPECT_EQ(spec.seed, 20190707u);
  EXPECT_EQ(spec.trials, 1000u);
  EXPECT_EQ(spec.authentic_trials, 200u);
  EXPECT_EQ(spec.train_trials, 50u);
  EXPECT_EQ(spec.test_trials, 100u);
  EXPECT_EQ(spec.workload_frames, 100u);
  EXPECT_FALSE(spec.threshold.has_value());
  EXPECT_FALSE(spec.alpha.has_value());
  EXPECT_TRUE(spec.grid.empty());
}

TEST(CampaignSpecTest, RejectsWrongSchemaVersion) {
  EXPECT_THROW(
      CampaignSpec::parse(R"({"schema":2,"name":"t","experiment":"e"})"),
      SpecError);
  EXPECT_THROW(CampaignSpec::parse(R"({"name":"t","experiment":"e"})"),
               SpecError);
  EXPECT_THROW(
      CampaignSpec::parse(R"({"schema":"1","name":"t","experiment":"e"})"),
      SpecError);
}

TEST(CampaignSpecTest, RejectsUnknownKeys) {
  EXPECT_THROW(CampaignSpec::parse(minimal_spec(R"(,"trails":5)")), SpecError);
  EXPECT_THROW(CampaignSpec::parse(minimal_spec(R"(,"snr":[1])")), SpecError);
}

TEST(CampaignSpecTest, RejectsBadFieldTypes) {
  EXPECT_THROW(CampaignSpec::parse(R"({"schema":1,"name":"","experiment":"e"})"),
               SpecError);
  EXPECT_THROW(CampaignSpec::parse(R"({"schema":1,"name":"t","experiment":3})"),
               SpecError);
  EXPECT_THROW(CampaignSpec::parse(minimal_spec(R"(,"trials":0)")), SpecError);
  EXPECT_THROW(CampaignSpec::parse(minimal_spec(R"(,"trials":2.5)")), SpecError);
  EXPECT_THROW(CampaignSpec::parse(minimal_spec(R"(,"seed":-1)")), SpecError);
  EXPECT_THROW(CampaignSpec::parse(minimal_spec(R"(,"threshold":0)")), SpecError);
}

TEST(CampaignSpecTest, RejectsDuplicateAxes) {
  EXPECT_THROW(
      CampaignSpec::parse(minimal_spec(
          R"(,"grid":[{"axis":"snr_db","list":[1]},{"axis":"snr_db","list":[2]}])")),
      SpecError);
}

TEST(CampaignSpecTest, RejectsEmptyOrAmbiguousAxisValues) {
  EXPECT_THROW(
      CampaignSpec::parse(minimal_spec(R"(,"grid":[{"axis":"a","list":[]}])")),
      SpecError);
  // Neither list nor range.
  EXPECT_THROW(CampaignSpec::parse(minimal_spec(R"(,"grid":[{"axis":"a"}])")),
               SpecError);
  // Both list and range.
  EXPECT_THROW(
      CampaignSpec::parse(minimal_spec(
          R"(,"grid":[{"axis":"a","list":[1],"range":{"start":0,"stop":1,"step":1}}])")),
      SpecError);
  // Non-numeric value.
  EXPECT_THROW(
      CampaignSpec::parse(minimal_spec(R"(,"grid":[{"axis":"a","list":["x"]}])")),
      SpecError);
}

TEST(CampaignSpecTest, EmptyGridExpandsToOneUnparameterizedCell) {
  const CampaignSpec spec = CampaignSpec::parse(minimal_spec());
  const auto cells = spec.cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].index, 0u);
  EXPECT_TRUE(cells[0].values.empty());
  EXPECT_EQ(cells[0].label(), "");
}

TEST(CampaignSpecTest, SingleValueAxisYieldsSingleCell) {
  const CampaignSpec spec =
      CampaignSpec::parse(minimal_spec(R"(,"grid":[{"axis":"snr_db","list":[7]}])"));
  const auto cells = spec.cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].label(), "snr_db=7");
}

TEST(CampaignSpecTest, CellsAreRowMajorFirstAxisOutermost) {
  const CampaignSpec spec = CampaignSpec::parse(minimal_spec(
      R"(,"grid":[{"axis":"a","list":[1,2]},{"axis":"b","list":[10,20,30]}])"));
  const auto cells = spec.cells();
  ASSERT_EQ(cells.size(), 6u);
  const std::vector<std::string> expected = {"a=1,b=10", "a=1,b=20", "a=1,b=30",
                                             "a=2,b=10", "a=2,b=20", "a=2,b=30"};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].label(), expected[i]);
  }
}

TEST(CampaignSpecTest, RangeExpandsInclusivelyPreservingIntegers) {
  const CampaignSpec spec = CampaignSpec::parse(minimal_spec(
      R"(,"grid":[{"axis":"snr_db","range":{"start":7,"stop":17,"step":2}}])"));
  ASSERT_EQ(spec.grid.size(), 1u);
  const auto& values = spec.grid[0].values;
  ASSERT_EQ(values.size(), 6u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(values[i].is_integer());
    EXPECT_EQ(values[i].as_int(), 7 + static_cast<std::int64_t>(i) * 2);
  }
}

TEST(CampaignSpecTest, RangeEdgeCases) {
  // Single point: start == stop.
  auto single = CampaignSpec::parse(minimal_spec(
      R"(,"grid":[{"axis":"a","range":{"start":5,"stop":5,"step":1}}])"));
  ASSERT_EQ(single.grid[0].values.size(), 1u);
  EXPECT_EQ(single.grid[0].values[0].as_int(), 5);
  // Descending with negative step.
  auto down = CampaignSpec::parse(minimal_spec(
      R"(,"grid":[{"axis":"a","range":{"start":3,"stop":1,"step":-1}}])"));
  ASSERT_EQ(down.grid[0].values.size(), 3u);
  EXPECT_EQ(down.grid[0].values[0].as_int(), 3);
  EXPECT_EQ(down.grid[0].values[2].as_int(), 1);
  // Fractional step yields doubles.
  auto frac = CampaignSpec::parse(minimal_spec(
      R"(,"grid":[{"axis":"a","range":{"start":0,"stop":1,"step":0.5}}])"));
  ASSERT_EQ(frac.grid[0].values.size(), 3u);
  EXPECT_FALSE(frac.grid[0].values[1].is_integer());
  // Step that overshoots stop stays inclusive of start only.
  auto coarse = CampaignSpec::parse(minimal_spec(
      R"(,"grid":[{"axis":"a","range":{"start":0,"stop":5,"step":10}}])"));
  ASSERT_EQ(coarse.grid[0].values.size(), 1u);
  // Invalid ranges.
  EXPECT_THROW(CampaignSpec::parse(minimal_spec(
                   R"(,"grid":[{"axis":"a","range":{"start":0,"stop":1,"step":0}}])")),
               SpecError);
  EXPECT_THROW(CampaignSpec::parse(minimal_spec(
                   R"(,"grid":[{"axis":"a","range":{"start":0,"stop":1,"step":-1}}])")),
               SpecError);
  EXPECT_THROW(CampaignSpec::parse(minimal_spec(
                   R"(,"grid":[{"axis":"a","range":{"start":0,"stop":1}}])")),
               SpecError);
  EXPECT_THROW(
      CampaignSpec::parse(minimal_spec(
          R"(,"grid":[{"axis":"a","range":{"start":0,"stop":1000000,"step":1}}])")),
      SpecError);
}

TEST(CampaignSpecTest, ToJsonIsAFixedPointUnderTheRoundTrip) {
  const CampaignSpec spec = CampaignSpec::parse(minimal_spec(
      R"(,"trials":12,"threshold":6.5,"grid":[{"axis":"snr_db","range":{"start":7,"stop":11,"step":2}}])"));
  const Json canonical = spec.to_json();
  const CampaignSpec reparsed = CampaignSpec::from_json(canonical);
  EXPECT_EQ(reparsed.to_json().dump(), canonical.dump());
  // Ranges canonicalize to lists.
  EXPECT_NE(canonical.dump().find("\"list\":[7,9,11]"), std::string::npos);
  // Defaults are materialized.
  EXPECT_NE(canonical.dump().find("\"authentic_trials\":200"), std::string::npos);
}

TEST(CampaignSpecTest, CellAccessors) {
  const CampaignSpec spec = CampaignSpec::parse(minimal_spec(
      R"(,"grid":[{"axis":"snr_db","list":[7.5]},{"axis":"trials","list":[3]}])"));
  const auto cells = spec.cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_DOUBLE_EQ(cells[0].number_or("snr_db", 0.0), 7.5);
  EXPECT_DOUBLE_EQ(cells[0].number_or("absent", -1.0), -1.0);
  EXPECT_EQ(cells[0].uint_or("trials", 99), 3u);
  EXPECT_EQ(cells[0].uint_or("absent", 99), 99u);
  EXPECT_EQ(cells[0].find("absent"), nullptr);
  EXPECT_THROW(cells[0].uint_or("snr_db", 0), SpecError);  // non-integer axis
}

}  // namespace
}  // namespace ctc::campaign
