// Concurrency stress regressions for campaign::run_campaign (label: stress).
//
// Two executor instances share one --out directory in the same process —
// the in-process analogue of two shard processes launched against the same
// campaign (tools/smoke_campaign.sh covers the multi-process case). Under
// the `tsan` preset this puts the flock'd load-merge-save manifest
// checkpoint and the stage-barrier absorption of foreign units under
// ThreadSanitizer; in uninstrumented builds it is a fast functional
// regression for the zero-lost-units guarantee.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>

#include "campaign/executor.h"
#include "campaign/spec.h"

namespace ctc::campaign {
namespace {

std::string stress_spec_text() {
  return R"({"schema":1,"name":"stress","experiment":"attack_success",)"
         R"("workload_frames":4,"trials":2,"authentic_trials":2,)"
         R"("grid":[{"axis":"snr_db","list":[7,12,17]}]})";
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / ("exec_stress_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

CampaignOutcome run_quiet(const CampaignSpec& spec, const std::string& out,
                          std::size_t shards,
                          std::optional<std::size_t> shard) {
  ExecutorOptions options;
  options.out_dir = out;
  options.threads = 2;
  options.shards = shards;
  options.shard = shard;
  options.quiet = true;
  return run_campaign(spec, options);
}

// Repeated rounds of two concurrent shard executors into one directory:
// every round must converge to the serial reference report with no unit
// lost to a checkpoint interleaving.
TEST(ExecutorStress, ConcurrentShardsRepeatedRounds) {
  const CampaignSpec spec = CampaignSpec::parse(stress_spec_text());
  const CampaignOutcome ref =
      run_quiet(spec, fresh_dir("ref"), 1, std::nullopt);
  ASSERT_TRUE(ref.complete);

  for (int round = 0; round < 8; ++round) {
    const std::string out = fresh_dir("round" + std::to_string(round));
    CampaignOutcome outcomes[2];
    std::thread other([&] { outcomes[1] = run_quiet(spec, out, 2, 1); });
    outcomes[0] = run_quiet(spec, out, 2, 0);
    other.join();
    EXPECT_EQ(outcomes[0].units_run + outcomes[1].units_run, 6u);

    const CampaignOutcome merged = run_quiet(spec, out, 1, std::nullopt);
    ASSERT_TRUE(merged.complete);
    EXPECT_EQ(merged.units_run, 0u) << "merge pass re-ran a unit";
    EXPECT_EQ(merged.report_json, ref.report_json);
  }
}

// Two UNSHARDED executors race over the same unit list. Units get computed
// twice, but results are deterministic, disk entries win the merge, and the
// final report must still be byte-identical to the reference — the
// worst-case "operator launched the campaign twice" scenario.
TEST(ExecutorStress, DuplicateUnshardedExecutorsConverge) {
  const CampaignSpec spec = CampaignSpec::parse(stress_spec_text());
  const CampaignOutcome ref =
      run_quiet(spec, fresh_dir("dup_ref"), 1, std::nullopt);
  ASSERT_TRUE(ref.complete);

  for (int round = 0; round < 4; ++round) {
    const std::string out = fresh_dir("dup" + std::to_string(round));
    CampaignOutcome outcomes[2];
    std::thread other(
        [&] { outcomes[1] = run_quiet(spec, out, 1, std::nullopt); });
    outcomes[0] = run_quiet(spec, out, 1, std::nullopt);
    other.join();

    // At least one of the racers observes the full unit set and completes.
    EXPECT_TRUE(outcomes[0].complete || outcomes[1].complete);
    const CampaignOutcome merged = run_quiet(spec, out, 1, std::nullopt);
    ASSERT_TRUE(merged.complete);
    EXPECT_EQ(merged.report_json, ref.report_json);
  }
}

}  // namespace
}  // namespace ctc::campaign
