#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/environment.h"
#include "channel/fading.h"
#include "channel/impairments.h"
#include "channel/pathloss.h"
#include "dsp/require.h"
#include "dsp/stats.h"

namespace ctc::channel {
namespace {

cvec unit_signal(std::size_t n) { return cvec(n, cplx{1.0, 0.0}); }

TEST(AwgnTest, NoisePowerMatchesRequestedSnr) {
  dsp::Rng rng(31);
  const cvec x = unit_signal(20000);
  const cvec y = add_awgn(x, 10.0, rng);
  cvec noise(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) noise[i] = y[i] - x[i];
  EXPECT_NEAR(dsp::average_power(noise), 0.1, 0.01);
}

TEST(AwgnTest, ZeroVarianceIsTransparent) {
  dsp::Rng rng(32);
  const cvec x = unit_signal(10);
  const cvec y = add_noise_variance(x, 0.0, rng);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
  EXPECT_THROW(add_noise_variance(x, -0.1, rng), ContractError);
}

TEST(AwgnTest, PaperConventionSnrIsInverseVariance) {
  // Unit-power signal + noise variance 10^(-snr/10).
  dsp::Rng rng(33);
  const cvec x = unit_signal(50000);
  const cvec y = add_noise_variance(x, dsp::from_db(-7.0), rng);
  cvec noise(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) noise[i] = y[i] - x[i];
  EXPECT_NEAR(dsp::to_db(1.0 / dsp::average_power(noise)), 7.0, 0.3);
}

TEST(ImpairmentsTest, PhaseOffsetRotatesEverySample) {
  const cvec x = {{1.0, 0.0}, {0.0, 1.0}};
  const cvec y = apply_phase_offset(x, kPi / 2.0);
  EXPECT_NEAR(std::abs(y[0] - cplx(0.0, 1.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[1] - cplx(-1.0, 0.0)), 0.0, 1e-12);
}

TEST(ImpairmentsTest, CfoAccumulatesPhase) {
  const cvec x = unit_signal(5);
  const cvec y = apply_cfo(x, 1.0e6, 4.0e6);  // pi/2 per sample
  EXPECT_NEAR(std::abs(y[0] - cplx(1.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[1] - cplx(0.0, 1.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[2] - cplx(-1.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[4] - cplx(1.0, 0.0)), 0.0, 1e-9);
}

TEST(ImpairmentsTest, TimingOffsetInterpolatesLinearly) {
  const cvec x = {{0.0, 0.0}, {4.0, 0.0}, {8.0, 0.0}};
  const cvec y = apply_timing_offset(x, 0.25);
  EXPECT_NEAR(y[1].real(), 3.0, 1e-12);  // 0.75*4 + 0.25*0
  EXPECT_NEAR(y[2].real(), 7.0, 1e-12);
  EXPECT_THROW(apply_timing_offset(x, 1.0), ContractError);
  EXPECT_THROW(apply_timing_offset(x, -0.1), ContractError);
}

TEST(ImpairmentsTest, ZeroOffsetsAreIdentity) {
  const cvec x = {{1.0, 2.0}, {3.0, 4.0}};
  const cvec y = apply_timing_offset(x, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
  const cvec z = apply_gain(x, 1.0);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(z[i], x[i]);
}

TEST(PathLossTest, SnrFallsWithDistance) {
  PathLossModel model;
  EXPECT_DOUBLE_EQ(model.snr_db(1.0), model.snr_at_1m_db);
  EXPECT_GT(model.snr_db(2.0), model.snr_db(4.0));
  // 10 * n dB per decade.
  EXPECT_NEAR(model.snr_db(1.0) - model.snr_db(10.0), 10.0 * model.exponent, 1e-9);
  EXPECT_THROW(model.snr_db(0.0), ContractError);
}

TEST(PathLossTest, RssiFallsWithDistance) {
  PathLossModel model;
  EXPECT_DOUBLE_EQ(model.rssi_dbm(1.0), model.rssi_at_1m_dbm);
  EXPECT_GT(model.rssi_dbm(2.0), model.rssi_dbm(8.0));
}

TEST(FadingTest, RayleighTapUnitAveragePower) {
  dsp::Rng rng(34);
  double power = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) power += std::norm(rayleigh_tap(rng));
  EXPECT_NEAR(power / n, 1.0, 0.03);
}

TEST(FadingTest, RicianTapUnitPowerAndLosBias) {
  dsp::Rng rng(35);
  const double k = 8.0;
  double power = 0.0;
  cplx mean{0.0, 0.0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const cplx h = rician_tap(k, rng);
    power += std::norm(h);
    mean += h;
  }
  EXPECT_NEAR(power / n, 1.0, 0.03);
  EXPECT_NEAR((mean / static_cast<double>(n)).real(), std::sqrt(k / (k + 1.0)), 0.02);
  EXPECT_THROW(rician_tap(-1.0, rng), ContractError);
}

TEST(FadingTest, ZeroKFactorIsRayleigh) {
  dsp::Rng rng(36);
  cplx mean{0.0, 0.0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) mean += rician_tap(0.0, rng);
  EXPECT_NEAR(std::abs(mean) / n, 0.0, 0.03);
}

TEST(EnvironmentTest, AwgnFactoryUsesRequestedSnr) {
  const Environment env = Environment::awgn(12.5);
  EXPECT_DOUBLE_EQ(env.effective_snr_db(), 12.5);
}

TEST(EnvironmentTest, RealWorldUsesPathLoss) {
  const Environment env = Environment::real_world(4.0);
  PathLossModel model;
  EXPECT_DOUBLE_EQ(env.effective_snr_db(), model.snr_db(4.0));
}

TEST(EnvironmentTest, PropagationAddsCalibatedNoise) {
  dsp::Rng rng(37);
  Environment env = Environment::awgn(3.0);
  const cvec x = unit_signal(30000);
  const cvec y = env.propagate(x, rng);
  cvec noise(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) noise[i] = y[i] - x[i];
  EXPECT_NEAR(dsp::average_power(noise), dsp::from_db(-3.0), 0.02);
}

TEST(EnvironmentTest, RealWorldIsReproducibleGivenSeed) {
  const Environment env = Environment::real_world(3.0);
  const cvec x = unit_signal(100);
  dsp::Rng rng_a(5);
  dsp::Rng rng_b(5);
  const cvec a = env.propagate(x, rng_a);
  const cvec b = env.propagate(x, rng_b);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace ctc::channel
