#include <gtest/gtest.h>

#include "channel/pathloss.h"
#include "dsp/require.h"

namespace ctc::channel {
namespace {

TEST(LogDistanceTest, ReferencePointIsExact) {
  EXPECT_DOUBLE_EQ(log_distance_db(48.5, 5.0, 1.0), 48.5);
  EXPECT_DOUBLE_EQ(log_distance_db(-45.0, 5.0, 1.0), -45.0);
}

TEST(LogDistanceTest, TenfoldDistanceCostsTenNdB) {
  EXPECT_NEAR(log_distance_db(48.5, 5.0, 10.0), 48.5 - 50.0, 1e-12);
  EXPECT_NEAR(log_distance_db(0.0, 2.0, 100.0), -40.0, 1e-12);
}

TEST(LogDistanceTest, ForwardInverseRoundTrip) {
  for (double meters : {0.01, 0.5, 1.0, 3.7, 8.0, 120.0}) {
    const double value = log_distance_db(48.5, 5.0, meters);
    EXPECT_NEAR(log_distance_inverse_m(48.5, 5.0, value), meters,
                1e-9 * meters);
  }
  // And the other direction: value -> distance -> value.
  for (double value : {-90.0, -45.0, 0.0, 20.0}) {
    const double meters = log_distance_inverse_m(-45.0, 5.0, value);
    EXPECT_NEAR(log_distance_db(-45.0, 5.0, meters), value, 1e-9);
  }
}

TEST(LogDistanceTest, RejectsDegenerateArguments) {
  EXPECT_THROW(log_distance_db(0.0, 5.0, 0.0), ContractError);
  EXPECT_THROW(log_distance_db(0.0, 5.0, -1.0), ContractError);
  EXPECT_THROW(log_distance_inverse_m(0.0, 0.0, -10.0), ContractError);
}

TEST(PathLossModelTest, SnrAndRssiShareTheLogDistanceHelper) {
  const PathLossModel model;
  for (double meters : {1.0, 2.0, 4.0, 8.0}) {
    EXPECT_DOUBLE_EQ(model.snr_db(meters),
                     log_distance_db(model.snr_at_1m_db, model.exponent,
                                     meters));
    EXPECT_DOUBLE_EQ(model.rssi_dbm(meters),
                     log_distance_db(model.rssi_at_1m_dbm, model.exponent,
                                     meters));
  }
}

TEST(PathLossModelTest, DistanceForRssiInvertsTheForwardModel) {
  const PathLossModel model;
  for (double meters : {0.25, 1.0, 3.3, 8.0}) {
    EXPECT_NEAR(model.distance_for_rssi(model.rssi_dbm(meters)), meters,
                1e-9 * meters);
  }
}

}  // namespace
}  // namespace ctc::channel
