#include "channel/multipath.h"

#include <gtest/gtest.h>

#include "channel/environment.h"
#include "dsp/require.h"
#include "dsp/stats.h"

namespace ctc::channel {
namespace {

TEST(MultipathTest, TapsHaveUnitAveragePower) {
  dsp::Rng rng(220);
  MultipathProfile profile;
  double power = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const cvec taps = draw_multipath_taps(profile, rng);
    for (const cplx& tap : taps) power += std::norm(tap);
  }
  EXPECT_NEAR(power / trials, 1.0, 0.03);
}

TEST(MultipathTest, PowerDelayProfileDecays) {
  dsp::Rng rng(221);
  MultipathProfile profile;
  profile.num_taps = 5;
  rvec tap_power(profile.num_taps, 0.0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const cvec taps = draw_multipath_taps(profile, rng);
    for (std::size_t l = 0; l < taps.size(); ++l) tap_power[l] += std::norm(taps[l]);
  }
  for (std::size_t l = 1; l < tap_power.size(); ++l) {
    EXPECT_LT(tap_power[l], tap_power[l - 1]);
    // ~6 dB decay per tap.
    EXPECT_NEAR(tap_power[l] / tap_power[l - 1], 0.25, 0.08);
  }
}

TEST(MultipathTest, SingleTapIsFlatFading) {
  dsp::Rng rng(222);
  MultipathProfile profile;
  profile.num_taps = 1;
  const cvec taps = draw_multipath_taps(profile, rng);
  ASSERT_EQ(taps.size(), 1u);
  const cvec x = {{1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}};
  const cvec y = apply_multipath(x, taps);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - taps[0] * x[i]), 0.0, 1e-12);
  }
}

TEST(MultipathTest, ConvolutionIsCausalAndSameLength) {
  const cvec taps = {{1.0, 0.0}, {0.5, 0.0}};
  const cvec x = {{1.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}};
  const cvec y = apply_multipath(x, taps);
  ASSERT_EQ(y.size(), x.size());
  EXPECT_NEAR(std::abs(y[0] - cplx(1.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[1] - cplx(0.5, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[2]), 0.0, 1e-12);
}

TEST(MultipathTest, RejectsBadProfileAndEmptyTaps) {
  dsp::Rng rng(223);
  MultipathProfile profile;
  profile.num_taps = 0;
  EXPECT_THROW(draw_multipath_taps(profile, rng), ContractError);
  EXPECT_THROW(apply_multipath(cvec(4), cvec{}), ContractError);
}

TEST(MultipathTest, EnvironmentPrefersMultipathOverFlatFading) {
  dsp::Rng rng_a(224);
  dsp::Rng rng_b(224);
  Environment env = Environment::awgn(60.0);
  env.rician_k_factor = 8.0;
  Environment env_mp = env;
  env_mp.multipath = MultipathProfile{};
  const cvec x(64, cplx{1.0, 0.0});
  const cvec flat = env.propagate(x, rng_a);
  const cvec selective = env_mp.propagate(x, rng_b);
  // Flat fading scales the steady-state DC signal uniformly; multipath has a
  // transient over the first taps.
  bool differs = false;
  for (std::size_t i = 0; i < 4; ++i) {
    if (std::abs(flat[i] - selective[i]) > 1e-6) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(MultipathTest, DestroysCyclicPrefixRepetition) {
  // The honest version of the paper's Sec. VI-A1 argument: delay spread
  // decorrelates the CP from the symbol tail. Build an 80-sample periodic
  // structure and measure head/tail correlation before and after multipath.
  dsp::Rng rng(225);
  cvec wave;
  for (int block = 0; block < 50; ++block) {
    cvec body(64);
    for (auto& v : body) v = rng.complex_gaussian(1.0);
    for (std::size_t i = 0; i < 16; ++i) wave.push_back(body[48 + i]);  // CP
    wave.insert(wave.end(), body.begin(), body.end());
  }
  auto cp_corr = [](const cvec& w) {
    cplx acc{0.0, 0.0};
    double energy = 0.0;
    for (std::size_t b = 0; b + 80 <= w.size(); b += 80) {
      for (std::size_t i = 0; i < 16; ++i) {
        acc += w[b + i] * std::conj(w[b + 64 + i]);
        energy += 0.5 * (std::norm(w[b + i]) + std::norm(w[b + 64 + i]));
      }
    }
    return std::abs(acc) / energy;
  };
  EXPECT_GT(cp_corr(wave), 0.99);
  MultipathProfile profile;
  profile.num_taps = 12;          // strong delay spread at 20 MHz
  profile.decay_per_tap_db = 1.0;
  profile.k_factor = 0.0;
  const cvec faded = apply_multipath(wave, draw_multipath_taps(profile, rng));
  // Repetition survives multipath (linear convolution preserves periodic
  // structure within a block) — but equalizer-less *energy* dispersion and
  // ISI across block boundaries reduce the normalized correlation.
  EXPECT_LT(cp_corr(faded), cp_corr(wave));
}

}  // namespace
}  // namespace ctc::channel
