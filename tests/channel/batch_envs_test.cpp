#include <gtest/gtest.h>

#include <vector>

#include "channel/environment.h"
#include "dsp/batch.h"
#include "dsp/require.h"
#include "dsp/rng.h"

namespace ctc::channel {
namespace {

cvec random_signal(std::size_t n, std::uint64_t seed) {
  dsp::Rng rng(seed);
  cvec signal(n);
  for (auto& sample : signal) {
    sample = cplx{rng.gaussian(), rng.gaussian()};
  }
  return signal;
}

// One heterogeneous sensor field's worth of environments: different SNRs,
// one Rician-faded row, one row with CFO + random phase, one with a timing
// offset. Exercises every per-row branch of the multi-env sweep.
std::vector<Environment> mixed_environments() {
  std::vector<Environment> envs;
  Environment quiet = Environment::awgn(30.0);
  envs.push_back(quiet);
  Environment faded = Environment::awgn(12.0);
  faded.rician_k_factor = 4.0;
  envs.push_back(faded);
  Environment offset = Environment::awgn(20.0);
  offset.cfo_hz = 40e3;
  offset.random_phase = true;
  envs.push_back(offset);
  Environment late = Environment::awgn(8.0);
  late.timing_offset = 0.35;
  envs.push_back(late);
  return envs;
}

TEST(PropagateBatchMultiTest, EachRowMatchesSerialPropagateBitForBit) {
  const cvec signal = random_signal(600, 77);
  const std::vector<Environment> envs = mixed_environments();

  std::vector<dsp::Rng> batch_rngs, serial_rngs;
  for (std::size_t r = 0; r < envs.size(); ++r) {
    batch_rngs.push_back(dsp::Rng::for_stream(91, r));
    serial_rngs.push_back(dsp::Rng::for_stream(91, r));
  }

  dsp::BatchBuffer batch;
  propagate_batch_multi(batch, signal, envs, std::span<dsp::Rng>(batch_rngs));
  ASSERT_EQ(batch.rows(), envs.size());
  ASSERT_EQ(batch.stride(), signal.size());

  for (std::size_t r = 0; r < envs.size(); ++r) {
    const cvec serial = envs[r].propagate(signal, serial_rngs[r]);
    const auto row = batch.row(r);
    ASSERT_EQ(row.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(row[i], serial[i]) << "row " << r << " sample " << i;
    }
  }
}

TEST(PropagateBatchMultiTest, MatchesSingleEnvBatchWhenEnvsAreIdentical) {
  const cvec signal = random_signal(400, 5);
  Environment env = Environment::awgn(15.0);
  env.rician_k_factor = 2.0;
  const std::vector<Environment> envs(3, env);

  std::vector<dsp::Rng> multi_rngs, single_rngs;
  for (std::size_t r = 0; r < envs.size(); ++r) {
    multi_rngs.push_back(dsp::Rng::for_stream(13, r));
    single_rngs.push_back(dsp::Rng::for_stream(13, r));
  }
  dsp::BatchBuffer multi, single;
  propagate_batch_multi(multi, signal, envs, std::span<dsp::Rng>(multi_rngs));
  env.propagate_batch(single, signal, std::span<dsp::Rng>(single_rngs));
  for (std::size_t r = 0; r < envs.size(); ++r) {
    const auto a = multi.row(r);
    const auto b = single.row(r);
    for (std::size_t i = 0; i < signal.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "row " << r << " sample " << i;
    }
  }
}

TEST(PropagateBatchMultiTest, RequiresOneRngPerEnvironment) {
  const cvec signal = random_signal(32, 1);
  const std::vector<Environment> envs(2, Environment::awgn(10.0));
  std::vector<dsp::Rng> rngs;
  rngs.push_back(dsp::Rng::for_stream(1, 0));
  dsp::BatchBuffer batch;
  EXPECT_THROW(
      propagate_batch_multi(batch, signal, envs, std::span<dsp::Rng>(rngs)),
      ContractError);
}

}  // namespace
}  // namespace ctc::channel
