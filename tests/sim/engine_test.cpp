// TrialEngine contract tests: the aggregate of a run is a pure function of
// (seed, trial count, trial body) — the thread count must never show
// through. These are the determinism guarantees the bench CLI layer and the
// CI threads=1 vs threads=4 JSON diff rely on.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "dsp/require.h"
#include "sim/defense_run.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "sim/thread_pool.h"
#include "zigbee/app.h"

namespace ctc::sim {
namespace {

struct SumAggregator {
  std::vector<std::uint64_t> values;
  void add(std::uint64_t value) { values.push_back(value); }
};

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, ResolveThreadsPrefersExplicitRequest) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
}

TEST(TrialEngineTest, ReducesInTrialOrderRegardlessOfThreads) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    TrialEngine engine({1234, threads});
    const auto agg = engine.run<SumAggregator>(
        100, [](std::size_t index, dsp::Rng&) {
          return static_cast<std::uint64_t>(index);
        });
    ASSERT_EQ(agg.values.size(), 100u);
    for (std::size_t i = 0; i < agg.values.size(); ++i) {
      EXPECT_EQ(agg.values[i], i);
    }
  }
}

TEST(TrialEngineTest, StreamsDependOnlyOnSeedAndIndex) {
  TrialEngine one({99, 1});
  TrialEngine eight({99, 8});
  const auto draws1 = one.map(64, [](std::size_t, dsp::Rng& rng) {
    return rng.next_u64();
  });
  const auto draws8 = eight.map(64, [](std::size_t, dsp::Rng& rng) {
    return rng.next_u64();
  });
  EXPECT_EQ(draws1, draws8);
}

TEST(TrialEngineTest, ConsecutiveRunsUseFreshStreams) {
  TrialEngine engine({77, 2});
  const auto first = engine.map(16, [](std::size_t, dsp::Rng& rng) {
    return rng.next_u64();
  });
  const auto second = engine.map(16, [](std::size_t, dsp::Rng& rng) {
    return rng.next_u64();
  });
  EXPECT_NE(first, second);

  // ...but a fresh engine with the same seed replays the same run sequence.
  TrialEngine replay({77, 5});
  EXPECT_EQ(replay.map(16, [](std::size_t, dsp::Rng& rng) {
    return rng.next_u64();
  }), first);
}

TEST(TrialEngineTest, NamedStreamIsDeterministic) {
  TrialEngine a({5, 1});
  TrialEngine b({5, 4});
  dsp::Rng ra = a.stream(3);
  dsp::Rng rb = b.stream(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ra.next_u64(), rb.next_u64());
}

TEST(TrialEngineTest, SeekRunReplaysAnyRunFamily) {
  // The campaign executor's contract: seeking to run index N reproduces the
  // exact streams a sequential engine would have used for its (N+1)-th run.
  TrialEngine sequential({77, 2});
  std::vector<std::vector<std::uint64_t>> runs;
  for (int run = 0; run < 3; ++run) {
    runs.push_back(sequential.map(
        8, [](std::size_t, dsp::Rng& rng) { return rng.next_u64(); }));
  }

  TrialEngine seeker({77, 4});
  EXPECT_EQ(seeker.next_run_index(), 0u);
  for (std::uint64_t run : {2, 0, 1}) {  // out of order on purpose
    seeker.seek_run(run);
    EXPECT_EQ(seeker.next_run_index(), run);
    EXPECT_EQ(seeker.map(8, [](std::size_t, dsp::Rng& rng) {
      return rng.next_u64();
    }), runs[run]);
    EXPECT_EQ(seeker.next_run_index(), run + 1);
  }

  EXPECT_THROW(seeker.seek_run(TrialEngine::kMaxRunIndex + 1), ContractError);
}

TEST(TrialEngineTest, RejectsOversizedRuns) {
  TrialEngine engine({1, 1});
  EXPECT_THROW(
      engine.run<SumAggregator>(
          static_cast<std::size_t>(TrialEngine::kMaxTrialsPerRun) + 1,
          [](std::size_t, dsp::Rng&) { return std::uint64_t{0}; }),
      ContractError);
}

TEST(TrialEngineTest, FrameStatsBitIdenticalAcrossThreadCounts) {
  const auto frames = zigbee::make_text_workload(4);
  LinkConfig config;
  config.environment = channel::Environment::awgn(2.0);  // noisy: rng matters
  const Link link(config);

  TrialEngine serial({20190707, 1});
  TrialEngine parallel({20190707, 8});
  const FrameStats a = run_frames(link, frames, 12, serial);
  const FrameStats b = run_frames(link, frames, 12, parallel);

  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.frames_ok, b.frames_ok);
  EXPECT_EQ(a.symbols_sent, b.symbols_sent);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
  EXPECT_EQ(a.hamming_histogram, b.hamming_histogram);
}

TEST(TrialEngineTest, DefenseSamplesBitIdenticalAcrossThreadCounts) {
  const auto frames = zigbee::make_text_workload(4);
  LinkConfig config;
  config.kind = LinkKind::emulated;
  config.environment = channel::Environment::awgn(8.0);
  const Link link(config);
  const defense::Detector detector;

  TrialEngine serial({20190707, 1});
  TrialEngine parallel({20190707, 8});
  const DefenseSamples a = collect_defense_samples(link, frames, 10, detector, serial);
  const DefenseSamples b = collect_defense_samples(link, frames, 10, detector, parallel);

  EXPECT_EQ(a.frames_used, b.frames_used);
  EXPECT_EQ(a.frames_skipped, b.frames_skipped);
  EXPECT_EQ(a.distances, b.distances);  // element-wise double equality
  EXPECT_EQ(a.c40, b.c40);
  EXPECT_EQ(a.c42, b.c42);
}

}  // namespace
}  // namespace ctc::sim
