// Equivalence suite for sim::Link's clean-waveform memoization.
//
// The cache stores the output of a pure function (frame bytes -> synthesis
// chain), so the contract is exact: with memoization on, clean_waveform and
// send must be bit-identical to the uncached reference path given the same
// RNG stream. The telemetry tests pin the hit/miss accounting that
// PERFORMANCE.md documents.
#include "sim/link.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dsp/rng.h"
#include "sim/telemetry.h"
#include "zigbee/app.h"

namespace ctc::sim {
namespace {

LinkConfig link_config(LinkKind kind, bool memoize) {
  LinkConfig config;
  config.kind = kind;
  config.environment = channel::Environment::awgn(8.0);
  config.memoize_waveforms = memoize;
  return config;
}

void expect_identical_waveforms(const cvec& a, const cvec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "sample " << i;
  }
}

void expect_identical_observations(const FrameObservation& a,
                                   const FrameObservation& b) {
  EXPECT_EQ(a.symbols_sent, b.symbols_sent);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
  EXPECT_EQ(a.payload_match, b.payload_match);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.rx.shr_ok, b.rx.shr_ok);
  EXPECT_EQ(a.rx.phr_ok, b.rx.phr_ok);
  EXPECT_EQ(a.rx.psdu_complete, b.rx.psdu_complete);
  EXPECT_EQ(a.rx.psdu, b.rx.psdu);
  EXPECT_EQ(a.rx.soft_chips, b.rx.soft_chips);
  EXPECT_EQ(a.rx.hard_chips, b.rx.hard_chips);
  EXPECT_EQ(a.rx.channel_estimate, b.rx.channel_estimate);
  EXPECT_EQ(a.rx.snr_estimate_db, b.rx.snr_estimate_db);
}

TEST(LinkCacheTest, CleanWaveformIsBitIdenticalToUncached) {
  for (LinkKind kind : {LinkKind::authentic, LinkKind::emulated}) {
    SCOPED_TRACE(kind == LinkKind::authentic ? "authentic" : "emulated");
    const Link cached(link_config(kind, true));
    const Link uncached(link_config(kind, false));
    for (unsigned index : {0u, 1u, 42u}) {
      const auto frame = zigbee::make_text_frame(index, index & 0xFF);
      // Twice through the cached link: first call fills, second call hits.
      // Both must equal the reference synthesis exactly.
      const cvec fill = cached.clean_waveform(frame);
      const cvec hit = cached.clean_waveform(frame);
      const cvec reference = uncached.clean_waveform(frame);
      expect_identical_waveforms(fill, reference);
      expect_identical_waveforms(hit, reference);
    }
  }
}

TEST(LinkCacheTest, SendIsBitIdenticalToUncached) {
  // Same frame, same per-call RNG stream: the cached send path (memoized
  // clean waveform + hoisted PSDU + propagate_into) must reproduce the
  // uncached observation field for field. Noise draws consume the identical
  // RNG sequence because the clean waveform lengths match exactly.
  const Link cached(link_config(LinkKind::authentic, true));
  const Link uncached(link_config(LinkKind::authentic, false));
  for (unsigned index : {0u, 7u}) {
    const auto frame = zigbee::make_text_frame(index, 1);
    for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
      SCOPED_TRACE("frame " + std::to_string(index) + " seed " +
                   std::to_string(seed));
      dsp::Rng rng_cached(seed);
      dsp::Rng rng_uncached(seed);
      expect_identical_observations(cached.send(frame, rng_cached),
                                    uncached.send(frame, rng_uncached));
    }
  }
}

TEST(LinkCacheTest, EmulatedSendIsBitIdenticalToUncached) {
  const Link cached(link_config(LinkKind::emulated, true));
  const Link uncached(link_config(LinkKind::emulated, false));
  const auto frame = zigbee::make_text_frame(3, 3);
  dsp::Rng rng_cached(99);
  dsp::Rng rng_uncached(99);
  expect_identical_observations(cached.send(frame, rng_cached),
                                uncached.send(frame, rng_uncached));
}

/// Enables telemetry for the test body; restores off + clean on exit.
class LinkCacheTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(true);
    telemetry::reset();
  }
  void TearDown() override {
    telemetry::reset();
    telemetry::set_enabled(false);
  }

  static std::uint64_t counter(const std::vector<telemetry::MetricValue>& all,
                               const std::string& name) {
    for (const auto& metric : all) {
      if (metric.stage == "link" && metric.name == name) {
        return static_cast<std::uint64_t>(metric.cell.sum);
      }
    }
    return 0;
  }
};

TEST_F(LinkCacheTelemetryTest, PrimeFillsOncePerFrameThenSendsHit) {
  const Link link(link_config(LinkKind::authentic, true));
  const auto frames = zigbee::make_text_workload(4);

  link.prime(frames);
  // Priming again is a no-op: every frame is already resident.
  link.prime(frames);

  dsp::Rng rng(5);
  for (const auto& frame : frames) (void)link.send(frame, rng);

  const auto metrics = telemetry::collect();
  EXPECT_EQ(counter(metrics, "waveform_cache_misses"), frames.size());
  // 4 from the second prime + 4 from the sends.
  EXPECT_EQ(counter(metrics, "waveform_cache_hits"), 2 * frames.size());
}

TEST_F(LinkCacheTelemetryTest, MemoizationOffRecordsNoCacheTraffic) {
  const Link link(link_config(LinkKind::authentic, false));
  const auto frame = zigbee::make_text_frame(0, 0);
  dsp::Rng rng(5);
  (void)link.send(frame, rng);
  (void)link.clean_waveform(frame);
  const auto metrics = telemetry::collect();
  EXPECT_EQ(counter(metrics, "waveform_cache_misses"), 0u);
  EXPECT_EQ(counter(metrics, "waveform_cache_hits"), 0u);
}

}  // namespace
}  // namespace ctc::sim
