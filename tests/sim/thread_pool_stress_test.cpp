// Concurrency stress regressions for sim::ThreadPool (label: stress).
//
// These tests exist for the `tsan` preset: they hammer the pool's
// construct/submit/shutdown hand-off paths so ThreadSanitizer sees every
// synchronization edge under churn, not just the happy path the unit tests
// exercise. They also run (fast) in uninstrumented builds as plain
// functional regressions.

#include "sim/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ctc::sim {
namespace {

// Construct, run one job, destroy — repeatedly. Exercises the worker
// startup/shutdown edges (a worker may still be parking in wait() when stop
// is raised) far more often than any real bench does.
TEST(ThreadPoolStress, SubmitShutdownChurn) {
  for (int round = 0; round < 40; ++round) {
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(97, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 97ull * 98ull / 2ull);
  }
}

// Destroy pools that never received work: workers go straight from startup
// to the stop signal, the tightest version of the shutdown race.
TEST(ThreadPoolStress, ImmediateShutdownWithoutWork) {
  for (int round = 0; round < 200; ++round) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
  }
}

// One pool, many back-to-back jobs of varying width. The generation counter
// must publish each job's closure and count to workers that just finished
// the previous job; writes land in disjoint slots so any cross-trial
// visibility bug shows up as a TSan race rather than a flaky sum.
TEST(ThreadPoolStress, BackToBackJobsReuseWorkers) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> slots;
  for (int round = 0; round < 300; ++round) {
    const std::size_t count = 1 + static_cast<std::size_t>(round % 64);
    slots.assign(count, 0);
    pool.parallel_for(count, [&](std::size_t i) { slots[i] = i + 1; });
    std::uint64_t sum = 0;
    for (std::uint64_t value : slots) sum += value;
    EXPECT_EQ(sum, static_cast<std::uint64_t>(count) * (count + 1) / 2);
  }
}

// A throwing job must drain cleanly (first exception wins, counter
// fast-forwards) and leave the pool reusable; repeat so the error hand-off
// races against normal completion in both orders.
TEST(ThreadPoolStress, ExceptionHandoffLeavesPoolUsable) {
  ThreadPool pool(4);
  for (int round = 0; round < 60; ++round) {
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](std::size_t i) {
                                     if (i == 13) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
                 std::runtime_error);
    std::atomic<int> completed{0};
    pool.parallel_for(16, [&](std::size_t) {
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(completed.load(), 16);
  }
}

// Nested pools: a job running on one pool drives its own inner pool, the
// shape an engine-inside-engine workload produces. Ensures the two pools'
// synchronization never entangles.
TEST(ThreadPoolStress, NestedPoolsDoNotInterfere) {
  ThreadPool outer(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<std::uint64_t> total{0};
    outer.parallel_for(6, [&](std::size_t) {
      ThreadPool inner(2);
      inner.parallel_for(32, [&](std::size_t i) {
        total.fetch_add(i, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(total.load(), 6ull * (31ull * 32ull / 2ull));
  }
}

}  // namespace
}  // namespace ctc::sim
