// Tests for the sim::telemetry observability layer: deterministic merge
// across thread counts, runtime gating, bucket arithmetic, and the JSON
// emitter. Each test enables the layer explicitly and restores the global
// off state so telemetry never leaks into unrelated tests.
#include "sim/telemetry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "dsp/rng.h"
#include "sim/engine.h"

namespace ctc::sim::telemetry {
namespace {

/// Enables telemetry for the test body; restores off + clean on exit.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    reset();
    set_enabled(false);
  }
};

struct SumAggregator {
  double total = 0.0;
  void add(double value) { total += value; }
};

/// A trial that records every metric kind with values that depend on the
/// trial's RNG stream, so accumulation order differences would show up in
/// the double-valued sums.
double instrumented_trial(std::size_t /*index*/, dsp::Rng& rng) {
  const double x = rng.uniform();
  CTC_TELEM_COUNT("test", "work_items", 1 + (rng.next_u64() % 3));
  CTC_TELEM_GAUGE("test", "uniform", x);
  CTC_TELEM_HISTO("test", "scaled", static_cast<std::uint64_t>(x * 1000.0));
  CTC_TELEM_TIMER("test", "trial_span");
  return x;
}

/// Runs `trials` instrumented trials at `threads` and returns the collected
/// metrics (telemetry reset before the run so runs are comparable).
std::vector<MetricValue> run_and_collect(std::size_t threads,
                                         std::size_t trials) {
  reset();
  TrialEngine engine({/*seed=*/20190707, threads});
  engine.run<SumAggregator>(trials, instrumented_trial);
  return collect();
}

bool is_timer(const MetricValue& metric) { return metric.kind == Kind::timer; }

TEST_F(TelemetryTest, MergeIsBitIdenticalAcrossThreadCounts) {
  const auto serial = run_and_collect(1, 500);
  const auto wide = run_and_collect(8, 500);

  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].stage + "/" + serial[i].name);
    EXPECT_EQ(serial[i].stage, wide[i].stage);
    EXPECT_EQ(serial[i].name, wide[i].name);
    EXPECT_EQ(serial[i].kind, wide[i].kind);
    if (is_timer(serial[i])) continue;  // wall clock: count only
    EXPECT_EQ(serial[i].cell.count, wide[i].cell.count);
    // Bit-identical, not approximately equal: the engine commits per-trial
    // snapshots in trial-index order, so the fp accumulation order is fixed.
    EXPECT_EQ(serial[i].cell.sum, wide[i].cell.sum);
    EXPECT_EQ(serial[i].cell.min, wide[i].cell.min);
    EXPECT_EQ(serial[i].cell.max, wide[i].cell.max);
    EXPECT_EQ(serial[i].cell.buckets, wide[i].cell.buckets);
  }

  // The JSON emitter (timers excluded) must agree byte-for-byte too.
  EXPECT_EQ(to_json(serial, /*include_timers=*/false),
            to_json(wide, /*include_timers=*/false));
}

TEST_F(TelemetryTest, NothingIsRecordedWhileDisabled) {
  set_enabled(false);
  CTC_TELEM_COUNT("test", "dropped", 7);
  CTC_TELEM_GAUGE("test", "dropped_gauge", 1.5);
  { CTC_TELEM_TIMER("test", "dropped_span"); }
  set_enabled(true);
  EXPECT_TRUE(collect().empty());
}

TEST_F(TelemetryTest, CollectSortsByStageThenName) {
  CTC_TELEM_COUNT("zeta", "a", 1);
  CTC_TELEM_COUNT("alpha", "b", 1);
  CTC_TELEM_COUNT("alpha", "a", 1);
  const auto metrics = collect();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].stage, "alpha");
  EXPECT_EQ(metrics[0].name, "a");
  EXPECT_EQ(metrics[1].stage, "alpha");
  EXPECT_EQ(metrics[1].name, "b");
  EXPECT_EQ(metrics[2].stage, "zeta");
  EXPECT_EQ(metrics[2].name, "a");
}

TEST_F(TelemetryTest, GaugeTracksSumMinMax) {
  CTC_TELEM_GAUGE("test", "g", 2.0);
  CTC_TELEM_GAUGE("test", "g", -1.0);
  CTC_TELEM_GAUGE("test", "g", 5.0);
  const auto metrics = collect();
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].cell.count, 3u);
  EXPECT_DOUBLE_EQ(metrics[0].cell.sum, 6.0);
  EXPECT_DOUBLE_EQ(metrics[0].cell.min, -1.0);
  EXPECT_DOUBLE_EQ(metrics[0].cell.max, 5.0);
}

TEST_F(TelemetryTest, RegistrationIsIdempotentByStageAndName) {
  const MetricId a = register_metric(Kind::counter, "stage", "metric");
  const MetricId b = register_metric(Kind::counter, "stage", "metric");
  const MetricId c = register_metric(Kind::counter, "stage", "other");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TelemetryBucketsTest, Log2BucketEdges) {
  EXPECT_EQ(bucket_index(0), 0u);
  EXPECT_EQ(bucket_index(1), 1u);
  EXPECT_EQ(bucket_index(2), 2u);
  EXPECT_EQ(bucket_index(3), 2u);
  EXPECT_EQ(bucket_index(4), 3u);
  EXPECT_EQ(bucket_index(7), 3u);
  EXPECT_EQ(bucket_index(8), 4u);
  // Values past the table clamp into the last bucket.
  EXPECT_EQ(bucket_index(~std::uint64_t{0}), kHistoBuckets - 1);

  EXPECT_EQ(bucket_lower_bound(0), 0u);
  EXPECT_EQ(bucket_lower_bound(1), 1u);
  EXPECT_EQ(bucket_lower_bound(2), 2u);
  EXPECT_EQ(bucket_lower_bound(3), 4u);
  // Round trip: every bucket's lower bound indexes back to that bucket.
  for (std::size_t b = 0; b < kHistoBuckets; ++b) {
    EXPECT_EQ(bucket_index(bucket_lower_bound(b)), b) << "bucket " << b;
  }
}

TEST(TelemetryCellTest, MergeFoldsCountsSumsExtremaAndBuckets) {
  Cell a;
  a.count = 2;
  a.sum = 10.0;
  a.min = 1.0;
  a.max = 9.0;
  a.buckets[1] = 2;
  Cell b;
  b.count = 3;
  b.sum = -4.0;
  b.min = -6.0;
  b.max = 2.0;
  b.buckets[1] = 1;
  b.buckets[4] = 2;
  a.merge(b);
  EXPECT_EQ(a.count, 5u);
  EXPECT_DOUBLE_EQ(a.sum, 6.0);
  EXPECT_DOUBLE_EQ(a.min, -6.0);
  EXPECT_DOUBLE_EQ(a.max, 9.0);
  EXPECT_EQ(a.buckets[1], 3u);
  EXPECT_EQ(a.buckets[4], 2u);

  // Merging into an empty cell adopts the source's extrema (an empty cell's
  // min/max are meaningless and must not clamp the result at 0).
  Cell empty;
  Cell positive;
  positive.count = 1;
  positive.sum = positive.min = positive.max = 3.0;
  empty.merge(positive);
  EXPECT_DOUBLE_EQ(empty.min, 3.0);
  EXPECT_DOUBLE_EQ(empty.max, 3.0);
}

TEST_F(TelemetryTest, TrialScopeIsolatesAndCommitPreservesOrder) {
  // Two "trials" recorded through scopes, committed in order: the global
  // sum must fold trial 0 before trial 1.
  TrialSnapshot first, second;
  {
    TrialScope scope;
    CTC_TELEM_GAUGE("scoped", "value", 1.0);
    first = scope.capture();
  }
  {
    TrialScope scope;
    CTC_TELEM_GAUGE("scoped", "value", 2.0);
    second = scope.capture();
  }
  // Nothing reaches the accumulator until commit.
  EXPECT_TRUE(collect().empty());
  commit(std::move(first));
  commit(std::move(second));
  const auto metrics = collect();
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].cell.count, 2u);
  EXPECT_DOUBLE_EQ(metrics[0].cell.sum, 3.0);
}

TEST_F(TelemetryTest, JsonShapeAndRoundTripExactDoubles) {
  CTC_TELEM_COUNT("stage_a", "events", 3);
  CTC_TELEM_GAUGE("stage_a", "level", 0.1);  // not exactly representable
  CTC_TELEM_HISTO("stage_b", "sizes", 5);
  { CTC_TELEM_TIMER("stage_b", "span"); }
  const auto metrics = collect();
  ASSERT_EQ(metrics.size(), 4u);

  const std::string with_timers = to_json(metrics, /*include_timers=*/true,
                                          "\"bench\":\"unit\",");
  const std::string without_timers = to_json(metrics, /*include_timers=*/false);

  EXPECT_NE(with_timers.find("\"telemetry_schema\":1"), std::string::npos);
  EXPECT_NE(with_timers.find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(with_timers.find("\"name\":\"span\""), std::string::npos);
  EXPECT_EQ(without_timers.find("\"name\":\"span\""), std::string::npos);
  EXPECT_NE(without_timers.find("\"name\":\"events\""), std::string::npos);

  // %.17g round-trips doubles exactly: the emitted gauge sum parses back to
  // the same bits that were accumulated.
  const std::string key = "\"name\":\"level\",\"kind\":\"gauge\",\"count\":1,\"sum\":";
  const std::size_t at = without_timers.find(key);
  ASSERT_NE(at, std::string::npos);
  const double parsed = std::stod(without_timers.substr(at + key.size()));
  EXPECT_EQ(parsed, 0.1);
}

TEST_F(TelemetryTest, ResetClearsAccumulatorAndThreadFrame) {
  CTC_TELEM_COUNT("test", "events", 1);
  reset();
  EXPECT_TRUE(collect().empty());
}

}  // namespace
}  // namespace ctc::sim::telemetry
