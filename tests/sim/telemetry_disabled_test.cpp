// Compile-time gating: with CTC_TELEMETRY_DISABLED defined (here, before
// any include) the CTC_TELEM_* macros must vanish — no recording even when
// the runtime switch is on, and no evaluation of their argument
// expressions. This TU is the build proof that production code can compile
// the instrumentation away entirely.
#define CTC_TELEMETRY_DISABLED

#include "sim/telemetry.h"

#include <gtest/gtest.h>

namespace ctc::sim::telemetry {
namespace {

TEST(TelemetryDisabledTest, MacrosRecordNothingEvenWhenRuntimeEnabled) {
  set_enabled(true);
  reset();
  CTC_TELEM_COUNT("disabled", "count", 5);
  CTC_TELEM_GAUGE("disabled", "gauge", 1.25);
  CTC_TELEM_HISTO("disabled", "histo", 9);
  { CTC_TELEM_TIMER("disabled", "span"); }
  EXPECT_TRUE(collect().empty());
  reset();
  set_enabled(false);
}

TEST(TelemetryDisabledTest, ArgumentExpressionsAreNotEvaluated) {
  set_enabled(true);
  int evaluations = 0;
  CTC_TELEM_COUNT("disabled", "count", ++evaluations);
  CTC_TELEM_GAUGE("disabled", "gauge", ++evaluations);
  CTC_TELEM_HISTO("disabled", "histo", ++evaluations);
  EXPECT_EQ(evaluations, 0);  // (void)sizeof type-checks but never runs
  reset();
  set_enabled(false);
}

}  // namespace
}  // namespace ctc::sim::telemetry
