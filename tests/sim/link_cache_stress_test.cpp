// Concurrency stress regressions for sim::Link's shared waveform cache
// (label: stress).
//
// One Link shared by a ThreadPool: every worker races the shared_mutex map
// lookup, the try_emplace insert, and the call_once fill. These exist for
// the `tsan` preset — they make ThreadSanitizer see the cache's
// synchronization edges under real contention — and double as functional
// regressions: whatever the interleaving, every thread must observe the
// same bit-identical cached waveform and per-seed send results must match a
// serial reference exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "dsp/rng.h"
#include "sim/link.h"
#include "sim/thread_pool.h"
#include "zigbee/app.h"

namespace ctc::sim {
namespace {

LinkConfig shared_link_config() {
  LinkConfig config;
  config.kind = LinkKind::authentic;
  config.environment = channel::Environment::awgn(9.0);
  config.memoize_waveforms = true;
  return config;
}

// Many threads request the same small frame set simultaneously on a cold
// cache: the first-touch fill races are the interesting part, so a fresh
// Link per round keeps hitting them instead of the warmed steady state.
TEST(LinkCacheStress, ConcurrentColdFillsAgreeBitwise) {
  const auto frames = zigbee::make_text_workload(3);
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    const Link link(shared_link_config());
    std::vector<cvec> reference(frames.size());
    for (std::size_t f = 0; f < frames.size(); ++f) {
      reference[f] = Link(shared_link_config()).clean_waveform(frames[f]);
    }
    std::atomic<std::size_t> mismatches{0};
    pool.parallel_for(48, [&](std::size_t task) {
      const std::size_t f = task % frames.size();
      const cvec wave = link.clean_waveform(frames[f]);
      if (wave != reference[f]) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
    EXPECT_EQ(mismatches.load(), 0u) << "round " << round;
  }
}

// Concurrent send() against a cold shared cache, checked against a serial
// reference link: per-seed observations must be identical because the cache
// only changes where the clean waveform comes from, never its bytes or the
// per-call RNG draw sequence.
TEST(LinkCacheStress, ConcurrentSendsMatchSerialReference) {
  const auto frames = zigbee::make_text_workload(4);
  const Link serial(shared_link_config());
  constexpr std::size_t kTasks = 64;

  std::vector<FrameObservation> expected(kTasks);
  for (std::size_t task = 0; task < kTasks; ++task) {
    dsp::Rng rng(1000 + task);
    expected[task] = serial.send(frames[task % frames.size()], rng);
  }

  const Link shared(shared_link_config());
  std::vector<FrameObservation> observed(kTasks);
  ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t task) {
    dsp::Rng rng(1000 + task);
    observed[task] = shared.send(frames[task % frames.size()], rng);
  });

  for (std::size_t task = 0; task < kTasks; ++task) {
    SCOPED_TRACE("task " + std::to_string(task));
    EXPECT_EQ(observed[task].symbols_sent, expected[task].symbols_sent);
    EXPECT_EQ(observed[task].symbol_errors, expected[task].symbol_errors);
    EXPECT_EQ(observed[task].payload_match, expected[task].payload_match);
    EXPECT_EQ(observed[task].success, expected[task].success);
    EXPECT_EQ(observed[task].rx.psdu, expected[task].rx.psdu);
    EXPECT_EQ(observed[task].rx.soft_chips, expected[task].rx.soft_chips);
  }
}

// prime() racing lazy send()-side fills: the pool hammers sends while the
// main thread primes the same frames. call_once must hand every caller the
// single filled entry regardless of who wins.
TEST(LinkCacheStress, PrimeRacesLazySendFills) {
  const auto frames = zigbee::make_text_workload(5);
  for (int round = 0; round < 6; ++round) {
    const Link link(shared_link_config());
    ThreadPool pool(4);
    std::atomic<std::size_t> successes{0};
    pool.parallel_for(40, [&](std::size_t task) {
      if (task == 0) {
        link.prime(frames);
        return;
      }
      dsp::Rng rng(500 + task);
      const auto obs = link.send(frames[task % frames.size()], rng);
      if (obs.symbols_sent > 0) {
        successes.fetch_add(1, std::memory_order_relaxed);
      }
    });
    EXPECT_EQ(successes.load(), 39u) << "round " << round;
  }
}

}  // namespace
}  // namespace ctc::sim
