// Batched (SoA) trial path equivalence: run_batched must reproduce the
// serial run() bit for bit at any batch size and thread count, because
// every trial keeps its own RNG stream and results fold in trial-index
// order. The same contract cascades down the stack: propagate_batch vs
// propagate, Link::send_batch vs send, and the batched defense collector
// vs the serial one.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "channel/environment.h"
#include "dsp/batch.h"
#include "dsp/rng.h"
#include "sim/defense_run.h"
#include "sim/engine.h"
#include "sim/link.h"
#include "zigbee/app.h"

namespace ctc::sim {
namespace {

const std::vector<std::size_t> kBatchSizes = {1, 3, 16};

struct CollectAggregator {
  std::vector<double> values;
  void add(double value) { values.push_back(value); }
};

double draw_heavy_trial(std::size_t index, dsp::Rng& rng) {
  // A trial whose value depends on the stream identity and on several
  // draws, so any stream or ordering mix-up shows up immediately.
  double acc = static_cast<double>(index);
  for (int k = 0; k < 5; ++k) acc += rng.gaussian();
  return acc;
}

TEST(BatchEngineTest, RunBatchedMatchesSerialBitwise) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    EngineConfig config;
    config.seed = 1234;
    config.threads = threads;
    TrialEngine serial_engine(config);
    const auto serial = serial_engine.run<CollectAggregator>(
        97, [](std::size_t i, dsp::Rng& rng) {
          return draw_heavy_trial(i, rng);
        });
    ASSERT_EQ(serial.values.size(), 97u);

    for (std::size_t batch_size : kBatchSizes) {
      TrialEngine batched_engine(config);
      const auto batched = batched_engine.run_batched<CollectAggregator>(
          97, batch_size, [](std::size_t first, std::span<dsp::Rng> rngs) {
            std::vector<double> results;
            results.reserve(rngs.size());
            for (std::size_t k = 0; k < rngs.size(); ++k) {
              results.push_back(draw_heavy_trial(first + k, rngs[k]));
            }
            return results;
          });
      ASSERT_EQ(batched.values.size(), serial.values.size())
          << "batch=" << batch_size << " threads=" << threads;
      for (std::size_t i = 0; i < serial.values.size(); ++i) {
        EXPECT_EQ(std::memcmp(&serial.values[i], &batched.values[i],
                              sizeof(double)),
                  0)
            << "trial " << i << " batch=" << batch_size
            << " threads=" << threads;
      }
    }
  }
}

TEST(BatchEngineTest, RunBatchedRejectsWrongResultCount) {
  TrialEngine engine;
  EXPECT_THROW(engine.run_batched<CollectAggregator>(
                   8, 4,
                   [](std::size_t, std::span<dsp::Rng>) {
                     return std::vector<double>{1.0};  // wrong size
                   }),
               ContractError);
}

TEST(BatchEngineTest, PropagateBatchMatchesSerialBitwise) {
  // The full stage stack: Rician fade + CFO + random phase + timing + AWGN.
  channel::Environment env = channel::Environment::real_world(3.0);
  dsp::Rng source(42);
  cvec signal(257);
  for (auto& x : signal) x = source.complex_gaussian(1.0);

  std::vector<dsp::Rng> rngs;
  for (std::uint64_t k = 0; k < 5; ++k) {
    rngs.push_back(dsp::Rng::for_stream(7, k));
  }
  dsp::BatchBuffer batch;
  env.propagate_batch(batch, signal, rngs);
  ASSERT_EQ(batch.rows(), 5u);
  ASSERT_EQ(batch.stride(), signal.size());

  for (std::uint64_t k = 0; k < 5; ++k) {
    dsp::Rng serial_rng = dsp::Rng::for_stream(7, k);
    const cvec serial = env.propagate(signal, serial_rng);
    const auto row = batch.row(k);
    ASSERT_EQ(serial.size(), row.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(std::memcmp(&serial[i], &row[i], sizeof(cplx)), 0)
          << "row " << k << " sample " << i;
    }
  }
}

TEST(BatchEngineTest, LinkSendBatchMatchesSerialBitwise) {
  LinkConfig config;
  config.environment = channel::Environment::awgn(8.0);
  const Link link(config);
  const auto frame = zigbee::make_text_frame(9, 9);

  for (std::size_t batch_size : kBatchSizes) {
    std::vector<dsp::Rng> rngs;
    for (std::uint64_t k = 0; k < batch_size; ++k) {
      rngs.push_back(dsp::Rng::for_stream(77, k));
    }
    const auto batched = link.send_batch(frame, rngs);
    ASSERT_EQ(batched.size(), batch_size);
    for (std::uint64_t k = 0; k < batch_size; ++k) {
      dsp::Rng serial_rng = dsp::Rng::for_stream(77, k);
      const FrameObservation serial = link.send(frame, serial_rng);
      EXPECT_EQ(serial.success, batched[k].success) << "trial " << k;
      EXPECT_EQ(serial.symbol_errors, batched[k].symbol_errors) << "trial "
                                                                << k;
      EXPECT_EQ(serial.rx.psdu, batched[k].rx.psdu) << "trial " << k;
      ASSERT_EQ(serial.rx.freq_chips.size(), batched[k].rx.freq_chips.size());
      for (std::size_t i = 0; i < serial.rx.freq_chips.size(); ++i) {
        EXPECT_EQ(std::memcmp(&serial.rx.freq_chips[i],
                              &batched[k].rx.freq_chips[i], sizeof(double)),
                  0)
            << "trial " << k << " chip " << i;
      }
      ASSERT_EQ(serial.rx.soft_chips.size(), batched[k].rx.soft_chips.size());
      for (std::size_t i = 0; i < serial.rx.soft_chips.size(); ++i) {
        EXPECT_EQ(std::memcmp(&serial.rx.soft_chips[i],
                              &batched[k].rx.soft_chips[i], sizeof(double)),
                  0)
            << "trial " << k << " soft chip " << i;
      }
    }
  }
}

TEST(BatchEngineTest, CollectDefenseSamplesBatchedMatchesSerial) {
  LinkConfig config;
  config.environment = channel::Environment::awgn(12.0);
  const Link link(config);
  // Two distinct frames so the batched collector's frame-cycling path (runs
  // shrinking to single-trial sends) is exercised, not just the
  // single-frame fast path.
  const std::vector<zigbee::MacFrame> frames = {zigbee::make_text_frame(5, 3),
                                                zigbee::make_text_frame(6, 4)};
  const defense::Detector detector;

  EngineConfig engine_config;
  engine_config.seed = 99;
  engine_config.threads = 2;
  TrialEngine serial_engine(engine_config);
  const DefenseSamples serial = collect_defense_samples(
      link, frames, 24, detector, serial_engine);

  for (std::size_t batch_size : kBatchSizes) {
    TrialEngine batched_engine(engine_config);
    const DefenseSamples batched = collect_defense_samples_batched(
        link, frames, 24, detector, batched_engine, batch_size);
    EXPECT_EQ(serial.frames_used, batched.frames_used)
        << "batch=" << batch_size;
    EXPECT_EQ(serial.frames_skipped, batched.frames_skipped)
        << "batch=" << batch_size;
    ASSERT_EQ(serial.distances.size(), batched.distances.size());
    for (std::size_t i = 0; i < serial.distances.size(); ++i) {
      EXPECT_EQ(std::memcmp(&serial.distances[i], &batched.distances[i],
                            sizeof(double)),
                0)
          << "distance " << i << " batch=" << batch_size;
      EXPECT_EQ(std::memcmp(&serial.c40[i], &batched.c40[i], sizeof(double)),
                0)
          << "c40 " << i << " batch=" << batch_size;
      EXPECT_EQ(std::memcmp(&serial.c42[i], &batched.c42[i], sizeof(double)),
                0)
          << "c42 " << i << " batch=" << batch_size;
    }
  }
}

TEST(BatchEngineTest, BatchBufferReshapeKeepsRowsDisjoint) {
  dsp::BatchBuffer buffer;
  buffer.reset(3, 4);
  for (std::size_t r = 0; r < 3; ++r) {
    for (auto& x : buffer.row(r)) {
      x = cplx{static_cast<double>(r), 0.0};
    }
  }
  for (std::size_t r = 0; r < 3; ++r) {
    for (const auto& x : buffer.row(r)) {
      EXPECT_EQ(x.real(), static_cast<double>(r));
    }
  }
  const dsp::BatchView view = buffer.view();
  EXPECT_EQ(view.rows(), 3u);
  EXPECT_EQ(view.stride(), 4u);
  EXPECT_EQ(view.row(1).data(), buffer.row(1).data());
}

}  // namespace
}  // namespace ctc::sim
