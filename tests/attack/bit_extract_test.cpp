#include "attack/bit_extract.h"

#include <gtest/gtest.h>

#include "attack/emulator.h"
#include "dsp/require.h"
#include "wifi/ofdm.h"
#include "zigbee/app.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace ctc::attack {
namespace {

EmulationResult emulate_frame() {
  zigbee::Transmitter tx;
  EmulatorConfig config;
  config.alpha = std::sqrt(26.0);
  return WaveformEmulator(config).emulate(
      tx.transmit_frame(zigbee::make_text_frame(3, 3)));
}

TEST(BitExtractTest, OneBlockPerSymbolWithFullCbps) {
  const EmulationResult emulation = emulate_frame();
  const CarrierPlan plan;
  const ExtractedBits bits =
      extract_wifi_bits(emulation.symbol_grids, std::sqrt(26.0), plan);
  EXPECT_EQ(bits.interleaved_bits_per_symbol.size(), emulation.symbol_grids.size());
  EXPECT_EQ(bits.coded_bits_per_symbol.size(), emulation.symbol_grids.size());
  for (const auto& block : bits.interleaved_bits_per_symbol) {
    EXPECT_EQ(block.size(), 288u);  // 48 subcarriers x 6 bits
  }
  EXPECT_NEAR(bits.tx_gain, std::sqrt(26.0) * std::sqrt(42.0), 1e-12);
}

TEST(BitExtractTest, ForwardPathReproducesZigBeeSubcarriersExactly) {
  // Running the extracted bits through the standard mapper must reproduce the
  // quantized values on every ZigBee-carrying subcarrier — the paper's
  // "preprocessing is invertible" claim made concrete.
  const EmulationResult emulation = emulate_frame();
  const CarrierPlan plan;
  const double alpha = std::sqrt(26.0);
  const ExtractedBits bits = extract_wifi_bits(emulation.symbol_grids, alpha, plan);
  const auto rebuilt =
      grids_from_interleaved_bits(bits.interleaved_bits_per_symbol, bits.tx_gain);
  ASSERT_EQ(rebuilt.size(), emulation.symbol_grids.size());
  const int shift = plan.subcarrier_shift();
  for (std::size_t s = 0; s < rebuilt.size(); ++s) {
    for (std::size_t bin : emulation.kept_bins) {
      const int target = (static_cast<int>(bin) + shift + 64) % 64;
      EXPECT_NEAR(std::abs(rebuilt[s][static_cast<std::size_t>(target)] -
                           emulation.symbol_grids[s][bin]),
                  0.0, 1e-9)
          << "symbol " << s << " bin " << bin;
    }
  }
}

TEST(BitExtractTest, RebuiltGridsCarryPilots) {
  const EmulationResult emulation = emulate_frame();
  const CarrierPlan plan;
  const ExtractedBits bits =
      extract_wifi_bits(emulation.symbol_grids, std::sqrt(26.0), plan);
  const auto rebuilt =
      grids_from_interleaved_bits(bits.interleaved_bits_per_symbol, bits.tx_gain);
  for (std::size_t s = 0; s < rebuilt.size(); ++s) {
    const double polarity = wifi::pilot_polarity(s);
    EXPECT_EQ(rebuilt[s][wifi::subcarrier_to_bin(-21)], (cplx{polarity, 0.0}));
    EXPECT_EQ(rebuilt[s][wifi::subcarrier_to_bin(21)], (cplx{-polarity, 0.0}));
  }
}

TEST(BitExtractTest, DontCareSubcarriersGetValidPoints) {
  // Subcarriers outside the ZigBee window demap from zero to *some* legal
  // 64-QAM point, keeping the frame protocol-legal.
  const EmulationResult emulation = emulate_frame();
  const CarrierPlan plan;
  const ExtractedBits bits =
      extract_wifi_bits(emulation.symbol_grids, std::sqrt(26.0), plan);
  const auto rebuilt =
      grids_from_interleaved_bits(bits.interleaved_bits_per_symbol, bits.tx_gain);
  const auto& data_indexes = wifi::data_subcarrier_indexes();
  for (int index : data_indexes) {
    const cplx value = rebuilt[0][wifi::subcarrier_to_bin(index)];
    // Every data subcarrier holds an odd-level point of the alpha lattice.
    const double i = value.real() / std::sqrt(26.0);
    const double q = value.imag() / std::sqrt(26.0);
    EXPECT_NEAR(i, std::round(i), 1e-9);
    EXPECT_EQ(std::abs(std::lround(i)) % 2, 1) << "subcarrier " << index;
    EXPECT_NEAR(q, std::round(q), 1e-9);
    EXPECT_EQ(std::abs(std::lround(q)) % 2, 1) << "subcarrier " << index;
  }
}

TEST(BitExtractTest, RejectsNonPositiveAlpha) {
  const EmulationResult emulation = emulate_frame();
  EXPECT_THROW(extract_wifi_bits(emulation.symbol_grids, 0.0, CarrierPlan{}),
               ContractError);
}


TEST(BitExtractTest, BitLevelFrameStillControlsTheZigBeeReceiver) {
  // Close the loop on Sec. V-A4: rebuild the WiFi frame from the *extracted
  // bits* (not the raw grids), transmit it on the real carrier plan, run the
  // victim front end, and decode. This is the frame a commodity WiFi PHY
  // with post-encoder injection would emit.
  zigbee::Transmitter tx;
  const zigbee::MacFrame frame = zigbee::make_text_frame(77, 7);
  const cvec observed = tx.transmit_frame(frame);
  EmulatorConfig config;
  config.alpha = std::sqrt(26.0);
  const EmulationResult emulation = WaveformEmulator(config).emulate(observed);

  const CarrierPlan plan;
  const ExtractedBits bits =
      extract_wifi_bits(emulation.symbol_grids, std::sqrt(26.0), plan);
  const auto wifi_grids =
      grids_from_interleaved_bits(bits.interleaved_bits_per_symbol, bits.tx_gain);

  cvec wifi_baseband;
  for (const cvec& grid : wifi_grids) {
    const cvec symbol = wifi::grid_to_time(grid);
    wifi_baseband.insert(wifi_baseband.end(), symbol.begin(), symbol.end());
  }
  cvec at_victim = wifi_band_to_zigbee_baseband(wifi_baseband, plan);
  at_victim.resize(observed.size());
  const auto rx = zigbee::Receiver().receive(at_victim);
  ASSERT_TRUE(rx.frame_ok());
  EXPECT_EQ(zigbee::text_of(*rx.mac), "00077");
}

}  // namespace
}  // namespace ctc::attack
