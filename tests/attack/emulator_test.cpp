#include "attack/emulator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dsp/require.h"
#include "dsp/stats.h"
#include "sim/telemetry.h"
#include "zigbee/app.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace ctc::attack {
namespace {

cvec observed_waveform() {
  zigbee::Transmitter tx;
  return tx.transmit_frame(zigbee::make_text_frame(0, 0));
}

TEST(EmulatorTest, OutputsCoverTheObservedFrame) {
  WaveformEmulator emulator;
  const cvec observed = observed_waveform();
  const EmulationResult result = emulator.emulate(observed);
  EXPECT_EQ(result.emulated_4mhz.size(), observed.size());
  EXPECT_EQ(result.wifi_waveform_20mhz.size() % 80, 0u);
  EXPECT_GE(result.wifi_waveform_20mhz.size(), observed.size() * 5);
  EXPECT_EQ(result.symbol_grids.size(), result.wifi_waveform_20mhz.size() / 80);
  EXPECT_EQ(result.diagnostics.size(), result.symbol_grids.size());
}

TEST(EmulatorTest, SelectsThePaperBinsAutomatically) {
  WaveformEmulator emulator;
  const EmulationResult result = emulator.emulate(observed_waveform());
  EXPECT_EQ(result.kept_bins, SubcarrierSelector::paper_default_bins());
}

TEST(EmulatorTest, EmittedWifiSymbolsHaveCyclicPrefixes) {
  // Every 80-sample block: first 16 samples == last 16 (the structure the
  // paper's Sec. VI-A1 "possible strategy" looks for).
  WaveformEmulator emulator;
  const EmulationResult result = emulator.emulate(observed_waveform());
  const cvec& wifi = result.wifi_waveform_20mhz;
  for (std::size_t start = 0; start + 80 <= wifi.size(); start += 80) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_NEAR(std::abs(wifi[start + i] - wifi[start + 64 + i]), 0.0, 1e-12);
    }
  }
}

TEST(EmulatorTest, GridsOnlyOccupyKeptBins) {
  WaveformEmulator emulator;
  const EmulationResult result = emulator.emulate(observed_waveform());
  for (const cvec& grid : result.symbol_grids) {
    for (std::size_t k = 0; k < 64; ++k) {
      const bool kept = std::find(result.kept_bins.begin(), result.kept_bins.end(),
                                  k) != result.kept_bins.end();
      if (!kept) {
        EXPECT_EQ(grid[k], (cplx{0.0, 0.0})) << "bin " << k;
      }
    }
  }
}

TEST(EmulatorTest, GridValuesSitOnTheAlphaQamLattice) {
  EmulatorConfig config;
  config.alpha = 5.0;
  WaveformEmulator emulator(config);
  const EmulationResult result = emulator.emulate(observed_waveform());
  for (const cvec& grid : result.symbol_grids) {
    for (std::size_t bin : result.kept_bins) {
      const double i = grid[bin].real() / 5.0;
      const double q = grid[bin].imag() / 5.0;
      EXPECT_NEAR(i, std::round(i), 1e-9);
      EXPECT_NEAR(q, std::round(q), 1e-9);
      EXPECT_EQ(std::abs(std::lround(i)) % 2, 1);
      EXPECT_EQ(std::abs(std::lround(q)) % 2, 1);
    }
  }
}

TEST(EmulatorTest, EmulatedWaveformResemblesTheOriginal) {
  // Most energy is preserved: NMSE well below 1 (the paper's Fig. 5 shows
  // near-perfect tracking outside the cyclic-prefix windows).
  WaveformEmulator emulator;
  const cvec observed = observed_waveform();
  const EmulationResult result = emulator.emulate(observed);
  EXPECT_LT(dsp::nmse(observed, result.emulated_4mhz), 0.7);
  // And it is far from a trivial all-zero signal.
  EXPECT_GT(dsp::average_power(result.emulated_4mhz), 0.1);
}

TEST(EmulatorTest, EmulatedFrameDecodesAtTheZigBeeReceiver) {
  // The headline claim of Sec. V-B: the emulated waveform passes the ZigBee
  // receiver's detection and decoding, on both receiver profiles.
  WaveformEmulator emulator;
  const zigbee::MacFrame frame = zigbee::make_text_frame(42, 9);
  zigbee::Transmitter tx;
  const EmulationResult result = emulator.emulate(tx.transmit_frame(frame));
  for (auto profile :
       {zigbee::ReceiverProfile::usrp(), zigbee::ReceiverProfile::cc26x2r1()}) {
    zigbee::ReceiverConfig config;
    config.profile = profile;
    const auto rx = zigbee::Receiver(config).receive(result.emulated_4mhz);
    ASSERT_TRUE(rx.frame_ok()) << profile.name;
    EXPECT_EQ(zigbee::text_of(*rx.mac), "00042") << profile.name;
  }
}

TEST(EmulatorTest, ChipErrorsLandInThePaperRange) {
  // Fig. 7: noiseless emulated frames produce Hamming distances around 4-8;
  // authentic frames produce 0.
  WaveformEmulator emulator;
  zigbee::Transmitter tx;
  const cvec observed = tx.transmit_frame(zigbee::make_text_frame(1, 1));
  const auto rx = zigbee::Receiver().receive(emulator.emulate(observed).emulated_4mhz);
  ASSERT_TRUE(rx.phr_ok);
  ASSERT_FALSE(rx.hamming_distances.empty());
  for (std::size_t d : rx.hamming_distances) {
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 9u);
  }
}

TEST(EmulatorTest, FixedAlphaIsHonored) {
  EmulatorConfig config;
  config.alpha = std::sqrt(26.0);  // the paper's simulation value
  WaveformEmulator emulator(config);
  const EmulationResult result = emulator.emulate(observed_waveform());
  for (const auto& diagnostics : result.diagnostics) {
    EXPECT_DOUBLE_EQ(diagnostics.alpha, std::sqrt(26.0));
  }
}

TEST(EmulatorTest, ManualBinChoiceIsHonored) {
  EmulatorConfig config;
  config.kept_bins = {0, 1, 63};
  WaveformEmulator emulator(config);
  const EmulationResult result = emulator.emulate(observed_waveform());
  EXPECT_EQ(result.kept_bins, (std::vector<std::size_t>{0, 1, 63}));
}

TEST(EmulatorTest, FewerBinsMeansMoreDiscardedEnergy) {
  // Ablation hook: keeping 3 bins must discard more energy than keeping 7.
  EmulatorConfig narrow;
  narrow.selection.num_kept = 3;
  EmulatorConfig wide;
  wide.selection.num_kept = 7;
  const cvec observed = observed_waveform();
  auto discarded = [&](const EmulatorConfig& config) {
    const EmulationResult result = WaveformEmulator(config).emulate(observed);
    double total = 0.0;
    for (const auto& d : result.diagnostics) total += d.discarded_energy;
    return total;
  };
  EXPECT_GT(discarded(narrow), discarded(wide));
}

TEST(EmulatorTest, MemoizedOutputIsBitwiseIdenticalToUncached) {
  EmulatorConfig cached_config;
  cached_config.memoize = true;
  EmulatorConfig uncached_config;
  uncached_config.memoize = false;
  const cvec observed = observed_waveform();
  const EmulationResult cached = WaveformEmulator(cached_config).emulate(observed);
  const EmulationResult uncached =
      WaveformEmulator(uncached_config).emulate(observed);
  EXPECT_EQ(cached.wifi_waveform_20mhz, uncached.wifi_waveform_20mhz);
  EXPECT_EQ(cached.emulated_4mhz, uncached.emulated_4mhz);
  EXPECT_EQ(cached.symbol_grids, uncached.symbol_grids);
  EXPECT_EQ(cached.kept_bins, uncached.kept_bins);
  ASSERT_EQ(cached.diagnostics.size(), uncached.diagnostics.size());
  for (std::size_t n = 0; n < cached.diagnostics.size(); ++n) {
    EXPECT_EQ(cached.diagnostics[n].alpha, uncached.diagnostics[n].alpha);
    EXPECT_EQ(cached.diagnostics[n].quantization_error,
              uncached.diagnostics[n].quantization_error);
    EXPECT_EQ(cached.diagnostics[n].discarded_energy,
              uncached.diagnostics[n].discarded_energy);
  }
}

TEST(EmulatorTest, MemoizationHitsTheLutAndCountsIt) {
  // A ZigBee frame cycles through 16 chip sequences, so a frame with many
  // symbols must reuse slots: hits + misses == symbols, with plenty of hits.
  sim::telemetry::reset();
  sim::telemetry::set_enabled(true);
  WaveformEmulator emulator;
  const EmulationResult result = emulator.emulate(observed_waveform());
  sim::telemetry::set_enabled(false);
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& metric : sim::telemetry::collect()) {
    if (metric.stage != "attack") continue;
    if (metric.name == "lut_hits") hits = metric.cell.count;
    if (metric.name == "lut_misses") misses = metric.cell.count;
  }
  sim::telemetry::reset();
  EXPECT_EQ(hits + misses, result.diagnostics.size());
  EXPECT_LT(misses, result.diagnostics.size());
  EXPECT_GT(hits, 0u);
}

TEST(EmulatorTest, SymbolLevelApiValidatesInput) {
  WaveformEmulator emulator;
  const std::vector<std::size_t> bins = {0, 1};
  EXPECT_THROW(emulator.emulate_symbol(cvec(79), bins, 1.0), ContractError);
  EXPECT_THROW(emulator.emulate_symbol(cvec(80), std::vector<std::size_t>{64}, 1.0),
               ContractError);
  EXPECT_THROW(emulator.emulate(cvec{}), ContractError);
}

TEST(EmulatorTest, RejectsBadConfig) {
  EmulatorConfig config;
  config.interpolation = 0;
  EXPECT_THROW(WaveformEmulator{config}, ContractError);
  EmulatorConfig negative_alpha;
  negative_alpha.alpha = -1.0;
  EXPECT_THROW(WaveformEmulator{negative_alpha}, ContractError);
}

}  // namespace
}  // namespace ctc::attack
