#include "attack/eavesdropper.h"

#include <gtest/gtest.h>

#include "attack/emulator.h"
#include "dsp/stats.h"
#include "zigbee/app.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace ctc::attack {
namespace {

cvec victim_waveform() {
  zigbee::Transmitter tx;
  return tx.transmit_frame(zigbee::make_text_frame(11, 2));
}

TEST(EavesdropperTest, SynchronizesOnTheOverheardFrame) {
  dsp::Rng rng(230);
  Eavesdropper eavesdropper;
  const cvec waveform = victim_waveform();
  const EavesdropResult result = eavesdropper.listen(waveform, rng);
  ASSERT_TRUE(result.synchronized);
  // Lead-in is 900 samples at 20 MHz = 180 at 4 MHz; filters shift by a few.
  EXPECT_NEAR(static_cast<double>(result.frame_offset), 180.0, 5.0);
  EXPECT_EQ(result.observed_4mhz.size(), waveform.size());
}

TEST(EavesdropperTest, CapturedWaveformTracksTheOriginal) {
  dsp::Rng rng(231);
  EavesdropConfig config;
  config.snr_db = 45.0;
  Eavesdropper eavesdropper(config);
  const cvec waveform = victim_waveform();
  const EavesdropResult result = eavesdropper.listen(waveform, rng);
  ASSERT_TRUE(result.synchronized);
  // The 2 MHz front end keeps the ZigBee signal nearly intact at high SNR.
  EXPECT_LT(dsp::nmse(waveform, result.observed_4mhz), 0.05);
}

TEST(EavesdropperTest, CapturedFrameIsDecodable) {
  dsp::Rng rng(232);
  Eavesdropper eavesdropper;
  const EavesdropResult result = eavesdropper.listen(victim_waveform(), rng);
  ASSERT_TRUE(result.synchronized);
  const auto rx = zigbee::Receiver().receive(result.observed_4mhz);
  ASSERT_TRUE(rx.frame_ok());
  EXPECT_EQ(zigbee::text_of(*rx.mac), "00011");
}

TEST(EavesdropperTest, FullChainEavesdropThenEmulateThenControl) {
  // The complete adversarial model: listen (Sec. IV-A) -> emulate (Sec. V)
  // -> the victim decodes the attacker's frame.
  dsp::Rng rng(233);
  Eavesdropper eavesdropper;
  const EavesdropResult capture = eavesdropper.listen(victim_waveform(), rng);
  ASSERT_TRUE(capture.synchronized);
  WaveformEmulator emulator;
  const EmulationResult emulation = emulator.emulate(capture.observed_4mhz);
  const auto rx = zigbee::Receiver().receive(emulation.emulated_4mhz);
  ASSERT_TRUE(rx.frame_ok());
  EXPECT_EQ(zigbee::text_of(*rx.mac), "00011");
}

TEST(EavesdropperTest, NoSyncWhenOnlyNoiseIsCaptured) {
  dsp::Rng rng(234);
  EavesdropConfig config;
  config.snr_db = -25.0;  // frame buried far below the noise floor
  Eavesdropper eavesdropper(config);
  const EavesdropResult result = eavesdropper.listen(victim_waveform(), rng);
  EXPECT_FALSE(result.synchronized);
  EXPECT_TRUE(result.observed_4mhz.empty());
}

TEST(EavesdropperTest, LowSnrCapturesDegradeTheEmulation) {
  dsp::Rng rng(235);
  const cvec waveform = victim_waveform();
  auto capture_nmse = [&](double snr) {
    EavesdropConfig config;
    config.snr_db = snr;
    const EavesdropResult result = Eavesdropper(config).listen(waveform, rng);
    if (!result.synchronized) return 1.0;
    return dsp::nmse(waveform, result.observed_4mhz);
  };
  EXPECT_LT(capture_nmse(40.0), capture_nmse(10.0));
}

}  // namespace
}  // namespace ctc::attack
