#include "attack/subcarrier_select.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dsp/require.h"
#include "dsp/resample.h"
#include "zigbee/app.h"
#include "zigbee/transmitter.h"

namespace ctc::attack {
namespace {

cvec observed_zigbee_20mhz() {
  zigbee::Transmitter tx;
  const cvec wave = tx.transmit_frame(zigbee::make_text_frame(0, 0));
  return dsp::upsample(wave, 5);
}

TEST(SubcarrierSelectTest, PicksThePaperBinsOnRealZigBeeWaveform) {
  // Sec. V-A2 / Table I: the chosen subcarriers are 1-4 and 62-64 (1-based),
  // i.e. FFT bins {0,1,2,3,61,62,63}.
  SubcarrierSelector selector;
  const SelectionResult result = selector.select_from_waveform(observed_zigbee_20mhz());
  EXPECT_EQ(result.bins, SubcarrierSelector::paper_default_bins());
}

TEST(SubcarrierSelectTest, WindowMagnitudesSkipTheCpRegion) {
  const cvec wave = observed_zigbee_20mhz();
  SubcarrierSelector selector;
  const auto magnitudes = selector.window_magnitudes(wave);
  EXPECT_EQ(magnitudes.size(), wave.size() / 80);
  for (const auto& window : magnitudes) EXPECT_EQ(window.size(), 64u);
}

TEST(SubcarrierSelectTest, EnergyConcentratesInChosenBins) {
  // The 7 chosen bins must hold the bulk of the waveform energy — that is
  // why the attack works at all.
  SubcarrierSelector selector;
  const cvec wave = observed_zigbee_20mhz();
  const auto magnitudes = selector.window_magnitudes(wave);
  const auto result = selector.select(magnitudes);
  double kept = 0.0;
  double total = 0.0;
  for (const auto& window : magnitudes) {
    for (std::size_t k = 0; k < window.size(); ++k) {
      const double p = window[k] * window[k];
      total += p;
      if (std::find(result.bins.begin(), result.bins.end(), k) != result.bins.end()) {
        kept += p;
      }
    }
  }
  EXPECT_GT(kept / total, 0.85);
}

TEST(SubcarrierSelectTest, VotesAreBoundedByWindowCount) {
  SubcarrierSelector selector;
  const auto magnitudes = selector.window_magnitudes(observed_zigbee_20mhz());
  const auto result = selector.select(magnitudes);
  for (std::size_t vote : result.votes) EXPECT_LE(vote, magnitudes.size());
  // Chosen bins have at least as many votes as any unchosen bin.
  std::size_t min_chosen = magnitudes.size();
  for (std::size_t bin : result.bins) min_chosen = std::min(min_chosen, result.votes[bin]);
  for (std::size_t k = 0; k < 64; ++k) {
    if (std::find(result.bins.begin(), result.bins.end(), k) == result.bins.end()) {
      EXPECT_LE(result.votes[k], min_chosen) << "bin " << k;
    }
  }
}

TEST(SubcarrierSelectTest, NumKeptIsRespected) {
  SelectionConfig config;
  config.num_kept = 3;
  SubcarrierSelector selector(config);
  const auto result = selector.select_from_waveform(observed_zigbee_20mhz());
  EXPECT_EQ(result.bins.size(), 3u);
}

TEST(SubcarrierSelectTest, HighCoarseThresholdStillPicksSeven) {
  // With an absurd threshold nothing is highlighted; the magnitude tiebreak
  // still returns a deterministic, energy-sorted choice.
  SelectionConfig config;
  config.coarse_threshold = 1e9;
  SubcarrierSelector selector(config);
  const auto result = selector.select_from_waveform(observed_zigbee_20mhz());
  EXPECT_EQ(result.bins.size(), 7u);
  EXPECT_EQ(result.bins, SubcarrierSelector::paper_default_bins());
}

TEST(SubcarrierSelectTest, RejectsEmptyInputAndBadConfig) {
  SubcarrierSelector selector;
  EXPECT_THROW(selector.select(std::vector<rvec>{}), ContractError);
  SelectionConfig config;
  config.num_kept = 0;
  EXPECT_THROW(SubcarrierSelector{config}, ContractError);
  config.num_kept = 65;
  EXPECT_THROW(SubcarrierSelector{config}, ContractError);
}

TEST(SubcarrierSelectTest, MagnitudeTableIsExposedForTableOne) {
  SubcarrierSelector selector;
  const auto result = selector.select_from_waveform(observed_zigbee_20mhz());
  ASSERT_FALSE(result.magnitudes.empty());
  // Bins 5..54 (paper rows between the kept blocks) carry visibly less
  // energy than the top kept bin in every window.
  for (const auto& window : result.magnitudes) {
    const double top = *std::max_element(window.begin(), window.end());
    for (std::size_t k = 8; k < 54; ++k) EXPECT_LT(window[k], top);
  }
}

}  // namespace
}  // namespace ctc::attack
