#include "attack/qam_quantize.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"

namespace ctc::attack {
namespace {

TEST(QuantizeTest, ExactGridPointsAreFixedPoints) {
  const double alpha = 2.5;
  cvec points;
  for (int i = -7; i <= 7; i += 2) {
    for (int q = -7; q <= 7; q += 2) {
      points.emplace_back(alpha * i, alpha * q);
    }
  }
  const auto quantized = quantize_to_qam64(points, alpha);
  for (std::size_t n = 0; n < points.size(); ++n) {
    EXPECT_NEAR(std::abs(points[n] - quantized[n].value), 0.0, 1e-12);
  }
  EXPECT_NEAR(quantization_cost(points, alpha), 0.0, 1e-12);
}

TEST(QuantizeTest, LevelsAreClampedToPlusMinusSeven) {
  const auto q = quantize_to_qam64(cvec{{100.0, -50.0}}, 1.0);
  EXPECT_EQ(q[0].i_level, 7);
  EXPECT_EQ(q[0].q_level, -7);
}

TEST(QuantizeTest, NearestLevelRounding) {
  const auto q = quantize_to_qam64(cvec{{1.9, -2.1}, {0.0, 4.1}}, 1.0);
  EXPECT_EQ(q[0].i_level, 1);   // 1.9 closer to 1 than 3
  EXPECT_EQ(q[0].q_level, -3);  // -2.1 closer to -3... (-2.1: |-2.1+1|=1.1, |-2.1+3|=0.9)
  EXPECT_EQ(q[1].i_level, 1);  // 0 ties toward +1
  EXPECT_EQ(q[1].q_level, 5);   // 4.1 closer to 5
}

TEST(QuantizeTest, RejectsNonPositiveAlpha) {
  EXPECT_THROW(quantize_to_qam64(cvec{{1.0, 1.0}}, 0.0), ContractError);
  EXPECT_THROW(quantization_cost(cvec{{1.0, 1.0}}, -1.0), ContractError);
}

TEST(OptimizeScaleTest, RecoversTheGeneratingScale) {
  // Points drawn exactly from an alpha* grid: the optimum is alpha* (cost 0).
  dsp::Rng rng(130);
  const double true_alpha = 3.7;
  cvec points;
  for (int n = 0; n < 64; ++n) {
    const int i = 2 * static_cast<int>(rng.uniform_index(8)) - 7;
    const int q = 2 * static_cast<int>(rng.uniform_index(8)) - 7;
    points.emplace_back(true_alpha * i, true_alpha * q);
  }
  const double alpha = optimize_scale(points);
  EXPECT_NEAR(quantization_cost(points, alpha), 0.0, 1e-6);
}

TEST(OptimizeScaleTest, BeatsNaiveScalesOnNoisyData) {
  dsp::Rng rng(131);
  cvec points;
  for (int n = 0; n < 200; ++n) {
    points.push_back(rng.complex_gaussian(400.0));  // spread ~ +-40
  }
  const double alpha = optimize_scale(points);
  const double optimal_cost = quantization_cost(points, alpha);
  for (double naive : {0.5, 1.0, 2.0, 10.0, 20.0}) {
    EXPECT_LE(optimal_cost, quantization_cost(points, naive) + 1e-9)
        << "naive alpha " << naive;
  }
}

TEST(OptimizeScaleTest, MatchesDenseBruteForce) {
  dsp::Rng rng(132);
  cvec points;
  for (int n = 0; n < 50; ++n) points.push_back(rng.complex_gaussian(100.0));
  const double alpha = optimize_scale(points);
  // Brute force over a very dense grid.
  double best_cost = 1e300;
  for (double a = 0.05; a < 15.0; a += 0.001) {
    best_cost = std::min(best_cost, quantization_cost(points, a));
  }
  EXPECT_NEAR(quantization_cost(points, alpha), best_cost, 0.01 * best_cost + 1e-9);
}

TEST(OptimizeScaleTest, PaperExampleLandsNearSqrt26) {
  // The paper's simulation uses alpha = sqrt(26) ~ 5.10 for frequency points
  // with magnitudes like Table I's. Synthesize points of that scale and
  // check the optimizer lands in a sane neighborhood (2..9).
  dsp::Rng rng(133);
  cvec points;
  for (int n = 0; n < 100; ++n) {
    points.push_back(rng.complex_gaussian(650.0));  // rms ~ 25 per axis... ~Table I scale
  }
  const double alpha = optimize_scale(points);
  EXPECT_GT(alpha, 1.5);
  EXPECT_LT(alpha, 10.0);
}

TEST(OptimizeScaleTest, RejectsEmptyInput) {
  EXPECT_THROW(optimize_scale(cvec{}), ContractError);
}

}  // namespace
}  // namespace ctc::attack
