// Property-style sweeps over the attack, including a numerical check of the
// paper's Eq. (2): by Parseval, the time-domain emulation error over each
// 3.2 us FFT window equals (1/64) x the frequency-domain deviation
// (quantization error on kept bins + discarded energy elsewhere).
#include <gtest/gtest.h>

#include "attack/emulator.h"
#include "dsp/fft.h"
#include "dsp/resample.h"
#include "dsp/rng.h"
#include "dsp/stats.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace ctc::attack {
namespace {

zigbee::MacFrame random_frame(std::size_t payload_bytes, dsp::Rng& rng) {
  zigbee::MacFrame frame;
  frame.payload.resize(payload_bytes);
  for (auto& b : frame.payload) b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  return frame;
}

class AttackSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(AttackSweepTest, RandomFramesDecodeAfterEmulation) {
  dsp::Rng rng(700 + GetParam());
  zigbee::Transmitter tx;
  const zigbee::MacFrame frame = random_frame(4 + (GetParam() % 24), rng);
  WaveformEmulator emulator;
  const EmulationResult emulation = emulator.emulate(tx.transmit_frame(frame));
  const auto rx = zigbee::Receiver().receive(emulation.emulated_4mhz);
  ASSERT_TRUE(rx.frame_ok()) << "seed offset " << GetParam();
  EXPECT_EQ(rx.mac->payload, frame.payload);
}

TEST_P(AttackSweepTest, HammingDistancesStayUnderTheThreshold) {
  dsp::Rng rng(800 + GetParam());
  zigbee::Transmitter tx;
  const zigbee::MacFrame frame = random_frame(8, rng);
  WaveformEmulator emulator;
  const EmulationResult emulation = emulator.emulate(tx.transmit_frame(frame));
  const auto rx = zigbee::Receiver().receive(emulation.emulated_4mhz);
  ASSERT_TRUE(rx.phr_ok);
  for (std::size_t d : rx.hamming_distances) EXPECT_LE(d, 9u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttackSweepTest, ::testing::Range(0, 8));

TEST(AttackParsevalTest, TimeDomainErrorEqualsFrequencyDeviationOver64) {
  // Eq. (2) verified numerically on every emulated symbol of a real frame.
  dsp::Rng rng(900);
  zigbee::Transmitter tx;
  const cvec observed = tx.transmit_frame(random_frame(12, rng));
  EmulatorConfig config;
  config.alpha = std::sqrt(26.0);
  config.kept_bins = SubcarrierSelector::paper_default_bins();
  WaveformEmulator emulator(config);
  const EmulationResult result = emulator.emulate(observed);

  cvec upsampled = dsp::upsample(observed, 5);
  upsampled.resize(result.wifi_waveform_20mhz.size(), cplx{0.0, 0.0});
  const dsp::FftPlan plan(64);
  for (std::size_t s = 0; s < result.diagnostics.size(); ++s) {
    const std::size_t start = s * 80 + 16;  // useful 3.2 us window
    double time_error = 0.0;
    for (std::size_t i = 0; i < 64; ++i) {
      time_error += std::norm(upsampled[start + i] -
                              result.wifi_waveform_20mhz[start + i]);
    }
    const double frequency_deviation = result.diagnostics[s].quantization_error +
                                       result.diagnostics[s].discarded_energy;
    EXPECT_NEAR(time_error, frequency_deviation / 64.0,
                1e-6 * (1.0 + frequency_deviation / 64.0))
        << "symbol " << s;
  }
}

TEST(AttackParsevalTest, OptimizedAlphaNeverLosesToFixedAlphaOnPooledCost) {
  // The optimizer minimizes the pooled quantization cost (Eq. 4); any fixed
  // alpha must do at least as badly on the same points.
  dsp::Rng rng(901);
  zigbee::Transmitter tx;
  const cvec observed = tx.transmit_frame(random_frame(10, rng));
  const cvec upsampled = dsp::upsample(observed, 5);
  const dsp::FftPlan plan(64);
  cvec pooled;
  const auto bins = SubcarrierSelector::paper_default_bins();
  for (std::size_t start = 0; start + 80 <= upsampled.size(); start += 80) {
    const cvec spectrum =
        plan.forward(std::span<const cplx>(upsampled).subspan(start + 16, 64));
    for (std::size_t bin : bins) pooled.push_back(spectrum[bin]);
  }
  const double best_alpha = optimize_scale(pooled);
  const double best_cost = quantization_cost(pooled, best_alpha);
  dsp::Rng alpha_rng(902);
  for (int trial = 0; trial < 25; ++trial) {
    const double alpha = alpha_rng.uniform(0.1, 40.0);
    EXPECT_LE(best_cost, quantization_cost(pooled, alpha) + 1e-9)
        << "alpha " << alpha;
  }
}

TEST(AttackInvarianceTest, EmulationCommutesWithInputScaling) {
  // Scaling the observed waveform by g scales the chosen spectrum by g; with
  // a per-frame optimized alpha the emulated output scales accordingly and
  // the decoded frame is unchanged (receivers equalize gain anyway).
  dsp::Rng rng(903);
  zigbee::Transmitter tx;
  const cvec observed = tx.transmit_frame(random_frame(6, rng));
  cvec scaled(observed.size());
  for (std::size_t i = 0; i < observed.size(); ++i) scaled[i] = 3.0 * observed[i];
  WaveformEmulator emulator;
  const auto rx_base = zigbee::Receiver().receive(emulator.emulate(observed).emulated_4mhz);
  const auto rx_scaled = zigbee::Receiver().receive(emulator.emulate(scaled).emulated_4mhz);
  ASSERT_TRUE(rx_base.frame_ok());
  ASSERT_TRUE(rx_scaled.frame_ok());
  EXPECT_EQ(rx_base.psdu, rx_scaled.psdu);
}

}  // namespace
}  // namespace ctc::attack
