#include "attack/carrier_allocation.h"

#include <gtest/gtest.h>

#include "attack/emulator.h"
#include "dsp/require.h"
#include "dsp/stats.h"
#include "wifi/ofdm.h"
#include "zigbee/app.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace ctc::attack {
namespace {

TEST(CarrierPlanTest, PaperPlanShiftsBySixteenSubcarriers) {
  // ZigBee ch 17 @ 2435 MHz inside WiFi @ 2440 MHz: -5 MHz = -16 bins.
  const CarrierPlan plan;
  EXPECT_EQ(plan.subcarrier_shift(), -16);
  EXPECT_DOUBLE_EQ(plan.offset_hz(), -5.0e6);
}

TEST(CarrierPlanTest, RejectsFractionalShifts) {
  CarrierPlan plan;
  plan.zigbee_center_hz = 2435.1e6;  // 0.32 subcarriers off-grid
  EXPECT_THROW(plan.subcarrier_shift(), ContractError);
}

TEST(CarrierAllocationTest, ZigBeeBinsLandInsidePaperRange) {
  // Occupied ZigBee-centered bins {0..3, 61..63} -> logical subcarriers
  // [-19, -13], inside the paper's [-20, -8] data block.
  const CarrierPlan plan;
  cvec grid(64, cplx{0.0, 0.0});
  for (std::size_t bin : {0u, 1u, 2u, 3u, 61u, 62u, 63u}) grid[bin] = {1.0, 0.0};
  const cvec wifi_grid = allocate_to_wifi_grid(grid, plan);
  std::size_t occupied = 0;
  for (int k = -32; k <= 31; ++k) {
    if (std::abs(wifi_grid[wifi::subcarrier_to_bin(k)]) > 0.0) {
      ++occupied;
      EXPECT_GE(k, -20);
      EXPECT_LE(k, -8);
    }
  }
  EXPECT_EQ(occupied, 7u);
}

TEST(CarrierAllocationTest, ExtractInvertsAllocate) {
  const CarrierPlan plan;
  cvec grid(64, cplx{0.0, 0.0});
  for (std::size_t bin : {0u, 1u, 2u, 3u, 61u, 62u, 63u}) {
    grid[bin] = {static_cast<double>(bin), 1.0};
  }
  const cvec recovered = extract_from_wifi_grid(allocate_to_wifi_grid(grid, plan), plan);
  for (std::size_t k = 0; k < 64; ++k) {
    EXPECT_NEAR(std::abs(recovered[k] - grid[k]), 0.0, 1e-12) << "bin " << k;
  }
}

TEST(CarrierAllocationTest, PilotCollisionThrows) {
  // A plan whose shift drops a ZigBee bin on a pilot must be rejected:
  // shift -14 maps bin 63 (logical -1) onto -15... bin 0 onto -14; try a
  // shift that hits -21: bin 61 (logical -3) with shift -18.
  CarrierPlan plan;
  plan.zigbee_center_hz = 2440.0e6 - 18 * 0.3125e6;
  cvec grid(64, cplx{0.0, 0.0});
  grid[61] = {1.0, 0.0};  // logical -3, lands on -21 (pilot)
  EXPECT_THROW(allocate_to_wifi_grid(grid, plan), ContractError);
}

TEST(CarrierAllocationTest, DcCollisionThrows) {
  CarrierPlan plan;
  plan.zigbee_center_hz = plan.wifi_center_hz;  // shift 0: bin 0 -> DC
  cvec grid(64, cplx{0.0, 0.0});
  grid[0] = {1.0, 0.0};
  EXPECT_THROW(allocate_to_wifi_grid(grid, plan), ContractError);
}

TEST(CarrierAllocationTest, OutOfBandCollisionThrows) {
  CarrierPlan plan;
  plan.zigbee_center_hz = 2440.0e6 - 28 * 0.3125e6;  // shift -28: bin 61 -> -31
  cvec grid(64, cplx{0.0, 0.0});
  grid[61] = {1.0, 0.0};
  EXPECT_THROW(allocate_to_wifi_grid(grid, plan), ContractError);
}

TEST(CarrierAllocationTest, FullRfPathDeliversDecodableFrame) {
  // End-to-end with the real center frequencies: emulate -> allocate onto
  // the WiFi grid -> modulate 20 MHz WiFi baseband -> ZigBee front end
  // (mix +5 MHz, filter, decimate) -> decode.
  zigbee::Transmitter tx;
  const zigbee::MacFrame frame = zigbee::make_text_frame(5, 1);
  const cvec observed = tx.transmit_frame(frame);

  WaveformEmulator emulator;
  const EmulationResult emulation = emulator.emulate(observed);

  const CarrierPlan plan;
  cvec wifi_baseband;
  for (const cvec& grid : emulation.symbol_grids) {
    const cvec wifi_grid = allocate_to_wifi_grid(grid, plan);
    const cvec symbol = wifi::grid_to_time(wifi_grid);
    wifi_baseband.insert(wifi_baseband.end(), symbol.begin(), symbol.end());
  }

  cvec zigbee_baseband = wifi_band_to_zigbee_baseband(wifi_baseband, plan);
  zigbee_baseband.resize(observed.size());
  const auto rx = zigbee::Receiver().receive(zigbee_baseband);
  ASSERT_TRUE(rx.frame_ok());
  EXPECT_EQ(zigbee::text_of(*rx.mac), "00005");
}

TEST(CarrierAllocationTest, FrontEndRejectsSizeMismatch) {
  const CarrierPlan plan;
  EXPECT_THROW(allocate_to_wifi_grid(cvec(63), plan), ContractError);
  EXPECT_THROW(extract_from_wifi_grid(cvec(65), plan), ContractError);
}

}  // namespace
}  // namespace ctc::attack
