#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/impairments.h"
#include "dsp/rng.h"
#include "wifi/ofdm.h"
#include "wifi/receiver.h"
#include "wifi/transmitter.h"

namespace ctc::wifi {
namespace {

bytevec random_psdu(std::size_t n, std::uint64_t seed) {
  dsp::Rng rng(seed);
  bytevec psdu(n);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  return psdu;
}

class WifiMcsTest : public ::testing::TestWithParam<Mcs> {};

TEST_P(WifiMcsTest, CleanRoundTrip) {
  WifiTxConfig tx_config;
  tx_config.mcs = GetParam();
  WifiTransmitter tx(tx_config);
  const bytevec psdu = random_psdu(57, 120);
  const cvec wave = tx.transmit(psdu);

  WifiRxConfig rx_config;
  rx_config.mcs = GetParam();
  const WifiReceiveResult result = WifiReceiver(rx_config).receive(wave, psdu.size());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.psdu, psdu);
}

TEST_P(WifiMcsTest, RoundTripUnderGainAndPhase) {
  WifiTxConfig tx_config;
  tx_config.mcs = GetParam();
  WifiTransmitter tx(tx_config);
  const bytevec psdu = random_psdu(30, 121);
  cvec wave = tx.transmit(psdu);
  wave = channel::apply_gain(channel::apply_phase_offset(wave, 1.0), 0.4);

  WifiRxConfig rx_config;
  rx_config.mcs = GetParam();
  const WifiReceiveResult result = WifiReceiver(rx_config).receive(wave, psdu.size());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.psdu, psdu);  // LTF channel estimation absorbs gain/phase
}

TEST_P(WifiMcsTest, SymbolCountMatchesRateFormula) {
  WifiTxConfig tx_config;
  tx_config.mcs = GetParam();
  WifiTransmitter tx(tx_config);
  const std::size_t psdu_bytes = 100;
  const std::size_t bits = 16 + 8 * psdu_bytes + 6;
  const std::size_t dbps = data_bits_per_symbol(GetParam());
  EXPECT_EQ(tx.num_data_symbols(psdu_bytes), (bits + dbps - 1) / dbps);
  // Waveform length = preamble + symbols * 80.
  const cvec wave = tx.transmit(random_psdu(psdu_bytes, 122));
  EXPECT_EQ(wave.size(), 320 + tx.num_data_symbols(psdu_bytes) * kSymbolLength);
}

INSTANTIATE_TEST_SUITE_P(AllRates, WifiMcsTest,
                         ::testing::Values(Mcs::mbps6, Mcs::mbps9, Mcs::mbps12,
                                           Mcs::mbps18, Mcs::mbps24, Mcs::mbps36,
                                           Mcs::mbps48, Mcs::mbps54));

TEST(WifiRateTableTest, StandardBitCounts) {
  EXPECT_EQ(data_bits_per_symbol(Mcs::mbps6), 24u);
  EXPECT_EQ(data_bits_per_symbol(Mcs::mbps9), 36u);
  EXPECT_EQ(data_bits_per_symbol(Mcs::mbps12), 48u);
  EXPECT_EQ(data_bits_per_symbol(Mcs::mbps18), 72u);
  EXPECT_EQ(data_bits_per_symbol(Mcs::mbps24), 96u);
  EXPECT_EQ(data_bits_per_symbol(Mcs::mbps36), 144u);
  EXPECT_EQ(data_bits_per_symbol(Mcs::mbps48), 192u);
  EXPECT_EQ(data_bits_per_symbol(Mcs::mbps54), 216u);
  EXPECT_EQ(coded_bits_per_symbol(Mcs::mbps54), 288u);
}

TEST(WifiLinkTest, RobustRateSurvivesNoise) {
  WifiTxConfig tx_config;
  tx_config.mcs = Mcs::mbps6;  // BPSK 1/2
  WifiTransmitter tx(tx_config);
  const bytevec psdu = random_psdu(40, 123);
  const cvec wave = tx.transmit(psdu);
  dsp::Rng rng(124);
  WifiRxConfig rx_config;
  rx_config.mcs = Mcs::mbps6;
  WifiReceiver rx(rx_config);
  int ok = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const cvec noisy = channel::add_awgn(wave, 10.0, rng);
    const auto result = rx.receive(noisy, psdu.size());
    if (result.ok && result.psdu == psdu) ++ok;
  }
  EXPECT_EQ(ok, 5);
}

TEST(WifiLinkTest, TooShortCaptureFlagsFailure) {
  WifiTransmitter tx;
  const bytevec psdu = random_psdu(20, 125);
  cvec wave = tx.transmit(psdu);
  wave.resize(wave.size() - 80);
  const auto result = WifiReceiver().receive(wave, psdu.size());
  EXPECT_FALSE(result.ok);
}

TEST(WifiLinkTest, MismatchedScramblerSeedCorruptsPayload) {
  WifiTxConfig tx_config;
  tx_config.scrambler_seed = 0x5D;
  WifiTransmitter tx(tx_config);
  const bytevec psdu = random_psdu(20, 126);
  const cvec wave = tx.transmit(psdu);
  WifiRxConfig rx_config;
  rx_config.scrambler_seed = 0x2B;
  const auto result = WifiReceiver(rx_config).receive(wave, psdu.size());
  ASSERT_TRUE(result.ok);      // framing is intact...
  EXPECT_NE(result.psdu, psdu);  // ...but the payload is garbled
}

}  // namespace
}  // namespace ctc::wifi
