#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/impairments.h"
#include "dsp/require.h"
#include "dsp/rng.h"
#include "wifi/ofdm.h"
#include "wifi/receiver.h"
#include "wifi/signal_field.h"
#include "wifi/sync.h"
#include "wifi/transmitter.h"

namespace ctc::wifi {
namespace {

bytevec random_psdu(std::size_t n, std::uint64_t seed) {
  dsp::Rng rng(seed);
  bytevec psdu(n);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  return psdu;
}

class SignalFieldMcsTest : public ::testing::TestWithParam<Mcs> {};

TEST_P(SignalFieldMcsTest, BitRoundTrip) {
  SignalField field;
  field.mcs = GetParam();
  field.length_bytes = 1234;
  const auto decoded = decode_signal_bits(encode_signal_bits(field));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->mcs, GetParam());
  EXPECT_EQ(decoded->length_bytes, 1234u);
}

TEST_P(SignalFieldMcsTest, SymbolRoundTrip) {
  SignalField field;
  field.mcs = GetParam();
  field.length_bytes = 77;
  const cvec symbol = modulate_signal_symbol(field);
  ASSERT_EQ(symbol.size(), kSymbolLength);
  const cvec grid = time_to_grid(symbol);
  const auto decoded = demodulate_signal_grid(grid);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->mcs, GetParam());
  EXPECT_EQ(decoded->length_bytes, 77u);
}

INSTANTIATE_TEST_SUITE_P(AllRates, SignalFieldMcsTest,
                         ::testing::Values(Mcs::mbps6, Mcs::mbps9, Mcs::mbps12,
                                           Mcs::mbps18, Mcs::mbps24, Mcs::mbps36,
                                           Mcs::mbps48, Mcs::mbps54));

TEST(SignalFieldTest, RateCodesMatchStandardTable) {
  EXPECT_EQ(rate_code(Mcs::mbps6), 0b1101);
  EXPECT_EQ(rate_code(Mcs::mbps54), 0b0011);
  EXPECT_EQ(mcs_from_rate_code(0b1101), Mcs::mbps6);
  EXPECT_FALSE(mcs_from_rate_code(0b0000).has_value());
}

TEST(SignalFieldTest, ParityAndReservedChecks) {
  SignalField field;
  field.length_bytes = 100;
  bitvec bits = encode_signal_bits(field);
  bits[17] ^= 1;  // break parity
  EXPECT_FALSE(decode_signal_bits(bits).has_value());
  bits[17] ^= 1;
  bits[4] = 1;  // reserved bit must be 0 (also breaks parity; set another)
  bits[17] ^= 1;
  EXPECT_FALSE(decode_signal_bits(bits).has_value());
}

TEST(SignalFieldTest, RejectsDegenerateLengths) {
  SignalField field;
  field.length_bytes = 0;
  EXPECT_THROW(encode_signal_bits(field), ContractError);
  field.length_bytes = 4096;
  EXPECT_THROW(encode_signal_bits(field), ContractError);
}

TEST(WifiSyncTest, FindsFrameStartInPaddedCapture) {
  WifiTxConfig tx_config;
  tx_config.include_signal_field = true;
  WifiTransmitter tx(tx_config);
  const bytevec psdu = random_psdu(40, 240);
  const cvec frame = tx.transmit(psdu);
  dsp::Rng rng(241);
  for (std::size_t pad : {0u, 100u, 333u}) {
    cvec capture(pad);
    for (auto& x : capture) x = rng.complex_gaussian(1e-4);
    capture.insert(capture.end(), frame.begin(), frame.end());
    const auto sync = synchronize_wifi(capture);
    ASSERT_TRUE(sync.has_value()) << "pad=" << pad;
    EXPECT_EQ(sync->frame_start, pad) << "pad=" << pad;
    EXPECT_NEAR(sync->cfo_hz, 0.0, 500.0);
  }
}

TEST(WifiSyncTest, EstimatesCfoAccurately) {
  WifiTxConfig tx_config;
  tx_config.include_signal_field = true;
  WifiTransmitter tx(tx_config);
  const cvec frame = tx.transmit(random_psdu(30, 242));
  for (double cfo : {-80e3, -5e3, 12e3, 150e3}) {
    const cvec offset_frame = channel::apply_cfo(frame, cfo, 20.0e6);
    const auto sync = synchronize_wifi(offset_frame);
    ASSERT_TRUE(sync.has_value()) << "cfo=" << cfo;
    EXPECT_NEAR(sync->cfo_hz, cfo, 300.0) << "cfo=" << cfo;
  }
}

TEST(WifiSyncTest, RejectsNoiseOnlyCapture) {
  dsp::Rng rng(243);
  cvec noise(4000);
  for (auto& x : noise) x = rng.complex_gaussian(1.0);
  EXPECT_FALSE(synchronize_wifi(noise).has_value());
}

TEST(WifiSyncTest, RejectsTooShortCapture) {
  EXPECT_FALSE(synchronize_wifi(cvec(100)).has_value());
}

TEST(WifiAutoReceiveTest, FullChainDecodesRateAndPayload) {
  for (Mcs mcs : {Mcs::mbps6, Mcs::mbps24, Mcs::mbps54}) {
    WifiTxConfig tx_config;
    tx_config.mcs = mcs;
    tx_config.include_signal_field = true;
    WifiTransmitter tx(tx_config);
    const bytevec psdu = random_psdu(64, 244);
    const cvec frame = tx.transmit(psdu);

    dsp::Rng rng(245);
    cvec capture(217);
    for (auto& x : capture) x = rng.complex_gaussian(1e-4);
    capture.insert(capture.end(), frame.begin(), frame.end());

    const auto result = WifiReceiver().receive_auto(capture);
    ASSERT_TRUE(result.ok) << "mcs=" << static_cast<int>(mcs);
    EXPECT_EQ(result.signal.mcs, mcs);
    EXPECT_EQ(result.signal.length_bytes, psdu.size());
    EXPECT_EQ(result.psdu, psdu);
  }
}

TEST(WifiAutoReceiveTest, SurvivesCfoPhaseGainAndNoise) {
  WifiTxConfig tx_config;
  tx_config.mcs = Mcs::mbps12;
  tx_config.include_signal_field = true;
  WifiTransmitter tx(tx_config);
  const bytevec psdu = random_psdu(48, 246);
  cvec frame = tx.transmit(psdu);
  frame = channel::apply_cfo(frame, 37e3, 20.0e6, 1.1);
  frame = channel::apply_gain(frame, 0.4);
  dsp::Rng rng(247);
  cvec capture(150, cplx{0.0, 0.0});
  capture.insert(capture.end(), frame.begin(), frame.end());
  capture = channel::add_awgn(capture, 25.0, rng);

  const auto result = WifiReceiver().receive_auto(capture);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.psdu, psdu);
  EXPECT_NEAR(result.sync.cfo_hz, 37e3, 1e3);
}

TEST(WifiAutoReceiveTest, TruncatedPayloadFlagsFailure) {
  WifiTxConfig tx_config;
  tx_config.include_signal_field = true;
  WifiTransmitter tx(tx_config);
  const bytevec psdu = random_psdu(100, 248);
  cvec frame = tx.transmit(psdu);
  frame.resize(frame.size() - 240);  // drop trailing data symbols
  const auto result = WifiReceiver().receive_auto(frame);
  EXPECT_FALSE(result.ok);
}

TEST(WifiSignalFrameTest, KnownRateReceiverStillWorksWithSignalField) {
  WifiTxConfig tx_config;
  tx_config.mcs = Mcs::mbps36;
  tx_config.include_signal_field = true;
  WifiTransmitter tx(tx_config);
  const bytevec psdu = random_psdu(25, 249);
  const cvec frame = tx.transmit(psdu);
  WifiRxConfig rx_config;
  rx_config.mcs = Mcs::mbps36;
  rx_config.expect_signal_field = true;
  const auto result = WifiReceiver(rx_config).receive(frame, psdu.size());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.psdu, psdu);
}

}  // namespace
}  // namespace ctc::wifi
