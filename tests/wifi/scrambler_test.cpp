#include "wifi/scrambler.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"

namespace ctc::wifi {
namespace {

bitvec random_bits(std::size_t n, std::uint64_t seed) {
  dsp::Rng rng(seed);
  bitvec bits(n);
  for (auto& b : bits) b = rng.bit();
  return bits;
}

TEST(ScramblerTest, ScrambleDescrambleRoundTrip) {
  const bitvec data = random_bits(500, 70);
  Scrambler scramble(0x5D);
  Scrambler descramble(0x5D);
  EXPECT_EQ(descramble.process(scramble.process(data)), data);
}

TEST(ScramblerTest, OutputDiffersFromInput) {
  const bitvec zeros(128, 0);
  Scrambler scrambler(0x5D);
  const bitvec out = scrambler.process(zeros);
  std::size_t ones = 0;
  for (auto b : out) ones += b;
  EXPECT_GT(ones, 40u);
  EXPECT_LT(ones, 90u);
}

TEST(ScramblerTest, PrbsPeriodIs127) {
  // Scrambling all-zero input exposes the raw PRBS; x^7+x^4+1 is maximal
  // length, so the sequence repeats with period 127.
  const bitvec zeros(254, 0);
  Scrambler scrambler(0x11);
  const bitvec prbs = scrambler.process(zeros);
  for (std::size_t i = 0; i < 127; ++i) EXPECT_EQ(prbs[i], prbs[i + 127]);
  // ...and not with any shorter period that divides nothing (check a few).
  bool identical_63 = true;
  for (std::size_t i = 0; i < 63; ++i) identical_63 &= prbs[i] == prbs[i + 63];
  EXPECT_FALSE(identical_63);
}

TEST(ScramblerTest, PrbsBalancedOverOnePeriod) {
  const bitvec zeros(127, 0);
  Scrambler scrambler(0x7F);
  const bitvec prbs = scrambler.process(zeros);
  std::size_t ones = 0;
  for (auto b : prbs) ones += b;
  EXPECT_EQ(ones, 64u);  // maximal-length LFSR property: 2^6 ones
}

TEST(ScramblerTest, DifferentSeedsShiftTheSequence) {
  const bitvec zeros(64, 0);
  Scrambler a(0x5D);
  Scrambler b(0x2A);
  EXPECT_NE(a.process(zeros), b.process(zeros));
}

TEST(ScramblerTest, ResetRestartsSequence) {
  const bitvec data = random_bits(64, 71);
  Scrambler scrambler(0x33);
  const bitvec first = scrambler.process(data);
  scrambler.reset(0x33);
  EXPECT_EQ(scrambler.process(data), first);
}

TEST(ScramblerTest, RejectsZeroSeed) {
  EXPECT_THROW(Scrambler(0x00), ContractError);
  EXPECT_THROW(Scrambler(0x80), ContractError);  // only 7 state bits
}

}  // namespace
}  // namespace ctc::wifi
