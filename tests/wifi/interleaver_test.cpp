#include "wifi/interleaver.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"

namespace ctc::wifi {
namespace {

struct InterleaverParams {
  std::size_t cbps;
  std::size_t bpsc;
};

class InterleaverTest : public ::testing::TestWithParam<InterleaverParams> {};

TEST_P(InterleaverTest, DeinterleaveInvertsInterleave) {
  const auto [cbps, bpsc] = GetParam();
  dsp::Rng rng(90 + cbps);
  bitvec bits(cbps);
  for (auto& b : bits) b = rng.bit();
  const bitvec scrambled = interleave(bits, cbps, bpsc);
  EXPECT_EQ(deinterleave(scrambled, cbps, bpsc), bits);
}

TEST_P(InterleaverTest, IsAPermutation) {
  const auto [cbps, bpsc] = GetParam();
  // Interleave a one-hot vector for every position: output must be one-hot,
  // and every output position hit exactly once.
  std::vector<bool> hit(cbps, false);
  for (std::size_t k = 0; k < cbps; ++k) {
    bitvec bits(cbps, 0);
    bits[k] = 1;
    const bitvec out = interleave(bits, cbps, bpsc);
    std::size_t ones = 0;
    std::size_t position = 0;
    for (std::size_t j = 0; j < cbps; ++j) {
      if (out[j]) {
        ++ones;
        position = j;
      }
    }
    EXPECT_EQ(ones, 1u);
    EXPECT_FALSE(hit[position]);
    hit[position] = true;
  }
}

TEST_P(InterleaverTest, AdjacentCodedBitsLandFarApart) {
  // The point of the interleaver: adjacent coded bits go to nonadjacent
  // subcarriers (separation >= cbps/16 positions).
  const auto [cbps, bpsc] = GetParam();
  auto position_of = [&](std::size_t k) {
    bitvec bits(cbps, 0);
    bits[k] = 1;
    const bitvec out = interleave(bits, cbps, bpsc);
    for (std::size_t j = 0; j < cbps; ++j) {
      if (out[j]) return j;
    }
    return cbps;
  };
  const std::size_t subcarrier_span = bpsc;  // bits within one subcarrier
  for (std::size_t k = 0; k + 1 < 32; ++k) {
    const auto a = position_of(k) / subcarrier_span;
    const auto b = position_of(k + 1) / subcarrier_span;
    const std::size_t distance = a > b ? a - b : b - a;
    EXPECT_GE(distance, 2u) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, InterleaverTest,
    ::testing::Values(InterleaverParams{48, 1},    // BPSK
                      InterleaverParams{96, 2},    // QPSK
                      InterleaverParams{192, 4},   // 16-QAM
                      InterleaverParams{288, 6})); // 64-QAM

TEST(InterleaverErrorTest, RejectsSizeMismatch) {
  bitvec bits(96, 0);
  EXPECT_THROW(interleave(bits, 48, 1), ContractError);
  EXPECT_THROW(interleave(bits, 96, 3), ContractError);
  EXPECT_THROW(deinterleave(bits, 90, 2), ContractError);
}

TEST(InterleaverKnownValueTest, FirstBitGoesToPositionZero) {
  // k = 0: i = 0, j = 0 for every mode.
  bitvec bits(288, 0);
  bits[0] = 1;
  const bitvec out = interleave(bits, 288, 6);
  EXPECT_EQ(out[0], 1);
}

TEST(InterleaverKnownValueTest, SecondBitPosition64Qam) {
  // 802.11 64-QAM: k=1 -> i = (288/16)*1 = 18; s = 3;
  // j = 3*6 + (18 + 288 - floor(16*18/288)) % 3 = 18 + (305 % 3) = 18 + 2 = 20.
  bitvec bits(288, 0);
  bits[1] = 1;
  const bitvec out = interleave(bits, 288, 6);
  EXPECT_EQ(out[20], 1);
}

}  // namespace
}  // namespace ctc::wifi
