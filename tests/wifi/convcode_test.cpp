#include "wifi/convcode.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"

namespace ctc::wifi {
namespace {

bitvec random_bits(std::size_t n, std::uint64_t seed) {
  dsp::Rng rng(seed);
  bitvec bits(n);
  for (auto& b : bits) b = rng.bit();
  return bits;
}

TEST(ConvCodeTest, RateHalfDoublesLength) {
  const bitvec data = random_bits(100, 80);
  EXPECT_EQ(convolutional_encode(data, CodeRate::half).size(), 200u);
}

TEST(ConvCodeTest, PuncturedLengths) {
  const bitvec data = random_bits(96, 81);
  EXPECT_EQ(convolutional_encode(data, CodeRate::two_thirds).size(), 144u);
  EXPECT_EQ(convolutional_encode(data, CodeRate::three_quarters).size(), 128u);
}

TEST(ConvCodeTest, CodedBitsPerDataBit) {
  EXPECT_DOUBLE_EQ(coded_bits_per_data_bit(CodeRate::half), 2.0);
  EXPECT_DOUBLE_EQ(coded_bits_per_data_bit(CodeRate::two_thirds), 1.5);
  EXPECT_NEAR(coded_bits_per_data_bit(CodeRate::three_quarters), 4.0 / 3.0, 1e-12);
}

TEST(ConvCodeTest, KnownImpulseResponse) {
  // A single 1 followed by zeros emits the generator taps:
  // g0 = 133o = 1011011, g1 = 171o = 1111001, interleaved A B A B ...
  bitvec data(7, 0);
  data[0] = 1;
  const bitvec coded = convolutional_encode(data, CodeRate::half);
  const bitvec expected_a = {1, 0, 1, 1, 0, 1, 1};
  const bitvec expected_b = {1, 1, 1, 1, 0, 0, 1};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(coded[2 * i], expected_a[i]) << "A" << i;
    EXPECT_EQ(coded[2 * i + 1], expected_b[i]) << "B" << i;
  }
}

class ConvRateTest : public ::testing::TestWithParam<CodeRate> {};

TEST_P(ConvRateTest, CleanRoundTrip) {
  for (std::size_t n : {12u, 48u, 96u, 258u}) {
    const bitvec data = random_bits(n, 82 + n);
    const bitvec coded = convolutional_encode(data, GetParam());
    EXPECT_EQ(viterbi_decode(coded, GetParam()), data) << "n=" << n;
  }
}

TEST_P(ConvRateTest, CorrectsScatteredErrors) {
  const bitvec data = random_bits(200, 83);
  bitvec coded = convolutional_encode(data, GetParam());
  // Flip well-separated coded bits; the K=7 code recovers them all.
  for (std::size_t i = 20; i + 40 < coded.size(); i += 40) coded[i] ^= 1;
  EXPECT_EQ(viterbi_decode(coded, GetParam()), data);
}

TEST_P(ConvRateTest, BurstBeyondMemoryCausesErrorsOnlyLocally) {
  const bitvec data = random_bits(300, 84);
  bitvec coded = convolutional_encode(data, GetParam());
  for (std::size_t i = 100; i < 120; ++i) coded[i] ^= 1;  // dense burst
  const bitvec decoded = viterbi_decode(coded, GetParam());
  ASSERT_EQ(decoded.size(), data.size());
  // Head and tail away from the burst must be intact.
  for (std::size_t i = 0; i < 30; ++i) EXPECT_EQ(decoded[i], data[i]);
  for (std::size_t i = 250; i < 300; ++i) EXPECT_EQ(decoded[i], data[i]);
}

INSTANTIATE_TEST_SUITE_P(Rates, ConvRateTest,
                         ::testing::Values(CodeRate::half, CodeRate::two_thirds,
                                           CodeRate::three_quarters));

TEST(ViterbiTest, EmptyInputGivesEmptyOutput) {
  EXPECT_TRUE(viterbi_decode(bitvec{}, CodeRate::half).empty());
  EXPECT_TRUE(convolutional_encode(bitvec{}, CodeRate::half).empty());
}

TEST(ViterbiTest, MatchesEncoderForSingleBit) {
  for (std::uint8_t bit : {0, 1}) {
    const bitvec data = {bit};
    const bitvec coded = convolutional_encode(data, CodeRate::half);
    EXPECT_EQ(viterbi_decode(coded, CodeRate::half), data);
  }
}

}  // namespace
}  // namespace ctc::wifi
