#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"
#include "wifi/convcode.h"
#include "wifi/qam.h"

namespace ctc::wifi {
namespace {

bitvec random_bits(std::size_t n, std::uint64_t seed) {
  dsp::Rng rng(seed);
  bitvec bits(n);
  for (auto& b : bits) b = rng.bit();
  return bits;
}

rvec hard_to_llr(std::span<const std::uint8_t> coded) {
  rvec llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -1.0 : 1.0;  // llr > 0 <=> bit 0
  }
  return llrs;
}

class SoftViterbiRateTest : public ::testing::TestWithParam<CodeRate> {};

TEST_P(SoftViterbiRateTest, ReducesToHardDecodingOnUnitLlrs) {
  const bitvec data = random_bits(240, 1300);
  const bitvec coded = convolutional_encode(data, GetParam());
  EXPECT_EQ(viterbi_decode_soft(hard_to_llr(coded), GetParam()), data);
}

TEST_P(SoftViterbiRateTest, ConfidenceWeightingBeatsHardDecisions) {
  // Construct a case where two low-confidence bits are wrong but flagged as
  // unreliable: soft decoding recovers, hard decoding may not be forced to
  // — so we check soft gets it right even with many weak erroneous bits.
  const bitvec data = random_bits(300, 1301);
  const bitvec coded = convolutional_encode(data, GetParam());
  rvec llrs = hard_to_llr(coded);
  dsp::Rng rng(1302);
  // Flip 10% of positions but mark them weak (|llr| = 0.05).
  for (std::size_t i = 0; i < llrs.size(); i += 10) {
    llrs[i] = -0.05 * (coded[i] ? -1.0 : 1.0);
  }
  EXPECT_EQ(viterbi_decode_soft(llrs, GetParam()), data);
}

INSTANTIATE_TEST_SUITE_P(Rates, SoftViterbiRateTest,
                         ::testing::Values(CodeRate::half, CodeRate::two_thirds,
                                           CodeRate::three_quarters));

TEST(SoftViterbiTest, SoftOutperformsHardUnderGaussianNoise) {
  // BPSK over AWGN at an SNR where hard decisions start failing: count
  // decoding errors across trials; soft must do no worse, usually better.
  dsp::Rng rng(1303);
  const CodeRate rate = CodeRate::half;
  std::size_t hard_errors = 0;
  std::size_t soft_errors = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const bitvec data = random_bits(120, 1400 + trial);
    const bitvec coded = convolutional_encode(data, rate);
    // BPSK symbols +1 (bit 0) / -1 (bit 1) with noise sigma = 0.9.
    bitvec hard(coded.size());
    rvec llrs(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const double symbol = (coded[i] ? -1.0 : 1.0) + 0.9 * rng.gaussian();
      hard[i] = symbol < 0.0 ? 1 : 0;
      llrs[i] = 2.0 * symbol / (0.9 * 0.9);
    }
    const bitvec hard_decoded = viterbi_decode(hard, rate);
    const bitvec soft_decoded = viterbi_decode_soft(llrs, rate);
    for (std::size_t i = 0; i < data.size(); ++i) {
      hard_errors += hard_decoded[i] != data[i];
      soft_errors += soft_decoded[i] != data[i];
    }
  }
  EXPECT_LT(soft_errors, hard_errors);
}

TEST(SoftDemapTest, CleanPointsGiveConfidentCorrectSigns) {
  for (Modulation mod : {Modulation::bpsk, Modulation::qpsk, Modulation::qam16,
                         Modulation::qam64}) {
    const std::size_t bpsc = bits_per_subcarrier(mod);
    const bitvec bits = random_bits(bpsc * 40, 1500 + bpsc);
    const cvec points = qam_map(bits, mod);
    const rvec llrs = qam_demap_soft(points, mod, 0.1);
    ASSERT_EQ(llrs.size(), bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) {
        EXPECT_LT(llrs[i], 0.0) << "i=" << i;
      } else {
        EXPECT_GT(llrs[i], 0.0) << "i=" << i;
      }
    }
  }
}

TEST(SoftDemapTest, LlrMagnitudeTracksDistanceFromBoundary) {
  // A point near the BPSK decision boundary is less confident than one far
  // from it (802.11 BPSK: bit 0 -> -1, bit 1 -> +1).
  const cvec points = {{-0.05, 0.0}, {-1.0, 0.0}};
  const rvec llrs = qam_demap_soft(points, Modulation::bpsk, 0.5);
  EXPECT_GT(llrs[1], llrs[0]);
  EXPECT_GT(llrs[0], 0.0);
}

TEST(SoftDemapTest, NoiseVarianceScalesConfidence) {
  const cvec points = {{0.7, 0.0}};
  const rvec confident = qam_demap_soft(points, Modulation::bpsk, 0.1);
  const rvec hedged = qam_demap_soft(points, Modulation::bpsk, 1.0);
  EXPECT_NEAR(confident[0] / hedged[0], 10.0, 1e-9);
  EXPECT_THROW(qam_demap_soft(points, Modulation::bpsk, 0.0), ContractError);
}

TEST(SoftDemapEndToEndTest, SoftChainDecodesNoisy64Qam) {
  dsp::Rng rng(1600);
  const CodeRate rate = CodeRate::three_quarters;
  const bitvec data = random_bits(216, 1601);
  const bitvec coded = convolutional_encode(data, rate);
  // Pad to whole 64-QAM symbols.
  bitvec padded = coded;
  while (padded.size() % 6 != 0) padded.push_back(0);
  cvec points = qam_map(padded, Modulation::qam64);
  const double noise_variance = 0.01;
  for (auto& p : points) p += rng.complex_gaussian(noise_variance);
  rvec llrs = qam_demap_soft(points, Modulation::qam64, noise_variance);
  llrs.resize(coded.size());
  EXPECT_EQ(viterbi_decode_soft(llrs, rate), data);
}

}  // namespace
}  // namespace ctc::wifi
