#include "wifi/ofdm.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"
#include "dsp/stats.h"

namespace ctc::wifi {
namespace {

TEST(OfdmLayoutTest, DataSubcarrierIndexesMatchStandard) {
  const auto& indexes = data_subcarrier_indexes();
  ASSERT_EQ(indexes.size(), 48u);
  EXPECT_EQ(indexes.front(), -26);
  EXPECT_EQ(indexes.back(), 26);
  for (int pilot : {-21, -7, 7, 21}) {
    for (int index : indexes) EXPECT_NE(index, pilot);
  }
  for (int index : indexes) EXPECT_NE(index, 0);
  // Ascending, within [-26, 26].
  for (std::size_t i = 1; i < indexes.size(); ++i) {
    EXPECT_LT(indexes[i - 1], indexes[i]);
  }
}

TEST(OfdmLayoutTest, SubcarrierToBinWrapsNegatives) {
  EXPECT_EQ(subcarrier_to_bin(0), 0u);
  EXPECT_EQ(subcarrier_to_bin(1), 1u);
  EXPECT_EQ(subcarrier_to_bin(26), 26u);
  EXPECT_EQ(subcarrier_to_bin(-1), 63u);
  EXPECT_EQ(subcarrier_to_bin(-26), 38u);
  EXPECT_EQ(subcarrier_to_bin(-32), 32u);
  EXPECT_THROW(subcarrier_to_bin(32), ContractError);
  EXPECT_THROW(subcarrier_to_bin(-33), ContractError);
}

TEST(OfdmLayoutTest, PilotPolarityPeriod127) {
  for (std::size_t n = 0; n < 127; ++n) {
    EXPECT_EQ(pilot_polarity(n), pilot_polarity(n + 127));
    EXPECT_TRUE(pilot_polarity(n) == 1.0 || pilot_polarity(n) == -1.0);
  }
  // First values of the standard sequence.
  EXPECT_EQ(pilot_polarity(0), 1.0);
  EXPECT_EQ(pilot_polarity(4), -1.0);
}

TEST(OfdmGridTest, AssembleplacesDataPilotsAndNulls) {
  cvec data(kNumDataSubcarriers);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {static_cast<double>(i + 1), 0.0};
  }
  const cvec grid = assemble_symbol_grid(data, 0);
  ASSERT_EQ(grid.size(), kNumSubcarriers);
  // DC and the guard band are null.
  EXPECT_EQ(grid[0], (cplx{0.0, 0.0}));
  for (int k = 27; k <= 37; ++k) EXPECT_EQ(grid[k], (cplx{0.0, 0.0})) << k;
  // Pilots at +-7, +-21 with polarity +1 at symbol 0: (1,1,1,-1).
  EXPECT_EQ(grid[subcarrier_to_bin(-21)], (cplx{1.0, 0.0}));
  EXPECT_EQ(grid[subcarrier_to_bin(-7)], (cplx{1.0, 0.0}));
  EXPECT_EQ(grid[subcarrier_to_bin(7)], (cplx{1.0, 0.0}));
  EXPECT_EQ(grid[subcarrier_to_bin(21)], (cplx{-1.0, 0.0}));
  // Data point 0 lands on subcarrier -26.
  EXPECT_EQ(grid[subcarrier_to_bin(-26)], (cplx{1.0, 0.0}));
  EXPECT_EQ(grid[subcarrier_to_bin(26)], (cplx{48.0, 0.0}));
  EXPECT_THROW(assemble_symbol_grid(cvec(47), 0), ContractError);
}

TEST(OfdmTimeTest, CyclicPrefixIsACopyOfTheTail) {
  dsp::Rng rng(110);
  cvec grid(kNumSubcarriers);
  for (auto& x : grid) x = rng.complex_gaussian(1.0);
  const cvec symbol = grid_to_time(grid);
  ASSERT_EQ(symbol.size(), kSymbolLength);
  for (std::size_t i = 0; i < kCyclicPrefixLength; ++i) {
    EXPECT_NEAR(std::abs(symbol[i] - symbol[kNumSubcarriers + i]), 0.0, 1e-12);
  }
}

TEST(OfdmTimeTest, GridTimeRoundTrip) {
  dsp::Rng rng(111);
  cvec grid(kNumSubcarriers);
  for (auto& x : grid) x = rng.complex_gaussian(1.0);
  const cvec recovered = time_to_grid(grid_to_time(grid));
  for (std::size_t k = 0; k < kNumSubcarriers; ++k) {
    EXPECT_NEAR(std::abs(recovered[k] - grid[k]), 0.0, 1e-9);
  }
  EXPECT_THROW(time_to_grid(cvec(79)), ContractError);
  EXPECT_THROW(grid_to_time(cvec(63)), ContractError);
}

TEST(PreambleTest, StfIs16SamplePeriodic) {
  const cvec stf = make_stf();
  ASSERT_EQ(stf.size(), 160u);
  for (std::size_t i = 0; i + 16 < stf.size(); ++i) {
    EXPECT_NEAR(std::abs(stf[i] - stf[i + 16]), 0.0, 1e-12);
  }
}

TEST(PreambleTest, LtfRepeatsItsSymbol) {
  const cvec ltf = make_ltf();
  ASSERT_EQ(ltf.size(), 160u);
  // Two identical 64-sample symbols after the 32-sample long CP.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(ltf[32 + i] - ltf[96 + i]), 0.0, 1e-12);
  }
  // The long CP is a copy of the symbol tail.
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(std::abs(ltf[i] - ltf[64 + i]), 0.0, 1e-12);
  }
}

TEST(PreambleTest, LtfSequenceIsBipolarWithDcNull) {
  const auto& sequence = ltf_sequence();
  EXPECT_EQ(sequence[26], 0.0);  // DC
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    if (i != 26) {
      EXPECT_EQ(std::abs(sequence[i]), 1.0) << i;
    }
  }
}

TEST(PreambleTest, LtfSpectrumMatchesSequence) {
  const cvec ltf = make_ltf();
  const cvec grid = time_to_grid(std::span<const cplx>(ltf).subspan(16, 80));
  // subspan(16, 80) = [CP' | symbol1]: time_to_grid strips 16, FFTs symbol1's
  // first 64 samples starting at offset 32 of the field = exactly symbol 1.
  for (int k = -26; k <= 26; ++k) {
    const double expected = ltf_sequence()[static_cast<std::size_t>(k + 26)];
    EXPECT_NEAR(std::abs(grid[subcarrier_to_bin(k)] - cplx{expected, 0.0}), 0.0,
                1e-9)
        << "k=" << k;
  }
}

}  // namespace
}  // namespace ctc::wifi
