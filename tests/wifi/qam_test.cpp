#include "wifi/qam.h"

#include <gtest/gtest.h>

#include "dsp/rng.h"
#include "dsp/stats.h"

namespace ctc::wifi {
namespace {

bitvec random_bits(std::size_t n, std::uint64_t seed) {
  dsp::Rng rng(seed);
  bitvec bits(n);
  for (auto& b : bits) b = rng.bit();
  return bits;
}

class QamModulationTest : public ::testing::TestWithParam<Modulation> {};

TEST_P(QamModulationTest, MapDemapRoundTrip) {
  const Modulation mod = GetParam();
  const std::size_t bpsc = bits_per_subcarrier(mod);
  const bitvec bits = random_bits(bpsc * 200, 100 + bpsc);
  EXPECT_EQ(qam_demap(qam_map(bits, mod), mod), bits);
}

TEST_P(QamModulationTest, UnitAveragePowerOverAllSymbols) {
  const Modulation mod = GetParam();
  const std::size_t bpsc = bits_per_subcarrier(mod);
  // Enumerate all bit groups exactly once.
  bitvec bits;
  for (unsigned v = 0; v < (1u << bpsc); ++v) {
    for (std::size_t b = bpsc; b-- > 0;) bits.push_back((v >> b) & 1);
  }
  const cvec points = qam_map(bits, mod);
  EXPECT_NEAR(dsp::average_power(points), 1.0, 1e-12);
}

TEST_P(QamModulationTest, DemapToleratesSmallNoise) {
  const Modulation mod = GetParam();
  const std::size_t bpsc = bits_per_subcarrier(mod);
  const bitvec bits = random_bits(bpsc * 100, 200 + bpsc);
  cvec points = qam_map(bits, mod);
  dsp::Rng rng(300 + bpsc);
  // Perturb by much less than half the minimum distance.
  const double wiggle = 0.2 * modulation_scale(mod);
  for (auto& p : points) {
    p += cplx{rng.uniform(-wiggle, wiggle), rng.uniform(-wiggle, wiggle)};
  }
  EXPECT_EQ(qam_demap(points, mod), bits);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, QamModulationTest,
                         ::testing::Values(Modulation::bpsk, Modulation::qpsk,
                                           Modulation::qam16, Modulation::qam64));

TEST(QamKnownValueTest, StandardScales) {
  EXPECT_DOUBLE_EQ(modulation_scale(Modulation::bpsk), 1.0);
  EXPECT_NEAR(modulation_scale(Modulation::qpsk), 1.0 / std::sqrt(2.0), 1e-15);
  EXPECT_NEAR(modulation_scale(Modulation::qam16), 1.0 / std::sqrt(10.0), 1e-15);
  EXPECT_NEAR(modulation_scale(Modulation::qam64), 1.0 / std::sqrt(42.0), 1e-15);
}

TEST(QamKnownValueTest, GrayTable64Qam) {
  // 802.11 Table 17-16: b0b1b2 -> I level.
  EXPECT_EQ(gray_bits_to_level(0b000, 3), -7);
  EXPECT_EQ(gray_bits_to_level(0b001, 3), -5);
  EXPECT_EQ(gray_bits_to_level(0b011, 3), -3);
  EXPECT_EQ(gray_bits_to_level(0b010, 3), -1);
  EXPECT_EQ(gray_bits_to_level(0b110, 3), 1);
  EXPECT_EQ(gray_bits_to_level(0b111, 3), 3);
  EXPECT_EQ(gray_bits_to_level(0b101, 3), 5);
  EXPECT_EQ(gray_bits_to_level(0b100, 3), 7);
}

TEST(QamKnownValueTest, GrayInverseMatches) {
  for (std::size_t bits : {1u, 2u, 3u}) {
    for (unsigned v = 0; v < (1u << bits); ++v) {
      const int level = gray_bits_to_level(v, bits);
      EXPECT_EQ(gray_level_to_bits(level, bits), v);
    }
  }
}

TEST(QamKnownValueTest, GrayNeighborsDifferInOneBit) {
  // Gray property: adjacent amplitude levels differ in exactly one bit.
  for (int level = -7; level < 7; level += 2) {
    const unsigned a = gray_level_to_bits(level, 3);
    const unsigned b = gray_level_to_bits(level + 2, 3);
    EXPECT_EQ(__builtin_popcount(a ^ b), 1) << "level=" << level;
  }
}

TEST(QamKnownValueTest, Bpsk64QamSpecificPoints) {
  const cvec bpsk = qam_map(bitvec{0, 1}, Modulation::bpsk);
  EXPECT_NEAR(std::abs(bpsk[0] - cplx(-1.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(bpsk[1] - cplx(1.0, 0.0)), 0.0, 1e-12);

  // 64-QAM b0..b5 = 100 000 -> I = +7, Q = -7.
  const cvec qam = qam_map(bitvec{1, 0, 0, 0, 0, 0}, Modulation::qam64);
  const double s = modulation_scale(Modulation::qam64);
  EXPECT_NEAR(std::abs(qam[0] - cplx(7.0 * s, -7.0 * s)), 0.0, 1e-12);
}

}  // namespace
}  // namespace ctc::wifi
