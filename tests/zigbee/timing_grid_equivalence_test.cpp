// Equivalence suite for the receiver's precomputed timing-search grid.
//
// The grid caches exactly what the per-call search derives — the same tau
// sequence, the same fractional_delay references, the same energy summation
// order — so unlike the FFT convolution pair the contract here is bitwise:
// every field of every ReceiveResult must match the per-call path exactly.
#include <gtest/gtest.h>

#include "channel/environment.h"
#include "channel/impairments.h"
#include "dsp/rng.h"
#include "zigbee/app.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace ctc::zigbee {
namespace {

void expect_identical(const ReceiveResult& a, const ReceiveResult& b) {
  EXPECT_EQ(a.shr_ok, b.shr_ok);
  EXPECT_EQ(a.phr_ok, b.phr_ok);
  EXPECT_EQ(a.psdu_complete, b.psdu_complete);
  EXPECT_EQ(a.psdu, b.psdu);
  EXPECT_EQ(a.mac.has_value(), b.mac.has_value());
  EXPECT_EQ(a.hamming_distances, b.hamming_distances);
  EXPECT_EQ(a.soft_chips, b.soft_chips);
  EXPECT_EQ(a.freq_chips, b.freq_chips);
  EXPECT_EQ(a.hard_chips, b.hard_chips);
  EXPECT_EQ(a.channel_estimate, b.channel_estimate);
  EXPECT_EQ(a.noise_variance_estimate, b.noise_variance_estimate);
  EXPECT_EQ(a.snr_estimate_db, b.snr_estimate_db);
  EXPECT_EQ(a.timing_offset_estimate, b.timing_offset_estimate);
}

TEST(TimingGridEquivalenceTest, GridReceiveIsBitIdenticalToPerCall) {
  Transmitter tx;
  const cvec wave = tx.transmit_frame(make_text_frame(0, 0));

  ReceiverConfig config;
  config.timing_recovery = true;
  config.precompute_timing_grid = true;
  const Receiver grid_receiver(config);
  config.precompute_timing_grid = false;
  const Receiver percall_receiver(config);

  // Clean, offset, and offset+noise captures: the winning tau (and every
  // derived field) must agree bitwise in all of them.
  dsp::Rng rng(42);
  std::vector<cvec> captures;
  captures.push_back(wave);
  for (double offset : {0.125, 0.3125}) {
    captures.push_back(channel::apply_timing_offset(wave, offset));
  }
  {
    channel::Environment env = channel::Environment::awgn(6.0);
    env.timing_offset = 0.25;
    captures.push_back(env.propagate(wave, rng));
  }
  for (std::size_t i = 0; i < captures.size(); ++i) {
    SCOPED_TRACE("capture " + std::to_string(i));
    expect_identical(grid_receiver.receive(captures[i]),
                     percall_receiver.receive(captures[i]));
  }
}

TEST(TimingGridEquivalenceTest, GridCoversTheFullTauSequence) {
  // The estimated offset must still span the whole search range: feed
  // captures delayed by each extreme and confirm the estimate tracks them
  // (i.e. the grid didn't truncate the tau sweep).
  Transmitter tx;
  const cvec wave = tx.transmit_frame(make_text_frame(0, 0));
  ReceiverConfig config;
  config.timing_recovery = true;
  const Receiver receiver(config);
  for (double offset : {0.0625, 0.4375}) {
    const cvec delayed = channel::apply_timing_offset(wave, offset);
    const ReceiveResult result = receiver.receive(delayed);
    EXPECT_NEAR(result.timing_offset_estimate, offset, 0.0626)
        << "offset " << offset;
  }
}

TEST(TimingGridEquivalenceTest, ConfigDisablesTheGrid) {
  // precompute_timing_grid = false must actually pin the reference path —
  // the equivalence tests above rely on it.
  ReceiverConfig config;
  config.timing_recovery = true;
  config.precompute_timing_grid = false;
  const Receiver receiver(config);
  // Indirect observable: receiving still works (the per-call path derives
  // references on the fly) and produces the documented offset estimate.
  Transmitter tx;
  const cvec wave = tx.transmit_frame(make_text_frame(0, 0));
  const cvec delayed = channel::apply_timing_offset(wave, 0.25);
  const ReceiveResult result = receiver.receive(delayed);
  EXPECT_NEAR(result.timing_offset_estimate, 0.25, 0.0626);
}

}  // namespace
}  // namespace ctc::zigbee
