#include "zigbee/chip_sequences.h"

#include <gtest/gtest.h>

#include <set>

#include "dsp/require.h"

namespace ctc::zigbee {
namespace {

TEST(ChipSequencesTest, Symbol0MatchesStandard) {
  // IEEE 802.15.4-2015 Table 10-14, data symbol 0.
  const ChipSequence expected = {1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
                                 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0};
  EXPECT_EQ(chips_for_symbol(0), expected);
}

TEST(ChipSequencesTest, Symbol1IsSymbol0RotatedRightByFour) {
  const ChipSequence& s0 = chips_for_symbol(0);
  const ChipSequence& s1 = chips_for_symbol(1);
  for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
    EXPECT_EQ(s1[(i + 4) % kChipsPerSymbol], s0[i]);
  }
}

TEST(ChipSequencesTest, RotationPropertyHoldsForAllLowSymbols) {
  const ChipSequence& s0 = chips_for_symbol(0);
  for (std::uint8_t s = 0; s < 8; ++s) {
    const ChipSequence& seq = chips_for_symbol(s);
    for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
      EXPECT_EQ(seq[(i + 4 * s) % kChipsPerSymbol], s0[i]) << "symbol " << int(s);
    }
  }
}

TEST(ChipSequencesTest, HighSymbolsInvertOddChips) {
  for (std::uint8_t s = 8; s < 16; ++s) {
    const ChipSequence& low = chips_for_symbol(s - 8);
    const ChipSequence& high = chips_for_symbol(s);
    for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
      if (i % 2 == 1) {
        EXPECT_NE(high[i], low[i]);
      } else {
        EXPECT_EQ(high[i], low[i]);
      }
    }
  }
}

TEST(ChipSequencesTest, Symbol8MatchesStandard) {
  const ChipSequence expected = {1, 0, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0,
                                 0, 0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 1, 1};
  EXPECT_EQ(chips_for_symbol(8), expected);
}

TEST(ChipSequencesTest, AllSequencesDistinct) {
  std::set<ChipSequence> seen(chip_table().begin(), chip_table().end());
  EXPECT_EQ(seen.size(), kNumSymbols);
}

TEST(ChipSequencesTest, BalancedChipCounts) {
  // Every sequence has 16 ones and 16 zeros (PN balance).
  for (const auto& sequence : chip_table()) {
    std::size_t ones = 0;
    for (std::uint8_t c : sequence) ones += c;
    EXPECT_EQ(ones, kChipsPerSymbol / 2);
  }
}

TEST(ChipSequencesTest, MinPairwiseDistanceGivesErrorResilience) {
  // The DSSS correlation margin the attack exploits: sequences are far
  // apart, so a threshold of ~10 chip errors still decodes uniquely.
  const std::size_t d = min_pairwise_distance();
  EXPECT_GE(d, 12u);
  EXPECT_LE(d, 20u);
}

TEST(ChipSequencesTest, HammingDistanceBasics) {
  const ChipSequence& s0 = chips_for_symbol(0);
  EXPECT_EQ(hamming_distance(s0, s0), 0u);
  std::vector<std::uint8_t> flipped(s0.begin(), s0.end());
  flipped[0] ^= 1;
  flipped[31] ^= 1;
  EXPECT_EQ(hamming_distance(flipped, s0), 2u);
  EXPECT_THROW(hamming_distance(std::vector<std::uint8_t>(31), s0), ContractError);
}

TEST(ChipSequencesTest, RejectsOutOfRangeSymbol) {
  EXPECT_THROW(chips_for_symbol(16), ContractError);
}

}  // namespace
}  // namespace ctc::zigbee
