// Clock recovery (the "Clock Recovery" block of the paper's Fig. 1).
#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/impairments.h"
#include "dsp/require.h"
#include "dsp/resample.h"
#include "dsp/rng.h"
#include "zigbee/app.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace ctc::zigbee {
namespace {

TEST(FractionalDelayTest, ZeroDelayIsIdentity) {
  const cvec x = {{1.0, 2.0}, {3.0, -1.0}, {0.5, 0.5}};
  const cvec y = dsp::fractional_delay(x, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(FractionalDelayTest, HalfSampleInterpolatesNeighbors) {
  const cvec x = {{0.0, 0.0}, {2.0, 0.0}, {4.0, 0.0}};
  const cvec delayed = dsp::fractional_delay(x, 0.5);
  EXPECT_NEAR(delayed[1].real(), 1.0, 1e-12);  // between x[0] and x[1]
  EXPECT_NEAR(delayed[2].real(), 3.0, 1e-12);
  const cvec advanced = dsp::fractional_delay(x, -0.5);
  EXPECT_NEAR(advanced[0].real(), 1.0, 1e-12);  // between x[0] and x[1]
  EXPECT_NEAR(advanced[1].real(), 3.0, 1e-12);
}

TEST(FractionalDelayTest, DelayThenAdvanceIsNearIdentityForSmoothSignals) {
  dsp::Rng rng(1800);
  // Smooth (oversampled) signal: linear interpolation error is tiny.
  cvec x(200);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) * 0.05;
    x[i] = {std::cos(t), std::sin(t)};
  }
  const cvec round_trip =
      dsp::fractional_delay(dsp::fractional_delay(x, 0.3), -0.3);
  for (std::size_t i = 2; i + 2 < x.size(); ++i) {
    EXPECT_NEAR(std::abs(round_trip[i] - x[i]), 0.0, 0.01);
  }
}

TEST(FractionalDelayTest, RejectsOutOfRangeDelay) {
  const cvec x(4);
  EXPECT_THROW(dsp::fractional_delay(x, 1.5), ContractError);
  EXPECT_THROW(dsp::fractional_delay(x, -1.5), ContractError);
}

TEST(TimingRecoveryTest, EstimatesTheAppliedOffset) {
  Transmitter tx;
  const cvec wave = tx.transmit_frame(make_text_frame(0, 0));
  ReceiverConfig config;
  config.timing_recovery = true;
  const Receiver receiver(config);
  for (double offset : {0.125, 0.25, 0.375}) {
    const cvec delayed = channel::apply_timing_offset(wave, offset);
    const ReceiveResult result = receiver.receive(delayed);
    ASSERT_TRUE(result.frame_ok()) << "offset " << offset;
    EXPECT_NEAR(result.timing_offset_estimate, offset, 0.08) << offset;
  }
}

TEST(TimingRecoveryTest, AlignedInputEstimatesNearZero) {
  Transmitter tx;
  const cvec wave = tx.transmit_frame(make_text_frame(0, 0));
  ReceiverConfig config;
  config.timing_recovery = true;
  const ReceiveResult result = Receiver(config).receive(wave);
  ASSERT_TRUE(result.frame_ok());
  EXPECT_NEAR(result.timing_offset_estimate, 0.0, 0.07);
}

TEST(TimingRecoveryTest, ReducesChipErrorsUnderOffsetAndNoise) {
  // A near-half-sample timing error costs correlation margin; clock
  // recovery buys it back. Measured on the accumulated Hamming distance of
  // the despread symbols (a finer statistic than frame pass/fail).
  Transmitter tx;
  dsp::Rng rng(1801);
  const cvec wave = tx.transmit_frame(make_text_frame(1, 1));
  ReceiverConfig plain;
  ReceiverConfig recovered;
  recovered.timing_recovery = true;
  const Receiver rx_plain(plain);
  const Receiver rx_recovered(recovered);
  std::size_t plain_distance = 0;
  std::size_t recovered_distance = 0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    const cvec degraded = channel::add_awgn(
        channel::apply_timing_offset(wave, 0.45), 4.0, rng);
    for (std::size_t d : rx_plain.receive(degraded).hamming_distances) {
      plain_distance += d;
    }
    for (std::size_t d : rx_recovered.receive(degraded).hamming_distances) {
      recovered_distance += d;
    }
  }
  EXPECT_LT(recovered_distance, plain_distance);
}

TEST(TimingRecoveryTest, DisabledByDefaultAndReportedAsZero) {
  Transmitter tx;
  const cvec wave = tx.transmit_frame(make_text_frame(2, 2));
  const ReceiveResult result = Receiver().receive(
      channel::apply_timing_offset(wave, 0.3));
  EXPECT_DOUBLE_EQ(result.timing_offset_estimate, 0.0);
  EXPECT_TRUE(result.frame_ok());  // matched filter tolerates 0.3 cleanly
}

}  // namespace
}  // namespace ctc::zigbee
