#include "zigbee/dsss.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"

namespace ctc::zigbee {
namespace {

TEST(DsssTest, SpreadLengthAndContent) {
  const std::vector<std::uint8_t> symbols = {0, 5, 15};
  const auto chips = spread(symbols);
  ASSERT_EQ(chips.size(), 3 * kChipsPerSymbol);
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    const ChipSequence& expected = chips_for_symbol(symbols[s]);
    for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
      EXPECT_EQ(chips[s * kChipsPerSymbol + i], expected[i]);
    }
  }
}

class DsssSymbolTest : public ::testing::TestWithParam<int> {};

TEST_P(DsssSymbolTest, CleanRoundTrip) {
  const auto symbol = static_cast<std::uint8_t>(GetParam());
  const auto chips = spread(std::vector<std::uint8_t>{symbol});
  const DespreadResult result = despread_block(chips, 10);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.symbol, symbol);
  EXPECT_EQ(result.distance, 0u);
}

TEST_P(DsssSymbolTest, ToleratesErrorsUpToMargin) {
  // Flip 6 chips: still decodes to the right symbol (min pairwise distance
  // is large enough that 6 errors keep the true row closest).
  const auto symbol = static_cast<std::uint8_t>(GetParam());
  auto chips = spread(std::vector<std::uint8_t>{symbol});
  dsp::Rng rng(40 + GetParam());
  for (int e = 0; e < 6; ++e) chips[rng.uniform_index(kChipsPerSymbol)] ^= 1;
  const DespreadResult result = despread_block(chips, 10);
  EXPECT_EQ(result.symbol, symbol);
  EXPECT_LE(result.distance, 6u);
}

INSTANTIATE_TEST_SUITE_P(AllSymbols, DsssSymbolTest, ::testing::Range(0, 16));

TEST(DsssTest, RejectsBeyondThreshold) {
  auto chips = spread(std::vector<std::uint8_t>{3});
  // Flip the first 12 chips -> distance > 10 from every row.
  for (std::size_t i = 0; i < 12; ++i) chips[i] ^= 1;
  const DespreadResult strict = despread_block(chips, 10);
  // Whatever the nearest row is, its distance must exceed a tight threshold.
  const DespreadResult loose = despread_block(chips, kChipsPerSymbol);
  EXPECT_TRUE(loose.accepted);
  EXPECT_EQ(strict.accepted, strict.distance <= 10);
  EXPECT_GT(loose.distance, 6u);
}

TEST(DsssTest, StreamDespreadsPerBlock) {
  const std::vector<std::uint8_t> symbols = {7, 10, 0, 15, 1};
  const auto chips = spread(symbols);
  const auto results = despread(chips, 10);
  ASSERT_EQ(results.size(), symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_TRUE(results[i].accepted);
    EXPECT_EQ(results[i].symbol, symbols[i]);
  }
}

TEST(DsssTest, StreamRejectsPartialBlocks) {
  std::vector<std::uint8_t> chips(33, 0);
  EXPECT_THROW(despread(chips, 10), ContractError);
  EXPECT_THROW(despread_block(std::vector<std::uint8_t>(16), 10), ContractError);
}

// --- differential (discriminator-domain) despreading ---

rvec differential_of(std::span<const std::uint8_t> chips, std::uint8_t previous) {
  // f_i = s_i * (2 c_{i-1} - 1)(2 c_i - 1), s_i = +1 odd / -1 even.
  rvec f(chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) {
    const int prev = (i == 0) ? (2 * previous - 1) : (2 * chips[i - 1] - 1);
    const int sign = (i % 2 == 1) ? 1 : -1;
    f[i] = sign * prev * (2 * chips[i] - 1);
  }
  return f;
}

class DifferentialSymbolTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialSymbolTest, CleanRoundTripWithKnownBoundary) {
  const auto symbol = static_cast<std::uint8_t>(GetParam());
  const auto chips = spread(std::vector<std::uint8_t>{symbol});
  for (std::uint8_t previous : {0, 1}) {
    const rvec f = differential_of(chips, previous);
    const DespreadResult result = despread_differential_block(f, previous, 10);
    EXPECT_TRUE(result.accepted);
    EXPECT_EQ(result.symbol, symbol) << "previous=" << int(previous);
    EXPECT_EQ(result.distance, 0u);
  }
}

TEST_P(DifferentialSymbolTest, UnknownBoundarySkipsFirstChip) {
  const auto symbol = static_cast<std::uint8_t>(GetParam());
  const auto chips = spread(std::vector<std::uint8_t>{symbol});
  const rvec f = differential_of(chips, 0);
  const DespreadResult result = despread_differential_block(f, 2, 10);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.symbol, symbol);
}

INSTANTIATE_TEST_SUITE_P(AllSymbols, DifferentialSymbolTest, ::testing::Range(0, 16));

TEST(DifferentialTest, StreamCarriesBoundaryAcrossSymbols) {
  const std::vector<std::uint8_t> symbols = {0, 9, 4, 15, 2, 7};
  const auto chips = spread(symbols);
  const rvec f = differential_of(chips, 0);  // boundary value irrelevant: skipped
  const auto results = despread_differential(f, 10);
  ASSERT_EQ(results.size(), symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(results[i].symbol, symbols[i]) << "i=" << i;
    EXPECT_TRUE(results[i].accepted);
    EXPECT_EQ(results[i].distance, 0u);
  }
}

TEST(DifferentialTest, SingleChipErrorCostsTwoInDifferentialDomain) {
  const std::vector<std::uint8_t> symbols = {5, 5};
  auto chips = spread(symbols);
  chips[40] ^= 1;  // interior chip of the second symbol
  const rvec f = differential_of(chips, 0);
  const auto results = despread_differential(f, 10);
  EXPECT_EQ(results[1].symbol, 5);
  EXPECT_EQ(results[1].distance, 2u);  // flips two adjacent transitions
}

TEST(DifferentialTest, RejectsPartialBlocks) {
  rvec f(31, 1.0);
  EXPECT_THROW(despread_differential_block(f, 0, 10), ContractError);
  EXPECT_THROW(despread_differential(rvec(33, 1.0), 10), ContractError);
}

}  // namespace
}  // namespace ctc::zigbee
