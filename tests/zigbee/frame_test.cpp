#include "zigbee/frame.h"

#include <gtest/gtest.h>

#include "dsp/require.h"

namespace ctc::zigbee {
namespace {

TEST(CrcTest, EmptyInputIsZero) {
  EXPECT_EQ(crc16_fcs(bytevec{}), 0x0000);
}

TEST(CrcTest, KnownVector) {
  // ITU-T CRC16 (Kermit/802.15.4 style) of "123456789" is 0x2189.
  const bytevec data = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_fcs(data), 0x2189);
}

TEST(CrcTest, DetectsSingleBitFlip) {
  bytevec data = {0xDE, 0xAD, 0xBE, 0xEF};
  const std::uint16_t original = crc16_fcs(data);
  data[2] ^= 0x10;
  EXPECT_NE(crc16_fcs(data), original);
}

TEST(SymbolPackingTest, LowNibbleFirst) {
  const bytevec bytes = {0xA7, 0x01};
  const auto symbols = bytes_to_symbols(bytes);
  ASSERT_EQ(symbols.size(), 4u);
  EXPECT_EQ(symbols[0], 0x7);
  EXPECT_EQ(symbols[1], 0xA);
  EXPECT_EQ(symbols[2], 0x1);
  EXPECT_EQ(symbols[3], 0x0);
}

TEST(SymbolPackingTest, RoundTrip) {
  const bytevec bytes = {0x00, 0xFF, 0x5A, 0x13, 0xC8};
  EXPECT_EQ(symbols_to_bytes(bytes_to_symbols(bytes)), bytes);
}

TEST(SymbolPackingTest, RejectsOddCountsAndBadSymbols) {
  EXPECT_THROW(symbols_to_bytes(std::vector<std::uint8_t>{1}), ContractError);
  EXPECT_THROW(symbols_to_bytes(std::vector<std::uint8_t>{1, 16}), ContractError);
}

TEST(MacFrameTest, SerializeParseRoundTrip) {
  MacFrame frame;
  frame.sequence = 42;
  frame.pan_id = 0xBEEF;
  frame.dest_addr = 0x1234;
  frame.src_addr = 0x5678;
  frame.payload = {'h', 'e', 'l', 'l', 'o'};
  const bytevec psdu = frame.serialize();
  EXPECT_EQ(psdu.size(), 9 + 5 + 2u);

  const auto parsed = MacFrame::parse(psdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame_control, frame.frame_control);
  EXPECT_EQ(parsed->sequence, 42);
  EXPECT_EQ(parsed->pan_id, 0xBEEF);
  EXPECT_EQ(parsed->dest_addr, 0x1234);
  EXPECT_EQ(parsed->src_addr, 0x5678);
  EXPECT_EQ(parsed->payload, frame.payload);
}

TEST(MacFrameTest, EmptyPayloadRoundTrips) {
  MacFrame frame;
  const auto parsed = MacFrame::parse(frame.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(MacFrameTest, CorruptedFcsRejected) {
  MacFrame frame;
  frame.payload = {1, 2, 3};
  bytevec psdu = frame.serialize();
  psdu[4] ^= 0x01;
  EXPECT_FALSE(MacFrame::parse(psdu).has_value());
}

TEST(MacFrameTest, TruncatedPsduRejected) {
  EXPECT_FALSE(MacFrame::parse(bytevec(5, 0)).has_value());
  EXPECT_FALSE(MacFrame::parse(bytevec{}).has_value());
}

TEST(PpduTest, StructureMatchesStandard) {
  Ppdu ppdu;
  ppdu.psdu = {0xAA, 0xBB};
  const bytevec wire = ppdu.serialize();
  ASSERT_EQ(wire.size(), kPreambleBytes + 2 + 2u);
  for (std::size_t i = 0; i < kPreambleBytes; ++i) EXPECT_EQ(wire[i], 0x00);
  EXPECT_EQ(wire[kPreambleBytes], kSfd);
  EXPECT_EQ(wire[kPreambleBytes + 1], 2);  // PHR length
  EXPECT_EQ(wire[kPreambleBytes + 2], 0xAA);
  EXPECT_EQ(wire[kPreambleBytes + 3], 0xBB);
}

TEST(PpduTest, SymbolCountFormula) {
  EXPECT_EQ(Ppdu::symbol_count(0), 12u);
  EXPECT_EQ(Ppdu::symbol_count(16), 44u);
}

TEST(PpduTest, RejectsOversizedPsdu) {
  Ppdu ppdu;
  ppdu.psdu.assign(kMaxPsduBytes + 1, 0);
  EXPECT_THROW(ppdu.serialize(), ContractError);
}

}  // namespace
}  // namespace ctc::zigbee
