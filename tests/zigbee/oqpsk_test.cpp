#include "zigbee/oqpsk.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"
#include "dsp/types.h"
#include "zigbee/dsss.h"

namespace ctc::zigbee {
namespace {

std::vector<std::uint8_t> random_chips(std::size_t n, std::uint64_t seed) {
  dsp::Rng rng(seed);
  std::vector<std::uint8_t> chips(n);
  for (auto& c : chips) c = rng.bit();
  return chips;
}

TEST(OqpskModulatorTest, OutputLength) {
  OqpskModulator modulator(2);
  EXPECT_EQ(modulator.modulate(random_chips(32, 1)).size(), 33u * 2);
  EXPECT_EQ(modulator.modulate(std::vector<std::uint8_t>{}).size(), 2u);
}

TEST(OqpskModulatorTest, EvenChipsDriveInPhaseOddChipsQuadrature) {
  OqpskModulator modulator(4);
  // Single even chip: waveform is purely real.
  const cvec even = modulator.modulate(std::vector<std::uint8_t>{1});
  for (const cplx& x : even) EXPECT_DOUBLE_EQ(x.imag(), 0.0);
  // Chip pair: the second (odd) chip contributes only to the imaginary part.
  const cvec pair = modulator.modulate(std::vector<std::uint8_t>{1, 1});
  bool has_imag = false;
  for (const cplx& x : pair) has_imag |= std::abs(x.imag()) > 0.5;
  EXPECT_TRUE(has_imag);
}

TEST(OqpskModulatorTest, ChipZeroGivesNegativeAmplitude) {
  OqpskModulator modulator(4);
  const cvec wave = modulator.modulate(std::vector<std::uint8_t>{0});
  EXPECT_LT(wave[4].real(), -0.99);  // pulse peak
}

TEST(OqpskModulatorTest, ConstantEnvelopeInSteadyState) {
  // Interior of a long chip stream: |s(t)| == 1 (MSK property).
  OqpskModulator modulator(8);
  const auto chips = random_chips(64, 2);
  const cvec wave = modulator.modulate(chips);
  for (std::size_t i = 16; i + 16 < wave.size(); ++i) {
    EXPECT_NEAR(std::abs(wave[i]), 1.0, 1e-9) << "i=" << i;
  }
}

TEST(OqpskDemodulatorTest, ExtendedSoftChipsAreBitIdenticalToFullCompute) {
  // The receiver demodulates the header span first and extends to the full
  // frame once the PHR is known; incremental extension must reproduce the
  // one-shot computation bit for bit (per-chip locality of the matched
  // filter), at any even stage boundary.
  const OqpskDemodulator demodulator(2);
  const OqpskModulator modulator(2);
  const auto chips = random_chips(96, 3);
  const cvec wave = modulator.modulate(chips);
  const rvec full = demodulator.soft_chips(wave, chips.size());

  for (const std::size_t stage : {0UL, 2UL, 40UL, 96UL}) {
    rvec staged;
    demodulator.extend_soft_chips(wave, stage, staged);
    demodulator.extend_soft_chips(wave, chips.size(), staged);
    ASSERT_EQ(staged.size(), full.size()) << "stage=" << stage;
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_EQ(staged[i], full[i]) << "stage=" << stage << " chip=" << i;
    }
  }
  // Re-requesting an already-computed prefix leaves the buffer untouched.
  rvec done = full;
  demodulator.extend_soft_chips(wave, 10, done);
  EXPECT_EQ(done.size(), full.size());
}

TEST(OqpskDemodulatorTest, ExtendedFrequencyChipsAreBitIdenticalToFullCompute) {
  const OqpskDemodulator demodulator(2);
  const OqpskModulator modulator(2);
  const auto chips = random_chips(96, 4);
  const cvec wave = modulator.modulate(chips);
  const rvec full = demodulator.frequency_chips(wave, chips.size());

  for (const std::size_t stage : {0UL, 2UL, 40UL, 96UL}) {
    rvec staged;
    demodulator.extend_frequency_chips(wave, stage, staged);
    demodulator.extend_frequency_chips(wave, chips.size(), staged);
    ASSERT_EQ(staged.size(), full.size()) << "stage=" << stage;
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_EQ(staged[i], full[i]) << "stage=" << stage << " chip=" << i;
    }
  }
}

TEST(OqpskDemodulatorTest, OddSoftChipExtensionIsRejected) {
  // An odd start would flip the I/Q parity of every subsequent chip; the
  // contract requires even stage boundaries.
  const OqpskDemodulator demodulator(2);
  const OqpskModulator modulator(2);
  const cvec wave = modulator.modulate(random_chips(8, 5));
  rvec odd(3, 0.0);
  EXPECT_THROW(demodulator.extend_soft_chips(wave, 8, odd), ContractError);
}

class OqpskRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OqpskRoundTripTest, SoftChipsRecoverChipSigns) {
  const std::size_t spc = GetParam();
  OqpskModulator modulator(spc);
  OqpskDemodulator demodulator(spc);
  const auto chips = random_chips(128, 10 + spc);
  const cvec wave = modulator.modulate(chips);
  const rvec soft = demodulator.soft_chips(wave, chips.size());
  ASSERT_EQ(soft.size(), chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) {
    EXPECT_NEAR(soft[i], chips[i] ? 1.0 : -1.0, 1e-9) << "i=" << i;
  }
}

TEST_P(OqpskRoundTripTest, HardDecisionRecoversChips) {
  const std::size_t spc = GetParam();
  OqpskModulator modulator(spc);
  OqpskDemodulator demodulator(spc);
  const auto chips = random_chips(96, 20 + spc);
  const cvec wave = modulator.modulate(chips);
  const auto decoded =
      OqpskDemodulator::hard_decision(demodulator.soft_chips(wave, chips.size()));
  EXPECT_EQ(decoded, chips);
}

TEST_P(OqpskRoundTripTest, FrequencyChipsAreUnitMagnitude) {
  const std::size_t spc = GetParam();
  OqpskModulator modulator(spc);
  OqpskDemodulator demodulator(spc);
  const auto chips = random_chips(128, 30 + spc);
  const cvec wave = modulator.modulate(chips);
  const rvec f = demodulator.frequency_chips(wave, chips.size());
  // Skip chip 0 (no predecessor pulse) — all others are exactly +-1.
  for (std::size_t i = 1; i < f.size(); ++i) {
    EXPECT_NEAR(std::abs(f[i]), 1.0, 1e-6) << "i=" << i;
  }
}

TEST_P(OqpskRoundTripTest, FrequencyChipsMatchDifferentialFormula) {
  // f_i = s_i (2c_{i-1}-1)(2c_i-1), s_i = +1 odd / -1 even.
  const std::size_t spc = GetParam();
  OqpskModulator modulator(spc);
  OqpskDemodulator demodulator(spc);
  const auto chips = random_chips(64, 40 + spc);
  const cvec wave = modulator.modulate(chips);
  const rvec f = demodulator.frequency_chips(wave, chips.size());
  for (std::size_t i = 1; i < chips.size(); ++i) {
    const int sign = (i % 2 == 1) ? 1 : -1;
    const double expected = sign * (2 * chips[i - 1] - 1) * (2 * chips[i] - 1);
    EXPECT_NEAR(f[i], expected, 1e-6) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(SamplesPerChip, OqpskRoundTripTest,
                         ::testing::Values(2, 4, 8));

TEST(OqpskDemodulatorTest, FrequencyChipsIgnoreGainAndPhase) {
  OqpskModulator modulator(2);
  OqpskDemodulator demodulator(2);
  const auto chips = random_chips(64, 50);
  cvec wave = modulator.modulate(chips);
  const rvec base = demodulator.frequency_chips(wave, chips.size());
  for (auto& x : wave) x *= cplx{0.3, 0.4};  // arbitrary complex gain
  const rvec rotated = demodulator.frequency_chips(wave, chips.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(base[i], rotated[i], 1e-9);
  }
}

TEST(OqpskDemodulatorTest, RejectsShortWaveform) {
  OqpskDemodulator demodulator(2);
  cvec wave(10);
  EXPECT_THROW(demodulator.soft_chips(wave, 32), ContractError);
  EXPECT_THROW(demodulator.frequency_chips(wave, 32), ContractError);
}

TEST(OqpskDemodulatorTest, InstantaneousPhaseUnwraps) {
  // A steady rotation of +pi/3 per sample accumulates without 2pi jumps.
  cvec wave(24);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    const double angle = kPi / 3.0 * static_cast<double>(i);
    wave[i] = {std::cos(angle), std::sin(angle)};
  }
  const rvec phase = OqpskDemodulator::instantaneous_phase(wave);
  for (std::size_t i = 1; i < phase.size(); ++i) {
    EXPECT_NEAR(phase[i] - phase[i - 1], kPi / 3.0, 1e-9);
  }
}

}  // namespace
}  // namespace ctc::zigbee
