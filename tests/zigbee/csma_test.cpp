#include "zigbee/csma.h"

#include <gtest/gtest.h>

#include "dsp/require.h"
#include "dsp/rng.h"
#include "zigbee/transmitter.h"

namespace ctc::zigbee {
namespace {

TEST(EnergyDetectTest, MeasuresAveragePower) {
  const cvec window = {{2.0, 0.0}, {0.0, 2.0}};
  EXPECT_DOUBLE_EQ(energy_detect(window), 4.0);
  EXPECT_THROW(energy_detect(cvec{}), ContractError);
}

TEST(EnergyDetectTest, BusyVsIdleDecision) {
  dsp::Rng rng(260);
  cvec idle(128);
  for (auto& x : idle) x = rng.complex_gaussian(0.001);  // -30 dB noise
  Transmitter tx;
  MacFrame frame;
  frame.payload = {1, 2, 3};
  const cvec active = tx.transmit_frame(frame);  // unit power
  const double threshold = 0.1;
  EXPECT_FALSE(channel_busy(idle, threshold));
  EXPECT_TRUE(channel_busy(std::span<const cplx>(active).subspan(100, 128), threshold));
  EXPECT_THROW(channel_busy(idle, 0.0), ContractError);
}

TEST(CsmaTest, IdleChannelGrantsQuickly) {
  dsp::Rng rng(261);
  const auto result = csma_ca([](double) { return false; }, rng);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.backoffs, 1u);
  // First backoff draws 0..7 slots of 320 us.
  EXPECT_LE(result.delay_us, 7 * 320.0);
}

TEST(CsmaTest, AlwaysBusyChannelFails) {
  dsp::Rng rng(262);
  CsmaConfig config;
  const auto result = csma_ca([](double) { return true; }, rng, config);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.backoffs, config.max_csma_backoffs + 1);
}

TEST(CsmaTest, WaitsOutABusyBurst) {
  // Busy for the first 3 ms; with up to 5 attempts and growing backoff the
  // sender statistically drains past the burst.
  dsp::Rng rng(263);
  int successes = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto result =
        csma_ca(interval_oracle({{0.0, 3000.0}}), rng);
    if (result.success) {
      EXPECT_GE(result.delay_us, 3000.0);
      ++successes;
    }
  }
  EXPECT_GT(successes, 100);
}

TEST(CsmaTest, BackoffGrowsWithCongestion) {
  // Expected delay on failure grows with each attempt (BE escalation).
  dsp::Rng rng(264);
  double total_delay = 0.0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    total_delay += csma_ca([](double) { return true; }, rng).delay_us;
  }
  // Sum of expected slots: (2^3-1)/2 + (2^4-1)/2 + (2^5-1)/2 *3 = 3.5+7.5+15.5*3
  const double expected_slots = 3.5 + 7.5 + 15.5 * 3;
  EXPECT_NEAR(total_delay / trials, expected_slots * 320.0,
              0.15 * expected_slots * 320.0);
}

TEST(CsmaTest, RespectsConfigBounds) {
  dsp::Rng rng(265);
  CsmaConfig config;
  config.mac_min_be = 6;
  config.mac_max_be = 5;
  EXPECT_THROW(csma_ca([](double) { return false; }, rng, config), ContractError);
}

TEST(IntervalOracleTest, HalfOpenSemantics) {
  const auto oracle = interval_oracle({{10.0, 20.0}, {30.0, 40.0}});
  EXPECT_FALSE(oracle(9.9));
  EXPECT_TRUE(oracle(10.0));
  EXPECT_TRUE(oracle(19.9));
  EXPECT_FALSE(oracle(20.0));
  EXPECT_TRUE(oracle(35.0));
  EXPECT_FALSE(oracle(50.0));
}

}  // namespace
}  // namespace ctc::zigbee
