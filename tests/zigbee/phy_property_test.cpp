// Property-style sweeps over the ZigBee PHY: round trips for arbitrary
// payload sizes and contents on both demodulator paths, and the structural
// length formulas the rest of the system relies on.
#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "dsp/rng.h"
#include "zigbee/chip_sequences.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace ctc::zigbee {
namespace {

struct PhyCase {
  std::size_t payload_bytes;
  DemodKind demod;
};

std::string case_name(const ::testing::TestParamInfo<PhyCase>& info) {
  return (info.param.demod == DemodKind::coherent ? "coherent" : "differential") +
         std::to_string(info.param.payload_bytes);
}

class PhyRoundTripTest : public ::testing::TestWithParam<PhyCase> {
 protected:
  MacFrame random_frame(dsp::Rng& rng) const {
    MacFrame frame;
    frame.sequence = static_cast<std::uint8_t>(rng.next_u64());
    frame.payload.resize(GetParam().payload_bytes);
    for (auto& b : frame.payload) {
      b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
    }
    return frame;
  }
  Receiver make_receiver() const {
    ReceiverConfig config;
    config.profile.demod = GetParam().demod;
    return Receiver(config);
  }
};

TEST_P(PhyRoundTripTest, CleanRoundTripForRandomPayloads) {
  dsp::Rng rng(400 + GetParam().payload_bytes);
  Transmitter tx;
  const Receiver rx = make_receiver();
  for (int trial = 0; trial < 3; ++trial) {
    const MacFrame frame = random_frame(rng);
    const auto result = rx.receive(tx.transmit_frame(frame));
    ASSERT_TRUE(result.frame_ok()) << "trial " << trial;
    EXPECT_EQ(result.mac->payload, frame.payload);
    EXPECT_EQ(result.mac->sequence, frame.sequence);
  }
}

TEST_P(PhyRoundTripTest, NoisyRoundTripAt14Db) {
  dsp::Rng rng(500 + GetParam().payload_bytes);
  Transmitter tx;
  const Receiver rx = make_receiver();
  const MacFrame frame = random_frame(rng);
  const cvec wave = tx.transmit_frame(frame);
  int successes = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const auto result = rx.receive(channel::add_awgn(wave, 14.0, rng));
    if (result.frame_ok() && result.mac->payload == frame.payload) ++successes;
  }
  EXPECT_EQ(successes, 5);
}

TEST_P(PhyRoundTripTest, WaveformAndChipLengthFormulas) {
  dsp::Rng rng(600 + GetParam().payload_bytes);
  Transmitter tx;
  const MacFrame frame = random_frame(rng);
  const bytevec psdu = frame.serialize();
  const std::size_t symbols = Ppdu::symbol_count(psdu.size());
  const auto chips = tx.chips_for_psdu(psdu);
  EXPECT_EQ(chips.size(), symbols * kChipsPerSymbol);
  const cvec wave = tx.transmit_frame(frame);
  EXPECT_EQ(wave.size(), (chips.size() + 1) * 2);

  const auto result = Receiver().receive(wave);
  ASSERT_TRUE(result.phr_ok);
  EXPECT_EQ(result.soft_chips.size(), 2 * psdu.size() * kChipsPerSymbol);
  EXPECT_EQ(result.freq_chips.size(), result.soft_chips.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PhyRoundTripTest,
    ::testing::Values(PhyCase{1, DemodKind::coherent},
                      PhyCase{1, DemodKind::differential},
                      PhyCase{5, DemodKind::coherent},
                      PhyCase{5, DemodKind::differential},
                      PhyCase{23, DemodKind::coherent},
                      PhyCase{23, DemodKind::differential},
                      PhyCase{60, DemodKind::coherent},
                      PhyCase{60, DemodKind::differential},
                      PhyCase{105, DemodKind::coherent},
                      PhyCase{105, DemodKind::differential}),
    case_name);

TEST(PhyPropertyTest, MaximumPayloadRoundTrips) {
  // 127-byte PSDU = 105-byte payload + 11 header/FCS bytes... use payload
  // that exactly hits kMaxPsduBytes.
  MacFrame frame;
  frame.payload.assign(kMaxPsduBytes - 11, 0xA5);
  Transmitter tx;
  const auto result = Receiver().receive(tx.transmit_frame(frame));
  ASSERT_TRUE(result.frame_ok());
  EXPECT_EQ(result.mac->payload.size(), kMaxPsduBytes - 11);
}

TEST(PhyPropertyTest, AllSymbolValuesSurviveTheWaveform) {
  // A payload exercising every 4-bit symbol value in both nibbles.
  MacFrame frame;
  for (int v = 0; v < 16; ++v) {
    frame.payload.push_back(static_cast<std::uint8_t>(v | ((15 - v) << 4)));
  }
  Transmitter tx;
  for (DemodKind demod : {DemodKind::coherent, DemodKind::differential}) {
    ReceiverConfig config;
    config.profile.demod = demod;
    const auto result = Receiver(config).receive(tx.transmit_frame(frame));
    ASSERT_TRUE(result.frame_ok());
    EXPECT_EQ(result.mac->payload, frame.payload);
  }
}

}  // namespace
}  // namespace ctc::zigbee
