#include "zigbee/mac.h"

#include <gtest/gtest.h>

#include "dsp/require.h"

namespace ctc::zigbee {
namespace {

TEST(FrameControlTest, BitsRoundTripForAllTypesAndModes) {
  for (FrameType type : {FrameType::beacon, FrameType::data, FrameType::ack,
                         FrameType::command}) {
    for (AddressingMode dest : {AddressingMode::none, AddressingMode::short_addr,
                                AddressingMode::extended}) {
      for (AddressingMode src : {AddressingMode::none, AddressingMode::short_addr,
                                 AddressingMode::extended}) {
        FrameControl control;
        control.type = type;
        control.dest_mode = dest;
        control.src_mode = src;
        control.ack_request = true;
        const auto parsed = FrameControl::from_bits(control.to_bits());
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->type, type);
        EXPECT_EQ(parsed->dest_mode, dest);
        EXPECT_EQ(parsed->src_mode, src);
        EXPECT_TRUE(parsed->ack_request);
      }
    }
  }
}

TEST(FrameControlTest, RejectsReservedValues) {
  EXPECT_FALSE(FrameControl::from_bits(0x0004).has_value());  // type 4
  EXPECT_FALSE(FrameControl::from_bits(0x0400).has_value());  // dest mode 1
  EXPECT_FALSE(FrameControl::from_bits(0x4000).has_value());  // src mode 1
}

TEST(GeneralMacFrameTest, ShortAddressRoundTrip) {
  GeneralMacFrame frame;
  frame.sequence = 200;
  frame.dest = MacAddress::short_address(0x1234);
  frame.src = MacAddress::short_address(0x5678);
  frame.payload = {9, 8, 7};
  const auto parsed = GeneralMacFrame::parse(frame.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sequence, 200);
  EXPECT_EQ(parsed->dest.short_addr, 0x1234);
  EXPECT_EQ(parsed->src.short_addr, 0x5678);
  EXPECT_EQ(parsed->payload, (bytevec{9, 8, 7}));
  EXPECT_EQ(parsed->control.type, FrameType::data);
}

TEST(GeneralMacFrameTest, ExtendedAddressRoundTrip) {
  GeneralMacFrame frame;
  frame.control.dest_mode = AddressingMode::extended;
  frame.control.src_mode = AddressingMode::extended;
  frame.dest = MacAddress::extended(0x0011223344556677ULL);
  frame.src = MacAddress::extended(0x8899AABBCCDDEEFFULL);
  frame.payload = {1};
  const auto parsed = GeneralMacFrame::parse(frame.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dest.extended_addr, 0x0011223344556677ULL);
  EXPECT_EQ(parsed->src.extended_addr, 0x8899AABBCCDDEEFFULL);
}

TEST(GeneralMacFrameTest, MixedModesAndNoCompression) {
  GeneralMacFrame frame;
  frame.control.dest_mode = AddressingMode::short_addr;
  frame.control.src_mode = AddressingMode::extended;
  frame.control.pan_id_compression = false;
  frame.dest = MacAddress::short_address(0xAAAA);
  frame.src = MacAddress::extended(42);
  const auto parsed = GeneralMacFrame::parse(frame.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dest.short_addr, 0xAAAA);
  EXPECT_EQ(parsed->src.extended_addr, 42u);
}

TEST(GeneralMacFrameTest, MismatchedControlModesThrow) {
  GeneralMacFrame frame;
  frame.control.dest_mode = AddressingMode::extended;  // but dest is short
  EXPECT_THROW(frame.serialize(), ContractError);
}

TEST(GeneralMacFrameTest, CorruptionRejected) {
  GeneralMacFrame frame;
  frame.payload = {5, 5, 5};
  bytevec psdu = frame.serialize();
  psdu[3] ^= 0x40;
  EXPECT_FALSE(GeneralMacFrame::parse(psdu).has_value());
  EXPECT_FALSE(GeneralMacFrame::parse(bytevec{1, 2, 3}).has_value());
}

TEST(GeneralMacFrameTest, AckEchoesSequenceAndIsMinimal) {
  GeneralMacFrame frame;
  frame.sequence = 99;
  frame.control.ack_request = true;
  const GeneralMacFrame ack = frame.make_ack();
  EXPECT_EQ(ack.control.type, FrameType::ack);
  EXPECT_EQ(ack.sequence, 99);
  const bytevec wire = ack.serialize();
  EXPECT_EQ(wire.size(), 5u);  // FCF + seq + FCS: the 802.15.4 imm-ack
  const auto parsed = GeneralMacFrame::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->control.type, FrameType::ack);
  EXPECT_EQ(parsed->sequence, 99);
}

TEST(MacEntityTest, DataAckExchange) {
  MacEntity gateway(MacAddress::short_address(0x0001));
  MacEntity bulb(MacAddress::short_address(0x0042));
  const GeneralMacFrame data =
      gateway.make_data_frame(bulb.address(), {'O', 'N'});
  const auto outcome = bulb.handle(data);
  EXPECT_TRUE(outcome.accepted);
  EXPECT_FALSE(outcome.duplicate);
  ASSERT_TRUE(outcome.ack.has_value());
  EXPECT_TRUE(gateway.matches_pending(*outcome.ack));
}

TEST(MacEntityTest, DuplicateSuppressionStillAcks) {
  MacEntity gateway(MacAddress::short_address(0x0001));
  MacEntity bulb(MacAddress::short_address(0x0042));
  const GeneralMacFrame data = gateway.make_data_frame(bulb.address(), {'X'});
  EXPECT_TRUE(bulb.handle(data).accepted);
  const auto replay = bulb.handle(data);  // attacker-style replay
  EXPECT_FALSE(replay.accepted);
  EXPECT_TRUE(replay.duplicate);
  EXPECT_TRUE(replay.ack.has_value());  // ACK still sent (Clause 6.7.2)
}

TEST(MacEntityTest, AddressAndPanFiltering) {
  MacEntity gateway(MacAddress::short_address(0x0001));
  MacEntity bulb(MacAddress::short_address(0x0042));
  MacEntity other(MacAddress::short_address(0x0099));
  const GeneralMacFrame data = gateway.make_data_frame(bulb.address(), {'Y'});
  EXPECT_FALSE(other.handle(data).accepted);
  // Broadcast reaches everyone.
  const GeneralMacFrame bcast =
      gateway.make_data_frame(MacAddress::short_address(0xFFFF), {'B'}, false);
  EXPECT_TRUE(other.handle(bcast).accepted);
  EXPECT_FALSE(other.handle(bcast).ack.has_value());
}

TEST(MacEntityTest, SequenceNumbersIncrement) {
  MacEntity gateway(MacAddress::short_address(0x0001));
  const auto a = gateway.make_data_frame(MacAddress::short_address(2), {});
  const auto b = gateway.make_data_frame(MacAddress::short_address(2), {});
  EXPECT_EQ(static_cast<std::uint8_t>(a.sequence + 1), b.sequence);
  EXPECT_FALSE(gateway.matches_pending(a.make_ack()));  // superseded by b
  EXPECT_TRUE(gateway.matches_pending(b.make_ack()));
}

}  // namespace
}  // namespace ctc::zigbee
