// Equivalence suite for the bit-packed popcount despreading fast path.
//
// Unlike the FFT convolution pair, these two implementations are integer
// pipelines with the same tie-break order (lowest symbol index wins), so
// the contract is exact: symbol, distance and accepted must match the byte
// reference bit-for-bit for every input.
#include "zigbee/dsss.h"

#include <gtest/gtest.h>

#include "dsp/rng.h"
#include "zigbee/chip_sequences.h"

namespace ctc::zigbee {
namespace {

std::vector<std::uint8_t> chips_with_errors(std::uint8_t symbol,
                                            std::span<const std::size_t> flips) {
  const ChipSequence& sequence = chips_for_symbol(symbol);
  std::vector<std::uint8_t> chips(sequence.begin(), sequence.end());
  for (std::size_t flip : flips) chips[flip] ^= 1;
  return chips;
}

TEST(DespreadEquivalenceTest, PackedTableMatchesByteTable) {
  const auto& packed = packed_chip_table();
  const auto& bytes = chip_table();
  for (std::size_t s = 0; s < kNumSymbols; ++s) {
    EXPECT_EQ(packed[s], pack_chips(bytes[s])) << "symbol " << s;
  }
}

TEST(DespreadEquivalenceTest, PackedHammingMatchesByteHamming) {
  dsp::Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> chips(kChipsPerSymbol);
    for (auto& c : chips) c = rng.uniform(0.0, 1.0) < 0.5 ? 0 : 1;
    const PackedChips packed = pack_chips(chips);
    for (std::size_t s = 0; s < kNumSymbols; ++s) {
      EXPECT_EQ(hamming_distance_packed(packed, packed_chip_table()[s]),
                hamming_distance(chips, chip_table()[s]));
    }
  }
}

TEST(DespreadEquivalenceTest, BlockMatchesReferenceAcrossErrorPatterns) {
  // Every symbol x chip-error patterns from clean to past-threshold: the
  // packed result must be byte-identical to the reference, including the
  // accepted flag at the threshold boundary.
  const std::vector<std::vector<std::size_t>> patterns = {
      {},                                        // clean
      {0},                                       // single head error
      {31},                                      // single tail error
      {0, 31},                                   // both ends
      {1, 3, 5, 7, 9},                           // 5 scattered
      {0, 4, 8, 12, 16, 20, 24, 28},             // 8 periodic
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10},        // 11 — past threshold 10
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},  // 16: ambiguous
  };
  for (std::uint8_t symbol = 0; symbol < kNumSymbols; ++symbol) {
    for (const auto& pattern : patterns) {
      const auto chips = chips_with_errors(symbol, pattern);
      for (std::size_t threshold : {0u, 5u, 10u, 32u}) {
        const DespreadResult fast = despread_block(chips, threshold);
        const DespreadResult reference =
            despread_block_reference(chips, threshold);
        EXPECT_EQ(fast.symbol, reference.symbol)
            << "symbol " << int(symbol) << " errors " << pattern.size();
        EXPECT_EQ(fast.distance, reference.distance);
        EXPECT_EQ(fast.accepted, reference.accepted);
      }
    }
  }
}

TEST(DespreadEquivalenceTest, BlockMatchesReferenceOnRandomChips) {
  // Uniform random chips exercise the tie-break order hard: many symbols
  // land at equal distance and both paths must pick the same one.
  dsp::Rng rng(32);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> chips(kChipsPerSymbol);
    for (auto& c : chips) c = rng.uniform(0.0, 1.0) < 0.5 ? 0 : 1;
    const DespreadResult fast = despread_block(chips, 10);
    const DespreadResult reference = despread_block_reference(chips, 10);
    EXPECT_EQ(fast.symbol, reference.symbol) << "trial " << trial;
    EXPECT_EQ(fast.distance, reference.distance);
    EXPECT_EQ(fast.accepted, reference.accepted);
  }
}

TEST(DespreadEquivalenceTest, DifferentialBlockMatchesReference) {
  // All symbols x previous-chip contexts (0, 1, and "no predecessor"),
  // random frequency values with sign errors sprinkled in.
  dsp::Rng rng(33);
  for (int trial = 0; trial < 300; ++trial) {
    rvec freq(kChipsPerSymbol);
    for (auto& f : freq) {
      f = rng.uniform(-1.0, 1.0);
      if (rng.uniform(0.0, 1.0) < 0.05) f = 0.0;  // exact-zero edge case
    }
    for (std::uint8_t previous : {std::uint8_t{0}, std::uint8_t{1},
                                  std::uint8_t{2}}) {
      const DespreadResult fast =
          despread_differential_block(freq, previous, 9);
      const DespreadResult reference =
          despread_differential_block_reference(freq, previous, 9);
      EXPECT_EQ(fast.symbol, reference.symbol)
          << "trial " << trial << " previous " << int(previous);
      EXPECT_EQ(fast.distance, reference.distance);
      EXPECT_EQ(fast.accepted, reference.accepted);
    }
  }
}

TEST(DespreadEquivalenceTest, StreamDecodesCleanSpreadFrames) {
  // End-to-end sanity on the public APIs: a spread symbol stream decodes
  // back exactly, and the differential stream API stays self-consistent.
  std::vector<std::uint8_t> symbols;
  for (std::uint8_t s = 0; s < kNumSymbols; ++s) symbols.push_back(s);
  const auto chips = spread(symbols);
  const auto results = despread(chips, 0);
  ASSERT_EQ(results.size(), symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_TRUE(results[i].accepted);
    EXPECT_EQ(results[i].symbol, symbols[i]);
    EXPECT_EQ(results[i].distance, 0u);
  }
}

}  // namespace
}  // namespace ctc::zigbee
