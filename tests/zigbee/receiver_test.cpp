#include "zigbee/receiver.h"

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/impairments.h"
#include "dsp/rng.h"
#include "dsp/stats.h"
#include "zigbee/app.h"
#include "zigbee/chip_sequences.h"
#include "zigbee/transmitter.h"

namespace ctc::zigbee {
namespace {

MacFrame test_frame() { return make_text_frame(7, 3); }

class ReceiverProfileTest : public ::testing::TestWithParam<DemodKind> {
 protected:
  Receiver make_receiver() const {
    ReceiverConfig config;
    config.profile.demod = GetParam();
    return Receiver(config);
  }
};

TEST_P(ReceiverProfileTest, CleanFrameDecodesEndToEnd) {
  Transmitter tx;
  const MacFrame frame = test_frame();
  const cvec wave = tx.transmit_frame(frame);
  const ReceiveResult result = make_receiver().receive(wave);
  EXPECT_TRUE(result.shr_ok);
  EXPECT_TRUE(result.phr_ok);
  EXPECT_TRUE(result.psdu_complete);
  ASSERT_TRUE(result.mac.has_value());
  EXPECT_TRUE(result.frame_ok());
  EXPECT_EQ(text_of(*result.mac), "00007");
  EXPECT_EQ(result.mac->sequence, 3);
  // Clean chips: zero Hamming distance everywhere.
  for (std::size_t d : result.hamming_distances) EXPECT_EQ(d, 0u);
}

TEST_P(ReceiverProfileTest, DecodesUnderModerateNoise) {
  Transmitter tx;
  dsp::Rng rng(60);
  const cvec wave = tx.transmit_frame(test_frame());
  const Receiver receiver = make_receiver();
  int ok = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const cvec noisy = channel::add_awgn(wave, 12.0, rng);
    if (receiver.receive(noisy).frame_ok()) ++ok;
  }
  EXPECT_EQ(ok, 10);
}

TEST_P(ReceiverProfileTest, DecodesUnderGainAndPhaseRotation) {
  Transmitter tx;
  const cvec wave = tx.transmit_frame(test_frame());
  const cvec rotated = channel::apply_gain(
      channel::apply_phase_offset(wave, 2.1), 0.35);
  const ReceiveResult result = make_receiver().receive(rotated);
  EXPECT_TRUE(result.frame_ok());
}

TEST_P(ReceiverProfileTest, TooShortWaveformFlagsFailureWithoutThrowing) {
  Transmitter tx;
  cvec wave = tx.transmit_frame(test_frame());
  wave.resize(100);
  const ReceiveResult result = make_receiver().receive(wave);
  EXPECT_FALSE(result.shr_ok);
  EXPECT_FALSE(result.frame_ok());
}

TEST_P(ReceiverProfileTest, TruncatedPsduFailsPhrStage) {
  Transmitter tx;
  cvec wave = tx.transmit_frame(test_frame());
  wave.resize(wave.size() - 300);  // header survives, PSDU does not fit
  const ReceiveResult result = make_receiver().receive(wave);
  EXPECT_TRUE(result.shr_ok);
  EXPECT_FALSE(result.phr_ok);
  EXPECT_FALSE(result.frame_ok());
}

TEST_P(ReceiverProfileTest, NoiseOnlyInputIsRejected) {
  dsp::Rng rng(61);
  cvec noise(4000);
  for (auto& x : noise) x = rng.complex_gaussian(1.0);
  const ReceiveResult result = make_receiver().receive(noise);
  EXPECT_FALSE(result.frame_ok());
}

INSTANTIATE_TEST_SUITE_P(Demods, ReceiverProfileTest,
                         ::testing::Values(DemodKind::differential,
                                           DemodKind::coherent));

TEST(ReceiverTest, ProfilesExposeExpectedDefaults) {
  const ReceiverProfile usrp = ReceiverProfile::usrp();
  EXPECT_EQ(usrp.demod, DemodKind::differential);
  EXPECT_DOUBLE_EQ(usrp.sensitivity_gain_db, 0.0);
  const ReceiverProfile cc = ReceiverProfile::cc26x2r1();
  EXPECT_EQ(cc.demod, DemodKind::coherent);
  EXPECT_GT(cc.sensitivity_gain_db, 0.0);
}

TEST(ReceiverTest, SoftAndFreqChipTapsCoverPsdu) {
  Transmitter tx;
  const MacFrame frame = test_frame();
  const cvec wave = tx.transmit_frame(frame);
  const ReceiveResult result = Receiver().receive(wave);
  const std::size_t psdu_chips = 2 * frame.serialize().size() * kChipsPerSymbol;
  EXPECT_EQ(result.soft_chips.size(), psdu_chips);
  EXPECT_EQ(result.freq_chips.size(), psdu_chips);
  EXPECT_EQ(result.hard_chips.size(), psdu_chips);
  // Clean link: coherent soft chips sit at +-1, freq chips at +-1.
  for (double v : result.soft_chips) EXPECT_NEAR(std::abs(v), 1.0, 1e-6);
  for (double v : result.freq_chips) EXPECT_NEAR(std::abs(v), 1.0, 1e-6);
}

TEST(ReceiverTest, ChannelEstimateRecoversAppliedGain) {
  Transmitter tx;
  const cvec wave = tx.transmit_frame(test_frame());
  const cplx gain{0.0, 0.5};  // 90 degrees, -6 dB
  const cvec faded = channel::apply_gain(channel::apply_phase_offset(wave, kPi / 2.0), 0.5);
  const ReceiveResult result = Receiver().receive(faded);
  EXPECT_NEAR(std::abs(result.channel_estimate - gain), 0.0, 0.01);
}

TEST(ReceiverTest, SnrEstimateTracksTrueSnr) {
  Transmitter tx;
  dsp::Rng rng(66);
  const cvec wave = tx.transmit_frame(test_frame());
  for (double snr_db : {5.0, 10.0, 15.0, 20.0}) {
    double total = 0.0;
    const int trials = 8;
    for (int t = 0; t < trials; ++t) {
      const cvec noisy = channel::add_awgn(wave, snr_db, rng);
      const ReceiveResult result = Receiver().receive(noisy);
      total += result.snr_estimate_db;
    }
    EXPECT_NEAR(total / trials, snr_db, 1.5) << "snr " << snr_db;
  }
}

TEST(ReceiverTest, NoiseEstimateFeedsDefenseCorrection) {
  Transmitter tx;
  dsp::Rng rng(67);
  const cvec wave = tx.transmit_frame(test_frame());
  const cvec noisy = channel::add_awgn(wave, 9.0, rng);
  const ReceiveResult result = Receiver().receive(noisy);
  ASSERT_TRUE(result.phr_ok);
  EXPECT_NEAR(result.noise_variance_estimate, dsp::from_db(-9.0), 0.04);
}

TEST(ReceiverTest, SynchronizeFindsFrameOffset) {
  Transmitter tx;
  dsp::Rng rng(62);
  const cvec wave = tx.transmit_frame(test_frame());
  for (std::size_t offset : {0u, 17u, 250u}) {
    cvec padded(offset);
    for (auto& x : padded) x = rng.complex_gaussian(0.01);
    padded.insert(padded.end(), wave.begin(), wave.end());
    const auto found = Receiver().synchronize(padded, 400);
    ASSERT_TRUE(found.has_value()) << "offset=" << offset;
    EXPECT_EQ(*found, offset);
  }
}

TEST(ReceiverTest, SynchronizeRejectsNoiseOnly) {
  dsp::Rng rng(63);
  cvec noise(2000);
  for (auto& x : noise) x = rng.complex_gaussian(1.0);
  EXPECT_FALSE(Receiver().synchronize(noise, 1000).has_value());
}

TEST(ReceiverTest, SynchronizeThenReceiveDecodes) {
  Transmitter tx;
  dsp::Rng rng(64);
  const cvec wave = tx.transmit_frame(test_frame());
  cvec padded(123);
  for (auto& x : padded) x = rng.complex_gaussian(0.001);
  padded.insert(padded.end(), wave.begin(), wave.end());
  Receiver receiver;
  const auto offset = receiver.synchronize(padded, 300);
  ASSERT_TRUE(offset.has_value());
  const ReceiveResult result =
      receiver.receive(std::span<const cplx>(padded).subspan(*offset));
  EXPECT_TRUE(result.frame_ok());
}

TEST(ReceiverTest, TighterThresholdRejectsDamagedChips) {
  // Corrupt a slice of the PSDU waveform: strict threshold drops the frame,
  // generous threshold still decodes it.
  Transmitter tx;
  cvec wave = tx.transmit_frame(test_frame());
  dsp::Rng rng(65);
  for (std::size_t i = 1600; i < 1640; ++i) wave[i] = rng.complex_gaussian(1.0);
  ReceiverConfig strict;
  strict.profile.correlation_threshold = 2;
  ReceiverConfig generous;
  generous.profile.correlation_threshold = 20;
  EXPECT_FALSE(Receiver(strict).receive(wave).psdu_complete);
  EXPECT_TRUE(Receiver(generous).receive(wave).psdu_complete);
}

}  // namespace
}  // namespace ctc::zigbee
