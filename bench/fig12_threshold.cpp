// Fig. 12 — Defense strategy performance: per-frame DE^2 of 100 held-out
// test frames per link per SNR, against the calibrated threshold.
//
// Paper: every tested ZigBee frame stays below 0.5 and every emulated frame
// stays above 0.5 for SNR >= 7 dB -> perfect detection where the attack is
// effective.
#include "bench_common.h"
#include "defense/detector.h"
#include "sim/defense_run.h"
#include "zigbee/app.h"

using namespace ctc;

int main() {
  dsp::Rng rng = bench::make_rng("Fig. 12: defense performance vs threshold");
  const auto frames = zigbee::make_text_workload(100);
  defense::Detector extractor;
  constexpr std::size_t kTrain = 50;
  constexpr std::size_t kTest = 100;

  // Calibrate on 50 frames per link at each SNR (paper Sec. VII-B), pooling
  // into one global threshold.
  rvec train_auth, train_emu;
  const std::vector<double> snrs = {7.0, 9.0, 11.0, 13.0, 15.0, 17.0};
  std::vector<sim::Link> auth_links, emu_links;
  for (double snr : snrs) {
    sim::LinkConfig authentic;
    authentic.environment = channel::Environment::awgn(snr);
    sim::LinkConfig emulated = authentic;
    emulated.kind = sim::LinkKind::emulated;
    auth_links.emplace_back(authentic);
    emu_links.emplace_back(emulated);
  }
  for (std::size_t i = 0; i < snrs.size(); ++i) {
    const auto a = sim::collect_defense_samples(auth_links[i], frames, kTrain,
                                                extractor, rng);
    const auto e = sim::collect_defense_samples(emu_links[i], frames, kTrain,
                                                extractor, rng);
    train_auth.insert(train_auth.end(), a.distances.begin(), a.distances.end());
    train_emu.insert(train_emu.end(), e.distances.begin(), e.distances.end());
  }
  const double threshold = defense::Detector::calibrate_threshold(train_auth, train_emu);
  std::printf("calibrated threshold Q = %.4f (paper: 0.5)\n\n", threshold);

  defense::DetectorConfig tuned;
  tuned.threshold = threshold;
  defense::Detector detector(tuned);

  sim::Table table({"SNR", "auth DE^2 max", "emu DE^2 min", "false alarms",
                    "missed attacks"});
  for (std::size_t i = 0; i < snrs.size(); ++i) {
    const auto a = sim::collect_defense_samples(auth_links[i], frames, kTest,
                                                detector, rng);
    const auto e = sim::collect_defense_samples(emu_links[i], frames, kTest,
                                                detector, rng);
    std::size_t false_alarms = 0;
    for (double d : a.distances) false_alarms += d >= threshold;
    std::size_t missed = 0;
    for (double d : e.distances) missed += d < threshold;
    table.add_row({sim::Table::num(snrs[i], 0) + "dB",
                   sim::Table::num(a.max_distance(), 4),
                   sim::Table::num(e.min_distance(), 4),
                   std::to_string(false_alarms) + "/" + std::to_string(a.frames_used),
                   std::to_string(missed) + "/" + std::to_string(e.frames_used)});
  }
  table.print(std::cout);
  std::printf("\nshape check (paper): max authentic DE^2 < Q < min emulated DE^2 at\n"
              "every SNR >= 7 dB -> zero false alarms, zero missed attacks.\n");
  return 0;
}
