// Fig. 12 — Defense strategy performance: per-frame DE^2 of 100 held-out
// test frames per link per SNR, against the calibrated threshold.
//
// Paper: every tested ZigBee frame stays below 0.5 and every emulated frame
// stays above 0.5 for SNR >= 7 dB -> perfect detection where the attack is
// effective.
#include "bench_common.h"
#include "defense/detector.h"
#include "sim/defense_run.h"
#include "zigbee/app.h"

using namespace ctc;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine =
      bench::make_engine(options, "Fig. 12: defense performance vs threshold");
  const auto frames = zigbee::make_text_workload(100);
  defense::Detector extractor;
  const std::size_t train_frames = options.trials_or(50);
  const std::size_t test_frames = options.trials_or(100);

  // Calibrate on 50 frames per link at each SNR (paper Sec. VII-B), pooling
  // into one global threshold.
  rvec train_auth, train_emu;
  const std::vector<double> snrs = {7.0, 9.0, 11.0, 13.0, 15.0, 17.0};
  std::vector<sim::Link> auth_links, emu_links;
  for (double snr : snrs) {
    sim::LinkConfig authentic;
    authentic.environment = channel::Environment::awgn(snr);
    sim::LinkConfig emulated = authentic;
    emulated.kind = sim::LinkKind::emulated;
    auth_links.emplace_back(authentic);
    emu_links.emplace_back(emulated);
  }
  for (std::size_t i = 0; i < snrs.size(); ++i) {
    const auto a = sim::collect_defense_samples(auth_links[i], frames,
                                                train_frames, extractor, engine);
    const auto e = sim::collect_defense_samples(emu_links[i], frames,
                                                train_frames, extractor, engine);
    train_auth.insert(train_auth.end(), a.distances.begin(), a.distances.end());
    train_emu.insert(train_emu.end(), e.distances.begin(), e.distances.end());
  }
  const double threshold = defense::Detector::calibrate_threshold(train_auth, train_emu);
  std::printf("calibrated threshold Q = %.4f (paper: 0.5)\n\n", threshold);

  defense::DetectorConfig tuned;
  tuned.threshold = threshold;
  defense::Detector detector(tuned);

  bench::JsonReport report(options, "fig12_threshold");
  std::vector<double> auth_max, emu_min, false_alarm_counts, missed_counts;

  sim::Table table({"SNR", "auth DE^2 max", "emu DE^2 min", "false alarms",
                    "missed attacks"});
  for (std::size_t i = 0; i < snrs.size(); ++i) {
    const auto a = sim::collect_defense_samples(auth_links[i], frames,
                                                test_frames, detector, engine);
    const auto e = sim::collect_defense_samples(emu_links[i], frames,
                                                test_frames, detector, engine);
    std::size_t false_alarms = 0;
    for (double d : a.distances) false_alarms += d >= threshold;
    std::size_t missed = 0;
    for (double d : e.distances) missed += d < threshold;
    table.add_row({sim::Table::num(snrs[i], 0) + "dB",
                   sim::Table::num(a.max_distance(), 4),
                   sim::Table::num(e.min_distance(), 4),
                   std::to_string(false_alarms) + "/" + std::to_string(a.frames_used),
                   std::to_string(missed) + "/" + std::to_string(e.frames_used)});
    auth_max.push_back(a.max_distance());
    emu_min.push_back(e.min_distance());
    false_alarm_counts.push_back(static_cast<double>(false_alarms));
    missed_counts.push_back(static_cast<double>(missed));
  }
  table.print();
  std::printf("\nshape check (paper): max authentic DE^2 < Q < min emulated DE^2 at\n"
              "every SNR >= 7 dB -> zero false alarms, zero missed attacks.\n");

  report.set("threshold", threshold);
  report.set("snr_db", snrs);
  report.set("authentic_max_de2", auth_max);
  report.set("emulated_min_de2", emu_min);
  report.set("false_alarms", false_alarm_counts);
  report.set("missed_attacks", missed_counts);
  bench::finish(report, options);
  return 0;
}
