// Table I — Frequency points of the observed ZigBee waveform.
//
// Prints the 64-point FFT magnitudes of six consecutive WiFi-symbol windows
// of a real ZigBee frame (rows 1-7 and 55-64 as in the paper), the coarse
// highlight counts, and the chosen subcarrier indexes. Paper outcome:
// indexes 1-4 and 62-64 (1-based) are chosen.
#include "attack/subcarrier_select.h"
#include "bench_common.h"
#include "dsp/resample.h"
#include "zigbee/app.h"
#include "zigbee/transmitter.h"

using namespace ctc;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_banner(options, "Table I: frequency points of the ZigBee waveform");

  zigbee::Transmitter tx;
  const cvec observed = tx.transmit_frame(zigbee::make_text_frame(0, 0));
  const cvec upsampled = dsp::upsample(observed, 5);

  attack::SubcarrierSelector selector;
  const auto magnitudes = selector.window_magnitudes(upsampled);
  const auto result = selector.select(magnitudes);

  const std::size_t windows = std::min<std::size_t>(6, magnitudes.size());
  std::vector<std::string> header = {"Index"};
  for (std::size_t w = 0; w < windows; ++w) header.push_back(std::to_string(w + 1));
  sim::Table table(header);
  auto add_row = [&](std::size_t bin) {
    std::vector<std::string> row = {std::to_string(bin + 1)};  // paper is 1-based
    for (std::size_t w = 0; w < windows; ++w) {
      row.push_back(sim::Table::num(magnitudes[w][bin], 4));
    }
    table.add_row(row);
  };
  for (std::size_t bin = 0; bin < 7; ++bin) add_row(bin);
  for (std::size_t bin = 54; bin < 64; ++bin) add_row(bin);
  table.print();

  bench::section("coarse estimation (votes above threshold 3)");
  sim::Table votes({"Index (1-based)", "votes", "windows"});
  for (std::size_t bin : {0u, 1u, 2u, 3u, 4u, 61u, 62u, 63u}) {
    votes.add_row({std::to_string(bin + 1), std::to_string(result.votes[bin]),
                   std::to_string(magnitudes.size())});
  }
  votes.print();

  bench::section("detailed estimation (chosen subcarriers)");
  std::printf("measured (1-based):");
  std::vector<double> chosen;
  for (std::size_t bin : result.bins) {
    std::printf(" %zu", bin + 1);
    chosen.push_back(static_cast<double>(bin + 1));
  }
  std::printf("\npaper:              1 2 3 4 62 63 64\n");

  bench::JsonReport report(options, "table1_freq_points");
  report.set("chosen_bins_1based", chosen);
  bench::finish(report, options);
  return 0;
}
