// Shared helpers for the reproduction bench binaries. Every bench prints its
// RNG seed and the paper's reference numbers next to the measured ones.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "dsp/rng.h"
#include "sim/table.h"

namespace ctc::bench {

inline constexpr std::uint64_t kDefaultSeed = 20190707;  // ICDCS'19

inline dsp::Rng make_rng(const char* bench_name) {
  std::printf("=== %s ===\n", bench_name);
  std::printf("seed: %llu\n\n", static_cast<unsigned long long>(kDefaultSeed));
  return dsp::Rng(kDefaultSeed);
}

inline void section(const char* title) { std::printf("\n--- %s ---\n", title); }

}  // namespace ctc::bench
