// Shared CLI layer for the reproduction bench binaries.
//
// Every bench accepts the same flags:
//   --seed=N      RNG seed (default 20190707, the ICDCS'19 date)
//   --trials=N    override the bench's per-point trial counts
//   --threads=N   worker threads (default: CTC_THREADS env, then hardware)
//   --json        append a one-line machine-readable report to stdout
//   --telemetry   enable the sim::telemetry layer: print a per-stage
//                 counter/timing summary and embed the deterministic subset
//                 (no wall-clock timers) in the --json report
//   --telemetry-out=FILE
//                 also write the full telemetry JSON (including timing
//                 histograms) to FILE; implies --telemetry
//
// Flags also accept the two-argument form (`--seed 7`). The human-readable
// output always prints; with --json the LAST line of stdout is a single
// JSON object, so `./bench --json | tail -n1 > BENCH_<name>.json` captures
// the trajectory file. The JSON deliberately excludes thread count and
// timing: it records simulation results, which are bit-identical for a
// fixed seed at any thread count — the CI determinism gate diffs the JSON
// of a threads=1 and a threads=4 run.
//
// All output in this layer goes through C stdio (std::printf / PRIu64);
// benches should use sim::Table::print() rather than iostream so rows and
// logs share one buffering path.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "sim/table.h"
#include "sim/telemetry.h"
#include "sim/thread_pool.h"

namespace ctc::bench {

inline constexpr std::uint64_t kDefaultSeed = 20190707;  // ICDCS'19

/// Options shared by every bench binary.
struct Options {
  std::uint64_t seed = kDefaultSeed;
  std::size_t threads = 0;            ///< 0 = auto (CTC_THREADS, hardware)
  std::optional<std::size_t> trials;  ///< overrides per-bench trial counts
  bool json = false;                  ///< emit the machine-readable report
  bool telemetry = false;             ///< enable the sim::telemetry layer
  bool dry_run = false;               ///< print resolved config JSON, exit 0
  std::string telemetry_out;          ///< full telemetry JSON file (or empty)

  bool telemetry_enabled() const {
    return telemetry || !telemetry_out.empty();
  }

  /// The trial count a bench should use where it defaults to `fallback`.
  std::size_t trials_or(std::size_t fallback) const {
    return trials.value_or(fallback);
  }
};

namespace detail {

inline bool flag_value(int argc, char** argv, int& i, const char* name,
                       const char** out) {
  const std::size_t len = std::strlen(name);
  const char* arg = argv[i];
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0') {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s expects a value\n", name);
      std::exit(2);
    }
    *out = argv[++i];
    return true;
  }
  return false;
}

inline std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "invalid value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

/// --dry-run: print the fully resolved run configuration (seed, trials,
/// thread count after CTC_THREADS/hardware resolution, telemetry settings)
/// as one JSON line and exit 0 without constructing an engine or running
/// any trials. Lets scripts and CI validate flag plumbing cheaply.
[[noreturn]] inline void print_dry_run_and_exit(const Options& options,
                                                const char* bench_name) {
  auto quoted = [](const std::string& text) {
    std::string out = "\"";
    for (char c : text) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  };
  std::printf("{\"bench\":%s,\"dry_run\":true,\"seed\":%" PRIu64 ",\"trials\":",
              quoted(bench_name).c_str(), options.seed);
  if (options.trials) {
    std::printf("%zu", *options.trials);
  } else {
    std::fputs("null", stdout);
  }
  std::printf(",\"threads\":%zu,\"json\":%s,\"telemetry\":%s,\"telemetry_out\":",
              sim::ThreadPool::resolve_threads(options.threads),
              options.json ? "true" : "false",
              options.telemetry_enabled() ? "true" : "false");
  if (options.telemetry_out.empty()) {
    std::fputs("null}\n", stdout);
  } else {
    std::printf("%s}\n", quoted(options.telemetry_out).c_str());
  }
  std::exit(0);
}

}  // namespace detail

inline Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--json") == 0) {
      options.json = true;
    } else if (std::strcmp(argv[i], "--dry-run") == 0) {
      options.dry_run = true;
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      options.telemetry = true;
    } else if (detail::flag_value(argc, argv, i, "--telemetry-out", &value)) {
      options.telemetry_out = value;
    } else if (detail::flag_value(argc, argv, i, "--seed", &value)) {
      options.seed = detail::parse_u64(value, "--seed");
    } else if (detail::flag_value(argc, argv, i, "--threads", &value)) {
      options.threads =
          static_cast<std::size_t>(detail::parse_u64(value, "--threads"));
    } else if (detail::flag_value(argc, argv, i, "--trials", &value)) {
      options.trials =
          static_cast<std::size_t>(detail::parse_u64(value, "--trials"));
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: %s [--seed=N] [--trials=N] [--threads=N] [--json]\n"
          "          [--dry-run] [--telemetry] [--telemetry-out=FILE]\n"
          "  --seed=N     RNG seed (default %" PRIu64 ")\n"
          "  --trials=N   override the bench's per-point trial counts\n"
          "  --threads=N  worker threads (default: CTC_THREADS, then "
          "hardware)\n"
          "  --json       print a one-line JSON report as the last line\n"
          "  --dry-run    print the resolved run configuration as one JSON\n"
          "               line and exit without running any trials\n"
          "  --telemetry  per-stage counters/timings; embeds the\n"
          "               deterministic subset in the --json report\n"
          "  --telemetry-out=FILE  write full telemetry JSON (with timing\n"
          "               histograms) to FILE; implies --telemetry\n",
          argv[0], kDefaultSeed);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  sim::telemetry::set_enabled(options.telemetry_enabled());
  return options;
}

/// Prints the bench banner for benches with no Monte Carlo loop (no engine).
inline void print_banner(const Options& options, const char* bench_name) {
  if (options.dry_run) detail::print_dry_run_and_exit(options, bench_name);
  std::printf("=== %s ===\n", bench_name);
  std::printf("seed: %" PRIu64 "\n\n", options.seed);
}

/// Prints the bench banner and builds the trial engine the bench runs on.
inline sim::TrialEngine make_engine(const Options& options,
                                    const char* bench_name) {
  if (options.dry_run) detail::print_dry_run_and_exit(options, bench_name);
  sim::TrialEngine engine({options.seed, options.threads});
  std::printf("=== %s ===\n", bench_name);
  std::printf("seed: %" PRIu64 "   threads: %zu\n\n", options.seed,
              engine.threads());
  return engine;
}

inline void section(const char* title) { std::printf("\n--- %s ---\n", title); }

/// Insertion-ordered JSON object writer for the --json report. Doubles
/// print with %.17g (round-trip exact), so two runs that compute identical
/// results emit byte-identical lines — the property the CI determinism
/// diff checks.
class JsonReport {
 public:
  JsonReport(const Options& options, const char* bench_name)
      : enabled_(options.json), bench_name_(bench_name) {
    set("bench", bench_name);
    set("seed", options.seed);
  }

  const std::string& bench_name() const { return bench_name_; }

  void set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, quote(value));
  }
  void set(const std::string& key, const char* value) {
    set(key, std::string(value));
  }
  void set(const std::string& key, double value) {
    fields_.emplace_back(key, format_double(value));
  }
  void set(const std::string& key, std::uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
    fields_.emplace_back(key, buffer);
  }
  void set(const std::string& key, int value) {
    set(key, static_cast<std::uint64_t>(value));
  }
  void set(const std::string& key, const std::vector<double>& values) {
    std::string rendered = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) rendered += ",";
      rendered += format_double(values[i]);
    }
    rendered += "]";
    fields_.emplace_back(key, std::move(rendered));
  }
  /// Splices a pre-rendered JSON value (object/array) in as-is.
  void set_json(const std::string& key, std::string raw_json) {
    fields_.emplace_back(key, std::move(raw_json));
  }

  /// Prints the report as one line iff --json was given. Call last: the
  /// BENCH_*.json capture is `... --json | tail -n1`.
  void print() const {
    if (!enabled_) return;
    std::fputs("{", stdout);
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) std::fputs(",", stdout);
      std::printf("%s:%s", quote(fields_[i].first).c_str(),
                  fields_[i].second.c_str());
    }
    std::fputs("}\n", stdout);
  }

 private:
  static std::string format_double(double value) {
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
  }

  static std::string quote(const std::string& text) {
    std::string quoted = "\"";
    for (char c : text) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  }

  bool enabled_;
  std::string bench_name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

namespace detail {

/// Pretty-prints a nanosecond quantity with a unit that keeps 3-4 digits.
inline std::string format_ns(double ns) {
  char buffer[48];
  if (ns < 1e3) {
    std::snprintf(buffer, sizeof buffer, "%.0f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buffer, sizeof buffer, "%.2f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buffer, sizeof buffer, "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.2f s", ns / 1e9);
  }
  return buffer;
}

inline std::string format_metric_number(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

}  // namespace detail

/// Prints the per-stage telemetry summary as a table: one row per metric,
/// timers rendered in human time units, histograms with their mean/max.
inline void print_telemetry_summary(
    const std::vector<sim::telemetry::MetricValue>& metrics) {
  section("telemetry (per-stage counters & timings)");
  if (metrics.empty()) {
    std::printf("no telemetry recorded\n");
    return;
  }
  sim::Table table({"stage", "metric", "kind", "count", "total", "mean",
                    "min", "max"});
  for (const auto& metric : metrics) {
    const auto& cell = metric.cell;
    const double mean =
        cell.count > 0 ? cell.sum / static_cast<double>(cell.count) : 0.0;
    const bool is_timer = metric.kind == sim::telemetry::Kind::timer;
    auto value = [&](double v) {
      return is_timer ? detail::format_ns(v) : detail::format_metric_number(v);
    };
    table.add_row({metric.stage, metric.name,
                   sim::telemetry::kind_name(metric.kind),
                   std::to_string(cell.count), value(cell.sum), value(mean),
                   value(cell.min), value(cell.max)});
  }
  table.print();
}

/// Telemetry emission + report printing, shared by every bench `main`. Call
/// in place of `report.print()` as the last output statement:
///   * with --telemetry, prints the human-readable per-stage summary and
///     embeds the deterministic (timer-free) telemetry subset in the --json
///     report, so the CI determinism diff covers telemetry too;
///   * with --telemetry-out=FILE, also writes the full schema (including
///     wall-clock timing histograms) to FILE;
///   * always ends by printing the one-line JSON report (when --json).
inline void finish(JsonReport& report, const Options& options) {
  if (options.telemetry_enabled()) {
    const auto metrics = sim::telemetry::collect();
    print_telemetry_summary(metrics);
    report.set_json("telemetry", sim::telemetry::to_json(
                                     metrics, /*include_timers=*/false));
    if (!options.telemetry_out.empty()) {
      char extra[128];
      std::snprintf(extra, sizeof extra, "\"bench\":\"%s\",\"seed\":%" PRIu64 ",",
                    report.bench_name().c_str(), options.seed);
      const std::string full =
          sim::telemetry::to_json(metrics, /*include_timers=*/true, extra);
      if (std::FILE* file = std::fopen(options.telemetry_out.c_str(), "w")) {
        std::fputs(full.c_str(), file);
        std::fputc('\n', file);
        std::fclose(file);
        std::printf("\ntelemetry written to %s\n", options.telemetry_out.c_str());
      } else {
        std::fprintf(stderr, "cannot write telemetry to %s\n",
                     options.telemetry_out.c_str());
      }
    }
  }
  report.print();
}

}  // namespace ctc::bench
