// Extension bench — coexistence: the paper assumes a quiet overlapped
// spectrum (Sec. IV-A). Here ordinary WiFi traffic interferes with the
// ZigBee channel at various signal-to-interference ratios:
//  (a) how much background WiFi the authentic link tolerates,
//  (b) whether the attack still lands through interference,
//  (c) whether interference makes the defense false-alarm on authentic
//      traffic (it distorts the constellation too!).
#include <optional>

#include "bench_common.h"
#include "defense/detector.h"
#include "sim/defense_run.h"
#include "sim/interference.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "zigbee/app.h"

using namespace ctc;

namespace {

struct CoexObservation {
  bool failed = false;
  std::optional<double> distance_sq;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine = bench::make_engine(
      options, "Ablation: coexistence with background WiFi traffic");
  const auto frames = zigbee::make_text_workload(20);
  defense::Detector detector;  // default threshold 0.5; we report distances
  const std::size_t trials = options.trials_or(60);

  sim::LinkConfig auth_config;
  auth_config.environment = channel::Environment::awgn(17.0);
  sim::LinkConfig emu_config = auth_config;
  emu_config.kind = sim::LinkKind::emulated;
  const sim::Link authentic(auth_config);
  const sim::Link emulated(emu_config);
  const zigbee::Receiver receiver;

  bench::JsonReport report(options, "ablation_coexistence");
  report.set("trials", trials);
  std::vector<double> sirs, auth_pers, emu_pers, auth_means, emu_means;

  sim::Table table({"SIR", "auth PER", "emu PER", "auth DE^2 mean",
                    "emu DE^2 mean"});
  for (double sir_db : {30.0, 20.0, 10.0, 5.0, 0.0}) {
    sim::WifiInterferenceConfig interference;
    interference.sir_db = sir_db;

    // One engine trial = one interfered frame through one link.
    auto run_link = [&](const sim::Link& link) {
      return engine.map(trials, [&](std::size_t i, dsp::Rng& rng) {
        const cvec clean = link.clean_waveform(frames[i % frames.size()]);
        const cvec with_wifi = sim::add_wifi_interference(clean, interference, rng);
        const cvec received = auth_config.environment.propagate(with_wifi, rng);
        const auto rx = receiver.receive(received);
        CoexObservation observation;
        observation.failed = !rx.frame_ok();
        if (rx.freq_chips.size() >= 8) {
          observation.distance_sq = detector.classify(rx.freq_chips).distance_sq;
        }
        return observation;
      });
    };

    auto summarize = [](const std::vector<CoexObservation>& observations,
                        std::size_t& failures, rvec& distances) {
      for (const CoexObservation& o : observations) {
        failures += o.failed;
        if (o.distance_sq) distances.push_back(*o.distance_sq);
      }
    };
    std::size_t auth_fail = 0, emu_fail = 0;
    rvec auth_d, emu_d;
    summarize(run_link(authentic), auth_fail, auth_d);
    summarize(run_link(emulated), emu_fail, emu_d);

    auto mean = [](const rvec& v) {
      if (v.empty()) return 0.0;
      double acc = 0.0;
      for (double x : v) acc += x;
      return acc / static_cast<double>(v.size());
    };
    const double trials_d = static_cast<double>(trials);
    table.add_row({sim::Table::num(sir_db, 0) + "dB",
                   sim::Table::num(static_cast<double>(auth_fail) / trials_d, 3),
                   sim::Table::num(static_cast<double>(emu_fail) / trials_d, 3),
                   sim::Table::num(mean(auth_d), 4), sim::Table::num(mean(emu_d), 4)});
    sirs.push_back(sir_db);
    auth_pers.push_back(static_cast<double>(auth_fail) / trials_d);
    emu_pers.push_back(static_cast<double>(emu_fail) / trials_d);
    auth_means.push_back(mean(auth_d));
    emu_means.push_back(mean(emu_d));
  }
  table.print();
  std::printf(
      "\nreading: DSSS shrugs off moderate WiFi interference (the paper's\n"
      "quiet-spectrum assumption is convenient, not essential, for the\n"
      "attack), but strong interference inflates the authentic DE^2 toward\n"
      "the emulated class — a defender must either sense-and-skip interfered\n"
      "frames (CSMA gives it the tool) or raise the threshold at low SIR.\n");

  report.set("sir_db", sirs);
  report.set("authentic_per", auth_pers);
  report.set("emulated_per", emu_pers);
  report.set("authentic_mean_de2", auth_means);
  report.set("emulated_mean_de2", emu_means);
  bench::finish(report, options);
  return 0;
}
