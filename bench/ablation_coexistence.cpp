// Extension bench — coexistence: the paper assumes a quiet overlapped
// spectrum (Sec. IV-A). Here ordinary WiFi traffic interferes with the
// ZigBee channel at various signal-to-interference ratios:
//  (a) how much background WiFi the authentic link tolerates,
//  (b) whether the attack still lands through interference,
//  (c) whether interference makes the defense false-alarm on authentic
//      traffic (it distorts the constellation too!).
#include "bench_common.h"
#include "defense/detector.h"
#include "sim/defense_run.h"
#include "sim/interference.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "zigbee/app.h"

using namespace ctc;

int main() {
  dsp::Rng rng = bench::make_rng("Ablation: coexistence with background WiFi traffic");
  const auto frames = zigbee::make_text_workload(20);
  defense::Detector detector;  // default threshold 0.5; we report distances

  sim::LinkConfig auth_config;
  auth_config.environment = channel::Environment::awgn(17.0);
  sim::LinkConfig emu_config = auth_config;
  emu_config.kind = sim::LinkKind::emulated;
  const sim::Link authentic(auth_config);
  const sim::Link emulated(emu_config);
  const zigbee::Receiver receiver;

  sim::Table table({"SIR", "auth PER", "emu PER", "auth DE^2 mean",
                    "emu DE^2 mean"});
  for (double sir_db : {30.0, 20.0, 10.0, 5.0, 0.0}) {
    sim::WifiInterferenceConfig interference;
    interference.sir_db = sir_db;
    std::size_t auth_fail = 0, emu_fail = 0;
    rvec auth_d, emu_d;
    const std::size_t trials = 60;
    for (std::size_t i = 0; i < trials; ++i) {
      for (const auto& [link, fail, distances] :
           {std::tuple{&authentic, &auth_fail, &auth_d},
            std::tuple{&emulated, &emu_fail, &emu_d}}) {
        const cvec clean = link->clean_waveform(frames[i % frames.size()]);
        const cvec with_wifi = sim::add_wifi_interference(clean, interference, rng);
        const cvec received = auth_config.environment.propagate(with_wifi, rng);
        const auto rx = receiver.receive(received);
        if (!(rx.frame_ok())) ++*fail;
        if (rx.freq_chips.size() >= 8) {
          distances->push_back(detector.classify(rx.freq_chips).distance_sq);
        }
      }
    }
    auto mean = [](const rvec& v) {
      if (v.empty()) return 0.0;
      double acc = 0.0;
      for (double x : v) acc += x;
      return acc / static_cast<double>(v.size());
    };
    table.add_row({sim::Table::num(sir_db, 0) + "dB",
                   sim::Table::num(static_cast<double>(auth_fail) / trials, 3),
                   sim::Table::num(static_cast<double>(emu_fail) / trials, 3),
                   sim::Table::num(mean(auth_d), 4), sim::Table::num(mean(emu_d), 4)});
  }
  table.print(std::cout);
  std::printf(
      "\nreading: DSSS shrugs off moderate WiFi interference (the paper's\n"
      "quiet-spectrum assumption is convenient, not essential, for the\n"
      "attack), but strong interference inflates the authentic DE^2 toward\n"
      "the emulated class — a defender must either sense-and-skip interfered\n"
      "frames (CSMA gives it the tool) or raise the threshold at low SIR.\n");
  return 0;
}
