// Fig. 7 — Hamming distance distribution of received chip sequences.
//
// The 100-packet text workload ("00000".."00099") at high SNR, for both the
// authentic and the emulated link. Paper: authentic chips match exactly
// (distance 0); emulated chips show 4-8 errors per 32-chip sequence, all
// under the DSSS threshold, so every symbol still decodes.
#include "bench_common.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "zigbee/app.h"

using namespace ctc;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine =
      bench::make_engine(options, "Fig. 7: Hamming distance distribution");
  const auto frames = zigbee::make_text_workload(100);
  const std::size_t frame_count = options.trials_or(100);

  auto histogram_of = [&](sim::LinkKind kind) {
    sim::LinkConfig config;
    config.kind = kind;
    config.environment = channel::Environment::awgn(30.0);  // high SNR
    return sim::run_frames(sim::Link(config), frames, frame_count, engine);
  };
  const auto authentic = histogram_of(sim::LinkKind::authentic);
  const auto emulated = histogram_of(sim::LinkKind::emulated);

  auto total = [](const sim::FrameStats& stats) {
    std::size_t n = 0;
    for (const auto& [d, c] : stats.hamming_histogram) n += c;
    return n;
  };
  const double auth_total = static_cast<double>(total(authentic));
  const double emu_total = static_cast<double>(total(emulated));

  std::vector<double> auth_fraction, emu_fraction;
  sim::Table table({"Hamming distance", "authentic (fraction)", "emulated (fraction)"});
  for (std::size_t d = 0; d <= 10; ++d) {
    const auto a = authentic.hamming_histogram.count(d)
                       ? authentic.hamming_histogram.at(d) : 0;
    const auto e = emulated.hamming_histogram.count(d)
                       ? emulated.hamming_histogram.at(d) : 0;
    table.add_row({std::to_string(d), sim::Table::num(a / auth_total, 3),
                   sim::Table::num(e / emu_total, 3)});
    auth_fraction.push_back(a / auth_total);
    emu_fraction.push_back(e / emu_total);
  }
  table.print();

  std::printf("\nauthentic frames decoded: %zu/%zu, emulated: %zu/%zu\n",
              authentic.frames_ok, authentic.frames_sent, emulated.frames_ok,
              emulated.frames_sent);
  std::printf("paper: authentic mass at distance 0; emulated mass at 4-8,\n"
              "all decodable with a feasible threshold (DSSS error resilience).\n");

  bench::JsonReport report(options, "fig7_hamming");
  report.set("frames", frame_count);
  report.set("authentic_fraction_by_distance", auth_fraction);
  report.set("emulated_fraction_by_distance", emu_fraction);
  report.set("authentic_frames_ok", authentic.frames_ok);
  report.set("emulated_frames_ok", emulated.frames_ok);
  bench::finish(report, options);
  return 0;
}
