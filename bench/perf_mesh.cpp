// Perf — the multi-sensor mesh under load: sensor-field trial throughput
// as the field grows (4 / 16 / 64 sensors), and the batched SoA channel
// sweep against its serial per-sensor reference.
//
//   $ ./perf_mesh --json | tail -n1 > BENCH_perf_mesh.json
//
// Like perf_engine/perf_hotpath this JSON intentionally contains wall
// times — do not use it in the CI determinism diff. The batched and serial
// paths must agree bit-for-bit (same engine run index replayed through
// both); `batched_equals_serial` records that check and IS deterministic,
// as are the trial/sensor counters.
// Reported fields:
//   * sensors                   — field sizes swept;
//   * batched_sensors_per_sec   — per size, sensor-observations/s through
//     channel::propagate_batch_multi (one SoA sweep per trial);
//   * serial_sensors_per_sec    — per size, the per-sensor reference path;
//   * batch_speedup             — per size, batched rate / serial rate;
//   * sensors_per_sec           — min batched rate over the sweep (the
//     trajectory floor);
//   * batched_equals_serial     — 1 iff every size matched bit-for-bit.
#include <chrono>
#include <vector>

#include "bench_common.h"
#include "mesh/sensor_field.h"
#include "zigbee/app.h"

using namespace ctc;

namespace {

using Clock = std::chrono::steady_clock;

mesh::MeshConfig field_config(std::size_t sensors, bool batched) {
  mesh::MeshConfig config;
  config.sensors = sensors;
  config.batched_channel = batched;
  return config;
}

bool same_stats(const mesh::MeshStats& a, const mesh::MeshStats& b) {
  if (a.trials != b.trials || a.sensors_usable != b.sensors_usable ||
      a.sensor_attacks != b.sensor_attacks ||
      a.majority_attacks != b.majority_attacks ||
      a.weighted_attacks != b.weighted_attacks ||
      a.bayesian_attacks != b.bayesian_attacks ||
      a.de2_sum != b.de2_sum ||
      a.position_errors.size() != b.position_errors.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.position_errors.size(); ++i) {
    if (a.position_errors[i] != b.position_errors[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine = bench::make_engine(
      options, "Perf: sensor-field mesh (batched vs serial channel sweep)");
  bench::JsonReport report(options, "perf_mesh");

  const auto frames = zigbee::make_text_workload(8);
  const std::size_t trials = options.trials_or(24);
  report.set("trials_per_point", static_cast<std::uint64_t>(trials));

  const std::vector<std::size_t> sweep = {4, 16, 64};
  std::vector<double> sizes, batched_rate, serial_rate, speedup;
  bool all_equal = true;
  double floor_rate = 0.0;

  sim::Table table({"sensors", "batched", "serial", "speedup", "match"});
  for (const std::size_t sensors : sweep) {
    const mesh::SensorField batched(field_config(sensors, true));
    const mesh::SensorField serial(field_config(sensors, false));
    const double observations = static_cast<double>(trials * sensors);

    // Replay the SAME engine run index through both paths: the serial
    // sweep is the bit-exact reference for the batched one.
    const std::uint64_t run_index = engine.next_run_index();
    const auto batched_start = Clock::now();
    const mesh::MeshStats batched_stats =
        run_mesh_trials(batched, frames, trials, engine);
    const double batched_s =
        std::chrono::duration<double>(Clock::now() - batched_start).count();
    engine.seek_run(run_index);
    const auto serial_start = Clock::now();
    const mesh::MeshStats serial_stats =
        run_mesh_trials(serial, frames, trials, engine);
    const double serial_s =
        std::chrono::duration<double>(Clock::now() - serial_start).count();

    const bool equal = same_stats(batched_stats, serial_stats);
    all_equal = all_equal && equal;
    const double brate = observations / batched_s;
    const double srate = observations / serial_s;
    sizes.push_back(static_cast<double>(sensors));
    batched_rate.push_back(brate);
    serial_rate.push_back(srate);
    speedup.push_back(brate / srate);
    if (floor_rate == 0.0 || brate < floor_rate) floor_rate = brate;
    table.add_row({sim::Table::num(static_cast<double>(sensors), 0),
                   sim::Table::num(brate, 0) + " obs/s",
                   sim::Table::num(srate, 0) + " obs/s",
                   sim::Table::num(brate / srate, 2) + "x",
                   equal ? "bit-exact" : "MISMATCH"});
  }
  table.print();

  report.set("sensors", sizes);
  report.set("batched_sensors_per_sec", batched_rate);
  report.set("serial_sensors_per_sec", serial_rate);
  report.set("batch_speedup", speedup);
  report.set("sensors_per_sec", floor_rate);
  report.set("batched_equals_serial",
             static_cast<std::uint64_t>(all_equal ? 1 : 0));
  bench::finish(report, options);
  return all_equal ? 0 : 1;
}
