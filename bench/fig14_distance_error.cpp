// Fig. 14 — Waveform emulation attack performance vs distance in the "real"
// environment, for both receivers.
//
// (a) USRP receiver (GNU Radio discriminator chain): both links clean below
//     5 m, the attack collapses by 7 m, the authentic link degrades at 8 m.
// (b) CC26x2R1 commodity receiver (coherent, more sensitive): error rates
//     below 0.1 even at 8 m for both links.
// Also prints the RSSI column of Fig. 13's table (log-distance model).
#include "bench_common.h"
#include "channel/pathloss.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "zigbee/app.h"

using namespace ctc;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine =
      bench::make_engine(options, "Fig. 14: attack performance vs distance");
  const auto frames = zigbee::make_text_workload(100);
  const std::size_t frames_per_point = options.trials_or(200);

  bench::JsonReport report(options, "fig14_distance_error");
  report.set("frames_per_point", frames_per_point);

  for (const auto& profile :
       {zigbee::ReceiverProfile::usrp(), zigbee::ReceiverProfile::cc26x2r1()}) {
    bench::section(("receiver: " + profile.name).c_str());
    std::vector<double> orig_per, emu_per;
    sim::Table table({"distance", "SNR", "RSSI", "orig PER", "orig SER", "emu PER",
                      "emu SER"});
    for (double meters : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}) {
      const auto environment = channel::Environment::real_world(meters);
      sim::LinkConfig original;
      original.environment = environment;
      original.profile = profile;
      sim::LinkConfig emulated = original;
      emulated.kind = sim::LinkKind::emulated;
      const auto orig = sim::run_frames(sim::Link(original), frames,
                                        frames_per_point, engine);
      const auto emu = sim::run_frames(sim::Link(emulated), frames,
                                       frames_per_point, engine);
      channel::PathLossModel path_loss;
      table.add_row({sim::Table::num(meters, 0) + "m",
                     sim::Table::num(environment.effective_snr_db(), 1) + "dB",
                     sim::Table::num(path_loss.rssi_dbm(meters), 1) + "dBm",
                     sim::Table::num(orig.packet_error_rate(), 3),
                     sim::Table::num(orig.symbol_error_rate(), 3),
                     sim::Table::num(emu.packet_error_rate(), 3),
                     sim::Table::num(emu.symbol_error_rate(), 3)});
      orig_per.push_back(orig.packet_error_rate());
      emu_per.push_back(emu.packet_error_rate());
    }
    table.print();
    report.set("original_per_" + profile.name, orig_per);
    report.set("emulated_per_" + profile.name, emu_per);
  }
  std::printf(
      "\nshape checks (paper):\n"
      " * USRP: both error rates < 0.1 below 5 m; emulated dies by 7 m;\n"
      "   the original waveform degrades at 8 m; emulated error >= original.\n"
      " * CC26x2R1: both links below 0.1 error even at 8 m (stronger demod).\n"
      " * PER >= SER everywhere (a packet fails if any symbol fails).\n");
  bench::finish(report, options);
  return 0;
}
