// Perf — trial-engine scaling: wall time of the Table II Monte Carlo loop
// at threads=1 vs threads=N, plus a runtime check that both thread counts
// produce bit-identical aggregates (the engine's determinism contract).
//
//   $ ./perf_engine --json | tail -n1 > BENCH_perf_engine.json
//
// Unlike the reproduction benches, this JSON intentionally contains wall
// times — do not use it in the CI determinism diff.
#include <chrono>

#include "bench_common.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "zigbee/app.h"

using namespace ctc;

namespace {

double time_run(sim::TrialEngine& engine, const sim::Link& link,
                std::span<const zigbee::MacFrame> frames, std::size_t trials,
                sim::FrameStats* stats_out) {
  const auto start = std::chrono::steady_clock::now();
  sim::FrameStats stats = sim::run_frames(link, frames, trials, engine);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (stats_out) *stats_out = std::move(stats);
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_banner(options, "Perf: trial-engine scaling (run_frames)");
  const std::size_t trials = options.trials_or(400);
  const std::size_t wide_threads = sim::ThreadPool::resolve_threads(options.threads);

  const auto frames = zigbee::make_text_workload(20);
  sim::LinkConfig config;
  config.kind = sim::LinkKind::emulated;
  config.environment = channel::Environment::awgn(8.0);
  const sim::Link link(config);

  // One engine per thread count, same seed: the engine's per-trial streams
  // depend only on (seed, run counter, trial index), so both runs replay
  // identical randomness and must agree exactly.
  sim::TrialEngine serial_engine({options.seed, 1});
  sim::TrialEngine wide_engine({options.seed, wide_threads});

  // Warm-up outside the timed region (pool spin-up, allocator, FFT plans).
  sim::run_frames(link, frames, std::min<std::size_t>(trials, 8), serial_engine);
  sim::run_frames(link, frames, std::min<std::size_t>(trials, 8), wide_engine);

  sim::FrameStats serial_stats, wide_stats;
  const double serial_ms = time_run(serial_engine, link, frames, trials, &serial_stats);
  const double wide_ms = time_run(wide_engine, link, frames, trials, &wide_stats);
  const double speedup = serial_ms / wide_ms;

  // Telemetry overhead: the same wide run with the layer forced off vs on,
  // min of two runs per mode so scheduler noise doesn't swamp the few-ns
  // per-macro cost. The acceptance bar is "enabled within 3% of disabled";
  // the JSON records the measured ratio so the trajectory tracks it.
  const bool telemetry_was_enabled = sim::telemetry::enabled();
  auto timed_with_telemetry = [&](bool on) {
    sim::telemetry::set_enabled(on);
    const double first = time_run(wide_engine, link, frames, trials, nullptr);
    const double second = time_run(wide_engine, link, frames, trials, nullptr);
    return std::min(first, second);
  };
  const double telem_off_ms = timed_with_telemetry(false);
  const double telem_on_ms = timed_with_telemetry(true);
  sim::telemetry::set_enabled(telemetry_was_enabled);
  const double telem_overhead = telem_on_ms / telem_off_ms;

  const bool identical = serial_stats.frames_ok == wide_stats.frames_ok &&
                         serial_stats.symbol_errors == wide_stats.symbol_errors &&
                         serial_stats.hamming_histogram == wide_stats.hamming_histogram;

  sim::Table table({"threads", "wall time", "speedup", "frames ok"});
  table.add_row({"1", sim::Table::num(serial_ms, 1) + " ms", "1.00x",
                 std::to_string(serial_stats.frames_ok) + "/" +
                     std::to_string(serial_stats.frames_sent)});
  table.add_row({std::to_string(wide_threads),
                 sim::Table::num(wide_ms, 1) + " ms",
                 sim::Table::num(speedup, 2) + "x",
                 std::to_string(wide_stats.frames_ok) + "/" +
                     std::to_string(wide_stats.frames_sent)});
  table.print();
  std::printf("\naggregates bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO (determinism bug!)");
  std::printf("telemetry overhead (enabled/disabled wall time): %.3fx "
              "(%.1f ms -> %.1f ms)\n",
              telem_overhead, telem_off_ms, telem_on_ms);

  bench::JsonReport report(options, "perf_engine");
  report.set("trials", trials);
  report.set("threads_wide", wide_threads);
  report.set("wall_ms_threads1", serial_ms);
  report.set("wall_ms_wide", wide_ms);
  report.set("speedup", speedup);
  report.set("aggregates_identical", identical ? "yes" : "no");
  report.set("telemetry_off_ms", telem_off_ms);
  report.set("telemetry_on_ms", telem_on_ms);
  report.set("telemetry_overhead", telem_overhead);
  bench::finish(report, options);
  return identical ? 0 : 1;
}
