// Table IV — Averaged squared Euclidean distance DE^2 of the cumulant
// feature vector to the QPSK anchor, over 50 training frames per link.
//
// Paper: authentic 0.1546 / 0.0642 / 0.0421 and emulated 1.7140 / 1.6238 /
// 1.5536 at 7 / 12 / 17 dB — a wide gap that makes the threshold choice
// easy (they pick Q = 0.5 from Chat40 >= 0.5 and Chat42 <= -0.5).
#include "bench_common.h"
#include "defense/detector.h"
#include "sim/defense_run.h"
#include "zigbee/app.h"

using namespace ctc;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine =
      bench::make_engine(options, "Table IV: averaged DE^2 (50 training frames)");
  const auto frames = zigbee::make_text_workload(100);
  defense::Detector detector;
  const std::size_t training_frames = options.trials_or(50);

  const double paper_auth[] = {0.1546, 0.0642, 0.0421};
  const double paper_emu[] = {1.7140, 1.6238, 1.5536};

  bench::JsonReport report(options, "table4_de2");
  std::vector<double> snrs, auth_mean, emu_mean;

  sim::Table table({"SNR", "ZigBee waveform", "paper", "Emulated waveform", "paper "});
  rvec auth_all, emu_all;
  int row = 0;
  for (double snr : {7.0, 12.0, 17.0}) {
    sim::LinkConfig authentic;
    authentic.environment = channel::Environment::awgn(snr);
    sim::LinkConfig emulated = authentic;
    emulated.kind = sim::LinkKind::emulated;
    const auto auth = sim::collect_defense_samples(
        sim::Link(authentic), frames, training_frames, detector, engine);
    const auto emu = sim::collect_defense_samples(
        sim::Link(emulated), frames, training_frames, detector, engine);
    auth_all.insert(auth_all.end(), auth.distances.begin(), auth.distances.end());
    emu_all.insert(emu_all.end(), emu.distances.begin(), emu.distances.end());
    table.add_row({sim::Table::num(snr, 0) + "dB",
                   sim::Table::num(auth.mean_distance(), 4),
                   sim::Table::num(paper_auth[row], 4),
                   sim::Table::num(emu.mean_distance(), 4),
                   sim::Table::num(paper_emu[row], 4)});
    snrs.push_back(snr);
    auth_mean.push_back(auth.mean_distance());
    emu_mean.push_back(emu.mean_distance());
    ++row;
  }
  table.print();

  const double threshold = defense::Detector::calibrate_threshold(auth_all, emu_all);
  std::printf("\ncalibrated threshold Q (midpoint of the training gap): %.4f\n", threshold);
  std::printf("paper's threshold: 0.5\n");
  std::printf("shape check: emulated DE^2 exceeds authentic DE^2 by an order of\n"
              "magnitude at every SNR, so a fixed threshold separates the classes.\n");

  report.set("training_frames", training_frames);
  report.set("snr_db", snrs);
  report.set("authentic_mean_de2", auth_mean);
  report.set("emulated_mean_de2", emu_mean);
  report.set("calibrated_threshold", threshold);
  bench::finish(report, options);
  return 0;
}
