// Table II — Emulation attack performance under AWGN.
//
// 1000 emulated frames per SNR from 7 to 17 dB; a frame "succeeds" when the
// ZigBee receiver decodes it end to end (SHR + PHR + DSSS threshold + FCS).
// Paper: 42.4 / 69.2 / 87.4 / 93.3 / 97.2 / 100 %.
#include "bench_common.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "zigbee/app.h"

using namespace ctc;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine = bench::make_engine(
      options, "Table II: emulation attack success rate under AWGN");
  const auto frames = zigbee::make_text_workload(100);
  const std::size_t frames_per_point = options.trials_or(1000);
  const std::size_t authentic_frames = options.trials_or(200);

  bench::JsonReport report(options, "table2_attack_awgn");
  std::vector<double> snrs, attack_success, authentic_success;

  const double paper[] = {42.4, 69.2, 87.4, 93.3, 97.2, 100.0};
  sim::Table table({"SNR", "successful rate (measured)", "paper", "authentic link"});
  int row = 0;
  for (double snr : {7.0, 9.0, 11.0, 13.0, 15.0, 17.0}) {
    sim::LinkConfig attack;
    attack.kind = sim::LinkKind::emulated;
    attack.environment = channel::Environment::awgn(snr);
    const auto attack_stats =
        sim::run_frames(sim::Link(attack), frames, frames_per_point, engine);

    sim::LinkConfig authentic;
    authentic.environment = channel::Environment::awgn(snr);
    const auto auth_stats =
        sim::run_frames(sim::Link(authentic), frames, authentic_frames, engine);

    table.add_row({sim::Table::num(snr, 0) + "dB",
                   sim::Table::percent(attack_stats.success_rate()),
                   sim::Table::num(paper[row++], 1) + "%",
                   sim::Table::percent(auth_stats.success_rate())});
    snrs.push_back(snr);
    attack_success.push_back(attack_stats.success_rate());
    authentic_success.push_back(auth_stats.success_rate());
  }
  table.print();
  std::printf(
      "\nshape check: success rises with SNR and saturates at 100%% by 17 dB,\n"
      "while the authentic link stays near 100%% over the whole range.\n");

  report.set("frames_per_point", frames_per_point);
  report.set("snr_db", snrs);
  report.set("attack_success_rate", attack_success);
  report.set("authentic_success_rate", authentic_success);
  bench::finish(report, options);
  return 0;
}
