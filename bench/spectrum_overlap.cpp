// Context bench — the spectrum picture behind Figs. 3-4: the 2 MHz ZigBee
// channel (2435 MHz) inside the attacker's 20 MHz WiFi band (2440 MHz),
// and how much ZigBee energy the 7 kept subcarriers actually capture.
#include "attack/carrier_allocation.h"
#include "bench_common.h"
#include "dsp/psd.h"
#include "dsp/resample.h"
#include "zigbee/app.h"
#include "zigbee/transmitter.h"

using namespace ctc;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_banner(options,
                      "Spectrum overlap: ZigBee ch. 17 inside the WiFi band");

  zigbee::Transmitter tx;
  const cvec zigbee_4mhz = tx.transmit_frame(zigbee::make_text_frame(0, 0));

  bench::section("ZigBee occupied bandwidth at 4 MHz baseband");
  dsp::PsdConfig config4;
  config4.sample_rate_hz = 4.0e6;
  const auto psd4 = dsp::welch_psd(zigbee_4mhz, config4);
  const double frac_0p5 = dsp::band_power_fraction(psd4, -0.5e6, 0.5e6);
  const double frac_1p0 = dsp::band_power_fraction(psd4, -1.0e6, 1.0e6);
  const double frac_7sc =
      dsp::band_power_fraction(psd4, -7.0 * 0.3125e6 / 2, 7.0 * 0.3125e6 / 2);
  const double frac_1p5 = dsp::band_power_fraction(psd4, -1.5e6, 1.5e6);
  sim::Table occupancy({"band", "power fraction"});
  occupancy.add_row({"+-0.5 MHz", sim::Table::percent(frac_0p5)});
  occupancy.add_row({"+-1.0 MHz (ZigBee channel)", sim::Table::percent(frac_1p0)});
  occupancy.add_row({"+-1.1 MHz (7 WiFi subcarriers)", sim::Table::percent(frac_7sc)});
  occupancy.add_row({"+-1.5 MHz", sim::Table::percent(frac_1p5)});
  occupancy.print();
  std::printf("-> ~7 x 0.3125 MHz subcarriers capture nearly all the energy:\n"
              "   the quantitative basis of the paper's subcarrier budget.\n");

  bench::section("as seen in the attacker's 20 MHz WiFi baseband (2440 MHz)");
  const attack::CarrierPlan plan;
  const cvec at_20mhz = dsp::frequency_shift(dsp::upsample(zigbee_4mhz, 5),
                                             plan.offset_hz(), 20.0e6);
  dsp::PsdConfig config20;
  config20.sample_rate_hz = 20.0e6;
  const auto psd20 = dsp::welch_psd(at_20mhz, config20);
  const double frac_band = dsp::band_power_fraction(psd20, -6.25e6, -3.75e6);
  sim::Table bands({"WiFi-relative band", "power fraction"});
  bands.add_row({"[-6.25, -3.75] MHz (subcarriers -20..-12)",
                 sim::Table::percent(frac_band)});
  bands.add_row({"[-4.0, -6.0] MHz around the ZigBee center",
                 sim::Table::percent(dsp::band_power_fraction(psd20, -6.0e6, -4.0e6))});
  bands.add_row({"elsewhere (|f+5 MHz| > 1.25 MHz)",
                 sim::Table::percent(1.0 - frac_band)});
  bands.print();
  std::printf("-> the ZigBee signal sits 5 MHz below the WiFi center, on data\n"
              "   subcarriers [-20, -8]: exactly the paper's carrier allocation.\n");

  bench::JsonReport report(options, "spectrum_overlap");
  report.set("fraction_pm_1mhz", frac_1p0);
  report.set("fraction_7_subcarriers", frac_7sc);
  report.set("fraction_attack_band_20mhz", frac_band);
  bench::finish(report, options);
  return 0;
}
