// Sec. VII-A — complexity analysis, measured with google-benchmark.
//
// Claims reproduced:
//  * the waveform emulation attack is O(M) in the number of observed ZigBee
//    samples (fixed 64-point FFT per 80-sample slot);
//  * the defense's fourth-order cumulant estimation is O(N) in the number of
//    complex samples;
//  * the two-step subcarrier selection is O(M) coarse + O(n) detailed;
//  * the 64-point FFT plan itself is O(N log N) across sizes.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "attack/emulator.h"
#include "attack/subcarrier_select.h"
#include "defense/cumulants.h"
#include "defense/detector.h"
#include "dsp/fft.h"
#include "dsp/rng.h"
#include "zigbee/oqpsk.h"

using namespace ctc;

namespace {

cvec zigbee_like_waveform(std::size_t chips, std::uint64_t seed) {
  dsp::Rng rng(seed);
  std::vector<std::uint8_t> stream(chips);
  for (auto& c : stream) c = rng.bit();
  return zigbee::OqpskModulator(2).modulate(stream);
}

void BM_AttackEmulate(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const cvec observed = zigbee_like_waveform(samples / 2, 300);
  attack::EmulatorConfig config;
  config.kept_bins = attack::SubcarrierSelector::paper_default_bins();
  config.alpha = std::sqrt(26.0);
  const attack::WaveformEmulator emulator(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emulator.emulate(observed));
  }
  state.SetComplexityN(static_cast<std::int64_t>(observed.size()));
}
BENCHMARK(BM_AttackEmulate)->RangeMultiplier(2)->Range(512, 16384)
    ->Complexity(benchmark::oN);

void BM_DefenseCumulants(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::Rng rng(301);
  cvec samples(n);
  for (auto& s : samples) s = rng.complex_gaussian(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(defense::estimate_cumulants(samples));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DefenseCumulants)->RangeMultiplier(4)->Range(256, 65536)
    ->Complexity(benchmark::oN);

void BM_DefenseClassify(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::Rng rng(302);
  rvec chips(n);
  for (auto& c : chips) c = (rng.bit() ? 1.0 : -1.0) + 0.2 * rng.gaussian();
  defense::Detector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.classify(chips));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DefenseClassify)->RangeMultiplier(4)->Range(256, 65536)
    ->Complexity(benchmark::oN);

void BM_SubcarrierSelection(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const cvec observed = zigbee_like_waveform(samples / 2, 303);
  attack::SubcarrierSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select_from_waveform(observed));
  }
  state.SetComplexityN(static_cast<std::int64_t>(observed.size()));
}
BENCHMARK(BM_SubcarrierSelection)->RangeMultiplier(2)->Range(1024, 16384)
    ->Complexity(benchmark::oN);

void BM_FftForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::Rng rng(304);
  cvec x(n);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  const dsp::FftPlan plan(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.forward(x));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftForward)->RangeMultiplier(2)->Range(64, 4096)
    ->Complexity(benchmark::oNLogN);

void BM_QamQuantizeScaleSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::Rng rng(305);
  cvec points(n);
  for (auto& p : points) p = rng.complex_gaussian(400.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::optimize_scale(points));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QamQuantizeScaleSearch)->RangeMultiplier(4)->Range(64, 4096)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
