// Figs. 10 & 11 — fourth-order cumulants C42 and C40 vs SNR for authentic
// and emulated waveforms, plus the theoretical Table III for reference.
//
// Paper shape: authentic Chat42 -> -1 and Chat40 -> +1 as SNR grows; the
// emulated waveform's cumulants stay far from the theoretical values at
// every SNR where the attack works (and move with SNR in the opposite
// sense relative to the theoretical anchor).
#include "bench_common.h"
#include "defense/cumulants.h"
#include "sim/defense_run.h"
#include "sim/link.h"
#include "zigbee/app.h"

using namespace ctc;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine =
      bench::make_engine(options, "Figs. 10-11: C42 / C40 vs SNR");
  const auto frames = zigbee::make_text_workload(100);
  defense::Detector detector;  // feature extraction only
  const std::size_t frames_per_point = options.trials_or(100);

  bench::JsonReport report(options, "fig10_fig11_cumulants");
  std::vector<double> snrs, auth_c40, auth_c42, emu_c40, emu_c42;

  sim::Table table({"SNR", "auth C40", "auth C42", "emu C40", "emu C42"});
  for (double snr : {1.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0, 17.0}) {
    sim::LinkConfig authentic;
    authentic.environment = channel::Environment::awgn(snr);
    sim::LinkConfig emulated = authentic;
    emulated.kind = sim::LinkKind::emulated;
    const auto auth = sim::collect_defense_samples(
        sim::Link(authentic), frames, frames_per_point, detector, engine);
    const auto emu = sim::collect_defense_samples(
        sim::Link(emulated), frames, frames_per_point, detector, engine);
    auto mean = [](const rvec& v) {
      if (v.empty()) return 0.0;
      double acc = 0.0;
      for (double x : v) acc += x;
      return acc / static_cast<double>(v.size());
    };
    table.add_row({sim::Table::num(snr, 0) + "dB", sim::Table::num(mean(auth.c40), 4),
                   sim::Table::num(mean(auth.c42), 4), sim::Table::num(mean(emu.c40), 4),
                   sim::Table::num(mean(emu.c42), 4)});
    snrs.push_back(snr);
    auth_c40.push_back(mean(auth.c40));
    auth_c42.push_back(mean(auth.c42));
    emu_c40.push_back(mean(emu.c40));
    emu_c42.push_back(mean(emu.c42));
  }
  table.print();
  std::printf("\ntheoretical anchors (QPSK, Table III): C40 = +1, C42 = -1\n");
  std::printf("shape check: authentic approaches the anchors as SNR rises;\n"
              "emulated stays far away at every usable SNR.\n");

  bench::section("Table III: theoretical cumulants (C21 = 1)");
  sim::Table theory({"Modulation", "C20", "C40", "C42"});
  using MC = defense::ModulationClass;
  for (MC m : {MC::bpsk, MC::qpsk, MC::psk_higher, MC::pam4, MC::pam8, MC::pam16,
               MC::qam16, MC::qam64, MC::qam256}) {
    const auto t = defense::theoretical_cumulants(m);
    theory.add_row({defense::to_string(m), sim::Table::num(t.c20, 0),
                    sim::Table::num(t.c40, 4), sim::Table::num(t.c42, 4)});
  }
  theory.print();

  report.set("frames_per_point", frames_per_point);
  report.set("snr_db", snrs);
  report.set("authentic_c40", auth_c40);
  report.set("authentic_c42", auth_c42);
  report.set("emulated_c40", emu_c40);
  report.set("emulated_c42", emu_c42);
  bench::finish(report, options);
  return 0;
}
