// Perf — hot-path micro-benchmarks for the optimized kernels: FFT vs direct
// convolution, packed-popcount vs byte-loop despreading, the receiver's
// precomputed timing-search grid vs the per-call search, and the link's
// memoized clean-waveform synthesis.
//
//   $ ./perf_hotpath --json | tail -n1 > BENCH_perf_hotpath.json
//
// Each section times the reference (pre-optimization) path against the fast
// path on the same inputs and reports both wall times plus the ratio. Like
// perf_engine, this JSON intentionally contains wall times — do not use it
// in the CI determinism diff. The *correctness* of each pair is covered by
// the equivalence test suites (tests/dsp/convolve_equivalence_test.cpp and
// friends); this bench only answers "was the rewrite worth it?" and feeds
// tools/bench_trajectory.py ratio assertions, which are machine-independent.
#include <chrono>
#include <cmath>

#include "bench_common.h"
#include "dsp/fir.h"
#include "dsp/rng.h"
#include "sim/link.h"
#include "zigbee/app.h"
#include "zigbee/dsss.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

using namespace ctc;

namespace {

/// Minimum wall time of `reps` runs of `fn` (min beats mean under scheduler
/// noise for micro-kernels). The result of every run is folded into a
/// volatile sink so the optimizer cannot drop the work.
template <typename Fn>
double time_ms(std::size_t reps, Fn&& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    best = std::min(best, ms);
  }
  return best;
}

volatile double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_banner(options, "Perf: hot-path kernels (convolve / despread / "
                               "timing grid / waveform cache)");
  const std::size_t reps = options.trials_or(5);
  dsp::Rng rng = dsp::Rng::for_stream(options.seed, 0);

  sim::Table table({"kernel", "reference", "fast path", "ratio"});

  // -- convolve: direct vs FFT ----------------------------------------------
  // A long-filter workload comfortably past the use_fft_convolution()
  // crossover (the direct form's vectorized MAC loop keeps short filters —
  // the whole per-trial receive path — on the direct side; see fir.cpp).
  const std::size_t signal_len = 8192;
  const std::size_t num_taps = 4097;
  cvec signal(signal_len);
  for (auto& x : signal) x = rng.complex_gaussian(1.0);
  rvec taps(num_taps);
  for (auto& t : taps) t = rng.uniform(-1.0, 1.0);
  const double convolve_direct_ms = time_ms(reps, [&] {
    const cvec out = dsp::convolve_direct(signal, taps);
    g_sink = g_sink + out.back().real();
  });
  const double convolve_fft_ms = time_ms(reps, [&] {
    const cvec out = dsp::convolve_fft(signal, taps);
    g_sink = g_sink + out.back().real();
  });
  table.add_row({"convolve (n=8192, t=4097)",
                 sim::Table::num(convolve_direct_ms, 3) + " ms",
                 sim::Table::num(convolve_fft_ms, 3) + " ms",
                 sim::Table::num(convolve_direct_ms / convolve_fft_ms, 2) + "x"});

  // -- despread: byte loop vs packed popcount -------------------------------
  // All 16 symbols, many repetitions, a couple of deterministic chip errors
  // per symbol so the Hamming loop does real work.
  std::vector<std::uint8_t> chips;
  const std::size_t symbol_reps = 2048;
  for (std::size_t r = 0; r < symbol_reps; ++r) {
    for (std::uint8_t s = 0; s < zigbee::kNumSymbols; ++s) {
      const auto& sequence = zigbee::chips_for_symbol(s);
      std::vector<std::uint8_t> block(sequence.begin(), sequence.end());
      block[(r + s) % zigbee::kChipsPerSymbol] ^= 1;
      block[(r + 2 * s + 7) % zigbee::kChipsPerSymbol] ^= 1;
      chips.insert(chips.end(), block.begin(), block.end());
    }
  }
  const std::size_t threshold = 10;
  const double despread_reference_ms = time_ms(reps, [&] {
    std::size_t accepted = 0;
    for (std::size_t offset = 0; offset < chips.size();
         offset += zigbee::kChipsPerSymbol) {
      const auto block = zigbee::despread_block_reference(
          std::span<const std::uint8_t>(chips).subspan(offset,
                                                       zigbee::kChipsPerSymbol),
          threshold);
      accepted += block.accepted ? 1 : 0;
    }
    g_sink = g_sink + static_cast<double>(accepted);
  });
  const double despread_packed_ms = time_ms(reps, [&] {
    std::size_t accepted = 0;
    for (std::size_t offset = 0; offset < chips.size();
         offset += zigbee::kChipsPerSymbol) {
      const auto block = zigbee::despread_block(
          std::span<const std::uint8_t>(chips).subspan(offset,
                                                       zigbee::kChipsPerSymbol),
          threshold);
      accepted += block.accepted ? 1 : 0;
    }
    g_sink = g_sink + static_cast<double>(accepted);
  });
  table.add_row({"despread (32k symbols)",
                 sim::Table::num(despread_reference_ms, 3) + " ms",
                 sim::Table::num(despread_packed_ms, 3) + " ms",
                 sim::Table::num(despread_reference_ms / despread_packed_ms, 2) +
                     "x"});

  // -- receive: per-call timing search vs precomputed grid ------------------
  const auto frames = zigbee::make_text_workload(1);
  const cvec frame_waveform = zigbee::Transmitter().transmit_frame(frames[0]);
  zigbee::ReceiverConfig rx_config;
  rx_config.timing_recovery = true;
  rx_config.precompute_timing_grid = false;
  const zigbee::Receiver receiver_percall(rx_config);
  rx_config.precompute_timing_grid = true;
  const zigbee::Receiver receiver_grid(rx_config);
  const double receive_percall_ms = time_ms(reps, [&] {
    const auto result = receiver_percall.receive(frame_waveform);
    g_sink = g_sink + (result.frame_ok() ? 1.0 : 0.0);
  });
  const double receive_grid_ms = time_ms(reps, [&] {
    const auto result = receiver_grid.receive(frame_waveform);
    g_sink = g_sink + (result.frame_ok() ? 1.0 : 0.0);
  });
  table.add_row({"receive w/ clock recovery",
                 sim::Table::num(receive_percall_ms, 3) + " ms",
                 sim::Table::num(receive_grid_ms, 3) + " ms",
                 sim::Table::num(receive_percall_ms / receive_grid_ms, 2) + "x"});

  // -- clean waveform: per-call synthesis vs memoized -----------------------
  // The emulated link is the expensive one (TX -> OFDM emulation -> power
  // normalization); cached calls only copy the stored waveform out.
  sim::LinkConfig link_config;
  link_config.kind = sim::LinkKind::emulated;
  link_config.memoize_waveforms = false;
  const sim::Link link_uncached(link_config);
  link_config.memoize_waveforms = true;
  const sim::Link link_cached(link_config);
  link_cached.clean_waveform(frames[0]);  // fill outside the timed region
  const double clean_uncached_ms = time_ms(reps, [&] {
    const cvec waveform = link_uncached.clean_waveform(frames[0]);
    g_sink = g_sink + waveform.front().real();
  });
  const double clean_cached_ms = time_ms(reps, [&] {
    const cvec waveform = link_cached.clean_waveform(frames[0]);
    g_sink = g_sink + waveform.front().real();
  });
  table.add_row({"clean_waveform (emulated)",
                 sim::Table::num(clean_uncached_ms, 3) + " ms",
                 sim::Table::num(clean_cached_ms, 3) + " ms",
                 sim::Table::num(clean_uncached_ms / clean_cached_ms, 2) + "x"});

  table.print();

  bench::JsonReport report(options, "perf_hotpath");
  report.set("reps", static_cast<std::uint64_t>(reps));
  report.set("convolve_direct_ms", convolve_direct_ms);
  report.set("convolve_fft_ms", convolve_fft_ms);
  report.set("convolve_speedup", convolve_direct_ms / convolve_fft_ms);
  report.set("despread_reference_ms", despread_reference_ms);
  report.set("despread_packed_ms", despread_packed_ms);
  report.set("despread_speedup", despread_reference_ms / despread_packed_ms);
  report.set("receive_percall_ms", receive_percall_ms);
  report.set("receive_grid_ms", receive_grid_ms);
  report.set("receive_speedup", receive_percall_ms / receive_grid_ms);
  report.set("clean_uncached_ms", clean_uncached_ms);
  report.set("clean_cached_ms", clean_cached_ms);
  report.set("clean_speedup", clean_uncached_ms / clean_cached_ms);
  bench::finish(report, options);
  return 0;
}
