// Perf — hot-path micro-benchmarks for the optimized kernels: FFT vs direct
// convolution, packed-popcount vs byte-loop despreading, the receiver's
// precomputed timing-search grid vs the per-call search, and the link's
// memoized clean-waveform synthesis.
//
//   $ ./perf_hotpath --json | tail -n1 > BENCH_perf_hotpath.json
//
// Each section times the reference (pre-optimization) path against the fast
// path on the same inputs and reports both wall times plus the ratio. Like
// perf_engine, this JSON intentionally contains wall times — do not use it
// in the CI determinism diff. The *correctness* of each pair is covered by
// the equivalence test suites (tests/dsp/convolve_equivalence_test.cpp and
// friends); this bench only answers "was the rewrite worth it?" and feeds
// tools/bench_trajectory.py ratio assertions, which are machine-independent.
#include <chrono>
#include <cmath>

#include "bench_common.h"
#include "dsp/fir.h"
#include "dsp/kernels/kernels.h"
#include "dsp/pulse.h"
#include "dsp/rng.h"
#include "sim/link.h"
#include "zigbee/app.h"
#include "zigbee/chip_sequences.h"
#include "zigbee/dsss.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

using namespace ctc;

namespace {

/// Minimum wall time of `reps` runs of `fn` (min beats mean under scheduler
/// noise for micro-kernels). The result of every run is folded into a
/// volatile sink so the optimizer cannot drop the work.
template <typename Fn>
double time_ms(std::size_t reps, Fn&& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    best = std::min(best, ms);
  }
  return best;
}

volatile double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_banner(options, "Perf: hot-path kernels (convolve / despread / "
                               "timing grid / waveform cache)");
  const std::size_t reps = options.trials_or(5);
  dsp::Rng rng = dsp::Rng::for_stream(options.seed, 0);

  sim::Table table({"kernel", "reference", "fast path", "ratio"});

  // -- convolve: direct vs FFT ----------------------------------------------
  // A long-filter workload comfortably past the use_fft_convolution()
  // crossover (the direct form's vectorized MAC loop keeps short filters —
  // the whole per-trial receive path — on the direct side; see fir.cpp).
  const std::size_t signal_len = 8192;
  const std::size_t num_taps = 4097;
  cvec signal(signal_len);
  for (auto& x : signal) x = rng.complex_gaussian(1.0);
  rvec taps(num_taps);
  for (auto& t : taps) t = rng.uniform(-1.0, 1.0);
  const double convolve_direct_ms = time_ms(reps, [&] {
    const cvec out = dsp::convolve_direct(signal, taps);
    g_sink = g_sink + out.back().real();
  });
  const double convolve_fft_ms = time_ms(reps, [&] {
    const cvec out = dsp::convolve_fft(signal, taps);
    g_sink = g_sink + out.back().real();
  });
  table.add_row({"convolve (n=8192, t=4097)",
                 sim::Table::num(convolve_direct_ms, 3) + " ms",
                 sim::Table::num(convolve_fft_ms, 3) + " ms",
                 sim::Table::num(convolve_direct_ms / convolve_fft_ms, 2) + "x"});

  // -- despread: byte loop vs packed popcount -------------------------------
  // All 16 symbols, many repetitions, a couple of deterministic chip errors
  // per symbol so the Hamming loop does real work.
  std::vector<std::uint8_t> chips;
  const std::size_t symbol_reps = 2048;
  for (std::size_t r = 0; r < symbol_reps; ++r) {
    for (std::uint8_t s = 0; s < zigbee::kNumSymbols; ++s) {
      const auto& sequence = zigbee::chips_for_symbol(s);
      std::vector<std::uint8_t> block(sequence.begin(), sequence.end());
      block[(r + s) % zigbee::kChipsPerSymbol] ^= 1;
      block[(r + 2 * s + 7) % zigbee::kChipsPerSymbol] ^= 1;
      chips.insert(chips.end(), block.begin(), block.end());
    }
  }
  const std::size_t threshold = 10;
  const double despread_reference_ms = time_ms(reps, [&] {
    std::size_t accepted = 0;
    for (std::size_t offset = 0; offset < chips.size();
         offset += zigbee::kChipsPerSymbol) {
      const auto block = zigbee::despread_block_reference(
          std::span<const std::uint8_t>(chips).subspan(offset,
                                                       zigbee::kChipsPerSymbol),
          threshold);
      accepted += block.accepted ? 1 : 0;
    }
    g_sink = g_sink + static_cast<double>(accepted);
  });
  const double despread_packed_ms = time_ms(reps, [&] {
    std::size_t accepted = 0;
    for (std::size_t offset = 0; offset < chips.size();
         offset += zigbee::kChipsPerSymbol) {
      const auto block = zigbee::despread_block(
          std::span<const std::uint8_t>(chips).subspan(offset,
                                                       zigbee::kChipsPerSymbol),
          threshold);
      accepted += block.accepted ? 1 : 0;
    }
    g_sink = g_sink + static_cast<double>(accepted);
  });
  table.add_row({"despread (32k symbols)",
                 sim::Table::num(despread_reference_ms, 3) + " ms",
                 sim::Table::num(despread_packed_ms, 3) + " ms",
                 sim::Table::num(despread_reference_ms / despread_packed_ms, 2) +
                     "x"});

  // -- receive: per-call timing search vs precomputed grid ------------------
  const auto frames = zigbee::make_text_workload(1);
  const cvec frame_waveform = zigbee::Transmitter().transmit_frame(frames[0]);
  zigbee::ReceiverConfig rx_config;
  rx_config.timing_recovery = true;
  rx_config.precompute_timing_grid = false;
  const zigbee::Receiver receiver_percall(rx_config);
  rx_config.precompute_timing_grid = true;
  const zigbee::Receiver receiver_grid(rx_config);
  const double receive_percall_ms = time_ms(reps, [&] {
    const auto result = receiver_percall.receive(frame_waveform);
    g_sink = g_sink + (result.frame_ok() ? 1.0 : 0.0);
  });
  const double receive_grid_ms = time_ms(reps, [&] {
    const auto result = receiver_grid.receive(frame_waveform);
    g_sink = g_sink + (result.frame_ok() ? 1.0 : 0.0);
  });
  table.add_row({"receive w/ clock recovery",
                 sim::Table::num(receive_percall_ms, 3) + " ms",
                 sim::Table::num(receive_grid_ms, 3) + " ms",
                 sim::Table::num(receive_percall_ms / receive_grid_ms, 2) + "x"});

  // -- clean waveform: per-call synthesis vs memoized -----------------------
  // The emulated link is the expensive one (TX -> OFDM emulation -> power
  // normalization); cached calls only copy the stored waveform out.
  sim::LinkConfig link_config;
  link_config.kind = sim::LinkKind::emulated;
  link_config.memoize_waveforms = false;
  const sim::Link link_uncached(link_config);
  link_config.memoize_waveforms = true;
  const sim::Link link_cached(link_config);
  link_cached.clean_waveform(frames[0]);  // fill outside the timed region
  const double clean_uncached_ms = time_ms(reps, [&] {
    const cvec waveform = link_uncached.clean_waveform(frames[0]);
    g_sink = g_sink + waveform.front().real();
  });
  const double clean_cached_ms = time_ms(reps, [&] {
    const cvec waveform = link_cached.clean_waveform(frames[0]);
    g_sink = g_sink + waveform.front().real();
  });
  table.add_row({"clean_waveform (emulated)",
                 sim::Table::num(clean_uncached_ms, 3) + " ms",
                 sim::Table::num(clean_cached_ms, 3) + " ms",
                 sim::Table::num(clean_uncached_ms / clean_cached_ms, 2) + "x"});

  // -- dsp::kernels: scalar table vs best dispatched table ------------------
  // Times each hot kernel at both dispatch levels on the same buffers and
  // reports ns/sample alongside the ratio. Levels are requested explicitly
  // (not via CTC_SIMD) so the bench output is independent of the
  // environment; on a machine without AVX2 both columns run the scalar
  // table and the ratios sit at ~1.
  const dsp::kernels::SimdLevel best_level =
      dsp::kernels::best_supported_level();
  const dsp::kernels::KernelTable& scalar_kt =
      dsp::kernels::table(dsp::kernels::SimdLevel::scalar);
  const dsp::kernels::KernelTable& best_kt = dsp::kernels::table(best_level);

  struct KernelTiming {
    std::string key;      // JSON prefix, e.g. "fir_kernel"
    std::string label;    // table row label
    double scalar_ms = 0.0;
    double simd_ms = 0.0;
    std::size_t samples = 0;  // per run, for ns/sample
  };
  std::vector<KernelTiming> kernel_timings;
  const auto time_kernel = [&](std::string key, std::string label,
                               std::size_t samples, auto&& run) {
    KernelTiming timing;
    timing.key = std::move(key);
    timing.label = std::move(label);
    timing.samples = samples;
    timing.scalar_ms = time_ms(reps, [&] { run(scalar_kt); });
    timing.simd_ms = time_ms(reps, [&] { run(best_kt); });
    kernel_timings.push_back(std::move(timing));
  };

  // fir_mac: the pulse-shaping shape (short real taps over a long burst).
  {
    const std::size_t n = 16384, t = 9;
    cvec sig(n);
    for (auto& x : sig) x = rng.complex_gaussian(1.0);
    rvec fir_taps(t);
    for (auto& v : fir_taps) v = rng.uniform(-1.0, 1.0);
    cvec out(n + t - 1);
    time_kernel("fir_kernel", "kernel fir_mac (n=16384, t=9)", n,
                [&](const dsp::kernels::KernelTable& kt) {
                  std::fill(out.begin(), out.end(), cplx{0.0, 0.0});
                  kt.fir_mac(sig.data(), n, fir_taps.data(), t, out.data());
                  g_sink = g_sink + out.back().real();
                });
  }

  // rotate: the CFO mixer shape.
  {
    const std::size_t n = 65536;
    cvec in(n), out(n);
    for (auto& x : in) x = rng.complex_gaussian(1.0);
    time_kernel("rotate_kernel", "kernel rotate (n=65536)", n,
                [&](const dsp::kernels::KernelTable& kt) {
                  g_sink = g_sink + kt.rotate(in.data(), n, out.data(), 0.25,
                                              1e-3);
                });
  }

  // oqpsk_mf: matched filter over a long chip stream at 4 samples/chip.
  {
    const std::size_t spc = 4, num_chips = 16384;
    const rvec pulse = dsp::half_sine_pulse(spc);
    double pulse_energy = 0.0;
    for (double p : pulse) pulse_energy += p * p;
    cvec wave((num_chips + 1) * spc);
    for (auto& x : wave) x = rng.complex_gaussian(1.0);
    rvec soft(num_chips);
    time_kernel("oqpsk_mf_kernel", "kernel oqpsk_mf (16k chips, spc=4)",
                num_chips * spc, [&](const dsp::kernels::KernelTable& kt) {
                  kt.oqpsk_mf(wave.data(), num_chips, spc, pulse.data(),
                              pulse.size(), pulse_energy, soft.data());
                  g_sink = g_sink + soft.back();
                });
  }

  // energy: the synchronizer's sliding-window reduction shape.
  {
    const std::size_t n = 65536;
    cvec buf(n);
    for (auto& x : buf) x = rng.complex_gaussian(1.0);
    time_kernel("energy_kernel", "kernel energy (n=65536)", n,
                [&](const dsp::kernels::KernelTable& kt) {
                  g_sink = g_sink + kt.energy(buf.data(), n);
                });
  }

  // despread_words: the packed-correlation core, all 16 rows per word.
  {
    const std::size_t blocks = chips.size() / zigbee::kChipsPerSymbol;
    std::vector<std::uint32_t> packed(blocks);
    best_kt.pack_hard_chips(chips.data(), blocks, packed.data());
    std::vector<std::uint8_t> symbols(blocks), distances(blocks);
    time_kernel("despread_kernel", "kernel despread_words (32k words)",
                blocks * zigbee::kChipsPerSymbol,
                [&](const dsp::kernels::KernelTable& kt) {
                  kt.despread_words(packed.data(), blocks,
                                    zigbee::packed_chip_table().data(),
                                    ~std::uint32_t{0}, symbols.data(),
                                    distances.data());
                  g_sink = g_sink + static_cast<double>(distances.back());
                });
  }

  // cumulant_acc: the defense feature-extraction reduction.
  {
    const std::size_t n = 65536;
    cvec buf(n);
    for (auto& x : buf) x = rng.complex_gaussian(1.0);
    time_kernel("cumulant_kernel", "kernel cumulant_acc (n=65536)", n,
                [&](const dsp::kernels::KernelTable& kt) {
                  dsp::kernels::CumulantLanes lanes;
                  kt.cumulant_acc(buf.data(), n, 0, &lanes);
                  g_sink = g_sink + lanes.fold().sum_abs4;
                });
  }

  for (const KernelTiming& timing : kernel_timings) {
    table.add_row({timing.label, sim::Table::num(timing.scalar_ms, 3) + " ms",
                   sim::Table::num(timing.simd_ms, 3) + " ms",
                   sim::Table::num(timing.scalar_ms / timing.simd_ms, 2) +
                       "x"});
  }

  table.print();

  bench::JsonReport report(options, "perf_hotpath");
  report.set("simd_level", std::string(dsp::kernels::level_name(best_level)));
  report.set("reps", static_cast<std::uint64_t>(reps));
  report.set("convolve_direct_ms", convolve_direct_ms);
  report.set("convolve_fft_ms", convolve_fft_ms);
  report.set("convolve_speedup", convolve_direct_ms / convolve_fft_ms);
  report.set("despread_reference_ms", despread_reference_ms);
  report.set("despread_packed_ms", despread_packed_ms);
  report.set("despread_speedup", despread_reference_ms / despread_packed_ms);
  report.set("receive_percall_ms", receive_percall_ms);
  report.set("receive_grid_ms", receive_grid_ms);
  report.set("receive_speedup", receive_percall_ms / receive_grid_ms);
  report.set("clean_uncached_ms", clean_uncached_ms);
  report.set("clean_cached_ms", clean_cached_ms);
  report.set("clean_speedup", clean_uncached_ms / clean_cached_ms);
  for (const KernelTiming& timing : kernel_timings) {
    const double per_sample = 1e6 / static_cast<double>(timing.samples);
    report.set(timing.key + "_scalar_ms", timing.scalar_ms);
    report.set(timing.key + "_simd_ms", timing.simd_ms);
    report.set(timing.key + "_speedup", timing.scalar_ms / timing.simd_ms);
    report.set(timing.key + "_scalar_ns_per_sample",
               timing.scalar_ms * per_sample);
    report.set(timing.key + "_simd_ns_per_sample",
               timing.simd_ms * per_sample);
  }
  bench::finish(report, options);
  return 0;
}
