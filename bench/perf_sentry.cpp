// Perf — the sentry service under load: sustained streaming throughput,
// verdict latency percentiles through a free-running SPSC producer/consumer
// pair, and the deterministic overload drop rate.
//
//   $ ./perf_sentry --json | tail -n1 > BENCH_perf_sentry.json
//
// Like perf_engine/perf_hotpath this JSON intentionally contains wall
// times — do not use it in the CI determinism diff (the deterministic
// verdict-stream property has its own gate, tools/sentry_determinism.sh).
// Reported fields:
//   * sustained_msamples_per_sec — lockstep replay rate of one channel
//     (ingest + ring + frame sync + detector, no pacing);
//   * sharded_msamples_per_sec   — aggregate rate of 4 channels sharded
//     across worker threads;
//   * latency_p50_ms/latency_p99_ms — push-to-verdict latency with a
//     free-running producer thread paced to ~2/3 of the sustained rate,
//     measured from the ring push of the frame's last sample to the verdict
//     callback on the consumer thread;
//   * overload_drop_rate — fraction dropped when the drain rate is pinned
//     to 1/4 of the ingest rate (a pure function of the configuration: the
//     same run always drops the same samples).
#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sentry/service.h"
#include "sim/telemetry.h"

using namespace ctc;

namespace {

using Clock = std::chrono::steady_clock;

sentry::LinkSourceConfig traffic_config(std::uint64_t seed) {
  sentry::LinkSourceConfig config;
  config.environment = channel::Environment::awgn(15.0);
  config.frames = 10;
  config.attack_every = 3;
  config.gap_samples = 700;
  config.seed = seed;
  return config;
}

cvec collect_capture(const sentry::LinkSourceConfig& config) {
  sentry::LinkSource source(config, 0);
  cvec stream;
  cvec block(4096);
  while (true) {
    const std::size_t got = source.next_block(block);
    if (got == 0) break;
    stream.insert(stream.end(), block.begin(),
                  block.begin() + static_cast<std::ptrdiff_t>(got));
  }
  return stream;
}

double percentile(std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted_values.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_values.size())));
  return sorted_values[index];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_banner(options, "Perf: sentry streaming service (throughput / "
                               "latency / overload)");
  bench::JsonReport report(options, "perf_sentry");

  const cvec capture = collect_capture(traffic_config(options.seed));
  const std::size_t repeat = options.trials_or(40);
  report.set("capture_samples", static_cast<std::uint64_t>(capture.size()));
  report.set("replay_repeat", static_cast<std::uint64_t>(repeat));

  sim::Table table({"scenario", "samples", "wall", "rate / result"});

  // -- sustained lockstep throughput, one channel ---------------------------
  const auto replay_factory = [&capture, repeat](std::size_t) {
    return std::make_unique<sentry::ReplaySource>(capture, repeat);
  };
  double sustained_msps = 0.0;
  {
    sentry::ServiceConfig config;
    sentry::SentryService service(config, replay_factory);
    const auto start = Clock::now();
    const sentry::ServiceReport result = service.run();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    const double samples = static_cast<double>(result.total_ingested());
    sustained_msps = samples / seconds / 1e6;
    table.add_row({"sustained (1 channel)", sim::Table::num(samples, 0),
                   sim::Table::num(seconds * 1e3, 1) + " ms",
                   sim::Table::num(sustained_msps, 2) + " Msamples/s"});
  }
  report.set("sustained_msamples_per_sec", sustained_msps);

  // -- aggregate throughput, 4 channels sharded -----------------------------
  double sharded_msps = 0.0;
  {
    sentry::ServiceConfig config;
    config.channels = 4;
    config.shards = options.threads != 0 ? options.threads : 4;
    sentry::SentryService service(config, replay_factory);
    const auto start = Clock::now();
    const sentry::ServiceReport result = service.run();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    const double samples = static_cast<double>(result.total_ingested());
    sharded_msps = samples / seconds / 1e6;
    table.add_row({"sharded (4 channels)", sim::Table::num(samples, 0),
                   sim::Table::num(seconds * 1e3, 1) + " ms",
                   sim::Table::num(sharded_msps, 2) + " Msamples/s"});
  }
  report.set("sharded_msamples_per_sec", sharded_msps);

  // -- verdict latency through a free-running producer/consumer pair --------
  // The producer pushes paced blocks (~2/3 of the sustained rate, so the
  // queue stays shallow and latency reflects processing, not saturation)
  // and stamps each block's push-completion time; the consumer's verdict
  // callback maps the frame's last sample back to its block and takes the
  // difference. Blocking retry on a full ring means no drops, so scanner
  // stream positions equal ingest positions.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t latency_verdicts = 0;
  {
    const std::size_t block_size = 2048;
    const std::size_t latency_repeat = std::max<std::size_t>(repeat / 4, 4);
    const std::size_t total_samples = capture.size() * latency_repeat;
    const std::size_t num_blocks = (total_samples + block_size - 1) / block_size;
    const double pace_sps = sustained_msps * 1e6 * 2.0 / 3.0;

    sentry::SpscRing<cplx> ring(std::size_t{1} << 16);
    std::vector<Clock::time_point> push_done(num_blocks);
    std::vector<double> latencies_ms;

    std::thread producer([&] {
      sentry::ReplaySource source(capture, latency_repeat);
      cvec block(block_size);
      const auto start = Clock::now();
      std::uint64_t released = 0;
      std::size_t index = 0;
      while (true) {
        const std::size_t got = source.next_block(block);
        if (got == 0) break;
        released += got;
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(released) / pace_sps)));
        std::span<const cplx> rest(block.data(), got);
        while (!rest.empty()) {
          rest = rest.subspan(ring.try_push(rest));  // blocking retry
        }
        push_done[index++] = Clock::now();
      }
    });

    sentry::StreamScanner scanner(
        {}, 0, [&](const sentry::VerdictRecord& record) {
          const auto now = Clock::now();
          const std::size_t last_sample =
              record.stream_position + record.frame_samples - 1;
          const auto pushed = push_done[last_sample / block_size];
          latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(now - pushed).count());
        });
    cvec drain(block_size);
    std::uint64_t consumed = 0;
    while (consumed < total_samples) {
      const std::size_t got = ring.try_pop(std::span<cplx>(drain));
      if (got == 0) continue;  // spin: the SPSC pair never sleeps on empty
      consumed += got;
      scanner.push(std::span<const cplx>(drain.data(), got), ring.size(), 0);
    }
    producer.join();
    scanner.flush();

    std::sort(latencies_ms.begin(), latencies_ms.end());
    latency_verdicts = latencies_ms.size();
    p50_ms = percentile(latencies_ms, 0.50);
    p99_ms = percentile(latencies_ms, 0.99);
    table.add_row({"latency (paced producer)",
                   sim::Table::num(static_cast<double>(total_samples), 0),
                   sim::Table::num(static_cast<double>(latency_verdicts), 0) +
                       " verdicts",
                   "p50 " + sim::Table::num(p50_ms, 3) + " ms, p99 " +
                       sim::Table::num(p99_ms, 3) + " ms"});
  }
  report.set("latency_verdicts", static_cast<std::uint64_t>(latency_verdicts));
  report.set("latency_p50_ms", p50_ms);
  report.set("latency_p99_ms", p99_ms);

  // -- deterministic overload drop rate -------------------------------------
  double drop_rate = 0.0;
  {
    sentry::ServiceConfig config;
    config.channel.ring_capacity = std::size_t{1} << 10;
    config.channel.ingest_block = 1024;
    config.channel.drain_block = 256;  // drain pinned to 1/4 of ingest
    const sentry::ServiceReport result =
        sentry::SentryService(config, replay_factory).run();
    const sentry::ChannelReport& channel = result.channels[0];
    drop_rate = static_cast<double>(channel.dropped) /
                static_cast<double>(channel.ingested);
    table.add_row({"overload (drain = ingest/4)",
                   sim::Table::num(static_cast<double>(channel.ingested), 0),
                   sim::Table::num(static_cast<double>(channel.dropped), 0) +
                       " dropped",
                   sim::Table::num(100.0 * drop_rate, 2) + " % drop rate"});
  }
  report.set("overload_drop_rate", drop_rate);

  // -- per-stage time breakdown ---------------------------------------------
  // Where an ingested sample's nanoseconds go: the sentry/{scan,decode,
  // classify,write}_ns telemetry timers (docs/TELEMETRY.md) over one more
  // single-channel replay, normalized per ingested sample. Telemetry is
  // force-enabled just for this run (its overhead stays out of the
  // throughput numbers above); sums are deltas against the collector's
  // prior state, so a --telemetry run's earlier sections don't bleed in.
  {
    const auto timer_sum = [](const std::vector<sim::telemetry::MetricValue>&
                                  metrics,
                              const char* name) {
      for (const sim::telemetry::MetricValue& metric : metrics) {
        if (metric.stage == "sentry" && metric.name == name) {
          return metric.cell.sum;
        }
      }
      return 0.0;
    };
    const bool was_enabled = sim::telemetry::enabled();
    sim::telemetry::set_enabled(true);
    const auto before = sim::telemetry::collect();
    sentry::ServiceConfig config;
    const sentry::ServiceReport result =
        sentry::SentryService(config, replay_factory).run();
    const auto after = sim::telemetry::collect();
    sim::telemetry::set_enabled(was_enabled);

    const double samples = static_cast<double>(result.total_ingested());
    for (const char* stage :
         {"scan_ns", "decode_ns", "classify_ns", "write_ns"}) {
      const double ns = timer_sum(after, stage) - timer_sum(before, stage);
      const double per_sample = samples > 0.0 ? ns / samples : 0.0;
      report.set(std::string("stage_") + stage + "_per_sample", per_sample);
      table.add_row({std::string("stage: sentry/") + stage,
                     sim::Table::num(samples, 0),
                     sim::Table::num(ns / 1e6, 1) + " ms",
                     sim::Table::num(per_sample, 2) + " ns/sample"});
    }
  }

  table.print();
  bench::finish(report, options);
  return 0;
}
