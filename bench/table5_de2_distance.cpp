// Table V — Averaged DE^2 vs distance (1-6 m) in the real environment,
// using the |C40| feature of Sec. VI-C (immune to frequency/phase offset).
//
// Paper: authentic <= 0.0103 everywhere, emulated >= 1.14 -> any threshold
// in [0.1, 1] detects the attacker at the distances where the attack works.
// Also reproduces Fig. 6's constellation comparison via k-means centroids.
#include "bench_common.h"
#include "defense/kmeans.h"
#include "sim/defense_run.h"
#include "zigbee/app.h"

using namespace ctc;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine = bench::make_engine(
      options, "Table V: averaged DE^2 vs distance (|C40| mode)");
  const auto frames = zigbee::make_text_workload(100);
  defense::DetectorConfig config;
  config.c40_mode = defense::C40Mode::magnitude;
  defense::Detector detector(config);
  const std::size_t frames_per_point = options.trials_or(100);

  const double paper_auth[] = {0.0004, 0.0007, 0.0011, 0.0103, 0.0003, 0.0007};
  const double paper_emu[] = {1.1426, 1.8706, 1.4818, 1.3215, 2.0024, 1.2152};

  bench::JsonReport report(options, "table5_de2_distance");
  std::vector<double> distances_m, auth_mean, emu_mean;

  sim::Table table({"distance", "ZigBee DE^2", "paper", "Emulated DE^2", "paper "});
  double auth_max = 0.0;
  double emu_min = 1e9;
  int row = 0;
  for (double meters : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    sim::LinkConfig authentic;
    authentic.environment = channel::Environment::real_world(meters);
    sim::LinkConfig emulated = authentic;
    emulated.kind = sim::LinkKind::emulated;
    const auto auth = sim::collect_defense_samples(
        sim::Link(authentic), frames, frames_per_point, detector, engine);
    const auto emu = sim::collect_defense_samples(
        sim::Link(emulated), frames, frames_per_point, detector, engine);
    auth_max = std::max(auth_max, auth.mean_distance());
    emu_min = std::min(emu_min, emu.mean_distance());
    table.add_row({sim::Table::num(meters, 0) + "m",
                   sim::Table::num(auth.mean_distance(), 4),
                   sim::Table::num(paper_auth[row], 4),
                   sim::Table::num(emu.mean_distance(), 4),
                   sim::Table::num(paper_emu[row], 4)});
    distances_m.push_back(meters);
    auth_mean.push_back(auth.mean_distance());
    emu_mean.push_back(emu.mean_distance());
    ++row;
  }
  table.print();
  std::printf("\nper-distance averages separate: max authentic %.4f < min emulated %.4f\n",
              auth_max, emu_min);
  std::printf("-> pick any threshold in (%.4f, %.4f); the paper picks from [0.1, 1].\n",
              auth_max, emu_min);

  bench::section("Fig. 6: k-means centroids of the reconstructed constellation (2 m)");
  for (auto kind : {sim::LinkKind::authentic, sim::LinkKind::emulated}) {
    sim::LinkConfig link_config;
    link_config.kind = kind;
    link_config.environment = channel::Environment::real_world(2.0);
    const sim::Link link(link_config);
    dsp::Rng rng = engine.stream();
    const auto observation = link.send(frames[0], rng);
    const cvec points = defense::build_constellation(observation.rx.freq_chips);
    const auto clusters = defense::kmeans(points, rng);
    std::printf("%s: within-cluster SS = %.3f, centroids:",
                kind == sim::LinkKind::authentic ? "authentic" : "emulated ",
                clusters.within_cluster_ss);
    for (const cplx& c : clusters.centroids) {
      std::printf(" (%.2f,%.2f)", c.real(), c.imag());
    }
    std::printf("\n");
  }
  std::printf("shape check: authentic centroids sit near the unit QPSK points with\n"
              "tight clusters; emulated clusters are diffuse (larger SS).\n");

  report.set("frames_per_point", frames_per_point);
  report.set("distance_m", distances_m);
  report.set("authentic_mean_de2", auth_mean);
  report.set("emulated_mean_de2", emu_mean);
  report.set("authentic_max_mean", auth_max);
  report.set("emulated_min_mean", emu_min);
  bench::finish(report, options);
  return 0;
}
