// Fig. 5 — In-phase and quadrature comparison of the original and emulated
// ZigBee waveforms (noiseless).
//
// Prints one WiFi-symbol period (80 samples at 20 MHz = 4 us) of both
// waveforms, plus per-segment NMSE splitting each 4 us block into its
// cyclic-prefix head (first 0.8 us, where the paper notes the emulation
// cannot match) and the remaining 3.2 us body.
#include "attack/emulator.h"
#include "bench_common.h"
#include "dsp/resample.h"
#include "dsp/stats.h"
#include "zigbee/app.h"
#include "zigbee/transmitter.h"

using namespace ctc;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_banner(options, "Fig. 5: original vs emulated ZigBee waveform (I/Q)");

  zigbee::Transmitter tx;
  const cvec observed = tx.transmit_frame(zigbee::make_text_frame(0, 0));
  attack::EmulatorConfig config;
  config.alpha = std::sqrt(26.0);  // the paper's simulation scale
  attack::WaveformEmulator emulator(config);
  const auto result = emulator.emulate(observed);

  const cvec original20 = dsp::upsample(observed, 5);
  const cvec& emulated20 = result.wifi_waveform_20mhz;

  // Match overall amplitude for plotting (the attacker's TX gain is a free
  // parameter; the receiver equalizes it anyway).
  cplx correlation{0.0, 0.0};
  double emulated_energy = 0.0;
  const std::size_t span = std::min(original20.size(), emulated20.size());
  for (std::size_t i = 0; i < span; ++i) {
    correlation += original20[i] * std::conj(emulated20[i]);
    emulated_energy += std::norm(emulated20[i]);
  }
  const cplx gain = correlation / emulated_energy;

  bench::section("one WiFi symbol (80 samples @ 20 MHz) mid-frame");
  sim::Table table({"n", "orig I", "emu I", "orig Q", "emu Q"});
  const std::size_t start = 1600;  // inside the PSDU
  for (std::size_t i = 0; i < 80; i += 4) {
    const cplx e = gain * emulated20[start + i];
    table.add_row({std::to_string(i),
                   sim::Table::num(original20[start + i].real(), 3),
                   sim::Table::num(e.real(), 3),
                   sim::Table::num(original20[start + i].imag(), 3),
                   sim::Table::num(e.imag(), 3)});
  }
  table.print();

  bench::section("distortion by segment (paper: perfect except first 0.8 us)");
  double cp_error = 0.0, cp_energy = 0.0, body_error = 0.0, body_energy = 0.0;
  for (std::size_t block = 0; block * 80 + 80 <= span; ++block) {
    for (std::size_t i = 0; i < 80; ++i) {
      const std::size_t n = block * 80 + i;
      const double err = std::norm(original20[n] - gain * emulated20[n]);
      const double pow = std::norm(original20[n]);
      if (i < 16) {
        cp_error += err;
        cp_energy += pow;
      } else {
        body_error += err;
        body_energy += pow;
      }
    }
  }
  std::printf("CP head (0.8 us) NMSE:  %.4f\n", cp_error / cp_energy);
  std::printf("body (3.2 us)   NMSE:  %.4f\n", body_error / body_energy);
  std::printf("whole-frame     NMSE:  %.4f (at 4 MHz after the 2 MHz front end: %.4f)\n",
              (cp_error + body_error) / (cp_energy + body_energy),
              dsp::nmse(observed, result.emulated_4mhz));
  std::printf("\nshape check: the CP head is several times worse than the body —\n"
              "exactly the 0.8 us mismatch Fig. 5 shows.\n");

  bench::JsonReport report(options, "fig5_emulated_waveform");
  report.set("cp_head_nmse", cp_error / cp_energy);
  report.set("body_nmse", body_error / body_energy);
  report.set("whole_frame_nmse", (cp_error + body_error) / (cp_energy + body_energy));
  report.set("nmse_4mhz", dsp::nmse(observed, result.emulated_4mhz));
  bench::finish(report, options);
  return 0;
}
