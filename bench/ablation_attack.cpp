// Ablation — attack design choices (DESIGN.md Sec. 6).
//
// (a) Number of kept subcarriers: the paper fixes 7 (2 MHz / 0.3125 MHz).
//     Fewer bins discard more ZigBee energy -> more chip errors -> lower
//     attack success; more bins do not help because the ZigBee receiver's
//     front end cannot see them.
// (b) QAM scale alpha: the paper optimizes it per frame (Eq. 4, sqrt(26) in
//     their example). Wrong scales either clip (too small) or coarsen (too
//     large) the quantization.
#include "attack/emulator.h"
#include "bench_common.h"
#include "dsp/stats.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "zigbee/app.h"

using namespace ctc;

namespace {

struct AttackOutcome {
  double nmse = 0.0;
  double mean_hamming = 0.0;
  double success_11db = 0.0;
};

AttackOutcome evaluate(const attack::EmulatorConfig& config,
                       std::span<const zigbee::MacFrame> frames,
                       std::size_t trial_count, sim::TrialEngine& engine) {
  AttackOutcome outcome;
  zigbee::Transmitter tx;
  const cvec observed = tx.transmit_frame(frames[0]);
  const auto emulation = attack::WaveformEmulator(config).emulate(observed);
  outcome.nmse = dsp::nmse(observed, emulation.emulated_4mhz);

  sim::LinkConfig link_config;
  link_config.kind = sim::LinkKind::emulated;
  link_config.environment = channel::Environment::awgn(11.0);
  link_config.emulator = config;
  const auto stats =
      sim::run_frames(sim::Link(link_config), frames, trial_count, engine);
  outcome.success_11db = stats.success_rate();
  double weighted = 0.0;
  std::size_t count = 0;
  for (const auto& [distance, n] : stats.hamming_histogram) {
    weighted += static_cast<double>(distance) * static_cast<double>(n);
    count += n;
  }
  outcome.mean_hamming = count ? weighted / static_cast<double>(count) : 0.0;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine =
      bench::make_engine(options, "Ablation: attack design choices");
  const auto frames = zigbee::make_text_workload(20);
  const std::size_t trial_count = options.trials_or(150);

  bench::JsonReport report(options, "ablation_attack");
  report.set("trials", trial_count);
  std::vector<double> bins_success, alpha_success;

  bench::section("(a) number of kept subcarriers (paper: 7)");
  sim::Table bins_table({"kept bins", "NMSE", "mean Hamming", "success @11dB"});
  for (std::size_t kept : {3u, 5u, 7u, 9u, 11u}) {
    attack::EmulatorConfig config;
    config.selection.num_kept = kept;
    const AttackOutcome outcome = evaluate(config, frames, trial_count, engine);
    bins_table.add_row({std::to_string(kept), sim::Table::num(outcome.nmse, 4),
                        sim::Table::num(outcome.mean_hamming, 2),
                        sim::Table::percent(outcome.success_11db)});
    bins_success.push_back(outcome.success_11db);
  }
  bins_table.print();
  std::printf("expectation: success collapses below 7 bins; beyond 7 the extra\n"
              "bins fall outside the ZigBee 2 MHz window and change little.\n");

  bench::section("(b) QAM scale alpha (paper: optimized, sqrt(26) in their run)");
  sim::Table alpha_table({"alpha", "NMSE", "mean Hamming", "success @11dB"});
  for (double alpha : {0.5, 2.0, std::sqrt(26.0), 12.0, 40.0}) {
    attack::EmulatorConfig config;
    config.alpha = alpha;
    const AttackOutcome outcome = evaluate(config, frames, trial_count, engine);
    alpha_table.add_row({sim::Table::num(alpha, 2), sim::Table::num(outcome.nmse, 4),
                         sim::Table::num(outcome.mean_hamming, 2),
                         sim::Table::percent(outcome.success_11db)});
    alpha_success.push_back(outcome.success_11db);
  }
  {
    attack::EmulatorConfig config;  // alpha = nullopt -> per-frame optimum
    const AttackOutcome outcome = evaluate(config, frames, trial_count, engine);
    alpha_table.add_row({"optimized", sim::Table::num(outcome.nmse, 4),
                         sim::Table::num(outcome.mean_hamming, 2),
                         sim::Table::percent(outcome.success_11db)});
    alpha_success.push_back(outcome.success_11db);
  }
  alpha_table.print();
  std::printf("expectation: the optimized scale matches or beats every fixed one;\n"
              "extreme scales clip or coarsen the grid and lose the frame.\n");

  report.set("bins_success_rate", bins_success);
  report.set("alpha_success_rate", alpha_success);
  bench::finish(report, options);
  return 0;
}
