// Figs. 8 & 9 — why the "possible" defensive strategies of Sec. VI-A1 fail.
//
// Fig. 8: received I/Q at 17 dB — the cyclic-prefix repetition is invisible
//         under noise (we quantify it with the CP autocorrelation metric).
// Fig. 9a: OQPSK demodulation output (instantaneous frequency) — identical
//         trends for authentic and emulated frames.
// Fig. 9b: chip amplitudes after hard decision — different chips, same
//         decoded symbols.
#include <cmath>

#include "bench_common.h"
#include "sim/link.h"
#include "zigbee/app.h"

using namespace ctc;

namespace {

// Normalized CP autocorrelation at 4 MHz: correlate the first 0.8 us of each
// 4 us block against its last 0.8 us (the detection a CP-hunting defender
// would run). 1.0 = perfect repetition.
double cp_metric(const cvec& wave) {
  cplx correlation{0.0, 0.0};
  double energy = 0.0;
  // At 4 MHz: block = 16 samples, CP = 3.2 samples -> use the 20 MHz grid
  // equivalent: compare samples [0,3) with [12.8..] ~ [13,16).
  for (std::size_t block = 0; block * 16 + 16 <= wave.size(); ++block) {
    for (std::size_t i = 0; i < 3; ++i) {
      const cplx head = wave[block * 16 + i];
      const cplx tail = wave[block * 16 + 13 + i];
      correlation += head * std::conj(tail);
      energy += 0.5 * (std::norm(head) + std::norm(tail));
    }
  }
  return std::abs(correlation) / energy;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine =
      bench::make_engine(options, "Figs. 8-9: possible strategies fail");
  dsp::Rng rng = engine.stream();
  const auto frame = zigbee::make_text_frame(0, 0);

  sim::LinkConfig authentic;
  authentic.environment = channel::Environment::awgn(17.0);
  sim::LinkConfig emulated = authentic;
  emulated.kind = sim::LinkKind::emulated;
  const sim::Link auth_link(authentic);
  const sim::Link emu_link(emulated);

  bench::section("Fig. 8: received waveform (I/Q) at SNR = 17 dB");
  const cvec auth_clean = auth_link.clean_waveform(frame);
  const cvec emu_clean = emu_link.clean_waveform(frame);
  const cvec auth_rx = authentic.environment.propagate(auth_clean, rng);
  const cvec emu_rx = emulated.environment.propagate(emu_clean, rng);
  sim::Table wave_table({"n", "auth I", "auth Q", "emu I", "emu Q"});
  for (std::size_t i = 800; i < 832; i += 2) {
    wave_table.add_row({std::to_string(i), sim::Table::num(auth_rx[i].real(), 3),
                        sim::Table::num(auth_rx[i].imag(), 3),
                        sim::Table::num(emu_rx[i].real(), 3),
                        sim::Table::num(emu_rx[i].imag(), 3)});
  }
  wave_table.print();

  bench::section("CP-repetition detector (normalized autocorrelation)");
  sim::LinkConfig emulated7 = emulated;
  emulated7.environment = channel::Environment::awgn(7.0);
  channel::Environment real5 = channel::Environment::real_world(5.0);
  channel::Environment real5_mp = real5;
  channel::MultipathProfile delay_spread;
  delay_spread.num_taps = 3;  // ~0.5 us delay spread at 4 MHz
  delay_spread.decay_per_tap_db = 3.0;
  real5_mp.multipath = delay_spread;
  const double auth_noiseless = cp_metric(auth_clean);
  const double emu_noiseless = cp_metric(emu_clean);
  sim::Table cp_table(
      {"waveform", "noiseless", "17 dB", "7 dB", "flat fading @5m", "multipath @5m"});
  cp_table.add_row(
      {"authentic", sim::Table::num(auth_noiseless, 3),
       sim::Table::num(cp_metric(auth_rx), 3),
       sim::Table::num(cp_metric(channel::Environment::awgn(7.0).propagate(auth_clean, rng)), 3),
       sim::Table::num(cp_metric(real5.propagate(auth_clean, rng)), 3),
       sim::Table::num(cp_metric(real5_mp.propagate(auth_clean, rng)), 3)});
  cp_table.add_row(
      {"emulated", sim::Table::num(emu_noiseless, 3),
       sim::Table::num(cp_metric(emu_rx), 3),
       sim::Table::num(cp_metric(emulated7.environment.propagate(emu_clean, rng)), 3),
       sim::Table::num(cp_metric(real5.propagate(emu_clean, rng)), 3),
       sim::Table::num(cp_metric(real5_mp.propagate(emu_clean, rng)), 3)});
  cp_table.print();
  std::printf(
      "paper's claim: noise/fading hide the CP repetition. Our measurement is\n"
      "more nuanced (see EXPERIMENTS.md): over a *flat* channel the metric\n"
      "still separates; it needs exact 4 us grid alignment, and delay spread\n"
      "(multipath column) erodes it, which the paper's cluttered lab provides.\n"
      "The cumulant defense needs neither alignment nor a flat channel.\n");

  bench::section("Fig. 9a: OQPSK demodulation output (frequency chips)");
  zigbee::Receiver receiver;
  const auto auth_result = receiver.receive(auth_rx);
  const auto emu_result = receiver.receive(emu_rx);
  sim::Table freq_table({"chip", "authentic f", "emulated f"});
  for (std::size_t i = 64; i < 84; ++i) {
    freq_table.add_row({std::to_string(i),
                        sim::Table::num(auth_result.freq_chips[i], 3),
                        sim::Table::num(emu_result.freq_chips[i], 3)});
  }
  freq_table.print();
  std::printf("trend is the same +-1 chip pattern for both -> not a usable tell.\n");

  bench::section("Fig. 9b: hard chips differ, decoded symbols agree");
  std::size_t chip_diffs = 0;
  const std::size_t chips = std::min(auth_result.hard_chips.size(),
                                     emu_result.hard_chips.size());
  for (std::size_t i = 0; i < chips; ++i) {
    if (auth_result.hard_chips[i] != emu_result.hard_chips[i]) ++chip_diffs;
  }
  std::printf("chip disagreement: %zu of %zu chips (%.1f%%)\n", chip_diffs, chips,
              100.0 * static_cast<double>(chip_diffs) / static_cast<double>(chips));
  std::printf("authentic decoded: %s | emulated decoded: %s | same payload: %s\n",
              auth_result.frame_ok() ? "yes" : "no",
              emu_result.frame_ok() ? "yes" : "no",
              (auth_result.psdu == emu_result.psdu) ? "yes" : "no");
  std::printf("paper's point: DSSS tolerance maps different chips to the same\n"
              "symbols, so chip sequences cannot expose the attacker either.\n");

  bench::JsonReport report(options, "fig8_fig9_possible_strategies");
  report.set("cp_metric_auth_noiseless", auth_noiseless);
  report.set("cp_metric_emu_noiseless", emu_noiseless);
  report.set("chip_diffs", chip_diffs);
  report.set("chips_compared", chips);
  report.set("auth_frame_ok", auth_result.frame_ok() ? "yes" : "no");
  report.set("emu_frame_ok", emu_result.frame_ok() ? "yes" : "no");
  bench::finish(report, options);
  return 0;
}
