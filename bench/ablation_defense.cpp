// Ablation — defense design choices (DESIGN.md Sec. 6).
//
// (a) Receiver tap: the paper's defense reads the GNU Radio receiver's
//     discriminator output. A coherent matched-filter tap sees a much
//     cleaner emulated constellation (sign errors only) and separates far
//     worse — the tap choice is load-bearing.
// (b) Sample count D: cumulant estimator variance shrinks with D;
//     short frames mean noisier features.
// (c) Threshold sweep: detection/false-alarm trade-off around the
//     calibrated Q (an ROC slice at 9 dB).
// (d) C40 mode under phase offset: Re C40 false-alarms, |C40| does not.
#include "bench_common.h"
#include "channel/impairments.h"
#include "defense/detector.h"
#include "sim/defense_run.h"
#include "zigbee/app.h"

using namespace ctc;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine =
      bench::make_engine(options, "Ablation: defense design choices");
  const auto frames = zigbee::make_text_workload(50);
  defense::Detector extractor;
  const std::size_t tap_frames = options.trials_or(50);
  const std::size_t roc_frames = options.trials_or(100);

  bench::JsonReport report(options, "ablation_defense");

  sim::LinkConfig auth12;
  auth12.environment = channel::Environment::awgn(12.0);
  sim::LinkConfig emu12 = auth12;
  emu12.kind = sim::LinkKind::emulated;
  const sim::Link auth_link(auth12);
  const sim::Link emu_link(emu12);

  bench::section("(a) receiver tap at 12 dB (50 frames each)");
  std::vector<double> tap_gap;
  sim::Table tap_table({"tap", "auth DE^2 mean", "emu DE^2 mean", "gap (x)"});
  for (auto tap : {sim::DefenseTap::discriminator, sim::DefenseTap::coherent}) {
    const auto a = sim::collect_defense_samples(auth_link, frames, tap_frames,
                                                extractor, engine, tap);
    const auto e = sim::collect_defense_samples(emu_link, frames, tap_frames,
                                                extractor, engine, tap);
    tap_table.add_row(
        {tap == sim::DefenseTap::discriminator ? "discriminator" : "coherent",
         sim::Table::num(a.mean_distance(), 4), sim::Table::num(e.mean_distance(), 4),
         sim::Table::num(e.mean_distance() / a.mean_distance(), 1)});
    tap_gap.push_back(e.mean_distance() / a.mean_distance());
  }
  tap_table.print();
  std::printf("expectation: the discriminator tap separates by a much larger\n"
              "factor — it is what makes the paper's defense practical.\n");

  bench::section("(b) sample count D: feature spread of authentic frames @12 dB");
  sim::Table d_table({"payload bytes", "D (points)", "DE^2 mean", "DE^2 max"});
  for (std::size_t payload : {2u, 5u, 20u, 60u}) {
    zigbee::MacFrame frame;
    frame.payload.assign(payload, 0x5A);
    const std::vector<zigbee::MacFrame> workload = {frame};
    const auto samples = sim::collect_defense_samples(
        auth_link, workload, options.trials_or(40), extractor, engine);
    const std::size_t points = (11 + payload) * 2 * 32 / 2;  // PSDU chips / 2
    d_table.add_row({std::to_string(payload), std::to_string(points),
                     sim::Table::num(samples.mean_distance(), 4),
                     sim::Table::num(samples.max_distance(), 4)});
  }
  d_table.print();
  std::printf("observation: even the shortest frames (a few hundred points)\n"
              "already give features an order of magnitude below the emulated\n"
              "class — per-frame detection needs no pooling across frames.\n");

  bench::section("(c) threshold sweep at 9 dB (100 frames per class)");
  sim::LinkConfig auth9;
  auth9.environment = channel::Environment::awgn(9.0);
  sim::LinkConfig emu9 = auth9;
  emu9.kind = sim::LinkKind::emulated;
  const auto a9 = sim::collect_defense_samples(sim::Link(auth9), frames,
                                               roc_frames, extractor, engine);
  const auto e9 = sim::collect_defense_samples(sim::Link(emu9), frames,
                                               roc_frames, extractor, engine);
  std::vector<double> roc_false_alarm, roc_missed;
  sim::Table roc({"threshold Q", "false alarm", "missed attack"});
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.5, 1.0}) {
    std::size_t false_alarm = 0;
    for (double d : a9.distances) false_alarm += d >= q;
    std::size_t missed = 0;
    for (double d : e9.distances) missed += d < q;
    roc.add_row({sim::Table::num(q, 2),
                 sim::Table::percent(static_cast<double>(false_alarm) /
                                     static_cast<double>(a9.frames_used)),
                 sim::Table::percent(static_cast<double>(missed) /
                                     static_cast<double>(e9.frames_used))});
    roc_false_alarm.push_back(static_cast<double>(false_alarm) /
                              static_cast<double>(a9.frames_used));
    roc_missed.push_back(static_cast<double>(missed) /
                         static_cast<double>(e9.frames_used));
  }
  roc.print();

  bench::section("(d) C40 mode under a 20-degree residual phase offset");
  // Build rotated authentic features directly.
  dsp::Rng rotation_rng = engine.stream();
  rvec chips(4096);
  for (auto& c : chips) c = (rotation_rng.bit() ? 1.0 : -1.0) + 0.2 * rotation_rng.gaussian();
  const double theta = 20.0 * kPi / 180.0;
  rvec rotated(chips.size());
  for (std::size_t i = 0; i + 1 < chips.size(); i += 2) {
    const cplx p = cplx{chips[i], chips[i + 1]} * std::polar(1.0, theta);
    rotated[i] = p.real();
    rotated[i + 1] = p.imag();
  }
  defense::DetectorConfig real_mode;
  defense::DetectorConfig mag_mode;
  mag_mode.c40_mode = defense::C40Mode::magnitude;
  sim::Table c40_table({"mode", "DE^2 (authentic, rotated)", "verdict"});
  for (const auto& [name, config] :
       {std::pair{"Re C40", real_mode}, std::pair{"|C40|", mag_mode}}) {
    const auto verdict = defense::Detector(config).classify(rotated);
    c40_table.add_row({name, sim::Table::num(verdict.distance_sq, 4),
                       verdict.is_attack ? "ATTACK (false alarm)" : "authentic"});
  }
  c40_table.print();
  std::printf("expectation (Sec. VI-C): Re C40 false-alarms under rotation;\n"
              "|C40| stays authentic — hence the real-environment mode switch.\n");

  report.set("tap_gap", tap_gap);
  report.set("roc_false_alarm", roc_false_alarm);
  report.set("roc_missed", roc_missed);
  bench::finish(report, options);
  return 0;
}
