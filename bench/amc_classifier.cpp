// Extension bench — hierarchical cumulant-based modulation classification
// (the Swami-Sadler method the paper's defense specializes; Sec. II-B).
//
// Prints a confusion matrix over the Table III constellations at two SNRs
// (with noise correction), then classifies the defense's reconstructed
// constellations: authentic traffic should rank QPSK first, the emulated
// attack should not.
#include "bench_common.h"
#include "defense/amc.h"
#include "dsp/constellation.h"
#include "dsp/stats.h"
#include "sim/defense_run.h"
#include "sim/link.h"
#include "zigbee/app.h"

using namespace ctc;

namespace {

cvec constellation_of(defense::ModulationClass klass) {
  using MC = defense::ModulationClass;
  switch (klass) {
    case MC::bpsk: return dsp::make_psk(2);
    case MC::qpsk: return dsp::make_psk(4);
    case MC::psk_higher: return dsp::make_psk(8);
    case MC::pam4: return dsp::make_pam(4);
    case MC::pam8: return dsp::make_pam(8);
    case MC::pam16: return dsp::make_pam(16);
    case MC::qam16: return dsp::make_qam(16);
    case MC::qam64: return dsp::make_qam(64);
    case MC::qam256: return dsp::make_qam(256);
  }
  return {};
}

constexpr defense::ModulationClass kClasses[] = {
    defense::ModulationClass::bpsk,  defense::ModulationClass::qpsk,
    defense::ModulationClass::psk_higher, defense::ModulationClass::pam4,
    defense::ModulationClass::pam8,  defense::ModulationClass::pam16,
    defense::ModulationClass::qam16, defense::ModulationClass::qam64,
    defense::ModulationClass::qam256,
};

}  // namespace

int main() {
  dsp::Rng rng = bench::make_rng("Extension: cumulant modulation classifier");

  for (double snr_db : {20.0, 10.0}) {
    bench::section(("confusion matrix at " + sim::Table::num(snr_db, 0) +
                    " dB (200 trials x 4096 samples, noise-corrected)")
                       .c_str());
    std::vector<std::string> header = {"true \\ decided"};
    for (auto klass : kClasses) header.push_back(defense::to_string(klass));
    sim::Table table(header);
    const double noise_variance = dsp::from_db(-snr_db);
    for (auto truth : kClasses) {
      const cvec constellation = constellation_of(truth);
      std::vector<std::size_t> counts(std::size(kClasses), 0);
      for (int trial = 0; trial < 200; ++trial) {
        cvec samples(4096);
        for (auto& s : samples) {
          s = constellation[rng.uniform_index(constellation.size())] +
              rng.complex_gaussian(noise_variance);
        }
        defense::AmcConfig config;
        config.noise_variance = noise_variance;
        const auto result = defense::classify_modulation(samples, config);
        for (std::size_t c = 0; c < std::size(kClasses); ++c) {
          if (kClasses[c] == result.best) ++counts[c];
        }
      }
      std::vector<std::string> row = {defense::to_string(truth)};
      for (std::size_t c = 0; c < std::size(kClasses); ++c) {
        row.push_back(counts[c] ? std::to_string(counts[c]) : ".");
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }
  std::printf(
      "\nnote: the dense QAM rows (and 8/16-PAM) share nearly identical\n"
      "fourth-order cumulants (Table III rows within 0.03), so they confuse\n"
      "among themselves — the known limitation of 4th-order-only features.\n");

  bench::section("classifying the defense tap (12 dB, 20 frames each)");
  const auto frames = zigbee::make_text_workload(20);
  sim::LinkConfig authentic;
  authentic.environment = channel::Environment::awgn(12.0);
  sim::LinkConfig emulated = authentic;
  emulated.kind = sim::LinkKind::emulated;
  for (const auto& [name, config] :
       {std::pair{"authentic", authentic}, std::pair{"emulated ", emulated}}) {
    const sim::Link link(config);
    std::size_t qpsk_votes = 0;
    std::size_t frames_used = 0;
    for (std::size_t i = 0; i < 20; ++i) {
      const auto observation = link.send(frames[i], rng);
      if (observation.rx.freq_chips.size() < 8) continue;
      const cvec points = defense::build_constellation(observation.rx.freq_chips);
      const auto result = defense::classify_modulation(points);
      qpsk_votes += result.best == defense::ModulationClass::qpsk;
      ++frames_used;
    }
    std::printf("%s: classified QPSK in %zu/%zu frames\n", name, qpsk_votes,
                frames_used);
  }
  std::printf("shape check: authentic constellations classify as QPSK; the\n"
              "attack's distorted clouds do not -> the binary detector of\n"
              "Sec. VI is the specialization of this classifier.\n");
  return 0;
}
