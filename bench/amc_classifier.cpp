// Extension bench — hierarchical cumulant-based modulation classification
// (the Swami-Sadler method the paper's defense specializes; Sec. II-B).
//
// Prints a confusion matrix over the Table III constellations at two SNRs
// (with noise correction), then classifies the defense's reconstructed
// constellations: authentic traffic should rank QPSK first, the emulated
// attack should not.
#include "bench_common.h"
#include "defense/amc.h"
#include "dsp/constellation.h"
#include "dsp/stats.h"
#include "sim/defense_run.h"
#include "sim/link.h"
#include "zigbee/app.h"

using namespace ctc;

namespace {

cvec constellation_of(defense::ModulationClass klass) {
  using MC = defense::ModulationClass;
  switch (klass) {
    case MC::bpsk: return dsp::make_psk(2);
    case MC::qpsk: return dsp::make_psk(4);
    case MC::psk_higher: return dsp::make_psk(8);
    case MC::pam4: return dsp::make_pam(4);
    case MC::pam8: return dsp::make_pam(8);
    case MC::pam16: return dsp::make_pam(16);
    case MC::qam16: return dsp::make_qam(16);
    case MC::qam64: return dsp::make_qam(64);
    case MC::qam256: return dsp::make_qam(256);
  }
  return {};
}

constexpr defense::ModulationClass kClasses[] = {
    defense::ModulationClass::bpsk,  defense::ModulationClass::qpsk,
    defense::ModulationClass::psk_higher, defense::ModulationClass::pam4,
    defense::ModulationClass::pam8,  defense::ModulationClass::pam16,
    defense::ModulationClass::qam16, defense::ModulationClass::qam64,
    defense::ModulationClass::qam256,
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine =
      bench::make_engine(options, "Extension: cumulant modulation classifier");
  const std::size_t trials_per_class = options.trials_or(200);

  bench::JsonReport report(options, "amc_classifier");
  report.set("trials_per_class", trials_per_class);
  std::vector<double> diagonal_fraction;

  for (double snr_db : {20.0, 10.0}) {
    bench::section(("confusion matrix at " + sim::Table::num(snr_db, 0) +
                    " dB (200 trials x 4096 samples, noise-corrected)")
                       .c_str());
    std::vector<std::string> header = {"true \\ decided"};
    for (auto klass : kClasses) header.push_back(defense::to_string(klass));
    sim::Table table(header);
    const double noise_variance = dsp::from_db(-snr_db);
    std::size_t diagonal_hits = 0;
    for (auto truth : kClasses) {
      const cvec constellation = constellation_of(truth);
      // One engine trial = one 4096-sample draw, classified.
      const auto decisions = engine.map(
          trials_per_class, [&](std::size_t, dsp::Rng& rng) {
            cvec samples(4096);
            for (auto& s : samples) {
              s = constellation[rng.uniform_index(constellation.size())] +
                  rng.complex_gaussian(noise_variance);
            }
            defense::AmcConfig config;
            config.noise_variance = noise_variance;
            return defense::classify_modulation(samples, config).best;
          });
      std::vector<std::size_t> counts(std::size(kClasses), 0);
      for (auto decided : decisions) {
        for (std::size_t c = 0; c < std::size(kClasses); ++c) {
          if (kClasses[c] == decided) ++counts[c];
        }
      }
      std::vector<std::string> row = {defense::to_string(truth)};
      for (std::size_t c = 0; c < std::size(kClasses); ++c) {
        row.push_back(counts[c] ? std::to_string(counts[c]) : ".");
        if (kClasses[c] == truth) diagonal_hits += counts[c];
      }
      table.add_row(row);
    }
    table.print();
    diagonal_fraction.push_back(
        static_cast<double>(diagonal_hits) /
        static_cast<double>(trials_per_class * std::size(kClasses)));
  }
  std::printf(
      "\nnote: the dense QAM rows (and 8/16-PAM) share nearly identical\n"
      "fourth-order cumulants (Table III rows within 0.03), so they confuse\n"
      "among themselves — the known limitation of 4th-order-only features.\n");

  bench::section("classifying the defense tap (12 dB, 20 frames each)");
  const auto frames = zigbee::make_text_workload(20);
  sim::LinkConfig authentic;
  authentic.environment = channel::Environment::awgn(12.0);
  sim::LinkConfig emulated = authentic;
  emulated.kind = sim::LinkKind::emulated;
  for (const auto& [name, config] :
       {std::pair{"authentic", authentic}, std::pair{"emulated ", emulated}}) {
    const sim::Link link(config);
    struct Vote { bool usable = false; bool qpsk = false; };
    const auto votes = engine.map(frames.size(), [&](std::size_t i, dsp::Rng& rng) {
      const auto observation = link.send(frames[i], rng);
      Vote vote;
      if (observation.rx.freq_chips.size() < 8) return vote;
      const cvec points = defense::build_constellation(observation.rx.freq_chips);
      vote.usable = true;
      vote.qpsk = defense::classify_modulation(points).best ==
                  defense::ModulationClass::qpsk;
      return vote;
    });
    std::size_t qpsk_votes = 0;
    std::size_t frames_used = 0;
    for (const Vote& vote : votes) {
      qpsk_votes += vote.usable && vote.qpsk;
      frames_used += vote.usable;
    }
    std::printf("%s: classified QPSK in %zu/%zu frames\n", name, qpsk_votes,
                frames_used);
  }
  std::printf("shape check: authentic constellations classify as QPSK; the\n"
              "attack's distorted clouds do not -> the binary detector of\n"
              "Sec. VI is the specialization of this classifier.\n");

  report.set("confusion_diagonal_fraction", diagonal_fraction);
  bench::finish(report, options);
  return 0;
}
