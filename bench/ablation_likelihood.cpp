// Ablation — cumulant features vs likelihood (HLRT) classification.
//
// Sec. II-B: the paper picks cumulants because "feature-based cumulant
// analysis has lower complexity than the likelihood function". Measured
// here: detection quality of both methods on the actual attack traffic,
// and wall-clock cost per frame.
#include <chrono>

#include "bench_common.h"
#include "defense/amc.h"
#include "defense/detector.h"
#include "defense/likelihood.h"
#include "sim/link.h"
#include "zigbee/app.h"

using namespace ctc;

namespace {

struct TrialOutcome {
  bool usable = false;
  bool cumulant_correct = false;
  bool likelihood_correct = false;
  double cumulant_micros = 0.0;
  double likelihood_micros = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  sim::TrialEngine engine =
      bench::make_engine(options, "Ablation: cumulants vs likelihood (HLRT)");
  const auto frames = zigbee::make_text_workload(30);
  const std::size_t trials = options.trials_or(30);

  sim::LinkConfig auth_config;
  auth_config.environment = channel::Environment::awgn(12.0);
  sim::LinkConfig emu_config = auth_config;
  emu_config.kind = sim::LinkKind::emulated;
  const sim::Link auth_link(auth_config);
  const sim::Link emu_link(emu_config);

  defense::Detector cumulant_detector;
  defense::LikelihoodConfig hlrt;
  hlrt.noise_variance = 0.15;  // operating assumption handed to the HLRT

  // Each trial sends one frame (alternating links) and times both
  // classifiers on the received constellation. Timings are per-call wall
  // time on whichever worker ran the trial; accuracy is deterministic.
  const auto outcomes = engine.map(trials, [&](std::size_t trial, dsp::Rng& rng) {
    const bool is_attack = trial % 2 == 1;
    const sim::Link& link = is_attack ? emu_link : auth_link;
    const auto observation = link.send(frames[trial % frames.size()], rng);
    TrialOutcome outcome;
    if (observation.rx.freq_chips.size() < 8) return outcome;
    outcome.usable = true;
    const cvec points = defense::build_constellation(observation.rx.freq_chips);

    {
      const auto start = std::chrono::steady_clock::now();
      const auto verdict = cumulant_detector.feature_from_points(points);
      const bool flagged = verdict.distance_sq() >= 0.2;
      outcome.cumulant_micros = std::chrono::duration<double, std::micro>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
      outcome.cumulant_correct = flagged == is_attack;
    }
    {
      const auto start = std::chrono::steady_clock::now();
      // The HLRT decision: is this cloud more QPSK-like than attack-like?
      const bool flagged = defense::qpsk_vs_qam64_llr(points, hlrt) < 0.0;
      outcome.likelihood_micros = std::chrono::duration<double, std::micro>(
                                      std::chrono::steady_clock::now() - start)
                                      .count();
      outcome.likelihood_correct = flagged == is_attack;
    }
    return outcome;
  });

  struct Outcome {
    int correct = 0;
    int total = 0;
    double micros = 0.0;
  };
  Outcome cumulants, likelihood;
  for (const TrialOutcome& o : outcomes) {
    if (!o.usable) continue;
    cumulants.correct += o.cumulant_correct;
    cumulants.micros += o.cumulant_micros;
    ++cumulants.total;
    likelihood.correct += o.likelihood_correct;
    likelihood.micros += o.likelihood_micros;
    ++likelihood.total;
  }

  sim::Table table({"method", "accuracy", "mean time per frame"});
  table.add_row({"cumulant features (paper)",
                 std::to_string(cumulants.correct) + "/" +
                     std::to_string(cumulants.total),
                 sim::Table::num(cumulants.micros / cumulants.total, 1) + " us"});
  table.add_row({"HLRT (QPSK vs 64-QAM)",
                 std::to_string(likelihood.correct) + "/" +
                     std::to_string(likelihood.total),
                 sim::Table::num(likelihood.micros / likelihood.total, 1) + " us"});
  table.print();
  std::printf(
      "\nreading: the cumulant detector is ~1000x cheaper AND more accurate\n"
      "here. The HLRT needs the received cloud to match one of its two\n"
      "hypotheses exactly; the real attack cloud is a *distorted QPSK*, not\n"
      "a clean 64-QAM, so the likelihood test suffers model mismatch on top\n"
      "of needing the noise variance and a phase grid. The paper's Sec. II-B\n"
      "preference for feature-based detection is, if anything, understated.\n");

  bench::JsonReport report(options, "ablation_likelihood");
  report.set("trials", trials);
  report.set("cumulant_correct", static_cast<std::size_t>(cumulants.correct));
  report.set("cumulant_total", static_cast<std::size_t>(cumulants.total));
  report.set("likelihood_correct", static_cast<std::size_t>(likelihood.correct));
  report.set("likelihood_total", static_cast<std::size_t>(likelihood.total));
  bench::finish(report, options);
  return 0;
}
