// Ablation — cumulant features vs likelihood (HLRT) classification.
//
// Sec. II-B: the paper picks cumulants because "feature-based cumulant
// analysis has lower complexity than the likelihood function". Measured
// here: detection quality of both methods on the actual attack traffic,
// and wall-clock cost per frame.
#include <chrono>

#include "bench_common.h"
#include "defense/amc.h"
#include "defense/detector.h"
#include "defense/likelihood.h"
#include "sim/link.h"
#include "zigbee/app.h"

using namespace ctc;

int main() {
  dsp::Rng rng = bench::make_rng("Ablation: cumulants vs likelihood (HLRT)");
  const auto frames = zigbee::make_text_workload(30);

  sim::LinkConfig auth_config;
  auth_config.environment = channel::Environment::awgn(12.0);
  sim::LinkConfig emu_config = auth_config;
  emu_config.kind = sim::LinkKind::emulated;

  defense::Detector cumulant_detector;
  defense::LikelihoodConfig hlrt;
  hlrt.noise_variance = 0.15;  // operating assumption handed to the HLRT

  struct Outcome {
    int correct = 0;
    int total = 0;
    double micros = 0.0;
  };
  Outcome cumulants, likelihood;

  for (int trial = 0; trial < 30; ++trial) {
    const bool is_attack = trial % 2 == 1;
    const sim::Link link(is_attack ? emu_config : auth_config);
    const auto observation = link.send(frames[trial % frames.size()], rng);
    if (observation.rx.freq_chips.size() < 8) continue;
    const cvec points = defense::build_constellation(observation.rx.freq_chips);

    {
      const auto start = std::chrono::steady_clock::now();
      const auto verdict = cumulant_detector.feature_from_points(points);
      const bool flagged = verdict.distance_sq() >= 0.2;
      cumulants.micros += std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      cumulants.correct += flagged == is_attack;
      ++cumulants.total;
    }
    {
      const auto start = std::chrono::steady_clock::now();
      // The HLRT decision: is this cloud more QPSK-like than attack-like?
      const bool flagged = defense::qpsk_vs_qam64_llr(points, hlrt) < 0.0;
      likelihood.micros += std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      likelihood.correct += flagged == is_attack;
      ++likelihood.total;
    }
  }

  sim::Table table({"method", "accuracy", "mean time per frame"});
  table.add_row({"cumulant features (paper)",
                 std::to_string(cumulants.correct) + "/" +
                     std::to_string(cumulants.total),
                 sim::Table::num(cumulants.micros / cumulants.total, 1) + " us"});
  table.add_row({"HLRT (QPSK vs 64-QAM)",
                 std::to_string(likelihood.correct) + "/" +
                     std::to_string(likelihood.total),
                 sim::Table::num(likelihood.micros / likelihood.total, 1) + " us"});
  table.print(std::cout);
  std::printf(
      "\nreading: the cumulant detector is ~1000x cheaper AND more accurate\n"
      "here. The HLRT needs the received cloud to match one of its two\n"
      "hypotheses exactly; the real attack cloud is a *distorted QPSK*, not\n"
      "a clean 64-QAM, so the likelihood test suffers model mismatch on top\n"
      "of needing the noise variance and a phase grid. The paper's Sec. II-B\n"
      "preference for feature-based detection is, if anything, understated.\n");
  return 0;
}
