
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/amc.cpp" "src/defense/CMakeFiles/ctc_defense.dir/amc.cpp.o" "gcc" "src/defense/CMakeFiles/ctc_defense.dir/amc.cpp.o.d"
  "/root/repo/src/defense/constellation_builder.cpp" "src/defense/CMakeFiles/ctc_defense.dir/constellation_builder.cpp.o" "gcc" "src/defense/CMakeFiles/ctc_defense.dir/constellation_builder.cpp.o.d"
  "/root/repo/src/defense/cumulants.cpp" "src/defense/CMakeFiles/ctc_defense.dir/cumulants.cpp.o" "gcc" "src/defense/CMakeFiles/ctc_defense.dir/cumulants.cpp.o.d"
  "/root/repo/src/defense/detector.cpp" "src/defense/CMakeFiles/ctc_defense.dir/detector.cpp.o" "gcc" "src/defense/CMakeFiles/ctc_defense.dir/detector.cpp.o.d"
  "/root/repo/src/defense/kmeans.cpp" "src/defense/CMakeFiles/ctc_defense.dir/kmeans.cpp.o" "gcc" "src/defense/CMakeFiles/ctc_defense.dir/kmeans.cpp.o.d"
  "/root/repo/src/defense/likelihood.cpp" "src/defense/CMakeFiles/ctc_defense.dir/likelihood.cpp.o" "gcc" "src/defense/CMakeFiles/ctc_defense.dir/likelihood.cpp.o.d"
  "/root/repo/src/defense/streaming.cpp" "src/defense/CMakeFiles/ctc_defense.dir/streaming.cpp.o" "gcc" "src/defense/CMakeFiles/ctc_defense.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/ctc_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
