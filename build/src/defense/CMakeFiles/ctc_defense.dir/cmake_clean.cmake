file(REMOVE_RECURSE
  "CMakeFiles/ctc_defense.dir/amc.cpp.o"
  "CMakeFiles/ctc_defense.dir/amc.cpp.o.d"
  "CMakeFiles/ctc_defense.dir/constellation_builder.cpp.o"
  "CMakeFiles/ctc_defense.dir/constellation_builder.cpp.o.d"
  "CMakeFiles/ctc_defense.dir/cumulants.cpp.o"
  "CMakeFiles/ctc_defense.dir/cumulants.cpp.o.d"
  "CMakeFiles/ctc_defense.dir/detector.cpp.o"
  "CMakeFiles/ctc_defense.dir/detector.cpp.o.d"
  "CMakeFiles/ctc_defense.dir/kmeans.cpp.o"
  "CMakeFiles/ctc_defense.dir/kmeans.cpp.o.d"
  "CMakeFiles/ctc_defense.dir/likelihood.cpp.o"
  "CMakeFiles/ctc_defense.dir/likelihood.cpp.o.d"
  "CMakeFiles/ctc_defense.dir/streaming.cpp.o"
  "CMakeFiles/ctc_defense.dir/streaming.cpp.o.d"
  "libctc_defense.a"
  "libctc_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctc_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
