# Empty dependencies file for ctc_defense.
# This may be replaced when dependencies are built.
