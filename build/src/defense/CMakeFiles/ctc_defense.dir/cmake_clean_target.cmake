file(REMOVE_RECURSE
  "libctc_defense.a"
)
