file(REMOVE_RECURSE
  "CMakeFiles/ctc_wifi.dir/convcode.cpp.o"
  "CMakeFiles/ctc_wifi.dir/convcode.cpp.o.d"
  "CMakeFiles/ctc_wifi.dir/interleaver.cpp.o"
  "CMakeFiles/ctc_wifi.dir/interleaver.cpp.o.d"
  "CMakeFiles/ctc_wifi.dir/ofdm.cpp.o"
  "CMakeFiles/ctc_wifi.dir/ofdm.cpp.o.d"
  "CMakeFiles/ctc_wifi.dir/qam.cpp.o"
  "CMakeFiles/ctc_wifi.dir/qam.cpp.o.d"
  "CMakeFiles/ctc_wifi.dir/receiver.cpp.o"
  "CMakeFiles/ctc_wifi.dir/receiver.cpp.o.d"
  "CMakeFiles/ctc_wifi.dir/scrambler.cpp.o"
  "CMakeFiles/ctc_wifi.dir/scrambler.cpp.o.d"
  "CMakeFiles/ctc_wifi.dir/signal_field.cpp.o"
  "CMakeFiles/ctc_wifi.dir/signal_field.cpp.o.d"
  "CMakeFiles/ctc_wifi.dir/sync.cpp.o"
  "CMakeFiles/ctc_wifi.dir/sync.cpp.o.d"
  "CMakeFiles/ctc_wifi.dir/transmitter.cpp.o"
  "CMakeFiles/ctc_wifi.dir/transmitter.cpp.o.d"
  "libctc_wifi.a"
  "libctc_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctc_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
