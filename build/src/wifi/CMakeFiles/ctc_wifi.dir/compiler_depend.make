# Empty compiler generated dependencies file for ctc_wifi.
# This may be replaced when dependencies are built.
