
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wifi/convcode.cpp" "src/wifi/CMakeFiles/ctc_wifi.dir/convcode.cpp.o" "gcc" "src/wifi/CMakeFiles/ctc_wifi.dir/convcode.cpp.o.d"
  "/root/repo/src/wifi/interleaver.cpp" "src/wifi/CMakeFiles/ctc_wifi.dir/interleaver.cpp.o" "gcc" "src/wifi/CMakeFiles/ctc_wifi.dir/interleaver.cpp.o.d"
  "/root/repo/src/wifi/ofdm.cpp" "src/wifi/CMakeFiles/ctc_wifi.dir/ofdm.cpp.o" "gcc" "src/wifi/CMakeFiles/ctc_wifi.dir/ofdm.cpp.o.d"
  "/root/repo/src/wifi/qam.cpp" "src/wifi/CMakeFiles/ctc_wifi.dir/qam.cpp.o" "gcc" "src/wifi/CMakeFiles/ctc_wifi.dir/qam.cpp.o.d"
  "/root/repo/src/wifi/receiver.cpp" "src/wifi/CMakeFiles/ctc_wifi.dir/receiver.cpp.o" "gcc" "src/wifi/CMakeFiles/ctc_wifi.dir/receiver.cpp.o.d"
  "/root/repo/src/wifi/scrambler.cpp" "src/wifi/CMakeFiles/ctc_wifi.dir/scrambler.cpp.o" "gcc" "src/wifi/CMakeFiles/ctc_wifi.dir/scrambler.cpp.o.d"
  "/root/repo/src/wifi/signal_field.cpp" "src/wifi/CMakeFiles/ctc_wifi.dir/signal_field.cpp.o" "gcc" "src/wifi/CMakeFiles/ctc_wifi.dir/signal_field.cpp.o.d"
  "/root/repo/src/wifi/sync.cpp" "src/wifi/CMakeFiles/ctc_wifi.dir/sync.cpp.o" "gcc" "src/wifi/CMakeFiles/ctc_wifi.dir/sync.cpp.o.d"
  "/root/repo/src/wifi/transmitter.cpp" "src/wifi/CMakeFiles/ctc_wifi.dir/transmitter.cpp.o" "gcc" "src/wifi/CMakeFiles/ctc_wifi.dir/transmitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/ctc_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
