file(REMOVE_RECURSE
  "libctc_wifi.a"
)
