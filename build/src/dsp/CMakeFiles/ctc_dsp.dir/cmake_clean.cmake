file(REMOVE_RECURSE
  "CMakeFiles/ctc_dsp.dir/constellation.cpp.o"
  "CMakeFiles/ctc_dsp.dir/constellation.cpp.o.d"
  "CMakeFiles/ctc_dsp.dir/fft.cpp.o"
  "CMakeFiles/ctc_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/ctc_dsp.dir/fir.cpp.o"
  "CMakeFiles/ctc_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/ctc_dsp.dir/iq_io.cpp.o"
  "CMakeFiles/ctc_dsp.dir/iq_io.cpp.o.d"
  "CMakeFiles/ctc_dsp.dir/psd.cpp.o"
  "CMakeFiles/ctc_dsp.dir/psd.cpp.o.d"
  "CMakeFiles/ctc_dsp.dir/pulse.cpp.o"
  "CMakeFiles/ctc_dsp.dir/pulse.cpp.o.d"
  "CMakeFiles/ctc_dsp.dir/resample.cpp.o"
  "CMakeFiles/ctc_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/ctc_dsp.dir/rng.cpp.o"
  "CMakeFiles/ctc_dsp.dir/rng.cpp.o.d"
  "CMakeFiles/ctc_dsp.dir/stats.cpp.o"
  "CMakeFiles/ctc_dsp.dir/stats.cpp.o.d"
  "CMakeFiles/ctc_dsp.dir/window.cpp.o"
  "CMakeFiles/ctc_dsp.dir/window.cpp.o.d"
  "libctc_dsp.a"
  "libctc_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctc_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
