# Empty dependencies file for ctc_dsp.
# This may be replaced when dependencies are built.
