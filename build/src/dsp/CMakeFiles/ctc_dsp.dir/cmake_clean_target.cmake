file(REMOVE_RECURSE
  "libctc_dsp.a"
)
