# Empty compiler generated dependencies file for ctc_sim.
# This may be replaced when dependencies are built.
