file(REMOVE_RECURSE
  "CMakeFiles/ctc_sim.dir/defense_run.cpp.o"
  "CMakeFiles/ctc_sim.dir/defense_run.cpp.o.d"
  "CMakeFiles/ctc_sim.dir/interference.cpp.o"
  "CMakeFiles/ctc_sim.dir/interference.cpp.o.d"
  "CMakeFiles/ctc_sim.dir/link.cpp.o"
  "CMakeFiles/ctc_sim.dir/link.cpp.o.d"
  "CMakeFiles/ctc_sim.dir/metrics.cpp.o"
  "CMakeFiles/ctc_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/ctc_sim.dir/table.cpp.o"
  "CMakeFiles/ctc_sim.dir/table.cpp.o.d"
  "libctc_sim.a"
  "libctc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
