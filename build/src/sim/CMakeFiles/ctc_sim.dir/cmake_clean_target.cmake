file(REMOVE_RECURSE
  "libctc_sim.a"
)
