file(REMOVE_RECURSE
  "libctc_attack.a"
)
