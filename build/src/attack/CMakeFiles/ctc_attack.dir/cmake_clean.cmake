file(REMOVE_RECURSE
  "CMakeFiles/ctc_attack.dir/bit_extract.cpp.o"
  "CMakeFiles/ctc_attack.dir/bit_extract.cpp.o.d"
  "CMakeFiles/ctc_attack.dir/carrier_allocation.cpp.o"
  "CMakeFiles/ctc_attack.dir/carrier_allocation.cpp.o.d"
  "CMakeFiles/ctc_attack.dir/eavesdropper.cpp.o"
  "CMakeFiles/ctc_attack.dir/eavesdropper.cpp.o.d"
  "CMakeFiles/ctc_attack.dir/emulator.cpp.o"
  "CMakeFiles/ctc_attack.dir/emulator.cpp.o.d"
  "CMakeFiles/ctc_attack.dir/qam_quantize.cpp.o"
  "CMakeFiles/ctc_attack.dir/qam_quantize.cpp.o.d"
  "CMakeFiles/ctc_attack.dir/subcarrier_select.cpp.o"
  "CMakeFiles/ctc_attack.dir/subcarrier_select.cpp.o.d"
  "libctc_attack.a"
  "libctc_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctc_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
