# Empty compiler generated dependencies file for ctc_attack.
# This may be replaced when dependencies are built.
