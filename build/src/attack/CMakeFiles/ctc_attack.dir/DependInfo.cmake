
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/bit_extract.cpp" "src/attack/CMakeFiles/ctc_attack.dir/bit_extract.cpp.o" "gcc" "src/attack/CMakeFiles/ctc_attack.dir/bit_extract.cpp.o.d"
  "/root/repo/src/attack/carrier_allocation.cpp" "src/attack/CMakeFiles/ctc_attack.dir/carrier_allocation.cpp.o" "gcc" "src/attack/CMakeFiles/ctc_attack.dir/carrier_allocation.cpp.o.d"
  "/root/repo/src/attack/eavesdropper.cpp" "src/attack/CMakeFiles/ctc_attack.dir/eavesdropper.cpp.o" "gcc" "src/attack/CMakeFiles/ctc_attack.dir/eavesdropper.cpp.o.d"
  "/root/repo/src/attack/emulator.cpp" "src/attack/CMakeFiles/ctc_attack.dir/emulator.cpp.o" "gcc" "src/attack/CMakeFiles/ctc_attack.dir/emulator.cpp.o.d"
  "/root/repo/src/attack/qam_quantize.cpp" "src/attack/CMakeFiles/ctc_attack.dir/qam_quantize.cpp.o" "gcc" "src/attack/CMakeFiles/ctc_attack.dir/qam_quantize.cpp.o.d"
  "/root/repo/src/attack/subcarrier_select.cpp" "src/attack/CMakeFiles/ctc_attack.dir/subcarrier_select.cpp.o" "gcc" "src/attack/CMakeFiles/ctc_attack.dir/subcarrier_select.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/ctc_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/ctc_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/zigbee/CMakeFiles/ctc_zigbee.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
