# Empty compiler generated dependencies file for ctc_zigbee.
# This may be replaced when dependencies are built.
