
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zigbee/app.cpp" "src/zigbee/CMakeFiles/ctc_zigbee.dir/app.cpp.o" "gcc" "src/zigbee/CMakeFiles/ctc_zigbee.dir/app.cpp.o.d"
  "/root/repo/src/zigbee/chip_sequences.cpp" "src/zigbee/CMakeFiles/ctc_zigbee.dir/chip_sequences.cpp.o" "gcc" "src/zigbee/CMakeFiles/ctc_zigbee.dir/chip_sequences.cpp.o.d"
  "/root/repo/src/zigbee/csma.cpp" "src/zigbee/CMakeFiles/ctc_zigbee.dir/csma.cpp.o" "gcc" "src/zigbee/CMakeFiles/ctc_zigbee.dir/csma.cpp.o.d"
  "/root/repo/src/zigbee/dsss.cpp" "src/zigbee/CMakeFiles/ctc_zigbee.dir/dsss.cpp.o" "gcc" "src/zigbee/CMakeFiles/ctc_zigbee.dir/dsss.cpp.o.d"
  "/root/repo/src/zigbee/frame.cpp" "src/zigbee/CMakeFiles/ctc_zigbee.dir/frame.cpp.o" "gcc" "src/zigbee/CMakeFiles/ctc_zigbee.dir/frame.cpp.o.d"
  "/root/repo/src/zigbee/mac.cpp" "src/zigbee/CMakeFiles/ctc_zigbee.dir/mac.cpp.o" "gcc" "src/zigbee/CMakeFiles/ctc_zigbee.dir/mac.cpp.o.d"
  "/root/repo/src/zigbee/oqpsk.cpp" "src/zigbee/CMakeFiles/ctc_zigbee.dir/oqpsk.cpp.o" "gcc" "src/zigbee/CMakeFiles/ctc_zigbee.dir/oqpsk.cpp.o.d"
  "/root/repo/src/zigbee/receiver.cpp" "src/zigbee/CMakeFiles/ctc_zigbee.dir/receiver.cpp.o" "gcc" "src/zigbee/CMakeFiles/ctc_zigbee.dir/receiver.cpp.o.d"
  "/root/repo/src/zigbee/transmitter.cpp" "src/zigbee/CMakeFiles/ctc_zigbee.dir/transmitter.cpp.o" "gcc" "src/zigbee/CMakeFiles/ctc_zigbee.dir/transmitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/ctc_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
