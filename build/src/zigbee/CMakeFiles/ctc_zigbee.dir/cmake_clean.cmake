file(REMOVE_RECURSE
  "CMakeFiles/ctc_zigbee.dir/app.cpp.o"
  "CMakeFiles/ctc_zigbee.dir/app.cpp.o.d"
  "CMakeFiles/ctc_zigbee.dir/chip_sequences.cpp.o"
  "CMakeFiles/ctc_zigbee.dir/chip_sequences.cpp.o.d"
  "CMakeFiles/ctc_zigbee.dir/csma.cpp.o"
  "CMakeFiles/ctc_zigbee.dir/csma.cpp.o.d"
  "CMakeFiles/ctc_zigbee.dir/dsss.cpp.o"
  "CMakeFiles/ctc_zigbee.dir/dsss.cpp.o.d"
  "CMakeFiles/ctc_zigbee.dir/frame.cpp.o"
  "CMakeFiles/ctc_zigbee.dir/frame.cpp.o.d"
  "CMakeFiles/ctc_zigbee.dir/mac.cpp.o"
  "CMakeFiles/ctc_zigbee.dir/mac.cpp.o.d"
  "CMakeFiles/ctc_zigbee.dir/oqpsk.cpp.o"
  "CMakeFiles/ctc_zigbee.dir/oqpsk.cpp.o.d"
  "CMakeFiles/ctc_zigbee.dir/receiver.cpp.o"
  "CMakeFiles/ctc_zigbee.dir/receiver.cpp.o.d"
  "CMakeFiles/ctc_zigbee.dir/transmitter.cpp.o"
  "CMakeFiles/ctc_zigbee.dir/transmitter.cpp.o.d"
  "libctc_zigbee.a"
  "libctc_zigbee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctc_zigbee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
