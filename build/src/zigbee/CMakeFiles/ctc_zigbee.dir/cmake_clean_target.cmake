file(REMOVE_RECURSE
  "libctc_zigbee.a"
)
