file(REMOVE_RECURSE
  "libctc_channel.a"
)
