file(REMOVE_RECURSE
  "CMakeFiles/ctc_channel.dir/awgn.cpp.o"
  "CMakeFiles/ctc_channel.dir/awgn.cpp.o.d"
  "CMakeFiles/ctc_channel.dir/environment.cpp.o"
  "CMakeFiles/ctc_channel.dir/environment.cpp.o.d"
  "CMakeFiles/ctc_channel.dir/fading.cpp.o"
  "CMakeFiles/ctc_channel.dir/fading.cpp.o.d"
  "CMakeFiles/ctc_channel.dir/impairments.cpp.o"
  "CMakeFiles/ctc_channel.dir/impairments.cpp.o.d"
  "CMakeFiles/ctc_channel.dir/multipath.cpp.o"
  "CMakeFiles/ctc_channel.dir/multipath.cpp.o.d"
  "CMakeFiles/ctc_channel.dir/pathloss.cpp.o"
  "CMakeFiles/ctc_channel.dir/pathloss.cpp.o.d"
  "libctc_channel.a"
  "libctc_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctc_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
