# Empty dependencies file for ctc_channel.
# This may be replaced when dependencies are built.
