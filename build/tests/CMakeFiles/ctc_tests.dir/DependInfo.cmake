
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attack/attack_property_test.cpp" "tests/CMakeFiles/ctc_tests.dir/attack/attack_property_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/attack/attack_property_test.cpp.o.d"
  "/root/repo/tests/attack/bit_extract_test.cpp" "tests/CMakeFiles/ctc_tests.dir/attack/bit_extract_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/attack/bit_extract_test.cpp.o.d"
  "/root/repo/tests/attack/carrier_test.cpp" "tests/CMakeFiles/ctc_tests.dir/attack/carrier_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/attack/carrier_test.cpp.o.d"
  "/root/repo/tests/attack/eavesdropper_test.cpp" "tests/CMakeFiles/ctc_tests.dir/attack/eavesdropper_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/attack/eavesdropper_test.cpp.o.d"
  "/root/repo/tests/attack/emulator_test.cpp" "tests/CMakeFiles/ctc_tests.dir/attack/emulator_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/attack/emulator_test.cpp.o.d"
  "/root/repo/tests/attack/quantize_test.cpp" "tests/CMakeFiles/ctc_tests.dir/attack/quantize_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/attack/quantize_test.cpp.o.d"
  "/root/repo/tests/attack/subcarrier_test.cpp" "tests/CMakeFiles/ctc_tests.dir/attack/subcarrier_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/attack/subcarrier_test.cpp.o.d"
  "/root/repo/tests/channel/channel_test.cpp" "tests/CMakeFiles/ctc_tests.dir/channel/channel_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/channel/channel_test.cpp.o.d"
  "/root/repo/tests/channel/multipath_test.cpp" "tests/CMakeFiles/ctc_tests.dir/channel/multipath_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/channel/multipath_test.cpp.o.d"
  "/root/repo/tests/defense/amc_test.cpp" "tests/CMakeFiles/ctc_tests.dir/defense/amc_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/defense/amc_test.cpp.o.d"
  "/root/repo/tests/defense/builder_test.cpp" "tests/CMakeFiles/ctc_tests.dir/defense/builder_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/defense/builder_test.cpp.o.d"
  "/root/repo/tests/defense/cumulants_test.cpp" "tests/CMakeFiles/ctc_tests.dir/defense/cumulants_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/defense/cumulants_test.cpp.o.d"
  "/root/repo/tests/defense/defense_property_test.cpp" "tests/CMakeFiles/ctc_tests.dir/defense/defense_property_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/defense/defense_property_test.cpp.o.d"
  "/root/repo/tests/defense/detector_test.cpp" "tests/CMakeFiles/ctc_tests.dir/defense/detector_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/defense/detector_test.cpp.o.d"
  "/root/repo/tests/defense/kmeans_test.cpp" "tests/CMakeFiles/ctc_tests.dir/defense/kmeans_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/defense/kmeans_test.cpp.o.d"
  "/root/repo/tests/defense/likelihood_test.cpp" "tests/CMakeFiles/ctc_tests.dir/defense/likelihood_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/defense/likelihood_test.cpp.o.d"
  "/root/repo/tests/defense/streaming_test.cpp" "tests/CMakeFiles/ctc_tests.dir/defense/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/defense/streaming_test.cpp.o.d"
  "/root/repo/tests/dsp/constellation_test.cpp" "tests/CMakeFiles/ctc_tests.dir/dsp/constellation_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/dsp/constellation_test.cpp.o.d"
  "/root/repo/tests/dsp/fft_test.cpp" "tests/CMakeFiles/ctc_tests.dir/dsp/fft_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/dsp/fft_test.cpp.o.d"
  "/root/repo/tests/dsp/fir_test.cpp" "tests/CMakeFiles/ctc_tests.dir/dsp/fir_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/dsp/fir_test.cpp.o.d"
  "/root/repo/tests/dsp/iq_io_test.cpp" "tests/CMakeFiles/ctc_tests.dir/dsp/iq_io_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/dsp/iq_io_test.cpp.o.d"
  "/root/repo/tests/dsp/psd_test.cpp" "tests/CMakeFiles/ctc_tests.dir/dsp/psd_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/dsp/psd_test.cpp.o.d"
  "/root/repo/tests/dsp/pulse_test.cpp" "tests/CMakeFiles/ctc_tests.dir/dsp/pulse_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/dsp/pulse_test.cpp.o.d"
  "/root/repo/tests/dsp/resample_test.cpp" "tests/CMakeFiles/ctc_tests.dir/dsp/resample_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/dsp/resample_test.cpp.o.d"
  "/root/repo/tests/dsp/rng_test.cpp" "tests/CMakeFiles/ctc_tests.dir/dsp/rng_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/dsp/rng_test.cpp.o.d"
  "/root/repo/tests/dsp/stats_test.cpp" "tests/CMakeFiles/ctc_tests.dir/dsp/stats_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/dsp/stats_test.cpp.o.d"
  "/root/repo/tests/dsp/window_test.cpp" "tests/CMakeFiles/ctc_tests.dir/dsp/window_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/dsp/window_test.cpp.o.d"
  "/root/repo/tests/integration/attack_defense_test.cpp" "tests/CMakeFiles/ctc_tests.dir/integration/attack_defense_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/integration/attack_defense_test.cpp.o.d"
  "/root/repo/tests/integration/coexistence_test.cpp" "tests/CMakeFiles/ctc_tests.dir/integration/coexistence_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/integration/coexistence_test.cpp.o.d"
  "/root/repo/tests/integration/failure_injection_test.cpp" "tests/CMakeFiles/ctc_tests.dir/integration/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/integration/failure_injection_test.cpp.o.d"
  "/root/repo/tests/integration/sim_test.cpp" "tests/CMakeFiles/ctc_tests.dir/integration/sim_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/integration/sim_test.cpp.o.d"
  "/root/repo/tests/wifi/convcode_test.cpp" "tests/CMakeFiles/ctc_tests.dir/wifi/convcode_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/wifi/convcode_test.cpp.o.d"
  "/root/repo/tests/wifi/interleaver_test.cpp" "tests/CMakeFiles/ctc_tests.dir/wifi/interleaver_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/wifi/interleaver_test.cpp.o.d"
  "/root/repo/tests/wifi/ofdm_test.cpp" "tests/CMakeFiles/ctc_tests.dir/wifi/ofdm_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/wifi/ofdm_test.cpp.o.d"
  "/root/repo/tests/wifi/qam_test.cpp" "tests/CMakeFiles/ctc_tests.dir/wifi/qam_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/wifi/qam_test.cpp.o.d"
  "/root/repo/tests/wifi/scrambler_test.cpp" "tests/CMakeFiles/ctc_tests.dir/wifi/scrambler_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/wifi/scrambler_test.cpp.o.d"
  "/root/repo/tests/wifi/signal_sync_test.cpp" "tests/CMakeFiles/ctc_tests.dir/wifi/signal_sync_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/wifi/signal_sync_test.cpp.o.d"
  "/root/repo/tests/wifi/soft_decode_test.cpp" "tests/CMakeFiles/ctc_tests.dir/wifi/soft_decode_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/wifi/soft_decode_test.cpp.o.d"
  "/root/repo/tests/wifi/wifi_link_test.cpp" "tests/CMakeFiles/ctc_tests.dir/wifi/wifi_link_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/wifi/wifi_link_test.cpp.o.d"
  "/root/repo/tests/zigbee/chip_sequences_test.cpp" "tests/CMakeFiles/ctc_tests.dir/zigbee/chip_sequences_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/zigbee/chip_sequences_test.cpp.o.d"
  "/root/repo/tests/zigbee/csma_test.cpp" "tests/CMakeFiles/ctc_tests.dir/zigbee/csma_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/zigbee/csma_test.cpp.o.d"
  "/root/repo/tests/zigbee/dsss_test.cpp" "tests/CMakeFiles/ctc_tests.dir/zigbee/dsss_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/zigbee/dsss_test.cpp.o.d"
  "/root/repo/tests/zigbee/frame_test.cpp" "tests/CMakeFiles/ctc_tests.dir/zigbee/frame_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/zigbee/frame_test.cpp.o.d"
  "/root/repo/tests/zigbee/mac_test.cpp" "tests/CMakeFiles/ctc_tests.dir/zigbee/mac_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/zigbee/mac_test.cpp.o.d"
  "/root/repo/tests/zigbee/oqpsk_test.cpp" "tests/CMakeFiles/ctc_tests.dir/zigbee/oqpsk_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/zigbee/oqpsk_test.cpp.o.d"
  "/root/repo/tests/zigbee/phy_property_test.cpp" "tests/CMakeFiles/ctc_tests.dir/zigbee/phy_property_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/zigbee/phy_property_test.cpp.o.d"
  "/root/repo/tests/zigbee/receiver_test.cpp" "tests/CMakeFiles/ctc_tests.dir/zigbee/receiver_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/zigbee/receiver_test.cpp.o.d"
  "/root/repo/tests/zigbee/timing_recovery_test.cpp" "tests/CMakeFiles/ctc_tests.dir/zigbee/timing_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/ctc_tests.dir/zigbee/timing_recovery_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ctc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/ctc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/ctc_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/zigbee/CMakeFiles/ctc_zigbee.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/ctc_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/ctc_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ctc_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
