# Empty dependencies file for ctc_tests.
# This may be replaced when dependencies are built.
