# Empty compiler generated dependencies file for defense_demo.
# This may be replaced when dependencies are built.
