file(REMOVE_RECURSE
  "CMakeFiles/smart_home_attack.dir/smart_home_attack.cpp.o"
  "CMakeFiles/smart_home_attack.dir/smart_home_attack.cpp.o.d"
  "smart_home_attack"
  "smart_home_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_home_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
