file(REMOVE_RECURSE
  "CMakeFiles/zigbee_network.dir/zigbee_network.cpp.o"
  "CMakeFiles/zigbee_network.dir/zigbee_network.cpp.o.d"
  "zigbee_network"
  "zigbee_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zigbee_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
