# Empty compiler generated dependencies file for zigbee_network.
# This may be replaced when dependencies are built.
