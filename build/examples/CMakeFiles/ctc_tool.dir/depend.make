# Empty dependencies file for ctc_tool.
# This may be replaced when dependencies are built.
