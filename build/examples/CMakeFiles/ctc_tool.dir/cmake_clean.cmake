file(REMOVE_RECURSE
  "CMakeFiles/ctc_tool.dir/ctc_tool.cpp.o"
  "CMakeFiles/ctc_tool.dir/ctc_tool.cpp.o.d"
  "ctc_tool"
  "ctc_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctc_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
