# Empty compiler generated dependencies file for perf_complexity.
# This may be replaced when dependencies are built.
