file(REMOVE_RECURSE
  "../bench/perf_complexity"
  "../bench/perf_complexity.pdb"
  "CMakeFiles/perf_complexity.dir/perf_complexity.cpp.o"
  "CMakeFiles/perf_complexity.dir/perf_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
