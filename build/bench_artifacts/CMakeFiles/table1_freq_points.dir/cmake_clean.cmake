file(REMOVE_RECURSE
  "../bench/table1_freq_points"
  "../bench/table1_freq_points.pdb"
  "CMakeFiles/table1_freq_points.dir/table1_freq_points.cpp.o"
  "CMakeFiles/table1_freq_points.dir/table1_freq_points.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_freq_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
