# Empty dependencies file for table1_freq_points.
# This may be replaced when dependencies are built.
