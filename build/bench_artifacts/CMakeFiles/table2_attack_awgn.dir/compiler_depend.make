# Empty compiler generated dependencies file for table2_attack_awgn.
# This may be replaced when dependencies are built.
