file(REMOVE_RECURSE
  "../bench/table2_attack_awgn"
  "../bench/table2_attack_awgn.pdb"
  "CMakeFiles/table2_attack_awgn.dir/table2_attack_awgn.cpp.o"
  "CMakeFiles/table2_attack_awgn.dir/table2_attack_awgn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_attack_awgn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
