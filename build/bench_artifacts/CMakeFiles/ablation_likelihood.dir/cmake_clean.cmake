file(REMOVE_RECURSE
  "../bench/ablation_likelihood"
  "../bench/ablation_likelihood.pdb"
  "CMakeFiles/ablation_likelihood.dir/ablation_likelihood.cpp.o"
  "CMakeFiles/ablation_likelihood.dir/ablation_likelihood.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_likelihood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
