# Empty compiler generated dependencies file for ablation_likelihood.
# This may be replaced when dependencies are built.
