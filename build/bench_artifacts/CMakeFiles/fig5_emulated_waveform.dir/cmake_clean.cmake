file(REMOVE_RECURSE
  "../bench/fig5_emulated_waveform"
  "../bench/fig5_emulated_waveform.pdb"
  "CMakeFiles/fig5_emulated_waveform.dir/fig5_emulated_waveform.cpp.o"
  "CMakeFiles/fig5_emulated_waveform.dir/fig5_emulated_waveform.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_emulated_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
