# Empty dependencies file for fig5_emulated_waveform.
# This may be replaced when dependencies are built.
