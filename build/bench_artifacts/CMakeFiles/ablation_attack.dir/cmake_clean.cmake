file(REMOVE_RECURSE
  "../bench/ablation_attack"
  "../bench/ablation_attack.pdb"
  "CMakeFiles/ablation_attack.dir/ablation_attack.cpp.o"
  "CMakeFiles/ablation_attack.dir/ablation_attack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
