# Empty dependencies file for ablation_attack.
# This may be replaced when dependencies are built.
