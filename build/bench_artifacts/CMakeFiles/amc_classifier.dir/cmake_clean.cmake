file(REMOVE_RECURSE
  "../bench/amc_classifier"
  "../bench/amc_classifier.pdb"
  "CMakeFiles/amc_classifier.dir/amc_classifier.cpp.o"
  "CMakeFiles/amc_classifier.dir/amc_classifier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amc_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
