# Empty dependencies file for amc_classifier.
# This may be replaced when dependencies are built.
