# Empty compiler generated dependencies file for fig7_hamming.
# This may be replaced when dependencies are built.
