file(REMOVE_RECURSE
  "../bench/fig7_hamming"
  "../bench/fig7_hamming.pdb"
  "CMakeFiles/fig7_hamming.dir/fig7_hamming.cpp.o"
  "CMakeFiles/fig7_hamming.dir/fig7_hamming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_hamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
