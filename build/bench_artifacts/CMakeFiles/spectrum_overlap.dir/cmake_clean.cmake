file(REMOVE_RECURSE
  "../bench/spectrum_overlap"
  "../bench/spectrum_overlap.pdb"
  "CMakeFiles/spectrum_overlap.dir/spectrum_overlap.cpp.o"
  "CMakeFiles/spectrum_overlap.dir/spectrum_overlap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
