# Empty dependencies file for spectrum_overlap.
# This may be replaced when dependencies are built.
