# Empty compiler generated dependencies file for fig12_threshold.
# This may be replaced when dependencies are built.
