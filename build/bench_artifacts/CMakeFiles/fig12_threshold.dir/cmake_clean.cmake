file(REMOVE_RECURSE
  "../bench/fig12_threshold"
  "../bench/fig12_threshold.pdb"
  "CMakeFiles/fig12_threshold.dir/fig12_threshold.cpp.o"
  "CMakeFiles/fig12_threshold.dir/fig12_threshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
