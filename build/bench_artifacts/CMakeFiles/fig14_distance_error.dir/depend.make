# Empty dependencies file for fig14_distance_error.
# This may be replaced when dependencies are built.
