file(REMOVE_RECURSE
  "../bench/fig14_distance_error"
  "../bench/fig14_distance_error.pdb"
  "CMakeFiles/fig14_distance_error.dir/fig14_distance_error.cpp.o"
  "CMakeFiles/fig14_distance_error.dir/fig14_distance_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_distance_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
