# Empty compiler generated dependencies file for fig10_fig11_cumulants.
# This may be replaced when dependencies are built.
