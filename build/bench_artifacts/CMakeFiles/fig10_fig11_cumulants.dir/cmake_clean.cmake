file(REMOVE_RECURSE
  "../bench/fig10_fig11_cumulants"
  "../bench/fig10_fig11_cumulants.pdb"
  "CMakeFiles/fig10_fig11_cumulants.dir/fig10_fig11_cumulants.cpp.o"
  "CMakeFiles/fig10_fig11_cumulants.dir/fig10_fig11_cumulants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fig11_cumulants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
