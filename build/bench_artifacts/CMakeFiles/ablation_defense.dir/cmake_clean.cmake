file(REMOVE_RECURSE
  "../bench/ablation_defense"
  "../bench/ablation_defense.pdb"
  "CMakeFiles/ablation_defense.dir/ablation_defense.cpp.o"
  "CMakeFiles/ablation_defense.dir/ablation_defense.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
