# Empty dependencies file for ablation_coexistence.
# This may be replaced when dependencies are built.
