file(REMOVE_RECURSE
  "../bench/ablation_coexistence"
  "../bench/ablation_coexistence.pdb"
  "CMakeFiles/ablation_coexistence.dir/ablation_coexistence.cpp.o"
  "CMakeFiles/ablation_coexistence.dir/ablation_coexistence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
