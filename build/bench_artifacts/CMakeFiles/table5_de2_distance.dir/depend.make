# Empty dependencies file for table5_de2_distance.
# This may be replaced when dependencies are built.
