
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table5_de2_distance.cpp" "bench_artifacts/CMakeFiles/table5_de2_distance.dir/table5_de2_distance.cpp.o" "gcc" "bench_artifacts/CMakeFiles/table5_de2_distance.dir/table5_de2_distance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ctc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/ctc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/ctc_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/zigbee/CMakeFiles/ctc_zigbee.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/ctc_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/ctc_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ctc_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
