file(REMOVE_RECURSE
  "../bench/table5_de2_distance"
  "../bench/table5_de2_distance.pdb"
  "CMakeFiles/table5_de2_distance.dir/table5_de2_distance.cpp.o"
  "CMakeFiles/table5_de2_distance.dir/table5_de2_distance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_de2_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
