# Empty dependencies file for table4_de2.
# This may be replaced when dependencies are built.
