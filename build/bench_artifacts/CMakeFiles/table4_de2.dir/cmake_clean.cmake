file(REMOVE_RECURSE
  "../bench/table4_de2"
  "../bench/table4_de2.pdb"
  "CMakeFiles/table4_de2.dir/table4_de2.cpp.o"
  "CMakeFiles/table4_de2.dir/table4_de2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_de2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
