# Empty compiler generated dependencies file for fig8_fig9_possible_strategies.
# This may be replaced when dependencies are built.
