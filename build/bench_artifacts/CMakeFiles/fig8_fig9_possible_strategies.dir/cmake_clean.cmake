file(REMOVE_RECURSE
  "../bench/fig8_fig9_possible_strategies"
  "../bench/fig8_fig9_possible_strategies.pdb"
  "CMakeFiles/fig8_fig9_possible_strategies.dir/fig8_fig9_possible_strategies.cpp.o"
  "CMakeFiles/fig8_fig9_possible_strategies.dir/fig8_fig9_possible_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_fig9_possible_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
