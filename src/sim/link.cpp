#include "sim/link.h"

#include "attack/carrier_allocation.h"
#include "dsp/stats.h"
#include "wifi/ofdm.h"
#include "zigbee/dsss.h"

namespace ctc::sim {

Link::Link(LinkConfig config)
    : config_(std::move(config)),
      transmitter_(),
      receiver_([this] {
        zigbee::ReceiverConfig rx;
        rx.profile = config_.profile;
        return rx;
      }()),
      emulator_(config_.emulator) {}

cvec Link::clean_waveform(const zigbee::MacFrame& frame) const {
  cvec waveform = transmitter_.transmit_frame(frame);
  if (config_.kind == LinkKind::emulated) {
    const attack::EmulationResult emulation = emulator_.emulate(waveform);
    if (config_.attack_via_rf) {
      cvec wifi_baseband;
      wifi_baseband.reserve(emulation.symbol_grids.size() * wifi::kSymbolLength);
      for (const cvec& grid : emulation.symbol_grids) {
        const cvec symbol = wifi::grid_to_time(
            attack::allocate_to_wifi_grid(grid, config_.carrier_plan));
        wifi_baseband.insert(wifi_baseband.end(), symbol.begin(), symbol.end());
      }
      cvec at_victim = attack::wifi_band_to_zigbee_baseband(wifi_baseband,
                                                            config_.carrier_plan);
      at_victim.resize(waveform.size(), cplx{0.0, 0.0});
      waveform = std::move(at_victim);
    } else {
      waveform = emulation.emulated_4mhz;
    }
    waveform = dsp::normalize_power(waveform);
  }
  return waveform;
}

FrameObservation Link::send(const zigbee::MacFrame& frame, dsp::Rng& rng) const {
  FrameObservation observation;
  const cvec clean = clean_waveform(frame);

  // The commodity receiver's better front end shows up as extra link budget.
  channel::Environment env = config_.environment;
  env.snr_db = env.effective_snr_db() + config_.profile.sensitivity_gain_db;
  env.distance_m.reset();
  const cvec received = env.propagate(clean, rng);

  observation.rx = receiver_.receive(received);

  const bytevec sent_psdu = frame.serialize();
  const auto sent_symbols = zigbee::bytes_to_symbols(sent_psdu);
  observation.symbols_sent = sent_symbols.size();
  const auto decoded_symbols = zigbee::bytes_to_symbols(observation.rx.psdu);
  if (decoded_symbols.size() == sent_symbols.size()) {
    for (std::size_t i = 0; i < sent_symbols.size(); ++i) {
      if (decoded_symbols[i] != sent_symbols[i]) ++observation.symbol_errors;
    }
    observation.payload_match = observation.symbol_errors == 0;
  } else {
    observation.symbol_errors = sent_symbols.size();
    observation.payload_match = false;
  }
  observation.success = observation.rx.frame_ok() && observation.payload_match;
  return observation;
}

}  // namespace ctc::sim
