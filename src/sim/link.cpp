#include "sim/link.h"

#include <optional>
#include <utility>

#include "attack/carrier_allocation.h"
#include "dsp/stats.h"
#include "sim/telemetry.h"
#include "wifi/ofdm.h"
#include "zigbee/dsss.h"

namespace ctc::sim {

Link::Link(LinkConfig config)
    : config_(std::move(config)),
      transmitter_(),
      receiver_([this] {
        zigbee::ReceiverConfig rx;
        rx.profile = config_.profile;
        return rx;
      }()),
      emulator_(config_.emulator) {}

cvec Link::synthesize_waveform(const zigbee::MacFrame& frame) const {
  cvec waveform = transmitter_.transmit_frame(frame);
  if (config_.kind == LinkKind::emulated) {
    const attack::EmulationResult emulation = emulator_.emulate(waveform);
    if (config_.attack_via_rf) {
      cvec wifi_baseband;
      wifi_baseband.reserve(emulation.symbol_grids.size() * wifi::kSymbolLength);
      for (const cvec& grid : emulation.symbol_grids) {
        const cvec symbol = wifi::grid_to_time(
            attack::allocate_to_wifi_grid(grid, config_.carrier_plan));
        wifi_baseband.insert(wifi_baseband.end(), symbol.begin(), symbol.end());
      }
      cvec at_victim = attack::wifi_band_to_zigbee_baseband(wifi_baseband,
                                                            config_.carrier_plan);
      at_victim.resize(waveform.size(), cplx{0.0, 0.0});
      waveform = std::move(at_victim);
    } else {
      waveform = emulation.emulated_4mhz;
    }
    waveform = dsp::normalize_power(waveform);
  }
  return waveform;
}

const Link::CachedFrame& Link::cached_frame(const zigbee::MacFrame& frame) const {
  bytevec psdu = frame.serialize();
  std::string key(reinterpret_cast<const char*>(psdu.data()), psdu.size());
  WaveformCache& cache = *cache_;
  CachedFrame* entry = nullptr;
  {
    std::shared_lock lock(cache.mutex);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) entry = it->second.get();
  }
  if (entry == nullptr) {
    std::unique_lock lock(cache.mutex);
    entry = cache.entries
                .try_emplace(std::move(key), std::make_unique<CachedFrame>())
                .first->second.get();
  }
  bool filled = false;
  std::call_once(entry->once, [&] {
    // When the fill happens inside an engine trial, which trial wins the
    // race is scheduling-dependent; drop the synthesis telemetry so the
    // merged gauges stay bit-stable across thread counts. Links primed
    // before the trial loop never take this branch.
    std::optional<telemetry::SuppressScope> suppress;
    if (telemetry::in_trial_scope()) suppress.emplace();
    entry->clean = synthesize_waveform(frame);
    entry->psdu = std::move(psdu);
    filled = true;
  });
  if (filled) {
    CTC_TELEM_COUNT("link", "waveform_cache_misses", 1);
  } else {
    CTC_TELEM_COUNT("link", "waveform_cache_hits", 1);
  }
  return *entry;
}

cvec Link::clean_waveform(const zigbee::MacFrame& frame) const {
  if (!config_.memoize_waveforms) return synthesize_waveform(frame);
  return cached_frame(frame).clean;
}

void Link::prime(std::span<const zigbee::MacFrame> frames) const {
  if (!config_.memoize_waveforms) return;
  for (const zigbee::MacFrame& frame : frames) cached_frame(frame);
}

channel::Environment Link::effective_environment() const {
  // The commodity receiver's better front end shows up as extra link budget.
  channel::Environment env = config_.environment;
  env.snr_db = env.effective_snr_db() + config_.profile.sensitivity_gain_db;
  env.distance_m.reset();
  return env;
}

FrameObservation Link::observe(std::span<const cplx> received,
                               const bytevec& sent_psdu) const {
  FrameObservation observation;
  observation.rx = receiver_.receive(received);

  // PSDU symbols are nibbles, low nibble first — compare the decoded bytes
  // in place instead of materializing two symbol vectors per trial.
  observation.symbols_sent = 2 * sent_psdu.size();
  if (observation.rx.psdu.size() == sent_psdu.size()) {
    for (std::size_t i = 0; i < sent_psdu.size(); ++i) {
      const std::uint8_t sent = sent_psdu[i];
      const std::uint8_t decoded = observation.rx.psdu[i];
      if ((sent & 0x0F) != (decoded & 0x0F)) ++observation.symbol_errors;
      if ((sent >> 4) != (decoded >> 4)) ++observation.symbol_errors;
    }
    observation.payload_match = observation.symbol_errors == 0;
  } else {
    observation.symbol_errors = observation.symbols_sent;
    observation.payload_match = false;
  }
  observation.success = observation.rx.frame_ok() && observation.payload_match;
  return observation;
}

FrameObservation Link::send(const zigbee::MacFrame& frame, dsp::Rng& rng) const {
  cvec local_clean;
  bytevec local_psdu;
  const cvec* clean = &local_clean;
  const bytevec* sent_psdu = &local_psdu;
  if (config_.memoize_waveforms) {
    const CachedFrame& cached = cached_frame(frame);
    clean = &cached.clean;
    sent_psdu = &cached.psdu;
  } else {
    local_clean = synthesize_waveform(frame);
    local_psdu = frame.serialize();
  }

  // Thread-local workspace: send() runs once per Monte Carlo trial and the
  // propagated copy dominated the per-trial allocations.
  thread_local cvec received;
  effective_environment().propagate_into(received, *clean, rng);
  return observe(received, *sent_psdu);
}

std::vector<FrameObservation> Link::send_batch(const zigbee::MacFrame& frame,
                                               std::span<dsp::Rng> rngs) const {
  std::vector<FrameObservation> observations;
  observations.reserve(rngs.size());
  if (rngs.empty()) return observations;

  cvec local_clean;
  bytevec local_psdu;
  const cvec* clean = &local_clean;
  const bytevec* sent_psdu = &local_psdu;
  if (config_.memoize_waveforms) {
    const CachedFrame& cached = cached_frame(frame);
    clean = &cached.clean;
    sent_psdu = &cached.psdu;
  } else {
    local_clean = synthesize_waveform(frame);
    local_psdu = frame.serialize();
  }

  thread_local dsp::BatchBuffer batch;
  effective_environment().propagate_batch(batch, *clean, rngs);
  for (std::size_t r = 0; r < rngs.size(); ++r) {
    observations.push_back(observe(batch.row(r), *sent_psdu));
  }
  return observations;
}

}  // namespace ctc::sim
