// End-to-end link simulation: authentic ZigBee link and the attack link
// (ZigBee TX -> WiFi attacker emulation -> ZigBee RX), both through a
// configurable channel environment (Sec. VII-B simulation settings).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "attack/carrier_allocation.h"
#include "attack/emulator.h"
#include "channel/environment.h"
#include "dsp/batch.h"
#include "dsp/rng.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace ctc::sim {

enum class LinkKind {
  authentic,  ///< ZigBee transmitter -> ZigBee receiver
  emulated,   ///< WiFi attacker replays the emulated waveform
};

struct LinkConfig {
  LinkKind kind = LinkKind::authentic;
  channel::Environment environment = channel::Environment::awgn(17.0);
  zigbee::ReceiverProfile profile = zigbee::ReceiverProfile::usrp();
  attack::EmulatorConfig emulator;  ///< used when kind == emulated
  /// When true the emulated waveform takes the full RF path: carrier
  /// allocation onto the 2440 MHz WiFi grid, 20 MHz modulation, then the
  /// victim's 2435 MHz front end (mix + filter + decimate). When false the
  /// paper's simulation shortcut (common baseband) is used.
  bool attack_via_rf = false;
  attack::CarrierPlan carrier_plan;  ///< used when attack_via_rf
  /// Memoize the clean (pre-channel) waveform and serialized PSDU per frame.
  /// The synthesis chain (TX -> emulation -> normalization) is a pure
  /// function of the frame bytes, so Monte Carlo sweeps that send the same
  /// frame thousands of times pay for it once. The cached send() path is
  /// bit-identical to the uncached one; the flag exists so the equivalence
  /// tests can pin the reference path.
  bool memoize_waveforms = true;
};

struct FrameObservation {
  zigbee::ReceiveResult rx;
  std::size_t symbols_sent = 0;
  std::size_t symbol_errors = 0;  ///< decoded PSDU symbols != transmitted
  bool payload_match = false;     ///< decoded PSDU == transmitted PSDU
  bool success = false;           ///< frame_ok() && payload_match
};

class Link {
 public:
  explicit Link(LinkConfig config);

  /// Sends one MAC frame through the link and decodes it.
  FrameObservation send(const zigbee::MacFrame& frame, dsp::Rng& rng) const;

  /// Batched send: rngs.size() independent channel realizations of the SAME
  /// frame, propagated through the channel stage-major in one SoA workspace
  /// (see channel::Environment::propagate_batch) and then decoded row by
  /// row. Result k is bit-identical to send(frame, rngs[k]) — the batch
  /// path only amortizes the synthesis lookup and the channel sweep; every
  /// per-trial draw comes from that trial's own RNG stream.
  std::vector<FrameObservation> send_batch(const zigbee::MacFrame& frame,
                                           std::span<dsp::Rng> rngs) const;

  /// The clean (pre-channel) waveform this link would emit for a frame —
  /// the observed ZigBee waveform for authentic links, the emulated one for
  /// attack links. Unit average power.
  cvec clean_waveform(const zigbee::MacFrame& frame) const;

  /// Fills the waveform cache for `frames` up front. The trial engine calls
  /// this before fanning trials out so cache fills (and their synthesis
  /// telemetry) happen serially in frame order rather than inside whichever
  /// trial happens to run first — that keeps the telemetry JSON bit-stable
  /// across thread counts. No-op when memoization is off.
  void prime(std::span<const zigbee::MacFrame> frames) const;

  const LinkConfig& config() const { return config_; }

 private:
  /// One memoized frame: the synthesis output plus the serialized PSDU the
  /// success check compares against. call_once keeps the fill race-free
  /// while holding only a shared lock on the map.
  struct CachedFrame {
    std::once_flag once;
    cvec clean;
    bytevec psdu;
  };

  /// Heap-allocated so Link stays movable (bench sweeps keep Links in
  /// vectors); the mutex and entries move with the pointer.
  struct WaveformCache {
    std::shared_mutex mutex;
    std::unordered_map<std::string, std::unique_ptr<CachedFrame>> entries;
  };

  const CachedFrame& cached_frame(const zigbee::MacFrame& frame) const;
  /// The raw synthesis chain (no cache): body of the public clean_waveform.
  cvec synthesize_waveform(const zigbee::MacFrame& frame) const;
  /// Decodes one propagated waveform and scores it against the sent PSDU —
  /// the shared back half of send() and send_batch().
  FrameObservation observe(std::span<const cplx> received,
                           const bytevec& sent_psdu) const;
  /// The per-send channel: the configured environment with the profile's
  /// sensitivity gain folded into a plain SNR.
  channel::Environment effective_environment() const;

  LinkConfig config_;
  zigbee::Transmitter transmitter_;
  zigbee::Receiver receiver_;
  attack::WaveformEmulator emulator_;
  std::unique_ptr<WaveformCache> cache_ = std::make_unique<WaveformCache>();
};

}  // namespace ctc::sim
