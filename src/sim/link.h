// End-to-end link simulation: authentic ZigBee link and the attack link
// (ZigBee TX -> WiFi attacker emulation -> ZigBee RX), both through a
// configurable channel environment (Sec. VII-B simulation settings).
#pragma once

#include <optional>

#include "attack/carrier_allocation.h"
#include "attack/emulator.h"
#include "channel/environment.h"
#include "dsp/rng.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace ctc::sim {

enum class LinkKind {
  authentic,  ///< ZigBee transmitter -> ZigBee receiver
  emulated,   ///< WiFi attacker replays the emulated waveform
};

struct LinkConfig {
  LinkKind kind = LinkKind::authentic;
  channel::Environment environment = channel::Environment::awgn(17.0);
  zigbee::ReceiverProfile profile = zigbee::ReceiverProfile::usrp();
  attack::EmulatorConfig emulator;  ///< used when kind == emulated
  /// When true the emulated waveform takes the full RF path: carrier
  /// allocation onto the 2440 MHz WiFi grid, 20 MHz modulation, then the
  /// victim's 2435 MHz front end (mix + filter + decimate). When false the
  /// paper's simulation shortcut (common baseband) is used.
  bool attack_via_rf = false;
  attack::CarrierPlan carrier_plan;  ///< used when attack_via_rf
};

struct FrameObservation {
  zigbee::ReceiveResult rx;
  std::size_t symbols_sent = 0;
  std::size_t symbol_errors = 0;  ///< decoded PSDU symbols != transmitted
  bool payload_match = false;     ///< decoded PSDU == transmitted PSDU
  bool success = false;           ///< frame_ok() && payload_match
};

class Link {
 public:
  explicit Link(LinkConfig config);

  /// Sends one MAC frame through the link and decodes it.
  FrameObservation send(const zigbee::MacFrame& frame, dsp::Rng& rng) const;

  /// The clean (pre-channel) waveform this link would emit for a frame —
  /// the observed ZigBee waveform for authentic links, the emulated one for
  /// attack links. Unit average power.
  cvec clean_waveform(const zigbee::MacFrame& frame) const;

  const LinkConfig& config() const { return config_; }

 private:
  LinkConfig config_;
  zigbee::Transmitter transmitter_;
  zigbee::Receiver receiver_;
  attack::WaveformEmulator emulator_;
};

}  // namespace ctc::sim
