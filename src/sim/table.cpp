#include "sim/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "dsp/require.h"

namespace ctc::sim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CTC_REQUIRE(!header_.empty());
}

Table& Table::add_row(std::vector<std::string> row) {
  CTC_REQUIRE(row.size() == header_.size());
  rows_.push_back(std::move(row));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print() const {
  std::ostringstream rendered;
  print(rendered);
  std::fputs(rendered.str().c_str(), stdout);
}

std::string Table::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string Table::percent(double fraction, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f%%", precision, 100.0 * fraction);
  return buffer;
}

}  // namespace ctc::sim
