// Runs the constellation defense over simulated links and collects
// per-frame features — the workhorse behind Table IV, Fig. 12 and Table V.
#pragma once

#include <span>

#include "defense/detector.h"
#include "sim/link.h"

namespace ctc::sim {

struct DefenseSamples {
  rvec distances;  ///< DE^2 per usable frame
  rvec c40;        ///< Chat40 (per detector mode) per usable frame
  rvec c42;        ///< Chat42 per usable frame
  std::size_t frames_used = 0;
  std::size_t frames_skipped = 0;  ///< frames whose PHR never decoded

  double mean_distance() const;
  double max_distance() const;
  double min_distance() const;
};

/// Which receiver tap feeds the detector.
enum class DefenseTap {
  /// FM-discriminator frequency chips — the paper's GNU Radio receiver tap
  /// (Sec. VI-A2); insensitive to gain/phase/CFO.
  discriminator,
  /// Coherent matched-filter soft chips; rotates under residual phase
  /// offset, which is the Fig. 6b effect the |C40| mode compensates.
  coherent,
};

/// Sends `count` frames (cycled from `frames`) through `link`, runs the
/// detector on each frame's chip samples, and collects the features. Frames
/// that did not yield chip samples (no PHR) are counted as skipped, mirroring
/// the paper's setup where the defense runs on frames the receiver locked on.
DefenseSamples collect_defense_samples(const Link& link,
                                       std::span<const zigbee::MacFrame> frames,
                                       std::size_t count,
                                       const defense::Detector& detector,
                                       dsp::Rng& rng,
                                       DefenseTap tap = DefenseTap::discriminator);

}  // namespace ctc::sim
