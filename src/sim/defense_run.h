// Runs the constellation defense over simulated links and collects
// per-frame features — the workhorse behind Table IV, Fig. 12 and Table V.
#pragma once

#include <span>

#include "defense/detector.h"
#include "sim/engine.h"
#include "sim/link.h"

namespace ctc::sim {

/// One frame's defense features: what a single engine trial yields.
struct DefenseObservation {
  bool usable = false;      ///< the receiver produced enough chip samples
  double distance_sq = 0.0; ///< DE^2 of the cumulant feature vector
  double c40 = 0.0;         ///< Chat40 (per detector mode)
  double c42 = 0.0;         ///< Chat42
};

/// Feature samples over a batch of frames. Also a TrialEngine aggregator:
/// add() folds one DefenseObservation in the engine's fixed trial order.
struct DefenseSamples {
  rvec distances;  ///< DE^2 per usable frame
  rvec c40;        ///< Chat40 (per detector mode) per usable frame
  rvec c42;        ///< Chat42 per usable frame
  std::size_t frames_used = 0;
  std::size_t frames_skipped = 0;  ///< frames whose PHR never decoded

  void add(const DefenseObservation& observation);

  double mean_distance() const;
  double max_distance() const;
  double min_distance() const;
};

/// Which receiver tap feeds the detector.
enum class DefenseTap {
  /// FM-discriminator frequency chips — the paper's GNU Radio receiver tap
  /// (Sec. VI-A2); insensitive to gain/phase/CFO.
  discriminator,
  /// Coherent matched-filter soft chips; rotates under residual phase
  /// offset, which is the Fig. 6b effect the |C40| mode compensates.
  coherent,
};

/// Extracts the defense features of one received frame (the body of a
/// single trial). Frames without chip samples come back with
/// `usable == false`, mirroring the paper's setup where the defense runs
/// only on frames the receiver locked on.
DefenseObservation observe_defense_frame(const Link& link,
                                         const zigbee::MacFrame& frame,
                                         const defense::Detector& detector,
                                         dsp::Rng& rng,
                                         DefenseTap tap = DefenseTap::discriminator);

/// Sends `count` frames (cycled from `frames`) through `link`, one engine
/// trial per frame in parallel, runs the detector on each frame's chip
/// samples and collects the features.
DefenseSamples collect_defense_samples(const Link& link,
                                       std::span<const zigbee::MacFrame> frames,
                                       std::size_t count,
                                       const defense::Detector& detector,
                                       TrialEngine& engine,
                                       DefenseTap tap = DefenseTap::discriminator);

/// Batched variant: engine trials run in SoA batches of `batch_size`
/// through Link::send_batch (consecutive trials that hit the same frame
/// share one stage-major channel sweep). Bit-identical to the TrialEngine
/// overload of collect_defense_samples at any thread count and batch size —
/// every trial keeps its own RNG stream and results fold in trial order.
DefenseSamples collect_defense_samples_batched(
    const Link& link, std::span<const zigbee::MacFrame> frames,
    std::size_t count, const defense::Detector& detector, TrialEngine& engine,
    std::size_t batch_size, DefenseTap tap = DefenseTap::discriminator);

/// Serial compatibility path: threads one caller-owned generator through
/// the trials in order. Prefer the TrialEngine overload.
DefenseSamples collect_defense_samples(const Link& link,
                                       std::span<const zigbee::MacFrame> frames,
                                       std::size_t count,
                                       const defense::Detector& detector,
                                       dsp::Rng& rng,
                                       DefenseTap tap = DefenseTap::discriminator);

}  // namespace ctc::sim
