// Cross-technology interference: background WiFi traffic bleeding into the
// ZigBee channel.
//
// The paper assumes "no other devices occupy the overlapped spectrum"
// during the attack (Sec. IV-A). This module drops that assumption so the
// coexistence ablation can measure how ordinary (non-attack) WiFi traffic
// degrades the link and whether it confuses the defense: a WiFi OFDM burst
// is generated at the 2440 MHz center, and the 2 MHz slice that lands in
// the victim's channel is added at a chosen signal-to-interference ratio.
#pragma once

#include <span>

#include "attack/carrier_allocation.h"
#include "dsp/rng.h"
#include "dsp/types.h"

namespace ctc::sim {

struct WifiInterferenceConfig {
  attack::CarrierPlan plan;  ///< frequency layout (ZigBee ch 17 / WiFi 2440)
  double sir_db = 10.0;      ///< signal-to-interference ratio in-channel
  /// Fraction of time the interferer transmits (bursts of `burst_samples`).
  double duty_cycle = 0.5;
  std::size_t burst_samples = 400;  ///< at 4 MHz (100 us bursts)
};

/// Adds the in-channel footprint of random WiFi traffic to a unit-power
/// ZigBee baseband signal (4 MHz).
cvec add_wifi_interference(std::span<const cplx> signal,
                           const WifiInterferenceConfig& config, dsp::Rng& rng);

}  // namespace ctc::sim
