#include "sim/telemetry.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <mutex>

namespace ctc::sim::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::counter: return "counter";
    case Kind::gauge: return "gauge";
    case Kind::histo: return "histo";
    case Kind::timer: return "timer";
  }
  return "unknown";
}

std::size_t bucket_index(std::uint64_t value) {
  return std::min<std::size_t>(std::bit_width(value), kHistoBuckets - 1);
}

std::uint64_t bucket_lower_bound(std::size_t bucket) {
  return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

void Cell::merge(const Cell& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (std::size_t b = 0; b < kHistoBuckets; ++b) buckets[b] += other.buckets[b];
}

namespace {

// ---- registry ------------------------------------------------------------
// Names live for the whole process; ids are dense indices into g_metrics.
// Lookup is linear over a small table (a few dozen metrics) but happens only
// once per instrumentation site thanks to the function-local static caching
// in the macros.
struct MetricInfo {
  Kind kind;
  std::string stage;
  std::string name;
};

std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<MetricInfo>& metric_infos() {
  static std::vector<MetricInfo> infos;
  return infos;
}

// ---- thread-local frames -------------------------------------------------
struct Frame {
  std::vector<Cell> cells;            // indexed by MetricId
  std::vector<MetricId> touched;      // ids with count > 0, insertion order

  Cell& cell(MetricId id) {
    if (id >= cells.size()) cells.resize(id + 1);
    Cell& c = cells[id];
    if (c.count == 0) touched.push_back(id);
    return c;
  }

  bool empty() const { return touched.empty(); }

  void clear() {
    for (MetricId id : touched) cells[id] = Cell{};
    touched.clear();
  }
};

thread_local Frame tls_frame;
thread_local std::vector<Frame> tls_saved_frames;  // TrialScope nesting stack
thread_local int tls_suppress_depth = 0;           // SuppressScope nesting

// ---- global accumulator --------------------------------------------------
// commit() and collect() both fold into here; the engine's reduction loop
// commits serially in trial-index order, which is what makes the double
// sums deterministic.
std::mutex& accumulator_mutex() {
  static std::mutex mutex;
  return mutex;
}

Frame& accumulator() {
  static Frame frame;
  return frame;
}

void merge_frame_into_accumulator_locked(const Frame& frame) {
  for (MetricId id : frame.touched) {
    accumulator().cell(id).merge(frame.cells[id]);
  }
}

std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

MetricId register_metric(Kind kind, const char* stage, const char* name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto& infos = metric_infos();
  for (std::size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].stage == stage && infos[i].name == name) {
      return static_cast<MetricId>(i);
    }
  }
  infos.push_back({kind, stage, name});
  return static_cast<MetricId>(infos.size() - 1);
}

void add_count(MetricId id, std::uint64_t delta) {
  if (tls_suppress_depth != 0) return;
  Cell& cell = tls_frame.cell(id);
  const auto value = static_cast<double>(delta);
  if (cell.count == 0) {
    cell.min = value;
    cell.max = value;
  } else {
    cell.min = std::min(cell.min, value);
    cell.max = std::max(cell.max, value);
  }
  ++cell.count;
  cell.sum += value;
}

void observe(MetricId id, double value) {
  if (tls_suppress_depth != 0) return;
  Cell& cell = tls_frame.cell(id);
  if (cell.count == 0) {
    cell.min = value;
    cell.max = value;
  } else {
    cell.min = std::min(cell.min, value);
    cell.max = std::max(cell.max, value);
  }
  ++cell.count;
  cell.sum += value;
}

void record_histo(MetricId id, std::uint64_t value) {
  if (tls_suppress_depth != 0) return;
  Cell& cell = tls_frame.cell(id);
  const auto as_double = static_cast<double>(value);
  if (cell.count == 0) {
    cell.min = as_double;
    cell.max = as_double;
  } else {
    cell.min = std::min(cell.min, as_double);
    cell.max = std::max(cell.max, as_double);
  }
  ++cell.count;
  cell.sum += as_double;
  ++cell.buckets[bucket_index(value)];
}

void record_timer(MetricId id, std::uint64_t nanoseconds) {
  record_histo(id, nanoseconds);
}

TrialScope::TrialScope() {
  if (!enabled()) return;
  active_ = true;
  tls_saved_frames.push_back(std::move(tls_frame));
  tls_frame = Frame{};
}

TrialSnapshot TrialScope::capture() {
  TrialSnapshot snapshot;
  if (!active_) return snapshot;
  snapshot.cells.reserve(tls_frame.touched.size());
  for (MetricId id : tls_frame.touched) {
    snapshot.cells.emplace_back(id, tls_frame.cells[id]);
  }
  tls_frame.clear();
  return snapshot;
}

TrialScope::~TrialScope() {
  if (!active_) return;
  // Anything not captured is folded into the outer frame rather than lost
  // (e.g. a trial that threw past its capture point).
  Frame trial_frame = std::move(tls_frame);
  tls_frame = std::move(tls_saved_frames.back());
  tls_saved_frames.pop_back();
  for (MetricId id : trial_frame.touched) {
    tls_frame.cell(id).merge(trial_frame.cells[id]);
  }
}

bool in_trial_scope() { return !tls_saved_frames.empty(); }

SuppressScope::SuppressScope() {
  if (!enabled()) return;
  active_ = true;
  ++tls_suppress_depth;
}

SuppressScope::~SuppressScope() {
  if (active_) --tls_suppress_depth;
}

void commit(TrialSnapshot&& snapshot) {
  if (snapshot.empty()) return;
  std::lock_guard<std::mutex> lock(accumulator_mutex());
  for (auto& [id, cell] : snapshot.cells) {
    accumulator().cell(id).merge(cell);
  }
  snapshot.cells.clear();
}

std::vector<MetricValue> collect() {
  std::lock_guard<std::mutex> lock(accumulator_mutex());
  merge_frame_into_accumulator_locked(tls_frame);
  tls_frame.clear();

  std::vector<MetricValue> values;
  {
    std::lock_guard<std::mutex> registry_lock(registry_mutex());
    const auto& infos = metric_infos();
    for (MetricId id : accumulator().touched) {
      if (accumulator().cells[id].empty()) continue;
      MetricValue value;
      value.stage = infos[id].stage;
      value.name = infos[id].name;
      value.kind = infos[id].kind;
      value.cell = accumulator().cells[id];
      values.push_back(std::move(value));
    }
  }
  std::sort(values.begin(), values.end(),
            [](const MetricValue& a, const MetricValue& b) {
              if (a.stage != b.stage) return a.stage < b.stage;
              return a.name < b.name;
            });
  return values;
}

void reset() {
  std::lock_guard<std::mutex> lock(accumulator_mutex());
  accumulator().clear();
  tls_frame.clear();
}

std::string to_json(const std::vector<MetricValue>& metrics,
                    bool include_timers, const std::string& extra_fields) {
  std::string out = "{\"telemetry_schema\":";
  out += std::to_string(kSchemaVersion);
  out += ",";
  out += extra_fields;
  out += "\"metrics\":[";
  bool first = true;
  for (const MetricValue& metric : metrics) {
    if (!include_timers && metric.kind == Kind::timer) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"stage\":\"" + metric.stage + "\",\"name\":\"" + metric.name +
           "\",\"kind\":\"" + kind_name(metric.kind) + "\"";
    out += ",\"count\":" + std::to_string(metric.cell.count);
    out += ",\"sum\":" + format_double(metric.cell.sum);
    if (metric.kind != Kind::counter) {
      out += ",\"min\":" + format_double(metric.cell.min);
      out += ",\"max\":" + format_double(metric.cell.max);
    }
    if (metric.kind == Kind::histo || metric.kind == Kind::timer) {
      out += ",\"buckets\":[";
      bool first_bucket = true;
      for (std::size_t b = 0; b < kHistoBuckets; ++b) {
        if (metric.cell.buckets[b] == 0) continue;
        if (!first_bucket) out += ",";
        first_bucket = false;
        out += "[" + std::to_string(bucket_lower_bound(b)) + "," +
               std::to_string(metric.cell.buckets[b]) + "]";
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace ctc::sim::telemetry
