// Minimal fixed-width table printer shared by the bench binaries so every
// reproduced table/figure prints in the same readable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ctc::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;
  /// Prints to stdout through C stdio — the bench binaries' output path is
  /// stdio-only so table rows never interleave badly with their printf logs.
  void print() const;

  /// Formats a double with `precision` decimals.
  static std::string num(double value, int precision = 4);
  /// Formats a percentage ("97.2%").
  static std::string percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ctc::sim
