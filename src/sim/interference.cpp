#include "sim/interference.h"

#include "dsp/stats.h"
#include "wifi/transmitter.h"

namespace ctc::sim {

cvec add_wifi_interference(std::span<const cplx> signal,
                           const WifiInterferenceConfig& config, dsp::Rng& rng) {
  // Generate one long-enough WiFi frame of random payload at 20 MHz and
  // bring its in-channel slice down to the ZigBee baseband.
  const std::size_t needed_20mhz = signal.size() * 5 + 400;
  wifi::WifiTxConfig tx_config;
  tx_config.mcs = wifi::Mcs::mbps54;
  const wifi::WifiTransmitter interferer(tx_config);
  bytevec psdu(std::min<std::size_t>(1000, needed_20mhz / 4 / 8 + 64));
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  cvec wifi_wave = interferer.transmit(psdu);
  while (wifi_wave.size() < needed_20mhz) {
    wifi_wave.insert(wifi_wave.end(), wifi_wave.begin(),
                     wifi_wave.begin() + static_cast<long>(
                         std::min(wifi_wave.size(), needed_20mhz - wifi_wave.size())));
  }
  wifi_wave.resize(needed_20mhz);
  cvec in_channel = attack::wifi_band_to_zigbee_baseband(wifi_wave, config.plan);
  in_channel.resize(signal.size(), cplx{0.0, 0.0});

  // Scale the in-channel footprint to the requested SIR vs the (unit-power)
  // signal, then gate it with random bursts.
  const double footprint_power = dsp::average_power(in_channel);
  double scale = 0.0;
  if (footprint_power > 0.0) {
    scale = std::sqrt(dsp::from_db(-config.sir_db) / footprint_power);
  }
  cvec out(signal.begin(), signal.end());
  std::size_t index = 0;
  while (index < out.size()) {
    const bool active = rng.uniform() < config.duty_cycle;
    const std::size_t end = std::min(out.size(), index + config.burst_samples);
    if (active) {
      for (std::size_t i = index; i < end; ++i) out[i] += scale * in_channel[i];
    }
    index = end;
  }
  return out;
}

}  // namespace ctc::sim
