// Always-on, low-overhead observability for the simulation pipeline.
//
// Every hot stage of a trial (ZigBee TX -> attack emulation -> channel ->
// DSSS RX -> cumulant defense) records per-stage counters, value gauges,
// log2-bucketed histograms and RAII timing spans through the CTC_TELEM_*
// macros below. The design goals, in order:
//
//   1. Zero cost when off. The runtime master switch (`set_enabled`) gates
//      every macro behind one relaxed atomic load; compiling with
//      -DCTC_TELEMETRY_DISABLED removes the instrumentation entirely.
//   2. Deterministic output. All recording lands in thread-local frames —
//      never a shared atomic — and `sim::TrialEngine` captures each trial's
//      frame as a snapshot (TrialScope) and commits the snapshots at
//      reduction time in trial-index order, the same fixed order the result
//      aggregates fold in. Floating-point accumulation order is therefore a
//      pure function of the seed and trial count, so the telemetry JSON is
//      bit-stable across thread counts. Wall-clock *values* (timer sums,
//      bucket placement) are inherently nondeterministic; emitters exclude
//      timer metrics from determinism-checked output (`include_timers`).
//   3. No registration ceremony. Metrics self-register by (stage, name) on
//      first use; ids are process-local and output is sorted by name, so
//      registration order never leaks into the JSON.
//
// The JSON schema and the merge rule are documented in docs/TELEMETRY.md.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ctc::sim::telemetry {

/// Bumped whenever the emitted JSON layout changes shape.
inline constexpr int kSchemaVersion = 1;

/// Log2 bucket count: bucket b holds values in [2^(b-1), 2^b - 1] (bucket 0
/// holds exactly 0), so 48 buckets cover u64 values up to ~2^47 — about 39
/// hours when the value is nanoseconds.
inline constexpr std::size_t kHistoBuckets = 48;

enum class Kind : std::uint8_t { counter, gauge, histo, timer };

const char* kind_name(Kind kind);

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Runtime master switch. Off by default; the bench CLI turns it on for
/// --telemetry runs. Reading it is one relaxed atomic load.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

using MetricId = std::uint32_t;

/// Accumulated state of one metric. The same layout serves all four kinds:
/// counters use {count, sum}, gauges add {min, max}, histograms and timers
/// add the log2 buckets.
struct Cell {
  std::uint64_t count = 0;  ///< increments / observations
  double sum = 0.0;         ///< counter total, gauge sum, timer ns sum
  double min = 0.0;         ///< meaningful only when count > 0
  double max = 0.0;
  std::array<std::uint64_t, kHistoBuckets> buckets{};

  bool empty() const { return count == 0; }
  /// Folds `other` into this cell. Double sums are order-sensitive; callers
  /// that need bit-stable output must merge in a fixed order (the engine
  /// merges per-trial snapshots in trial-index order).
  void merge(const Cell& other);
};

/// Bucket index of a u64 value: std::bit_width clamped to the table.
std::size_t bucket_index(std::uint64_t value);
/// Smallest value that lands in bucket `bucket` (0 for bucket 0).
std::uint64_t bucket_lower_bound(std::size_t bucket);

/// Registers (or looks up) the metric (stage, name). Idempotent and
/// thread-safe; the kind of the first registration wins. Cheap enough to
/// hide behind a function-local static at every instrumentation site.
MetricId register_metric(Kind kind, const char* stage, const char* name);

// -- Recording (thread-local, lock-free; call only when enabled()) ----------
void add_count(MetricId id, std::uint64_t delta);
void observe(MetricId id, double value);              // gauge
void record_histo(MetricId id, std::uint64_t value);  // log2-bucketed
void record_timer(MetricId id, std::uint64_t nanoseconds);

/// RAII timing span: records elapsed ns into a timer metric on destruction.
/// Instantiate via CTC_TELEM_TIMER so the whole object disappears under
/// CTC_TELEMETRY_DISABLED. Takes the metric id shifted by one so that 0 can
/// mean "inert" — the macro resolves the id only when telemetry is enabled,
/// keeping the disabled path to a single atomic load.
class ScopedTimer {
 public:
  explicit ScopedTimer(MetricId id_plus_one) {
    if (id_plus_one != 0) {
      id_ = id_plus_one - 1;
      active_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (active_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      record_timer(id_, static_cast<std::uint64_t>(
                            std::chrono::duration_cast<std::chrono::nanoseconds>(
                                elapsed)
                                .count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricId id_ = 0;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_{};
};

/// Everything one engine trial recorded: the unit of deterministic merging.
struct TrialSnapshot {
  std::vector<std::pair<MetricId, Cell>> cells;
  bool empty() const { return cells.empty(); }
};

/// Isolates the telemetry of one trial. The engine constructs a TrialScope
/// around the trial functor on the worker thread, `capture()`s the trial's
/// frame into a TrialSnapshot, and later `commit()`s the snapshots in
/// trial-index order on the reducing thread. Nesting is supported (the
/// outer frame is saved and restored) so engine runs may nest inside other
/// instrumented code. When telemetry is disabled the scope is inert.
class TrialScope {
 public:
  TrialScope();
  ~TrialScope();
  TrialScope(const TrialScope&) = delete;
  TrialScope& operator=(const TrialScope&) = delete;

  /// Takes the telemetry recorded since construction (at most once).
  TrialSnapshot capture();

 private:
  bool active_ = false;
};

/// Merges one trial's snapshot into the global accumulator. Deterministic
/// iff callers commit in a fixed order — the engine's reduction loop does.
void commit(TrialSnapshot&& snapshot);

/// True while the calling thread is inside an active TrialScope, i.e. the
/// code is running as an engine trial whose telemetry will be committed in
/// trial-index order.
bool in_trial_scope();

/// RAII guard that drops everything the calling thread records while it is
/// alive. Shared lazily-built caches (e.g. the link's waveform cache) wrap
/// their fill in one when the fill happens *inside* an engine trial: which
/// trial wins the fill race is scheduling-dependent, so attributing the
/// synthesis telemetry to it would make the merged double sums depend on
/// thread count. Fills outside trials (Link::prime, serial callers) record
/// normally. Nestable; inert while telemetry is disabled.
class SuppressScope {
 public:
  SuppressScope();
  ~SuppressScope();
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;

 private:
  bool active_ = false;
};

/// One metric with its accumulated cell, as returned by collect().
struct MetricValue {
  std::string stage;
  std::string name;
  Kind kind = Kind::counter;
  Cell cell;
};

/// Folds the calling thread's frame into the global accumulator and returns
/// every non-empty metric sorted by (stage, name) — the only order the
/// output ever uses, so lazily-assigned ids never leak into the JSON.
std::vector<MetricValue> collect();

/// Clears the global accumulator and the calling thread's frame (other
/// threads' frames are untouched; the engine's workers never hold telemetry
/// between trials, so after a run this resets everything that matters).
void reset();

/// Renders metrics as a JSON object:
///   {"telemetry_schema":1,<extra>"metrics":[{...},...]}
/// `extra_fields` is spliced in verbatim (e.g. "\"bench\":\"x\",").
/// With include_timers == false, timer metrics are dropped — that subset is
/// bit-stable across thread counts and safe for determinism diffs; wall-
/// clock timer values are not. Doubles print with %.17g (round-trip exact).
std::string to_json(const std::vector<MetricValue>& metrics,
                    bool include_timers,
                    const std::string& extra_fields = "");

}  // namespace ctc::sim::telemetry

// ---------------------------------------------------------------------------
// Instrumentation macros. Each site pays one relaxed atomic load when the
// layer is off; defining CTC_TELEMETRY_DISABLED compiles all of them away
// ((void)sizeof keeps arguments semantically checked but unevaluated).
// ---------------------------------------------------------------------------
#define CTC_TELEM_CAT2(a, b) a##b
#define CTC_TELEM_CAT(a, b) CTC_TELEM_CAT2(a, b)

#if defined(CTC_TELEMETRY_DISABLED)

#define CTC_TELEM_COUNT(stage, name, delta) \
  do {                                      \
    (void)sizeof(delta);                    \
  } while (0)
#define CTC_TELEM_GAUGE(stage, name, value) \
  do {                                      \
    (void)sizeof(value);                    \
  } while (0)
#define CTC_TELEM_HISTO(stage, name, value) \
  do {                                      \
    (void)sizeof(value);                    \
  } while (0)
#define CTC_TELEM_TIMER(stage, name) \
  do {                               \
  } while (0)

#else

#define CTC_TELEM_COUNT(stage, name, delta)                                  \
  do {                                                                       \
    if (::ctc::sim::telemetry::enabled()) {                                  \
      static const ::ctc::sim::telemetry::MetricId ctc_telem_id =            \
          ::ctc::sim::telemetry::register_metric(                            \
              ::ctc::sim::telemetry::Kind::counter, stage, name);            \
      ::ctc::sim::telemetry::add_count(                                      \
          ctc_telem_id, static_cast<std::uint64_t>(delta));                  \
    }                                                                        \
  } while (0)

#define CTC_TELEM_GAUGE(stage, name, value)                                  \
  do {                                                                       \
    if (::ctc::sim::telemetry::enabled()) {                                  \
      static const ::ctc::sim::telemetry::MetricId ctc_telem_id =            \
          ::ctc::sim::telemetry::register_metric(                            \
              ::ctc::sim::telemetry::Kind::gauge, stage, name);              \
      ::ctc::sim::telemetry::observe(ctc_telem_id,                           \
                                     static_cast<double>(value));            \
    }                                                                        \
  } while (0)

#define CTC_TELEM_HISTO(stage, name, value)                                  \
  do {                                                                       \
    if (::ctc::sim::telemetry::enabled()) {                                  \
      static const ::ctc::sim::telemetry::MetricId ctc_telem_id =            \
          ::ctc::sim::telemetry::register_metric(                            \
              ::ctc::sim::telemetry::Kind::histo, stage, name);              \
      ::ctc::sim::telemetry::record_histo(                                   \
          ctc_telem_id, static_cast<std::uint64_t>(value));                  \
    }                                                                        \
  } while (0)

// The ScopedTimer must be a block-scope object (it records at scope exit),
// so the lazy id registration lives in a helper lambda resolved only when
// the layer is enabled (0 = inert sentinel, see ScopedTimer).
#define CTC_TELEM_TIMER(stage, name)                                         \
  const ::ctc::sim::telemetry::ScopedTimer CTC_TELEM_CAT(                    \
      ctc_telem_timer_, __LINE__)(                                           \
      ::ctc::sim::telemetry::enabled()                                       \
          ? []() -> ::ctc::sim::telemetry::MetricId {                        \
              static const ::ctc::sim::telemetry::MetricId ctc_telem_id =    \
                  ::ctc::sim::telemetry::register_metric(                    \
                      ::ctc::sim::telemetry::Kind::timer, stage, name);      \
              return ctc_telem_id + 1;                                       \
            }()                                                              \
          : 0)

#endif  // CTC_TELEMETRY_DISABLED
