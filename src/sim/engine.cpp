#include "sim/engine.h"

namespace ctc::sim {

TrialEngine::TrialEngine(EngineConfig config)
    : config_(config),
      pool_(std::make_shared<ThreadPool>(config.threads)) {}

std::size_t TrialEngine::threads() const { return pool_->size(); }

std::uint64_t TrialEngine::next_run_base() { return run_counter_++ << 32; }

std::size_t TrialEngine::block_size(std::size_t count) const {
  // Large enough to keep every worker busy across uneven trial costs, small
  // enough to bound the number of in-flight FrameObservation results.
  const std::size_t block = std::max<std::size_t>(64, 8 * pool_->size());
  return std::max<std::size_t>(1, std::min(block, count));
}

}  // namespace ctc::sim
