#include "sim/metrics.h"

#include "dsp/require.h"

namespace ctc::sim {

void LinkStats::add(const FrameObservation& observation) {
  ++frames_sent;
  if (observation.success) ++frames_ok;
  symbols_sent += observation.symbols_sent;
  symbol_errors += observation.symbol_errors;
  for (std::size_t distance : observation.rx.hamming_distances) {
    ++hamming_histogram[distance];
  }
}

double LinkStats::packet_error_rate() const {
  CTC_REQUIRE(frames_sent > 0);
  return 1.0 - static_cast<double>(frames_ok) / static_cast<double>(frames_sent);
}

double LinkStats::symbol_error_rate() const {
  CTC_REQUIRE(symbols_sent > 0);
  return static_cast<double>(symbol_errors) / static_cast<double>(symbols_sent);
}

double LinkStats::success_rate() const { return 1.0 - packet_error_rate(); }

LinkStats run_frames(const Link& link, std::span<const zigbee::MacFrame> frames,
                     std::size_t count, dsp::Rng& rng) {
  CTC_REQUIRE(!frames.empty());
  LinkStats stats;
  for (std::size_t i = 0; i < count; ++i) {
    stats.add(link.send(frames[i % frames.size()], rng));
  }
  return stats;
}

}  // namespace ctc::sim
