#include "sim/metrics.h"

#include "dsp/require.h"

namespace ctc::sim {

void FrameStats::add(const FrameObservation& observation) {
  ++frames_sent;
  if (observation.success) ++frames_ok;
  symbols_sent += observation.symbols_sent;
  symbol_errors += observation.symbol_errors;
  for (std::size_t distance : observation.rx.hamming_distances) {
    ++hamming_histogram[distance];
  }
}

double FrameStats::packet_error_rate() const {
  CTC_REQUIRE(frames_sent > 0);
  return 1.0 - static_cast<double>(frames_ok) / static_cast<double>(frames_sent);
}

double FrameStats::symbol_error_rate() const {
  CTC_REQUIRE(symbols_sent > 0);
  return static_cast<double>(symbol_errors) / static_cast<double>(symbols_sent);
}

double FrameStats::success_rate() const { return 1.0 - packet_error_rate(); }

FrameStats run_frames(const Link& link, std::span<const zigbee::MacFrame> frames,
                      std::size_t count, TrialEngine& engine) {
  CTC_REQUIRE(!frames.empty());
  // Fill the link's waveform cache serially, in frame order, before trials
  // fan out across worker threads (see Link::prime).
  link.prime(frames);
  return engine.run<FrameStats>(count, [&](std::size_t i, dsp::Rng& rng) {
    return link.send(frames[i % frames.size()], rng);
  });
}

FrameStats run_frames(const Link& link, std::span<const zigbee::MacFrame> frames,
                      std::size_t count, dsp::Rng& rng) {
  CTC_REQUIRE(!frames.empty());
  FrameStats stats;
  for (std::size_t i = 0; i < count; ++i) {
    stats.add(link.send(frames[i % frames.size()], rng));
  }
  return stats;
}

}  // namespace ctc::sim
