// Aggregate link statistics: packet/symbol error rates and the chip-level
// Hamming-distance histogram of Fig. 7.
#pragma once

#include <cstddef>
#include <map>
#include <span>

#include "sim/engine.h"
#include "sim/link.h"

namespace ctc::sim {

/// Per-frame trial statistics. Also a TrialEngine aggregator: add() folds
/// one FrameObservation, and observations commute only through the engine's
/// fixed trial-index reduction order, which keeps aggregates bit-identical
/// across thread counts.
struct FrameStats {
  std::size_t frames_sent = 0;
  std::size_t frames_ok = 0;       ///< decoded end-to-end with matching payload
  std::size_t symbols_sent = 0;
  std::size_t symbol_errors = 0;
  /// histogram[d] = number of PSDU symbols whose best chip-sequence match
  /// had Hamming distance d.
  std::map<std::size_t, std::size_t> hamming_histogram;

  void add(const FrameObservation& observation);

  double packet_error_rate() const;
  double symbol_error_rate() const;
  double success_rate() const;  ///< 1 - PER (Table II's "successful rate")
};

/// Historical name, kept for callers that predate the trial engine.
using LinkStats = FrameStats;

/// Sends `count` copies drawn from `frames` (cycled) through the link, one
/// engine trial per frame, parallel across the engine's thread pool.
FrameStats run_frames(const Link& link,
                      std::span<const zigbee::MacFrame> frames,
                      std::size_t count, TrialEngine& engine);

/// Serial compatibility path: threads one caller-owned generator through
/// the trials in order. Deterministic for a fixed `rng` state but bound to
/// one core; prefer the TrialEngine overload.
FrameStats run_frames(const Link& link,
                      std::span<const zigbee::MacFrame> frames,
                      std::size_t count, dsp::Rng& rng);

}  // namespace ctc::sim
