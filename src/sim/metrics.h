// Aggregate link statistics: packet/symbol error rates and the chip-level
// Hamming-distance histogram of Fig. 7.
#pragma once

#include <cstddef>
#include <map>
#include <span>

#include "sim/link.h"

namespace ctc::sim {

struct LinkStats {
  std::size_t frames_sent = 0;
  std::size_t frames_ok = 0;       ///< decoded end-to-end with matching payload
  std::size_t symbols_sent = 0;
  std::size_t symbol_errors = 0;
  /// histogram[d] = number of PSDU symbols whose best chip-sequence match
  /// had Hamming distance d.
  std::map<std::size_t, std::size_t> hamming_histogram;

  void add(const FrameObservation& observation);

  double packet_error_rate() const;
  double symbol_error_rate() const;
  double success_rate() const;  ///< 1 - PER (Table II's "successful rate")
};

/// Sends `count` copies drawn from `frames` (cycled) through the link.
LinkStats run_frames(const Link& link,
                     std::span<const zigbee::MacFrame> frames,
                     std::size_t count, dsp::Rng& rng);

}  // namespace ctc::sim
