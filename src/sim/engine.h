// Parallel Monte Carlo trial engine with deterministic per-trial RNG streams.
//
// Every reproduction number in this repo (Table II success rates, Table IV/V
// DE^2, the Fig. 12 threshold sweep) is an aggregate over thousands of
// independent frame trials. The engine runs those trials across a thread
// pool while keeping the result bit-identical for a fixed seed at ANY thread
// count:
//
//   * trial i always draws from the RNG stream
//     dsp::Rng::for_stream(seed, run_index << 32 | i) — a pure function of
//     the seed and the trial's position, never of the executing thread or
//     the scheduling order;
//   * per-trial results are folded into the aggregate in trial-index order,
//     so floating-point reduction order is fixed too.
//
// `run_index` bumps on every run() so that back-to-back runs (e.g. the
// authentic and the emulated link of one table row) draw from disjoint
// stream families.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "dsp/require.h"
#include "dsp/rng.h"
#include "sim/telemetry.h"
#include "sim/thread_pool.h"

namespace ctc::sim {

struct EngineConfig {
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  ///< dsp::Rng's default seed
  /// Worker threads. 0 = auto: the CTC_THREADS environment variable if set,
  /// else hardware concurrency (see ThreadPool::resolve_threads).
  std::size_t threads = 0;
};

class TrialEngine {
  template <class TrialFn>
  using trial_result_t = std::decay_t<decltype(std::declval<TrialFn&>()(
      std::size_t{}, std::declval<dsp::Rng&>()))>;

 public:
  explicit TrialEngine(EngineConfig config = {});

  std::uint64_t seed() const { return config_.seed; }
  std::size_t threads() const;

  /// Runs `count` trials of `trial(index, rng)` and folds each result into
  /// a default-constructed Aggregator via `aggregator.add(result)`, in
  /// trial-index order. Aggregates are bit-identical for a fixed seed
  /// regardless of thread count. Trials execute in bounded blocks so the
  /// engine never holds more than ~one block of results alive.
  template <class Aggregator, class TrialFn>
  Aggregator run(std::size_t count, TrialFn&& trial) {
    Aggregator aggregator{};
    run_into(aggregator, count, std::forward<TrialFn>(trial));
    return aggregator;
  }

  /// As run(), folding into an existing aggregator (lets callers pool
  /// several workloads — e.g. every SNR point — into one statistic).
  template <class Aggregator, class TrialFn>
  void run_into(Aggregator& aggregator, std::size_t count, TrialFn&& trial) {
    using Result = trial_result_t<TrialFn>;
    CTC_REQUIRE(count <= kMaxTrialsPerRun);
    const std::uint64_t base = next_run_base();
    const std::size_t block = block_size(count);
    std::vector<std::optional<Result>> slots(block);
    // Telemetry piggybacks on the same order contract as the results: each
    // trial's metrics are captured into a per-slot snapshot on the worker
    // and committed below in trial-index order, so double-valued telemetry
    // sums are bit-identical at any thread count (see sim/telemetry.h).
    std::vector<telemetry::TrialSnapshot> telemetry_slots(
        telemetry::enabled() ? block : 0);
    for (std::size_t start = 0; start < count; start += block) {
      const std::size_t batch = std::min(block, count - start);
      pool_->parallel_for(batch, [&](std::size_t k) {
        const std::size_t index = start + k;
        dsp::Rng rng = dsp::Rng::for_stream(config_.seed, base | index);
        telemetry::TrialScope scope;
        {
          CTC_TELEM_TIMER("engine", "trial");
          CTC_TELEM_COUNT("engine", "trials", 1);
          slots[k].emplace(trial(index, rng));
        }
        if (k < telemetry_slots.size()) telemetry_slots[k] = scope.capture();
      });
      for (std::size_t k = 0; k < batch; ++k) {
        aggregator.add(std::move(*slots[k]));
        slots[k].reset();
        if (k < telemetry_slots.size()) {
          telemetry::commit(std::move(telemetry_slots[k]));
        }
      }
    }
  }

  /// Batched (SoA) variant of run(): `fn(first_index, rngs)` processes
  /// `rngs.size()` consecutive trials in one call and returns their results
  /// in trial order (a vector of exactly rngs.size() elements). Trial
  /// first_index + k draws from the SAME stream the serial run() would hand
  /// it — dsp::Rng::for_stream(seed, base | (first_index + k)) — and batch
  /// results are folded in trial-index order, so an aggregate is
  /// bit-identical to run() with the equivalent per-trial fn at ANY thread
  /// count and ANY batch size (the batch fn must consume rngs[k] only for
  /// trial k). Batches execute in bounded rounds across the thread pool;
  /// per-batch telemetry snapshots commit in batch order.
  template <class Aggregator, class BatchFn>
  Aggregator run_batched(std::size_t count, std::size_t batch_size,
                         BatchFn&& fn) {
    Aggregator aggregator{};
    run_batched_into(aggregator, count, batch_size, std::forward<BatchFn>(fn));
    return aggregator;
  }

  /// As run_batched(), folding into an existing aggregator.
  template <class Aggregator, class BatchFn>
  void run_batched_into(Aggregator& aggregator, std::size_t count,
                        std::size_t batch_size, BatchFn&& fn) {
    using Results = std::decay_t<decltype(std::declval<BatchFn&>()(
        std::size_t{}, std::declval<std::span<dsp::Rng>>()))>;
    CTC_REQUIRE(count <= kMaxTrialsPerRun);
    CTC_REQUIRE(batch_size >= 1);
    const std::uint64_t base = next_run_base();
    const std::size_t num_batches =
        count == 0 ? 0 : (count + batch_size - 1) / batch_size;
    const std::size_t round = block_size(num_batches);
    std::vector<Results> slots(round);
    std::vector<telemetry::TrialSnapshot> telemetry_slots(
        telemetry::enabled() ? round : 0);
    for (std::size_t bstart = 0; bstart < num_batches; bstart += round) {
      const std::size_t in_round = std::min(round, num_batches - bstart);
      pool_->parallel_for(in_round, [&](std::size_t k) {
        const std::size_t first = (bstart + k) * batch_size;
        const std::size_t batch = std::min(batch_size, count - first);
        thread_local std::vector<dsp::Rng> rngs;
        rngs.clear();
        rngs.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i) {
          rngs.push_back(dsp::Rng::for_stream(config_.seed, base | (first + i)));
        }
        telemetry::TrialScope scope;
        {
          CTC_TELEM_TIMER("engine", "batch");
          CTC_TELEM_COUNT("engine", "trials", batch);
          slots[k] = fn(first, std::span<dsp::Rng>(rngs));
          CTC_REQUIRE_MSG(slots[k].size() == batch,
                          "batch fn must return one result per trial");
        }
        if (k < telemetry_slots.size()) telemetry_slots[k] = scope.capture();
      });
      for (std::size_t k = 0; k < in_round; ++k) {
        for (auto& result : slots[k]) aggregator.add(std::move(result));
        slots[k] = Results{};
        if (k < telemetry_slots.size()) {
          telemetry::commit(std::move(telemetry_slots[k]));
        }
      }
    }
  }

  /// Runs `count` trials and returns the raw results in trial-index order.
  template <class TrialFn>
  std::vector<trial_result_t<TrialFn>> map(std::size_t count, TrialFn&& trial) {
    std::vector<trial_result_t<TrialFn>> results;
    results.reserve(count);
    Appender<trial_result_t<TrialFn>> sink{results};
    run_into(sink, count, std::forward<TrialFn>(trial));
    return results;
  }

  /// The RNG stream trial `trial_index` of the NEXT run()/map() call would
  /// receive. Also the right tool for ad-hoc randomness tied to the
  /// engine's seed outside a trial loop (each call advances the run
  /// counter, so successive streams are independent).
  dsp::Rng stream(std::uint64_t trial_index = 0) {
    CTC_REQUIRE(trial_index <= kMaxTrialsPerRun);
    return dsp::Rng::for_stream(config_.seed, next_run_base() | trial_index);
  }

  /// Sets the run family the NEXT run()/map()/stream() call draws from.
  /// This is how the campaign executor replays an arbitrary slice of a
  /// sequential bench: the planner assigns every work unit the run index
  /// the bench's k-th engine call would have used, each executor seeks to
  /// it before running the unit, and any shard/process/resume partition
  /// therefore consumes exactly the sequential run's RNG streams. The
  /// counter advances past the sought index as usual.
  void seek_run(std::uint64_t run_index) {
    CTC_REQUIRE(run_index <= kMaxRunIndex);
    run_counter_ = run_index;
  }

  /// The run index the next run()/map()/stream() call will consume.
  std::uint64_t next_run_index() const { return run_counter_; }

  /// Run indices pack into the high 32 bits of the stream id.
  static constexpr std::uint64_t kMaxRunIndex = (std::uint64_t{1} << 32) - 1;

  /// Trials per run() are capped so run index and trial index pack into one
  /// 64-bit stream id without overlap.
  static constexpr std::uint64_t kMaxTrialsPerRun = (std::uint64_t{1} << 32) - 1;

 private:
  template <class T>
  struct Appender {
    std::vector<T>& sink;
    void add(T&& value) { sink.push_back(std::move(value)); }
  };

  std::uint64_t next_run_base();
  std::size_t block_size(std::size_t count) const;

  EngineConfig config_;
  std::uint64_t run_counter_ = 0;
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace ctc::sim
