#include "sim/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace ctc::sim {

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable work_done;
  std::vector<std::thread> workers;

  // Current job. `generation` bumps once per parallel_for so workers can
  // tell a fresh job from the one they just finished.
  const std::function<void(std::size_t)>* job = nullptr;
  std::size_t job_count = 0;
  std::atomic<std::size_t> next_index{0};
  std::size_t workers_remaining = 0;
  std::uint64_t generation = 0;
  std::exception_ptr error;
  bool stop = false;

  // Claims indices until the job is exhausted. First exception wins and
  // fast-forwards the counter so every thread drains quickly.
  void drain() {
    for (;;) {
      const std::size_t i = next_index.fetch_add(1, std::memory_order_relaxed);
      if (i >= job_count) return;
      try {
        (*job)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        next_index.store(job_count, std::memory_order_relaxed);
        return;
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
      }
      drain();
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--workers_remaining == 0) work_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(std::make_unique<Impl>()), threads_(resolve_threads(threads)) {
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (impl_->workers.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = &fn;
    impl_->job_count = count;
    impl_->next_index.store(0, std::memory_order_relaxed);
    impl_->workers_remaining = impl_->workers.size();
    impl_->error = nullptr;
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();
  impl_->drain();  // the calling thread is a full participant
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->work_done.wait(lock, [&] { return impl_->workers_remaining == 0; });
    impl_->job = nullptr;
    error = impl_->error;
  }
  if (error) std::rethrow_exception(error);
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("CTC_THREADS")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

}  // namespace ctc::sim
