#include "sim/defense_run.h"

#include <algorithm>

#include "dsp/require.h"

namespace ctc::sim {

double DefenseSamples::mean_distance() const {
  CTC_REQUIRE(!distances.empty());
  double acc = 0.0;
  for (double d : distances) acc += d;
  return acc / static_cast<double>(distances.size());
}

double DefenseSamples::max_distance() const {
  CTC_REQUIRE(!distances.empty());
  return *std::max_element(distances.begin(), distances.end());
}

double DefenseSamples::min_distance() const {
  CTC_REQUIRE(!distances.empty());
  return *std::min_element(distances.begin(), distances.end());
}

DefenseSamples collect_defense_samples(const Link& link,
                                       std::span<const zigbee::MacFrame> frames,
                                       std::size_t count,
                                       const defense::Detector& detector,
                                       dsp::Rng& rng, DefenseTap tap) {
  CTC_REQUIRE(!frames.empty());
  DefenseSamples samples;
  for (std::size_t i = 0; i < count; ++i) {
    const FrameObservation observation = link.send(frames[i % frames.size()], rng);
    const rvec& chips = tap == DefenseTap::discriminator
                            ? observation.rx.freq_chips
                            : observation.rx.soft_chips;
    if (chips.size() < 8) {
      ++samples.frames_skipped;
      continue;
    }
    const defense::Verdict verdict = detector.classify(chips);
    samples.distances.push_back(verdict.distance_sq);
    samples.c40.push_back(verdict.feature.c40);
    samples.c42.push_back(verdict.feature.c42);
    ++samples.frames_used;
  }
  return samples;
}

}  // namespace ctc::sim
