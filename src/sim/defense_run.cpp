#include "sim/defense_run.h"

#include <algorithm>

#include "dsp/require.h"

namespace ctc::sim {

void DefenseSamples::add(const DefenseObservation& observation) {
  if (!observation.usable) {
    ++frames_skipped;
    return;
  }
  distances.push_back(observation.distance_sq);
  c40.push_back(observation.c40);
  c42.push_back(observation.c42);
  ++frames_used;
}

double DefenseSamples::mean_distance() const {
  CTC_REQUIRE(!distances.empty());
  double acc = 0.0;
  for (double d : distances) acc += d;
  return acc / static_cast<double>(distances.size());
}

double DefenseSamples::max_distance() const {
  CTC_REQUIRE(!distances.empty());
  return *std::max_element(distances.begin(), distances.end());
}

double DefenseSamples::min_distance() const {
  CTC_REQUIRE(!distances.empty());
  return *std::min_element(distances.begin(), distances.end());
}

namespace {

/// The classification back half of a defense trial, shared by the serial
/// and the batched collectors.
DefenseObservation defense_features(const FrameObservation& observation,
                                    const defense::Detector& detector,
                                    DefenseTap tap) {
  const rvec& chips = tap == DefenseTap::discriminator
                          ? observation.rx.freq_chips
                          : observation.rx.soft_chips;
  DefenseObservation result;
  if (chips.size() < 8) return result;
  const defense::Verdict verdict = detector.classify(chips);
  result.usable = true;
  result.distance_sq = verdict.distance_sq;
  result.c40 = verdict.feature.c40;
  result.c42 = verdict.feature.c42;
  return result;
}

}  // namespace

DefenseObservation observe_defense_frame(const Link& link,
                                         const zigbee::MacFrame& frame,
                                         const defense::Detector& detector,
                                         dsp::Rng& rng, DefenseTap tap) {
  return defense_features(link.send(frame, rng), detector, tap);
}

DefenseSamples collect_defense_samples(const Link& link,
                                       std::span<const zigbee::MacFrame> frames,
                                       std::size_t count,
                                       const defense::Detector& detector,
                                       TrialEngine& engine, DefenseTap tap) {
  CTC_REQUIRE(!frames.empty());
  // Sharing one `detector` across all trials (and worker threads) is safe:
  // the batch defense::Detector holds only its immutable config, so no
  // counter or cumulant state can leak between trials. A StreamingDetector
  // would NOT be safe here — it accumulates across push_chips() calls and
  // needs begin_frame() at every frame boundary (see defense/streaming.h).
  link.prime(frames);
  return engine.run<DefenseSamples>(count, [&](std::size_t i, dsp::Rng& rng) {
    return observe_defense_frame(link, frames[i % frames.size()], detector, rng,
                                 tap);
  });
}

DefenseSamples collect_defense_samples_batched(
    const Link& link, std::span<const zigbee::MacFrame> frames,
    std::size_t count, const defense::Detector& detector, TrialEngine& engine,
    std::size_t batch_size, DefenseTap tap) {
  CTC_REQUIRE(!frames.empty());
  link.prime(frames);
  return engine.run_batched<DefenseSamples>(
      count, batch_size, [&](std::size_t first, std::span<dsp::Rng> rngs) {
        std::vector<DefenseObservation> results;
        results.reserve(rngs.size());
        // Consecutive trials on the same frame share one SoA channel sweep.
        // Frames cycle with period frames.size(), so with several frames the
        // runs shrink (down to single-trial sends) but stay bit-identical.
        std::size_t k = 0;
        while (k < rngs.size()) {
          const std::size_t frame_index = (first + k) % frames.size();
          std::size_t run = k + 1;
          while (run < rngs.size() &&
                 (first + run) % frames.size() == frame_index) {
            ++run;
          }
          const auto observations = link.send_batch(
              frames[frame_index], rngs.subspan(k, run - k));
          for (const FrameObservation& observation : observations) {
            results.push_back(defense_features(observation, detector, tap));
          }
          k = run;
        }
        return results;
      });
}

DefenseSamples collect_defense_samples(const Link& link,
                                       std::span<const zigbee::MacFrame> frames,
                                       std::size_t count,
                                       const defense::Detector& detector,
                                       dsp::Rng& rng, DefenseTap tap) {
  CTC_REQUIRE(!frames.empty());
  DefenseSamples samples;
  for (std::size_t i = 0; i < count; ++i) {
    samples.add(observe_defense_frame(link, frames[i % frames.size()], detector,
                                      rng, tap));
  }
  return samples;
}

}  // namespace ctc::sim
