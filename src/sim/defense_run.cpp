#include "sim/defense_run.h"

#include <algorithm>

#include "dsp/require.h"

namespace ctc::sim {

void DefenseSamples::add(const DefenseObservation& observation) {
  if (!observation.usable) {
    ++frames_skipped;
    return;
  }
  distances.push_back(observation.distance_sq);
  c40.push_back(observation.c40);
  c42.push_back(observation.c42);
  ++frames_used;
}

double DefenseSamples::mean_distance() const {
  CTC_REQUIRE(!distances.empty());
  double acc = 0.0;
  for (double d : distances) acc += d;
  return acc / static_cast<double>(distances.size());
}

double DefenseSamples::max_distance() const {
  CTC_REQUIRE(!distances.empty());
  return *std::max_element(distances.begin(), distances.end());
}

double DefenseSamples::min_distance() const {
  CTC_REQUIRE(!distances.empty());
  return *std::min_element(distances.begin(), distances.end());
}

DefenseObservation observe_defense_frame(const Link& link,
                                         const zigbee::MacFrame& frame,
                                         const defense::Detector& detector,
                                         dsp::Rng& rng, DefenseTap tap) {
  const FrameObservation observation = link.send(frame, rng);
  const rvec& chips = tap == DefenseTap::discriminator
                          ? observation.rx.freq_chips
                          : observation.rx.soft_chips;
  DefenseObservation result;
  if (chips.size() < 8) return result;
  const defense::Verdict verdict = detector.classify(chips);
  result.usable = true;
  result.distance_sq = verdict.distance_sq;
  result.c40 = verdict.feature.c40;
  result.c42 = verdict.feature.c42;
  return result;
}

DefenseSamples collect_defense_samples(const Link& link,
                                       std::span<const zigbee::MacFrame> frames,
                                       std::size_t count,
                                       const defense::Detector& detector,
                                       TrialEngine& engine, DefenseTap tap) {
  CTC_REQUIRE(!frames.empty());
  // Sharing one `detector` across all trials (and worker threads) is safe:
  // the batch defense::Detector holds only its immutable config, so no
  // counter or cumulant state can leak between trials. A StreamingDetector
  // would NOT be safe here — it accumulates across push_chips() calls and
  // needs begin_frame() at every frame boundary (see defense/streaming.h).
  link.prime(frames);
  return engine.run<DefenseSamples>(count, [&](std::size_t i, dsp::Rng& rng) {
    return observe_defense_frame(link, frames[i % frames.size()], detector, rng,
                                 tap);
  });
}

DefenseSamples collect_defense_samples(const Link& link,
                                       std::span<const zigbee::MacFrame> frames,
                                       std::size_t count,
                                       const defense::Detector& detector,
                                       dsp::Rng& rng, DefenseTap tap) {
  CTC_REQUIRE(!frames.empty());
  DefenseSamples samples;
  for (std::size_t i = 0; i < count; ++i) {
    samples.add(observe_defense_frame(link, frames[i % frames.size()], detector,
                                      rng, tap));
  }
  return samples;
}

}  // namespace ctc::sim
