// Fixed-size worker pool for data-parallel index loops.
//
// The Monte Carlo driver (sim::TrialEngine) distributes independent frame
// trials over this pool. Index-to-thread assignment is dynamic (an atomic
// work counter), which balances uneven trial costs; determinism is the
// engine's job — it derives each trial's randomness from the trial index,
// never from the executing thread.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace ctc::sim {

class ThreadPool {
 public:
  /// Spawns `resolve_threads(threads) - 1` workers (the calling thread
  /// participates in every loop, so `threads == 1` spawns none and runs
  /// strictly inline).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the calling thread.
  std::size_t size() const { return threads_; }

  /// Runs `fn(i)` for every i in [0, count) across the pool and blocks
  /// until all indices finish. Callers must not depend on which thread
  /// runs which index. If invocations throw, one of the exceptions is
  /// rethrown here after the loop drains; the remaining indices may be
  /// skipped.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Thread-count policy shared by the engine and the bench CLI:
  /// `requested` if nonzero, else the CTC_THREADS environment variable if
  /// set to a positive integer, else std::thread::hardware_concurrency()
  /// (minimum 1).
  static std::size_t resolve_threads(std::size_t requested);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t threads_ = 1;
};

}  // namespace ctc::sim
