#include "defense/detector.h"

#include <algorithm>
#include <cmath>

#include "dsp/require.h"
#include "sim/telemetry.h"

namespace ctc::defense {

double Feature::distance_sq() const {
  const double d40 = c40 - 1.0;
  const double d42 = c42 + 1.0;
  return d40 * d40 + d42 * d42;
}

Detector::Detector(DetectorConfig config) : config_(config) {
  CTC_REQUIRE(config_.threshold > 0.0);
}

Feature Detector::feature_from_points(std::span<const cplx> points) const {
  CTC_TELEM_COUNT("defense", "cumulant_evals", 1);
  CTC_TELEM_COUNT("defense", "constellation_points", points.size());
  const CumulantEstimates estimates = estimate_cumulants(points);
  const cplx c40 = estimates.normalized_c40(config_.noise_variance);
  Feature feature;
  feature.c40 = config_.c40_mode == C40Mode::magnitude ? std::abs(c40) : c40.real();
  feature.c42 = estimates.normalized_c42(config_.noise_variance);
  return feature;
}

Feature Detector::feature_from_chips(std::span<const double> soft_chips) const {
  const cvec points = build_constellation(soft_chips, config_.builder);
  return feature_from_points(points);
}

Verdict Detector::classify(std::span<const double> soft_chips) const {
  CTC_TELEM_TIMER("defense", "classify");
  Verdict verdict;
  verdict.feature = feature_from_chips(soft_chips);
  verdict.distance_sq = verdict.feature.distance_sq();
  verdict.is_attack = verdict.distance_sq >= config_.threshold;
  // Two sites, not one ternary name: the macros cache the metric id per
  // call site, so the name must be a per-site constant.
  if (verdict.is_attack) {
    CTC_TELEM_COUNT("defense", "verdict_attack", 1);
  } else {
    CTC_TELEM_COUNT("defense", "verdict_authentic", 1);
  }
  CTC_TELEM_GAUGE("defense", "distance_sq", verdict.distance_sq);
  return verdict;
}

double Detector::calibrate_threshold(std::span<const double> authentic_distances,
                                     std::span<const double> emulated_distances) {
  CTC_REQUIRE(!authentic_distances.empty() && !emulated_distances.empty());
  const double authentic_max =
      *std::max_element(authentic_distances.begin(), authentic_distances.end());
  const double emulated_min =
      *std::min_element(emulated_distances.begin(), emulated_distances.end());
  CTC_REQUIRE_MSG(authentic_max < emulated_min,
                  "training classes overlap; no separating threshold exists");
  return 0.5 * (authentic_max + emulated_min);
}

}  // namespace ctc::defense
