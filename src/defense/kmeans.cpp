#include "defense/kmeans.h"

#include <cmath>
#include <limits>

#include "dsp/require.h"

namespace ctc::defense {

namespace {

cvec kmeanspp_seed(std::span<const cplx> points, std::size_t k, dsp::Rng& rng) {
  cvec centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.uniform_index(points.size())]);
  rvec distances(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const cplx& center : centroids) {
        best = std::min(best, std::norm(points[i] - center));
      }
      distances[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All remaining points coincide with existing centroids.
      centroids.push_back(points[rng.uniform_index(points.size())]);
      continue;
    }
    double target = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= distances[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

KmeansResult kmeans(std::span<const cplx> points, dsp::Rng& rng,
                    KmeansConfig config) {
  CTC_REQUIRE(config.k >= 1);
  CTC_REQUIRE_MSG(points.size() >= config.k, "fewer points than clusters");
  KmeansResult result;
  result.centroids = kmeanspp_seed(points, config.k, rng);
  result.assignment.assign(points.size(), 0);

  double previous_objective = std::numeric_limits<double>::infinity();
  for (std::size_t iteration = 0; iteration < config.max_iterations; ++iteration) {
    // Assignment step.
    double objective = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_cluster = 0;
      for (std::size_t c = 0; c < config.k; ++c) {
        const double distance = std::norm(points[i] - result.centroids[c]);
        if (distance < best) {
          best = distance;
          best_cluster = c;
        }
      }
      result.assignment[i] = best_cluster;
      objective += best;
    }
    result.within_cluster_ss = objective;
    result.iterations = iteration + 1;

    // Update step.
    cvec sums(config.k, cplx{0.0, 0.0});
    std::vector<std::size_t> counts(config.k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[result.assignment[i]] += points[i];
      ++counts[result.assignment[i]];
    }
    for (std::size_t c = 0; c < config.k; ++c) {
      if (counts[c] > 0) {
        result.centroids[c] = sums[c] / static_cast<double>(counts[c]);
      }
    }
    if (previous_objective - objective < config.tolerance) break;
    previous_objective = objective;
  }
  return result;
}

}  // namespace ctc::defense
