// k-means clustering on complex constellation points (Sec. VI-C, Eq. 12).
//
// The paper uses k-means (k = 4) to locate the reconstructed constellation
// clusters and visualize the phase offset of the real environment (Fig. 6).
// Initialization is k-means++ for deterministic, well-spread seeds.
#pragma once

#include <span>
#include <vector>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace ctc::defense {

struct KmeansResult {
  cvec centroids;                      ///< k cluster centers
  std::vector<std::size_t> assignment; ///< cluster index per input point
  double within_cluster_ss = 0.0;      ///< objective of Eq. 12
  std::size_t iterations = 0;
};

struct KmeansConfig {
  std::size_t k = 4;
  std::size_t max_iterations = 100;
  double tolerance = 1e-9;  ///< stop when the objective improves less
};

/// Lloyd's algorithm with k-means++ seeding. Requires points.size() >= k.
KmeansResult kmeans(std::span<const cplx> points, dsp::Rng& rng,
                    KmeansConfig config = {});

}  // namespace ctc::defense
