#include "defense/constellation_builder.h"

#include <cmath>

#include "dsp/require.h"

namespace ctc::defense {

cvec build_constellation(std::span<const double> soft_chips,
                         BuilderConfig config) {
  CTC_REQUIRE_MSG(soft_chips.size() % 2 == 0,
                  "need whole (I, Q) chip pairs");
  cvec points;
  points.reserve(soft_chips.size() / 2);
  // exp(-j pi/4): diagonals -> axes.
  const cplx rotation = config.rotate_to_axes
                            ? cplx{std::sqrt(0.5), -std::sqrt(0.5)}
                            : cplx{1.0, 0.0};
  for (std::size_t i = 0; i + 1 < soft_chips.size(); i += 2) {
    points.push_back(cplx{soft_chips[i], soft_chips[i + 1]} * rotation);
  }
  return points;
}

}  // namespace ctc::defense
