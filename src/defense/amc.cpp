#include "defense/amc.h"

#include <algorithm>
#include <cmath>

#include "dsp/require.h"

namespace ctc::defense {

namespace {

constexpr ModulationClass kAllClasses[] = {
    ModulationClass::bpsk,  ModulationClass::qpsk,  ModulationClass::psk_higher,
    ModulationClass::pam4,  ModulationClass::pam8,  ModulationClass::pam16,
    ModulationClass::qam16, ModulationClass::qam64, ModulationClass::qam256,
};

struct Feature {
  double c20_magnitude = 0.0;
  double c40 = 0.0;
  double c42 = 0.0;
};

Feature feature_of(std::span<const cplx> samples, const AmcConfig& config) {
  const CumulantEstimates estimates = estimate_cumulants(samples);
  const double c21 = [&] {
    const double corrected = estimates.c21 - config.noise_variance;
    CTC_REQUIRE_MSG(corrected > 0.0, "noise variance exceeds measured power");
    return corrected;
  }();
  Feature feature;
  feature.c20_magnitude = std::abs(estimates.c20) / c21;
  const cplx c40 = estimates.c40 / (c21 * c21);
  feature.c40 = config.use_c40_magnitude ? std::abs(c40) : c40.real();
  feature.c42 = estimates.c42 / (c21 * c21);
  return feature;
}

double distance_sq(const Feature& feature, ModulationClass klass,
                   const AmcConfig& config) {
  const TheoreticalCumulants theory = theoretical_cumulants(klass);
  const double anchor_c40 =
      config.use_c40_magnitude ? std::abs(theory.c40) : theory.c40;
  const double d20 = feature.c20_magnitude - std::abs(theory.c20);
  const double d40 = feature.c40 - anchor_c40;
  const double d42 = feature.c42 - theory.c42;
  return d20 * d20 + d40 * d40 + d42 * d42;
}

}  // namespace

double distance_to_class(std::span<const cplx> samples, ModulationClass klass,
                         AmcConfig config) {
  return distance_sq(feature_of(samples, config), klass, config);
}

AmcResult classify_modulation(std::span<const cplx> samples, AmcConfig config) {
  const Feature feature = feature_of(samples, config);
  AmcResult result;
  for (ModulationClass klass : kAllClasses) {
    result.ranking.push_back({klass, distance_sq(feature, klass, config)});
  }
  std::sort(result.ranking.begin(), result.ranking.end(),
            [](const AmcScore& a, const AmcScore& b) {
              return a.distance_sq < b.distance_sq;
            });
  result.best = result.ranking.front().modulation;
  result.distance_sq = result.ranking.front().distance_sq;
  return result;
}

}  // namespace ctc::defense
