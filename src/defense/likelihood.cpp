#include "defense/likelihood.h"

#include <algorithm>
#include <cmath>

#include "dsp/constellation.h"
#include "dsp/require.h"
#include "dsp/stats.h"

namespace ctc::defense {

namespace {

cvec constellation_of(ModulationClass klass) {
  switch (klass) {
    case ModulationClass::bpsk: return dsp::make_psk(2);
    case ModulationClass::qpsk: return dsp::make_psk(4);
    case ModulationClass::psk_higher: return dsp::make_psk(8);
    case ModulationClass::pam4: return dsp::make_pam(4);
    case ModulationClass::pam8: return dsp::make_pam(8);
    case ModulationClass::pam16: return dsp::make_pam(16);
    case ModulationClass::qam16: return dsp::make_qam(16);
    case ModulationClass::qam64: return dsp::make_qam(64);
    case ModulationClass::qam256: return dsp::make_qam(256);
  }
  CTC_REQUIRE_MSG(false, "unknown modulation class");
}

constexpr ModulationClass kAllClasses[] = {
    ModulationClass::bpsk,  ModulationClass::qpsk,  ModulationClass::psk_higher,
    ModulationClass::pam4,  ModulationClass::pam8,  ModulationClass::pam16,
    ModulationClass::qam16, ModulationClass::qam64, ModulationClass::qam256,
};

double max_over_phases(std::span<const cplx> samples, const cvec& constellation,
                       const LikelihoodConfig& config, double* best_phase) {
  double best = -1e300;
  for (std::size_t p = 0; p < config.phase_hypotheses; ++p) {
    const double phase = kTwoPi * static_cast<double>(p) /
                         static_cast<double>(config.phase_hypotheses);
    const double value =
        log_likelihood(samples, constellation, config.noise_variance, phase);
    if (value > best) {
      best = value;
      if (best_phase != nullptr) *best_phase = phase;
    }
  }
  return best;
}

}  // namespace

double log_likelihood(std::span<const cplx> samples,
                      std::span<const cplx> constellation, double noise_variance,
                      double phase_rad) {
  CTC_REQUIRE(noise_variance > 0.0);
  CTC_REQUIRE(!samples.empty());
  CTC_REQUIRE(!constellation.empty());
  const cplx rotation = std::polar(1.0, phase_rad);
  const double inv_variance = 1.0 / noise_variance;
  const double log_m = std::log(static_cast<double>(constellation.size()));
  double total = 0.0;
  for (const cplx& sample : samples) {
    // log sum exp over symbols, stabilized by the minimum distance.
    double min_distance = 1e300;
    for (const cplx& symbol : constellation) {
      min_distance = std::min(min_distance, std::norm(sample - symbol * rotation));
    }
    double sum = 0.0;
    for (const cplx& symbol : constellation) {
      sum += std::exp(-(std::norm(sample - symbol * rotation) - min_distance) *
                      inv_variance);
    }
    total += -min_distance * inv_variance + std::log(sum) - log_m;
  }
  return total / static_cast<double>(samples.size());
}

LikelihoodResult classify_likelihood(std::span<const cplx> samples,
                                     LikelihoodConfig config) {
  CTC_REQUIRE(config.phase_hypotheses >= 1);
  cvec normalized;
  std::span<const cplx> working = samples;
  if (config.normalize_power) {
    normalized = dsp::normalize_power(samples);
    working = normalized;
  }
  LikelihoodResult result;
  for (ModulationClass klass : kAllClasses) {
    LikelihoodScore score;
    score.modulation = klass;
    score.log_likelihood =
        max_over_phases(working, constellation_of(klass), config, &score.best_phase_rad);
    result.ranking.push_back(score);
  }
  std::sort(result.ranking.begin(), result.ranking.end(),
            [](const LikelihoodScore& a, const LikelihoodScore& b) {
              return a.log_likelihood > b.log_likelihood;
            });
  result.best = result.ranking.front().modulation;
  return result;
}

double qpsk_vs_qam64_llr(std::span<const cplx> samples, LikelihoodConfig config) {
  CTC_REQUIRE(config.phase_hypotheses >= 1);
  cvec normalized;
  std::span<const cplx> working = samples;
  if (config.normalize_power) {
    normalized = dsp::normalize_power(samples);
    working = normalized;
  }
  const double qpsk =
      max_over_phases(working, dsp::make_psk(4), config, nullptr);
  const double qam64 =
      max_over_phases(working, dsp::make_qam(64), config, nullptr);
  return qpsk - qam64;
}

}  // namespace ctc::defense
