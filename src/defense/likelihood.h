// Likelihood-based modulation classification (the ALRT/HLRT family of
// Sec. II-B, refs. [13]-[14]).
//
// The paper chooses cumulant features because "feature-based cumulant
// analysis has lower complexity than the likelihood function" — this module
// implements the alternative so the claim can be measured
// (bench/ablation_likelihood): average log-likelihood of the samples under
// each candidate constellation with complex-Gaussian noise, maximized over
// a grid of carrier-phase hypotheses (the "hybrid" in HLRT; signal level is
// handled by unit-power normalization).
#pragma once

#include <span>
#include <vector>

#include "defense/cumulants.h"
#include "dsp/types.h"

namespace ctc::defense {

struct LikelihoodConfig {
  /// Complex noise variance per sample. Required (> 0): likelihood methods
  /// need the noise level; that is part of their practical cost.
  double noise_variance = 0.1;
  /// Phase hypotheses per class (HLRT maximization grid).
  std::size_t phase_hypotheses = 16;
  /// Normalize the samples to unit average power first (handles unknown
  /// signal level, ref. [13]).
  bool normalize_power = true;
};

/// Average log-likelihood (nats/sample, additive constants dropped) of the
/// samples under `constellation` with equiprobable symbols, CN(0, sigma^2)
/// noise and carrier phase `phase_rad`.
double log_likelihood(std::span<const cplx> samples,
                      std::span<const cplx> constellation, double noise_variance,
                      double phase_rad);

struct LikelihoodScore {
  ModulationClass modulation = ModulationClass::qpsk;
  double log_likelihood = 0.0;  ///< maximized over the phase grid
  double best_phase_rad = 0.0;
};

struct LikelihoodResult {
  ModulationClass best = ModulationClass::qpsk;
  /// All classes sorted by descending likelihood.
  std::vector<LikelihoodScore> ranking;
};

/// HLRT over the Table III constellation set.
LikelihoodResult classify_likelihood(std::span<const cplx> samples,
                                     LikelihoodConfig config = {});

/// Binary hypothesis test of Sec. VI recast as an HLRT: H0 "QPSK" vs H1
/// "the attacker's 64-QAM-quantized cloud" (modeled as 64-QAM). Returns the
/// per-sample log-likelihood ratio L(QPSK) - L(64QAM); > 0 favors H0.
double qpsk_vs_qam64_llr(std::span<const cplx> samples,
                         LikelihoodConfig config = {});

}  // namespace ctc::defense
