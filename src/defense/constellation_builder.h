// Constellation reconstruction from soft chip samples (Sec. VI-A2).
//
// The input of the DSSS demodulator is one soft value per chip: in-phase
// branch chips at even indexes, quadrature branch chips at odd indexes.
// Pairing them (odd parts -> real axis, even parts -> imaginary axis in the
// paper's wording; chip bit order makes this the (I, Q) pair) produces one
// complex point per chip pair, which for authentic ZigBee traffic is a QPSK
// cloud.
//
// Orientation: raw pairs land on the diagonals (+-1 +-j), whose C40 is -1.
// Table III (Swami-Sadler) assumes the axis QPSK {+-1, +-j} with C40 = +1,
// so by default the builder derotates by pi/4 — a fixed rotation that only
// flips the sign of C40 and matches the paper's theoretical targets
// (C40 -> +1, C42 -> -1 in Figs. 10-11).
#pragma once

#include <span>

#include "dsp/types.h"

namespace ctc::defense {

struct BuilderConfig {
  /// Derotate by pi/4 so authentic QPSK matches Table III's C40 = +1.
  bool rotate_to_axes = true;
};

/// Builds constellation points from soft chip values. Requires an even
/// number of chips; returns chips.size()/2 points.
cvec build_constellation(std::span<const double> soft_chips,
                         BuilderConfig config = {});

}  // namespace ctc::defense
