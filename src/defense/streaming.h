// Streaming (online) cumulant estimation and detection.
//
// A deployed detector inside a ZigBee receiver sees chips as they decode;
// buffering a whole frame before deciding costs latency and RAM on an MCU.
// StreamingCumulants keeps O(1) running sums (the estimators of Eqs. 8-9
// are plain sample means, so they stream exactly); StreamingDetector feeds
// it chip pairs and can produce a verdict at any point — bit-for-bit equal
// to the batch Detector on the same samples.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "defense/detector.h"
#include "dsp/types.h"

namespace ctc::defense {

/// Online version of estimate_cumulants(): push samples, read estimates.
///
/// State is the kernel layer's lane-structured sums with the global sample
/// count as the lane cursor, so any partition of a sample sequence into
/// push()/push_block() calls lands every sample in the same lane — the
/// estimates are bit-for-bit equal to estimate_cumulants() over the whole
/// sequence, at every SIMD dispatch level.
class StreamingCumulants {
 public:
  void push(cplx sample);

  /// Bulk push through the vectorized kernel; same result as push() per
  /// sample, amortized much faster.
  void push_block(std::span<const cplx> samples);

  void reset();

  std::size_t count() const { return count_; }

  /// Requires count() >= 4. Identical to estimate_cumulants() over the same
  /// samples.
  CumulantEstimates estimates() const;

 private:
  std::size_t count_ = 0;
  dsp::kernels::CumulantLanes lanes_;
};

/// Online version of Detector: feed soft chips in any block sizes.
///
/// The detector is STATEFUL across push_chips() calls: the running cumulant
/// sums and a held odd chip (`pending_chip_`) persist until reset. That is
/// the point within one frame — but reusing one instance across frames
/// without an explicit boundary silently contaminates the next verdict in
/// two ways: (a) the new frame's points average into the old frame's
/// cumulants, and (b) a leftover odd chip from frame N pairs with the FIRST
/// chip of frame N+1, producing a constellation point that belongs to
/// neither frame. Call begin_frame() at every frame boundary; batch-style
/// users that classify whole frames should prefer defense::Detector, which
/// is stateless across calls.
class StreamingDetector {
 public:
  explicit StreamingDetector(DetectorConfig config = {});

  /// Marks a frame boundary: discards the running cumulants AND any held
  /// odd chip so the next verdict reflects only the new frame. Equivalent
  /// to reset() today; call this (not reset()) at boundaries so intent
  /// survives if per-frame bookkeeping is added later.
  void begin_frame();

  /// Consumes chips (odd leftovers are held until the pair completes).
  void push_chips(std::span<const double> soft_chips);

  /// Constellation points consumed so far.
  std::size_t points() const { return cumulants_.count(); }

  /// Current verdict; nullopt until at least `min_points` (default 4) points
  /// have been consumed.
  std::optional<Verdict> verdict(std::size_t min_points = 4) const;

  /// Clears all state. Same effect as begin_frame(); kept for callers that
  /// mean "discard everything" rather than "next frame starts here".
  void reset();

  const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
  StreamingCumulants cumulants_;
  std::optional<double> pending_chip_;
};

}  // namespace ctc::defense
