// Streaming (online) cumulant estimation and detection.
//
// A deployed detector inside a ZigBee receiver sees chips as they decode;
// buffering a whole frame before deciding costs latency and RAM on an MCU.
// StreamingCumulants keeps O(1) running sums (the estimators of Eqs. 8-9
// are plain sample means, so they stream exactly); StreamingDetector feeds
// it chip pairs and can produce a verdict at any point — bit-for-bit equal
// to the batch Detector on the same samples.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "defense/detector.h"
#include "dsp/types.h"

namespace ctc::defense {

/// Online version of estimate_cumulants(): push samples, read estimates.
class StreamingCumulants {
 public:
  void push(cplx sample);
  void reset();

  std::size_t count() const { return count_; }

  /// Requires count() >= 4. Identical to estimate_cumulants() over the same
  /// samples.
  CumulantEstimates estimates() const;

 private:
  std::size_t count_ = 0;
  cplx sum_x2_{0.0, 0.0};
  cplx sum_x4_{0.0, 0.0};
  cplx sum_x3_conj_{0.0, 0.0};
  double sum_abs2_ = 0.0;
  double sum_abs4_ = 0.0;
};

/// Online version of Detector: feed soft chips in any block sizes.
class StreamingDetector {
 public:
  explicit StreamingDetector(DetectorConfig config = {});

  /// Consumes chips (odd leftovers are held until the pair completes).
  void push_chips(std::span<const double> soft_chips);

  /// Constellation points consumed so far.
  std::size_t points() const { return cumulants_.count(); }

  /// Current verdict; nullopt until at least `min_points` (default 4) points
  /// have been consumed.
  std::optional<Verdict> verdict(std::size_t min_points = 4) const;

  /// Clears all state (start of a new frame).
  void reset();

  const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
  StreamingCumulants cumulants_;
  std::optional<double> pending_chip_;
};

}  // namespace ctc::defense
