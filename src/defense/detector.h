// Emulation-attack detector (Sec. VI-B3, VI-C).
//
// Feature vector phi = [Chat40, Chat42] estimated from the reconstructed
// QPSK constellation; Voronoi anchor v = [+1, -1] (Table III, QPSK); squared
// Euclidean distance DE^2 = ||phi - v||^2 compared against a threshold Q:
//   DE^2 <  Q  ->  H0 (authentic ZigBee transmitter)
//   DE^2 >= Q  ->  H1 (WiFi waveform emulation attacker)
// In the real environment a frequency/phase offset rotates C40 by
// e^{j(4*delta)}, so the detector switches to |C40| (Sec. VI-C).
#pragma once

#include <span>
#include <vector>

#include "defense/constellation_builder.h"
#include "defense/cumulants.h"
#include "dsp/types.h"

namespace ctc::defense {

enum class C40Mode {
  real_part,  ///< ideal AWGN scenario (Sec. VI-B)
  magnitude,  ///< real scenario, immune to frequency/phase offset (Sec. VI-C)
};

struct DetectorConfig {
  C40Mode c40_mode = C40Mode::real_part;
  /// Q of Eq. (11). The paper derives 0.5 on its USRP testbed; this
  /// library's simulated receiver sits in a gap of roughly [0.09, 0.33]
  /// (see bench/fig12_threshold and EXPERIMENTS.md), so the default is the
  /// calibrated midpoint. Recalibrate with Detector::calibrate_threshold()
  /// for any new receiver chain.
  double threshold = 0.2;
  double noise_variance = 0.0; ///< optional C21 correction (0 = none)
  BuilderConfig builder;
};

struct Feature {
  double c40 = 0.0;  ///< real part or magnitude of Chat40 depending on mode
  double c42 = 0.0;  ///< Chat42

  /// DE^2 against the QPSK anchor (C40 = +1, C42 = -1).
  double distance_sq() const;
};

struct Verdict {
  Feature feature;
  double distance_sq = 0.0;
  bool is_attack = false;  ///< H1
};

class Detector {
 public:
  explicit Detector(DetectorConfig config = {});

  /// Feature from raw soft chip values (builds the constellation first).
  Feature feature_from_chips(std::span<const double> soft_chips) const;

  /// Feature from pre-built constellation points.
  Feature feature_from_points(std::span<const cplx> points) const;

  /// Full hypothesis test on one frame's soft chips.
  Verdict classify(std::span<const double> soft_chips) const;

  /// Threshold calibration as in Sec. VII-B: given training DE^2 values from
  /// known-authentic and known-emulated frames, returns the midpoint between
  /// the largest authentic and smallest emulated distance. Throws if the
  /// classes are not separable (overlapping training distances).
  static double calibrate_threshold(std::span<const double> authentic_distances,
                                    std::span<const double> emulated_distances);

  const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
};

}  // namespace ctc::defense
