#include "defense/cumulants.h"

#include <cmath>

#include "dsp/require.h"

namespace ctc::defense {

namespace {

double corrected_c21(double c21, double noise_variance) {
  CTC_REQUIRE(noise_variance >= 0.0);
  const double corrected = c21 - noise_variance;
  CTC_REQUIRE_MSG(corrected > 0.0, "noise variance exceeds measured power");
  return corrected;
}

}  // namespace

cplx CumulantEstimates::normalized_c40(double noise_variance) const {
  const double denom = corrected_c21(c21, noise_variance);
  return c40 / (denom * denom);
}

cplx CumulantEstimates::normalized_c41(double noise_variance) const {
  const double denom = corrected_c21(c21, noise_variance);
  return c41 / (denom * denom);
}

double CumulantEstimates::normalized_c42(double noise_variance) const {
  const double denom = corrected_c21(c21, noise_variance);
  return c42 / (denom * denom);
}

CumulantEstimates estimate_cumulants(std::span<const cplx> samples) {
  CTC_REQUIRE_MSG(samples.size() >= 4, "need at least 4 samples");
  const auto count = static_cast<double>(samples.size());
  cplx sum_x2{0.0, 0.0};
  cplx sum_x4{0.0, 0.0};
  cplx sum_x3_conj{0.0, 0.0};
  double sum_abs2 = 0.0;
  double sum_abs4 = 0.0;
  for (const cplx& x : samples) {
    const cplx x2 = x * x;
    const double abs2 = std::norm(x);
    sum_x2 += x2;
    sum_x4 += x2 * x2;
    sum_x3_conj += x2 * x * std::conj(x);
    sum_abs2 += abs2;
    sum_abs4 += abs2 * abs2;
  }
  CumulantEstimates est;
  est.c20 = sum_x2 / count;
  est.c21 = sum_abs2 / count;
  est.c40 = sum_x4 / count - 3.0 * est.c20 * est.c20;
  est.c41 = sum_x3_conj / count - 3.0 * est.c20 * est.c21;
  est.c42 = sum_abs4 / count - std::norm(est.c20) - 2.0 * est.c21 * est.c21;
  return est;
}

TheoreticalCumulants theoretical_cumulants(ModulationClass modulation) {
  switch (modulation) {
    case ModulationClass::bpsk: return {1.0, -2.0, -2.0};
    case ModulationClass::qpsk: return {0.0, 1.0, -1.0};
    case ModulationClass::psk_higher: return {0.0, 0.0, -1.0};
    case ModulationClass::pam4: return {1.0, -1.36, -1.36};
    case ModulationClass::pam8: return {1.0, -1.2381, -1.2381};
    case ModulationClass::pam16: return {1.0, -1.2094, -1.2094};
    case ModulationClass::qam16: return {0.0, -0.68, -0.68};
    case ModulationClass::qam64: return {0.0, -0.619, -0.619};
    case ModulationClass::qam256: return {0.0, -0.6047, -0.6047};
  }
  CTC_REQUIRE_MSG(false, "unknown modulation class");
}

std::string to_string(ModulationClass modulation) {
  switch (modulation) {
    case ModulationClass::bpsk: return "BPSK";
    case ModulationClass::qpsk: return "QPSK";
    case ModulationClass::psk_higher: return "PSK(>4)";
    case ModulationClass::pam4: return "4-PAM";
    case ModulationClass::pam8: return "8-PAM";
    case ModulationClass::pam16: return "16-PAM";
    case ModulationClass::qam16: return "16-QAM";
    case ModulationClass::qam64: return "64-QAM";
    case ModulationClass::qam256: return "256-QAM";
  }
  CTC_REQUIRE_MSG(false, "unknown modulation class");
}

}  // namespace ctc::defense
