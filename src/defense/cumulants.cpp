#include "defense/cumulants.h"

#include <cmath>

#include "dsp/require.h"

namespace ctc::defense {

namespace {

double corrected_c21(double c21, double noise_variance) {
  CTC_REQUIRE(noise_variance >= 0.0);
  const double corrected = c21 - noise_variance;
  CTC_REQUIRE_MSG(corrected > 0.0, "noise variance exceeds measured power");
  return corrected;
}

}  // namespace

cplx CumulantEstimates::normalized_c40(double noise_variance) const {
  const double denom = corrected_c21(c21, noise_variance);
  return c40 / (denom * denom);
}

cplx CumulantEstimates::normalized_c41(double noise_variance) const {
  const double denom = corrected_c21(c21, noise_variance);
  return c41 / (denom * denom);
}

double CumulantEstimates::normalized_c42(double noise_variance) const {
  const double denom = corrected_c21(c21, noise_variance);
  return c42 / (denom * denom);
}

CumulantEstimates estimates_from_sums(const dsp::kernels::CumulantSums& sums,
                                      std::size_t count) {
  CTC_REQUIRE_MSG(count >= 4, "need at least 4 samples");
  const auto n = static_cast<double>(count);
  CumulantEstimates est;
  est.c20 = sums.sum_x2 / n;
  est.c21 = sums.sum_abs2 / n;
  est.c40 = sums.sum_x4 / n - 3.0 * est.c20 * est.c20;
  est.c41 = sums.sum_x3_conj / n - 3.0 * est.c20 * est.c21;
  est.c42 = sums.sum_abs4 / n - std::norm(est.c20) - 2.0 * est.c21 * est.c21;
  return est;
}

CumulantEstimates estimate_cumulants(std::span<const cplx> samples) {
  CTC_REQUIRE_MSG(samples.size() >= 4, "need at least 4 samples");
  dsp::kernels::CumulantLanes lanes;
  dsp::kernels::active().cumulant_acc(samples.data(), samples.size(), 0,
                                      &lanes);
  return estimates_from_sums(lanes.fold(), samples.size());
}

TheoreticalCumulants theoretical_cumulants(ModulationClass modulation) {
  switch (modulation) {
    case ModulationClass::bpsk: return {1.0, -2.0, -2.0};
    case ModulationClass::qpsk: return {0.0, 1.0, -1.0};
    case ModulationClass::psk_higher: return {0.0, 0.0, -1.0};
    case ModulationClass::pam4: return {1.0, -1.36, -1.36};
    case ModulationClass::pam8: return {1.0, -1.2381, -1.2381};
    case ModulationClass::pam16: return {1.0, -1.2094, -1.2094};
    case ModulationClass::qam16: return {0.0, -0.68, -0.68};
    case ModulationClass::qam64: return {0.0, -0.619, -0.619};
    case ModulationClass::qam256: return {0.0, -0.6047, -0.6047};
  }
  CTC_REQUIRE_MSG(false, "unknown modulation class");
}

std::string to_string(ModulationClass modulation) {
  switch (modulation) {
    case ModulationClass::bpsk: return "BPSK";
    case ModulationClass::qpsk: return "QPSK";
    case ModulationClass::psk_higher: return "PSK(>4)";
    case ModulationClass::pam4: return "4-PAM";
    case ModulationClass::pam8: return "8-PAM";
    case ModulationClass::pam16: return "16-PAM";
    case ModulationClass::qam16: return "16-QAM";
    case ModulationClass::qam64: return "64-QAM";
    case ModulationClass::qam256: return "256-QAM";
  }
  CTC_REQUIRE_MSG(false, "unknown modulation class");
}

}  // namespace ctc::defense
