// Second- and fourth-order moment/cumulant estimation (Sec. VI-B, Eqs. 5-9)
// and the theoretical constellation cumulants of Table III (Swami & Sadler).
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "dsp/kernels/kernels.h"
#include "dsp/types.h"

namespace ctc::defense {

/// Sample estimates of the second-order moments and fourth-order cumulants
/// of a zero-mean complex sequence (Eqs. 8-9).
struct CumulantEstimates {
  cplx c20{0.0, 0.0};   ///< E[x^2]
  double c21 = 0.0;     ///< E|x|^2
  cplx c40{0.0, 0.0};   ///< cum(x,x,x,x)      = E[x^4] - 3 E[x^2]^2
  cplx c41{0.0, 0.0};   ///< cum(x,x,x,x*)     = E[x^3 x*] - 3 E[x^2] E|x|^2
  double c42 = 0.0;     ///< cum(x,x,x*,x*)    = E|x|^4 - |E[x^2]|^2 - 2 E|x|^2^2

  /// Normalized fourth-order cumulants Chat_4q = C_4q / C21^2
  /// (scale-invariant; Sec. VI-B2). `noise_variance` (if known) is
  /// subtracted from C21 first so the normalization uses signal power only.
  cplx normalized_c40(double noise_variance = 0.0) const;
  cplx normalized_c41(double noise_variance = 0.0) const;
  double normalized_c42(double noise_variance = 0.0) const;
};

/// Computes the sample estimates over `samples` (requires >= 4 samples).
/// Accumulation runs through the dispatched dsp::kernels cumulant path
/// (lane-structured, bitwise identical across SIMD levels).
CumulantEstimates estimate_cumulants(std::span<const cplx> samples);

/// Turns folded kernel-layer running sums into the Eq. 8-9 estimates.
/// StreamingCumulants and estimate_cumulants() both finish through this one
/// function, which is what makes streaming-vs-batch results bit-identical.
CumulantEstimates estimates_from_sums(const dsp::kernels::CumulantSums& sums,
                                      std::size_t count);

/// Constellations of Table III.
enum class ModulationClass {
  bpsk, qpsk, psk_higher, pam4, pam8, pam16, qam16, qam64, qam256
};

/// Theoretical (C20, C40, C42) for unit power (C21 = 1), Table III.
struct TheoreticalCumulants {
  double c20 = 0.0;
  double c40 = 0.0;
  double c42 = 0.0;
};

TheoreticalCumulants theoretical_cumulants(ModulationClass modulation);

/// Human-readable name (for bench output).
std::string to_string(ModulationClass modulation);

}  // namespace ctc::defense
