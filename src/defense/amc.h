// Automatic modulation classification via cumulant features (Swami &
// Sadler, the method family the paper builds its defense on — Sec. II-B).
//
// The paper only needs the binary QPSK-or-not decision; this module
// implements the full nearest-Voronoi classifier over Table III so the
// defense generalizes: feature vector [ |C20|, C40, C42 ] (normalized by
// C21^2 with optional noise correction) matched against every constellation
// class. With `use_c40_magnitude` the C40 coordinate is |C40|, making the
// classifier immune to carrier phase offsets (Sec. VI-C) at the cost of
// conflating classes that differ only in C40's sign.
#pragma once

#include <span>
#include <vector>

#include "defense/cumulants.h"
#include "dsp/types.h"

namespace ctc::defense {

struct AmcConfig {
  double noise_variance = 0.0;
  bool use_c40_magnitude = false;
};

struct AmcScore {
  ModulationClass modulation = ModulationClass::qpsk;
  double distance_sq = 0.0;
};

struct AmcResult {
  ModulationClass best = ModulationClass::qpsk;
  double distance_sq = 0.0;
  /// All classes sorted by ascending feature distance.
  std::vector<AmcScore> ranking;
};

/// Classifies a block of baseband constellation samples (>= 4).
AmcResult classify_modulation(std::span<const cplx> samples,
                              AmcConfig config = {});

/// The feature-space distance of `samples` to one specific class.
double distance_to_class(std::span<const cplx> samples, ModulationClass klass,
                         AmcConfig config = {});

}  // namespace ctc::defense
