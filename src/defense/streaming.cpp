#include "defense/streaming.h"

#include <cmath>
#include <vector>

#include "defense/cumulants.h"
#include "dsp/require.h"
#include "sim/telemetry.h"

namespace ctc::defense {

void StreamingCumulants::push(cplx sample) {
  // Routed through the kernel layer (not an inline expression here) so the
  // per-sample rounding structure is the contract-pinned one, identical to
  // push_block() and to batch estimate_cumulants().
  dsp::kernels::active().cumulant_acc(&sample, 1, count_, &lanes_);
  ++count_;
}

void StreamingCumulants::push_block(std::span<const cplx> samples) {
  dsp::kernels::active().cumulant_acc(samples.data(), samples.size(), count_,
                                      &lanes_);
  count_ += samples.size();
}

void StreamingCumulants::reset() { *this = StreamingCumulants{}; }

CumulantEstimates StreamingCumulants::estimates() const {
  return estimates_from_sums(lanes_.fold(), count_);
}

StreamingDetector::StreamingDetector(DetectorConfig config) : config_(config) {
  CTC_REQUIRE(config_.threshold > 0.0);
}

void StreamingDetector::push_chips(std::span<const double> soft_chips) {
  CTC_TELEM_COUNT("defense", "streaming_chips", soft_chips.size());
  const cplx rotation = config_.builder.rotate_to_axes
                            ? cplx{std::sqrt(0.5), -std::sqrt(0.5)}
                            : cplx{1.0, 0.0};
  // Assemble the block's constellation points, then push them through the
  // vectorized kernel in one call. The lane cursor inside StreamingCumulants
  // makes this bit-identical to pushing one point at a time.
  thread_local std::vector<cplx> points;
  points.clear();
  for (double chip : soft_chips) {
    if (!pending_chip_) {
      pending_chip_ = chip;
      continue;
    }
    points.push_back(cplx{*pending_chip_, chip} * rotation);
    pending_chip_.reset();
  }
  cumulants_.push_block(points);
}

std::optional<Verdict> StreamingDetector::verdict(std::size_t min_points) const {
  if (cumulants_.count() < std::max<std::size_t>(min_points, 4)) {
    return std::nullopt;
  }
  CTC_TELEM_COUNT("defense", "cumulant_evals", 1);
  const CumulantEstimates estimates = cumulants_.estimates();
  const cplx c40 = estimates.normalized_c40(config_.noise_variance);
  Verdict verdict;
  verdict.feature.c40 =
      config_.c40_mode == C40Mode::magnitude ? std::abs(c40) : c40.real();
  verdict.feature.c42 = estimates.normalized_c42(config_.noise_variance);
  verdict.distance_sq = verdict.feature.distance_sq();
  verdict.is_attack = verdict.distance_sq >= config_.threshold;
  return verdict;
}

void StreamingDetector::reset() {
  cumulants_.reset();
  pending_chip_.reset();
}

void StreamingDetector::begin_frame() {
  CTC_TELEM_COUNT("defense", "streaming_frames", 1);
  reset();
}

}  // namespace ctc::defense
