#include "defense/streaming.h"

#include <cmath>

#include "dsp/require.h"
#include "sim/telemetry.h"

namespace ctc::defense {

void StreamingCumulants::push(cplx sample) {
  const cplx x2 = sample * sample;
  const double abs2 = std::norm(sample);
  sum_x2_ += x2;
  sum_x4_ += x2 * x2;
  sum_x3_conj_ += x2 * sample * std::conj(sample);
  sum_abs2_ += abs2;
  sum_abs4_ += abs2 * abs2;
  ++count_;
}

void StreamingCumulants::reset() { *this = StreamingCumulants{}; }

CumulantEstimates StreamingCumulants::estimates() const {
  CTC_REQUIRE_MSG(count_ >= 4, "need at least 4 samples");
  const auto n = static_cast<double>(count_);
  CumulantEstimates est;
  est.c20 = sum_x2_ / n;
  est.c21 = sum_abs2_ / n;
  est.c40 = sum_x4_ / n - 3.0 * est.c20 * est.c20;
  est.c41 = sum_x3_conj_ / n - 3.0 * est.c20 * est.c21;
  est.c42 = sum_abs4_ / n - std::norm(est.c20) - 2.0 * est.c21 * est.c21;
  return est;
}

StreamingDetector::StreamingDetector(DetectorConfig config) : config_(config) {
  CTC_REQUIRE(config_.threshold > 0.0);
}

void StreamingDetector::push_chips(std::span<const double> soft_chips) {
  CTC_TELEM_COUNT("defense", "streaming_chips", soft_chips.size());
  const cplx rotation = config_.builder.rotate_to_axes
                            ? cplx{std::sqrt(0.5), -std::sqrt(0.5)}
                            : cplx{1.0, 0.0};
  for (double chip : soft_chips) {
    if (!pending_chip_) {
      pending_chip_ = chip;
      continue;
    }
    cumulants_.push(cplx{*pending_chip_, chip} * rotation);
    pending_chip_.reset();
  }
}

std::optional<Verdict> StreamingDetector::verdict(std::size_t min_points) const {
  if (cumulants_.count() < std::max<std::size_t>(min_points, 4)) {
    return std::nullopt;
  }
  CTC_TELEM_COUNT("defense", "cumulant_evals", 1);
  const CumulantEstimates estimates = cumulants_.estimates();
  const cplx c40 = estimates.normalized_c40(config_.noise_variance);
  Verdict verdict;
  verdict.feature.c40 =
      config_.c40_mode == C40Mode::magnitude ? std::abs(c40) : c40.real();
  verdict.feature.c42 = estimates.normalized_c42(config_.noise_variance);
  verdict.distance_sq = verdict.feature.distance_sq();
  verdict.is_attack = verdict.distance_sq >= config_.threshold;
  return verdict;
}

void StreamingDetector::reset() {
  cumulants_.reset();
  pending_chip_.reset();
}

void StreamingDetector::begin_frame() {
  CTC_TELEM_COUNT("defense", "streaming_frames", 1);
  reset();
}

}  // namespace ctc::defense
