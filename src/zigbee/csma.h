// Channel access: energy detection (CCA mode 1) and unslotted CSMA/CA
// (Clause 6.2.5.1).
//
// Sec. IV-B of the paper: before replaying the emulated waveform, the WiFi
// attacker "checks the channel availability using CSMA/CA" and senses
// whether the ZigBee devices are currently communicating. These primitives
// model that step, and double as the victim network's own channel access.
#pragma once

#include <functional>
#include <span>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace ctc::zigbee {

/// Average received power of a CCA window (8 symbol periods = 128 us at the
/// 2450 MHz PHY; any window the caller provides works).
double energy_detect(std::span<const cplx> window);

/// CCA mode 1: busy when the measured energy exceeds the threshold.
/// The 802.15.4 ED threshold is at most 10 dB above receiver sensitivity;
/// callers express it as linear power at baseband.
bool channel_busy(std::span<const cplx> window, double threshold_power);

struct CsmaConfig {
  unsigned mac_min_be = 3;        ///< initial backoff exponent
  unsigned mac_max_be = 5;
  unsigned max_csma_backoffs = 4; ///< attempts before giving up
  double backoff_period_us = 320.0;  ///< 20 symbols at 62.5 ksym/s
};

struct CsmaResult {
  bool success = false;    ///< channel found idle within the attempt budget
  unsigned backoffs = 0;   ///< CCA attempts performed
  double delay_us = 0.0;   ///< total time spent backing off
};

/// Runs unslotted CSMA/CA against a channel-occupancy oracle:
/// `busy_at(t_us)` answers whether the medium is busy at absolute time
/// `t_us` (relative to the call). Deterministic given the RNG.
CsmaResult csma_ca(const std::function<bool(double)>& busy_at,
                   dsp::Rng& rng, CsmaConfig config = {});

/// Builds a busy-oracle from half-open busy intervals [start_us, end_us).
std::function<bool(double)> interval_oracle(
    std::vector<std::pair<double, double>> busy_intervals);

}  // namespace ctc::zigbee
