// IEEE 802.15.4 (2450 MHz O-QPSK PHY) symbol-to-chip spreading sequences.
//
// Each 4-bit symbol maps to a 32-chip pseudo-noise sequence. Symbols 1..7
// are the symbol-0 sequence cyclically rotated right by 4 chips per step;
// symbols 8..15 are symbols 0..7 with the odd-indexed chips inverted
// (conjugation of the underlying MSK waveform). This module generates the
// table once and provides Hamming-distance helpers used by the despread
// logic and by the paper's Fig. 7 chip-error analysis.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace ctc::zigbee {

inline constexpr std::size_t kChipsPerSymbol = 32;
inline constexpr std::size_t kNumSymbols = 16;

using ChipSequence = std::array<std::uint8_t, kChipsPerSymbol>;

/// The full 16 x 32 spreading table (row = symbol value).
const std::array<ChipSequence, kNumSymbols>& chip_table();

/// Chips for one data symbol (0..15).
const ChipSequence& chips_for_symbol(std::uint8_t symbol);

/// Hamming distance between a received 32-chip sequence and a table row.
std::size_t hamming_distance(std::span<const std::uint8_t> received,
                             const ChipSequence& reference);

/// A 32-chip sequence packed into one word: bit i holds chip i. The packed
/// forms let the despreader compare a received block against a table row
/// with one XOR + popcount instead of a 32-iteration byte loop.
using PackedChips = std::uint32_t;

/// The spreading table in packed form (row = symbol value).
const std::array<PackedChips, kNumSymbols>& packed_chip_table();

/// Packs a 32-chip sequence (nonzero byte -> 1 bit). Size must be 32.
PackedChips pack_chips(std::span<const std::uint8_t> chips);

/// Hamming distance of two packed sequences: popcount of the XOR. Agrees
/// exactly with hamming_distance() on the byte forms.
std::size_t hamming_distance_packed(PackedChips a, PackedChips b);

/// Minimum pairwise Hamming distance over all distinct table rows
/// (a property test pins this down; it bounds DSSS error resilience).
std::size_t min_pairwise_distance();

}  // namespace ctc::zigbee
