// General IEEE 802.15.4 MAC framing (Clause 7): frame control field with
// frame types and addressing modes, variable-length MHR, ACK frames, and a
// small MAC entity with sequence numbering, duplicate rejection and ACK
// matching.
//
// frame.h keeps the fixed-layout data frame the PHY experiments use; this
// module models enough of the real MAC that the examples can exchange
// beacon/data/ack/command traffic and the attack can replay a *specific*
// frame type (the paper's attacker replays data frames carrying control
// payloads).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "dsp/types.h"

namespace ctc::zigbee {

enum class FrameType : std::uint8_t {
  beacon = 0,
  data = 1,
  ack = 2,
  command = 3,
};

enum class AddressingMode : std::uint8_t {
  none = 0,
  short_addr = 2,
  extended = 3,
};

/// The 16-bit frame control field (Clause 7.2.1.1).
struct FrameControl {
  FrameType type = FrameType::data;
  bool security_enabled = false;
  bool frame_pending = false;
  bool ack_request = false;
  bool pan_id_compression = true;
  AddressingMode dest_mode = AddressingMode::short_addr;
  AddressingMode src_mode = AddressingMode::short_addr;

  std::uint16_t to_bits() const;
  /// nullopt on reserved frame types / addressing modes.
  static std::optional<FrameControl> from_bits(std::uint16_t bits);
};

/// One address with its mode. `extended_addr` used for AddressingMode::extended.
struct MacAddress {
  AddressingMode mode = AddressingMode::short_addr;
  std::uint16_t short_addr = 0xFFFF;
  std::uint64_t extended_addr = 0;

  static MacAddress none();
  static MacAddress short_address(std::uint16_t addr);
  static MacAddress extended(std::uint64_t addr);

  bool operator==(const MacAddress&) const = default;
};

/// A general MAC frame: FCF + seq + addressing + payload (+ FCS on the wire).
struct GeneralMacFrame {
  FrameControl control;
  std::uint8_t sequence = 0;
  std::uint16_t dest_pan = 0x1A2B;
  MacAddress dest = MacAddress::short_address(0xFFFF);
  MacAddress src = MacAddress::short_address(0x0000);
  bytevec payload;

  /// Serializes MHR + payload + FCS into a PSDU (<= 127 bytes).
  bytevec serialize() const;

  /// Parses a PSDU; nullopt on truncation, bad FCS, or reserved fields.
  static std::optional<GeneralMacFrame> parse(std::span<const std::uint8_t> psdu);

  /// The immediate acknowledgement (Clause 7.3.3) for this frame.
  GeneralMacFrame make_ack() const;
};

/// Minimal MAC entity: assigns sequence numbers, filters duplicates by
/// (source, sequence), matches ACKs to pending transmissions.
class MacEntity {
 public:
  explicit MacEntity(MacAddress self, std::uint16_t pan_id = 0x1A2B);

  /// Builds the next outgoing data frame to `dest`.
  GeneralMacFrame make_data_frame(const MacAddress& dest, bytevec payload,
                                  bool ack_request = true);

  /// Handles an incoming frame addressed to this entity. Returns the ACK to
  /// send back when the frame requests one (and is not a duplicate);
  /// nullopt otherwise. Duplicate data frames are still ACKed but flagged.
  struct RxOutcome {
    bool accepted = false;   ///< for us, valid, not a duplicate
    bool duplicate = false;
    std::optional<GeneralMacFrame> ack;
  };
  RxOutcome handle(const GeneralMacFrame& frame);

  /// True when `ack` acknowledges the last frame sent by this entity.
  bool matches_pending(const GeneralMacFrame& ack) const;

  const MacAddress& address() const { return self_; }

 private:
  MacAddress self_;
  std::uint16_t pan_id_;
  std::uint8_t next_sequence_ = 0;
  std::optional<std::uint8_t> pending_sequence_;
  // Last sequence seen per short source address (tiny cache).
  std::optional<std::pair<std::uint16_t, std::uint8_t>> last_seen_;
};

}  // namespace ctc::zigbee
