// Minimal APP layer used by the paper's experiments: the evaluation sends
// the texts "00000" through "00099" as payloads (Sec. VII-C1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "zigbee/frame.h"

namespace ctc::zigbee {

/// Builds the MAC frame carrying one zero-padded 5-digit text message.
MacFrame make_text_frame(unsigned index, std::uint8_t sequence_number);

/// The full "00000".."00099" workload of Sec. VII-C1.
std::vector<MacFrame> make_text_workload(unsigned count = 100);

/// Extracts the text payload back out of a received frame.
std::string text_of(const MacFrame& frame);

}  // namespace ctc::zigbee
