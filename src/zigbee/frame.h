// 802.15.4 framing: MAC data frames (with CRC-16 FCS) and the PHY PPDU
// (preamble + SFD + PHR + PSDU), plus byte/symbol packing helpers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dsp/types.h"

namespace ctc::zigbee {

inline constexpr std::uint8_t kSfd = 0xA7;
inline constexpr std::size_t kPreambleBytes = 4;  // eight '0' symbols
inline constexpr std::size_t kMaxPsduBytes = 127;

/// ITU-T CRC-16 as used for the 802.15.4 FCS (poly 0x1021, reflected
/// implementation 0x8408, init 0x0000, LSB-first over the MHR + payload).
std::uint16_t crc16_fcs(std::span<const std::uint8_t> data);

/// Splits bytes into 4-bit symbols, low nibble first (802.15.4 bit order).
std::vector<std::uint8_t> bytes_to_symbols(std::span<const std::uint8_t> bytes);

/// Re-packs 4-bit symbols (even count) into bytes, low nibble first.
bytevec symbols_to_bytes(std::span<const std::uint8_t> symbols);

/// Minimal MAC data frame: frame control + sequence number + short
/// destination/source addressing + payload + FCS.
struct MacFrame {
  std::uint16_t frame_control = 0x8841;  // data frame, short addrs, intra-PAN
  std::uint8_t sequence = 0;
  std::uint16_t pan_id = 0x1A2B;
  std::uint16_t dest_addr = 0x0001;
  std::uint16_t src_addr = 0x0002;
  bytevec payload;

  /// Serializes MHR + payload + FCS into a PSDU.
  bytevec serialize() const;

  /// Parses a PSDU; returns nullopt if too short or the FCS check fails.
  static std::optional<MacFrame> parse(std::span<const std::uint8_t> psdu);
};

/// PHY protocol data unit: SHR (preamble + SFD) + PHR (length) + PSDU.
struct Ppdu {
  bytevec psdu;

  /// Serializes the full over-the-air byte sequence.
  /// Requires psdu.size() <= 127.
  bytevec serialize() const;

  /// Number of 4-bit symbols in the serialized PPDU for a given PSDU size.
  static std::size_t symbol_count(std::size_t psdu_bytes);

  /// Byte offset of the PHR within a serialized PPDU.
  static constexpr std::size_t phr_offset() { return kPreambleBytes + 1; }
};

}  // namespace ctc::zigbee
