#include "zigbee/mac.h"

#include "dsp/require.h"
#include "zigbee/frame.h"

namespace ctc::zigbee {

namespace {

void push_u16(bytevec& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
}

void push_u64(bytevec& out, std::uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>((value >> (8 * b)) & 0xFF));
  }
}

}  // namespace

std::uint16_t FrameControl::to_bits() const {
  std::uint16_t bits = 0;
  bits |= static_cast<std::uint16_t>(type);
  if (security_enabled) bits |= 1u << 3;
  if (frame_pending) bits |= 1u << 4;
  if (ack_request) bits |= 1u << 5;
  if (pan_id_compression) bits |= 1u << 6;
  bits |= static_cast<std::uint16_t>(dest_mode) << 10;
  bits |= static_cast<std::uint16_t>(src_mode) << 14;
  return bits;
}

std::optional<FrameControl> FrameControl::from_bits(std::uint16_t bits) {
  const std::uint8_t type_bits = bits & 0x7;
  if (type_bits > 3) return std::nullopt;
  auto mode_of = [](std::uint16_t value) -> std::optional<AddressingMode> {
    switch (value & 0x3) {
      case 0: return AddressingMode::none;
      case 2: return AddressingMode::short_addr;
      case 3: return AddressingMode::extended;
      default: return std::nullopt;  // 1 is reserved
    }
  };
  const auto dest = mode_of(bits >> 10);
  const auto src = mode_of(bits >> 14);
  if (!dest || !src) return std::nullopt;
  FrameControl control;
  control.type = static_cast<FrameType>(type_bits);
  control.security_enabled = bits & (1u << 3);
  control.frame_pending = bits & (1u << 4);
  control.ack_request = bits & (1u << 5);
  control.pan_id_compression = bits & (1u << 6);
  control.dest_mode = *dest;
  control.src_mode = *src;
  return control;
}

MacAddress MacAddress::none() {
  MacAddress addr;
  addr.mode = AddressingMode::none;
  return addr;
}

MacAddress MacAddress::short_address(std::uint16_t value) {
  MacAddress addr;
  addr.mode = AddressingMode::short_addr;
  addr.short_addr = value;
  return addr;
}

MacAddress MacAddress::extended(std::uint64_t value) {
  MacAddress addr;
  addr.mode = AddressingMode::extended;
  addr.extended_addr = value;
  return addr;
}

bytevec GeneralMacFrame::serialize() const {
  CTC_REQUIRE_MSG(control.dest_mode == dest.mode && control.src_mode == src.mode,
                  "frame control addressing modes must match the addresses");
  bytevec out;
  push_u16(out, control.to_bits());
  out.push_back(sequence);
  if (dest.mode != AddressingMode::none) {
    push_u16(out, dest_pan);
    if (dest.mode == AddressingMode::short_addr) {
      push_u16(out, dest.short_addr);
    } else {
      push_u64(out, dest.extended_addr);
    }
  }
  if (src.mode != AddressingMode::none) {
    if (!control.pan_id_compression || dest.mode == AddressingMode::none) {
      push_u16(out, dest_pan);  // source PAN (same PAN in this model)
    }
    if (src.mode == AddressingMode::short_addr) {
      push_u16(out, src.short_addr);
    } else {
      push_u64(out, src.extended_addr);
    }
  }
  out.insert(out.end(), payload.begin(), payload.end());
  CTC_REQUIRE_MSG(out.size() + 2 <= kMaxPsduBytes, "frame exceeds 127 bytes");
  const std::uint16_t fcs = crc16_fcs(out);
  out.push_back(static_cast<std::uint8_t>(fcs & 0xFF));
  out.push_back(static_cast<std::uint8_t>(fcs >> 8));
  return out;
}

std::optional<GeneralMacFrame> GeneralMacFrame::parse(
    std::span<const std::uint8_t> psdu) {
  if (psdu.size() < 5) return std::nullopt;  // FCF + seq + FCS
  const std::uint16_t stored_fcs = static_cast<std::uint16_t>(
      psdu[psdu.size() - 2] | (psdu[psdu.size() - 1] << 8));
  if (crc16_fcs(psdu.subspan(0, psdu.size() - 2)) != stored_fcs) {
    return std::nullopt;
  }
  const std::uint16_t fcf = static_cast<std::uint16_t>(psdu[0] | (psdu[1] << 8));
  const auto control = FrameControl::from_bits(fcf);
  if (!control) return std::nullopt;

  GeneralMacFrame frame;
  frame.control = *control;
  frame.sequence = psdu[2];
  std::size_t cursor = 3;
  auto read_u16 = [&](std::uint16_t& value) {
    if (cursor + 2 > psdu.size() - 2) return false;
    value = static_cast<std::uint16_t>(psdu[cursor] | (psdu[cursor + 1] << 8));
    cursor += 2;
    return true;
  };
  auto read_u64 = [&](std::uint64_t& value) {
    if (cursor + 8 > psdu.size() - 2) return false;
    value = 0;
    for (int b = 0; b < 8; ++b) {
      value |= static_cast<std::uint64_t>(psdu[cursor + b]) << (8 * b);
    }
    cursor += 8;
    return true;
  };

  if (control->dest_mode != AddressingMode::none) {
    if (!read_u16(frame.dest_pan)) return std::nullopt;
    frame.dest.mode = control->dest_mode;
    if (control->dest_mode == AddressingMode::short_addr) {
      if (!read_u16(frame.dest.short_addr)) return std::nullopt;
    } else if (!read_u64(frame.dest.extended_addr)) {
      return std::nullopt;
    }
  } else {
    frame.dest = MacAddress::none();
  }
  if (control->src_mode != AddressingMode::none) {
    if (!control->pan_id_compression ||
        control->dest_mode == AddressingMode::none) {
      std::uint16_t src_pan = 0;
      if (!read_u16(src_pan)) return std::nullopt;
    }
    frame.src.mode = control->src_mode;
    if (control->src_mode == AddressingMode::short_addr) {
      if (!read_u16(frame.src.short_addr)) return std::nullopt;
    } else if (!read_u64(frame.src.extended_addr)) {
      return std::nullopt;
    }
  } else {
    frame.src = MacAddress::none();
  }
  frame.payload.assign(psdu.begin() + static_cast<long>(cursor), psdu.end() - 2);
  return frame;
}

GeneralMacFrame GeneralMacFrame::make_ack() const {
  GeneralMacFrame ack;
  ack.control.type = FrameType::ack;
  ack.control.ack_request = false;
  ack.control.pan_id_compression = false;
  ack.control.dest_mode = AddressingMode::none;
  ack.control.src_mode = AddressingMode::none;
  ack.dest = MacAddress::none();
  ack.src = MacAddress::none();
  ack.sequence = sequence;
  return ack;
}

MacEntity::MacEntity(MacAddress self, std::uint16_t pan_id)
    : self_(self), pan_id_(pan_id) {}

GeneralMacFrame MacEntity::make_data_frame(const MacAddress& dest,
                                           bytevec payload, bool ack_request) {
  GeneralMacFrame frame;
  frame.control.type = FrameType::data;
  frame.control.ack_request = ack_request;
  frame.control.dest_mode = dest.mode;
  frame.control.src_mode = self_.mode;
  frame.sequence = next_sequence_++;
  frame.dest_pan = pan_id_;
  frame.dest = dest;
  frame.src = self_;
  frame.payload = std::move(payload);
  pending_sequence_ = frame.sequence;
  return frame;
}

MacEntity::RxOutcome MacEntity::handle(const GeneralMacFrame& frame) {
  RxOutcome outcome;
  // Address filter: for us, or broadcast.
  const bool for_us =
      frame.dest.mode == AddressingMode::none ||
      (frame.dest.mode == self_.mode && frame.dest == self_) ||
      (frame.dest.mode == AddressingMode::short_addr &&
       frame.dest.short_addr == 0xFFFF);
  if (!for_us || frame.dest_pan != pan_id_) return outcome;

  if (frame.control.type == FrameType::data &&
      frame.src.mode == AddressingMode::short_addr) {
    if (last_seen_ && last_seen_->first == frame.src.short_addr &&
        last_seen_->second == frame.sequence) {
      outcome.duplicate = true;
    }
    last_seen_ = {frame.src.short_addr, frame.sequence};
  }
  outcome.accepted = !outcome.duplicate;
  if (frame.control.ack_request) outcome.ack = frame.make_ack();
  return outcome;
}

bool MacEntity::matches_pending(const GeneralMacFrame& ack) const {
  return pending_sequence_ && ack.control.type == FrameType::ack &&
         ack.sequence == *pending_sequence_;
}

}  // namespace ctc::zigbee
