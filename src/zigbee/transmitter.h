// ZigBee transmitter: APP/MAC bytes -> PPDU -> DSSS chips -> O-QPSK
// baseband waveform (Fig. 1, left half).
#pragma once

#include <span>

#include "dsp/types.h"
#include "zigbee/frame.h"
#include "zigbee/oqpsk.h"

namespace ctc::zigbee {

struct TransmitterConfig {
  std::size_t samples_per_chip = 2;  ///< 4 MHz sample rate at 2 Mchip/s
  bool normalize_power = true;       ///< unit average TX power (paper Sec. VII-B)
};

class Transmitter {
 public:
  explicit Transmitter(TransmitterConfig config = {});

  /// Full PHY chain for an arbitrary PSDU.
  cvec transmit_psdu(std::span<const std::uint8_t> psdu) const;

  /// Serializes and transmits a MAC frame.
  cvec transmit_frame(const MacFrame& frame) const;

  /// Chip stream for a PSDU (diagnostics / attack ground truth).
  std::vector<std::uint8_t> chips_for_psdu(
      std::span<const std::uint8_t> psdu) const;

  /// Reference waveform of the SHR (preamble + SFD), used by receiver
  /// synchronization and phase estimation.
  cvec shr_reference() const;

  const TransmitterConfig& config() const { return config_; }

 private:
  TransmitterConfig config_;
  OqpskModulator modulator_;
};

}  // namespace ctc::zigbee
