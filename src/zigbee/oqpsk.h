// Half-sine O-QPSK modulation and demodulation (802.15.4, 2450 MHz PHY).
//
// Even-indexed chips ride the in-phase branch, odd-indexed chips the
// quadrature branch delayed by one chip period Tc (the "offset" in O-QPSK).
// Every chip is shaped with a half-sine pulse spanning 2 Tc, which makes the
// waveform constant-envelope (MSK-equivalent).
//
// Timeline: chip i's pulse occupies samples [i*spc, i*spc + 2*spc), so a
// stream of N chips produces (N + 1) * spc samples; one 32-chip symbol
// nominally occupies 32*spc samples (64 samples = 16 us at 4 MHz, spc = 2).
//
// The demodulator is a synchronized matched filter (integrate-and-dump
// against the half-sine) producing one *soft chip value* per chip — exactly
// the "input of the DSSS demodulation" that the paper's defense uses to
// rebuild a QPSK constellation (Sec. VI-A2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/types.h"

namespace ctc::zigbee {

class OqpskModulator {
 public:
  explicit OqpskModulator(std::size_t samples_per_chip = 2);

  /// Modulates a chip stream (values 0/1) into complex baseband.
  /// Output length: (chips.size() + 1) * samples_per_chip.
  cvec modulate(std::span<const std::uint8_t> chips) const;

  std::size_t samples_per_chip() const { return samples_per_chip_; }

 private:
  std::size_t samples_per_chip_;
  rvec pulse_;
};

class OqpskDemodulator {
 public:
  explicit OqpskDemodulator(std::size_t samples_per_chip = 2);

  /// Matched-filters `num_chips` chips out of a synchronized waveform
  /// (sample 0 = start of chip 0). Returns one soft value per chip,
  /// normalized so a clean unit-amplitude waveform yields approximately ±1.
  /// Requires waveform.size() >= (num_chips + 1) * samples_per_chip.
  rvec soft_chips(std::span<const cplx> waveform, std::size_t num_chips) const;

  /// Noncoherent FM-discriminator demodulation (the GNU Radio 802.15.4
  /// receiver the paper's USRP testbed uses, ref. [22]): per chip interval,
  /// the accumulated phase rotation between the previous chip's pulse peak
  /// and this chip's, normalized so a clean MSK waveform yields +-1.
  /// Value i reflects the transition c_{i-1} -> c_i:
  ///   f_i = s_i * (2 c_{i-1} - 1)(2 c_i - 1),  s_i = +1 (i odd) / -1 (i even).
  /// f_0 has no predecessor chip and is not meaningful.
  /// Insensitive to complex gain and phase offset, and nearly insensitive to
  /// CFO — which is exactly why the paper's defense tap sees a clean QPSK
  /// cloud for authentic traffic in the real environment.
  rvec frequency_chips(std::span<const cplx> waveform, std::size_t num_chips) const;

  /// Incremental forms: extend `soft`/`chips` in place from their current
  /// size up to `num_chips`, computing only the chips not yet present. Both
  /// demodulations are strictly per-chip (chip i reads only its own sample
  /// window), so extending a prefix is bit-identical to recomputing the
  /// full stream — the receiver relies on that to demodulate the header
  /// once, learn the frame length, and then extend to the full frame
  /// without redoing (or re-rounding) a single chip. The soft extension
  /// must start on an even chip so the I/Q branch parity of the offset
  /// call matches the absolute chip index.
  void extend_soft_chips(std::span<const cplx> waveform, std::size_t num_chips,
                         rvec& soft) const;
  void extend_frequency_chips(std::span<const cplx> waveform,
                              std::size_t num_chips, rvec& chips) const;

  /// Hard decision: soft value > 0 -> chip 1.
  static std::vector<std::uint8_t> hard_decision(std::span<const double> soft);

  /// Instantaneous phase (radians, unwrapped) of the waveform — the "output
  /// of OQPSK demodulation" the paper shows in Fig. 9a when discussing
  /// frequency-based defenses.
  static rvec instantaneous_phase(std::span<const cplx> waveform);

  std::size_t samples_per_chip() const { return samples_per_chip_; }

 private:
  std::size_t samples_per_chip_;
  rvec pulse_;
  double pulse_energy_;
};

}  // namespace ctc::zigbee
