#include "zigbee/transmitter.h"

#include "dsp/require.h"
#include "dsp/stats.h"
#include "sim/telemetry.h"
#include "zigbee/dsss.h"

namespace ctc::zigbee {

Transmitter::Transmitter(TransmitterConfig config)
    : config_(config), modulator_(config.samples_per_chip) {}

std::vector<std::uint8_t> Transmitter::chips_for_psdu(
    std::span<const std::uint8_t> psdu) const {
  Ppdu ppdu;
  ppdu.psdu.assign(psdu.begin(), psdu.end());
  const bytevec bytes = ppdu.serialize();
  const auto symbols = bytes_to_symbols(bytes);
  return spread(symbols);
}

cvec Transmitter::transmit_psdu(std::span<const std::uint8_t> psdu) const {
  CTC_TELEM_TIMER("zigbee_tx", "transmit");
  const auto chips = chips_for_psdu(psdu);
  cvec waveform = modulator_.modulate(chips);
  if (config_.normalize_power) waveform = dsp::normalize_power(waveform);
  CTC_TELEM_COUNT("zigbee_tx", "frames", 1);
  CTC_TELEM_COUNT("zigbee_tx", "chips", chips.size());
  CTC_TELEM_COUNT("zigbee_tx", "samples", waveform.size());
  return waveform;
}

cvec Transmitter::transmit_frame(const MacFrame& frame) const {
  return transmit_psdu(frame.serialize());
}

cvec Transmitter::shr_reference() const {
  bytevec shr(kPreambleBytes, 0x00);
  shr.push_back(kSfd);
  const auto symbols = bytes_to_symbols(shr);
  const auto chips = spread(symbols);
  return modulator_.modulate(chips);
}

}  // namespace ctc::zigbee
