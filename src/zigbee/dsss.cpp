#include "zigbee/dsss.h"

#include "dsp/require.h"

namespace ctc::zigbee {

std::vector<std::uint8_t> spread(std::span<const std::uint8_t> symbols) {
  std::vector<std::uint8_t> chips;
  chips.reserve(symbols.size() * kChipsPerSymbol);
  for (std::uint8_t symbol : symbols) {
    const ChipSequence& sequence = chips_for_symbol(symbol);
    chips.insert(chips.end(), sequence.begin(), sequence.end());
  }
  return chips;
}

DespreadResult despread_block(std::span<const std::uint8_t> chips,
                              std::size_t threshold) {
  CTC_REQUIRE(chips.size() == kChipsPerSymbol);
  DespreadResult result;
  std::size_t best = kChipsPerSymbol + 1;
  const auto& table = chip_table();
  for (std::size_t s = 0; s < kNumSymbols; ++s) {
    const std::size_t distance = hamming_distance(chips, table[s]);
    if (distance < best) {
      best = distance;
      result.symbol = static_cast<std::uint8_t>(s);
    }
  }
  result.distance = best;
  result.accepted = best <= threshold;
  return result;
}

DespreadResult despread_differential_block(std::span<const double> freq_chips,
                                           std::uint8_t previous_chip,
                                           std::size_t threshold) {
  CTC_REQUIRE(freq_chips.size() == kChipsPerSymbol);
  DespreadResult result;
  std::size_t best = kChipsPerSymbol + 1;
  const auto& table = chip_table();
  for (std::size_t s = 0; s < kNumSymbols; ++s) {
    const ChipSequence& q = table[s];
    std::size_t distance = 0;
    for (std::size_t j = 0; j < kChipsPerSymbol; ++j) {
      const int sign_j = (j % 2 == 1) ? 1 : -1;
      int predicted;
      if (j == 0) {
        if (previous_chip > 1) continue;  // no predecessor: skip chip 0
        predicted = sign_j * (2 * previous_chip - 1) * (2 * q[0] - 1);
      } else {
        predicted = sign_j * (2 * q[j - 1] - 1) * (2 * q[j] - 1);
      }
      const int observed = freq_chips[j] > 0.0 ? 1 : -1;
      if (observed != predicted) ++distance;
    }
    if (distance < best) {
      best = distance;
      result.symbol = static_cast<std::uint8_t>(s);
    }
  }
  result.distance = best;
  result.accepted = best <= threshold;
  return result;
}

std::vector<DespreadResult> despread_differential(
    std::span<const double> freq_chips, std::size_t threshold) {
  CTC_REQUIRE_MSG(freq_chips.size() % kChipsPerSymbol == 0,
                  "chip stream must contain whole symbols");
  std::vector<DespreadResult> results;
  results.reserve(freq_chips.size() / kChipsPerSymbol);
  std::uint8_t previous_chip = 2;  // first block has no predecessor
  for (std::size_t offset = 0; offset < freq_chips.size();
       offset += kChipsPerSymbol) {
    const DespreadResult block = despread_differential_block(
        freq_chips.subspan(offset, kChipsPerSymbol), previous_chip, threshold);
    previous_chip = chips_for_symbol(block.symbol)[kChipsPerSymbol - 1];
    results.push_back(block);
  }
  return results;
}

std::vector<DespreadResult> despread(std::span<const std::uint8_t> chips,
                                     std::size_t threshold) {
  CTC_REQUIRE_MSG(chips.size() % kChipsPerSymbol == 0,
                  "chip stream must contain whole symbols");
  std::vector<DespreadResult> results;
  results.reserve(chips.size() / kChipsPerSymbol);
  for (std::size_t offset = 0; offset < chips.size(); offset += kChipsPerSymbol) {
    results.push_back(
        despread_block(chips.subspan(offset, kChipsPerSymbol), threshold));
  }
  return results;
}

}  // namespace ctc::zigbee
