#include "zigbee/dsss.h"

#include <bit>
#include <vector>

#include "dsp/kernels/kernels.h"
#include "dsp/require.h"

namespace ctc::zigbee {

namespace {

// Differential-domain signatures of every candidate sequence, precomputed
// once. For chips j >= 1 the predicted discriminator sign depends only on
// the candidate:
//   predicted_j = sign_j * (2 q[j-1] - 1)(2 q[j] - 1), sign_j = +1 (j odd).
// Chip 0 additionally depends on the last chip of the previous symbol, so
// each row carries two chip-0 variants (previous chip 0 / 1).
struct DifferentialSignature {
  PackedChips tail_bits = 0;                 // bits 1..31: predicted == +1
  std::array<PackedChips, 2> chip0_bit{};    // bit 0 variant per previous chip
};

const std::array<DifferentialSignature, kNumSymbols>& differential_table() {
  static const std::array<DifferentialSignature, kNumSymbols> table = [] {
    std::array<DifferentialSignature, kNumSymbols> out{};
    const auto& rows = chip_table();
    for (std::size_t s = 0; s < kNumSymbols; ++s) {
      const ChipSequence& q = rows[s];
      for (std::size_t j = 1; j < kChipsPerSymbol; ++j) {
        const int sign_j = (j % 2 == 1) ? 1 : -1;
        const int predicted = sign_j * (2 * q[j - 1] - 1) * (2 * q[j] - 1);
        if (predicted > 0) out[s].tail_bits |= PackedChips{1} << j;
      }
      for (std::uint8_t previous = 0; previous < 2; ++previous) {
        const int predicted = -(2 * previous - 1) * (2 * q[0] - 1);  // sign_0 = -1
        if (predicted > 0) out[s].chip0_bit[previous] = PackedChips{1};
      }
    }
    return out;
  }();
  return table;
}

/// Packs the observed discriminator signs: bit j = (freq_chips[j] > 0).
PackedChips pack_frequency_signs(std::span<const double> freq_chips) {
  PackedChips packed = 0;
  for (std::size_t j = 0; j < kChipsPerSymbol; ++j) {
    if (freq_chips[j] > 0.0) packed |= PackedChips{1} << j;
  }
  return packed;
}

}  // namespace

std::vector<std::uint8_t> spread(std::span<const std::uint8_t> symbols) {
  std::vector<std::uint8_t> chips;
  chips.reserve(symbols.size() * kChipsPerSymbol);
  for (std::uint8_t symbol : symbols) {
    const ChipSequence& sequence = chips_for_symbol(symbol);
    chips.insert(chips.end(), sequence.begin(), sequence.end());
  }
  return chips;
}

DespreadResult despread_block(std::span<const std::uint8_t> chips,
                              std::size_t threshold) {
  CTC_REQUIRE(chips.size() == kChipsPerSymbol);
  DespreadResult result;
  std::size_t best = kChipsPerSymbol + 1;
  const PackedChips received = pack_chips(chips);
  const auto& table = packed_chip_table();
  for (std::size_t s = 0; s < kNumSymbols; ++s) {
    const std::size_t distance = hamming_distance_packed(received, table[s]);
    if (distance < best) {
      best = distance;
      result.symbol = static_cast<std::uint8_t>(s);
    }
  }
  result.distance = best;
  result.accepted = best <= threshold;
  return result;
}

DespreadResult despread_block_reference(std::span<const std::uint8_t> chips,
                                        std::size_t threshold) {
  CTC_REQUIRE(chips.size() == kChipsPerSymbol);
  DespreadResult result;
  std::size_t best = kChipsPerSymbol + 1;
  const auto& table = chip_table();
  for (std::size_t s = 0; s < kNumSymbols; ++s) {
    const std::size_t distance = hamming_distance(chips, table[s]);
    if (distance < best) {
      best = distance;
      result.symbol = static_cast<std::uint8_t>(s);
    }
  }
  result.distance = best;
  result.accepted = best <= threshold;
  return result;
}

DespreadResult despread_differential_block(std::span<const double> freq_chips,
                                           std::uint8_t previous_chip,
                                           std::size_t threshold) {
  CTC_REQUIRE(freq_chips.size() == kChipsPerSymbol);
  DespreadResult result;
  std::size_t best = kChipsPerSymbol + 1;
  const PackedChips observed = pack_frequency_signs(freq_chips);
  // No predecessor: chip 0 is excluded from every candidate's distance.
  const PackedChips mask =
      previous_chip > 1 ? ~PackedChips{1} : ~PackedChips{0};
  const auto& table = differential_table();
  for (std::size_t s = 0; s < kNumSymbols; ++s) {
    PackedChips predicted = table[s].tail_bits;
    if (previous_chip <= 1) predicted |= table[s].chip0_bit[previous_chip];
    const std::size_t distance =
        static_cast<std::size_t>(std::popcount((observed ^ predicted) & mask));
    if (distance < best) {
      best = distance;
      result.symbol = static_cast<std::uint8_t>(s);
    }
  }
  result.distance = best;
  result.accepted = best <= threshold;
  return result;
}

DespreadResult despread_differential_block_reference(
    std::span<const double> freq_chips, std::uint8_t previous_chip,
    std::size_t threshold) {
  CTC_REQUIRE(freq_chips.size() == kChipsPerSymbol);
  DespreadResult result;
  std::size_t best = kChipsPerSymbol + 1;
  const auto& table = chip_table();
  for (std::size_t s = 0; s < kNumSymbols; ++s) {
    const ChipSequence& q = table[s];
    std::size_t distance = 0;
    for (std::size_t j = 0; j < kChipsPerSymbol; ++j) {
      const int sign_j = (j % 2 == 1) ? 1 : -1;
      int predicted;
      if (j == 0) {
        if (previous_chip > 1) continue;  // no predecessor: skip chip 0
        predicted = sign_j * (2 * previous_chip - 1) * (2 * q[0] - 1);
      } else {
        predicted = sign_j * (2 * q[j - 1] - 1) * (2 * q[j] - 1);
      }
      const int observed = freq_chips[j] > 0.0 ? 1 : -1;
      if (observed != predicted) ++distance;
    }
    if (distance < best) {
      best = distance;
      result.symbol = static_cast<std::uint8_t>(s);
    }
  }
  result.distance = best;
  result.accepted = best <= threshold;
  return result;
}

namespace {

// The 16 predicted-sign rows for each previous-chip context, assembled once
// from the differential signatures so the per-block loop is one packed
// match against a precomputed row set.
struct DifferentialRowSets {
  std::array<PackedChips, kNumSymbols> first;  // no predecessor (mask ~1)
  std::array<PackedChips, kNumSymbols> prev0;  // previous chip = 0
  std::array<PackedChips, kNumSymbols> prev1;  // previous chip = 1
};

const DifferentialRowSets& differential_row_sets() {
  static const DifferentialRowSets sets = [] {
    DifferentialRowSets out{};
    const auto& table = differential_table();
    for (std::size_t s = 0; s < kNumSymbols; ++s) {
      out.first[s] = table[s].tail_bits;
      out.prev0[s] = table[s].tail_bits | table[s].chip0_bit[0];
      out.prev1[s] = table[s].tail_bits | table[s].chip0_bit[1];
    }
    return out;
  }();
  return sets;
}

}  // namespace

std::vector<DespreadResult> despread_differential(
    std::span<const double> freq_chips, std::size_t threshold) {
  CTC_REQUIRE_MSG(freq_chips.size() % kChipsPerSymbol == 0,
                  "chip stream must contain whole symbols");
  const std::size_t blocks = freq_chips.size() / kChipsPerSymbol;
  std::vector<DespreadResult> results;
  results.reserve(blocks);
  if (blocks == 0) return results;
  const auto& kt = dsp::kernels::active();
  // Sign packing is embarrassingly parallel — do the whole stream at once.
  thread_local std::vector<PackedChips> packed;
  packed.resize(blocks);
  kt.pack_sign_chips(freq_chips.data(), blocks, packed.data());
  // The symbol chain itself stays sequential: block k's row set depends on
  // the decoded last chip of block k-1.
  const DifferentialRowSets& sets = differential_row_sets();
  std::uint8_t previous_chip = 2;  // first block has no predecessor
  for (std::size_t k = 0; k < blocks; ++k) {
    const PackedChips* rows = previous_chip > 1 ? sets.first.data()
                              : previous_chip == 0 ? sets.prev0.data()
                                                   : sets.prev1.data();
    const PackedChips mask =
        previous_chip > 1 ? ~PackedChips{1} : ~PackedChips{0};
    std::uint8_t symbol = 0;
    std::uint8_t distance = 0;
    kt.match16(packed[k], rows, mask, &symbol, &distance);
    previous_chip = chips_for_symbol(symbol)[kChipsPerSymbol - 1];
    DespreadResult block;
    block.symbol = symbol;
    block.distance = distance;
    block.accepted = distance <= threshold;
    results.push_back(block);
  }
  return results;
}

std::vector<DespreadResult> despread(std::span<const std::uint8_t> chips,
                                     std::size_t threshold) {
  CTC_REQUIRE_MSG(chips.size() % kChipsPerSymbol == 0,
                  "chip stream must contain whole symbols");
  const std::size_t blocks = chips.size() / kChipsPerSymbol;
  std::vector<DespreadResult> results(blocks);
  if (blocks == 0) return results;
  // Batched path: pack every block, then run the vectorized 16-row match
  // over the whole word stream (8 words per AVX2 iteration).
  const auto& kt = dsp::kernels::active();
  thread_local std::vector<PackedChips> packed;
  thread_local std::vector<std::uint8_t> symbols;
  thread_local std::vector<std::uint8_t> distances;
  packed.resize(blocks);
  symbols.resize(blocks);
  distances.resize(blocks);
  kt.pack_hard_chips(chips.data(), blocks, packed.data());
  kt.despread_words(packed.data(), blocks, packed_chip_table().data(),
                    ~PackedChips{0}, symbols.data(), distances.data());
  for (std::size_t k = 0; k < blocks; ++k) {
    results[k].symbol = symbols[k];
    results[k].distance = distances[k];
    results[k].accepted = distances[k] <= threshold;
  }
  return results;
}

}  // namespace ctc::zigbee
