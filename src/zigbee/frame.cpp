#include "zigbee/frame.h"

#include "dsp/require.h"

namespace ctc::zigbee {

std::uint16_t crc16_fcs(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0x0000;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 1) {
        crc = static_cast<std::uint16_t>((crc >> 1) ^ 0x8408);
      } else {
        crc >>= 1;
      }
    }
  }
  return crc;
}

std::vector<std::uint8_t> bytes_to_symbols(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> symbols;
  symbols.reserve(bytes.size() * 2);
  for (std::uint8_t byte : bytes) {
    symbols.push_back(byte & 0x0F);
    symbols.push_back(static_cast<std::uint8_t>(byte >> 4));
  }
  return symbols;
}

bytevec symbols_to_bytes(std::span<const std::uint8_t> symbols) {
  CTC_REQUIRE(symbols.size() % 2 == 0);
  bytevec bytes;
  bytes.reserve(symbols.size() / 2);
  for (std::size_t i = 0; i < symbols.size(); i += 2) {
    CTC_REQUIRE(symbols[i] < 16 && symbols[i + 1] < 16);
    bytes.push_back(
        static_cast<std::uint8_t>(symbols[i] | (symbols[i + 1] << 4)));
  }
  return bytes;
}

bytevec MacFrame::serialize() const {
  bytevec out;
  out.reserve(11 + payload.size());
  out.push_back(static_cast<std::uint8_t>(frame_control & 0xFF));
  out.push_back(static_cast<std::uint8_t>(frame_control >> 8));
  out.push_back(sequence);
  out.push_back(static_cast<std::uint8_t>(pan_id & 0xFF));
  out.push_back(static_cast<std::uint8_t>(pan_id >> 8));
  out.push_back(static_cast<std::uint8_t>(dest_addr & 0xFF));
  out.push_back(static_cast<std::uint8_t>(dest_addr >> 8));
  out.push_back(static_cast<std::uint8_t>(src_addr & 0xFF));
  out.push_back(static_cast<std::uint8_t>(src_addr >> 8));
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t fcs = crc16_fcs(out);
  out.push_back(static_cast<std::uint8_t>(fcs & 0xFF));
  out.push_back(static_cast<std::uint8_t>(fcs >> 8));
  return out;
}

std::optional<MacFrame> MacFrame::parse(std::span<const std::uint8_t> psdu) {
  constexpr std::size_t kHeaderBytes = 9;
  constexpr std::size_t kFcsBytes = 2;
  if (psdu.size() < kHeaderBytes + kFcsBytes) return std::nullopt;
  const std::uint16_t stored_fcs = static_cast<std::uint16_t>(
      psdu[psdu.size() - 2] | (psdu[psdu.size() - 1] << 8));
  if (crc16_fcs(psdu.subspan(0, psdu.size() - kFcsBytes)) != stored_fcs) {
    return std::nullopt;
  }
  MacFrame frame;
  frame.frame_control = static_cast<std::uint16_t>(psdu[0] | (psdu[1] << 8));
  frame.sequence = psdu[2];
  frame.pan_id = static_cast<std::uint16_t>(psdu[3] | (psdu[4] << 8));
  frame.dest_addr = static_cast<std::uint16_t>(psdu[5] | (psdu[6] << 8));
  frame.src_addr = static_cast<std::uint16_t>(psdu[7] | (psdu[8] << 8));
  frame.payload.assign(psdu.begin() + kHeaderBytes, psdu.end() - kFcsBytes);
  return frame;
}

bytevec Ppdu::serialize() const {
  CTC_REQUIRE_MSG(psdu.size() <= kMaxPsduBytes, "PSDU exceeds 127 bytes");
  bytevec out;
  out.reserve(kPreambleBytes + 2 + psdu.size());
  out.insert(out.end(), kPreambleBytes, 0x00);
  out.push_back(kSfd);
  out.push_back(static_cast<std::uint8_t>(psdu.size()));
  out.insert(out.end(), psdu.begin(), psdu.end());
  return out;
}

std::size_t Ppdu::symbol_count(std::size_t psdu_bytes) {
  return 2 * (kPreambleBytes + 2 + psdu_bytes);
}

}  // namespace ctc::zigbee
