// Direct Sequence Spread Spectrum spreading / despreading.
//
// Spreading multiplies each 4-bit symbol into its 32-chip PN sequence.
// Despreading is the hard-decision correlation of Fig. 1: the received
// 32-chip block is compared against every table row; if the best Hamming
// distance is within the receiver's correlation threshold the block decodes
// to that symbol, otherwise it is dropped (Sec. III-B1). The emulation
// attack survives precisely because of this tolerance.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "zigbee/chip_sequences.h"

namespace ctc::zigbee {

/// Spreads a sequence of 4-bit symbols (each < 16) into chips.
std::vector<std::uint8_t> spread(std::span<const std::uint8_t> symbols);

struct DespreadResult {
  std::uint8_t symbol = 0;       ///< best-matching symbol value
  std::size_t distance = 0;      ///< its Hamming distance
  bool accepted = false;         ///< distance <= threshold
};

/// Despreads one 32-chip block with the given correlation threshold
/// (maximum tolerated Hamming distance). Packs the block once and matches
/// all 16 table rows with XOR + popcount; bit-identical to
/// despread_block_reference() (same distances, same tie-break order).
DespreadResult despread_block(std::span<const std::uint8_t> chips,
                              std::size_t threshold);

/// Byte-level reference implementation of despread_block(): the
/// pre-optimization 16 x 32 Hamming loop, kept as the equivalence-test
/// oracle for the packed fast path.
DespreadResult despread_block_reference(std::span<const std::uint8_t> chips,
                                        std::size_t threshold);

/// Despreads a whole chip stream (size must be a multiple of 32). Blocks over
/// threshold are reported with accepted == false; callers decide whether to
/// drop the frame.
std::vector<DespreadResult> despread(std::span<const std::uint8_t> chips,
                                     std::size_t threshold);

/// Differential despreading for the noncoherent (FM discriminator) receive
/// path of the GNU Radio 802.15.4 testbed (paper ref. [22]). The
/// discriminator outputs one frequency value per chip,
///   f_i = s_i * (2 c_{i-1} - 1)(2 c_i - 1),  s_i = +1 (i odd) / -1 (i even),
/// so each candidate chip sequence is matched in this differential domain.
/// The first chip of each block depends on the last chip of the previous
/// symbol; it is carried across blocks (and skipped for the very first
/// block, where no predecessor exists).
std::vector<DespreadResult> despread_differential(
    std::span<const double> freq_chips, std::size_t threshold);

/// Single-block differential matcher. `previous_chip` < 2 is the last chip
/// of the preceding symbol; pass 2 to exclude chip 0 from the distance.
/// Packs the observed frequency signs once and matches every candidate's
/// precomputed differential signature with XOR + popcount; bit-identical to
/// despread_differential_block_reference().
DespreadResult despread_differential_block(std::span<const double> freq_chips,
                                           std::uint8_t previous_chip,
                                           std::size_t threshold);

/// Per-chip reference implementation of despread_differential_block(), kept
/// as the equivalence-test oracle for the packed fast path.
DespreadResult despread_differential_block_reference(
    std::span<const double> freq_chips, std::uint8_t previous_chip,
    std::size_t threshold);

}  // namespace ctc::zigbee
