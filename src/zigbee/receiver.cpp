#include "zigbee/receiver.h"

#include <cmath>

#include "dsp/kernels/kernels.h"
#include "dsp/require.h"
#include "dsp/resample.h"
#include "sim/telemetry.h"
#include "zigbee/dsss.h"
#include "zigbee/transmitter.h"

namespace ctc::zigbee {

namespace {

constexpr std::size_t kShrSymbols = 2 * (kPreambleBytes + 1);  // 10
constexpr std::size_t kPhrSymbols = 2;
constexpr std::size_t kHeaderSymbols = kShrSymbols + kPhrSymbols;

}  // namespace

ReceiverProfile ReceiverProfile::usrp() {
  ReceiverProfile profile;
  profile.name = "usrp";
  // The paper's "feasible threshold" is 10 in the chip domain; one chip error
  // flips two adjacent values in the differential domain this profile
  // despreads in, and 9 here reproduces the paper's Table II success curve.
  profile.correlation_threshold = 9;
  profile.sensitivity_gain_db = 0.0;
  profile.demod = DemodKind::differential;
  return profile;
}

ReceiverProfile ReceiverProfile::cc26x2r1() {
  ReceiverProfile profile;
  profile.name = "cc26x2r1";
  profile.correlation_threshold = 10;
  profile.sensitivity_gain_db = 6.0;
  profile.demod = DemodKind::coherent;
  return profile;
}

Receiver::Receiver(ReceiverConfig config)
    : config_(config), demodulator_(config.samples_per_chip) {
  TransmitterConfig tx_config;
  tx_config.samples_per_chip = config_.samples_per_chip;
  tx_config.normalize_power = false;  // reference amplitude = 1 per branch
  shr_reference_ = Transmitter(tx_config).shr_reference();

  if (config_.timing_recovery && config_.precompute_timing_grid) {
    // Same tau sequence and energy summation order as the per-frame search,
    // so the cached grid reproduces its metrics bit-for-bit.
    const std::size_t window =
        kShrSymbols * kChipsPerSymbol * config_.samples_per_chip;
    for (double tau = -config_.timing_search_range;
         tau <= config_.timing_search_range + 1e-12;
         tau += config_.timing_search_step) {
      TimingReference entry;
      entry.tau = tau;
      entry.reference =
          dsp::fractional_delay(std::span<const cplx>(shr_reference_), tau);
      CTC_REQUIRE(entry.reference.size() >= window);
      entry.window_energy =
          dsp::kernels::active().energy(entry.reference.data(), window);
      timing_grid_.push_back(std::move(entry));
    }
  }
}

ReceiveResult Receiver::receive(std::span<const cplx> waveform) const {
  CTC_TELEM_TIMER("zigbee_rx", "receive");
  CTC_TELEM_COUNT("zigbee_rx", "frames", 1);
  ReceiveResult result;
  const std::size_t spc = config_.samples_per_chip;
  const std::size_t shr_chips = kShrSymbols * kChipsPerSymbol;
  const std::size_t header_chips = kHeaderSymbols * kChipsPerSymbol;
  if (waveform.size() < (header_chips + 1) * spc) return result;

  // Clock recovery (Fig. 1): maximize the SHR correlation magnitude over a
  // sub-sample timing grid, then undo the winning fractional delay. The
  // shifted references (and their window energies) come from the grid
  // precomputed at construction; the fallback re-derives them per call.
  thread_local cvec retimed;
  const dsp::kernels::KernelTable& kt = dsp::kernels::active();
  if (config_.timing_recovery) {
    const std::size_t window = shr_chips * spc;
    double best_metric = -1.0;
    double best_offset = 0.0;
    const auto score_candidate = [&](double tau,
                                     std::span<const cplx> shifted_reference,
                                     double reference_energy) {
      const cplx correlation =
          kt.dot_conj(waveform.data(), shifted_reference.data(), window);
      // Normalize: linear interpolation attenuates the shifted reference,
      // which would otherwise bias the search toward tau = 0.
      const double metric =
          reference_energy > 0.0 ? std::norm(correlation) / reference_energy : 0.0;
      if (metric > best_metric) {
        best_metric = metric;
        best_offset = tau;
      }
    };
    if (!timing_grid_.empty()) {
      for (const TimingReference& entry : timing_grid_) {
        score_candidate(entry.tau, entry.reference, entry.window_energy);
      }
    } else {
      for (double tau = -config_.timing_search_range;
           tau <= config_.timing_search_range + 1e-12;
           tau += config_.timing_search_step) {
        const cvec shifted_reference =
            dsp::fractional_delay(std::span<const cplx>(shr_reference_), tau);
        const double reference_energy =
            kt.energy(shifted_reference.data(), window);
        score_candidate(tau, shifted_reference, reference_energy);
      }
    }
    if (best_offset != 0.0) {
      retimed = dsp::fractional_delay(waveform, -best_offset);
      waveform = retimed;
      result.timing_offset_estimate = best_offset;
    }
  }

  // Data-aided channel estimate over the SHR window: h = <r, ref> / ||ref||^2.
  // The coherent path needs it; the discriminator path is gain/phase
  // agnostic but shares the equalized buffer for simplicity. Thread-local
  // scratch: receive() runs on every Monte Carlo trial, and this copy was
  // the per-trial allocation high-water mark.
  //
  // The copy (and the division below) is staged: only the header span is
  // equalized up front; once the PHR reveals the frame length the buffer is
  // extended to exactly the frame. Callers hand receive() a span sized for
  // the LARGEST admissible frame (the scanner's bounded lookahead), so
  // equalizing the whole span would process ~3.6x the samples a typical
  // frame occupies. cdiv is elementwise, so the staged division rounds
  // every sample exactly as the one-shot division did.
  thread_local cvec equalized;
  const std::size_t header_samples = (header_chips + 1) * spc;
  equalized.assign(waveform.begin(),
                   waveform.begin() +
                       static_cast<std::ptrdiff_t>(header_samples));
  bool equalizer_applied = false;
  cplx equalizer_h{1.0, 0.0};
  if (config_.equalize) {
    const std::size_t window = shr_chips * spc;
    const cplx correlation =
        kt.dot_conj(waveform.data(), shr_reference_.data(), window);
    const double reference_energy = kt.energy(shr_reference_.data(), window);
    const cplx h = correlation / reference_energy;
    if (std::abs(h) > 1e-9) {
      result.channel_estimate = h;
      kt.cdiv(equalized.data(), equalized.size(), h);
      equalizer_applied = true;
      equalizer_h = h;
    }
    // Noise estimate from the residual r - h*ref over the SHR window.
    double residual_energy = 0.0;
    double signal_energy = 0.0;
    for (std::size_t i = 0; i < window; ++i) {
      residual_energy += std::norm(waveform[i] - h * shr_reference_[i]);
      signal_energy += std::norm(h * shr_reference_[i]);
    }
    result.noise_variance_estimate = residual_energy / static_cast<double>(window);
    if (result.noise_variance_estimate > 0.0 && signal_energy > 0.0) {
      result.snr_estimate_db =
          10.0 * std::log10(signal_energy / residual_energy);
    }
  }

  const bool differential = config_.profile.demod == DemodKind::differential;
  const std::size_t threshold = config_.profile.correlation_threshold;

  // Chip caches shared by the header pass, the defense taps, and the final
  // despread. Both demodulations are per-chip, so extending a cache is
  // bit-identical to the full-stream calls this code used to make — the
  // header's chips are demodulated once instead of three times (header
  // despread, full-frame tap, full-frame despread).
  thread_local rvec freq_cache;
  thread_local rvec soft_cache;
  freq_cache.clear();
  soft_cache.clear();
  const auto freq_upto = [&](std::size_t num_chips) -> const rvec& {
    demodulator_.extend_frequency_chips(equalized, num_chips, freq_cache);
    return freq_cache;
  };
  const auto soft_upto = [&](std::size_t num_chips) -> const rvec& {
    demodulator_.extend_soft_chips(equalized, num_chips, soft_cache);
    return soft_cache;
  };
  auto despread_stream = [&](std::size_t num_chips) {
    if (differential) {
      const rvec& chips = freq_upto(num_chips);
      return despread_differential(
          std::span<const double>(chips.data(), num_chips), threshold);
    }
    const rvec& soft = soft_upto(num_chips);
    const auto hard = OqpskDemodulator::hard_decision(
        std::span<const double>(soft.data(), num_chips));
    return despread(hard, threshold);
  };

  // Pass 1: header only, to learn the frame length.
  const auto header_symbols = despread_stream(header_chips);

  // Preamble: eight 0 symbols; SFD 0xA7 -> symbols {7, 10} (low nibble first).
  bool shr_ok = true;
  for (std::size_t s = 0; s < 2 * kPreambleBytes; ++s) {
    if (!header_symbols[s].accepted || header_symbols[s].symbol != 0) {
      shr_ok = false;
    }
  }
  const auto& sfd_low = header_symbols[2 * kPreambleBytes];
  const auto& sfd_high = header_symbols[2 * kPreambleBytes + 1];
  if (!sfd_low.accepted || sfd_low.symbol != (kSfd & 0x0F)) shr_ok = false;
  if (!sfd_high.accepted || sfd_high.symbol != (kSfd >> 4)) shr_ok = false;
  result.shr_ok = shr_ok;
  if (shr_ok) CTC_TELEM_COUNT("zigbee_rx", "shr_ok", 1);

  // PHR: frame length.
  const auto& len_low = header_symbols[kShrSymbols];
  const auto& len_high = header_symbols[kShrSymbols + 1];
  if (!len_low.accepted || !len_high.accepted) return result;
  const std::size_t psdu_bytes =
      (static_cast<std::size_t>(len_high.symbol) << 4) | len_low.symbol;
  const std::size_t psdu_chips = 2 * psdu_bytes * kChipsPerSymbol;
  const std::size_t total_chips = header_chips + psdu_chips;
  if (psdu_bytes == 0 || psdu_bytes > kMaxPsduBytes ||
      waveform.size() < (total_chips + 1) * spc) {
    return result;
  }
  result.phr_ok = true;
  CTC_TELEM_COUNT("zigbee_rx", "phr_ok", 1);

  // The frame length is now known: extend the equalized buffer (copy +
  // staged cdiv, same per-sample rounding) from the header to exactly the
  // frame's samples.
  const std::size_t frame_samples = (total_chips + 1) * spc;
  equalized.insert(equalized.end(),
                   waveform.begin() +
                       static_cast<std::ptrdiff_t>(equalized.size()),
                   waveform.begin() +
                       static_cast<std::ptrdiff_t>(frame_samples));
  if (equalizer_applied) {
    kt.cdiv(equalized.data() + header_samples,
            frame_samples - header_samples, equalizer_h);
  }

  // Pass 2: the whole frame, so differential chip boundaries carry across
  // the PHR/PSDU seam. The caches already hold the header's chips; only the
  // PSDU chips are demodulated here.
  const rvec& all_soft = soft_upto(total_chips);
  result.soft_chips.assign(all_soft.begin() + header_chips, all_soft.end());
  const rvec& all_freq = freq_upto(total_chips);
  result.freq_chips.assign(all_freq.begin() + header_chips, all_freq.end());
  result.hard_chips = OqpskDemodulator::hard_decision(result.soft_chips);

  const auto all_symbols = despread_stream(total_chips);
  result.psdu_complete = true;
  std::vector<std::uint8_t> symbol_values;
  symbol_values.reserve(all_symbols.size() - kHeaderSymbols);
  for (std::size_t s = kHeaderSymbols; s < all_symbols.size(); ++s) {
    result.hamming_distances.push_back(all_symbols[s].distance);
    // The statistic of the paper's Fig. 7: chip Hamming distance of the
    // best-matching sequence, per PSDU symbol.
    CTC_TELEM_HISTO("zigbee_rx", "symbol_hamming", all_symbols[s].distance);
    if (!all_symbols[s].accepted) result.psdu_complete = false;
    symbol_values.push_back(all_symbols[s].symbol);
  }
  result.psdu = symbols_to_bytes(symbol_values);
  if (result.psdu_complete) {
    result.mac = MacFrame::parse(result.psdu);
  }
  if (result.frame_ok()) CTC_TELEM_COUNT("zigbee_rx", "frames_ok", 1);
  return result;
}

std::optional<std::size_t> Receiver::synchronize(std::span<const cplx> waveform,
                                                 std::size_t max_offset) const {
  const std::size_t window = shr_reference_.size();
  if (waveform.size() < window) return std::nullopt;
  max_offset = std::min(max_offset, waveform.size() - window);

  const dsp::kernels::KernelTable& kt = dsp::kernels::active();
  const double reference_energy = kt.energy(shr_reference_.data(), window);

  std::size_t best_offset = 0;
  double best_metric = 0.0;
  for (std::size_t offset = 0; offset <= max_offset; ++offset) {
    const cplx correlation =
        kt.dot_conj(waveform.data() + offset, shr_reference_.data(), window);
    const double received_energy = kt.energy(waveform.data() + offset, window);
    if (received_energy <= 0.0) continue;
    // Normalized correlation in [0, 1].
    const double metric =
        std::norm(correlation) / (received_energy * reference_energy);
    if (metric > best_metric) {
      best_metric = metric;
      best_offset = offset;
    }
  }
  // A true SHR correlates strongly; noise-only peaks stay far below 0.5.
  if (best_metric < 0.25) return std::nullopt;
  return best_offset;
}

}  // namespace ctc::zigbee
