#include "zigbee/oqpsk.h"

#include <cmath>

#include "dsp/kernels/kernels.h"
#include "dsp/pulse.h"
#include "dsp/require.h"

namespace ctc::zigbee {

OqpskModulator::OqpskModulator(std::size_t samples_per_chip)
    : samples_per_chip_(samples_per_chip),
      pulse_(dsp::half_sine_pulse(samples_per_chip)) {
  CTC_REQUIRE(samples_per_chip >= 1);
}

cvec OqpskModulator::modulate(std::span<const std::uint8_t> chips) const {
  const std::size_t spc = samples_per_chip_;
  cvec waveform((chips.size() + 1) * spc, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < chips.size(); ++i) {
    const double amplitude = chips[i] ? 1.0 : -1.0;
    const std::size_t start = i * spc;
    const bool in_phase = (i % 2 == 0);
    for (std::size_t s = 0; s < pulse_.size(); ++s) {
      const double value = amplitude * pulse_[s];
      if (in_phase) {
        waveform[start + s] += cplx{value, 0.0};
      } else {
        waveform[start + s] += cplx{0.0, value};
      }
    }
  }
  return waveform;
}

OqpskDemodulator::OqpskDemodulator(std::size_t samples_per_chip)
    : samples_per_chip_(samples_per_chip),
      pulse_(dsp::half_sine_pulse(samples_per_chip)) {
  CTC_REQUIRE(samples_per_chip >= 1);
  pulse_energy_ = 0.0;
  for (double p : pulse_) pulse_energy_ += p * p;
}

rvec OqpskDemodulator::soft_chips(std::span<const cplx> waveform,
                                  std::size_t num_chips) const {
  rvec soft;
  extend_soft_chips(waveform, num_chips, soft);
  return soft;
}

void OqpskDemodulator::extend_soft_chips(std::span<const cplx> waveform,
                                         std::size_t num_chips,
                                         rvec& soft) const {
  const std::size_t spc = samples_per_chip_;
  CTC_REQUIRE_MSG(waveform.size() >= (num_chips + 1) * spc,
                  "waveform too short for requested chip count");
  const std::size_t first = soft.size();
  if (first >= num_chips) return;
  // Even start keeps the sub-call's chip parity (I vs Q branch) aligned
  // with the absolute chip index, so chip i's dot product is the one the
  // full-stream call would have computed.
  CTC_REQUIRE_MSG(first % 2 == 0, "soft-chip extension must start even");
  soft.resize(num_chips);
  // Matched filter through the dispatched kernel (AVX2 deinterleaves the
  // waveform once and runs contiguous dot products against the pulse).
  dsp::kernels::active().oqpsk_mf(waveform.data() + first * spc,
                                  num_chips - first, spc, pulse_.data(),
                                  pulse_.size(), pulse_energy_,
                                  soft.data() + first);
}

rvec OqpskDemodulator::frequency_chips(std::span<const cplx> waveform,
                                       std::size_t num_chips) const {
  rvec chips;
  extend_frequency_chips(waveform, num_chips, chips);
  return chips;
}

void OqpskDemodulator::extend_frequency_chips(std::span<const cplx> waveform,
                                              std::size_t num_chips,
                                              rvec& chips) const {
  const std::size_t spc = samples_per_chip_;
  CTC_REQUIRE_MSG(waveform.size() >= (num_chips + 1) * spc,
                  "waveform too short for requested chip count");
  const std::size_t first = chips.size();
  if (first >= num_chips) return;
  chips.resize(num_chips, 0.0);
  for (std::size_t i = first; i < num_chips; ++i) {
    double rotation = 0.0;
    // Transitions spanning [i*spc, (i+1)*spc]: peak of chip i-1 to peak of
    // chip i.
    for (std::size_t s = i * spc + 1; s <= (i + 1) * spc; ++s) {
      const cplx step = waveform[s] * std::conj(waveform[s - 1]);
      if (std::norm(step) > 1e-24) {
        rotation += std::atan2(step.imag(), step.real());
      }
    }
    chips[i] = rotation / (kPi / 2.0);  // clean MSK rotates +-pi/2 per chip
  }
}

std::vector<std::uint8_t> OqpskDemodulator::hard_decision(
    std::span<const double> soft) {
  std::vector<std::uint8_t> chips(soft.size());
  for (std::size_t i = 0; i < soft.size(); ++i) {
    chips[i] = soft[i] > 0.0 ? 1 : 0;
  }
  return chips;
}

rvec OqpskDemodulator::instantaneous_phase(std::span<const cplx> waveform) {
  rvec phase(waveform.size());
  double offset = 0.0;
  double previous = 0.0;
  for (std::size_t i = 0; i < waveform.size(); ++i) {
    double raw = std::atan2(waveform[i].imag(), waveform[i].real());
    if (i > 0) {
      while (raw + offset - previous > kPi) offset -= kTwoPi;
      while (raw + offset - previous < -kPi) offset += kTwoPi;
    }
    phase[i] = raw + offset;
    previous = phase[i];
  }
  return phase;
}

}  // namespace ctc::zigbee
