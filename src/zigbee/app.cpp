#include "zigbee/app.h"

#include <cstdio>

#include "dsp/require.h"

namespace ctc::zigbee {

MacFrame make_text_frame(unsigned index, std::uint8_t sequence_number) {
  CTC_REQUIRE(index <= 99999);
  char text[8];
  std::snprintf(text, sizeof text, "%05u", index);
  MacFrame frame;
  frame.sequence = sequence_number;
  frame.payload.assign(text, text + 5);
  return frame;
}

std::vector<MacFrame> make_text_workload(unsigned count) {
  std::vector<MacFrame> frames;
  frames.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    frames.push_back(make_text_frame(i, static_cast<std::uint8_t>(i & 0xFF)));
  }
  return frames;
}

std::string text_of(const MacFrame& frame) {
  return std::string(frame.payload.begin(), frame.payload.end());
}

}  // namespace ctc::zigbee
