// ZigBee receiver: synchronization, data-aided phase/gain equalization,
// O-QPSK matched-filter demodulation, hard-decision DSSS despreading with a
// correlation threshold, PPDU parsing and MAC CRC check (Fig. 1, right half).
//
// The receiver also exposes the *soft chip samples* of the PSDU — the input
// of the DSSS demodulator — which is exactly the tap the paper's defense
// uses to rebuild a QPSK constellation (Sec. VI-A2).
#pragma once

#include <optional>
#include <span>
#include <string>

#include "dsp/types.h"
#include "zigbee/frame.h"
#include "zigbee/oqpsk.h"

namespace ctc::zigbee {

/// Chip demodulation strategy.
enum class DemodKind {
  /// Noncoherent FM discriminator + differential despreading — the GNU
  /// Radio 802.15.4 chain of the paper's USRP testbed (ref. [22]).
  differential,
  /// Coherent matched filter + direct despreading — a hardware-grade
  /// receiver like the CC26x2R1 ("stronger demodulation functions",
  /// Sec. VII-D).
  coherent,
};

/// Differences between the two physical receivers of Sec. VII-D.
struct ReceiverProfile {
  std::string name = "usrp";
  /// Maximum tolerated Hamming distance in DSSS despreading.
  std::size_t correlation_threshold = 10;
  /// Extra link budget vs the USRP chain (better LNA/antenna of the
  /// commodity chip); consumed by the sim layer as an SNR bonus.
  double sensitivity_gain_db = 0.0;
  DemodKind demod = DemodKind::differential;

  static ReceiverProfile usrp();
  static ReceiverProfile cc26x2r1();
};

struct ReceiveResult {
  bool shr_ok = false;   ///< preamble + SFD recognized
  bool phr_ok = false;   ///< length field decoded and frame fits the capture
  bool psdu_complete = false;  ///< every PSDU symbol within threshold
  bytevec psdu;                ///< best-guess decoded PSDU bytes
  std::optional<MacFrame> mac;  ///< parsed MAC frame when the FCS checks out

  /// Per-PSDU-symbol Hamming distance of the best-matching chip sequence
  /// (the statistic of the paper's Fig. 7).
  std::vector<std::size_t> hamming_distances;

  /// Coherent (matched filter) soft chip values of the PSDU after
  /// equalization (Fig. 9b chip amplitudes).
  rvec soft_chips;
  /// Noncoherent (FM discriminator) frequency values of the PSDU chips —
  /// the paper's defense tap (Sec. VI-A2) and Fig. 9a.
  rvec freq_chips;
  /// Hard chip decisions of the PSDU (coherent path).
  std::vector<std::uint8_t> hard_chips;

  /// Complex channel estimate used for equalization.
  cplx channel_estimate{1.0, 0.0};

  /// Data-aided noise estimate from the SHR residual: per-sample complex
  /// noise variance and the implied SNR. Only meaningful when equalization
  /// ran and the frame is a genuine 802.15.4 SHR (otherwise the "noise"
  /// includes all the model mismatch). Feeds the defense's optional
  /// noise-variance correction.
  double noise_variance_estimate = 0.0;
  double snr_estimate_db = 0.0;

  /// Fractional-sample timing offset estimated (and corrected) by clock
  /// recovery; 0 when timing_recovery is disabled.
  double timing_offset_estimate = 0.0;

  /// Frame accepted end-to-end (what "successful rate" counts in Table II).
  bool frame_ok() const { return shr_ok && phr_ok && psdu_complete && mac.has_value(); }
};

struct ReceiverConfig {
  std::size_t samples_per_chip = 2;
  ReceiverProfile profile;
  /// When false the soft chips are taken without phase equalization
  /// (diagnostics of raw front-end output).
  bool equalize = true;
  /// Data-aided clock recovery (the "Clock Recovery" block of the paper's
  /// Fig. 1): estimate the fractional-sample timing offset against the SHR
  /// reference on a sub-sample grid and correct it before demodulation.
  /// Off by default to keep the calibrated experiment profiles unchanged;
  /// the ablation tests show the low-SNR gain under timing offsets.
  bool timing_recovery = false;
  /// Timing search half-range (fractions of a sample) and grid step.
  double timing_search_range = 0.5;
  double timing_search_step = 0.0625;
  /// Build the fractional-delay reference grid once at construction instead
  /// of re-deriving every shifted SHR reference per frame per tau. The
  /// cached search is bit-identical to the per-call one (same tau sequence,
  /// same summation order); the flag exists so the equivalence tests can
  /// pin the reference path.
  bool precompute_timing_grid = true;
};

class Receiver {
 public:
  explicit Receiver(ReceiverConfig config = {});

  /// Decodes one frame from a synchronized waveform (sample 0 = first sample
  /// of the PPDU). Never throws on bad data — failures are flagged in the
  /// result.
  ReceiveResult receive(std::span<const cplx> waveform) const;

  /// Searches for the frame start by cross-correlating against the SHR
  /// reference waveform over [0, max_offset]. Returns the best offset or
  /// nullopt when the peak is too weak to be a frame.
  std::optional<std::size_t> synchronize(std::span<const cplx> waveform,
                                         std::size_t max_offset) const;

  const ReceiverConfig& config() const { return config_; }

 private:
  /// One clock-recovery candidate: the SHR reference delayed by tau, with
  /// its correlation-window energy preaccumulated in the same order the
  /// per-frame search would have used.
  struct TimingReference {
    double tau = 0.0;
    cvec reference;
    double window_energy = 0.0;
  };

  ReceiverConfig config_;
  OqpskDemodulator demodulator_;
  cvec shr_reference_;
  std::vector<TimingReference> timing_grid_;  ///< empty unless precomputed
};

}  // namespace ctc::zigbee
