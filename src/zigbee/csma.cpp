#include "zigbee/csma.h"

#include "dsp/require.h"
#include "dsp/stats.h"

namespace ctc::zigbee {

double energy_detect(std::span<const cplx> window) {
  CTC_REQUIRE(!window.empty());
  return dsp::average_power(window);
}

bool channel_busy(std::span<const cplx> window, double threshold_power) {
  CTC_REQUIRE(threshold_power > 0.0);
  return energy_detect(window) > threshold_power;
}

CsmaResult csma_ca(const std::function<bool(double)>& busy_at, dsp::Rng& rng,
                   CsmaConfig config) {
  CTC_REQUIRE(config.mac_min_be <= config.mac_max_be);
  CTC_REQUIRE(config.mac_max_be < 16);
  CsmaResult result;
  unsigned backoff_exponent = config.mac_min_be;
  double now_us = 0.0;
  for (unsigned attempt = 0; attempt <= config.max_csma_backoffs; ++attempt) {
    const std::uint64_t slots =
        rng.uniform_index((std::uint64_t{1} << backoff_exponent));
    now_us += static_cast<double>(slots) * config.backoff_period_us;
    ++result.backoffs;
    if (!busy_at(now_us)) {
      result.success = true;
      result.delay_us = now_us;
      return result;
    }
    backoff_exponent = std::min(backoff_exponent + 1, config.mac_max_be);
  }
  result.delay_us = now_us;
  return result;
}

std::function<bool(double)> interval_oracle(
    std::vector<std::pair<double, double>> busy_intervals) {
  return [intervals = std::move(busy_intervals)](double t_us) {
    for (const auto& [start, end] : intervals) {
      if (t_us >= start && t_us < end) return true;
    }
    return false;
  };
}

}  // namespace ctc::zigbee
