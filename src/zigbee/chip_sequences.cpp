#include "zigbee/chip_sequences.h"

#include <algorithm>
#include <bit>

#include "dsp/require.h"

namespace ctc::zigbee {

namespace {

// Symbol-0 sequence, chips c0..c31 (IEEE 802.15.4-2015 Table 10-14).
constexpr ChipSequence kSymbol0 = {
    1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
    0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0};

ChipSequence rotate_right(const ChipSequence& sequence, std::size_t amount) {
  ChipSequence out{};
  for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
    out[(i + amount) % kChipsPerSymbol] = sequence[i];
  }
  return out;
}

ChipSequence invert_odd_chips(const ChipSequence& sequence) {
  ChipSequence out = sequence;
  for (std::size_t i = 1; i < kChipsPerSymbol; i += 2) out[i] ^= 1;
  return out;
}

std::array<ChipSequence, kNumSymbols> build_table() {
  std::array<ChipSequence, kNumSymbols> table{};
  for (std::size_t s = 0; s < 8; ++s) table[s] = rotate_right(kSymbol0, 4 * s);
  for (std::size_t s = 8; s < 16; ++s) table[s] = invert_odd_chips(table[s - 8]);
  return table;
}

}  // namespace

const std::array<ChipSequence, kNumSymbols>& chip_table() {
  static const std::array<ChipSequence, kNumSymbols> table = build_table();
  return table;
}

const ChipSequence& chips_for_symbol(std::uint8_t symbol) {
  CTC_REQUIRE(symbol < kNumSymbols);
  return chip_table()[symbol];
}

const std::array<PackedChips, kNumSymbols>& packed_chip_table() {
  static const std::array<PackedChips, kNumSymbols> table = [] {
    std::array<PackedChips, kNumSymbols> packed{};
    const auto& rows = chip_table();
    for (std::size_t s = 0; s < kNumSymbols; ++s) {
      packed[s] = pack_chips(rows[s]);
    }
    return packed;
  }();
  return table;
}

PackedChips pack_chips(std::span<const std::uint8_t> chips) {
  CTC_REQUIRE(chips.size() == kChipsPerSymbol);
  PackedChips packed = 0;
  for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
    // Branchless so the pack loop pipelines; chip values are 0/1 but any
    // nonzero byte counts as a 1 chip, matching hamming_distance().
    packed |= static_cast<PackedChips>(chips[i] != 0) << i;
  }
  return packed;
}

std::size_t hamming_distance_packed(PackedChips a, PackedChips b) {
  return static_cast<std::size_t>(std::popcount(a ^ b));
}

std::size_t hamming_distance(std::span<const std::uint8_t> received,
                             const ChipSequence& reference) {
  CTC_REQUIRE(received.size() == kChipsPerSymbol);
  std::size_t distance = 0;
  for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
    if ((received[i] != 0) != (reference[i] != 0)) ++distance;
  }
  return distance;
}

std::size_t min_pairwise_distance() {
  const auto& table = chip_table();
  std::size_t best = kChipsPerSymbol;
  for (std::size_t a = 0; a < kNumSymbols; ++a) {
    for (std::size_t b = a + 1; b < kNumSymbols; ++b) {
      best = std::min(best, hamming_distance(table[a], table[b]));
    }
  }
  return best;
}

}  // namespace ctc::zigbee
