#include "channel/multipath.h"

#include <cmath>

#include "channel/fading.h"
#include "dsp/require.h"
#include "dsp/stats.h"

namespace ctc::channel {

cvec draw_multipath_taps(const MultipathProfile& profile, dsp::Rng& rng) {
  CTC_REQUIRE(profile.num_taps >= 1);
  CTC_REQUIRE(profile.decay_per_tap_db >= 0.0);
  cvec taps(profile.num_taps);
  double total_power = 0.0;
  rvec tap_power(profile.num_taps);
  for (std::size_t l = 0; l < profile.num_taps; ++l) {
    tap_power[l] = dsp::from_db(-profile.decay_per_tap_db * static_cast<double>(l));
    total_power += tap_power[l];
  }
  for (std::size_t l = 0; l < profile.num_taps; ++l) {
    const double scale = std::sqrt(tap_power[l] / total_power);
    taps[l] = scale * (l == 0 ? rician_tap(profile.k_factor, rng)
                              : rayleigh_tap(rng));
  }
  return taps;
}

cvec apply_multipath(std::span<const cplx> signal, std::span<const cplx> taps) {
  CTC_REQUIRE(!taps.empty());
  cvec out(signal.size(), cplx{0.0, 0.0});
  for (std::size_t n = 0; n < signal.size(); ++n) {
    cplx acc{0.0, 0.0};
    const std::size_t depth = std::min(taps.size(), n + 1);
    for (std::size_t l = 0; l < depth; ++l) acc += taps[l] * signal[n - l];
    out[n] = acc;
  }
  return out;
}

void apply_multipath_inplace(std::span<cplx> signal,
                             std::span<const cplx> taps) {
  CTC_REQUIRE(!taps.empty());
  // Causal convolution reads only indices <= n, so sweeping n backward sees
  // every signal[n - l] before it is overwritten. Same accumulation order
  // per output sample as apply_multipath.
  for (std::size_t n = signal.size(); n-- > 0;) {
    cplx acc{0.0, 0.0};
    const std::size_t depth = std::min(taps.size(), n + 1);
    for (std::size_t l = 0; l < depth; ++l) acc += taps[l] * signal[n - l];
    signal[n] = acc;
  }
}

}  // namespace ctc::channel
