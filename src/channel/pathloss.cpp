#include "channel/pathloss.h"

#include <cmath>

#include "dsp/require.h"

namespace ctc::channel {

double log_distance_db(double value_at_1m_db, double exponent, double meters) {
  CTC_REQUIRE(meters > 0.0);
  return value_at_1m_db - 10.0 * exponent * std::log10(meters);
}

double log_distance_inverse_m(double value_at_1m_db, double exponent,
                              double value_db) {
  CTC_REQUIRE(exponent != 0.0);
  return std::pow(10.0, (value_at_1m_db - value_db) / (10.0 * exponent));
}

double PathLossModel::snr_db(double meters) const {
  return log_distance_db(snr_at_1m_db, exponent, meters);
}

double PathLossModel::rssi_dbm(double meters) const {
  return log_distance_db(rssi_at_1m_dbm, exponent, meters);
}

double PathLossModel::distance_for_rssi(double rssi_dbm) const {
  return log_distance_inverse_m(rssi_at_1m_dbm, exponent, rssi_dbm);
}

}  // namespace ctc::channel
