#include "channel/pathloss.h"

#include <cmath>

#include "dsp/require.h"

namespace ctc::channel {

double PathLossModel::snr_db(double meters) const {
  CTC_REQUIRE(meters > 0.0);
  return snr_at_1m_db - 10.0 * exponent * std::log10(meters);
}

double PathLossModel::rssi_dbm(double meters) const {
  CTC_REQUIRE(meters > 0.0);
  return rssi_at_1m_dbm - 10.0 * exponent * std::log10(meters);
}

}  // namespace ctc::channel
