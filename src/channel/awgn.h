// Additive white Gaussian noise channel.
//
// Matches the paper's convention (Sec. VII-B): the transmitted waveform is
// normalized to unit average power and SNR = 1 / sigma^2, i.e. noise variance
// sigma^2 = 10^(-SNR_dB/10) per complex sample.
#pragma once

#include <span>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace ctc::channel {

/// Adds complex AWGN so the resulting SNR (vs the *measured* signal power)
/// equals `snr_db`. The signal is not rescaled.
cvec add_awgn(std::span<const cplx> signal, double snr_db, dsp::Rng& rng);

/// Adds complex AWGN of fixed per-sample variance `noise_variance`
/// (E|n|^2 = noise_variance), independent of the signal power. This is the
/// paper's SNR = 1/sigma^2 convention when the signal has unit power.
cvec add_noise_variance(std::span<const cplx> signal, double noise_variance,
                        dsp::Rng& rng);

/// In-place variant — bit-identical to add_noise_variance (same per-sample
/// RNG draw order).
void add_noise_variance_inplace(std::span<cplx> signal, double noise_variance,
                                dsp::Rng& rng);

}  // namespace ctc::channel
