#include "channel/environment.h"

#include <algorithm>

#include "channel/awgn.h"
#include "channel/impairments.h"
#include "dsp/require.h"
#include "dsp/stats.h"
#include "sim/telemetry.h"

namespace ctc::channel {

double Environment::effective_snr_db() const {
  return distance_m ? path_loss.snr_db(*distance_m) : snr_db;
}

cvec Environment::propagate(std::span<const cplx> signal, dsp::Rng& rng) const {
  cvec out;
  propagate_into(out, signal, rng);
  return out;
}

void Environment::propagate_into(cvec& out, std::span<const cplx> signal,
                                 dsp::Rng& rng) const {
  CTC_TELEM_TIMER("channel", "propagate");
  CTC_TELEM_COUNT("channel", "frames", 1);
  CTC_TELEM_COUNT("channel", "samples", signal.size());
  CTC_TELEM_GAUGE("channel", "snr_db", effective_snr_db());
  out.assign(signal.begin(), signal.end());
  if (multipath) {
    CTC_TELEM_COUNT("channel", "multipath_fades", 1);
    apply_multipath_inplace(out, draw_multipath_taps(*multipath, rng));
  } else if (rician_k_factor) {
    CTC_TELEM_COUNT("channel", "rician_fades", 1);
    apply_flat_fading_inplace(out, rician_tap(*rician_k_factor, rng));
  }
  const double phase =
      random_phase ? rng.uniform(0.0, kTwoPi) : phase_offset_rad;
  if (cfo_hz != 0.0 || phase != 0.0) {
    apply_cfo_inplace(out, cfo_hz, sample_rate_hz, phase);
  }
  if (timing_offset != 0.0) {
    apply_timing_offset_inplace(out, timing_offset);
  }
  const double noise_variance = dsp::from_db(-effective_snr_db());
  add_noise_variance_inplace(out, noise_variance, rng);
}

void Environment::propagate_batch(dsp::BatchBuffer& out,
                                  std::span<const cplx> signal,
                                  std::span<dsp::Rng> rngs) const {
  CTC_TELEM_TIMER("channel", "propagate_batch");
  CTC_TELEM_COUNT("channel", "frames", rngs.size());
  CTC_TELEM_COUNT("channel", "samples", rngs.size() * signal.size());
  CTC_TELEM_GAUGE("channel", "snr_db", effective_snr_db());
  const std::size_t rows = rngs.size();
  out.reset(rows, signal.size());
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<cplx> row = out.row(r);
    std::copy(signal.begin(), signal.end(), row.begin());
  }
  // Stage-major sweeps. Row r's RNG draw order matches propagate_into():
  // fade first, then the random phase, then the noise samples.
  if (multipath) {
    CTC_TELEM_COUNT("channel", "multipath_fades", rows);
    for (std::size_t r = 0; r < rows; ++r) {
      apply_multipath_inplace(out.row(r),
                              draw_multipath_taps(*multipath, rngs[r]));
    }
  } else if (rician_k_factor) {
    CTC_TELEM_COUNT("channel", "rician_fades", rows);
    for (std::size_t r = 0; r < rows; ++r) {
      apply_flat_fading_inplace(out.row(r),
                                rician_tap(*rician_k_factor, rngs[r]));
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const double phase =
        random_phase ? rngs[r].uniform(0.0, kTwoPi) : phase_offset_rad;
    if (cfo_hz != 0.0 || phase != 0.0) {
      apply_cfo_inplace(out.row(r), cfo_hz, sample_rate_hz, phase);
    }
  }
  if (timing_offset != 0.0) {
    for (std::size_t r = 0; r < rows; ++r) {
      apply_timing_offset_inplace(out.row(r), timing_offset);
    }
  }
  const double noise_variance = dsp::from_db(-effective_snr_db());
  for (std::size_t r = 0; r < rows; ++r) {
    add_noise_variance_inplace(out.row(r), noise_variance, rngs[r]);
  }
}

void propagate_batch_multi(dsp::BatchBuffer& out, std::span<const cplx> signal,
                           std::span<const Environment> envs,
                           std::span<dsp::Rng> rngs) {
  CTC_REQUIRE(envs.size() == rngs.size());
  CTC_TELEM_TIMER("channel", "propagate_batch_multi");
  CTC_TELEM_COUNT("channel", "frames", rngs.size());
  CTC_TELEM_COUNT("channel", "samples", rngs.size() * signal.size());
  const std::size_t rows = rngs.size();
  out.reset(rows, signal.size());
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<cplx> row = out.row(r);
    std::copy(signal.begin(), signal.end(), row.begin());
  }
  // Stage-major sweeps; every per-row branch reads row r's OWN environment.
  // Row r's RNG draw order matches propagate_into(): fade first, then the
  // random phase, then the noise samples — rows with no fade or no random
  // phase simply skip those draws, exactly as the serial path does.
  for (std::size_t r = 0; r < rows; ++r) {
    const Environment& env = envs[r];
    if (env.multipath) {
      CTC_TELEM_COUNT("channel", "multipath_fades", 1);
      apply_multipath_inplace(out.row(r),
                              draw_multipath_taps(*env.multipath, rngs[r]));
    } else if (env.rician_k_factor) {
      CTC_TELEM_COUNT("channel", "rician_fades", 1);
      apply_flat_fading_inplace(out.row(r),
                                rician_tap(*env.rician_k_factor, rngs[r]));
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const Environment& env = envs[r];
    const double phase =
        env.random_phase ? rngs[r].uniform(0.0, kTwoPi) : env.phase_offset_rad;
    if (env.cfo_hz != 0.0 || phase != 0.0) {
      apply_cfo_inplace(out.row(r), env.cfo_hz, env.sample_rate_hz, phase);
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    if (envs[r].timing_offset != 0.0) {
      apply_timing_offset_inplace(out.row(r), envs[r].timing_offset);
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    CTC_TELEM_GAUGE("channel", "snr_db", envs[r].effective_snr_db());
    const double noise_variance = dsp::from_db(-envs[r].effective_snr_db());
    add_noise_variance_inplace(out.row(r), noise_variance, rngs[r]);
  }
}

Environment Environment::awgn(double snr_db) {
  Environment env;
  env.snr_db = snr_db;
  return env;
}

Environment Environment::real_world(double distance_m, double sample_rate_hz) {
  Environment env;
  env.distance_m = distance_m;
  env.rician_k_factor = 8.0;  // strong LoS at 1-8 m with human scatter
  env.cfo_hz = 80.0;          // small residual after coarse correction
  env.random_phase = true;
  env.sample_rate_hz = sample_rate_hz;
  env.timing_offset = 0.25;
  return env;
}

}  // namespace ctc::channel
