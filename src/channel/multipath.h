// Frequency-selective multipath: a random tapped-delay-line channel.
//
// The paper's lab (1-8 m indoor, human activity) has delay spread; over the
// 2 MHz ZigBee channel fading is roughly flat, but a defender looking for
// the attacker's 0.8 us cyclic-prefix repetition (Sec. VI-A1) is implicitly
// doing a *wideband* correlation, and delay spread is what destroys that
// repetition in practice. This model makes the bench for Figs. 8-9 honest.
//
// Model: L discrete taps with exponentially decaying power profile,
// tap 0 Rician (LoS), later taps Rayleigh; total power normalized to 1.
#pragma once

#include <span>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace ctc::channel {

struct MultipathProfile {
  std::size_t num_taps = 4;        ///< channel length in samples
  double decay_per_tap_db = 6.0;   ///< exponential power-delay profile
  double k_factor = 8.0;           ///< Rician K of the first (LoS) tap
};

/// Draws one channel realization (complex taps, unit total average power).
cvec draw_multipath_taps(const MultipathProfile& profile, dsp::Rng& rng);

/// Convolves the signal with the taps ("same" length, causal: output sample
/// n sums taps applied to inputs n, n-1, ...).
cvec apply_multipath(std::span<const cplx> signal, std::span<const cplx> taps);

/// In-place variant — bit-identical to apply_multipath (the backward sweep
/// only reads predecessors that have not been overwritten yet).
void apply_multipath_inplace(std::span<cplx> signal, std::span<const cplx> taps);

}  // namespace ctc::channel
