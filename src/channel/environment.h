// Composable channel environment.
//
// One struct describes everything between transmitter and receiver. Two
// factory presets mirror the paper's two evaluation settings:
//   * Environment::awgn(snr_db)          — Sec. VII-B "ideal scenario"
//   * Environment::real_world(distance)  — Sec. VII-D lab: log-distance path
//     loss, block Rician fading (human activity), CFO and phase offset from
//     unsynchronized oscillators.
#pragma once

#include <optional>
#include <span>

#include "channel/fading.h"
#include "channel/multipath.h"
#include "channel/pathloss.h"
#include "dsp/batch.h"
#include "dsp/rng.h"
#include "dsp/types.h"

namespace ctc::channel {

struct Environment {
  /// SNR used when `distance_m` is empty.
  double snr_db = 30.0;

  /// If set, SNR comes from `path_loss.snr_db(*distance_m)` instead.
  std::optional<double> distance_m;
  PathLossModel path_loss;

  /// Block-fading: one Rician tap per propagate() call. nullopt = no fading.
  std::optional<double> rician_k_factor;

  /// Frequency-selective multipath (one realization per propagate() call).
  /// When set it replaces the flat `rician_k_factor` fade. Needed to model
  /// the delay spread that defeats cyclic-prefix detection (Sec. VI-A1).
  std::optional<MultipathProfile> multipath;

  /// Carrier frequency offset (Hz at `sample_rate_hz`) and static phase.
  double cfo_hz = 0.0;
  double phase_offset_rad = 0.0;
  /// When true, the static phase of each frame is drawn uniformly from
  /// [0, 2pi) (unsynchronized oscillators) and `phase_offset_rad` is ignored.
  bool random_phase = false;

  double sample_rate_hz = 4.0e6;

  /// Fractional-sample timing offset in [0, 1).
  double timing_offset = 0.0;

  /// Effective SNR for this environment (path loss applied if configured).
  double effective_snr_db() const;

  /// Pushes one frame through fading -> CFO/phase -> timing -> AWGN.
  /// The input is assumed unit average power (the paper normalizes TX power);
  /// noise variance is 10^(-snr/10) regardless of instantaneous fade, which
  /// is what makes deep fades hurt.
  cvec propagate(std::span<const cplx> signal, dsp::Rng& rng) const;

  /// Same channel into a caller-owned workspace (resized to the signal
  /// length). Every stage runs in place on `out`, so hot loops that keep a
  /// thread-local buffer pay zero channel allocations per frame. Bit-
  /// identical to propagate(): same stage order, per-sample math and RNG
  /// draw sequence.
  void propagate_into(cvec& out, std::span<const cplx> signal,
                      dsp::Rng& rng) const;

  /// Batched (SoA) channel: pushes `rngs.size()` independent realizations
  /// of the same frame through the channel, one batch row per trial. Stages
  /// run stage-major (fading over all rows, then CFO/phase, then timing,
  /// then noise), but each row consumes ONLY its own RNG stream and in the
  /// same draw order as propagate_into() (fade -> phase -> noise), so row
  /// r is bit-for-bit the serial propagate(signal, rngs[r]) result. `out`
  /// is reshaped to rngs.size() x signal.size().
  void propagate_batch(dsp::BatchBuffer& out, std::span<const cplx> signal,
                       std::span<dsp::Rng> rngs) const;

  static Environment awgn(double snr_db);
  static Environment real_world(double distance_m,
                                double sample_rate_hz = 4.0e6);
};

/// Batched (SoA) channel with a DISTINCT environment per row: row r of `out`
/// is bit-for-bit envs[r].propagate(signal, rngs[r]). This is the multi-
/// sensor sweep Environment::propagate_batch cannot express (it applies ONE
/// environment — one noise variance, one CFO — to every row); a mesh of M
/// sensors at different distances needs per-row path loss, fading and noise.
/// Stages still run stage-major across rows, but each row consumes only its
/// own RNG stream in the serial draw order (fade -> phase -> noise), so the
/// result is independent of the batch partition. Requires
/// envs.size() == rngs.size(); `out` is reshaped to rows x signal.size().
void propagate_batch_multi(dsp::BatchBuffer& out, std::span<const cplx> signal,
                           std::span<const Environment> envs,
                           std::span<dsp::Rng> rngs);

}  // namespace ctc::channel
