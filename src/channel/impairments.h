// Deterministic front-end impairments: carrier frequency offset, phase
// offset, and sample timing offset.
//
// Sec. VI-C of the paper observes that the "real environment" constellation
// is rotated by a frequency/phase offset (Fig. 6b) and switches the defense
// to |C40|; these impairments reproduce that effect in simulation.
#pragma once

#include <span>

#include "dsp/types.h"

namespace ctc::channel {

/// Applies a constant phase rotation exp(j*phase_rad).
cvec apply_phase_offset(std::span<const cplx> signal, double phase_rad);

/// Applies a carrier frequency offset of `cfo_hz` at `sample_rate_hz`
/// starting from `initial_phase_rad`.
cvec apply_cfo(std::span<const cplx> signal, double cfo_hz,
               double sample_rate_hz, double initial_phase_rad = 0.0);

/// In-place CFO — bit-identical to apply_cfo. The propagate hot path uses
/// these *_inplace variants on a reused workspace so a Monte Carlo trial
/// allocates nothing in the channel stage.
void apply_cfo_inplace(std::span<cplx> signal, double cfo_hz,
                       double sample_rate_hz, double initial_phase_rad = 0.0);

/// Fractional-sample delay via linear interpolation (0 <= delay < 1).
/// Output has the same length; the first sample interpolates toward zero.
cvec apply_timing_offset(std::span<const cplx> signal, double delay_fraction);

/// In-place fractional delay — bit-identical to apply_timing_offset (the
/// backward sweep reads each untouched predecessor before overwriting it).
void apply_timing_offset_inplace(std::span<cplx> signal, double delay_fraction);

/// Scales the whole block by a linear amplitude gain.
cvec apply_gain(std::span<const cplx> signal, double linear_gain);

}  // namespace ctc::channel
