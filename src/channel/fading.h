// Flat fading models for the "real environment" experiments.
//
// The paper's lab has human activity and multipath; over a 2 MHz ZigBee
// channel the fading is approximately flat, so we model a single complex
// tap: Rayleigh (no LoS) or Rician with K-factor (LoS + scatter). The tap is
// drawn once per frame (block fading), matching per-packet statistics.
#pragma once

#include <span>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace ctc::channel {

/// One complex Rayleigh tap with E|h|^2 = 1.
cplx rayleigh_tap(dsp::Rng& rng);

/// One complex Rician tap with K-factor `k_factor` (linear) and E|h|^2 = 1.
/// k_factor = 0 degenerates to Rayleigh; k -> inf approaches a pure LoS tap.
cplx rician_tap(double k_factor, dsp::Rng& rng);

/// Applies a single complex tap to the whole block (block fading).
cvec apply_flat_fading(std::span<const cplx> signal, cplx tap);

/// In-place variant — bit-identical to apply_flat_fading.
void apply_flat_fading_inplace(std::span<cplx> signal, cplx tap);

}  // namespace ctc::channel
