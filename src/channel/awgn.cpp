#include "channel/awgn.h"

#include "dsp/require.h"
#include "dsp/stats.h"

namespace ctc::channel {

cvec add_awgn(std::span<const cplx> signal, double snr_db, dsp::Rng& rng) {
  const double signal_power = dsp::average_power(signal);
  const double noise_variance = signal_power / dsp::from_db(snr_db);
  return add_noise_variance(signal, noise_variance, rng);
}

cvec add_noise_variance(std::span<const cplx> signal, double noise_variance,
                        dsp::Rng& rng) {
  CTC_REQUIRE(noise_variance >= 0.0);
  cvec out(signal.begin(), signal.end());
  for (auto& x : out) x += rng.complex_gaussian(noise_variance);
  return out;
}

void add_noise_variance_inplace(std::span<cplx> signal, double noise_variance,
                                dsp::Rng& rng) {
  CTC_REQUIRE(noise_variance >= 0.0);
  for (auto& x : signal) x += rng.complex_gaussian(noise_variance);
}

}  // namespace ctc::channel
