#include "channel/awgn.h"

#include <vector>

#include "dsp/kernels/kernels.h"
#include "dsp/require.h"
#include "dsp/stats.h"

namespace ctc::channel {

namespace {

/// Draws one complex Gaussian per sample into thread-local scratch, in the
/// same sequential order as the legacy interleaved loop (identical RNG
/// stream), then adds the whole buffer through the cadd kernel. A single
/// rounded add per component, so the result is bitwise identical to the
/// legacy `x += rng.complex_gaussian(v)` loop at every dispatch level.
void add_noise_batched(std::span<cplx> signal, double noise_variance,
                       dsp::Rng& rng) {
  thread_local std::vector<cplx> noise;
  noise.resize(signal.size());
  for (auto& sample : noise) sample = rng.complex_gaussian(noise_variance);
  dsp::kernels::active().cadd(signal.data(), noise.data(), signal.size());
}

}  // namespace

cvec add_awgn(std::span<const cplx> signal, double snr_db, dsp::Rng& rng) {
  const double signal_power = dsp::average_power(signal);
  const double noise_variance = signal_power / dsp::from_db(snr_db);
  return add_noise_variance(signal, noise_variance, rng);
}

cvec add_noise_variance(std::span<const cplx> signal, double noise_variance,
                        dsp::Rng& rng) {
  CTC_REQUIRE(noise_variance >= 0.0);
  cvec out(signal.begin(), signal.end());
  add_noise_batched(out, noise_variance, rng);
  return out;
}

void add_noise_variance_inplace(std::span<cplx> signal, double noise_variance,
                                dsp::Rng& rng) {
  CTC_REQUIRE(noise_variance >= 0.0);
  add_noise_batched(signal, noise_variance, rng);
}

}  // namespace ctc::channel
