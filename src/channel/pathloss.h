// Log-distance path loss: maps transmitter-receiver distance to received SNR
// and RSSI, replacing the paper's 1-8 m over-the-air testbed (Fig. 13/14,
// Table V).
//
// Model: PL(d) = PL(d0) + 10 n log10(d / d0), flat across the narrow ZigBee
// channel. We parameterize directly in SNR: snr(d) = snr_at_1m - 10 n log10(d).
#pragma once

#include "dsp/types.h"

namespace ctc::channel {

/// Log-distance forward model: `value_at_1m_db - 10 n log10(meters)`.
/// The shared helper behind SNR and RSSI prediction AND the localization
/// inversion (mesh::localize), so the two can never drift apart.
/// Requires meters > 0.
double log_distance_db(double value_at_1m_db, double exponent, double meters);

/// Inverts log_distance_db() in its distance argument: the distance (m) at
/// which the forward model yields `value_db`. Requires exponent != 0.
/// Round trip: log_distance_inverse_m(v1m, n, log_distance_db(v1m, n, d))
/// == d up to floating-point tolerance.
double log_distance_inverse_m(double value_at_1m_db, double exponent,
                              double value_db);

struct PathLossModel {
  /// Link SNR at the 1 m reference. A ZigBee RSSI of ~-45 dBm at 1 m over a
  /// -110 dBm noise floor (2 MHz) leaves plenty of headroom; 48 dB places
  /// the working range at the paper's 1-8 m.
  double snr_at_1m_db = 48.5;
  /// Path-loss exponent n. The paper's lab (1-8 m, human activity, cluttered
  /// indoor) sits well above free space; 5.0 reproduces the Fig. 14
  /// failure distances.
  double exponent = 5.0;
  double tx_power_dbm = 0.0;      ///< for RSSI reporting only
  double rssi_at_1m_dbm = -45.0;  ///< measured RSSI at 1 m (CC26x2R1-like)

  /// SNR in dB at distance `meters` (> 0).
  double snr_db(double meters) const;

  /// RSSI in dBm at distance `meters` (> 0).
  double rssi_dbm(double meters) const;

  /// The distance (m) at which this model predicts `rssi_dbm` — the
  /// log-distance inversion RSSI localization solves per sensor.
  double distance_for_rssi(double rssi_dbm) const;
};

}  // namespace ctc::channel
