#include "channel/impairments.h"

#include <cmath>

#include "dsp/kernels/kernels.h"
#include "dsp/require.h"
#include "dsp/resample.h"

namespace ctc::channel {

cvec apply_phase_offset(std::span<const cplx> signal, double phase_rad) {
  const cplx rotation{std::cos(phase_rad), std::sin(phase_rad)};
  cvec out(signal.begin(), signal.end());
  dsp::kernels::active().cscale(out.data(), out.size(), rotation);
  return out;
}

cvec apply_cfo(std::span<const cplx> signal, double cfo_hz, double sample_rate_hz,
               double initial_phase_rad) {
  dsp::Mixer mixer(cfo_hz, sample_rate_hz, initial_phase_rad);
  return mixer.process(signal);
}

cvec apply_timing_offset(std::span<const cplx> signal, double delay_fraction) {
  CTC_REQUIRE(delay_fraction >= 0.0 && delay_fraction < 1.0);
  cvec out(signal.begin(), signal.end());
  apply_timing_offset_inplace(out, delay_fraction);
  return out;
}

void apply_cfo_inplace(std::span<cplx> signal, double cfo_hz,
                       double sample_rate_hz, double initial_phase_rad) {
  dsp::Mixer mixer(cfo_hz, sample_rate_hz, initial_phase_rad);
  mixer.process_inplace(signal);
}

void apply_timing_offset_inplace(std::span<cplx> signal,
                                 double delay_fraction) {
  CTC_REQUIRE(delay_fraction >= 0.0 && delay_fraction < 1.0);
  // Backward two-tap sweep; the kernel keeps the explicit fl(0 * d) add on
  // the first sample, matching the legacy `previous = {0, 0}` loop.
  dsp::kernels::active().two_tap(signal.data(), signal.size(),
                                 1.0 - delay_fraction, delay_fraction);
}

cvec apply_gain(std::span<const cplx> signal, double linear_gain) {
  cvec out(signal.begin(), signal.end());
  dsp::kernels::active().rscale(out.data(), out.size(), linear_gain);
  return out;
}

}  // namespace ctc::channel
