#include "channel/impairments.h"

#include <cmath>

#include "dsp/require.h"
#include "dsp/resample.h"

namespace ctc::channel {

cvec apply_phase_offset(std::span<const cplx> signal, double phase_rad) {
  const cplx rotation{std::cos(phase_rad), std::sin(phase_rad)};
  cvec out(signal.begin(), signal.end());
  for (auto& x : out) x *= rotation;
  return out;
}

cvec apply_cfo(std::span<const cplx> signal, double cfo_hz, double sample_rate_hz,
               double initial_phase_rad) {
  dsp::Mixer mixer(cfo_hz, sample_rate_hz, initial_phase_rad);
  return mixer.process(signal);
}

cvec apply_timing_offset(std::span<const cplx> signal, double delay_fraction) {
  CTC_REQUIRE(delay_fraction >= 0.0 && delay_fraction < 1.0);
  cvec out(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const cplx previous = (i == 0) ? cplx{0.0, 0.0} : signal[i - 1];
    out[i] = signal[i] * (1.0 - delay_fraction) + previous * delay_fraction;
  }
  return out;
}

void apply_cfo_inplace(std::span<cplx> signal, double cfo_hz,
                       double sample_rate_hz, double initial_phase_rad) {
  dsp::Mixer mixer(cfo_hz, sample_rate_hz, initial_phase_rad);
  mixer.process_inplace(signal);
}

void apply_timing_offset_inplace(std::span<cplx> signal,
                                 double delay_fraction) {
  CTC_REQUIRE(delay_fraction >= 0.0 && delay_fraction < 1.0);
  // Backward so signal[i - 1] is still the original sample when read.
  for (std::size_t i = signal.size(); i-- > 0;) {
    const cplx previous = (i == 0) ? cplx{0.0, 0.0} : signal[i - 1];
    signal[i] = signal[i] * (1.0 - delay_fraction) + previous * delay_fraction;
  }
}

cvec apply_gain(std::span<const cplx> signal, double linear_gain) {
  cvec out(signal.begin(), signal.end());
  for (auto& x : out) x *= linear_gain;
  return out;
}

}  // namespace ctc::channel
