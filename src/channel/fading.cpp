#include "channel/fading.h"

#include <cmath>

#include "dsp/require.h"

namespace ctc::channel {

cplx rayleigh_tap(dsp::Rng& rng) { return rng.complex_gaussian(1.0); }

cplx rician_tap(double k_factor, dsp::Rng& rng) {
  CTC_REQUIRE(k_factor >= 0.0);
  const double los = std::sqrt(k_factor / (k_factor + 1.0));
  const double scatter_variance = 1.0 / (k_factor + 1.0);
  return cplx{los, 0.0} + rng.complex_gaussian(scatter_variance);
}

cvec apply_flat_fading(std::span<const cplx> signal, cplx tap) {
  cvec out(signal.begin(), signal.end());
  for (auto& x : out) x *= tap;
  return out;
}

void apply_flat_fading_inplace(std::span<cplx> signal, cplx tap) {
  for (auto& x : signal) x *= tap;
}

}  // namespace ctc::channel
