// 802.11g OFDM transmitter (Fig. 2 of the paper): scrambler -> convolutional
// coder -> interleaver -> QAM -> pilot/null insertion -> 64-IFFT -> cyclic
// prefix, preceded by the legacy STF/LTF preamble.
//
// The SIGNAL field is omitted: both ends of our simulated link (and the
// attack) know the rate and length out of band, which is also what the
// paper's GNU Radio prototype assumes.
#pragma once

#include <span>

#include "dsp/types.h"
#include "wifi/convcode.h"
#include "wifi/qam.h"

namespace ctc::wifi {

/// 802.11g rate set (data rate at 20 MHz).
enum class Mcs { mbps6, mbps9, mbps12, mbps18, mbps24, mbps36, mbps48, mbps54 };

Modulation mcs_modulation(Mcs mcs);
CodeRate mcs_code_rate(Mcs mcs);

/// Data bits per OFDM symbol (N_DBPS).
std::size_t data_bits_per_symbol(Mcs mcs);

/// Coded bits per OFDM symbol (N_CBPS = 48 * N_BPSC).
std::size_t coded_bits_per_symbol(Mcs mcs);

struct WifiTxConfig {
  Mcs mcs = Mcs::mbps54;  ///< 64-QAM rate 3/4, the mode the attack rides on
  std::uint8_t scrambler_seed = 0x5D;
  bool include_preamble = true;
  /// Emit the SIGNAL header symbol announcing rate and length. Data-symbol
  /// pilot polarity then starts at index 1 (SIGNAL is index 0).
  bool include_signal_field = false;
  bool normalize_power = true;
};

class WifiTransmitter {
 public:
  explicit WifiTransmitter(WifiTxConfig config = {});

  /// Full PHY chain for a PSDU (MAC bytes). Returns 20 MHz baseband.
  cvec transmit(std::span<const std::uint8_t> psdu) const;

  /// Number of data OFDM symbols needed for a PSDU of `psdu_bytes`.
  std::size_t num_data_symbols(std::size_t psdu_bytes) const;

  /// Modulates pre-built 64-bin frequency grids directly (one per symbol,
  /// already containing pilots). This is the entry point the waveform
  /// emulation attack uses after QAM quantization (Sec. V-A4).
  cvec modulate_grids(std::span<const cvec> grids) const;

  const WifiTxConfig& config() const { return config_; }

 private:
  cvec assemble_frame(std::span<const cplx> signal_symbol,
                      std::span<const cvec> grids) const;

  WifiTxConfig config_;
};

}  // namespace ctc::wifi
