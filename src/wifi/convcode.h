// 802.11 convolutional coding (Clause 17.3.5.6): the standard K = 7,
// rate-1/2 encoder with generators g0 = 133o, g1 = 171o, optional puncturing
// to rates 2/3 and 3/4, and a hard-decision Viterbi decoder that treats
// punctured positions as erasures.
#pragma once

#include <cstdint>
#include <span>

#include "dsp/types.h"

namespace ctc::wifi {

enum class CodeRate { half, two_thirds, three_quarters };

/// Coded bits produced per data bit numerator/denominator (e.g. 3/4 -> 4/3).
double coded_bits_per_data_bit(CodeRate rate);

/// Encodes `data` (bit values 0/1) with the rate-1/2 mother code, then
/// punctures to the requested rate. The encoder starts from the all-zero
/// state; callers append 6 tail zeros if they want trellis termination.
bitvec convolutional_encode(std::span<const std::uint8_t> data, CodeRate rate);

/// Hard-decision Viterbi decoding. `coded.size()` must be consistent with
/// `rate` (a whole number of puncturing periods / bit pairs). Returns the
/// maximum-likelihood data bits (same count the encoder consumed).
bitvec viterbi_decode(std::span<const std::uint8_t> coded, CodeRate rate);

/// Soft-decision Viterbi decoding over log-likelihood ratios: llr[i] > 0
/// means coded bit i is more likely 0 (the textbook LLR sign convention);
/// magnitude is confidence. Punctured positions are re-inserted as LLR 0.
/// With llr in {+1, -1} this reduces exactly to hard decoding.
bitvec viterbi_decode_soft(std::span<const double> llrs, CodeRate rate);

}  // namespace ctc::wifi
