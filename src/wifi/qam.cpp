#include "wifi/qam.h"

#include <cmath>

#include "dsp/require.h"

namespace ctc::wifi {

namespace {

unsigned gray_decode(unsigned gray) {
  unsigned value = gray;
  for (unsigned shift = 1; shift < 8; shift <<= 1) value ^= value >> shift;
  return value;
}

unsigned gray_encode(unsigned value) { return value ^ (value >> 1); }

unsigned pack_bits(std::span<const std::uint8_t> bits) {
  unsigned packed = 0;
  for (std::uint8_t bit : bits) packed = (packed << 1) | (bit & 1);
  return packed;
}

}  // namespace

std::size_t bits_per_subcarrier(Modulation modulation) {
  switch (modulation) {
    case Modulation::bpsk: return 1;
    case Modulation::qpsk: return 2;
    case Modulation::qam16: return 4;
    case Modulation::qam64: return 6;
  }
  CTC_REQUIRE_MSG(false, "unknown modulation");
}

double modulation_scale(Modulation modulation) {
  switch (modulation) {
    case Modulation::bpsk: return 1.0;
    case Modulation::qpsk: return 1.0 / std::sqrt(2.0);
    case Modulation::qam16: return 1.0 / std::sqrt(10.0);
    case Modulation::qam64: return 1.0 / std::sqrt(42.0);
  }
  CTC_REQUIRE_MSG(false, "unknown modulation");
}

int gray_bits_to_level(unsigned bits, std::size_t num_bits) {
  CTC_REQUIRE(num_bits >= 1 && num_bits <= 3);
  const unsigned index = gray_decode(bits & ((1u << num_bits) - 1));
  return static_cast<int>(2 * index) - (static_cast<int>(1u << num_bits) - 1);
}

unsigned gray_level_to_bits(int level, std::size_t num_bits) {
  CTC_REQUIRE(num_bits >= 1 && num_bits <= 3);
  const int levels = 1 << num_bits;
  // Clamp to the nearest valid odd level.
  int index = (level + levels - 1) / 2;
  if (index < 0) index = 0;
  if (index >= levels) index = levels - 1;
  return gray_encode(static_cast<unsigned>(index));
}

cvec qam_map(std::span<const std::uint8_t> bits, Modulation modulation) {
  const std::size_t bpsc = bits_per_subcarrier(modulation);
  CTC_REQUIRE(bits.size() % bpsc == 0);
  const double scale = modulation_scale(modulation);
  cvec points;
  points.reserve(bits.size() / bpsc);
  for (std::size_t offset = 0; offset < bits.size(); offset += bpsc) {
    const auto group = bits.subspan(offset, bpsc);
    if (modulation == Modulation::bpsk) {
      points.emplace_back(scale * gray_bits_to_level(pack_bits(group), 1), 0.0);
      continue;
    }
    const std::size_t half = bpsc / 2;
    const int i_level = gray_bits_to_level(pack_bits(group.subspan(0, half)), half);
    const int q_level = gray_bits_to_level(pack_bits(group.subspan(half, half)), half);
    points.emplace_back(scale * i_level, scale * q_level);
  }
  return points;
}

rvec qam_demap_soft(std::span<const cplx> points, Modulation modulation,
                    double noise_variance) {
  CTC_REQUIRE(noise_variance > 0.0);
  const std::size_t bpsc = bits_per_subcarrier(modulation);
  // Enumerate the labeled constellation once.
  bitvec labels;
  for (unsigned value = 0; value < (1u << bpsc); ++value) {
    for (std::size_t b = bpsc; b-- > 0;) {
      labels.push_back(static_cast<std::uint8_t>((value >> b) & 1));
    }
  }
  const cvec constellation = qam_map(labels, modulation);

  rvec llrs;
  llrs.reserve(points.size() * bpsc);
  for (const cplx& point : points) {
    for (std::size_t b = 0; b < bpsc; ++b) {
      double best0 = 1e300;
      double best1 = 1e300;
      for (std::size_t s = 0; s < constellation.size(); ++s) {
        const double distance = std::norm(point - constellation[s]);
        if (labels[s * bpsc + b]) {
          best1 = std::min(best1, distance);
        } else {
          best0 = std::min(best0, distance);
        }
      }
      llrs.push_back((best1 - best0) / noise_variance);
    }
  }
  return llrs;
}

bitvec qam_demap(std::span<const cplx> points, Modulation modulation) {
  const std::size_t bpsc = bits_per_subcarrier(modulation);
  const double scale = modulation_scale(modulation);
  bitvec bits;
  bits.reserve(points.size() * bpsc);
  auto push_group = [&bits](unsigned group, std::size_t num_bits) {
    for (std::size_t b = num_bits; b-- > 0;) {
      bits.push_back(static_cast<std::uint8_t>((group >> b) & 1));
    }
  };
  for (const cplx& point : points) {
    if (modulation == Modulation::bpsk) {
      push_group(gray_level_to_bits(point.real() >= 0.0 ? 1 : -1, 1), 1);
      continue;
    }
    const std::size_t half = bpsc / 2;
    const int i_level = static_cast<int>(std::lround(point.real() / scale));
    const int q_level = static_cast<int>(std::lround(point.imag() / scale));
    // Round to nearest odd level.
    auto to_odd = [](int level) { return (level >= 0 ? 1 : -1) * (2 * ((std::abs(level) + 1) / 2) - 1); };
    push_group(gray_level_to_bits(to_odd(i_level), half), half);
    push_group(gray_level_to_bits(to_odd(q_level), half), half);
  }
  return bits;
}

}  // namespace ctc::wifi
