// 802.11g OFDM receiver: LTF channel estimation, per-subcarrier
// equalization, pilot common-phase tracking, hard QAM demapping,
// deinterleaving, Viterbi decoding and descrambling.
//
// Two entry points:
//  * receive(): rate and PSDU length known out of band, frame-aligned
//    capture (the mode the attack's tests use);
//  * receive_auto(): full receiver — STF packet detection, CFO estimation
//    and correction, fine LTF timing, SIGNAL-field decode, then payload.
#pragma once

#include <optional>
#include <span>

#include "dsp/types.h"
#include "wifi/signal_field.h"
#include "wifi/sync.h"
#include "wifi/transmitter.h"

namespace ctc::wifi {

struct WifiRxConfig {
  Mcs mcs = Mcs::mbps54;
  std::uint8_t scrambler_seed = 0x5D;
  bool expect_preamble = true;
  /// The frame carries a SIGNAL header symbol (pilot polarity shifts by 1).
  bool expect_signal_field = false;
};

struct WifiReceiveResult {
  bytevec psdu;
  std::size_t symbol_count = 0;
  bool ok = false;  ///< enough samples and consistent framing
};

struct WifiAutoReceiveResult {
  bool ok = false;
  SignalField signal;           ///< decoded rate/length header
  bytevec psdu;
  SyncResult sync;              ///< detection offset + CFO estimate
};

class WifiReceiver {
 public:
  explicit WifiReceiver(WifiRxConfig config = {});

  /// Decodes `psdu_bytes` of payload from a synchronized waveform
  /// (sample 0 = first STF sample when expect_preamble, else first data
  /// symbol sample).
  WifiReceiveResult receive(std::span<const cplx> waveform,
                            std::size_t psdu_bytes) const;

  /// Full chain on an arbitrary capture: detect, synchronize, correct CFO,
  /// decode SIGNAL, decode payload. Ignores config().mcs (the SIGNAL field
  /// supplies it); uses config().scrambler_seed.
  WifiAutoReceiveResult receive_auto(std::span<const cplx> capture,
                                     SyncConfig sync_config = {}) const;

  const WifiRxConfig& config() const { return config_; }

 private:
  /// Channel estimate from the two LTF repeats starting at `ltf_start`.
  cvec estimate_channel(std::span<const cplx> waveform,
                        std::size_t ltf_start) const;

  /// Decodes `num_symbols` data symbols starting at `data_start`.
  bytevec decode_data(std::span<const cplx> waveform, std::size_t data_start,
                      std::span<const cplx> channel, Mcs mcs,
                      std::size_t psdu_bytes, std::size_t polarity_offset) const;

  WifiRxConfig config_;
};

}  // namespace ctc::wifi
