#include "wifi/sync.h"

#include <cmath>

#include "dsp/kernels/kernels.h"
#include "dsp/require.h"
#include "dsp/resample.h"
#include "wifi/ofdm.h"

namespace ctc::wifi {

namespace {

// Normalized delay-16 autocorrelation over a 64-sample window.
struct Plateau {
  double metric = 0.0;
  cplx correlation{0.0, 0.0};
};

Plateau stf_metric(std::span<const cplx> capture, std::size_t d) {
  constexpr std::size_t kDelay = 16;
  constexpr std::size_t kWindow = 64;
  const dsp::kernels::KernelTable& kt = dsp::kernels::active();
  const cplx p =
      kt.dot_conj(capture.data() + d, capture.data() + d + kDelay, kWindow);
  const double r = kt.energy(capture.data() + d + kDelay, kWindow);
  Plateau out;
  out.correlation = p;
  out.metric = (r > 0.0) ? std::abs(p) / r : 0.0;
  return out;
}

}  // namespace

cvec correct_cfo(std::span<const cplx> capture, double cfo_hz,
                 double sample_rate_hz) {
  return dsp::frequency_shift(capture, -cfo_hz, sample_rate_hz);
}

std::optional<SyncResult> synchronize_wifi(std::span<const cplx> capture,
                                           SyncConfig config) {
  constexpr std::size_t kStfDelay = 16;
  constexpr std::size_t kWindow = 64;
  constexpr std::size_t kLtfSymbol = 64;
  if (capture.size() < 400) return std::nullopt;
  const std::size_t search_end =
      std::min(config.max_search, capture.size() - kWindow - kStfDelay);

  // 1. Packet detection: first run of above-threshold delay-16 metric.
  bool detected = false;
  std::size_t coarse_start = 0;
  Plateau at_coarse;
  std::size_t run = 0;
  for (std::size_t d = 0; d < search_end; ++d) {
    const Plateau plateau = stf_metric(capture, d);
    if (plateau.metric > config.detection_threshold) {
      if (run == 0) {
        coarse_start = d;
        at_coarse = plateau;
      }
      if (++run >= 32) {  // a genuine STF plateau persists
        detected = true;
        break;
      }
    } else {
      run = 0;
    }
  }
  if (!detected) return std::nullopt;

  // 2. Coarse CFO from the plateau correlation angle.
  const double coarse_cfo = -std::arg(at_coarse.correlation) *
                            config.sample_rate_hz / (kTwoPi * kStfDelay);
  const cvec corrected = correct_cfo(capture, coarse_cfo, config.sample_rate_hz);

  // 3. Fine timing: cross-correlate with the known LTF symbol.
  const cvec ltf = make_ltf();
  const std::span<const cplx> reference(ltf.data() + 32, kLtfSymbol);
  const dsp::kernels::KernelTable& kt = dsp::kernels::active();
  const double reference_energy = kt.energy(reference.data(), kLtfSymbol);

  const std::size_t search_from = coarse_start;
  const std::size_t search_to =
      std::min(capture.size() - 2 * kLtfSymbol, search_from + 360);
  std::size_t best = search_from;
  double best_metric = 0.0;
  auto ltf_corr = [&](std::size_t p) {
    const cplx acc =
        kt.dot_conj(corrected.data() + p, reference.data(), kLtfSymbol);
    const double energy = kt.energy(corrected.data() + p, kLtfSymbol);
    return energy > 0.0 ? std::norm(acc) / (energy * reference_energy) : 0.0;
  };
  for (std::size_t p = search_from; p < search_to; ++p) {
    const double metric = ltf_corr(p);
    if (metric > best_metric) {
      best_metric = metric;
      best = p;
    }
  }
  if (best_metric < 0.5) return std::nullopt;
  // Disambiguate which LTF repeat we found: the first repeat has another
  // equally strong copy 64 samples later.
  const bool is_first_repeat =
      best + 3 * kLtfSymbol <= capture.size() && ltf_corr(best + kLtfSymbol) > 0.5;
  const std::size_t ltf_symbol1 = is_first_repeat ? best : best - kLtfSymbol;
  if (ltf_symbol1 < 192) return std::nullopt;

  // 4. Fine CFO across the two LTF repeats.
  const cplx p64 = kt.dot_conj(corrected.data() + ltf_symbol1,
                               corrected.data() + ltf_symbol1 + kLtfSymbol,
                               kLtfSymbol);
  const double fine_cfo =
      -std::arg(p64) * config.sample_rate_hz / (kTwoPi * kLtfSymbol);

  SyncResult result;
  result.frame_start = ltf_symbol1 - 192;  // STF(160) + long CP(32)
  result.cfo_hz = coarse_cfo + fine_cfo;
  result.plateau_metric = at_coarse.metric;
  return result;
}

}  // namespace ctc::wifi
