// 802.11 Gray-coded constellation mapping (Clause 17.3.5.8).
//
// BPSK/QPSK/16-QAM/64-QAM with the standard normalization factors
// (1, 1/sqrt(2), 1/sqrt(10), 1/sqrt(42)). For 64-QAM each group of six bits
// (b0 b1 b2 | b3 b4 b5) selects I from the first three and Q from the last
// three via the Gray code 000->-7, 001->-5, 011->-3, 010->-1, 110->+1,
// 111->+3, 101->+5, 100->+7.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"

namespace ctc::wifi {

enum class Modulation { bpsk, qpsk, qam16, qam64 };

/// Coded bits carried per subcarrier (N_BPSC).
std::size_t bits_per_subcarrier(Modulation modulation);

/// Standard amplitude normalization (K_MOD).
double modulation_scale(Modulation modulation);

/// Maps coded bits to constellation points. `bits.size()` must be a multiple
/// of bits_per_subcarrier().
cvec qam_map(std::span<const std::uint8_t> bits, Modulation modulation);

/// Hard-decision demapping back to coded bits (nearest point).
bitvec qam_demap(std::span<const cplx> points, Modulation modulation);

/// Max-log soft demapping: one LLR per coded bit, positive = bit 0 more
/// likely (matching viterbi_decode_soft), scaled by 1/noise_variance.
/// Requires noise_variance > 0.
rvec qam_demap_soft(std::span<const cplx> points, Modulation modulation,
                    double noise_variance);

/// The raw (unscaled) Gray level for a bit group, exposed for the attack's
/// bit-extraction path: level index -> amplitude in {-7..+7}.
int gray_bits_to_level(unsigned bits, std::size_t num_bits);

/// Inverse: nearest odd level -> Gray bit group.
unsigned gray_level_to_bits(int level, std::size_t num_bits);

}  // namespace ctc::wifi
