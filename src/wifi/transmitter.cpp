#include "wifi/transmitter.h"

#include "dsp/require.h"
#include "dsp/stats.h"
#include "sim/telemetry.h"
#include "wifi/interleaver.h"
#include "wifi/ofdm.h"
#include "wifi/scrambler.h"
#include "wifi/signal_field.h"

namespace ctc::wifi {

namespace {
constexpr std::size_t kServiceBits = 16;
constexpr std::size_t kTailBits = 6;
}  // namespace

Modulation mcs_modulation(Mcs mcs) {
  switch (mcs) {
    case Mcs::mbps6:
    case Mcs::mbps9: return Modulation::bpsk;
    case Mcs::mbps12:
    case Mcs::mbps18: return Modulation::qpsk;
    case Mcs::mbps24:
    case Mcs::mbps36: return Modulation::qam16;
    case Mcs::mbps48:
    case Mcs::mbps54: return Modulation::qam64;
  }
  CTC_REQUIRE_MSG(false, "unknown MCS");
}

CodeRate mcs_code_rate(Mcs mcs) {
  switch (mcs) {
    case Mcs::mbps6:
    case Mcs::mbps12:
    case Mcs::mbps24: return CodeRate::half;
    case Mcs::mbps48: return CodeRate::two_thirds;
    case Mcs::mbps9:
    case Mcs::mbps18:
    case Mcs::mbps36:
    case Mcs::mbps54: return CodeRate::three_quarters;
  }
  CTC_REQUIRE_MSG(false, "unknown MCS");
}

std::size_t coded_bits_per_symbol(Mcs mcs) {
  return kNumDataSubcarriers * bits_per_subcarrier(mcs_modulation(mcs));
}

std::size_t data_bits_per_symbol(Mcs mcs) {
  const double ratio = coded_bits_per_data_bit(mcs_code_rate(mcs));
  return static_cast<std::size_t>(
      static_cast<double>(coded_bits_per_symbol(mcs)) / ratio + 0.5);
}

WifiTransmitter::WifiTransmitter(WifiTxConfig config) : config_(config) {}

std::size_t WifiTransmitter::num_data_symbols(std::size_t psdu_bytes) const {
  const std::size_t payload_bits = kServiceBits + 8 * psdu_bytes + kTailBits;
  const std::size_t dbps = data_bits_per_symbol(config_.mcs);
  return (payload_bits + dbps - 1) / dbps;
}

cvec WifiTransmitter::transmit(std::span<const std::uint8_t> psdu) const {
  CTC_TELEM_TIMER("wifi_tx", "transmit");
  CTC_TELEM_COUNT("wifi_tx", "frames", 1);
  CTC_TELEM_COUNT("wifi_tx", "psdu_bytes", psdu.size());
  const std::size_t dbps = data_bits_per_symbol(config_.mcs);
  const std::size_t cbps = coded_bits_per_symbol(config_.mcs);
  const Modulation modulation = mcs_modulation(config_.mcs);
  const std::size_t bpsc = bits_per_subcarrier(modulation);

  // SERVICE + data bits (LSB first within each byte) + tail + pad.
  bitvec bits(kServiceBits, 0);
  for (std::uint8_t byte : psdu) {
    for (int b = 0; b < 8; ++b) {
      bits.push_back(static_cast<std::uint8_t>((byte >> b) & 1));
    }
  }
  const std::size_t tail_position = bits.size();
  bits.insert(bits.end(), kTailBits, 0);
  const std::size_t num_symbols = num_data_symbols(psdu.size());
  bits.resize(num_symbols * dbps, 0);

  // Scramble everything, then zero the tail so the trellis terminates.
  Scrambler scrambler(config_.scrambler_seed);
  bitvec scrambled = scrambler.process(bits);
  for (std::size_t i = 0; i < kTailBits; ++i) scrambled[tail_position + i] = 0;

  // Encode, interleave per symbol, map, assemble.
  const bitvec coded = convolutional_encode(scrambled, mcs_code_rate(config_.mcs));
  CTC_REQUIRE(coded.size() == num_symbols * cbps);

  const std::size_t polarity_offset = config_.include_signal_field ? 1 : 0;
  std::vector<cvec> grids;
  grids.reserve(num_symbols);
  for (std::size_t s = 0; s < num_symbols; ++s) {
    const auto symbol_bits = std::span<const std::uint8_t>(coded).subspan(s * cbps, cbps);
    const bitvec interleaved = interleave(symbol_bits, cbps, bpsc);
    const cvec points = qam_map(interleaved, modulation);
    grids.push_back(assemble_symbol_grid(points, s + polarity_offset));
  }
  cvec signal_symbol;
  if (config_.include_signal_field) {
    SignalField field;
    field.mcs = config_.mcs;
    field.length_bytes = psdu.size();
    signal_symbol = modulate_signal_symbol(field);
  }
  return assemble_frame(signal_symbol, grids);
}

cvec WifiTransmitter::modulate_grids(std::span<const cvec> grids) const {
  return assemble_frame({}, grids);
}

cvec WifiTransmitter::assemble_frame(std::span<const cplx> signal_symbol,
                                     std::span<const cvec> grids) const {
  cvec waveform;
  if (config_.include_preamble) {
    const cvec stf = make_stf();
    const cvec ltf = make_ltf();
    waveform.insert(waveform.end(), stf.begin(), stf.end());
    waveform.insert(waveform.end(), ltf.begin(), ltf.end());
  }
  waveform.insert(waveform.end(), signal_symbol.begin(), signal_symbol.end());
  for (const cvec& grid : grids) {
    const cvec symbol = grid_to_time(grid);
    waveform.insert(waveform.end(), symbol.begin(), symbol.end());
  }
  if (config_.normalize_power && !waveform.empty()) {
    waveform = dsp::normalize_power(waveform);
  }
  return waveform;
}

}  // namespace ctc::wifi
