#include "wifi/ofdm.h"

#include <cmath>

#include "dsp/fft.h"
#include "dsp/require.h"

namespace ctc::wifi {

namespace {

std::array<int, kNumDataSubcarriers> build_data_indexes() {
  std::array<int, kNumDataSubcarriers> indexes{};
  std::size_t n = 0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;                                   // DC null
    if (k == -21 || k == -7 || k == 7 || k == 21) continue;  // pilots
    indexes[n++] = k;
  }
  return indexes;
}

// Pilot polarity sequence p_0..p_126 (Clause 17.3.5.10).
constexpr std::array<std::int8_t, 127> kPilotPolarity = {
    1,  1,  1,  1,  -1, -1, -1, 1,  -1, -1, -1, -1, 1,  1,  -1, 1,
    -1, -1, 1,  1,  -1, 1,  1,  -1, 1,  1,  1,  1,  1,  1,  -1, 1,
    1,  1,  -1, 1,  1,  -1, -1, 1,  1,  1,  -1, 1,  -1, -1, -1, 1,
    -1, 1,  -1, -1, 1,  -1, -1, 1,  1,  1,  1,  1,  -1, -1, 1,  1,
    -1, -1, 1,  -1, 1,  -1, 1,  1,  -1, -1, -1, 1,  1,  -1, -1, -1,
    -1, 1,  -1, -1, 1,  -1, 1,  1,  1,  1,  -1, 1,  -1, 1,  -1, 1,
    -1, -1, -1, -1, -1, 1,  -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  -1,
    -1, 1,  -1, -1, -1, 1,  1,  1,  -1, -1, -1, -1, -1, -1, -1};

// Long training sequence on subcarriers -26..26 (DC in the middle).
constexpr std::array<double, 53> kLtfSequence = {
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1,
    1, 1, 1, 1, 0, 1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1,
    -1, -1, 1, -1, 1, -1, 1, 1, 1, 1};

}  // namespace

const std::array<int, kNumDataSubcarriers>& data_subcarrier_indexes() {
  static const auto indexes = build_data_indexes();
  return indexes;
}

const std::array<int, 4>& pilot_subcarrier_indexes() {
  static const std::array<int, 4> indexes = {-21, -7, 7, 21};
  return indexes;
}

double pilot_polarity(std::size_t symbol_index) {
  return static_cast<double>(kPilotPolarity[symbol_index % kPilotPolarity.size()]);
}

std::size_t subcarrier_to_bin(int index) {
  CTC_REQUIRE(index >= -32 && index <= 31);
  return static_cast<std::size_t>((index + static_cast<int>(kNumSubcarriers)) %
                                  static_cast<int>(kNumSubcarriers));
}

cvec assemble_symbol_grid(std::span<const cplx> data_points,
                          std::size_t symbol_index) {
  CTC_REQUIRE(data_points.size() == kNumDataSubcarriers);
  cvec grid(kNumSubcarriers, cplx{0.0, 0.0});
  const auto& data_indexes = data_subcarrier_indexes();
  for (std::size_t n = 0; n < kNumDataSubcarriers; ++n) {
    grid[subcarrier_to_bin(data_indexes[n])] = data_points[n];
  }
  const double polarity = pilot_polarity(symbol_index);
  const auto& pilots = pilot_subcarrier_indexes();
  grid[subcarrier_to_bin(pilots[0])] = polarity;
  grid[subcarrier_to_bin(pilots[1])] = polarity;
  grid[subcarrier_to_bin(pilots[2])] = polarity;
  grid[subcarrier_to_bin(pilots[3])] = -polarity;
  return grid;
}

cvec grid_to_time(std::span<const cplx> grid) {
  CTC_REQUIRE(grid.size() == kNumSubcarriers);
  static const dsp::FftPlan plan(kNumSubcarriers);
  // Thread-local IFFT scratch: symbol assembly runs once per OFDM symbol in
  // the emulation hot path, and the intermediate buffer dominated its
  // allocations.
  thread_local cvec useful;
  plan.inverse_into(useful, grid);
  cvec symbol;
  symbol.reserve(kSymbolLength);
  symbol.insert(symbol.end(), useful.end() - kCyclicPrefixLength, useful.end());
  symbol.insert(symbol.end(), useful.begin(), useful.end());
  return symbol;
}

cvec time_to_grid(std::span<const cplx> symbol) {
  CTC_REQUIRE(symbol.size() == kSymbolLength);
  static const dsp::FftPlan plan(kNumSubcarriers);
  return plan.forward(symbol.subspan(kCyclicPrefixLength, kNumSubcarriers));
}

const std::array<double, 53>& ltf_sequence() { return kLtfSequence; }

cvec make_stf() {
  // Nonzero short-training subcarriers.
  const double amp = std::sqrt(13.0 / 6.0);
  const cplx plus{amp, amp};
  const cplx minus{-amp, -amp};
  cvec grid(kNumSubcarriers, cplx{0.0, 0.0});
  const std::array<std::pair<int, cplx>, 12> entries = {{
      {-24, plus}, {-20, minus}, {-16, plus}, {-12, minus}, {-8, minus},
      {-4, plus}, {4, minus}, {8, minus}, {12, plus}, {16, plus},
      {20, plus}, {24, plus},
  }};
  for (const auto& [index, value] : entries) grid[subcarrier_to_bin(index)] = value;
  static const dsp::FftPlan plan(kNumSubcarriers);
  const cvec period = plan.inverse(grid);  // 16-periodic in time
  cvec stf;
  stf.reserve(160);
  for (std::size_t i = 0; i < 160; ++i) stf.push_back(period[i % kNumSubcarriers]);
  return stf;
}

cvec make_ltf() {
  cvec grid(kNumSubcarriers, cplx{0.0, 0.0});
  for (int k = -26; k <= 26; ++k) {
    grid[subcarrier_to_bin(k)] = kLtfSequence[static_cast<std::size_t>(k + 26)];
  }
  static const dsp::FftPlan plan(kNumSubcarriers);
  const cvec symbol = plan.inverse(grid);
  cvec ltf;
  ltf.reserve(160);
  ltf.insert(ltf.end(), symbol.end() - 32, symbol.end());  // double-length CP
  ltf.insert(ltf.end(), symbol.begin(), symbol.end());
  ltf.insert(ltf.end(), symbol.begin(), symbol.end());
  return ltf;
}

}  // namespace ctc::wifi
