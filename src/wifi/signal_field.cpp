#include "wifi/signal_field.h"

#include "dsp/require.h"
#include "wifi/convcode.h"
#include "wifi/interleaver.h"
#include "wifi/ofdm.h"
#include "wifi/qam.h"

namespace ctc::wifi {

namespace {
constexpr std::size_t kSignalBits = 24;
constexpr std::size_t kSignalCbps = 48;
}  // namespace

std::uint8_t rate_code(Mcs mcs) {
  switch (mcs) {
    case Mcs::mbps6: return 0b1101;
    case Mcs::mbps9: return 0b1111;
    case Mcs::mbps12: return 0b0101;
    case Mcs::mbps18: return 0b0111;
    case Mcs::mbps24: return 0b1001;
    case Mcs::mbps36: return 0b1011;
    case Mcs::mbps48: return 0b0001;
    case Mcs::mbps54: return 0b0011;
  }
  CTC_REQUIRE_MSG(false, "unknown MCS");
}

std::optional<Mcs> mcs_from_rate_code(std::uint8_t code) {
  switch (code & 0x0F) {
    case 0b1101: return Mcs::mbps6;
    case 0b1111: return Mcs::mbps9;
    case 0b0101: return Mcs::mbps12;
    case 0b0111: return Mcs::mbps18;
    case 0b1001: return Mcs::mbps24;
    case 0b1011: return Mcs::mbps36;
    case 0b0001: return Mcs::mbps48;
    case 0b0011: return Mcs::mbps54;
    default: return std::nullopt;
  }
}

bitvec encode_signal_bits(const SignalField& field) {
  CTC_REQUIRE(field.length_bytes >= 1 && field.length_bytes <= 4095);
  bitvec bits;
  bits.reserve(kSignalBits);
  const std::uint8_t rate = rate_code(field.mcs);
  // RATE transmitted MSB (R1) first per Table 17-6 bit assignment R1..R4.
  for (int b = 3; b >= 0; --b) bits.push_back((rate >> b) & 1);
  bits.push_back(0);  // reserved
  for (int b = 0; b < 12; ++b) {  // LENGTH LSB first
    bits.push_back(static_cast<std::uint8_t>((field.length_bytes >> b) & 1));
  }
  std::uint8_t parity = 0;
  for (std::uint8_t bit : bits) parity ^= bit;
  bits.push_back(parity);  // even parity over bits 0..16
  bits.insert(bits.end(), 6, 0);  // tail
  return bits;
}

std::optional<SignalField> decode_signal_bits(std::span<const std::uint8_t> bits) {
  if (bits.size() != kSignalBits) return std::nullopt;
  std::uint8_t parity = 0;
  for (std::size_t i = 0; i <= 17; ++i) parity ^= bits[i] & 1;
  if (parity != 0) return std::nullopt;   // parity bit included: must be even
  if (bits[4] != 0) return std::nullopt;  // reserved
  std::uint8_t rate = 0;
  for (int b = 0; b < 4; ++b) rate = static_cast<std::uint8_t>((rate << 1) | (bits[b] & 1));
  const auto mcs = mcs_from_rate_code(rate);
  if (!mcs) return std::nullopt;
  std::size_t length = 0;
  for (int b = 0; b < 12; ++b) {
    if (bits[5 + b] & 1) length |= std::size_t{1} << b;
  }
  if (length == 0) return std::nullopt;
  SignalField field;
  field.mcs = *mcs;
  field.length_bytes = length;
  return field;
}

cvec modulate_signal_symbol(const SignalField& field) {
  const bitvec bits = encode_signal_bits(field);
  const bitvec coded = convolutional_encode(bits, CodeRate::half);
  CTC_REQUIRE(coded.size() == kSignalCbps);
  const bitvec interleaved = interleave(coded, kSignalCbps, 1);
  const cvec points = qam_map(interleaved, Modulation::bpsk);
  const cvec grid = assemble_symbol_grid(points, 0);
  return grid_to_time(grid);
}

std::optional<SignalField> demodulate_signal_grid(std::span<const cplx> grid) {
  CTC_REQUIRE(grid.size() == kNumSubcarriers);
  const auto& data_indexes = data_subcarrier_indexes();
  cvec points(kNumDataSubcarriers);
  for (std::size_t n = 0; n < kNumDataSubcarriers; ++n) {
    points[n] = grid[subcarrier_to_bin(data_indexes[n])];
  }
  const bitvec demapped = qam_demap(points, Modulation::bpsk);
  const bitvec deinterleaved = deinterleave(demapped, kSignalCbps, 1);
  const bitvec bits = viterbi_decode(deinterleaved, CodeRate::half);
  return decode_signal_bits(bits);
}

}  // namespace ctc::wifi
