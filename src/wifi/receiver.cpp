#include "wifi/receiver.h"

#include <cmath>

#include "dsp/fft.h"
#include "dsp/kernels/kernels.h"
#include "dsp/require.h"
#include "wifi/interleaver.h"
#include "wifi/ofdm.h"
#include "wifi/scrambler.h"

namespace ctc::wifi {

namespace {
constexpr std::size_t kServiceBits = 16;
constexpr std::size_t kPreambleSamples = 320;  // STF + LTF
}  // namespace

WifiReceiver::WifiReceiver(WifiRxConfig config) : config_(config) {}

cvec WifiReceiver::estimate_channel(std::span<const cplx> waveform,
                                    std::size_t ltf_start) const {
  static const dsp::FftPlan plan(kNumSubcarriers);
  cvec channel(kNumSubcarriers, cplx{1.0, 0.0});
  const std::size_t first = ltf_start + 32;  // skip the long CP
  cvec symbol1(waveform.begin() + static_cast<long>(first),
               waveform.begin() + static_cast<long>(first + 64));
  cvec symbol2(waveform.begin() + static_cast<long>(first + 64),
               waveform.begin() + static_cast<long>(first + 128));
  const cvec grid1 = plan.forward(symbol1);
  const cvec grid2 = plan.forward(symbol2);
  const auto& reference = ltf_sequence();
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    const std::size_t bin = subcarrier_to_bin(k);
    const double ref = reference[static_cast<std::size_t>(k + 26)];
    channel[bin] = (grid1[bin] + grid2[bin]) / (2.0 * ref);
  }
  return channel;
}

namespace {

// Equalizes one 80-sample symbol and removes the pilot common phase.
cvec equalized_grid(std::span<const cplx> symbol, std::span<const cplx> channel,
                    std::size_t polarity_index) {
  cvec grid = time_to_grid(symbol);
  for (std::size_t bin = 0; bin < kNumSubcarriers; ++bin) {
    if (std::abs(channel[bin]) > 1e-9) grid[bin] /= channel[bin];
  }
  const double polarity = pilot_polarity(polarity_index);
  const auto& pilots = pilot_subcarrier_indexes();
  cplx pilot_sum{0.0, 0.0};
  pilot_sum += grid[subcarrier_to_bin(pilots[0])] * polarity;
  pilot_sum += grid[subcarrier_to_bin(pilots[1])] * polarity;
  pilot_sum += grid[subcarrier_to_bin(pilots[2])] * polarity;
  pilot_sum += grid[subcarrier_to_bin(pilots[3])] * (-polarity);
  if (std::abs(pilot_sum) > 1e-9) {
    const cplx rotation = pilot_sum / std::abs(pilot_sum);
    dsp::kernels::active().cdiv(grid.data(), grid.size(), rotation);
  }
  return grid;
}

}  // namespace

bytevec WifiReceiver::decode_data(std::span<const cplx> waveform,
                                  std::size_t data_start,
                                  std::span<const cplx> channel, Mcs mcs,
                                  std::size_t psdu_bytes,
                                  std::size_t polarity_offset) const {
  WifiTxConfig tx_like;
  tx_like.mcs = mcs;
  const std::size_t num_symbols =
      WifiTransmitter(tx_like).num_data_symbols(psdu_bytes);
  const Modulation modulation = mcs_modulation(mcs);
  const std::size_t bpsc = bits_per_subcarrier(modulation);
  const std::size_t cbps = coded_bits_per_symbol(mcs);
  const auto& data_indexes = data_subcarrier_indexes();

  bitvec coded;
  coded.reserve(num_symbols * cbps);
  for (std::size_t s = 0; s < num_symbols; ++s) {
    const auto symbol = waveform.subspan(data_start + s * kSymbolLength, kSymbolLength);
    const cvec grid = equalized_grid(symbol, channel, s + polarity_offset);
    cvec points(kNumDataSubcarriers);
    for (std::size_t n = 0; n < kNumDataSubcarriers; ++n) {
      points[n] = grid[subcarrier_to_bin(data_indexes[n])];
    }
    const bitvec symbol_bits = qam_demap(points, modulation);
    const bitvec deinterleaved = deinterleave(symbol_bits, cbps, bpsc);
    coded.insert(coded.end(), deinterleaved.begin(), deinterleaved.end());
  }

  const bitvec scrambled = viterbi_decode(coded, mcs_code_rate(mcs));
  Scrambler scrambler(config_.scrambler_seed);
  const bitvec bits = scrambler.process(scrambled);

  bytevec psdu(psdu_bytes, 0);
  if (bits.size() < kServiceBits + 8 * psdu_bytes) return {};
  for (std::size_t i = 0; i < 8 * psdu_bytes; ++i) {
    if (bits[kServiceBits + i]) {
      psdu[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
  return psdu;
}

WifiReceiveResult WifiReceiver::receive(std::span<const cplx> waveform,
                                        std::size_t psdu_bytes) const {
  WifiReceiveResult result;
  WifiTxConfig tx_like;
  tx_like.mcs = config_.mcs;
  const std::size_t num_symbols =
      WifiTransmitter(tx_like).num_data_symbols(psdu_bytes);
  const std::size_t preamble = config_.expect_preamble ? kPreambleSamples : 0;
  const std::size_t signal = config_.expect_signal_field ? kSymbolLength : 0;
  const std::size_t needed = preamble + signal + num_symbols * kSymbolLength;
  if (waveform.size() < needed) return result;

  cvec channel(kNumSubcarriers, cplx{1.0, 0.0});
  if (config_.expect_preamble) channel = estimate_channel(waveform, 160);

  result.psdu = decode_data(waveform, preamble + signal, channel, config_.mcs,
                            psdu_bytes, config_.expect_signal_field ? 1 : 0);
  if (result.psdu.size() != psdu_bytes) return result;
  result.symbol_count = num_symbols;
  result.ok = true;
  return result;
}

WifiAutoReceiveResult WifiReceiver::receive_auto(std::span<const cplx> capture,
                                                 SyncConfig sync_config) const {
  WifiAutoReceiveResult result;
  const auto sync = synchronize_wifi(capture, sync_config);
  if (!sync) return result;
  result.sync = *sync;

  const cvec corrected =
      correct_cfo(capture, sync->cfo_hz, sync_config.sample_rate_hz);
  const std::span<const cplx> frame =
      std::span<const cplx>(corrected).subspan(sync->frame_start);
  if (frame.size() < kPreambleSamples + kSymbolLength) return result;

  const cvec channel = estimate_channel(frame, 160);

  // SIGNAL field: first symbol after the preamble, polarity index 0.
  const cvec signal_grid = equalized_grid(
      frame.subspan(kPreambleSamples, kSymbolLength), channel, 0);
  const auto signal = demodulate_signal_grid(signal_grid);
  if (!signal) return result;
  result.signal = *signal;

  WifiTxConfig tx_like;
  tx_like.mcs = signal->mcs;
  const std::size_t num_symbols =
      WifiTransmitter(tx_like).num_data_symbols(signal->length_bytes);
  const std::size_t needed =
      kPreambleSamples + (1 + num_symbols) * kSymbolLength;
  if (frame.size() < needed) return result;

  result.psdu = decode_data(frame, kPreambleSamples + kSymbolLength, channel,
                            signal->mcs, signal->length_bytes, 1);
  result.ok = result.psdu.size() == signal->length_bytes;
  return result;
}

}  // namespace ctc::wifi
