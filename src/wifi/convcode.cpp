#include "wifi/convcode.h"

#include <algorithm>
#include <array>
#include <limits>

#include "dsp/require.h"

namespace ctc::wifi {

namespace {

constexpr unsigned kG0 = 0b1011011;  // 133 octal, MSB = current bit
constexpr unsigned kG1 = 0b1111001;  // 171 octal
constexpr unsigned kNumStates = 64;
constexpr std::uint8_t kErasure = 2;

std::uint8_t parity(unsigned value) {
  return static_cast<std::uint8_t>(__builtin_popcount(value) & 1);
}

// Puncturing patterns over the mother-code output (A0 B0 A1 B1 ...).
std::span<const std::uint8_t> puncture_pattern(CodeRate rate) {
  static constexpr std::array<std::uint8_t, 2> half = {1, 1};
  static constexpr std::array<std::uint8_t, 4> two_thirds = {1, 1, 1, 0};
  static constexpr std::array<std::uint8_t, 6> three_quarters = {1, 1, 1, 0, 0, 1};
  switch (rate) {
    case CodeRate::half: return half;
    case CodeRate::two_thirds: return two_thirds;
    case CodeRate::three_quarters: return three_quarters;
  }
  CTC_REQUIRE_MSG(false, "unknown code rate");
}

}  // namespace

double coded_bits_per_data_bit(CodeRate rate) {
  switch (rate) {
    case CodeRate::half: return 2.0;
    case CodeRate::two_thirds: return 1.5;
    case CodeRate::three_quarters: return 4.0 / 3.0;
  }
  CTC_REQUIRE_MSG(false, "unknown code rate");
}

bitvec convolutional_encode(std::span<const std::uint8_t> data, CodeRate rate) {
  const auto pattern = puncture_pattern(rate);
  bitvec out;
  out.reserve(data.size() * 2);
  unsigned state = 0;
  std::size_t mother_index = 0;
  for (std::uint8_t bit : data) {
    const unsigned full = ((bit & 1u) << 6) | state;
    const std::uint8_t a = parity(full & kG0);
    const std::uint8_t b = parity(full & kG1);
    if (pattern[mother_index % pattern.size()]) out.push_back(a);
    ++mother_index;
    if (pattern[mother_index % pattern.size()]) out.push_back(b);
    ++mother_index;
    state = (full >> 1) & 0x3F;
  }
  return out;
}

bitvec viterbi_decode_soft(std::span<const double> llrs, CodeRate rate) {
  const auto pattern = puncture_pattern(rate);
  // Re-expand to the mother stream; punctured positions carry zero belief.
  std::vector<double> mother;
  mother.reserve(llrs.size() * 2);
  std::size_t consumed = 0;
  std::size_t mother_index = 0;
  while (consumed < llrs.size()) {
    if (pattern[mother_index % pattern.size()]) {
      mother.push_back(llrs[consumed++]);
    } else {
      mother.push_back(0.0);
    }
    ++mother_index;
  }
  while (pattern[mother_index % pattern.size()] == 0) {
    mother.push_back(0.0);
    ++mother_index;
  }
  CTC_REQUIRE_MSG(mother.size() % 2 == 0,
                  "LLR count inconsistent with puncturing pattern");
  const std::size_t num_steps = mother.size() / 2;

  constexpr double kInf = 1e300;
  std::array<double, kNumStates> metric;
  metric.fill(kInf);
  metric[0] = 0.0;
  std::vector<std::array<std::uint8_t, kNumStates>> decisions(num_steps);

  for (std::size_t step = 0; step < num_steps; ++step) {
    const double la = mother[2 * step];
    const double lb = mother[2 * step + 1];
    std::array<double, kNumStates> next;
    next.fill(kInf);
    auto& decision = decisions[step];
    for (unsigned state = 0; state < kNumStates; ++state) {
      if (metric[state] >= kInf) continue;
      for (unsigned bit = 0; bit <= 1; ++bit) {
        const unsigned full = (bit << 6) | state;
        const std::uint8_t a = parity(full & kG0);
        const std::uint8_t b = parity(full & kG1);
        // Branch cost: llr > 0 favors bit 0, so emitting a 1 against a
        // positive llr costs +llr (and vice versa).
        double cost = metric[state];
        cost += a ? la : -la;
        cost += b ? lb : -lb;
        const unsigned next_state = (full >> 1) & 0x3F;
        if (cost < next[next_state]) {
          next[next_state] = cost;
          decision[next_state] = static_cast<std::uint8_t>(full & 1);
        }
      }
    }
    metric = next;
  }

  unsigned state = 0;
  double best = kInf;
  for (unsigned s = 0; s < kNumStates; ++s) {
    if (metric[s] < best) {
      best = metric[s];
      state = s;
    }
  }
  bitvec decoded(num_steps);
  for (std::size_t step = num_steps; step-- > 0;) {
    const std::uint8_t oldest = decisions[step][state];
    const unsigned full = (state << 1) | oldest;
    decoded[step] = static_cast<std::uint8_t>((full >> 6) & 1);
    state = full & 0x3F;
  }
  return decoded;
}

bitvec viterbi_decode(std::span<const std::uint8_t> coded, CodeRate rate) {
  const auto pattern = puncture_pattern(rate);
  // Re-expand to the mother stream, marking punctured positions as erasures.
  bitvec mother;
  mother.reserve(coded.size() * 2);
  std::size_t consumed = 0;
  std::size_t mother_index = 0;
  while (consumed < coded.size()) {
    if (pattern[mother_index % pattern.size()]) {
      mother.push_back(coded[consumed++]);
    } else {
      mother.push_back(kErasure);
    }
    ++mother_index;
  }
  // The encoder may have ended inside a punctured run; pad the erasures the
  // pattern says were dropped so the trellis covers whole (A, B) pairs.
  while (pattern[mother_index % pattern.size()] == 0) {
    mother.push_back(kErasure);
    ++mother_index;
  }
  // Trim to whole (A, B) pairs; a trailing lone A cannot advance the trellis.
  while (mother.size() % 2 != 0) {
    CTC_REQUIRE_MSG(mother.back() == kErasure,
                    "coded length inconsistent with puncturing pattern");
    mother.pop_back();
  }
  const std::size_t num_steps = mother.size() / 2;

  constexpr unsigned kInf = std::numeric_limits<unsigned>::max() / 2;
  std::array<unsigned, kNumStates> metric;
  metric.fill(kInf);
  metric[0] = 0;  // encoder starts in the all-zero state
  std::vector<std::array<std::uint8_t, kNumStates>> decisions(num_steps);

  for (std::size_t step = 0; step < num_steps; ++step) {
    const std::uint8_t ra = mother[2 * step];
    const std::uint8_t rb = mother[2 * step + 1];
    std::array<unsigned, kNumStates> next;
    next.fill(kInf);
    auto& decision = decisions[step];
    for (unsigned state = 0; state < kNumStates; ++state) {
      if (metric[state] >= kInf) continue;
      for (unsigned bit = 0; bit <= 1; ++bit) {
        const unsigned full = (bit << 6) | state;
        const std::uint8_t a = parity(full & kG0);
        const std::uint8_t b = parity(full & kG1);
        unsigned cost = metric[state];
        if (ra != kErasure && a != ra) ++cost;
        if (rb != kErasure && b != rb) ++cost;
        const unsigned next_state = (full >> 1) & 0x3F;
        if (cost < next[next_state]) {
          next[next_state] = cost;
          // Survivor: remember the predecessor's low bit (state & 1 is the
          // oldest bit shifted out; we need the *previous state*). Encode the
          // predecessor fully: it is (state) and input bit is `bit`; from
          // next_state = full >> 1, predecessor = (full & 0x3F).
          decision[next_state] = static_cast<std::uint8_t>(full & 1);
        }
      }
    }
    metric = next;
  }

  // Terminate at the best final state (callers that append tail bits will
  // naturally end at state 0).
  unsigned state = 0;
  unsigned best = kInf;
  for (unsigned s = 0; s < kNumStates; ++s) {
    if (metric[s] < best) {
      best = metric[s];
      state = s;
    }
  }

  // Traceback: at each step, the decoded input bit is the MSB of `full`,
  // i.e. bit 5 of the next state... reconstruct by walking predecessors.
  bitvec decoded(num_steps);
  for (std::size_t step = num_steps; step-- > 0;) {
    const std::uint8_t oldest = decisions[step][state];
    // next_state = (full >> 1), so full = (state << 1) | oldest, and the
    // decoded data bit is bit 6 of full.
    const unsigned full = (state << 1) | oldest;
    decoded[step] = static_cast<std::uint8_t>((full >> 6) & 1);
    state = full & 0x3F;
  }
  return decoded;
}

}  // namespace ctc::wifi
