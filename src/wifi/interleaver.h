// 802.11a/g block interleaver (Clause 17.3.5.7).
//
// Operates on one OFDM symbol's worth of coded bits (N_CBPS). Two
// permutations: the first spreads adjacent coded bits across nonadjacent
// subcarriers; the second alternates them between more/less significant
// constellation bits.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"

namespace ctc::wifi {

/// Interleaves one OFDM symbol of coded bits.
/// `bits.size()` must equal `cbps` (coded bits per symbol);
/// `bpsc` is coded bits per subcarrier (1, 2, 4 or 6).
bitvec interleave(std::span<const std::uint8_t> bits, std::size_t cbps,
                  std::size_t bpsc);

/// Exact inverse of interleave().
bitvec deinterleave(std::span<const std::uint8_t> bits, std::size_t cbps,
                    std::size_t bpsc);

}  // namespace ctc::wifi
