// 802.11 frame-synchronous scrambler (Clause 17.3.5.5).
//
// LFSR with polynomial x^7 + x^4 + 1. Scrambling and descrambling are the
// same operation given the same initial state, and the operation is an
// involution — one of the "invertible preprocessing" stages the paper's
// attacker reverses (Sec. V-A4).
#pragma once

#include <cstdint>
#include <span>

#include "dsp/types.h"

namespace ctc::wifi {

class Scrambler {
 public:
  /// `seed` is the 7-bit initial LFSR state (nonzero).
  explicit Scrambler(std::uint8_t seed = 0x5D);

  /// Scrambles (or descrambles) a bit sequence in place of a copy.
  bitvec process(std::span<const std::uint8_t> bits);

  /// Resets the LFSR to a new seed.
  void reset(std::uint8_t seed);

 private:
  std::uint8_t state_;
};

}  // namespace ctc::wifi
