// 802.11 packet detection and synchronization.
//
// Classic Schmidl-Cox-style front end:
//  * packet detection + coarse timing from the 16-sample periodicity of the
//    short training field (delay-and-correlate plateau);
//  * coarse CFO from the angle of the delay-16 STF autocorrelation
//    (unambiguous to +-625 kHz at 20 MHz);
//  * fine timing by cross-correlation against the known LTF symbol;
//  * fine CFO from the delay-64 correlation across the two LTF repeats
//    (unambiguous to +-156.25 kHz).
#pragma once

#include <optional>
#include <span>

#include "dsp/types.h"

namespace ctc::wifi {

struct SyncResult {
  std::size_t frame_start = 0;  ///< index of the first STF sample
  double cfo_hz = 0.0;          ///< estimated carrier frequency offset
  double plateau_metric = 0.0;  ///< detection confidence in [0, 1]
};

struct SyncConfig {
  double sample_rate_hz = 20.0e6;
  /// Detection threshold on the normalized delay-16 autocorrelation.
  double detection_threshold = 0.8;
  /// How many samples to search.
  std::size_t max_search = 1u << 16;
};

/// Finds a WiFi frame in a capture. Returns nullopt when no STF plateau
/// crosses the threshold.
std::optional<SyncResult> synchronize_wifi(std::span<const cplx> capture,
                                           SyncConfig config = {});

/// Removes a CFO estimate from a capture (helper for receivers).
cvec correct_cfo(std::span<const cplx> capture, double cfo_hz,
                 double sample_rate_hz);

}  // namespace ctc::wifi
