#include "wifi/interleaver.h"

#include <algorithm>

#include "dsp/require.h"

namespace ctc::wifi {

namespace {

void check_sizes(std::size_t size, std::size_t cbps, std::size_t bpsc) {
  CTC_REQUIRE(size == cbps);
  CTC_REQUIRE(cbps % 16 == 0);
  CTC_REQUIRE(bpsc == 1 || bpsc == 2 || bpsc == 4 || bpsc == 6);
}

}  // namespace

bitvec interleave(std::span<const std::uint8_t> bits, std::size_t cbps,
                  std::size_t bpsc) {
  check_sizes(bits.size(), cbps, bpsc);
  const std::size_t s = std::max<std::size_t>(bpsc / 2, 1);
  bitvec out(cbps);
  for (std::size_t k = 0; k < cbps; ++k) {
    const std::size_t i = (cbps / 16) * (k % 16) + k / 16;
    const std::size_t j =
        s * (i / s) + (i + cbps - (16 * i) / cbps) % s;
    out[j] = bits[k];
  }
  return out;
}

bitvec deinterleave(std::span<const std::uint8_t> bits, std::size_t cbps,
                    std::size_t bpsc) {
  check_sizes(bits.size(), cbps, bpsc);
  const std::size_t s = std::max<std::size_t>(bpsc / 2, 1);
  bitvec out(cbps);
  for (std::size_t k = 0; k < cbps; ++k) {
    const std::size_t i = (cbps / 16) * (k % 16) + k / 16;
    const std::size_t j =
        s * (i / s) + (i + cbps - (16 * i) / cbps) % s;
    out[k] = bits[j];
  }
  return out;
}

}  // namespace ctc::wifi
