// 802.11a/g OFDM symbol assembly (Clause 17.3.5.9-10).
//
// 64 subcarriers over 20 MHz (0.3125 MHz spacing): 48 data subcarriers at
// logical indexes [-26,-22], [-20,-8], [-6,-1], [1,6], [8,20], [22,26];
// pilots at -21, -7, 7, 21 (values 1,1,1,-1 times the per-symbol polarity
// sequence); DC and the outer band are null. 64-point IFFT produces the
// 3.2 us useful part; the last 0.8 us (16 samples) is prepended as the
// cyclic prefix for an 80-sample / 4 us symbol — the structure the paper's
// attacker must respect and the defense hunts for (Sec. V-A1).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "dsp/types.h"

namespace ctc::wifi {

inline constexpr std::size_t kNumSubcarriers = 64;
inline constexpr std::size_t kNumDataSubcarriers = 48;
inline constexpr std::size_t kCyclicPrefixLength = 16;
inline constexpr std::size_t kSymbolLength = kNumSubcarriers + kCyclicPrefixLength;

/// Logical subcarrier indexes (-26..26) of the 48 data subcarriers,
/// ascending.
const std::array<int, kNumDataSubcarriers>& data_subcarrier_indexes();

/// Pilot subcarrier indexes {-21, -7, 7, 21}.
const std::array<int, 4>& pilot_subcarrier_indexes();

/// Pilot polarity p_n (127-periodic sequence of Clause 17.3.5.10).
double pilot_polarity(std::size_t symbol_index);

/// Converts a logical subcarrier index (-32..31) to its IFFT bin (0..63).
std::size_t subcarrier_to_bin(int index);

/// Builds the 64-bin frequency grid for one data symbol: 48 data points into
/// the data bins, pilots with polarity for `symbol_index`, zeros elsewhere.
cvec assemble_symbol_grid(std::span<const cplx> data_points,
                          std::size_t symbol_index);

/// IFFT + cyclic prefix: frequency grid (64 bins, bin k = subcarrier k mod
/// 64) -> 80 time-domain samples.
cvec grid_to_time(std::span<const cplx> grid);

/// Strips the CP and FFTs back to the 64-bin grid.
cvec time_to_grid(std::span<const cplx> symbol);

/// Legacy preamble: 10 short training repetitions (8 us, 160 samples).
cvec make_stf();

/// Legacy long training field: CP(2x) + two LTF symbols (8 us, 160 samples).
cvec make_ltf();

/// The frequency-domain LTF sequence on subcarriers -26..26 (for channel
/// estimation in the receiver).
const std::array<double, 53>& ltf_sequence();

}  // namespace ctc::wifi
