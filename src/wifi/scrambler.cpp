#include "wifi/scrambler.h"

#include "dsp/require.h"

namespace ctc::wifi {

Scrambler::Scrambler(std::uint8_t seed) : state_(0) { reset(seed); }

void Scrambler::reset(std::uint8_t seed) {
  CTC_REQUIRE_MSG((seed & 0x7F) != 0, "scrambler seed must be nonzero");
  state_ = seed & 0x7F;
}

bitvec Scrambler::process(std::span<const std::uint8_t> bits) {
  bitvec out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // Feedback = x^7 xor x^4 (bits 6 and 3 of the state).
    const std::uint8_t feedback =
        static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1);
    out[i] = static_cast<std::uint8_t>((bits[i] & 1) ^ feedback);
    state_ = static_cast<std::uint8_t>(((state_ << 1) | feedback) & 0x7F);
  }
  return out;
}

}  // namespace ctc::wifi
