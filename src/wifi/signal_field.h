// 802.11a/g SIGNAL field (Clause 17.3.4): the BPSK rate-1/2 header symbol
// that announces RATE and LENGTH of the payload.
//
// 24 bits: RATE(4) | reserved(1)=0 | LENGTH(12, LSB first) | parity(1, even)
// | tail(6)=0, convolutionally encoded to 48 bits, interleaved and BPSK
// mapped onto one OFDM symbol (pilot polarity index 0; data symbols then
// start at index 1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "dsp/types.h"
#include "wifi/transmitter.h"

namespace ctc::wifi {

struct SignalField {
  Mcs mcs = Mcs::mbps6;
  std::size_t length_bytes = 0;  ///< PSDU length, 1..4095
};

/// The 4-bit RATE code of Table 17-6 for an MCS.
std::uint8_t rate_code(Mcs mcs);

/// Inverse of rate_code(). nullopt for invalid codes.
std::optional<Mcs> mcs_from_rate_code(std::uint8_t code);

/// Builds the 24 uncoded SIGNAL bits. Requires 1 <= length <= 4095.
bitvec encode_signal_bits(const SignalField& field);

/// Parses 24 uncoded SIGNAL bits; checks the reserved bit, parity bit,
/// rate code and nonzero length. nullopt when any check fails.
std::optional<SignalField> decode_signal_bits(std::span<const std::uint8_t> bits);

/// Full modulation: SIGNAL -> one 80-sample OFDM symbol (time domain).
cvec modulate_signal_symbol(const SignalField& field);

/// Full demodulation from one equalized 64-bin frequency grid.
std::optional<SignalField> demodulate_signal_grid(std::span<const cplx> grid);

}  // namespace ctc::wifi
