// Channel listening (Sec. IV-A): the attack's first stage.
//
// The WiFi attacker parks near the ZigBee link with its radio on the WiFi
// channel (2440 MHz, 20 MHz wide) and records. The ZigBee transmission
// appears 5 MHz below its center; the attacker mixes it to DC, low-passes,
// decimates to 4 MHz, and finds the frame start by correlating against the
// known 802.15.4 SHR (the paper assumes the attacker "knows the beginning
// of the received ZigBee time-domain waveform" — this module earns that
// assumption instead of taking it).
#pragma once

#include <optional>
#include <span>

#include "attack/carrier_allocation.h"
#include "dsp/rng.h"
#include "dsp/types.h"

namespace ctc::attack {

struct EavesdropConfig {
  CarrierPlan plan;
  /// SNR of the overheard ZigBee signal at the attacker (it sits close to
  /// the link, so this is typically high).
  double snr_db = 35.0;
  /// Noise-only samples recorded before the frame arrives (at 20 MHz).
  std::size_t lead_in_samples = 900;
  /// How far into the capture to search for the frame start (at 4 MHz).
  std::size_t max_sync_offset = 2000;
};

struct EavesdropResult {
  bool synchronized = false;
  std::size_t frame_offset = 0;  ///< detected start in the 4 MHz capture
  cvec observed_4mhz;            ///< aligned capture, ready for the emulator
  cvec capture_4mhz;             ///< full unaligned 4 MHz capture
};

class Eavesdropper {
 public:
  explicit Eavesdropper(EavesdropConfig config = {});

  /// Simulates overhearing `zigbee_waveform` (clean 4 MHz baseband from the
  /// victim transmitter) through the attacker's 20 MHz WiFi front end.
  EavesdropResult listen(std::span<const cplx> zigbee_waveform,
                         dsp::Rng& rng) const;

  const EavesdropConfig& config() const { return config_; }

 private:
  EavesdropConfig config_;
};

}  // namespace ctc::attack
