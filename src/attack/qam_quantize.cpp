#include "attack/qam_quantize.h"

#include <algorithm>
#include <cmath>

#include "dsp/require.h"

namespace ctc::attack {

namespace {

// Nearest odd level in {-7..7} to value/alpha.
int nearest_level(double value, double alpha) {
  const double scaled = value / alpha;
  int level = 2 * static_cast<int>(std::floor(scaled / 2.0)) + 1;
  if (scaled - static_cast<double>(level) > 1.0) level += 2;
  return std::clamp(level, -7, 7);
}

}  // namespace

std::vector<QuantizedPoint> quantize_to_qam64(std::span<const cplx> points,
                                              double alpha) {
  CTC_REQUIRE(alpha > 0.0);
  std::vector<QuantizedPoint> out;
  out.reserve(points.size());
  for (const cplx& point : points) {
    QuantizedPoint q;
    q.i_level = nearest_level(point.real(), alpha);
    q.q_level = nearest_level(point.imag(), alpha);
    q.value = alpha * cplx{static_cast<double>(q.i_level),
                           static_cast<double>(q.q_level)};
    out.push_back(q);
  }
  return out;
}

double quantization_cost(std::span<const cplx> points, double alpha) {
  const auto quantized = quantize_to_qam64(points, alpha);
  double cost = 0.0;
  for (std::size_t n = 0; n < points.size(); ++n) {
    cost += std::norm(points[n] - quantized[n].value);
  }
  return cost;
}

double optimize_scale(std::span<const cplx> points, ScaleSearchConfig config) {
  CTC_REQUIRE(!points.empty());
  CTC_REQUIRE(config.coarse_steps >= 2);
  double max_alpha = config.max_alpha;
  if (max_alpha <= 0.0) {
    double peak = 0.0;
    for (const cplx& point : points) {
      peak = std::max({peak, std::abs(point.real()), std::abs(point.imag())});
    }
    max_alpha = std::max(peak, config.min_alpha + 1e-6);
  }

  // Coarse grid.
  double best_alpha = config.min_alpha;
  double best_cost = quantization_cost(points, best_alpha);
  for (std::size_t i = 1; i < config.coarse_steps; ++i) {
    const double alpha =
        config.min_alpha + (max_alpha - config.min_alpha) *
                               static_cast<double>(i) /
                               static_cast<double>(config.coarse_steps - 1);
    const double cost = quantization_cost(points, alpha);
    if (cost < best_cost) {
      best_cost = cost;
      best_alpha = alpha;
    }
  }

  // Golden-section refinement around the best cell.
  const double cell = (max_alpha - config.min_alpha) /
                      static_cast<double>(config.coarse_steps - 1);
  double lo = std::max(config.min_alpha, best_alpha - cell);
  double hi = std::min(max_alpha, best_alpha + cell);
  constexpr double kInvPhi = 0.6180339887498949;
  double x1 = hi - kInvPhi * (hi - lo);
  double x2 = lo + kInvPhi * (hi - lo);
  double f1 = quantization_cost(points, x1);
  double f2 = quantization_cost(points, x2);
  for (std::size_t round = 0; round < config.refine_rounds; ++round) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kInvPhi * (hi - lo);
      f1 = quantization_cost(points, x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kInvPhi * (hi - lo);
      f2 = quantization_cost(points, x2);
    }
  }
  const double refined = (f1 < f2) ? x1 : x2;
  const double refined_cost = std::min(f1, f2);
  return refined_cost < best_cost ? refined : best_alpha;
}

}  // namespace ctc::attack
