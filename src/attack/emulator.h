// The CTC waveform emulation attack (Sec. V).
//
// Pipeline per observed ZigBee frame (recorded at 4 MHz):
//   1. interpolate x5 to the attacker's 20 MHz rate (80 samples per 4 us);
//   2. for every 80-sample WiFi-symbol slot: skip the first 16 samples
//      (they will be overwritten by the cyclic prefix), 64-point FFT of the
//      remaining 3.2 us;
//   3. zero all but the chosen ~7 subcarriers (SubcarrierSelector);
//   4. quantize the kept frequency points to the alpha-scaled 64-QAM grid
//      (QamQuantize; alpha optimized once per frame or fixed to sqrt(26));
//   5. 64-point IFFT and re-insert the cyclic prefix;
//   6. concatenate the 80-sample emulated symbols. The result is a valid
//      sequence of WiFi OFDM symbols whose 2 MHz heart is the ZigBee frame.
//
// The emulated waveform is returned both at 20 MHz (what the WiFi radio
// emits) and re-decimated to 4 MHz (what the ZigBee receiver's 2 MHz
// front end sees), plus per-symbol diagnostics for the paper's tables.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "attack/qam_quantize.h"
#include "attack/subcarrier_select.h"
#include "dsp/types.h"

namespace ctc::attack {

struct EmulatorConfig {
  std::size_t interpolation = 5;  ///< 4 MHz -> 20 MHz
  /// FFT bins to keep. Empty = run SubcarrierSelector on the observed frame.
  std::vector<std::size_t> kept_bins;
  SelectionConfig selection;
  /// Fixed QAM scale; nullopt = optimize per frame (Eq. 4). The paper's
  /// simulation uses sqrt(26).
  std::optional<double> alpha;
  /// Reuse per-slot emulation results within a frame. A ZigBee frame cycles
  /// through only 16 chip sequences, so most 80-sample slots repeat; keying
  /// on the exact slot samples keeps the output bitwise identical.
  bool memoize = true;
};

struct SymbolDiagnostics {
  double alpha = 0.0;              ///< scale used for this symbol
  double quantization_error = 0.0; ///< sum |X_hat - Q(X_hat)|^2 on kept bins
  double discarded_energy = 0.0;   ///< sum |X(k)|^2 over bins zeroed in step 3
};

struct EmulationResult {
  cvec wifi_waveform_20mhz;   ///< the emitted WiFi waveform
  cvec emulated_4mhz;         ///< after a 2 MHz front end + decimation
  std::vector<cvec> symbol_grids;  ///< 64-bin quantized grid per WiFi symbol
  std::vector<SymbolDiagnostics> diagnostics;
  std::vector<std::size_t> kept_bins;
};

class WaveformEmulator {
 public:
  explicit WaveformEmulator(EmulatorConfig config = {});

  /// Emulates an observed ZigBee baseband frame (4 MHz sample rate).
  EmulationResult emulate(std::span<const cplx> observed_4mhz) const;

  /// The core per-symbol step on an 80-sample slot at 20 MHz; exposed for
  /// tests and the Table I / Fig. 5 benches.
  cvec emulate_symbol(std::span<const cplx> slot80,
                      std::span<const std::size_t> kept_bins, double alpha,
                      SymbolDiagnostics* diagnostics = nullptr,
                      cvec* grid_out = nullptr) const;

  const EmulatorConfig& config() const { return config_; }

 private:
  EmulatorConfig config_;
};

}  // namespace ctc::attack
