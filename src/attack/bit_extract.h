// Bit-level attack mode (Sec. V-A4, "the WiFi data bits ... easily obtained").
//
// Given the quantized per-symbol grids, this module derives the *interleaved
// coded bits* a WiFi modulator must emit per OFDM symbol, by demapping every
// data subcarrier against the alpha-scaled 64-QAM grid (don't-care
// subcarriers — those outside the ZigBee receiver's 2 MHz window — demap to
// whatever valid point is nearest, which keeps the frame protocol-legal
// without affecting the victim). Running the extracted bits back through
// interleaving + QAM mapping reproduces the quantized ZigBee subcarriers
// exactly.
//
// Caveat documented in DESIGN.md: the 802.11 convolutional encoder cannot
// produce arbitrary coded-bit sequences, so a real attacker injects after
// the encoder (firmware access — the WEBee assumption). The paper's own
// simulation "ignores the preprocessing"; this module is the honest version
// of its invertibility claim.
#pragma once

#include <span>
#include <vector>

#include "attack/carrier_allocation.h"
#include "dsp/types.h"

namespace ctc::attack {

struct ExtractedBits {
  /// One interleaved coded-bit block (48 * 6 bits) per OFDM symbol, exactly
  /// as they enter the QAM mapper of Fig. 2.
  std::vector<bitvec> interleaved_bits_per_symbol;
  /// The same bits after deinterleaving (encoder-output order).
  std::vector<bitvec> coded_bits_per_symbol;
  /// TX gain that makes the standard 64-QAM mapper (K_MOD = 1/sqrt(42))
  /// reproduce the alpha-scaled quantized amplitudes: alpha * sqrt(42).
  double tx_gain = 1.0;
};

/// Extracts WiFi bits from ZigBee-centered quantized grids.
ExtractedBits extract_wifi_bits(std::span<const cvec> zigbee_centered_grids,
                                double alpha, const CarrierPlan& plan);

/// Forward check: rebuilds the WiFi-centered grids from interleaved bits
/// (pilots inserted per symbol index). Equals allocate_to_wifi_grid() of the
/// original quantized grids on every ZigBee-carrying subcarrier.
std::vector<cvec> grids_from_interleaved_bits(
    std::span<const bitvec> interleaved_bits_per_symbol, double tx_gain);

}  // namespace ctc::attack
