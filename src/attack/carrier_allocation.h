// Carrier allocation (Sec. V-A4).
//
// The emulator works in a baseband centered on the ZigBee channel. A real
// WiFi radio is centered elsewhere: with ZigBee channel 17 at 2435 MHz and
// the WiFi attacker at 2440 MHz, the ZigBee band sits 5 MHz below the WiFi
// center — exactly 16 subcarriers (5 MHz / 0.3125 MHz). Shifting the
// quantized grid down by 16 bins places the ZigBee information on WiFi data
// subcarriers [-20, -8] (paper's example); the pilots at -21/-7 and the null
// guard bins are untouched, so the frame remains a protocol-legal WiFi
// transmission. The matching ZigBee front end mixes the 20 MHz capture back
// up by +5 MHz and decimates to 4 MHz.
#pragma once

#include <span>

#include "dsp/types.h"

namespace ctc::attack {

struct CarrierPlan {
  double zigbee_center_hz = 2435.0e6;  ///< ZigBee channel 17
  double wifi_center_hz = 2440.0e6;
  double wifi_sample_rate_hz = 20.0e6;

  /// Subcarrier shift between the two centers (negative = ZigBee below the
  /// WiFi center). Must be an integer number of 0.3125 MHz subcarriers.
  int subcarrier_shift() const;

  /// Frequency offset of the ZigBee band inside the WiFi baseband (Hz).
  double offset_hz() const { return zigbee_center_hz - wifi_center_hz; }
};

/// Moves a 64-bin grid built around the ZigBee center onto the WiFi grid
/// (bin k -> bin k + shift, cyclic). Throws if a nonzero source bin would
/// land on a pilot (-21, -7, 7, 21) or DC, i.e. if the plan is not
/// realizable as a legal WiFi symbol.
cvec allocate_to_wifi_grid(std::span<const cplx> zigbee_centered_grid,
                           const CarrierPlan& plan);

/// Inverse mapping (WiFi grid -> ZigBee-centered grid).
cvec extract_from_wifi_grid(std::span<const cplx> wifi_grid,
                            const CarrierPlan& plan);

/// ZigBee receiver front end for a 20 MHz WiFi-band capture: mix the ZigBee
/// channel to DC, lowpass to 2 MHz and decimate to 4 MHz.
cvec wifi_band_to_zigbee_baseband(std::span<const cplx> waveform20mhz,
                                  const CarrierPlan& plan);

}  // namespace ctc::attack
