#include "attack/eavesdropper.h"

#include "channel/awgn.h"
#include "dsp/resample.h"
#include "dsp/stats.h"
#include "zigbee/receiver.h"

namespace ctc::attack {

Eavesdropper::Eavesdropper(EavesdropConfig config) : config_(config) {}

EavesdropResult Eavesdropper::listen(std::span<const cplx> zigbee_waveform,
                                     dsp::Rng& rng) const {
  EavesdropResult result;

  // Over the air: what the attacker's 20 MHz front end sees — the ZigBee
  // signal at -5 MHz, preceded by a noise-only lead-in.
  const cvec at_20mhz = dsp::upsample(zigbee_waveform, 5);
  const cvec shifted = dsp::frequency_shift(at_20mhz, config_.plan.offset_hz(),
                                            config_.plan.wifi_sample_rate_hz);
  cvec capture(config_.lead_in_samples, cplx{0.0, 0.0});
  capture.insert(capture.end(), shifted.begin(), shifted.end());
  capture = channel::add_awgn(capture, config_.snr_db, rng);

  // Attacker front end: mix the ZigBee band to DC and decimate to 4 MHz.
  result.capture_4mhz = wifi_band_to_zigbee_baseband(capture, config_.plan);

  // Frame sync against the 802.15.4 SHR.
  const zigbee::Receiver reference;
  const auto offset =
      reference.synchronize(result.capture_4mhz, config_.max_sync_offset);
  if (!offset) return result;
  result.synchronized = true;
  result.frame_offset = *offset;
  result.observed_4mhz.assign(result.capture_4mhz.begin() + static_cast<long>(*offset),
                              result.capture_4mhz.end());
  // Trim trailing filter/decimation padding so downstream processing sees
  // the same frame extent the victim transmitted.
  if (result.observed_4mhz.size() > zigbee_waveform.size()) {
    result.observed_4mhz.resize(zigbee_waveform.size());
  }
  return result;
}

}  // namespace ctc::attack
