// Two-step subcarrier selection (Sec. V-A2, Table I).
//
// The ZigBee receiver only sees ~7 of the attacker's 64 subcarriers
// (2 MHz / 0.3125 MHz), so the attacker keeps the 7 subcarriers that carry
// the most ZigBee energy. Because per-waveform selection is too expensive
// on real hardware, the paper selects *indexes* once from a batch of
// observed waveforms:
//   coarse estimation — highlight every |X(k)| above a threshold;
//   detailed estimation — keep the 7 indexes highlighted most often.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/types.h"

namespace ctc::attack {

struct SelectionConfig {
  double coarse_threshold = 3.0;  ///< highlight level (Table I uses 3)
  std::size_t num_kept = 7;       ///< 2 MHz / 0.3125 MHz subcarriers
};

struct SelectionResult {
  /// Chosen FFT bins (0-based; the paper's 1-based indexes minus one),
  /// ascending.
  std::vector<std::size_t> bins;
  /// votes[k] = number of windows in which bin k was highlighted.
  std::vector<std::size_t> votes;
  /// magnitudes[w][k] = |X_w(k)| for window w (the raw Table I data).
  std::vector<rvec> magnitudes;
};

class SubcarrierSelector {
 public:
  explicit SubcarrierSelector(SelectionConfig config = {});

  /// 64-point FFT magnitude of every complete 64-sample window taken from
  /// consecutive 80-sample WiFi-symbol slots of a 20 MHz waveform
  /// (the first 16 samples of each slot are the CP the attacker skips).
  std::vector<rvec> window_magnitudes(std::span<const cplx> waveform20mhz) const;

  /// Runs coarse + detailed estimation over the given windows.
  SelectionResult select(std::span<const rvec> magnitudes) const;

  /// Convenience: both steps from a 20 MHz waveform.
  SelectionResult select_from_waveform(std::span<const cplx> waveform20mhz) const;

  /// The fixed default the paper lands on: bins {0,1,2,3} and {61,62,63}
  /// (paper's 1-based 1-4 and 62-64).
  static std::vector<std::size_t> paper_default_bins();

  const SelectionConfig& config() const { return config_; }

 private:
  SelectionConfig config_;
};

}  // namespace ctc::attack
