// 64-QAM quantization of the chosen frequency points (Sec. V-A3).
//
// By Parseval (Eq. 2), minimizing time-domain emulation error is equivalent
// to minimizing the total squared deviation of the frequency points after
// quantization, so each chosen point maps to the Euclidean-nearest point of
// the alpha-scaled 64-QAM grid (Eq. 3). The constellation scale alpha is a
// free variable the attacker optimizes first (Eq. 4) with a numerical global
// search; the paper's example lands on alpha = sqrt(26).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/types.h"

namespace ctc::attack {

struct QuantizedPoint {
  cplx value;   ///< alpha * (XI + j XQ)
  int i_level;  ///< XI in {-7,-5,-3,-1,1,3,5,7}
  int q_level;  ///< XQ likewise
};

/// Quantizes every point to the alpha-scaled 64-QAM grid.
std::vector<QuantizedPoint> quantize_to_qam64(std::span<const cplx> points,
                                              double alpha);

/// Total squared Euclidean error of quantize_to_qam64 at this alpha
/// (the objective of Eq. 4).
double quantization_cost(std::span<const cplx> points, double alpha);

struct ScaleSearchConfig {
  double min_alpha = 0.05;
  double max_alpha = 0.0;   ///< 0 = auto: max|point| (alpha beyond that only grows cost)
  std::size_t coarse_steps = 400;
  std::size_t refine_rounds = 30;
};

/// Numerical global search for the optimal alpha >= 0: a dense coarse grid
/// followed by golden-section refinement around the best cell. The cost is
/// piecewise-smooth in alpha (the nearest-point assignment changes at cell
/// boundaries), which is why a plain gradient method is not enough.
double optimize_scale(std::span<const cplx> points,
                      ScaleSearchConfig config = {});

}  // namespace ctc::attack
