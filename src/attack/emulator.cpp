#include "attack/emulator.h"

#include <cmath>
#include <string>
#include <unordered_map>

#include "dsp/fft.h"
#include "dsp/require.h"
#include "dsp/resample.h"
#include "sim/telemetry.h"
#include "wifi/ofdm.h"

namespace ctc::attack {

namespace {
constexpr std::size_t kSlot = wifi::kSymbolLength;        // 80
constexpr std::size_t kFft = wifi::kNumSubcarriers;       // 64
constexpr std::size_t kCp = wifi::kCyclicPrefixLength;    // 16
}  // namespace

WaveformEmulator::WaveformEmulator(EmulatorConfig config)
    : config_(std::move(config)) {
  CTC_REQUIRE(config_.interpolation >= 1);
  if (config_.alpha) CTC_REQUIRE(*config_.alpha > 0.0);
}

cvec WaveformEmulator::emulate_symbol(std::span<const cplx> slot80,
                                      std::span<const std::size_t> kept_bins,
                                      double alpha,
                                      SymbolDiagnostics* diagnostics,
                                      cvec* grid_out) const {
  CTC_REQUIRE(slot80.size() == kSlot);
  static const dsp::FftPlan plan(kFft);

  // Step 2: FFT of the last 3.2 us (the first 0.8 us is sacrificed to the CP).
  const cvec spectrum = plan.forward(slot80.subspan(kCp, kFft));

  // Step 3 + 4: keep and quantize the chosen bins, zero the rest.
  cvec grid(kFft, cplx{0.0, 0.0});
  cvec kept_points;
  kept_points.reserve(kept_bins.size());
  for (std::size_t bin : kept_bins) {
    CTC_REQUIRE(bin < kFft);
    kept_points.push_back(spectrum[bin]);
  }
  const auto quantized = quantize_to_qam64(kept_points, alpha);
  for (std::size_t n = 0; n < kept_bins.size(); ++n) {
    grid[kept_bins[n]] = quantized[n].value;
  }

  if (diagnostics != nullptr) {
    diagnostics->alpha = alpha;
    diagnostics->quantization_error = 0.0;
    for (std::size_t n = 0; n < kept_points.size(); ++n) {
      diagnostics->quantization_error += std::norm(kept_points[n] - quantized[n].value);
    }
    diagnostics->discarded_energy = 0.0;
    for (std::size_t k = 0; k < kFft; ++k) {
      if (std::abs(grid[k]) == 0.0) diagnostics->discarded_energy += std::norm(spectrum[k]);
    }
  }
  if (grid_out != nullptr) *grid_out = grid;

  // Step 5: IFFT + cyclic prefix.
  const cvec useful = plan.inverse(grid);
  cvec symbol;
  symbol.reserve(kSlot);
  symbol.insert(symbol.end(), useful.end() - kCp, useful.end());
  symbol.insert(symbol.end(), useful.begin(), useful.end());
  return symbol;
}

EmulationResult WaveformEmulator::emulate(std::span<const cplx> observed_4mhz) const {
  CTC_REQUIRE_MSG(!observed_4mhz.empty(), "nothing to emulate");
  CTC_TELEM_TIMER("attack", "emulate");
  CTC_TELEM_COUNT("attack", "frames", 1);
  EmulationResult result;

  // Step 1: interpolate to the WiFi sample rate.
  cvec upsampled = dsp::upsample(observed_4mhz, config_.interpolation);
  // Pad so the frame covers whole WiFi-symbol slots.
  const std::size_t remainder = upsampled.size() % kSlot;
  if (remainder != 0) upsampled.resize(upsampled.size() + (kSlot - remainder), cplx{0.0, 0.0});

  // Choose subcarriers.
  if (config_.kept_bins.empty()) {
    SubcarrierSelector selector(config_.selection);
    result.kept_bins = selector.select_from_waveform(upsampled).bins;
  } else {
    result.kept_bins = config_.kept_bins;
  }

  // Choose the QAM scale. When optimizing, pool the kept frequency points of
  // every symbol so one alpha serves the whole frame (the attacker fixes the
  // constellation scale per transmission).
  double alpha;
  if (config_.alpha) {
    alpha = *config_.alpha;
  } else {
    static const dsp::FftPlan plan(kFft);
    cvec pooled;
    for (std::size_t start = 0; start + kSlot <= upsampled.size(); start += kSlot) {
      const cvec spectrum = plan.forward(
          std::span<const cplx>(upsampled).subspan(start + kCp, kFft));
      for (std::size_t bin : result.kept_bins) pooled.push_back(spectrum[bin]);
    }
    alpha = optimize_scale(pooled);
  }

  // Per-symbol emulation. The DSSS chip alphabet repeats, so identical slots
  // recur throughout the frame; memoize on the exact slot samples (alpha and
  // kept_bins are fixed per frame, so the slot fully determines the output).
  struct SlotResult {
    cvec symbol;
    SymbolDiagnostics diagnostics;
    cvec grid;
  };
  std::unordered_map<std::string, SlotResult> lut;
  result.wifi_waveform_20mhz.reserve(upsampled.size());
  for (std::size_t start = 0; start + kSlot <= upsampled.size(); start += kSlot) {
    const auto slot = std::span<const cplx>(upsampled).subspan(start, kSlot);
    const SlotResult* cached = nullptr;
    if (config_.memoize) {
      std::string key(reinterpret_cast<const char*>(slot.data()),
                      kSlot * sizeof(cplx));
      auto it = lut.find(key);
      if (it != lut.end()) {
        CTC_TELEM_COUNT("attack", "lut_hits", 1);
        cached = &it->second;
      } else {
        CTC_TELEM_COUNT("attack", "lut_misses", 1);
        SlotResult fresh;
        fresh.symbol = emulate_symbol(slot, result.kept_bins, alpha,
                                      &fresh.diagnostics, &fresh.grid);
        cached = &lut.emplace(std::move(key), std::move(fresh)).first->second;
      }
    }
    SymbolDiagnostics diagnostics;
    cvec symbol;
    cvec grid;
    if (cached != nullptr) {
      diagnostics = cached->diagnostics;
      symbol = cached->symbol;
      grid = cached->grid;
    } else {
      symbol = emulate_symbol(slot, result.kept_bins, alpha, &diagnostics, &grid);
    }
    result.wifi_waveform_20mhz.insert(result.wifi_waveform_20mhz.end(),
                                      symbol.begin(), symbol.end());
    result.diagnostics.push_back(diagnostics);
    result.symbol_grids.push_back(std::move(grid));
    // The paper's three distortion sources (Sec. V), one metric each: the
    // 0.8 us head each symbol sacrifices to the cyclic prefix, the OFDM
    // bins zeroed by subcarrier truncation, and the energy the 64-QAM grid
    // snap discards.
    CTC_TELEM_COUNT("attack", "symbols", 1);
    CTC_TELEM_COUNT("attack", "cp_samples_overwritten", kCp);
    CTC_TELEM_COUNT("attack", "subcarriers_dropped",
                    kFft - result.kept_bins.size());
    CTC_TELEM_GAUGE("attack", "qam_error_energy",
                    diagnostics.quantization_error);
    CTC_TELEM_GAUGE("attack", "truncated_energy", diagnostics.discarded_energy);
  }
  CTC_TELEM_GAUGE("attack", "alpha", alpha);

  // What the ZigBee front end sees: 2 MHz channel filter + decimation.
  result.emulated_4mhz = dsp::decimate(result.wifi_waveform_20mhz, config_.interpolation);
  result.emulated_4mhz.resize(observed_4mhz.size(), cplx{0.0, 0.0});
  return result;
}

}  // namespace ctc::attack
