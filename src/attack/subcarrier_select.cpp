#include "attack/subcarrier_select.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dsp/fft.h"
#include "dsp/require.h"
#include "wifi/ofdm.h"

namespace ctc::attack {

SubcarrierSelector::SubcarrierSelector(SelectionConfig config) : config_(config) {
  CTC_REQUIRE(config_.num_kept >= 1 && config_.num_kept <= wifi::kNumSubcarriers);
}

std::vector<rvec> SubcarrierSelector::window_magnitudes(
    std::span<const cplx> waveform20mhz) const {
  static const dsp::FftPlan plan(wifi::kNumSubcarriers);
  std::vector<rvec> magnitudes;
  const std::size_t slot = wifi::kSymbolLength;  // 80 samples
  for (std::size_t start = 0; start + slot <= waveform20mhz.size(); start += slot) {
    const auto window =
        waveform20mhz.subspan(start + wifi::kCyclicPrefixLength, wifi::kNumSubcarriers);
    const cvec spectrum = plan.forward(window);
    rvec magnitude(spectrum.size());
    for (std::size_t k = 0; k < spectrum.size(); ++k) magnitude[k] = std::abs(spectrum[k]);
    magnitudes.push_back(std::move(magnitude));
  }
  return magnitudes;
}

SelectionResult SubcarrierSelector::select(std::span<const rvec> magnitudes) const {
  CTC_REQUIRE_MSG(!magnitudes.empty(), "need at least one analysis window");
  const std::size_t n = magnitudes.front().size();
  SelectionResult result;
  result.votes.assign(n, 0);
  result.magnitudes.assign(magnitudes.begin(), magnitudes.end());

  // Coarse estimation: binary highlight per window.
  for (const rvec& window : magnitudes) {
    CTC_REQUIRE(window.size() == n);
    for (std::size_t k = 0; k < n; ++k) {
      if (window[k] > config_.coarse_threshold) ++result.votes[k];
    }
  }

  // Detailed estimation: the num_kept most-voted indexes (ties broken toward
  // larger total magnitude so the choice is deterministic and sensible).
  rvec totals(n, 0.0);
  for (const rvec& window : magnitudes) {
    for (std::size_t k = 0; k < n; ++k) totals[k] += window[k];
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (result.votes[a] != result.votes[b]) return result.votes[a] > result.votes[b];
    return totals[a] > totals[b];
  });
  result.bins.assign(order.begin(), order.begin() + config_.num_kept);
  std::sort(result.bins.begin(), result.bins.end());
  return result;
}

SelectionResult SubcarrierSelector::select_from_waveform(
    std::span<const cplx> waveform20mhz) const {
  const auto magnitudes = window_magnitudes(waveform20mhz);
  return select(magnitudes);
}

std::vector<std::size_t> SubcarrierSelector::paper_default_bins() {
  return {0, 1, 2, 3, 61, 62, 63};
}

}  // namespace ctc::attack
