#include "attack/bit_extract.h"

#include <cmath>

#include "dsp/require.h"
#include "wifi/interleaver.h"
#include "wifi/ofdm.h"
#include "wifi/qam.h"

namespace ctc::attack {

ExtractedBits extract_wifi_bits(std::span<const cvec> zigbee_centered_grids,
                                double alpha, const CarrierPlan& plan) {
  CTC_REQUIRE(alpha > 0.0);
  ExtractedBits result;
  result.tx_gain = alpha * std::sqrt(42.0);
  const auto& data_indexes = wifi::data_subcarrier_indexes();
  const std::size_t cbps = wifi::kNumDataSubcarriers * 6;

  for (const cvec& grid : zigbee_centered_grids) {
    const cvec wifi_grid = allocate_to_wifi_grid(grid, plan);
    // Demap each data subcarrier against the alpha-scaled grid: dividing by
    // tx_gain puts the points on the standard K_MOD = 1/sqrt(42) lattice.
    cvec points(wifi::kNumDataSubcarriers);
    for (std::size_t n = 0; n < wifi::kNumDataSubcarriers; ++n) {
      points[n] = wifi_grid[wifi::subcarrier_to_bin(data_indexes[n])] / result.tx_gain;
    }
    bitvec interleaved = wifi::qam_demap(points, wifi::Modulation::qam64);
    CTC_REQUIRE(interleaved.size() == cbps);
    result.coded_bits_per_symbol.push_back(
        wifi::deinterleave(interleaved, cbps, 6));
    result.interleaved_bits_per_symbol.push_back(std::move(interleaved));
  }
  return result;
}

std::vector<cvec> grids_from_interleaved_bits(
    std::span<const bitvec> interleaved_bits_per_symbol, double tx_gain) {
  std::vector<cvec> grids;
  grids.reserve(interleaved_bits_per_symbol.size());
  for (std::size_t s = 0; s < interleaved_bits_per_symbol.size(); ++s) {
    const cvec points =
        wifi::qam_map(interleaved_bits_per_symbol[s], wifi::Modulation::qam64);
    cvec scaled(points.size());
    for (std::size_t n = 0; n < points.size(); ++n) scaled[n] = points[n] * tx_gain;
    grids.push_back(wifi::assemble_symbol_grid(scaled, s));
  }
  return grids;
}

}  // namespace ctc::attack
