#include "attack/carrier_allocation.h"

#include <cmath>

#include "dsp/require.h"
#include "dsp/resample.h"
#include "wifi/ofdm.h"

namespace ctc::attack {

int CarrierPlan::subcarrier_shift() const {
  const double spacing = wifi_sample_rate_hz / static_cast<double>(wifi::kNumSubcarriers);
  const double shift = offset_hz() / spacing;
  const int rounded = static_cast<int>(std::lround(shift));
  CTC_REQUIRE_MSG(std::abs(shift - rounded) < 1e-6,
                  "center offset must be an integer number of subcarriers");
  return rounded;
}

cvec allocate_to_wifi_grid(std::span<const cplx> zigbee_centered_grid,
                           const CarrierPlan& plan) {
  CTC_REQUIRE(zigbee_centered_grid.size() == wifi::kNumSubcarriers);
  const int shift = plan.subcarrier_shift();
  const int n = static_cast<int>(wifi::kNumSubcarriers);
  cvec wifi_grid(wifi::kNumSubcarriers, cplx{0.0, 0.0});
  for (int bin = 0; bin < n; ++bin) {
    const cplx value = zigbee_centered_grid[static_cast<std::size_t>(bin)];
    if (std::abs(value) == 0.0) continue;
    const int target = ((bin + shift) % n + n) % n;
    // Logical subcarrier index of the target bin (-32..31).
    const int logical = target < n / 2 ? target : target - n;
    const bool is_pilot = logical == -21 || logical == -7 || logical == 7 || logical == 21;
    CTC_REQUIRE_MSG(!is_pilot && logical != 0,
                    "carrier plan collides with a pilot or DC subcarrier");
    CTC_REQUIRE_MSG(logical >= -26 && logical <= 26,
                    "carrier plan lands outside the occupied WiFi band");
    wifi_grid[static_cast<std::size_t>(target)] = value;
  }
  return wifi_grid;
}

cvec extract_from_wifi_grid(std::span<const cplx> wifi_grid,
                            const CarrierPlan& plan) {
  CTC_REQUIRE(wifi_grid.size() == wifi::kNumSubcarriers);
  const int shift = plan.subcarrier_shift();
  const int n = static_cast<int>(wifi::kNumSubcarriers);
  cvec grid(wifi::kNumSubcarriers, cplx{0.0, 0.0});
  for (int bin = 0; bin < n; ++bin) {
    const int source = ((bin + shift) % n + n) % n;
    grid[static_cast<std::size_t>(bin)] = wifi_grid[static_cast<std::size_t>(source)];
  }
  return grid;
}

cvec wifi_band_to_zigbee_baseband(std::span<const cplx> waveform20mhz,
                                  const CarrierPlan& plan) {
  // The ZigBee band sits at offset_hz in the WiFi baseband; mix it to DC.
  const cvec mixed =
      dsp::frequency_shift(waveform20mhz, -plan.offset_hz(), plan.wifi_sample_rate_hz);
  const auto factor = static_cast<std::size_t>(
      std::lround(plan.wifi_sample_rate_hz / 4.0e6));
  return dsp::decimate(mixed, factor);
}

}  // namespace ctc::attack
