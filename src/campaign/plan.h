// Campaign planner: spec -> stages of work units with stable shard ids.
//
// Planning is pure (no I/O, no randomness): the same spec always yields the
// same unit list, ids, and run indices. That invariant is what makes
// sharding and resume sound — a unit's identity never depends on which
// process, shard or attempt executes it.
#pragma once

#include <vector>

#include "campaign/experiment.h"
#include "campaign/spec.h"

namespace ctc::campaign {

struct CampaignPlan {
  const Experiment* experiment = nullptr;
  std::vector<std::vector<WorkUnit>> stages;
  std::size_t units_total = 0;
};

/// Plans `spec` end to end. Throws SpecError for unknown experiments,
/// unsupported axes, or a planner contract violation (unit indices must be
/// globally sequential so `index == run_index` and `index % shards` are
/// stable partition keys).
CampaignPlan plan_campaign(const CampaignSpec& spec);

}  // namespace ctc::campaign
