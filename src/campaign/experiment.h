// Campaign experiment runners: the bridge between a declarative spec and
// the simulation layer.
//
// An Experiment knows how to turn a spec's grid cells into *work units* —
// the atom of scheduling, checkpointing and sharding — and how to execute
// one unit on a sim::TrialEngine. The planner assigns every unit a stable
// run index in the exact order a sequential bench binary would consume
// engine runs; each unit then draws from the RNG stream family
// `Rng::for_stream(seed, run_index << 32 | trial)`. Because a unit's
// randomness is a pure function of (seed, run_index, trial), ANY partition
// of units across shards, processes or resume boundaries reproduces the
// sequential run bit-for-bit.
//
// Experiments may need a barrier between unit groups (fig12 calibrates a
// threshold on training units before testing); units are therefore grouped
// into stages, and reduce_stage() folds a finished stage's results into a
// state object that later stages' units can read.
#pragma once

#include <string_view>
#include <vector>

#include "campaign/json.h"
#include "campaign/spec.h"
#include "sim/engine.h"

namespace ctc::campaign {

/// One schedulable, checkpointable unit of work.
struct WorkUnit {
  std::size_t index = 0;      ///< global plan order (stable shard key)
  std::size_t stage = 0;
  std::string id;             ///< stable id, e.g. "u0003.attack.snr_db=9"
  std::uint64_t run_index = 0;  ///< engine run family (== index by design)
  std::string role;           ///< experiment-defined ("attack", "train_emulated", ...)
  CampaignSpec::Cell cell;
  std::size_t trials = 0;
};

class Experiment {
 public:
  virtual ~Experiment() = default;

  virtual std::string_view name() const = 0;

  /// Validates experiment-specific spec content (axis names etc.).
  /// Throws SpecError on violations.
  virtual void check_spec(const CampaignSpec& spec) const = 0;

  virtual std::size_t num_stages(const CampaignSpec& spec) const = 0;

  /// Plans one stage's units. Must be a pure function of the spec (never of
  /// results), so the full unit list — and therefore shard membership — is
  /// known before anything runs.
  virtual std::vector<WorkUnit> plan_stage(const CampaignSpec& spec,
                                           std::size_t stage) const = 0;

  /// The state object handed to stage-0 units (threshold overrides etc.).
  virtual Json initial_state(const CampaignSpec& spec) const;

  /// Executes one unit. The engine is already seek_run() to the unit's run
  /// index. Returns the unit's result document (checkpointed verbatim; all
  /// doubles survive the %.17g round trip bit-exactly).
  virtual Json run_unit(const CampaignSpec& spec, const WorkUnit& unit,
                        const Json& state, sim::TrialEngine& engine) const = 0;

  /// Folds a completed stage's unit results (plan order) into the state
  /// passed to later stages. Deterministic: inputs come from the manifest
  /// on resume and must reduce to the identical state.
  virtual Json reduce_stage(const CampaignSpec& spec, std::size_t stage,
                            const std::vector<const Json*>& unit_results,
                            Json state) const;

  /// The merged campaign report. For ported benches this line is
  /// byte-identical to the bench binary's --json output.
  virtual Json final_report(
      const CampaignSpec& spec,
      const std::vector<std::vector<const Json*>>& results_by_stage,
      const Json& state) const = 0;
};

/// Looks up a registered experiment; nullptr when unknown.
const Experiment* find_experiment(std::string_view name);

/// Names of all registered experiments (for error messages / --help).
std::vector<std::string_view> experiment_names();

}  // namespace ctc::campaign
