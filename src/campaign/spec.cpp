#include "campaign/spec.h"

#include <cmath>

namespace ctc::campaign {

namespace {

[[noreturn]] void fail(const std::string& what) { throw SpecError("spec: " + what); }

void check_known_keys(const Json& object, std::string_view context,
                      std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : object.as_object()) {
    bool ok = false;
    for (std::string_view candidate : known) {
      if (key == candidate) {
        ok = true;
        break;
      }
    }
    if (!ok) fail("unknown key '" + key + "' in " + std::string(context));
  }
}

std::size_t parse_count(const Json& value, const char* key) {
  if (!value.is_integer() || value.as_int() < 1) {
    fail(std::string(key) + " must be a positive integer");
  }
  return static_cast<std::size_t>(value.as_int());
}

double parse_positive(const Json& value, const char* key) {
  if (!value.is_number() || value.as_number() <= 0.0) {
    fail(std::string(key) + " must be a positive number");
  }
  return value.as_number();
}

/// Expands {"start":a,"stop":b,"step":s} inclusively. Integer output when
/// all three bounds are integer literals, double otherwise.
std::vector<Json> expand_range(const Json& range) {
  check_known_keys(range, "range", {"start", "stop", "step"});
  const Json* start_ptr = range.find("start");
  const Json* stop_ptr = range.find("stop");
  const Json* step_ptr = range.find("step");
  if (start_ptr == nullptr || stop_ptr == nullptr || step_ptr == nullptr) {
    fail("range needs start, stop and step");
  }
  const Json& start = *start_ptr;
  const Json& stop = *stop_ptr;
  const Json& step = *step_ptr;
  if (!start.is_number() || !stop.is_number() || !step.is_number()) {
    fail("range start/stop/step must be numbers");
  }
  const double step_value = step.as_number();
  if (step_value == 0.0) fail("range step must be nonzero");
  const double span = stop.as_number() - start.as_number();
  if (span / step_value < -1e-9) fail("range never reaches stop");
  const std::size_t count =
      static_cast<std::size_t>(std::floor(span / step_value + 1e-9)) + 1;
  if (count > 100000) fail("range expands to more than 100000 values");

  const bool integral =
      start.is_integer() && stop.is_integer() && step.is_integer();
  std::vector<Json> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (integral) {
      values.emplace_back(start.as_int() +
                          static_cast<std::int64_t>(i) * step.as_int());
    } else {
      values.emplace_back(start.as_number() +
                          static_cast<double>(i) * step_value);
    }
  }
  return values;
}

double parse_number(const Json& value, const char* key) {
  if (!value.is_number()) fail(std::string(key) + " must be a number");
  return value.as_number();
}

CampaignSpec::MeshSettings parse_mesh(const Json& object) {
  if (!object.is_object()) fail("\"mesh\" must be an object");
  check_known_keys(object, "mesh settings",
                   {"geometry", "extent_m", "attacker_x", "attacker_y",
                    "shadow_sigma_db", "snr_offset_db"});
  CampaignSpec::MeshSettings mesh;
  if (const Json* v = object.find("geometry")) {
    if (!v->is_string() ||
        (v->as_string() != "grid" && v->as_string() != "ring")) {
      fail("mesh geometry must be \"grid\" or \"ring\"");
    }
    mesh.geometry = v->as_string();
  }
  if (const Json* v = object.find("extent_m")) {
    mesh.extent_m = parse_positive(*v, "mesh extent_m");
  }
  if (const Json* v = object.find("attacker_x")) {
    mesh.attacker_x = parse_number(*v, "mesh attacker_x");
  }
  if (const Json* v = object.find("attacker_y")) {
    mesh.attacker_y = parse_number(*v, "mesh attacker_y");
  }
  if (const Json* v = object.find("shadow_sigma_db")) {
    mesh.shadow_sigma_db = parse_number(*v, "mesh shadow_sigma_db");
    if (mesh.shadow_sigma_db < 0.0) {
      fail("mesh shadow_sigma_db must be non-negative");
    }
  }
  if (const Json* v = object.find("snr_offset_db")) {
    mesh.snr_offset_db = parse_number(*v, "mesh snr_offset_db");
  }
  return mesh;
}

GridAxis parse_axis(const Json& entry) {
  if (!entry.is_object()) fail("grid entries must be objects");
  check_known_keys(entry, "grid entry", {"axis", "list", "range"});
  GridAxis axis;
  const Json* name = entry.find("axis");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    fail("grid entry needs a nonempty \"axis\" name");
  }
  axis.name = name->as_string();
  const Json* list = entry.find("list");
  const Json* range = entry.find("range");
  if ((list != nullptr) == (range != nullptr)) {
    fail("grid axis '" + axis.name + "' needs exactly one of \"list\"/\"range\"");
  }
  if (list != nullptr) {
    if (!list->is_array() || list->as_array().empty()) {
      fail("grid axis '" + axis.name + "' has an empty value list");
    }
    for (const Json& value : list->as_array()) {
      if (!value.is_number()) {
        fail("grid axis '" + axis.name + "' has a non-numeric value");
      }
      axis.values.push_back(value);
    }
  } else {
    axis.values = expand_range(*range);
  }
  return axis;
}

}  // namespace

std::string CampaignSpec::Cell::label() const {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += values[i].first + "=" + values[i].second.dump();
  }
  return out;
}

const Json* CampaignSpec::Cell::find(std::string_view axis) const {
  for (const auto& [name, value] : values) {
    if (name == axis) return &value;
  }
  return nullptr;
}

double CampaignSpec::Cell::number_or(std::string_view axis,
                                     double fallback) const {
  const Json* value = find(axis);
  return value != nullptr ? value->as_number() : fallback;
}

std::uint64_t CampaignSpec::Cell::uint_or(std::string_view axis,
                                          std::uint64_t fallback) const {
  const Json* value = find(axis);
  if (value == nullptr) return fallback;
  if (!value->is_integer() || value->as_int() < 0) {
    fail("axis '" + std::string(axis) + "' must hold non-negative integers");
  }
  return value->as_uint();
}

std::vector<CampaignSpec::Cell> CampaignSpec::cells() const {
  std::size_t total = 1;
  for (const GridAxis& axis : grid) total *= axis.values.size();
  std::vector<Cell> cells;
  cells.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    Cell cell;
    cell.index = index;
    // Row-major: the first axis varies slowest.
    std::size_t remainder = index;
    std::size_t block = total;
    for (const GridAxis& axis : grid) {
      block /= axis.values.size();
      const std::size_t pick = remainder / block;
      remainder %= block;
      cell.values.emplace_back(axis.name, axis.values[pick]);
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

CampaignSpec CampaignSpec::from_json(const Json& json) {
  if (!json.is_object()) fail("document must be a JSON object");
  const Json* schema = json.find("schema");
  if (schema == nullptr || !schema->is_integer()) {
    fail("missing integer \"schema\" field");
  }
  if (schema->as_int() != kSchemaVersion) {
    fail("unsupported schema version " + std::to_string(schema->as_int()) +
         " (this build understands " + std::to_string(kSchemaVersion) + ")");
  }
  check_known_keys(json, "campaign spec",
                   {"schema", "name", "experiment", "seed", "workload_frames",
                    "trials", "authentic_trials", "train_trials", "test_trials",
                    "threshold", "alpha", "mesh", "grid"});

  CampaignSpec spec;
  const Json* name = json.find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    fail("\"name\" must be a nonempty string");
  }
  spec.name = name->as_string();
  const Json* experiment = json.find("experiment");
  if (experiment == nullptr || !experiment->is_string() ||
      experiment->as_string().empty()) {
    fail("\"experiment\" must be a nonempty string");
  }
  spec.experiment = experiment->as_string();

  if (const Json* seed = json.find("seed")) {
    if (!seed->is_integer() || seed->as_int() < 0) {
      fail("\"seed\" must be a non-negative integer");
    }
    spec.seed = seed->as_uint();
  }
  if (const Json* v = json.find("workload_frames")) {
    spec.workload_frames = parse_count(*v, "workload_frames");
  }
  if (const Json* v = json.find("trials")) spec.trials = parse_count(*v, "trials");
  if (const Json* v = json.find("authentic_trials")) {
    spec.authentic_trials = parse_count(*v, "authentic_trials");
  }
  if (const Json* v = json.find("train_trials")) {
    spec.train_trials = parse_count(*v, "train_trials");
  }
  if (const Json* v = json.find("test_trials")) {
    spec.test_trials = parse_count(*v, "test_trials");
  }
  if (const Json* v = json.find("threshold")) {
    spec.threshold = parse_positive(*v, "threshold");
  }
  if (const Json* v = json.find("alpha")) {
    spec.alpha = parse_positive(*v, "alpha");
  }
  if (const Json* v = json.find("mesh")) {
    spec.mesh = parse_mesh(*v);
  }

  if (const Json* grid = json.find("grid")) {
    if (!grid->is_array()) fail("\"grid\" must be an array of axis objects");
    for (const Json& entry : grid->as_array()) {
      GridAxis axis = parse_axis(entry);
      for (const GridAxis& existing : spec.grid) {
        if (existing.name == axis.name) {
          fail("duplicate grid axis '" + axis.name + "'");
        }
      }
      spec.grid.push_back(std::move(axis));
    }
  }
  return spec;
}

CampaignSpec CampaignSpec::parse(std::string_view text) {
  return from_json(Json::parse(text));
}

Json CampaignSpec::to_json() const {
  Json out = Json::object();
  out.set("schema", Json(kSchemaVersion));
  out.set("name", Json(name));
  out.set("experiment", Json(experiment));
  out.set("seed", Json(seed));
  out.set("workload_frames", Json(workload_frames));
  out.set("trials", Json(trials));
  out.set("authentic_trials", Json(authentic_trials));
  out.set("train_trials", Json(train_trials));
  out.set("test_trials", Json(test_trials));
  if (threshold) out.set("threshold", Json(*threshold));
  if (alpha) out.set("alpha", Json(*alpha));
  if (mesh) {
    Json mesh_json = Json::object();
    mesh_json.set("geometry", Json(mesh->geometry));
    mesh_json.set("extent_m", Json(mesh->extent_m));
    mesh_json.set("attacker_x", Json(mesh->attacker_x));
    mesh_json.set("attacker_y", Json(mesh->attacker_y));
    mesh_json.set("shadow_sigma_db", Json(mesh->shadow_sigma_db));
    mesh_json.set("snr_offset_db", Json(mesh->snr_offset_db));
    out.set("mesh", std::move(mesh_json));
  }
  Json grid_json = Json::array();
  for (const GridAxis& axis : grid) {
    Json entry = Json::object();
    entry.set("axis", Json(axis.name));
    Json list = Json::array();
    for (const Json& value : axis.values) list.push_back(value);
    entry.set("list", std::move(list));
    grid_json.push_back(std::move(entry));
  }
  out.set("grid", std::move(grid_json));
  return out;
}

}  // namespace ctc::campaign
