#include "campaign/executor.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <map>
#include <utility>
#include <vector>

#include "campaign/manifest.h"
#include "sim/telemetry.h"

namespace ctc::campaign {

namespace {

std::string csv_field(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

/// One row per work unit: identity, axis values, and every scalar numeric
/// field of the unit's result (array fields stay in the manifest).
std::string render_cells_csv(const CampaignPlan& plan, const CampaignSpec& spec,
                             const std::map<std::size_t, Json>& results) {
  std::vector<std::string> axis_names;
  for (const GridAxis& axis : spec.grid) axis_names.push_back(axis.name);
  std::vector<std::string> metric_names;
  for (const auto& stage : plan.stages) {
    for (const WorkUnit& unit : stage) {
      const auto it = results.find(unit.index);
      if (it == results.end()) continue;
      for (const auto& [key, value] : it->second.as_object()) {
        if (!value.is_number()) continue;
        bool seen = false;
        for (const std::string& existing : metric_names) {
          if (existing == key) { seen = true; break; }
        }
        if (!seen) metric_names.push_back(key);
      }
    }
  }

  std::string csv = "index,stage,id,run_index,role,trials";
  for (const std::string& axis : axis_names) csv += "," + csv_field(axis);
  for (const std::string& metric : metric_names) csv += "," + csv_field(metric);
  csv += "\n";
  for (const auto& stage : plan.stages) {
    for (const WorkUnit& unit : stage) {
      csv += std::to_string(unit.index) + "," + std::to_string(unit.stage) +
             "," + csv_field(unit.id) + "," + std::to_string(unit.run_index) +
             "," + csv_field(unit.role) + "," + std::to_string(unit.trials);
      for (const std::string& axis : axis_names) {
        const Json* value = unit.cell.find(axis);
        csv += ",";
        if (value != nullptr) csv += value->dump();
      }
      const auto it = results.find(unit.index);
      for (const std::string& metric : metric_names) {
        csv += ",";
        if (it == results.end()) continue;
        if (const Json* value = it->second.find(metric); value && value->is_number()) {
          csv += value->dump();
        }
      }
      csv += "\n";
    }
  }
  return csv;
}

}  // namespace

CampaignOutcome run_campaign(const CampaignSpec& spec,
                             const ExecutorOptions& options) {
  if (options.out_dir.empty()) {
    throw CampaignError("campaign: output directory must not be empty");
  }
  if (options.shards == 0) {
    throw CampaignError("campaign: --shards must be >= 1");
  }
  if (options.shard && *options.shard >= options.shards) {
    throw CampaignError("campaign: --shard must be < --shards");
  }

  const CampaignPlan plan = plan_campaign(spec);
  const std::string fingerprint = spec_fingerprint(spec);
  std::filesystem::create_directories(options.out_dir);
  const std::string manifest_path = options.out_dir + "/manifest.json";

  Manifest manifest;
  if (auto existing = load_manifest(manifest_path)) {
    if (existing->fingerprint != fingerprint ||
        existing->campaign != spec.name ||
        existing->units_total != plan.units_total) {
      throw CampaignError(
          "campaign: " + manifest_path +
          " belongs to a different spec (fingerprint mismatch); use a fresh "
          "--out directory or delete the stale one");
    }
    manifest = std::move(*existing);
  } else {
    manifest.campaign = spec.name;
    manifest.fingerprint = fingerprint;
    manifest.units_total = plan.units_total;
  }

  std::map<std::size_t, Json> results;
  for (const CompletedUnit& unit : manifest.completed) {
    results.emplace(unit.index, unit.result);
  }

  CampaignOutcome outcome;
  outcome.units_total = plan.units_total;
  outcome.units_done = results.size();

  sim::telemetry::set_enabled(options.telemetry);
  sim::TrialEngine engine({spec.seed, options.threads});
  if (!options.quiet) {
    std::printf("campaign %s: %zu units (%zu done), seed %" PRIu64
                ", threads %zu\n",
                spec.name.c_str(), plan.units_total, results.size(), spec.seed,
                engine.threads());
  }

  Json state = plan.experiment->initial_state(spec);
  bool truncated = false;   // hit --max-units
  bool stage_gap = false;   // a stage is missing units (other shards)
  for (std::size_t stage = 0; stage < plan.stages.size() && !stage_gap; ++stage) {
    for (const WorkUnit& unit : plan.stages[stage]) {
      if (results.count(unit.index) != 0) continue;
      if (options.shard && unit.index % options.shards != *options.shard) {
        continue;
      }
      if (truncated ||
          (options.max_units != 0 && outcome.units_run >= options.max_units)) {
        truncated = true;
        continue;
      }
      engine.seek_run(unit.run_index);
      Json result = plan.experiment->run_unit(spec, unit, state, engine);
      manifest.completed.push_back(
          CompletedUnit{unit.id, unit.index, std::move(result)});
      // Load-merge-save under the manifest lock: concurrent shard processes
      // sharing --out never lose each other's completed units, and the
      // merged view we get back includes their progress.
      manifest = checkpoint_manifest(manifest, manifest_path);
      for (const CompletedUnit& done : manifest.completed) {
        results.emplace(done.index, done.result);
      }
      ++outcome.units_run;
      if (!options.quiet) {
        std::printf("  [%zu/%zu] %s done\n", results.size(), plan.units_total,
                    unit.id.c_str());
      }
    }
    // A stage reduction (e.g. threshold calibration) needs every unit of
    // the stage; stop here when other shards still own some of them. A
    // concurrently running shard may have checkpointed units since our last
    // merge, so absorb the on-disk manifest before deciding.
    bool stage_done = true;
    for (const WorkUnit& unit : plan.stages[stage]) {
      if (results.count(unit.index) == 0) {
        stage_done = false;
        break;
      }
    }
    if (!stage_done) {
      if (auto disk = load_manifest(manifest_path)) {
        for (const CompletedUnit& done : disk->completed) {
          results.emplace(done.index, done.result);
        }
      }
    }
    std::vector<const Json*> stage_results;
    for (const WorkUnit& unit : plan.stages[stage]) {
      const auto it = results.find(unit.index);
      if (it == results.end()) {
        stage_gap = true;
        break;
      }
      stage_results.push_back(&it->second);
    }
    if (!stage_gap) {
      state = plan.experiment->reduce_stage(spec, stage, stage_results,
                                            std::move(state));
    }
  }

  outcome.units_done = results.size();
  if (results.size() < plan.units_total) {
    if (!options.quiet) {
      std::printf("campaign %s: %zu/%zu units complete; rerun to resume\n",
                  spec.name.c_str(), results.size(), plan.units_total);
    }
    return outcome;
  }

  // Merge + artifact store.
  std::vector<std::vector<const Json*>> results_by_stage;
  for (const auto& stage : plan.stages) {
    std::vector<const Json*> stage_results;
    for (const WorkUnit& unit : stage) {
      stage_results.push_back(&results.at(unit.index));
    }
    results_by_stage.push_back(std::move(stage_results));
  }
  const Json report = plan.experiment->final_report(spec, results_by_stage, state);
  outcome.report_json = report.dump();
  outcome.complete = true;
  write_file_atomic(options.out_dir + "/report.json", outcome.report_json);
  write_file_atomic(options.out_dir + "/cells.csv",
                    render_cells_csv(plan, spec, results));
  if (options.telemetry) {
    // Json handles escaping and arbitrary name length (a quote or backslash
    // in the campaign name must not produce invalid telemetry.json).
    const std::string extra = "\"campaign\":" + Json(spec.name).dump() +
                              ",\"seed\":" + Json(spec.seed).dump() + ",";
    write_file_atomic(
        options.out_dir + "/telemetry.json",
        sim::telemetry::to_json(sim::telemetry::collect(),
                                /*include_timers=*/true, extra));
  }
  return outcome;
}

}  // namespace ctc::campaign
