// On-disk campaign checkpoint: the resume manifest.
//
// The executor checkpoints after every completed work unit through a
// load-merge-save cycle serialized by an exclusive flock on
// `manifest.json.lock`: reload the on-disk manifest, merge in this
// process's newly completed units, and rewrite it via the classic
// crash-safe sequence (write to a per-process temp file in the same
// directory, fsync the file, rename() over the target, fsync the
// directory). A campaign killed at any point therefore resumes from the
// last completed unit with no torn or half-written state, concurrent shard
// processes sharing one output directory never lose each other's progress,
// and — because unit randomness is keyed by planner-assigned run indices,
// not execution order — the resumed run's aggregates are bit-identical to
// an uninterrupted one.
//
// The manifest is bound to its spec by a fingerprint over the canonical
// spec JSON, so resuming with a modified spec is rejected instead of
// silently mixing incompatible partial results.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/json.h"
#include "campaign/spec.h"

namespace ctc::campaign {

class ManifestError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CompletedUnit {
  std::string id;
  std::size_t index = 0;
  Json result;
};

struct Manifest {
  static constexpr std::int64_t kSchemaVersion = 1;

  std::string campaign;     ///< spec name
  std::string fingerprint;  ///< spec_fingerprint() of the owning spec
  std::size_t units_total = 0;
  std::vector<CompletedUnit> completed;  ///< in completion order

  Json to_json() const;
  static Manifest from_json(const Json& json);
};

/// FNV-1a 64 over the canonical spec JSON — the resume compatibility key.
std::string spec_fingerprint(const CampaignSpec& spec);

/// Atomically replaces `path` with the serialized manifest (temp file +
/// fsync + rename + directory fsync). Throws ManifestError on I/O failure.
void save_manifest(const Manifest& manifest, const std::string& path);

/// Loads a manifest; std::nullopt when `path` does not exist. Throws
/// ManifestError when the file exists but cannot be parsed.
std::optional<Manifest> load_manifest(const std::string& path);

/// Checkpoints `local` into `path` with a load-merge-save cycle under an
/// exclusive flock on `path + ".lock"`, so any number of shard processes
/// (or threads) sharing one output directory never lose each other's
/// completed units. Disk entries win on index collision; the returned
/// manifest is the merged view, including units completed by other
/// processes. Throws ManifestError when the on-disk manifest belongs to a
/// different spec.
Manifest checkpoint_manifest(const Manifest& local, const std::string& path);

/// Writes `content` + '\n' to `path` via the same atomic sequence (shared
/// by the artifact store for report/CSV files).
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace ctc::campaign
