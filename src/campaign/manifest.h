// On-disk campaign checkpoint: the resume manifest.
//
// The executor checkpoints after every completed work unit by rewriting
// `manifest.json` in the campaign output directory through the classic
// crash-safe sequence: write to a temp file in the same directory, fsync
// the file, rename() over the target, fsync the directory. A campaign
// killed at any point therefore resumes from the last completed unit with
// no torn or half-written state, and — because unit randomness is keyed by
// planner-assigned run indices, not execution order — the resumed run's
// aggregates are bit-identical to an uninterrupted one.
//
// The manifest is bound to its spec by a fingerprint over the canonical
// spec JSON, so resuming with a modified spec is rejected instead of
// silently mixing incompatible partial results.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/json.h"
#include "campaign/spec.h"

namespace ctc::campaign {

class ManifestError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CompletedUnit {
  std::string id;
  std::size_t index = 0;
  Json result;
};

struct Manifest {
  static constexpr std::int64_t kSchemaVersion = 1;

  std::string campaign;     ///< spec name
  std::string fingerprint;  ///< spec_fingerprint() of the owning spec
  std::size_t units_total = 0;
  std::vector<CompletedUnit> completed;  ///< in completion order

  Json to_json() const;
  static Manifest from_json(const Json& json);
};

/// FNV-1a 64 over the canonical spec JSON — the resume compatibility key.
std::string spec_fingerprint(const CampaignSpec& spec);

/// Atomically replaces `path` with the serialized manifest (temp file +
/// fsync + rename + directory fsync). Throws ManifestError on I/O failure.
void save_manifest(const Manifest& manifest, const std::string& path);

/// Loads a manifest; std::nullopt when `path` does not exist. Throws
/// ManifestError when the file exists but cannot be parsed.
std::optional<Manifest> load_manifest(const std::string& path);

/// Writes `content` + '\n' to `path` via the same atomic sequence (shared
/// by the artifact store for report/CSV files).
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace ctc::campaign
