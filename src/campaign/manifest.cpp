#include "campaign/manifest.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_set>

namespace ctc::campaign {

namespace {

[[noreturn]] void fail_io(const std::string& path, const char* what) {
  throw ManifestError("manifest: " + std::string(what) + " " + path + ": " +
                      std::strerror(errno));
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;  // best effort (some filesystems refuse dir opens)
  ::fsync(fd);
  ::close(fd);
}

// Exclusive advisory lock on `<manifest>.lock`, held for the duration of a
// load-merge-save checkpoint. flock() is per open file description, so it
// also serializes concurrent checkpoints from threads of one process.
class ManifestLock {
 public:
  explicit ManifestLock(const std::string& manifest_path) {
    const std::string lock_path = manifest_path + ".lock";
    fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) fail_io(lock_path, "cannot open lock file");
    while (::flock(fd_, LOCK_EX) != 0) {
      if (errno != EINTR) {
        ::close(fd_);
        fail_io(lock_path, "cannot lock");
      }
    }
  }
  ManifestLock(const ManifestLock&) = delete;
  ManifestLock& operator=(const ManifestLock&) = delete;
  ~ManifestLock() { ::close(fd_); }  // closing releases the flock

 private:
  int fd_ = -1;
};

}  // namespace

Json Manifest::to_json() const {
  Json out = Json::object();
  out.set("manifest_schema", Json(kSchemaVersion));
  out.set("campaign", Json(campaign));
  out.set("fingerprint", Json(fingerprint));
  out.set("units_total", Json(units_total));
  Json units = Json::array();
  for (const CompletedUnit& unit : completed) {
    Json entry = Json::object();
    entry.set("id", Json(unit.id));
    entry.set("index", Json(unit.index));
    entry.set("result", unit.result);
    units.push_back(std::move(entry));
  }
  out.set("completed", std::move(units));
  return out;
}

Manifest Manifest::from_json(const Json& json) {
  const Json& schema = json.at("manifest_schema");
  if (!schema.is_integer() || schema.as_int() != kSchemaVersion) {
    throw ManifestError("manifest: unsupported manifest_schema");
  }
  Manifest manifest;
  manifest.campaign = json.at("campaign").as_string();
  manifest.fingerprint = json.at("fingerprint").as_string();
  manifest.units_total = static_cast<std::size_t>(json.at("units_total").as_uint());
  for (const Json& entry : json.at("completed").as_array()) {
    CompletedUnit unit;
    unit.id = entry.at("id").as_string();
    unit.index = static_cast<std::size_t>(entry.at("index").as_uint());
    unit.result = entry.at("result");
    manifest.completed.push_back(std::move(unit));
  }
  return manifest;
}

std::string spec_fingerprint(const CampaignSpec& spec) {
  const std::string canonical = spec.to_json().dump();
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (unsigned char c : canonical) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  char buffer[20];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  // Per-writer temp name: concurrent writers of one path (shard processes
  // sharing --out, or threads within one) must never interleave into a
  // shared temp file. pid disambiguates processes, the counter threads.
  static std::atomic<unsigned long> counter{0};
  // The pid names a TEMP FILE only — it never reaches manifest/report
  // content, so checkpoint artifacts stay byte-identical across processes.
  const std::string temp =
      path + ".tmp." +
      std::to_string(static_cast<long>(::getpid())) +  // det-lint: allow(rng)
      "." + std::to_string(counter.fetch_add(1));
  std::FILE* file = std::fopen(temp.c_str(), "w");
  if (file == nullptr) fail_io(temp, "cannot open");
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), file) == content.size() &&
      std::fputc('\n', file) != EOF && std::fflush(file) == 0 &&
      ::fsync(::fileno(file)) == 0;
  if (std::fclose(file) != 0 || !wrote) {
    std::remove(temp.c_str());
    fail_io(temp, "cannot write");
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    fail_io(path, "cannot rename into");
  }
  fsync_path(parent_dir(path));
}

void save_manifest(const Manifest& manifest, const std::string& path) {
  write_file_atomic(path, manifest.to_json().dump());
}

Manifest checkpoint_manifest(const Manifest& local, const std::string& path) {
  ManifestLock lock(path);
  Manifest merged = local;
  if (auto disk = load_manifest(path)) {
    if (disk->campaign != local.campaign ||
        disk->fingerprint != local.fingerprint ||
        disk->units_total != local.units_total) {
      throw ManifestError("manifest: " + path +
                          " belongs to a different spec (fingerprint changed "
                          "underneath a running campaign)");
    }
    // Disk entries win (other processes own them); keep their completion
    // order, then append this process's units they have not seen yet.
    merged.completed = std::move(disk->completed);
    std::unordered_set<std::size_t> on_disk;
    for (const CompletedUnit& unit : merged.completed) on_disk.insert(unit.index);
    for (const CompletedUnit& unit : local.completed) {
      if (on_disk.count(unit.index) == 0) merged.completed.push_back(unit);
    }
  }
  save_manifest(merged, path);
  return merged;
}

std::optional<Manifest> load_manifest(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string content;
  char buffer[4096];
  std::size_t read;
  while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);
  try {
    return Manifest::from_json(Json::parse(content));
  } catch (const JsonError& error) {
    throw ManifestError("manifest: " + path + " is corrupt: " + error.what());
  }
}

}  // namespace ctc::campaign
