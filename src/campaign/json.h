// Minimal ordered JSON value for the campaign layer.
//
// The campaign subsystem needs to (a) parse declarative scenario specs,
// (b) checkpoint work-unit results to disk and read them back bit-exactly,
// and (c) emit a merged report that is byte-identical to the one-line
// --json output of the bench binaries. Those three constraints shape this
// class:
//   * objects preserve insertion order (key order is part of the bench
//     report contract);
//   * integers and doubles are distinct value kinds, printed as %PRId64 and
//     %.17g respectively — exactly how bench::JsonReport prints, so numbers
//     survive a dump/parse/dump cycle byte-for-byte;
//   * no third-party dependency; the parser is a small recursive descent
//     over the JSON grammar with precise error positions.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace ctc::campaign {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  using Array = std::vector<Json>;
  /// Insertion-ordered key/value pairs (no sorting, duplicates rejected by
  /// the parser).
  using Object = std::vector<std::pair<std::string, Json>>;

  enum class Type { null, boolean, integer, number, string, array, object };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool value) : value_(value) {}
  Json(std::int64_t value) : value_(value) {}
  Json(int value) : value_(static_cast<std::int64_t>(value)) {}
  Json(std::uint64_t value);
  Json(double value) : value_(value) {}
  Json(std::string value) : value_(std::move(value)) {}
  Json(const char* value) : value_(std::string(value)) {}
  Json(Array value) : value_(std::move(value)) {}
  Json(Object value) : value_(std::move(value)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  /// Parses `text` as a single JSON document (trailing non-space rejected).
  static Json parse(std::string_view text);

  Type type() const;
  bool is_null() const { return type() == Type::null; }
  bool is_bool() const { return type() == Type::boolean; }
  bool is_integer() const { return type() == Type::integer; }
  /// Either an integer or a floating-point literal.
  bool is_number() const {
    return type() == Type::integer || type() == Type::number;
  }
  bool is_string() const { return type() == Type::string; }
  bool is_array() const { return type() == Type::array; }
  bool is_object() const { return type() == Type::object; }

  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_number() const;  ///< integer or double, widened to double
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  // -- Object helpers ------------------------------------------------------
  /// Pointer to the value under `key`, or nullptr when absent.
  const Json* find(std::string_view key) const;
  /// The value under `key`; throws JsonError when absent.
  const Json& at(std::string_view key) const;
  /// Appends (or replaces, preserving position) `key`.
  void set(std::string key, Json value);

  // -- Array helpers -------------------------------------------------------
  void push_back(Json value);
  /// Array/object element count; throws for scalars.
  std::size_t size() const;

  /// Compact serialization: no whitespace, insertion order, integers as
  /// %PRId64, doubles as %.17g, strings escaping only '"' and '\' plus
  /// control characters — matching bench::JsonReport byte-for-byte for the
  /// values benches emit.
  std::string dump() const;

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

}  // namespace ctc::campaign
