// Declarative experiment campaign specs (versioned JSON schema).
//
// A campaign spec turns a parameter sweep — previously a hand-written bench
// `main()` — into data: which experiment to run, the link/defense settings,
// and a sweep grid of axis values (explicit lists or start/stop/step
// ranges). The spec layer is strict by design: unknown keys, duplicate
// axes, empty axis lists and unsupported schema versions are all hard
// errors, so a typo'd spec fails fast instead of silently sweeping the
// wrong surface. docs/CAMPAIGNS.md documents the schema.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "campaign/json.h"

namespace ctc::campaign {

class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One sweep axis, already expanded to its value list (ranges are expanded
/// at parse time; to_json() canonicalizes them back to lists).
struct GridAxis {
  std::string name;
  std::vector<Json> values;  ///< numbers only (integer or double)
};

struct CampaignSpec {
  /// Bumped whenever the spec layout changes shape; parse rejects others.
  static constexpr std::int64_t kSchemaVersion = 1;

  std::string name;        ///< campaign id; also the report's "bench" field
  std::string experiment;  ///< registered runner ("attack_success", ...)
  std::uint64_t seed = 20190707;

  std::size_t workload_frames = 100;  ///< "00000".."000NN" text workload

  // Per-unit trial counts. The `attack_success` experiment uses `trials`
  // (emulated link) and `authentic_trials`; `threshold_sweep` uses
  // `train_trials` and `test_trials` per link per cell.
  std::size_t trials = 1000;
  std::size_t authentic_trials = 200;
  std::size_t train_trials = 50;
  std::size_t test_trials = 100;

  /// threshold_sweep: fixed decision threshold Q. Unset = calibrate from a
  /// training stage exactly like bench/fig12_threshold.
  std::optional<double> threshold;
  /// attack emulator: fixed QAM scale alpha. Unset = the emulator default.
  std::optional<double> alpha;

  /// Sensor-field settings for the mesh experiments (`fusion_detection`,
  /// `localization_error`). Optional "mesh" object in the spec; strict
  /// like everything else (unknown keys are hard errors). Grid axes
  /// (`sensors`, `snr_offset_db`, `shadow_sigma_db`) override the
  /// corresponding field per cell.
  struct MeshSettings {
    std::string geometry = "grid";  ///< "grid" or "ring"
    double extent_m = 8.0;          ///< grid span / ring radius (m)
    double attacker_x = 1.9;        ///< true emitter position (m)
    double attacker_y = 1.1;
    double shadow_sigma_db = 1.0;   ///< RSSI shadowing std dev
    double snr_offset_db = 0.0;     ///< link-budget shift on top of path loss
  };
  std::optional<MeshSettings> mesh;

  std::vector<GridAxis> grid;  ///< empty = a single unparameterized cell

  /// One grid cell: the cross product element in row-major order (first
  /// axis outermost).
  struct Cell {
    std::size_t index = 0;
    std::vector<std::pair<std::string, Json>> values;

    /// "snr_db=7,trials=3" (empty string for the axis-less cell).
    std::string label() const;
    const Json* find(std::string_view axis) const;
    double number_or(std::string_view axis, double fallback) const;
    std::uint64_t uint_or(std::string_view axis, std::uint64_t fallback) const;
  };

  /// Expands the grid into cells, row-major, first axis outermost.
  std::vector<Cell> cells() const;

  /// Parses and validates a spec document. Throws SpecError on schema
  /// mismatch, unknown keys, duplicate/empty axes, or malformed values.
  static CampaignSpec from_json(const Json& json);
  static CampaignSpec parse(std::string_view text);

  /// Canonical JSON form. from_json(to_json(s)) reproduces `s` and
  /// to_json is a fixed point under the round trip (ranges expand to
  /// lists, defaults are materialized).
  Json to_json() const;
};

}  // namespace ctc::campaign
