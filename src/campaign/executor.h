// Campaign executor: sharded, resumable sweep execution on sim::TrialEngine.
//
// Execution model:
//   * the planner's unit list is the single source of truth; units are
//     filtered by `index % shards == shard` when a shard is pinned;
//   * every unit runs its Monte Carlo trials on the engine after
//     seek_run(unit.run_index), so results are bit-identical for a fixed
//     seed at ANY thread count, shard count, or kill/resume partition;
//   * after each unit the manifest checkpoint is merged and atomically
//     rewritten under an flock (see manifest.h) — a killed campaign resumes
//     exactly where it stopped, and concurrent shard processes sharing one
//     --out directory never lose each other's progress;
//   * once every unit is complete the experiment's stage reductions and
//     final report run, and the artifact store writes report.json (for
//     ported benches: byte-identical to the bench's --json line),
//     cells.csv (one row per unit) and optionally telemetry.json.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>

#include "campaign/plan.h"
#include "campaign/spec.h"

namespace ctc::campaign {

class CampaignError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ExecutorOptions {
  std::string out_dir;                ///< artifact + manifest directory
  std::size_t threads = 0;            ///< engine threads (0 = auto)
  std::size_t shards = 1;             ///< total shard count (partition modulus)
  std::optional<std::size_t> shard;   ///< run only units of this shard
  std::size_t max_units = 0;          ///< stop after N units this run (0 = all)
  bool telemetry = false;             ///< collect + write telemetry.json
  bool quiet = false;                 ///< suppress per-unit progress lines
};

struct CampaignOutcome {
  bool complete = false;        ///< all units done, report written
  std::size_t units_total = 0;
  std::size_t units_run = 0;    ///< executed by this invocation
  std::size_t units_done = 0;   ///< cumulative (manifest)
  std::string report_json;      ///< the merged report line (when complete)
};

/// Runs (or resumes) `spec` under `options`. Throws CampaignError for
/// option/manifest problems and propagates SpecError for plan problems.
CampaignOutcome run_campaign(const CampaignSpec& spec,
                             const ExecutorOptions& options);

}  // namespace ctc::campaign
