#include "campaign/experiment.h"

#include <algorithm>
#include <cstdio>

#include "channel/environment.h"
#include "defense/detector.h"
#include "sim/defense_run.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "zigbee/app.h"

namespace ctc::campaign {

namespace {

std::string unit_id(std::size_t index, std::string_view role,
                    const CampaignSpec::Cell& cell) {
  char prefix[16];
  std::snprintf(prefix, sizeof prefix, "u%04zu", index);
  std::string id = std::string(prefix) + "." + std::string(role);
  const std::string label = cell.label();
  if (!label.empty()) id += "." + label;
  return id;
}

void require_axes(const CampaignSpec& spec,
                  std::initializer_list<std::string_view> allowed) {
  for (const GridAxis& axis : spec.grid) {
    if (std::find(allowed.begin(), allowed.end(), axis.name) == allowed.end()) {
      std::string known;
      for (std::string_view name : allowed) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      throw SpecError("spec: experiment does not understand axis '" +
                      axis.name + "' (supported: " + known + ")");
    }
  }
}

std::vector<double> distances_of(const Json& unit_result) {
  std::vector<double> distances;
  for (const Json& value : unit_result.at("distances").as_array()) {
    distances.push_back(value.as_number());
  }
  return distances;
}

// -- attack_success ---------------------------------------------------------
//
// The bench/table2_attack_awgn sweep as data: per grid cell, one emulated
// link unit and one authentic link unit, exactly the run order (and hence
// RNG stream consumption) of the bench's SNR loop.
class AttackSuccessExperiment final : public Experiment {
 public:
  std::string_view name() const override { return "attack_success"; }

  void check_spec(const CampaignSpec& spec) const override {
    require_axes(spec, {"snr_db", "trials", "alpha"});
  }

  std::size_t num_stages(const CampaignSpec&) const override { return 1; }

  std::vector<WorkUnit> plan_stage(const CampaignSpec& spec,
                                   std::size_t stage) const override {
    std::vector<WorkUnit> units;
    if (stage != 0) return units;
    std::size_t index = 0;
    for (const CampaignSpec::Cell& cell : spec.cells()) {
      for (const char* role : {"attack", "authentic"}) {
        WorkUnit unit;
        unit.index = index;
        unit.stage = 0;
        unit.run_index = index;
        unit.role = role;
        unit.cell = cell;
        const std::uint64_t fallback =
            unit.role == "attack" ? spec.trials : spec.authentic_trials;
        unit.trials = static_cast<std::size_t>(cell.uint_or("trials", fallback));
        unit.id = unit_id(index, role, cell);
        units.push_back(std::move(unit));
        ++index;
      }
    }
    return units;
  }

  Json run_unit(const CampaignSpec& spec, const WorkUnit& unit, const Json&,
                sim::TrialEngine& engine) const override {
    sim::LinkConfig config;
    config.kind = unit.role == "attack" ? sim::LinkKind::emulated
                                        : sim::LinkKind::authentic;
    config.environment =
        channel::Environment::awgn(unit.cell.number_or("snr_db", 17.0));
    if (const Json* alpha = unit.cell.find("alpha")) {
      config.emulator.alpha = alpha->as_number();
    } else if (spec.alpha) {
      config.emulator.alpha = *spec.alpha;
    }
    const auto frames =
        zigbee::make_text_workload(static_cast<unsigned>(spec.workload_frames));
    const sim::FrameStats stats =
        sim::run_frames(sim::Link(config), frames, unit.trials, engine);

    Json result = Json::object();
    result.set("frames", Json(stats.frames_sent));
    result.set("successes", Json(stats.frames_ok));
    result.set("symbols", Json(stats.symbols_sent));
    result.set("symbol_errors", Json(stats.symbol_errors));
    result.set("success_rate", Json(stats.success_rate()));
    return result;
  }

  Json final_report(const CampaignSpec& spec,
                    const std::vector<std::vector<const Json*>>& results_by_stage,
                    const Json&) const override {
    const std::vector<const Json*>& units = results_by_stage.at(0);
    Json snrs = Json::array();
    Json attack = Json::array();
    Json authentic = Json::array();
    const auto cells = spec.cells();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      snrs.push_back(Json(cells[i].number_or("snr_db", 17.0)));
      attack.push_back(Json(units.at(2 * i)->at("success_rate").as_number()));
      authentic.push_back(
          Json(units.at(2 * i + 1)->at("success_rate").as_number()));
    }
    // Field-for-field the bench/table2_attack_awgn --json line. A per-cell
    // "trials" axis overrides the spec-level count, so a single
    // frames_per_point would misstate those sweeps — omit it then (the
    // bench-parity specs have no such axis).
    bool per_cell_trials = false;
    for (const GridAxis& axis : spec.grid) {
      if (axis.name == "trials") per_cell_trials = true;
    }
    Json report = Json::object();
    report.set("bench", Json(spec.name));
    report.set("seed", Json(spec.seed));
    if (!per_cell_trials) report.set("frames_per_point", Json(spec.trials));
    report.set("snr_db", std::move(snrs));
    report.set("attack_success_rate", std::move(attack));
    report.set("authentic_success_rate", std::move(authentic));
    return report;
  }
};

// -- threshold_sweep --------------------------------------------------------
//
// The bench/fig12_threshold pipeline as data: a training stage (per cell,
// authentic + emulated defense samples) that calibrates the decision
// threshold Q at its stage barrier, then a test stage whose units score
// held-out frames against Q. When the spec pins "threshold", the training
// stage is skipped and test units start at run index 0.
class ThresholdSweepExperiment final : public Experiment {
 public:
  std::string_view name() const override { return "threshold_sweep"; }

  void check_spec(const CampaignSpec& spec) const override {
    require_axes(spec, {"snr_db"});
  }

  std::size_t num_stages(const CampaignSpec& spec) const override {
    return spec.threshold ? 1 : 2;
  }

  Json initial_state(const CampaignSpec& spec) const override {
    Json state = Json::object();
    if (spec.threshold) state.set("threshold", Json(*spec.threshold));
    return state;
  }

  std::vector<WorkUnit> plan_stage(const CampaignSpec& spec,
                                   std::size_t stage) const override {
    const bool calibrating = !spec.threshold.has_value();
    const bool train_stage = calibrating && stage == 0;
    std::vector<WorkUnit> units;
    const auto cells = spec.cells();
    // Test units consume run indices after every training unit, mirroring
    // the bench's run order (train loop first, then the test loop).
    std::size_t index = train_stage || !calibrating ? 0 : cells.size() * 2;
    for (const CampaignSpec::Cell& cell : cells) {
      for (const char* side : {"authentic", "emulated"}) {
        WorkUnit unit;
        unit.index = index;
        unit.stage = stage;
        unit.run_index = index;
        unit.role = std::string(train_stage ? "train_" : "test_") + side;
        unit.cell = cell;
        unit.trials = train_stage ? spec.train_trials : spec.test_trials;
        unit.id = unit_id(index, unit.role, cell);
        units.push_back(std::move(unit));
        ++index;
      }
    }
    return units;
  }

  Json run_unit(const CampaignSpec& spec, const WorkUnit& unit,
                const Json& state, sim::TrialEngine& engine) const override {
    sim::LinkConfig config;
    config.kind = unit.role.ends_with("emulated") ? sim::LinkKind::emulated
                                                  : sim::LinkKind::authentic;
    config.environment =
        channel::Environment::awgn(unit.cell.number_or("snr_db", 17.0));
    if (spec.alpha) config.emulator.alpha = *spec.alpha;

    defense::DetectorConfig detector_config;
    if (unit.role.starts_with("test_")) {
      detector_config.threshold = state.at("threshold").as_number();
    }
    const defense::Detector detector(detector_config);
    const auto frames =
        zigbee::make_text_workload(static_cast<unsigned>(spec.workload_frames));
    const sim::DefenseSamples samples = sim::collect_defense_samples(
        sim::Link(config), frames, unit.trials, detector, engine);

    Json distances = Json::array();
    for (double d : samples.distances) distances.push_back(Json(d));
    Json result = Json::object();
    result.set("frames_used", Json(samples.frames_used));
    result.set("frames_skipped", Json(samples.frames_skipped));
    if (samples.frames_used > 0) {
      result.set("mean_de2", Json(samples.mean_distance()));
    }
    result.set("distances", std::move(distances));
    return result;
  }

  Json reduce_stage(const CampaignSpec& spec, std::size_t stage,
                    const std::vector<const Json*>& unit_results,
                    Json state) const override {
    if (spec.threshold || stage != 0) return state;
    // Pool the training distances per class in plan (== bench) order and
    // calibrate the midpoint threshold, exactly like bench/fig12_threshold.
    std::vector<double> authentic, emulated;
    for (std::size_t i = 0; i < unit_results.size(); i += 2) {
      const auto a = distances_of(*unit_results[i]);
      const auto e = distances_of(*unit_results[i + 1]);
      authentic.insert(authentic.end(), a.begin(), a.end());
      emulated.insert(emulated.end(), e.begin(), e.end());
    }
    state.set("threshold",
              Json(defense::Detector::calibrate_threshold(authentic, emulated)));
    return state;
  }

  Json final_report(const CampaignSpec& spec,
                    const std::vector<std::vector<const Json*>>& results_by_stage,
                    const Json& state) const override {
    const double threshold = state.at("threshold").as_number();
    const std::vector<const Json*>& test_units = results_by_stage.back();
    Json snrs = Json::array();
    Json auth_max = Json::array();
    Json emu_min = Json::array();
    Json false_alarms = Json::array();
    Json missed = Json::array();
    const auto cells = spec.cells();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto a = distances_of(*test_units.at(2 * i));
      const auto e = distances_of(*test_units.at(2 * i + 1));
      if (a.empty() || e.empty()) {
        throw SpecError("spec: no usable defense frames in cell " +
                        std::to_string(i));
      }
      std::size_t alarms = 0;
      for (double d : a) alarms += d >= threshold;
      std::size_t misses = 0;
      for (double d : e) misses += d < threshold;
      snrs.push_back(Json(cells[i].number_or("snr_db", 17.0)));
      auth_max.push_back(Json(*std::max_element(a.begin(), a.end())));
      emu_min.push_back(Json(*std::min_element(e.begin(), e.end())));
      false_alarms.push_back(Json(static_cast<double>(alarms)));
      missed.push_back(Json(static_cast<double>(misses)));
    }
    // Field-for-field the bench/fig12_threshold --json line.
    Json report = Json::object();
    report.set("bench", Json(spec.name));
    report.set("seed", Json(spec.seed));
    report.set("threshold", Json(threshold));
    report.set("snr_db", std::move(snrs));
    report.set("authentic_max_de2", std::move(auth_max));
    report.set("emulated_min_de2", std::move(emu_min));
    report.set("false_alarms", std::move(false_alarms));
    report.set("missed_attacks", std::move(missed));
    return report;
  }
};

const AttackSuccessExperiment g_attack_success;
const ThresholdSweepExperiment g_threshold_sweep;
const Experiment* const g_experiments[] = {&g_attack_success,
                                           &g_threshold_sweep};

}  // namespace

Json Experiment::initial_state(const CampaignSpec&) const {
  return Json::object();
}

Json Experiment::reduce_stage(const CampaignSpec&, std::size_t,
                              const std::vector<const Json*>&,
                              Json state) const {
  return state;
}

const Experiment* find_experiment(std::string_view name) {
  for (const Experiment* experiment : g_experiments) {
    if (experiment->name() == name) return experiment;
  }
  return nullptr;
}

std::vector<std::string_view> experiment_names() {
  std::vector<std::string_view> names;
  for (const Experiment* experiment : g_experiments) {
    names.push_back(experiment->name());
  }
  return names;
}

}  // namespace ctc::campaign
