#include "campaign/experiment.h"

#include <algorithm>
#include <cstdio>

#include "channel/environment.h"
#include "defense/detector.h"
#include "mesh/sensor_field.h"
#include "sim/defense_run.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "zigbee/app.h"

namespace ctc::campaign {

namespace {

std::string unit_id(std::size_t index, std::string_view role,
                    const CampaignSpec::Cell& cell) {
  char prefix[16];
  std::snprintf(prefix, sizeof prefix, "u%04zu", index);
  std::string id = std::string(prefix) + "." + std::string(role);
  const std::string label = cell.label();
  if (!label.empty()) id += "." + label;
  return id;
}

void require_axes(const CampaignSpec& spec,
                  std::initializer_list<std::string_view> allowed) {
  for (const GridAxis& axis : spec.grid) {
    if (std::find(allowed.begin(), allowed.end(), axis.name) == allowed.end()) {
      std::string known;
      for (std::string_view name : allowed) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      throw SpecError("spec: experiment does not understand axis '" +
                      axis.name + "' (supported: " + known + ")");
    }
  }
}

std::vector<double> distances_of(const Json& unit_result) {
  std::vector<double> distances;
  for (const Json& value : unit_result.at("distances").as_array()) {
    distances.push_back(value.as_number());
  }
  return distances;
}

// -- attack_success ---------------------------------------------------------
//
// The bench/table2_attack_awgn sweep as data: per grid cell, one emulated
// link unit and one authentic link unit, exactly the run order (and hence
// RNG stream consumption) of the bench's SNR loop.
class AttackSuccessExperiment final : public Experiment {
 public:
  std::string_view name() const override { return "attack_success"; }

  void check_spec(const CampaignSpec& spec) const override {
    require_axes(spec, {"snr_db", "trials", "alpha"});
  }

  std::size_t num_stages(const CampaignSpec&) const override { return 1; }

  std::vector<WorkUnit> plan_stage(const CampaignSpec& spec,
                                   std::size_t stage) const override {
    std::vector<WorkUnit> units;
    if (stage != 0) return units;
    std::size_t index = 0;
    for (const CampaignSpec::Cell& cell : spec.cells()) {
      for (const char* role : {"attack", "authentic"}) {
        WorkUnit unit;
        unit.index = index;
        unit.stage = 0;
        unit.run_index = index;
        unit.role = role;
        unit.cell = cell;
        const std::uint64_t fallback =
            unit.role == "attack" ? spec.trials : spec.authentic_trials;
        unit.trials = static_cast<std::size_t>(cell.uint_or("trials", fallback));
        unit.id = unit_id(index, role, cell);
        units.push_back(std::move(unit));
        ++index;
      }
    }
    return units;
  }

  Json run_unit(const CampaignSpec& spec, const WorkUnit& unit, const Json&,
                sim::TrialEngine& engine) const override {
    sim::LinkConfig config;
    config.kind = unit.role == "attack" ? sim::LinkKind::emulated
                                        : sim::LinkKind::authentic;
    config.environment =
        channel::Environment::awgn(unit.cell.number_or("snr_db", 17.0));
    if (const Json* alpha = unit.cell.find("alpha")) {
      config.emulator.alpha = alpha->as_number();
    } else if (spec.alpha) {
      config.emulator.alpha = *spec.alpha;
    }
    const auto frames =
        zigbee::make_text_workload(static_cast<unsigned>(spec.workload_frames));
    const sim::FrameStats stats =
        sim::run_frames(sim::Link(config), frames, unit.trials, engine);

    Json result = Json::object();
    result.set("frames", Json(stats.frames_sent));
    result.set("successes", Json(stats.frames_ok));
    result.set("symbols", Json(stats.symbols_sent));
    result.set("symbol_errors", Json(stats.symbol_errors));
    result.set("success_rate", Json(stats.success_rate()));
    return result;
  }

  Json final_report(const CampaignSpec& spec,
                    const std::vector<std::vector<const Json*>>& results_by_stage,
                    const Json&) const override {
    const std::vector<const Json*>& units = results_by_stage.at(0);
    Json snrs = Json::array();
    Json attack = Json::array();
    Json authentic = Json::array();
    const auto cells = spec.cells();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      snrs.push_back(Json(cells[i].number_or("snr_db", 17.0)));
      attack.push_back(Json(units.at(2 * i)->at("success_rate").as_number()));
      authentic.push_back(
          Json(units.at(2 * i + 1)->at("success_rate").as_number()));
    }
    // Field-for-field the bench/table2_attack_awgn --json line. A per-cell
    // "trials" axis overrides the spec-level count, so a single
    // frames_per_point would misstate those sweeps — omit it then (the
    // bench-parity specs have no such axis).
    bool per_cell_trials = false;
    for (const GridAxis& axis : spec.grid) {
      if (axis.name == "trials") per_cell_trials = true;
    }
    Json report = Json::object();
    report.set("bench", Json(spec.name));
    report.set("seed", Json(spec.seed));
    if (!per_cell_trials) report.set("frames_per_point", Json(spec.trials));
    report.set("snr_db", std::move(snrs));
    report.set("attack_success_rate", std::move(attack));
    report.set("authentic_success_rate", std::move(authentic));
    return report;
  }
};

// -- threshold_sweep --------------------------------------------------------
//
// The bench/fig12_threshold pipeline as data: a training stage (per cell,
// authentic + emulated defense samples) that calibrates the decision
// threshold Q at its stage barrier, then a test stage whose units score
// held-out frames against Q. When the spec pins "threshold", the training
// stage is skipped and test units start at run index 0.
class ThresholdSweepExperiment final : public Experiment {
 public:
  std::string_view name() const override { return "threshold_sweep"; }

  void check_spec(const CampaignSpec& spec) const override {
    require_axes(spec, {"snr_db"});
  }

  std::size_t num_stages(const CampaignSpec& spec) const override {
    return spec.threshold ? 1 : 2;
  }

  Json initial_state(const CampaignSpec& spec) const override {
    Json state = Json::object();
    if (spec.threshold) state.set("threshold", Json(*spec.threshold));
    return state;
  }

  std::vector<WorkUnit> plan_stage(const CampaignSpec& spec,
                                   std::size_t stage) const override {
    const bool calibrating = !spec.threshold.has_value();
    const bool train_stage = calibrating && stage == 0;
    std::vector<WorkUnit> units;
    const auto cells = spec.cells();
    // Test units consume run indices after every training unit, mirroring
    // the bench's run order (train loop first, then the test loop).
    std::size_t index = train_stage || !calibrating ? 0 : cells.size() * 2;
    for (const CampaignSpec::Cell& cell : cells) {
      for (const char* side : {"authentic", "emulated"}) {
        WorkUnit unit;
        unit.index = index;
        unit.stage = stage;
        unit.run_index = index;
        unit.role = std::string(train_stage ? "train_" : "test_") + side;
        unit.cell = cell;
        unit.trials = train_stage ? spec.train_trials : spec.test_trials;
        unit.id = unit_id(index, unit.role, cell);
        units.push_back(std::move(unit));
        ++index;
      }
    }
    return units;
  }

  Json run_unit(const CampaignSpec& spec, const WorkUnit& unit,
                const Json& state, sim::TrialEngine& engine) const override {
    sim::LinkConfig config;
    config.kind = unit.role.ends_with("emulated") ? sim::LinkKind::emulated
                                                  : sim::LinkKind::authentic;
    config.environment =
        channel::Environment::awgn(unit.cell.number_or("snr_db", 17.0));
    if (spec.alpha) config.emulator.alpha = *spec.alpha;

    defense::DetectorConfig detector_config;
    if (unit.role.starts_with("test_")) {
      detector_config.threshold = state.at("threshold").as_number();
    }
    const defense::Detector detector(detector_config);
    const auto frames =
        zigbee::make_text_workload(static_cast<unsigned>(spec.workload_frames));
    const sim::DefenseSamples samples = sim::collect_defense_samples(
        sim::Link(config), frames, unit.trials, detector, engine);

    Json distances = Json::array();
    for (double d : samples.distances) distances.push_back(Json(d));
    Json result = Json::object();
    result.set("frames_used", Json(samples.frames_used));
    result.set("frames_skipped", Json(samples.frames_skipped));
    if (samples.frames_used > 0) {
      result.set("mean_de2", Json(samples.mean_distance()));
    }
    result.set("distances", std::move(distances));
    return result;
  }

  Json reduce_stage(const CampaignSpec& spec, std::size_t stage,
                    const std::vector<const Json*>& unit_results,
                    Json state) const override {
    if (spec.threshold || stage != 0) return state;
    // Pool the training distances per class in plan (== bench) order and
    // calibrate the midpoint threshold, exactly like bench/fig12_threshold.
    std::vector<double> authentic, emulated;
    for (std::size_t i = 0; i < unit_results.size(); i += 2) {
      const auto a = distances_of(*unit_results[i]);
      const auto e = distances_of(*unit_results[i + 1]);
      authentic.insert(authentic.end(), a.begin(), a.end());
      emulated.insert(emulated.end(), e.begin(), e.end());
    }
    state.set("threshold",
              Json(defense::Detector::calibrate_threshold(authentic, emulated)));
    return state;
  }

  Json final_report(const CampaignSpec& spec,
                    const std::vector<std::vector<const Json*>>& results_by_stage,
                    const Json& state) const override {
    const double threshold = state.at("threshold").as_number();
    const std::vector<const Json*>& test_units = results_by_stage.back();
    Json snrs = Json::array();
    Json auth_max = Json::array();
    Json emu_min = Json::array();
    Json false_alarms = Json::array();
    Json missed = Json::array();
    const auto cells = spec.cells();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto a = distances_of(*test_units.at(2 * i));
      const auto e = distances_of(*test_units.at(2 * i + 1));
      if (a.empty() || e.empty()) {
        throw SpecError("spec: no usable defense frames in cell " +
                        std::to_string(i));
      }
      std::size_t alarms = 0;
      for (double d : a) alarms += d >= threshold;
      std::size_t misses = 0;
      for (double d : e) misses += d < threshold;
      snrs.push_back(Json(cells[i].number_or("snr_db", 17.0)));
      auth_max.push_back(Json(*std::max_element(a.begin(), a.end())));
      emu_min.push_back(Json(*std::min_element(e.begin(), e.end())));
      false_alarms.push_back(Json(static_cast<double>(alarms)));
      missed.push_back(Json(static_cast<double>(misses)));
    }
    // Field-for-field the bench/fig12_threshold --json line.
    Json report = Json::object();
    report.set("bench", Json(spec.name));
    report.set("seed", Json(spec.seed));
    report.set("threshold", Json(threshold));
    report.set("snr_db", std::move(snrs));
    report.set("authentic_max_de2", std::move(auth_max));
    report.set("emulated_min_de2", std::move(emu_min));
    report.set("false_alarms", std::move(false_alarms));
    report.set("missed_attacks", std::move(missed));
    return report;
  }
};

// -- mesh experiments -------------------------------------------------------
//
// Shared cell -> MeshConfig mapping for the sensor-field experiments. The
// optional spec "mesh" object sets the field layout and channel defaults;
// grid axes (sensors / snr_offset_db / shadow_sigma_db) override per cell.
mesh::MeshConfig mesh_config_for(const CampaignSpec& spec,
                                 const WorkUnit& unit) {
  const CampaignSpec::MeshSettings defaults;
  const CampaignSpec::MeshSettings& settings =
      spec.mesh ? *spec.mesh : defaults;
  mesh::MeshConfig config;
  config.sensors = static_cast<std::size_t>(unit.cell.uint_or("sensors", 9));
  config.geometry = mesh::parse_geometry(settings.geometry);
  config.extent_m = settings.extent_m;
  config.attacker = mesh::Vec2{settings.attacker_x, settings.attacker_y};
  config.snr_offset_db =
      unit.cell.number_or("snr_offset_db", settings.snr_offset_db);
  config.shadow_sigma_db =
      unit.cell.number_or("shadow_sigma_db", settings.shadow_sigma_db);
  config.kind = unit.role == "attack" ? sim::LinkKind::emulated
                                      : sim::LinkKind::authentic;
  if (spec.alpha) config.emulator.alpha = *spec.alpha;
  if (spec.threshold) config.detector.threshold = *spec.threshold;
  return config;
}

mesh::MeshStats run_mesh_unit(const CampaignSpec& spec, const WorkUnit& unit,
                              sim::TrialEngine& engine) {
  const mesh::SensorField field(mesh_config_for(spec, unit));
  const auto frames =
      zigbee::make_text_workload(static_cast<unsigned>(spec.workload_frames));
  return mesh::run_mesh_trials(field, frames, unit.trials, engine);
}

// The mesh/sensor-field sweep as data: per grid cell, one emulated-attack
// unit and one authentic (benign) unit, so the report carries both the
// detection rate and the false-alarm rate of every fusion rule.
class FusionDetectionExperiment final : public Experiment {
 public:
  std::string_view name() const override { return "fusion_detection"; }

  void check_spec(const CampaignSpec& spec) const override {
    require_axes(spec, {"sensors", "snr_offset_db", "shadow_sigma_db",
                        "trials"});
  }

  std::size_t num_stages(const CampaignSpec&) const override { return 1; }

  std::vector<WorkUnit> plan_stage(const CampaignSpec& spec,
                                   std::size_t stage) const override {
    std::vector<WorkUnit> units;
    if (stage != 0) return units;
    std::size_t index = 0;
    for (const CampaignSpec::Cell& cell : spec.cells()) {
      for (const char* role : {"attack", "benign"}) {
        WorkUnit unit;
        unit.index = index;
        unit.stage = 0;
        unit.run_index = index;
        unit.role = role;
        unit.cell = cell;
        const std::uint64_t fallback =
            unit.role == "attack" ? spec.trials : spec.authentic_trials;
        unit.trials = static_cast<std::size_t>(cell.uint_or("trials", fallback));
        unit.id = unit_id(index, role, cell);
        units.push_back(std::move(unit));
        ++index;
      }
    }
    return units;
  }

  Json run_unit(const CampaignSpec& spec, const WorkUnit& unit, const Json&,
                sim::TrialEngine& engine) const override {
    const mesh::MeshStats stats = run_mesh_unit(spec, unit, engine);
    Json result = Json::object();
    result.set("trials", Json(stats.trials));
    result.set("usable_fraction", Json(stats.usable_fraction()));
    result.set("single_sensor_rate", Json(stats.single_sensor_rate()));
    result.set("majority_rate", Json(stats.majority_rate()));
    result.set("weighted_rate", Json(stats.weighted_rate()));
    result.set("bayesian_rate", Json(stats.bayesian_rate()));
    result.set("mean_de2", Json(stats.mean_de2()));
    return result;
  }

  Json final_report(const CampaignSpec& spec,
                    const std::vector<std::vector<const Json*>>& results_by_stage,
                    const Json&) const override {
    const std::vector<const Json*>& units = results_by_stage.at(0);
    Json sensors = Json::array();
    Json offsets = Json::array();
    Json shadows = Json::array();
    Json single_det = Json::array(), single_fa = Json::array();
    Json majority_det = Json::array(), majority_fa = Json::array();
    Json weighted_det = Json::array(), weighted_fa = Json::array();
    Json bayesian_det = Json::array(), bayesian_fa = Json::array();
    const CampaignSpec::MeshSettings defaults;
    const CampaignSpec::MeshSettings& settings =
        spec.mesh ? *spec.mesh : defaults;
    const auto cells = spec.cells();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Json& attack = *units.at(2 * i);
      const Json& benign = *units.at(2 * i + 1);
      sensors.push_back(Json(cells[i].uint_or("sensors", 9)));
      offsets.push_back(
          Json(cells[i].number_or("snr_offset_db", settings.snr_offset_db)));
      shadows.push_back(Json(
          cells[i].number_or("shadow_sigma_db", settings.shadow_sigma_db)));
      single_det.push_back(Json(attack.at("single_sensor_rate").as_number()));
      single_fa.push_back(Json(benign.at("single_sensor_rate").as_number()));
      majority_det.push_back(Json(attack.at("majority_rate").as_number()));
      majority_fa.push_back(Json(benign.at("majority_rate").as_number()));
      weighted_det.push_back(Json(attack.at("weighted_rate").as_number()));
      weighted_fa.push_back(Json(benign.at("weighted_rate").as_number()));
      bayesian_det.push_back(Json(attack.at("bayesian_rate").as_number()));
      bayesian_fa.push_back(Json(benign.at("bayesian_rate").as_number()));
    }
    Json report = Json::object();
    report.set("bench", Json(spec.name));
    report.set("seed", Json(spec.seed));
    report.set("sensors", std::move(sensors));
    report.set("snr_offset_db", std::move(offsets));
    report.set("shadow_sigma_db", std::move(shadows));
    report.set("single_sensor_detection", std::move(single_det));
    report.set("single_sensor_false_alarm", std::move(single_fa));
    report.set("majority_detection", std::move(majority_det));
    report.set("majority_false_alarm", std::move(majority_fa));
    report.set("weighted_detection", std::move(weighted_det));
    report.set("weighted_false_alarm", std::move(weighted_fa));
    report.set("bayesian_detection", std::move(bayesian_det));
    report.set("bayesian_false_alarm", std::move(bayesian_fa));
    return report;
  }
};

// Localization accuracy vs field size and shadowing: one emulated-attack
// unit per cell; the report carries RMSE / CEP50 of the least-squares RSSI
// fix against the true attacker position.
class LocalizationErrorExperiment final : public Experiment {
 public:
  std::string_view name() const override { return "localization_error"; }

  void check_spec(const CampaignSpec& spec) const override {
    require_axes(spec, {"sensors", "shadow_sigma_db", "trials"});
  }

  std::size_t num_stages(const CampaignSpec&) const override { return 1; }

  std::vector<WorkUnit> plan_stage(const CampaignSpec& spec,
                                   std::size_t stage) const override {
    std::vector<WorkUnit> units;
    if (stage != 0) return units;
    std::size_t index = 0;
    for (const CampaignSpec::Cell& cell : spec.cells()) {
      WorkUnit unit;
      unit.index = index;
      unit.stage = 0;
      unit.run_index = index;
      unit.role = "attack";
      unit.cell = cell;
      unit.trials = static_cast<std::size_t>(cell.uint_or("trials", spec.trials));
      unit.id = unit_id(index, unit.role, cell);
      units.push_back(std::move(unit));
      ++index;
    }
    return units;
  }

  Json run_unit(const CampaignSpec& spec, const WorkUnit& unit, const Json&,
                sim::TrialEngine& engine) const override {
    const mesh::MeshStats stats = run_mesh_unit(spec, unit, engine);
    Json result = Json::object();
    result.set("trials", Json(stats.trials));
    result.set("rmse_m", Json(stats.rmse_m()));
    result.set("cep50_m", Json(stats.cep50_m()));
    result.set("converged_fraction",
               Json(stats.trials > 0
                        ? static_cast<double>(stats.localization_converged) /
                              static_cast<double>(stats.trials)
                        : 0.0));
    return result;
  }

  Json final_report(const CampaignSpec& spec,
                    const std::vector<std::vector<const Json*>>& results_by_stage,
                    const Json&) const override {
    const std::vector<const Json*>& units = results_by_stage.at(0);
    Json sensors = Json::array();
    Json shadows = Json::array();
    Json rmse = Json::array();
    Json cep50 = Json::array();
    Json converged = Json::array();
    const CampaignSpec::MeshSettings defaults;
    const CampaignSpec::MeshSettings& settings =
        spec.mesh ? *spec.mesh : defaults;
    const auto cells = spec.cells();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Json& unit = *units.at(i);
      sensors.push_back(Json(cells[i].uint_or("sensors", 9)));
      shadows.push_back(Json(
          cells[i].number_or("shadow_sigma_db", settings.shadow_sigma_db)));
      rmse.push_back(Json(unit.at("rmse_m").as_number()));
      cep50.push_back(Json(unit.at("cep50_m").as_number()));
      converged.push_back(Json(unit.at("converged_fraction").as_number()));
    }
    Json report = Json::object();
    report.set("bench", Json(spec.name));
    report.set("seed", Json(spec.seed));
    report.set("sensors", std::move(sensors));
    report.set("shadow_sigma_db", std::move(shadows));
    report.set("rmse_m", std::move(rmse));
    report.set("cep50_m", std::move(cep50));
    report.set("converged_fraction", std::move(converged));
    return report;
  }
};

const AttackSuccessExperiment g_attack_success;
const ThresholdSweepExperiment g_threshold_sweep;
const FusionDetectionExperiment g_fusion_detection;
const LocalizationErrorExperiment g_localization_error;
const Experiment* const g_experiments[] = {&g_attack_success,
                                           &g_threshold_sweep,
                                           &g_fusion_detection,
                                           &g_localization_error};

}  // namespace

Json Experiment::initial_state(const CampaignSpec&) const {
  return Json::object();
}

Json Experiment::reduce_stage(const CampaignSpec&, std::size_t,
                              const std::vector<const Json*>&,
                              Json state) const {
  return state;
}

const Experiment* find_experiment(std::string_view name) {
  for (const Experiment* experiment : g_experiments) {
    if (experiment->name() == name) return experiment;
  }
  return nullptr;
}

std::vector<std::string_view> experiment_names() {
  std::vector<std::string_view> names;
  for (const Experiment* experiment : g_experiments) {
    names.push_back(experiment->name());
  }
  return names;
}

}  // namespace ctc::campaign
