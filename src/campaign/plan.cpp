#include "campaign/plan.h"

namespace ctc::campaign {

CampaignPlan plan_campaign(const CampaignSpec& spec) {
  CampaignPlan plan;
  plan.experiment = find_experiment(spec.experiment);
  if (plan.experiment == nullptr) {
    std::string known;
    for (std::string_view name : experiment_names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw SpecError("spec: unknown experiment '" + spec.experiment +
                    "' (registered: " + known + ")");
  }
  plan.experiment->check_spec(spec);

  const std::size_t stages = plan.experiment->num_stages(spec);
  std::size_t expected_index = 0;
  for (std::size_t stage = 0; stage < stages; ++stage) {
    std::vector<WorkUnit> units = plan.experiment->plan_stage(spec, stage);
    for (const WorkUnit& unit : units) {
      if (unit.index != expected_index || unit.run_index != unit.index ||
          unit.stage != stage) {
        throw SpecError("spec: experiment '" + spec.experiment +
                        "' planned non-sequential unit indices");
      }
      if (unit.trials == 0 || unit.id.empty()) {
        throw SpecError("spec: experiment planned an empty unit");
      }
      ++expected_index;
    }
    plan.stages.push_back(std::move(units));
  }
  plan.units_total = expected_index;
  if (plan.units_total == 0) {
    throw SpecError("spec: campaign plans zero work units");
  }
  return plan;
}

}  // namespace ctc::campaign
