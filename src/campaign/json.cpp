#include "campaign/json.h"

#include <cinttypes>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace ctc::campaign {

namespace {

[[noreturn]] void fail(const char* what, std::size_t position) {
  throw JsonError(std::string("json: ") + what + " at offset " +
                  std::to_string(position));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return value;
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_space();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object object;
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_space();
      const std::size_t key_pos = pos_;
      std::string key = parse_string();
      for (const auto& [existing, value] : object) {
        if (existing == key) fail("duplicate object key", key_pos);
      }
      skip_space();
      expect(':');
      object.emplace_back(std::move(key), parse_value());
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(object));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array array;
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character", pos_ - 1);
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("unknown escape", pos_ - 1);
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape", pos_);
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape", pos_ - 1);
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate
      if (!consume_literal("\\u")) fail("unpaired surrogate", pos_);
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate", pos_);
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate", pos_);
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = (c == '+' || c == '-') ? integral : false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number", start);
    }
    const std::string literal(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long value = std::strtoll(literal.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json(static_cast<std::int64_t>(value));
      }
      // Out-of-range integer literal: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(literal.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number", start);
    // An overflowing literal (e.g. 1e400) would otherwise become +/-inf,
    // which dump() cannot represent — reject it here instead of silently
    // breaking the round trip. (Underflow to 0 is accepted, as usual.)
    if (!std::isfinite(value)) fail("number out of range", start);
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& text, std::string& out) {
  out += '"';
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

Json::Json(std::uint64_t value) {
  if (value > static_cast<std::uint64_t>(
                  std::numeric_limits<std::int64_t>::max())) {
    value_ = static_cast<double>(value);
  } else {
    value_ = static_cast<std::int64_t>(value);
  }
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

Json::Type Json::type() const {
  switch (value_.index()) {
    case 0: return Type::null;
    case 1: return Type::boolean;
    case 2: return Type::integer;
    case 3: return Type::number;
    case 4: return Type::string;
    case 5: return Type::array;
    default: return Type::object;
  }
}

bool Json::as_bool() const {
  if (!is_bool()) throw JsonError("json: not a boolean");
  return std::get<bool>(value_);
}

std::int64_t Json::as_int() const {
  if (!is_integer()) throw JsonError("json: not an integer");
  return std::get<std::int64_t>(value_);
}

std::uint64_t Json::as_uint() const {
  const std::int64_t value = as_int();
  if (value < 0) throw JsonError("json: negative where unsigned expected");
  return static_cast<std::uint64_t>(value);
}

double Json::as_number() const {
  if (is_integer()) return static_cast<double>(std::get<std::int64_t>(value_));
  if (type() == Type::number) return std::get<double>(value_);
  throw JsonError("json: not a number");
}

const std::string& Json::as_string() const {
  if (!is_string()) throw JsonError("json: not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) throw JsonError("json: not an array");
  return std::get<Array>(value_);
}

Json::Array& Json::as_array() {
  if (!is_array()) throw JsonError("json: not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) throw JsonError("json: not an object");
  return std::get<Object>(value_);
}

Json::Object& Json::as_object() {
  if (!is_object()) throw JsonError("json: not an object");
  return std::get<Object>(value_);
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [existing, value] : as_object()) {
    if (existing == key) return &value;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = find(key);
  if (value == nullptr) {
    throw JsonError("json: missing key '" + std::string(key) + "'");
  }
  return *value;
}

void Json::set(std::string key, Json value) {
  for (auto& [existing, existing_value] : as_object()) {
    if (existing == key) {
      existing_value = std::move(value);
      return;
    }
  }
  as_object().emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) { as_array().push_back(std::move(value)); }

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  throw JsonError("json: size() of a scalar");
}

std::string Json::dump() const {
  std::string out;
  switch (type()) {
    case Type::null:
      out = "null";
      break;
    case Type::boolean:
      out = std::get<bool>(value_) ? "true" : "false";
      break;
    case Type::integer: {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%" PRId64,
                    std::get<std::int64_t>(value_));
      out = buffer;
      break;
    }
    case Type::number: {
      const double value = std::get<double>(value_);
      if (!std::isfinite(value)) {
        // %.17g would print "inf"/"nan", which is not JSON — the manifest's
        // dump/parse round trip must never emit an unparseable document.
        throw JsonError("json: cannot serialize non-finite number");
      }
      char buffer[40];
      std::snprintf(buffer, sizeof buffer, "%.17g", value);
      out = buffer;
      break;
    }
    case Type::string:
      dump_string(std::get<std::string>(value_), out);
      break;
    case Type::array: {
      out = "[";
      const Array& array = std::get<Array>(value_);
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out += ",";
        out += array[i].dump();
      }
      out += "]";
      break;
    }
    case Type::object: {
      out = "{";
      const Object& object = std::get<Object>(value_);
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i > 0) out += ",";
        dump_string(object[i].first, out);
        out += ":";
        out += object[i].second.dump();
      }
      out += "}";
      break;
    }
  }
  return out;
}

}  // namespace ctc::campaign
