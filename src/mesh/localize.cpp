#include "mesh/localize.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dsp/require.h"

namespace ctc::mesh {

namespace {

/// RSSI-weighted centroid: weights are linear received power, so the
/// loudest sensors — the ones nearest the emitter — dominate the seed.
Vec2 weighted_centroid(std::span<const RssiSample> samples) {
  double weight_sum = 0.0;
  Vec2 centroid;
  for (const RssiSample& sample : samples) {
    const double weight = std::pow(10.0, sample.rssi_dbm / 10.0);
    weight_sum += weight;
    centroid.x += weight * sample.position.x;
    centroid.y += weight * sample.position.y;
  }
  if (weight_sum > 0.0) {
    centroid.x /= weight_sum;
    centroid.y /= weight_sum;
  }
  return centroid;
}

}  // namespace

LocalizationResult localize_rssi(std::span<const RssiSample> samples,
                                 const LocalizeConfig& config) {
  CTC_REQUIRE_MSG(samples.size() >= 3,
                  "RSSI localization needs at least 3 sensors");
  CTC_REQUIRE(config.max_iterations >= 1);

  std::vector<double> ranges;
  ranges.reserve(samples.size());
  for (const RssiSample& sample : samples) {
    ranges.push_back(std::max(
        config.path_loss.distance_for_rssi(sample.rssi_dbm),
        config.min_distance_m));
  }

  LocalizationResult result;
  result.position = weighted_centroid(samples);
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    // Normal equations of the linearized problem: J^T J dp = -J^T r with
    // J_i = (p - s_i) / ||p - s_i||. A tiny Levenberg diagonal keeps the
    // 2x2 solve well-posed when the field is nearly collinear.
    double jtj00 = 0.0, jtj01 = 0.0, jtj11 = 0.0;
    double jtr0 = 0.0, jtr1 = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const double dx = result.position.x - samples[i].position.x;
      const double dy = result.position.y - samples[i].position.y;
      const double dist = std::max(std::hypot(dx, dy), config.min_distance_m);
      const double jx = dx / dist;
      const double jy = dy / dist;
      const double residual = dist - ranges[i];
      jtj00 += jx * jx;
      jtj01 += jx * jy;
      jtj11 += jy * jy;
      jtr0 += jx * residual;
      jtr1 += jy * residual;
    }
    const double damping = 1e-9 * (jtj00 + jtj11) + 1e-12;
    jtj00 += damping;
    jtj11 += damping;
    const double det = jtj00 * jtj11 - jtj01 * jtj01;
    if (det == 0.0) break;
    const double step_x = -(jtj11 * jtr0 - jtj01 * jtr1) / det;
    const double step_y = -(jtj00 * jtr1 - jtj01 * jtr0) / det;
    result.position.x += step_x;
    result.position.y += step_y;
    ++result.iterations;
    if (std::hypot(step_x, step_y) < config.tolerance_m) {
      result.converged = true;
      break;
    }
  }

  double residual_sq_sum = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double dist = std::max(
        distance(result.position, samples[i].position), config.min_distance_m);
    const double residual = dist - ranges[i];
    residual_sq_sum += residual * residual;
  }
  result.residual_rms_m =
      std::sqrt(residual_sq_sum / static_cast<double>(samples.size()));
  return result;
}

}  // namespace ctc::mesh
