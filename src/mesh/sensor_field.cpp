#include "mesh/sensor_field.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "dsp/batch.h"
#include "dsp/require.h"
#include "sim/telemetry.h"

namespace ctc::mesh {

namespace {

/// Minimum chip samples for a usable defense feature — mirrors
/// sim/defense_run.cpp: the cumulant estimate needs a handful of
/// constellation points before DE^2 means anything.
constexpr std::size_t kMinChipSamples = 8;

sim::Link make_synthesis_link(const MeshConfig& config) {
  sim::LinkConfig link;
  link.kind = config.kind;
  link.profile = config.profile;
  link.emulator = config.emulator;
  return sim::Link(link);
}

}  // namespace

SensorField::SensorField(MeshConfig config)
    : config_(std::move(config)),
      positions_(make_layout(config_.geometry, config_.sensors,
                             config_.extent_m)),
      link_(make_synthesis_link(config_)),
      receiver_([this] {
        zigbee::ReceiverConfig rx;
        rx.profile = config_.profile;
        return rx;
      }()),
      detector_(config_.detector) {
  CTC_REQUIRE_MSG(config_.sensors >= 3,
                  "a sensor field needs >= 3 sensors (localization minimum)");
  distances_.reserve(positions_.size());
  model_rssi_dbm_.reserve(positions_.size());
  environments_.reserve(positions_.size());
  for (const Vec2& position : positions_) {
    const double meters = distance(position, config_.attacker);
    CTC_REQUIRE_MSG(meters >= 1e-3,
                    "attacker may not sit on top of a sensor");
    distances_.push_back(meters);
    model_rssi_dbm_.push_back(config_.path_loss.rssi_dbm(meters));
    channel::Environment env;
    // Like sim::Link::effective_environment(): the receiver front end's
    // sensitivity gain is extra link budget, folded into a plain SNR.
    env.snr_db = config_.path_loss.snr_db(meters) + config_.snr_offset_db +
                 config_.profile.sensitivity_gain_db;
    env.rician_k_factor = config_.rician_k_factor;
    env.cfo_hz = config_.cfo_hz;
    env.random_phase = config_.random_phase;
    env.sample_rate_hz = config_.sample_rate_hz;
    environments_.push_back(env);
  }
}

MeshObservation SensorField::observe_frame(const zigbee::MacFrame& frame,
                                           dsp::Rng& rng) const {
  CTC_TELEM_TIMER("mesh", "trial");
  const std::size_t sensors = config_.sensors;
  CTC_TELEM_COUNT("mesh", "trials", 1);
  CTC_TELEM_COUNT("mesh", "sensor_frames", sensors);
  const cvec clean = link_.clean_waveform(frame);

  // Per-sensor streams: one trial-unique seed draw from the engine stream,
  // then sensor s reads for_stream(sensor_seed, s) — see src/dsp/rng.h.
  const std::uint64_t sensor_seed = rng.next_u64();
  thread_local std::vector<dsp::Rng> sensor_rngs;
  sensor_rngs.clear();
  sensor_rngs.reserve(sensors);
  for (std::size_t s = 0; s < sensors; ++s) {
    sensor_rngs.push_back(dsp::Rng::for_stream(sensor_seed, s));
  }

  MeshObservation observation;
  observation.sensors.resize(sensors);
  // Shadowing draws come FIRST on every sensor's stream (before its channel
  // draws), in both the batched and the serial path, so the two stay
  // bit-identical.
  for (std::size_t s = 0; s < sensors; ++s) {
    SensorObservation& sensor = observation.sensors[s];
    sensor.snr_db = environments_[s].snr_db;
    sensor.measured_rssi_dbm =
        model_rssi_dbm_[s] +
        config_.shadow_sigma_db * sensor_rngs[s].gaussian();
  }

  auto decode = [&](std::size_t s, std::span<const cplx> received) {
    SensorObservation& sensor = observation.sensors[s];
    const zigbee::ReceiveResult rx = receiver_.receive(received);
    const rvec& chips = config_.tap == sim::DefenseTap::discriminator
                            ? rx.freq_chips
                            : rx.soft_chips;
    sensor.usable = chips.size() >= kMinChipSamples;
    if (!sensor.usable) return;
    const defense::Verdict verdict = detector_.classify(chips);
    sensor.is_attack = verdict.is_attack;
    sensor.de2 = verdict.distance_sq;
    sensor.c40 = verdict.feature.c40;
    sensor.c42 = verdict.feature.c42;
  };

  if (config_.batched_channel) {
    thread_local dsp::BatchBuffer batch;
    channel::propagate_batch_multi(batch, clean, environments_,
                                   std::span<dsp::Rng>(sensor_rngs));
    for (std::size_t s = 0; s < sensors; ++s) decode(s, batch.row(s));
  } else {
    thread_local cvec received;
    for (std::size_t s = 0; s < sensors; ++s) {
      environments_[s].propagate_into(received, clean, sensor_rngs[s]);
      decode(s, received);
    }
  }

  std::vector<SensorVote> votes(sensors);
  for (std::size_t s = 0; s < sensors; ++s) {
    const SensorObservation& sensor = observation.sensors[s];
    votes[s].usable = sensor.usable;
    votes[s].is_attack = sensor.is_attack;
    votes[s].de2 = sensor.de2;
    // Linear received power (mW): louder sensors weigh more.
    votes[s].weight = std::pow(10.0, sensor.measured_rssi_dbm / 10.0);
  }
  observation.majority = fuse_majority(votes);
  observation.weighted =
      fuse_rssi_weighted(votes, config_.detector.threshold);
  observation.bayesian =
      fuse_bayesian(votes, std::span<const GaussianPair>(&config_.bayes, 1));

  std::vector<RssiSample> samples(sensors);
  for (std::size_t s = 0; s < sensors; ++s) {
    samples[s].position = positions_[s];
    samples[s].rssi_dbm = observation.sensors[s].measured_rssi_dbm;
  }
  LocalizeConfig localize;
  localize.path_loss = config_.path_loss;
  observation.localization = localize_rssi(samples, localize);
  observation.position_error_m =
      distance(observation.localization.position, config_.attacker);
  return observation;
}

void SensorField::prime(std::span<const zigbee::MacFrame> frames) const {
  link_.prime(frames);
}

void MeshStats::add(const MeshObservation& observation) {
  ++trials;
  for (const SensorObservation& sensor : observation.sensors) {
    ++sensors_total;
    if (!sensor.usable) continue;
    ++sensors_usable;
    sensor_attacks += sensor.is_attack ? 1 : 0;
    de2_sum += sensor.de2;
  }
  majority_attacks += observation.majority.is_attack ? 1 : 0;
  weighted_attacks += observation.weighted.is_attack ? 1 : 0;
  bayesian_attacks += observation.bayesian.is_attack ? 1 : 0;
  localization_converged += observation.localization.converged ? 1 : 0;
  position_errors.push_back(observation.position_error_m);
}

double MeshStats::majority_rate() const {
  return trials > 0
             ? static_cast<double>(majority_attacks) /
                   static_cast<double>(trials)
             : 0.0;
}

double MeshStats::weighted_rate() const {
  return trials > 0
             ? static_cast<double>(weighted_attacks) /
                   static_cast<double>(trials)
             : 0.0;
}

double MeshStats::bayesian_rate() const {
  return trials > 0
             ? static_cast<double>(bayesian_attacks) /
                   static_cast<double>(trials)
             : 0.0;
}

double MeshStats::single_sensor_rate() const {
  return sensors_usable > 0
             ? static_cast<double>(sensor_attacks) /
                   static_cast<double>(sensors_usable)
             : 0.0;
}

double MeshStats::usable_fraction() const {
  return sensors_total > 0
             ? static_cast<double>(sensors_usable) /
                   static_cast<double>(sensors_total)
             : 0.0;
}

double MeshStats::mean_de2() const {
  return sensors_usable > 0
             ? de2_sum / static_cast<double>(sensors_usable)
             : 0.0;
}

double MeshStats::rmse_m() const {
  if (position_errors.empty()) return 0.0;
  double sum_sq = 0.0;
  for (double error : position_errors) sum_sq += error * error;
  return std::sqrt(sum_sq / static_cast<double>(position_errors.size()));
}

double MeshStats::cep50_m() const {
  if (position_errors.empty()) return 0.0;
  rvec sorted = position_errors;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

MeshStats run_mesh_trials(const SensorField& field,
                          std::span<const zigbee::MacFrame> frames,
                          std::size_t count, sim::TrialEngine& engine) {
  CTC_REQUIRE(!frames.empty());
  field.prime(frames);
  return engine.run<MeshStats>(count, [&](std::size_t index, dsp::Rng& rng) {
    return field.observe_frame(frames[index % frames.size()], rng);
  });
}

}  // namespace ctc::mesh
