// Sensor field geometry: deterministic 2-D sensor layouts and the small
// vector algebra the fusion/localization stages share. Positions are in
// meters on a plane centered at the origin; the WiFi attacker sits at an
// arbitrary point inside (or outside) the field.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace ctc::mesh {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two points (m).
double distance(const Vec2& a, const Vec2& b);

enum class GeometryKind {
  grid,  ///< square lattice spanning [-extent/2, extent/2]^2, row-major
  ring,  ///< circle of radius `extent` centered at the origin
};

/// Parses "grid" / "ring"; throws std::invalid_argument otherwise.
GeometryKind parse_geometry(std::string_view name);
const char* geometry_name(GeometryKind kind);

/// `count` sensors on the smallest square lattice that holds them: side =
/// ceil(sqrt(count)) points per axis, evenly spaced over
/// [-extent/2, extent/2], row-major (x fastest), first `count` kept. A
/// single sensor sits at the origin. Requires count >= 1, extent > 0.
std::vector<Vec2> grid_layout(std::size_t count, double extent_m);

/// `count` sensors evenly spaced on the circle of radius `radius_m`,
/// starting at angle 0, counter-clockwise. Requires count >= 1, radius > 0.
std::vector<Vec2> ring_layout(std::size_t count, double radius_m);

/// Layout dispatch: `extent_m` is the grid span for grids and the radius
/// for rings.
std::vector<Vec2> make_layout(GeometryKind kind, std::size_t count,
                              double extent_m);

}  // namespace ctc::mesh
